/// \file sortedness_join.cc
/// Demonstrates the Section 5.5-5.6 capability: detecting from the cache
/// counters whether a foreign-key join probes a co-clustered table, and
/// letting the progressive optimizer pick selection-first vs join-first.

#include <cstdio>
#include <algorithm>
#include <iostream>

#include "common/table_printer.h"
#include "core/engine.h"
#include "optimizer/sortedness.h"
#include "tpch/distributions.h"
#include "tpch/tpch_gen.h"

using namespace nipo;

namespace {

QuerySpec MakeQuery(const Table* orders) {
  // Expensive selection (sel ~0.5) + FK probe filtered on the dimension
  // (sel ~0.6): the cheap side depends entirely on probe locality.
  QuerySpec query;
  query.table = "lineitem";
  PredicateSpec expensive{"l_quantity", CompareOp::kLt, 26.0};
  expensive.extra_instructions = 24.0;  // a UDF-ish predicate
  query.ops = {
      OperatorSpec::Predicate(expensive),
      OperatorSpec::FkProbe(
          {"l_orderkey", orders, "o_shippriority", CompareOp::kLe, 2.0}),
  };
  query.payload_columns = {"l_extendedprice"};
  return query;
}

}  // namespace

int main() {
  TpchConfig tpch;
  tpch.scale_factor = 0.05;
  auto db = GenerateTpch(tpch);
  NIPO_CHECK(db.ok());

  TablePrinter table("selection+join ordering under different layouts");
  table.SetHeader({"layout", "sel-first ms", "join-first ms",
                   "progressive ms", "probe verdict"});

  for (Layout layout : {Layout::kSorted, Layout::kRandom}) {
    Engine engine(HwConfig::ScaledXeon(64));
    auto db2 = GenerateTpch(tpch);
    NIPO_CHECK(db2.ok());
    Prng prng(99);
    if (layout == Layout::kRandom) {
      // Destroy fact-dimension co-clustering by shuffling the fact table.
      NIPO_CHECK(ApplyLayout(db2.ValueOrDie().lineitem.get(), "l_orderkey",
                             Layout::kRandom, &prng)
                     .ok());
    }
    NIPO_CHECK(
        engine.RegisterTable(std::move(db2.ValueOrDie().lineitem)).ok());
    NIPO_CHECK(engine.RegisterTable(std::move(db2.ValueOrDie().orders)).ok());
    auto orders = engine.GetTable("orders");
    NIPO_CHECK(orders.ok());
    QuerySpec query = MakeQuery(orders.ValueOrDie());

    const size_t kVectorSize = 4'096;
    ExecOptions base_options;
    base_options.vector_size = kVectorSize;
    base_options.order = std::vector<size_t>{0, 1};
    auto sel_first = engine.Execute(query, base_options);
    base_options.order = std::vector<size_t>{1, 0};
    auto join_first = engine.Execute(query, base_options);
    ExecOptions prog_options;
    prog_options.mode = ExecMode::kProgressive;
    prog_options.progressive.vector_size = kVectorSize;
    prog_options.progressive.reopt_interval = 4;
    auto prog = engine.Execute(query, prog_options);
    NIPO_CHECK(sel_first.ok() && join_first.ok() && prog.ok());

    // Ask the sortedness detector directly what it sees for the probe,
    // using a probe-only diagnostic query so the fact scan's own misses
    // (one per cache line of the fk column) can be subtracted cleanly.
    QuerySpec probe_only;
    probe_only.table = "lineitem";
    probe_only.ops = {query.ops[1]};
    ExecOptions diag_options;
    diag_options.vector_size = kVectorSize;
    auto diag = engine.Execute(probe_only, diag_options);
    NIPO_CHECK(diag.ok());
    const auto& counters = diag.ValueOrDie().counters;
    const double fact_rows =
        static_cast<double>(diag.ValueOrDie().input_tuples);
    const double fk_scan_misses =
        fact_rows * 4.0 / engine.hw_config().l3.line_size;
    ProbeObservation obs;
    obs.relation.num_tuples =
        static_cast<double>(orders.ValueOrDie()->num_rows());
    obs.relation.tuple_width = 4.0;
    obs.num_probes = fact_rows;
    obs.sampled_l3_misses = std::max(
        0.0, static_cast<double>(counters.l3_misses) - fk_scan_misses);
    const SortednessVerdict verdict =
        JudgeSortedness(engine.hw_config().l3, obs);

    table.AddRow(
        {std::string(LayoutToString(layout)),
         FormatDouble(sel_first.ValueOrDie().simulated_msec, 2),
         FormatDouble(join_first.ValueOrDie().simulated_msec, 2),
         FormatDouble(prog.ValueOrDie().simulated_msec, 2),
         verdict.co_clustered ? "co-clustered" : "random"});
  }
  table.Print(std::cout);
  std::printf(
      "On the sorted layout the probe into orders is nearly free, so\n"
      "join-first wins and the verdict is 'co-clustered'; on the random\n"
      "layout the probe thrashes L3 and selection-first wins.\n");
  return 0;
}
