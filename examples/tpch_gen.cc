/// \file tpch_gen.cc
/// Command-line TPC-H generator: `tpch_gen --sf 0.1` builds the three
/// tables at the requested scale factor with deterministic seeds and
/// prints their shapes; `--encode` additionally compresses every column
/// (dictionary / bit-pack per block, DESIGN.md Section 10) and reports
/// the size reduction. `--per-table-seeds` switches each table to its
/// own derived seed stream; `--seed` changes the base seed. Out-of-range
/// scale factors are rejected through the generator's Status path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table_printer.h"
#include "storage/encoding.h"
#include "tpch/tpch_gen.h"

using namespace nipo;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sf <scale>] [--seed <n>] [--per-table-seeds] "
               "[--encode]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  TpchConfig config;
  bool encode = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--sf") == 0 && i + 1 < argc) {
      config.scale_factor = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      config.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "--per-table-seeds") == 0) {
      config.per_table_seeds = true;
    } else if (std::strcmp(arg, "--encode") == 0) {
      encode = true;
    } else {
      return Usage(argv[0]);
    }
  }

  auto db = GenerateTpch(config);
  if (!db.ok()) {
    std::fprintf(stderr, "tpch_gen: %s\n",
                 db.status().message().c_str());
    return 1;
  }

  TablePrinter out("TPC-H sf=" + FormatDouble(config.scale_factor, 3) +
                   " seed=" + std::to_string(config.seed) +
                   (config.per_table_seeds ? " (per-table seeds)" : ""));
  out.SetHeader({"table", "rows", "columns", "plain KiB", "encoded KiB",
                 "ratio"});
  Table* tables[] = {db.ValueOrDie().lineitem.get(),
                     db.ValueOrDie().orders.get(),
                     db.ValueOrDie().part.get()};
  for (Table* table : tables) {
    std::string plain_kib = "-", encoded_kib = "-", ratio = "-";
    if (encode) {
      auto stats = EncodeTableColumns(table);
      NIPO_CHECK(stats.ok());
      const TableEncodingStats& s = stats.ValueOrDie();
      plain_kib = FormatDouble(static_cast<double>(s.plain_bytes) / 1024, 1);
      encoded_kib =
          FormatDouble(static_cast<double>(s.encoded_bytes) / 1024, 1);
      ratio = FormatDouble(static_cast<double>(s.plain_bytes) /
                               static_cast<double>(s.encoded_bytes),
                           2) +
              "x";
    }
    out.AddRow({table->name(), std::to_string(table->num_rows()),
                std::to_string(table->num_columns()), plain_kib, encoded_kib,
                ratio});
  }
  out.Print(std::cout);
  return 0;
}
