/// \file custom_workload.cc
/// Shows the lower-level APIs on a user-defined workload with *drifting*
/// selectivities: the data's value distribution changes half way through
/// the table, and the per-vector PEO trace shows progressive optimization
/// switching orders at the transition (the Section 4.5 skew scenario).

#include <cstdio>
#include <iostream>

#include "common/prng.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "optimizer/estimator.h"

using namespace nipo;

int main() {
  // First half: x is selective (x<10 passes ~10%), y is not (~90%).
  // Second half: the roles flip. A fixed order is wrong on one half.
  const size_t kRows = 600'000;
  Prng prng(7);
  std::vector<int32_t> x(kRows), y(kRows);
  std::vector<int64_t> value(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    const bool first_half = i < kRows / 2;
    if (first_half) {
      x[i] = static_cast<int32_t>(prng.NextBounded(100));   // x<10: ~10%
      y[i] = static_cast<int32_t>(prng.NextBounded(100));   // y<90: ~90%
    } else {
      x[i] = static_cast<int32_t>(prng.NextBounded(11));    // x<10: ~91%
      y[i] = static_cast<int32_t>(prng.NextBounded(1000));  // y<90: ~9%
    }
    value[i] = static_cast<int64_t>(prng.NextBounded(100));
  }
  auto table = std::make_unique<Table>("events");
  NIPO_CHECK(table->AddColumn("x", std::move(x)).ok());
  NIPO_CHECK(table->AddColumn("y", std::move(y)).ok());
  NIPO_CHECK(table->AddColumn("value", std::move(value)).ok());

  Engine engine;
  NIPO_CHECK(engine.RegisterTable(std::move(table)).ok());

  QuerySpec query;
  query.table = "events";
  query.ops = {
      OperatorSpec::Predicate({"x", CompareOp::kLt, 10.0}),   // drifts
      OperatorSpec::Predicate({"y", CompareOp::kLt, 90.0}),   // drifts
  };
  query.payload_columns = {"value"};

  TablePrinter out("drifting workload: fixed orders vs progressive");
  out.SetHeader({"strategy", "simulated ms"});
  for (const auto& [name, order] :
       std::vector<std::pair<std::string, std::vector<size_t>>>{
           {"fixed x-first", {0, 1}}, {"fixed y-first", {1, 0}}}) {
    ExecOptions options;
    options.vector_size = 8'192;
    options.order = order;
    auto r = engine.Execute(query, options);
    NIPO_CHECK(r.ok());
    out.AddRow({name, FormatDouble(r.ValueOrDie().simulated_msec, 2)});
  }
  ExecOptions prog_options;
  prog_options.mode = ExecMode::kProgressive;
  prog_options.progressive.vector_size = 8'192;
  prog_options.progressive.reopt_interval = 3;
  auto prog = engine.Execute(query, prog_options);
  NIPO_CHECK(prog.ok());
  const ProgressiveReport& trace = *prog.ValueOrDie().progressive;
  out.AddRow({"progressive",
              FormatDouble(prog.ValueOrDie().simulated_msec, 2)});
  out.Print(std::cout);

  std::printf("order changes over %zu vectors:\n", trace.drive.num_vectors);
  for (const PeoChange& change : trace.changes) {
    std::printf("  vector %3zu: ", change.vector_index);
    for (size_t idx : change.old_order) std::printf("%zu", idx);
    std::printf(" -> ");
    for (size_t idx : change.new_order) std::printf("%zu", idx);
    std::printf("%s\n", change.reverted ? " (reverted)" : "");
  }
  std::printf(
      "Expect a switch to y-first early on and a switch back to x-first\n"
      "near the middle of the table, where the distribution flips.\n");
  return 0;
}
