/// \file static_vs_progressive.cc
/// The paper's core argument in one example (Sections 1 and 4.5): a
/// competent compile-time optimizer working from (possibly stale)
/// histogram statistics is compared with progressive optimization on a
/// table whose value distribution drifts mid-way. The static plan is
/// optimal for the sampled prefix and wrong afterwards; the progressive
/// run detects the drift from the performance counters and reorders.

#include <cstdio>
#include <iostream>

#include "common/prng.h"
#include "common/table_printer.h"
#include "core/report.h"
#include "optimizer/static_optimizer.h"

using namespace nipo;

int main() {
  // First 20%: x highly selective under "x < 50" (~5%), y not (~50%).
  // Remaining 80%: x ~50%, y ~5%. Prefix statistics see only regime one.
  const size_t kRows = 600'000;
  Prng prng(11);
  std::vector<int32_t> x(kRows), y(kRows);
  std::vector<int64_t> v(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    const bool prefix = i < kRows / 5;
    x[i] = static_cast<int32_t>(
        prng.NextBounded(prefix ? 1000 : 100));
    y[i] = static_cast<int32_t>(
        prng.NextBounded(prefix ? 100 : 1000));
    v[i] = 1;
  }
  auto table = std::make_unique<Table>("events");
  NIPO_CHECK(table->AddColumn("x", std::move(x)).ok());
  NIPO_CHECK(table->AddColumn("y", std::move(y)).ok());
  NIPO_CHECK(table->AddColumn("v", std::move(v)).ok());

  // Statistics as a real system would have them: built when the first
  // fifth of the data was loaded.
  auto stats = TableStatistics::Build(*table, 64, kRows / 5);
  NIPO_CHECK(stats.ok());

  QuerySpec query;
  query.table = "events";
  query.ops = {
      OperatorSpec::Predicate({"x", CompareOp::kLt, 50.0}),
      OperatorSpec::Predicate({"y", CompareOp::kLt, 50.0}),
  };
  query.payload_columns = {"v"};

  const StaticPlan plan = PlanStatically(query.ops, stats.ValueOrDie());
  std::printf("static optimizer chose order: %s",
              FormatOrder(plan.order).c_str());
  std::printf("  (estimated selectivities:");
  for (const StaticRanking& r : plan.rankings) {
    std::printf(" %s=%.2f", query.ops[r.original_index].ToString().c_str(),
                r.estimated_selectivity);
  }
  std::printf(")\n\n");

  Engine engine;
  NIPO_CHECK(engine.RegisterTable(std::move(table)).ok());

  const size_t kVectorSize = 8'192;
  ExecOptions static_options;
  static_options.vector_size = kVectorSize;
  static_options.order = plan.order;
  auto static_run = engine.Execute(query, static_options);
  NIPO_CHECK(static_run.ok());

  ExecOptions prog_options;
  prog_options.mode = ExecMode::kProgressive;
  prog_options.progressive.vector_size = kVectorSize;
  prog_options.progressive.reopt_interval = 4;
  // Progressive starts from the *same* statically chosen order.
  prog_options.order = plan.order;
  auto progressive = engine.Execute(query, prog_options);
  NIPO_CHECK(progressive.ok());

  // Oracle: the best fixed order in hindsight.
  double best_fixed = 1e300;
  std::vector<size_t> best_order;
  for (const auto& order : AllOrders(2)) {
    ExecOptions options;
    options.vector_size = kVectorSize;
    options.order = order;
    auto r = engine.Execute(query, options);
    NIPO_CHECK(r.ok());
    if (r.ValueOrDie().simulated_msec < best_fixed) {
      best_fixed = r.ValueOrDie().simulated_msec;
      best_order = order;
    }
  }

  TablePrinter out("static plan vs progressive on drifting data");
  out.SetHeader({"strategy", "simulated ms"});
  out.AddRow({"static plan (stale stats)",
              FormatDouble(static_run.ValueOrDie().simulated_msec, 2)});
  out.AddRow({"best fixed order (oracle)", FormatDouble(best_fixed, 2)});
  out.AddRow({"progressive (from static plan)",
              FormatDouble(progressive.ValueOrDie().simulated_msec, 2)});
  out.Print(std::cout);

  PrintProgressiveReport(*progressive.ValueOrDie().progressive,
                         "progressive run", std::cout);
  std::printf(
      "\nThe static order was right for the sampled prefix only; the\n"
      "progressive run switches orders when the counters reveal the\n"
      "drift, landing near the hindsight-optimal fixed order.\n");
  return 0;
}
