/// \file workload_quickstart.cc
/// Smallest end-to-end use of multi-query workload execution (DESIGN.md
/// "Workload execution"): queue six mixed queries over two shared tables,
/// run them through Engine::Execute(WorkloadSpec) on a 4-worker pool with at
/// most 3 in flight, print the aggregate report, and confirm that the
/// deterministic mode makes each query bit-identical to running it alone.

#include <cstdio>
#include <iostream>

#include "common/prng.h"
#include "core/engine.h"
#include "core/report.h"

int main() {
  using namespace nipo;

  // 1. Two shared tables; predicate selectivities under the queries
  //    below are ~0.9 (a), ~0.5 (b) and ~0.02 (c), ordered worst-first.
  auto make_table = [](const std::string& name, size_t rows, uint64_t seed) {
    Prng prng(seed);
    std::vector<int32_t> a(rows), b(rows), c(rows);
    std::vector<int64_t> payload(rows);
    for (size_t i = 0; i < rows; ++i) {
      a[i] = static_cast<int32_t>(prng.NextBounded(100));
      b[i] = static_cast<int32_t>(prng.NextBounded(100));
      c[i] = static_cast<int32_t>(prng.NextBounded(100));
      payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
    }
    auto t = std::make_unique<Table>(name);
    NIPO_CHECK(t->AddColumn("a", std::move(a)).ok());
    NIPO_CHECK(t->AddColumn("b", std::move(b)).ok());
    NIPO_CHECK(t->AddColumn("c", std::move(c)).ok());
    NIPO_CHECK(t->AddColumn("payload", std::move(payload)).ok());
    return t;
  };
  Engine engine;
  NIPO_CHECK(engine.RegisterTable(make_table("small", 200'000, 1)).ok());
  NIPO_CHECK(engine.RegisterTable(make_table("large", 500'000, 2)).ok());

  // 2. The workload: six queries over the two tables, alternating
  //    fixed-order baseline and progressive. Each gets a private
  //    simulated machine and (when progressive) its own optimizer.
  auto query_on = [](const std::string& table) {
    QuerySpec q;
    q.table = table;
    q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 90.0}),
             OperatorSpec::Predicate({"b", CompareOp::kLt, 50.0}),
             OperatorSpec::Predicate({"c", CompareOp::kLt, 2.0})};
    q.payload_columns = {"payload"};
    return q;
  };
  WorkloadSpec spec;
  for (int i = 0; i < 6; ++i) {
    WorkloadQuery q;
    const bool on_large = i % 2 == 1;
    q.name = (on_large ? "large_q" : "small_q") + std::to_string(i);
    q.query = query_on(on_large ? "large" : "small");
    q.progressive = i >= 3;  // the back half re-optimizes while running
    q.config.vector_size = 16'384;
    q.config.reopt_interval = 3;
    spec.queries.push_back(std::move(q));
  }
  spec.options.num_threads = 4;     // worker pool
  spec.options.max_concurrent = 3;  // admission control
  auto result = engine.Execute(spec);
  NIPO_CHECK(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  PrintWorkloadReport(report, "workload quickstart", std::cout);

  // 3. Deterministic mode: any query of the workload is bit-identical to
  //    running it alone single-threaded — counters included, which is
  //    what lets per-query progressive optimization work unperturbed
  //    under concurrency.
  ExecOptions solo_options;
  solo_options.mode = ExecMode::kProgressive;
  solo_options.progressive = spec.queries[3].config;
  auto solo = engine.Execute(spec.queries[3].query, solo_options);
  NIPO_CHECK(solo.ok());
  const ExecReport& solo_report = solo.ValueOrDie();
  const WorkloadQueryReport& in_pool = report.queries[3];
  NIPO_CHECK(in_pool.drive.total == solo_report.counters);
  NIPO_CHECK(in_pool.drive.aggregate == solo_report.aggregate);
  NIPO_CHECK(in_pool.final_order == solo_report.final_order);
  std::printf(
      "query '%s' inside the pool == solo run: every counter identical\n",
      in_pool.name.c_str());
  std::printf(
      "workload finished %zu queries in %.2f simulated msec "
      "(%.2fx over one-at-a-time)\n",
      report.queries.size(), report.sim_makespan_msec,
      report.sim_serial_msec / report.sim_makespan_msec);
  return 0;
}
