/// \file parallel_quickstart.cc
/// Smallest end-to-end use of sharded execution (DESIGN.md "Parallel
/// execution"): run the same query single-threaded and across 4 worker
/// threads, confirm the results are identical, and inspect the per-worker
/// machines and the broadcast PEO trace of a parallel progressive run.

#include <cstdio>

#include "common/prng.h"
#include "core/engine.h"
#include "core/report.h"

int main() {
  using namespace nipo;

  // 1. Build a 400k-row table; predicate selectivities under the query
  //    below are ~0.9 (a), ~0.5 (b) and ~0.02 (c), deliberately ordered
  //    worst-first.
  const size_t kRows = 400'000;
  Prng prng(1);
  std::vector<int32_t> a(kRows), b(kRows), c(kRows);
  std::vector<int64_t> payload(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    c[i] = static_cast<int32_t>(prng.NextBounded(100));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto table = std::make_unique<Table>("demo");
  NIPO_CHECK(table->AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(table->AddColumn("b", std::move(b)).ok());
  NIPO_CHECK(table->AddColumn("c", std::move(c)).ok());
  NIPO_CHECK(table->AddColumn("payload", std::move(payload)).ok());

  Engine engine;
  NIPO_CHECK(engine.RegisterTable(std::move(table)).ok());

  QuerySpec query;
  query.table = "demo";
  query.ops = {
      OperatorSpec::Predicate({"a", CompareOp::kLt, 90.0}),
      OperatorSpec::Predicate({"b", CompareOp::kLt, 50.0}),
      OperatorSpec::Predicate({"c", CompareOp::kLt, 2.0}),
  };
  query.payload_columns = {"payload"};

  // 2. Fixed-order baseline: single-threaded vs 4 worker shards. Each
  //    worker owns a private simulated machine; the merge sums results in
  //    morsel-index order, so the numbers must agree exactly.
  const size_t kMorselSize = 16'384;
  ExecOptions solo_options;  // defaults: baseline, solo
  solo_options.vector_size = kMorselSize;
  auto single = engine.Execute(query, solo_options);
  NIPO_CHECK(single.ok());

  ExecOptions options;
  options.num_threads = 4;  // driver kAuto resolves to sharded
  options.vector_size = kMorselSize;
  auto sharded = engine.Execute(query, options);
  NIPO_CHECK(sharded.ok());

  const ExecReport& one = single.ValueOrDie();
  const ParallelDriveResult& par =
      sharded.ValueOrDie().sharded_baseline->drive;
  std::printf("single-threaded : sum=%.0f, %llu rows, %.2f simulated ms\n",
              one.aggregate,
              static_cast<unsigned long long>(one.qualifying_tuples),
              one.simulated_msec);
  std::printf("4 worker shards : sum=%.0f, %llu rows, %.2f simulated ms "
              "critical path (%.2f ms wall)\n",
              par.merged.aggregate,
              static_cast<unsigned long long>(par.merged.qualifying_tuples),
              par.merged.simulated_msec, par.wall_msec);
  NIPO_CHECK(par.merged.qualifying_tuples == one.qualifying_tuples);
  NIPO_CHECK(par.merged.aggregate == one.aggregate);
  for (size_t w = 0; w < par.workers.size(); ++w) {
    std::printf("  worker %zu: %llu morsels, %llu steals, %.2f ms machine "
                "time\n",
                w, static_cast<unsigned long long>(par.workers[w].morsels),
                static_cast<unsigned long long>(par.workers[w].steals),
                par.workers[w].simulated_msec);
  }

  // 3. Progressive optimization under sharding: one shared coordinator
  //    merges the workers' per-morsel counter samples, learns the
  //    selectivities, and broadcasts better orders to every worker.
  options.mode = ExecMode::kProgressive;
  options.progressive.vector_size = kMorselSize;
  options.progressive.reopt_interval = 2;
  auto progressive = engine.Execute(query, options);
  NIPO_CHECK(progressive.ok());
  const ParallelProgressiveReport& report =
      *progressive.ValueOrDie().sharded_progressive;
  NIPO_CHECK(report.drive.merged.qualifying_tuples == one.qualifying_tuples);
  std::printf("progressive (4 shards): %.2f simulated ms critical path, "
              "%zu broadcast reorders, final order:",
              report.drive.merged.simulated_msec, report.changes.size());
  for (size_t idx : report.final_order) std::printf(" %zu", idx);
  std::printf("\n");
  if (!report.last_estimate.empty()) {
    std::printf("learned selectivities:");
    for (double s : report.last_estimate) std::printf(" %.3f", s);
    std::printf("\n");
  }
  return 0;
}
