/// \file tpch_q6_progressive.cc
/// The paper's headline scenario: TPC-H Q6 over lineitem, comparing the
/// worst, best, and average fixed predicate evaluation orders against
/// progressive optimization, and showing the PEO trace the optimizer
/// followed.

#include <cstdio>

#include "common/table_printer.h"
#include "core/engine.h"
#include "tpch/q6.h"
#include "tpch/tpch_gen.h"

#include <iostream>
#include <limits>

int main() {
  using namespace nipo;

  TpchConfig tpch;
  tpch.scale_factor = 0.05;  // ~300k lineitems
  auto db = GenerateTpch(tpch);
  NIPO_CHECK(db.ok());

  Engine engine(HwConfig::ScaledXeon(16));
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().lineitem)).ok());

  QuerySpec query;
  query.table = "lineitem";
  query.ops = MakeQ6FullPredicates();
  query.payload_columns = Q6PayloadColumns();

  const size_t kVectorSize = 4'096;

  // Sweep all 120 evaluation orders as the fixed-order baseline.
  double best = std::numeric_limits<double>::infinity();
  double worst = 0, sum = 0;
  std::vector<size_t> best_order;
  const auto orders = AllOrders(query.ops.size());
  for (const auto& order : orders) {
    ExecOptions options;
    options.vector_size = kVectorSize;
    options.order = order;
    auto r = engine.Execute(query, options);
    NIPO_CHECK(r.ok());
    const double ms = r.ValueOrDie().simulated_msec;
    sum += ms;
    if (ms < best) {
      best = ms;
      best_order = order;
    }
    worst = std::max(worst, ms);
  }

  // Progressive run starting from the *worst-case shaped* order
  // (descending selectivity): the spec order reversed is a good stand-in.
  ExecOptions prog_options;
  prog_options.mode = ExecMode::kProgressive;
  prog_options.progressive.vector_size = kVectorSize;
  prog_options.progressive.reopt_interval = 10;
  prog_options.order = std::vector<size_t>{4, 3, 2, 1, 0};
  auto prog = engine.Execute(query, prog_options);
  NIPO_CHECK(prog.ok());
  const ProgressiveReport& report = *prog.ValueOrDie().progressive;

  TablePrinter table("TPC-H Q6, fixed orders vs progressive optimization");
  table.SetHeader({"strategy", "simulated ms"});
  table.AddRow({"best fixed PEO", FormatDouble(best, 2)});
  table.AddRow({"average fixed PEO",
                FormatDouble(sum / static_cast<double>(orders.size()), 2)});
  table.AddRow({"worst fixed PEO", FormatDouble(worst, 2)});
  table.AddRow({"progressive (from bad start)",
                FormatDouble(report.drive.simulated_msec, 2)});
  table.Print(std::cout);

  std::printf("revenue = %.0f (over %llu qualifying lineitems)\n",
              report.drive.aggregate,
              static_cast<unsigned long long>(
                  report.drive.qualifying_tuples));
  std::printf("optimizations: %zu, order changes: %zu\n",
              report.num_optimizations, report.changes.size());
  for (const PeoChange& change : report.changes) {
    std::printf("  vector %4zu: ", change.vector_index);
    for (size_t idx : change.old_order) std::printf("%zu", idx);
    std::printf(" -> ");
    for (size_t idx : change.new_order) std::printf("%zu", idx);
    if (change.reverted) std::printf("  (reverted)");
    std::printf("\n");
  }
  std::printf("best fixed order found by sweep:");
  for (size_t idx : best_order) std::printf(" %zu", idx);
  std::printf("\n");
  return 0;
}
