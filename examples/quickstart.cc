/// \file quickstart.cc
/// Smallest end-to-end use of the library: build a table, describe a
/// multi-selection query, execute it with and without progressive
/// optimization, and inspect what the optimizer learned.

#include <cstdio>

#include "core/engine.h"
#include "common/prng.h"

int main() {
  using namespace nipo;

  // 1. Build a 400k-row table with three filterable columns of very
  //    different selectivities under the query below: a (sel ~0.9),
  //    b (sel ~0.5), c (sel ~0.02).
  const size_t kRows = 400'000;
  Prng prng(1);
  std::vector<int32_t> a(kRows), b(kRows), c(kRows);
  std::vector<int64_t> payload(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));  // a < 90: ~90%
    b[i] = static_cast<int32_t>(prng.NextBounded(100));  // b < 50: ~50%
    c[i] = static_cast<int32_t>(prng.NextBounded(100));  // c < 2:  ~2%
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto table = std::make_unique<Table>("demo");
  NIPO_CHECK(table->AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(table->AddColumn("b", std::move(b)).ok());
  NIPO_CHECK(table->AddColumn("c", std::move(c)).ok());
  NIPO_CHECK(table->AddColumn("payload", std::move(payload)).ok());

  Engine engine;
  NIPO_CHECK(engine.RegisterTable(std::move(table)).ok());

  // 2. Describe the query: SELECT sum(payload) WHERE a<90 AND b<50 AND c<2,
  //    deliberately ordered worst-first (most selective predicate last).
  QuerySpec query;
  query.table = "demo";
  query.ops = {
      OperatorSpec::Predicate({"a", CompareOp::kLt, 90.0}),
      OperatorSpec::Predicate({"b", CompareOp::kLt, 50.0}),
      OperatorSpec::Predicate({"c", CompareOp::kLt, 2.0}),
  };
  query.payload_columns = {"payload"};

  // 3. Execute the fixed-order baseline and the progressive run through
  //    the unified entry point: one ExecOptions struct selects the mode.
  const size_t kVectorSize = 16'384;
  ExecOptions base_options;  // defaults: baseline, solo
  base_options.vector_size = kVectorSize;
  auto baseline = engine.Execute(query, base_options);
  NIPO_CHECK(baseline.ok());

  ExecOptions prog_options;
  prog_options.mode = ExecMode::kProgressive;
  prog_options.progressive.vector_size = kVectorSize;
  prog_options.progressive.reopt_interval = 2;
  auto progressive = engine.Execute(query, prog_options);
  NIPO_CHECK(progressive.ok());

  const ExecReport& base = baseline.ValueOrDie();
  const ExecReport& prog = progressive.ValueOrDie();
  std::printf("baseline    : %.2f simulated ms, sum=%.0f, %llu rows\n",
              base.simulated_msec, base.aggregate,
              static_cast<unsigned long long>(base.qualifying_tuples));
  std::printf("progressive : %.2f simulated ms, sum=%.0f, %llu rows\n",
              prog.simulated_msec, prog.aggregate,
              static_cast<unsigned long long>(prog.qualifying_tuples));
  std::printf("speedup     : %.2fx\n",
              base.simulated_msec / prog.simulated_msec);
  const ProgressiveReport& trace = *prog.progressive;
  std::printf("PEO changes : %zu (final order:", trace.changes.size());
  for (size_t idx : prog.final_order) std::printf(" %zu", idx);
  std::printf(")\n");
  if (!trace.last_estimate.empty()) {
    std::printf("learned selectivities:");
    for (double s : trace.last_estimate) std::printf(" %.3f", s);
    std::printf("\n");
  }
  NIPO_CHECK(base.qualifying_tuples == prog.qualifying_tuples);
  return 0;
}
