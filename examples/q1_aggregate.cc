/// \file q1_aggregate.cc
/// TPC-H Query 1 (pricing summary) on the hash aggregation operator,
/// with the non-invasive counter report the PMU collects along the way --
/// the "other relational operators" direction of the paper's future work.

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "core/report.h"
#include "tpch/q1.h"
#include "tpch/tpch_gen.h"

using namespace nipo;

int main() {
  TpchConfig cfg;
  cfg.scale_factor = 0.05;
  auto li = GenerateLineitem(cfg);
  NIPO_CHECK(li.ok());
  Table* lineitem = li.ValueOrDie().get();
  NIPO_CHECK(AddQ1GroupColumn(lineitem).ok());

  Pmu pmu(HwConfig::ScaledXeon(16));
  const HashAggregateSpec spec = MakeQ1Spec(*lineitem);
  auto result = ExecuteHashAggregate(spec, &pmu);
  NIPO_CHECK(result.ok());

  // Verify against the uninstrumented reference evaluation.
  auto reference = ComputeQ1Reference(*lineitem);
  NIPO_CHECK(reference.ok());
  NIPO_CHECK(result.ValueOrDie().passed_filter ==
             reference.ValueOrDie().passed_filter);

  TablePrinter table("TPC-H Q1 pricing summary (discounts in hundredths, "
                     "prices in cents)");
  table.SetHeader({"returnflag", "linestatus", "count", "sum_qty",
                   "sum_base_price"});
  const char* kFlagNames[] = {"A", "N", "R"};
  const char* kStatusNames[] = {"F", "O"};
  for (const GroupResult& g : result.ValueOrDie().groups) {
    const auto [flag, status] = Q1DecodeGroup(g.group);
    table.AddRow({kFlagNames[flag], kStatusNames[status],
                  std::to_string(g.count), std::to_string(g.sums[0]),
                  std::to_string(g.sums[1])});
  }
  table.Print(std::cout);

  std::printf("%llu of %llu lineitems passed the shipdate filter\n\n",
              static_cast<unsigned long long>(
                  result.ValueOrDie().passed_filter),
              static_cast<unsigned long long>(
                  result.ValueOrDie().input_rows));
  PrintCounters(pmu.Read(), "non-invasive counters for the Q1 run",
                std::cout);
  return 0;
}
