# Helper functions so later PRs can add a target in one line.
#
#   nipo_add_test(tests/foo_test.cc)     -> binary foo_test, registered in ctest
#   nipo_add_bench(bench/fig01_x.cc)     -> binary fig01_x under bench/
#   nipo_add_example(examples/bar.cc)    -> binary bar under examples/
#
# Every registered test carries a ctest TIMEOUT so a hung suite fails loudly
# instead of wedging the whole run: NIPO_TEST_TIMEOUT seconds by default
# (generous -- sanitizer builds are slow), or an explicit
#   nipo_add_test(tests/foo_test.cc TIMEOUT 60)
# for suites that should be tighter.

set(NIPO_TEST_TIMEOUT 600 CACHE STRING
    "Default per-test ctest timeout in seconds")

function(nipo_set_warnings target)
  if(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(NIPO_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  else()
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    # GCC 12 emits -Wrestrict false positives for `const char* + std::string&&`
    # at -O2 (GCC bug 105651); the diagnostic fires inside libstdc++ headers.
    if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
       AND CMAKE_CXX_COMPILER_VERSION VERSION_GREATER_EQUAL 12
       AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
      target_compile_options(${target} PRIVATE -Wno-restrict)
    endif()
    if(NIPO_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  endif()
endfunction()

function(nipo_add_test source)
  cmake_parse_arguments(ARG "" "TIMEOUT" "" ${ARGN})
  if(NOT ARG_TIMEOUT)
    set(ARG_TIMEOUT ${NIPO_TEST_TIMEOUT})
  endif()
  get_filename_component(name ${source} NAME_WE)
  add_executable(${name} ${source})
  target_link_libraries(${name} PRIVATE nipo GTest::gtest GTest::gtest_main)
  nipo_set_warnings(${name})
  add_test(NAME ${name} COMMAND ${name})
  set_tests_properties(${name} PROPERTIES TIMEOUT ${ARG_TIMEOUT})
endfunction()

function(nipo_add_bench source)
  get_filename_component(name ${source} NAME_WE)
  add_executable(${name} ${source})
  target_include_directories(${name} PRIVATE ${CMAKE_CURRENT_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE nipo)
  nipo_set_warnings(${name})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(nipo_add_example source)
  get_filename_component(name ${source} NAME_WE)
  add_executable(${name} ${source})
  target_link_libraries(${name} PRIVATE nipo)
  nipo_set_warnings(${name})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/examples)
endfunction()
