/// \file fig12_selectivity_sweep.cc
/// Figure 12: Q6 (intro variant) with varying shipdate selectivity. For
/// each selectivity the bench reports the min/avg/max base-line run-time
/// over all 24 fixed orders and the average progressive run-time (over a
/// sample of start orders) for reoptimization intervals 10, 75 and 200.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  Engine engine = MakeQ6Engine(/*scale_factor=*/0.02, Layout::kClustered);
  const Table* li = engine.GetTable("lineitem").ValueOrDie();
  const size_t kVectorSize = 512;  // ~236 vectors: ReopInt 200 fires once

  const std::vector<size_t> reop_intervals = {10, 75, 200};
  // Representative start orders (the paper averages over initial PEOs).
  const std::vector<std::vector<size_t>> starts = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2},
      {2, 0, 3, 1}, {3, 0, 1, 2}, {0, 2, 3, 1},
  };

  TablePrinter table("Figure 12: Q6 with varying shipdate selectivity");
  table.SetHeader({"shipdate sel", "min base", "avg base", "max base",
                   "avg ReopInt10", "avg ReopInt75", "avg ReopInt200"});

  for (double target : ShipdateSelectivityGrid()) {
    const int32_t value =
        ValueForSelectivity(*li, "l_shipdate", target).ValueOrDie();
    QuerySpec query;
    query.table = "lineitem";
    query.ops = MakeQ6IntroPredicates(value);
    query.payload_columns = Q6PayloadColumns();

    const SeriesStats base =
        Stats(PermutationSweep(engine, query, kVectorSize));

    std::vector<double> row = {target * 100, base.min, base.avg, base.max};
    for (size_t interval : reop_intervals) {
      ExecOptions options;
      options.mode = ExecMode::kProgressive;
      options.progressive.vector_size = kVectorSize;
      options.progressive.reopt_interval = interval;
      double total = 0;
      for (const auto& order : starts) {
        options.order = order;
        auto prog = engine.Execute(query, options);
        NIPO_CHECK(prog.ok());
        total += prog.ValueOrDie().simulated_msec;
      }
      row.push_back(total / static_cast<double>(starts.size()));
    }
    table.AddNumericRow(row, 3);
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: ReopInt 10 tracks the min base line closely in the\n"
         "0.1%-10% range, sits within ~2x of it below 0.1% (convergence\n"
         "cost), and trails slightly at very high selectivities; overall\n"
         "improvement up to ~3x vs avg and ~4.5x vs max base line.\n";
  return 0;
}
