/// \file fig04_two_pred_mispredict.cc
/// Figure 4: measured/predicted ratios for the three misprediction
/// counters of a two-predicate selection, over the full 2D selectivity
/// grid. Values near 1.0 everywhere mean the multi-predicate branch model
/// (input of predicate 2 = output of predicate 1) is sound.

#include "bench_util.h"
#include "common/prng.h"
#include "cost/branch_model.h"
#include "exec/pipeline.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kRows = 150'000;
  Prng prng(13);
  std::vector<int32_t> a(kRows), b(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(1000));
    b[i] = static_cast<int32_t>(prng.NextBounded(1000));
  }
  Table t("t");
  NIPO_CHECK(t.AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(t.AddColumn("b", std::move(b)).ok());

  const PredictorConfig predictor = PredictorConfig::Symmetric(6);
  const std::vector<double> grid = {0.1, 0.3, 0.5, 0.7, 0.9};

  TablePrinter nt("Figure 4a: measured/predicted NOT-TAKEN mispredictions");
  TablePrinter tk("Figure 4b: measured/predicted TAKEN mispredictions");
  TablePrinter all("Figure 4c: measured/predicted ALL mispredictions");
  for (TablePrinter* table : {&nt, &tk, &all}) {
    std::vector<std::string> header = {"sel1\\sel2"};
    for (double s2 : grid) header.push_back(FormatDouble(s2, 1));
    table->SetHeader(header);
  }

  for (double s1 : grid) {
    std::vector<std::string> row_nt = {FormatDouble(s1, 1)};
    std::vector<std::string> row_tk = {FormatDouble(s1, 1)};
    std::vector<std::string> row_all = {FormatDouble(s1, 1)};
    for (double s2 : grid) {
      Pmu pmu(HwConfig::ScaledXeon(16));
      auto exec = PipelineExecutor::Compile(
          t,
          {OperatorSpec::Predicate({"a", CompareOp::kLt, s1 * 1000}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, s2 * 1000})},
          {}, &pmu);
      NIPO_CHECK(exec.ok());
      exec.ValueOrDie()->ExecuteAll();
      const PmuCounters measured = pmu.Read();
      const BranchEstimate predicted = EstimateScanBranches(
          predictor, static_cast<double>(kRows), {s1, s2});
      row_nt.push_back(FormatDouble(
          static_cast<double>(measured.not_taken_mispredictions) /
              std::max(1.0, predicted.not_taken_mp),
          2));
      row_tk.push_back(
          FormatDouble(static_cast<double>(measured.taken_mispredictions) /
                           std::max(1.0, predicted.taken_mp),
                       2));
      row_all.push_back(
          FormatDouble(static_cast<double>(measured.mispredictions) /
                           std::max(1.0, predicted.mp),
                       2));
    }
    nt.AddRow(row_nt);
    tk.AddRow(row_tk);
    all.AddRow(row_all);
  }
  nt.Print(std::cout);
  tk.Print(std::cout);
  all.Print(std::cout);
  std::cout << "Paper shape: ratios within ~10% of 1.0 across the grid,\n"
               "with mild deviations in the 60-80% band (4a) and 20-40%\n"
               "band of the first predicate (4b).\n";
  return 0;
}
