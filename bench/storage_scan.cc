/// \file storage_scan.cc
/// Compressed-storage scan bench (DESIGN.md Section 10): the same
/// Q6-shaped scans over plain arrays and over dictionary/bit-packed
/// blocks with zone maps, sweeping encoding x selectivity. The headline
/// metric is *simulated* tuples/sec (input tuples over the simulated
/// critical path), so the numbers are bit-stable on any host.
///
/// Three correctness/perf gates make the sweep trustworthy: every
/// encoded configuration must return the plain configuration's results
/// bit-identically; the selective scans must actually skip blocks
/// (zone_skipped > 0 over the bulk-load-clustered shipdate); and the
/// selective encoded scan must beat plain arrays by >= 1.3x simulated
/// throughput -- the acceptance criterion of this storage layer.
///
/// Run with `--json` (ci/check.sh does, in --quick smoke form) to write
/// BENCH_storage_scan.json for the perf trajectory and the sixth
/// ci/perf_gate.py gate (metric: sim_tuples_per_sec).

#include <iostream>

#include "bench_util.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

struct ConfigResult {
  std::string name;
  uint64_t rows = 0;
  uint64_t qualifying = 0;
  uint64_t zone_skipped = 0;
  double aggregate = 0;
  double simulated_msec = 0;
  double sim_tuples_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_storage_scan.json", &json_path);

  // SF 0.1 = ~600k lineitems, the acceptance floor of this layer.
  // Unlike the wall-clock benches, --quick does NOT shrink the data:
  // the whole sweep is sub-second, and keeping the smoke at anchor
  // scale pins the ci/perf_gate.py ratio at ~1.0 (simulated metrics
  // vary only with the heap layout the cache sim hashes, a ~1e-5
  // relative wobble across processes). Zone-skip throughput scales
  // superlinearly with table size, so a shrunken smoke would trip the
  // gate for the wrong reason.
  const double scale_factor = 0.1;
  const size_t kVectorSize = 8'192;
  Engine plain = MakeQ6Engine(scale_factor, Layout::kClustered);
  Engine encoded = MakeQ6Engine(scale_factor, Layout::kClustered);
  {
    auto stats = encoded.EncodeTable("lineitem");
    NIPO_CHECK(stats.ok());
    NIPO_CHECK(stats.ValueOrDie().encoded_bytes <
               stats.ValueOrDie().plain_bytes);
  }
  const Table& lineitem = *plain.GetTable("lineitem").ValueOrDie();
  const uint64_t rows = lineitem.num_rows();

  // The selectivity sweep: the canonical one-year Q6 window, a highly
  // selective shipdate scan (0.1%), and an all-passing scan where zone
  // maps cannot help and the bench prices pure decode overhead.
  struct Config {
    std::string name;
    QuerySpec query;
  };
  std::vector<Config> configs;
  {
    Config year;
    year.name = "q6_year";
    year.query.table = "lineitem";
    year.query.ops = MakeQ6FullPredicates();
    year.query.payload_columns = Q6PayloadColumns();
    configs.push_back(std::move(year));

    Config selective;
    selective.name = "q6_selective";
    selective.query.table = "lineitem";
    selective.query.ops = MakeQ6IntroPredicates(
        ValueForSelectivity(lineitem, "l_shipdate", 1e-3).ValueOrDie());
    selective.query.payload_columns = Q6PayloadColumns();
    configs.push_back(std::move(selective));

    Config full;
    full.name = "full_scan";
    full.query.table = "lineitem";
    full.query.ops = {
        OperatorSpec::Predicate({"l_quantity", CompareOp::kLe, 50.0})};
    full.query.payload_columns = Q6PayloadColumns();
    configs.push_back(std::move(full));
  }

  TablePrinter table("Storage scan, plain vs encoded (" +
                     std::to_string(rows) + " lineitems, vector " +
                     std::to_string(kVectorSize) + ")");
  table.SetHeader({"pipeline", "sim Mtuples/s", "sim msec", "zone skipped",
                   "speedup vs plain", "results"});

  ExecOptions options;
  options.vector_size = kVectorSize;
  std::vector<ConfigResult> results;
  for (const Config& config : configs) {
    ConfigResult per_storage[2];
    int which = 0;
    for (Engine* engine : {&plain, &encoded}) {
      auto r = engine->Execute(config.query, options);
      NIPO_CHECK(r.ok());
      const ExecReport& report = r.ValueOrDie();
      ConfigResult& out = per_storage[which];
      out.name = (which == 0 ? "plain:" : "encoded:") + config.name;
      out.rows = rows;
      out.qualifying = report.qualifying_tuples;
      out.zone_skipped = report.zone_skipped_tuples;
      out.aggregate = report.aggregate;
      out.simulated_msec = report.simulated_msec;
      out.sim_tuples_per_sec =
          static_cast<double>(rows) / (report.simulated_msec / 1e3);
      ++which;
    }

    // Correctness gate: encoded storage must be invisible in the results.
    const bool identical =
        per_storage[0].qualifying == per_storage[1].qualifying &&
        per_storage[0].aggregate == per_storage[1].aggregate;
    NIPO_CHECK(identical);
    NIPO_CHECK(per_storage[0].zone_skipped == 0);  // plain never skips
    // Selective scans over the clustered shipdate must skip blocks.
    if (config.name != "full_scan") {
      NIPO_CHECK(per_storage[1].zone_skipped > 0);
    }

    const double speedup =
        per_storage[0].simulated_msec / per_storage[1].simulated_msec;
    for (int s = 0; s < 2; ++s) {
      const ConfigResult& out = per_storage[s];
      table.AddRow({out.name, FormatDouble(out.sim_tuples_per_sec / 1e6, 2),
                    FormatDouble(out.simulated_msec, 3),
                    std::to_string(out.zone_skipped),
                    s == 0 ? "1.00x" : FormatDouble(speedup, 2) + "x",
                    identical ? "bit-identical" : "MISMATCH"});
      results.push_back(out);
    }

    // Perf gate (acceptance criterion): at SF 0.1, the selective
    // zone-mapped encoded scan must beat plain arrays by >= 1.3x
    // simulated throughput. Deterministic at fixed scale, so it binds
    // on smoke runs too.
    if (config.name == "q6_selective") {
      NIPO_CHECK(speedup >= 1.3);
    }
  }
  table.Print(std::cout);
  std::cout << "results: bit-identical between plain and encoded storage\n";

  if (write_json) {
    JsonValue arr = JsonValue::Array();
    for (const ConfigResult& r : results) {
      arr.Push(JsonValue::Object()
                   .Add("name", r.name)
                   .Add("qualifying", r.qualifying)
                   .Add("zone_skipped", r.zone_skipped)
                   .Add("simulated_msec", r.simulated_msec)
                   .Add("sim_tuples_per_sec", r.sim_tuples_per_sec));
    }
    WriteJsonArtifact(json_path,
                      JsonValue::Object()
                          .Add("bench", "storage_scan")
                          .Add("quick", quick)
                          .Add("rows", rows)
                          .Add("vector_size", kVectorSize)
                          .Add("results_identical", true)
                          .Add("configs", arr));
  }
  return 0;
}
