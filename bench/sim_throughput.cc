/// \file sim_throughput.cc
/// Simulator throughput bench: host wall-clock tuples/sec of the PMU
/// simulation on Q6-shaped pipelines, batched vs scalar event reporting
/// (DESIGN.md "Batched simulation"), with the counter-invariance
/// correctness gate enforced on every configuration.
///
/// This is the perf-trajectory anchor for the simulation layer: run with
/// `--json` (ci/check.sh does) to write BENCH_sim_throughput.json, so
/// wall-clock regressions of the simulator itself become visible across
/// PRs (EXPERIMENTS.md "Perf trajectory"). `--quick` shrinks the workload
/// to CI-smoke size.
///
/// The batched numbers are the ones that matter for future capacity
/// (they bound how much workload every figure bench and driver can
/// afford); the scalar run exists as the differential baseline and to
/// report the batching speedup on this machine.

#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_util.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

double WallMsec(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

struct ConfigResult {
  std::string name;
  uint64_t rows = 0;
  double wall_msec_batched = 0;
  double wall_msec_scalar = 0;
  double tuples_per_sec_batched = 0;
  double speedup = 0;
  double simulated_msec = 0;
  bool counters_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_sim_throughput.json", &json_path);

  // ~300k lineitems (60k under --quick): big enough that per-tuple
  // simulation cost dominates, small enough for a CI smoke step.
  const double scale_factor = quick ? 0.01 : 0.05;
  // Best-of-2 even in quick mode: the first iteration absorbs process
  // warmup (page faults, heap growth), which best-of-1 would hand to the
  // perf gate as noise.
  const int reps = quick ? 2 : 3;
  const size_t kVectorSize = 8'192;
  Engine engine = MakeQ6Engine(scale_factor, Layout::kClustered);
  const Table& lineitem =
      *engine.GetTable("lineitem").ValueOrDie();
  const uint64_t rows = lineitem.num_rows();

  // Q6-shaped configurations: the full five-predicate Q6 plus intro-Q6
  // single-predicate scans across the selectivity range (the regimes the
  // figure benches sweep).
  struct Config {
    std::string name;
    QuerySpec query;
  };
  std::vector<Config> configs;
  {
    Config full;
    full.name = "q6_full";
    full.query.table = "lineitem";
    full.query.ops = MakeQ6FullPredicates();
    full.query.payload_columns = Q6PayloadColumns();
    configs.push_back(std::move(full));
    for (const double sel : {1e-4, 1e-2, 0.5}) {
      Config c;
      c.name = "q6_intro_sel_" + PercentLabel(sel);
      const int32_t value =
          ValueForSelectivity(lineitem, "l_shipdate", sel).ValueOrDie();
      c.query.table = "lineitem";
      c.query.ops = MakeQ6IntroPredicates(value);
      c.query.payload_columns = Q6PayloadColumns();
      configs.push_back(std::move(c));
    }
  }

  TablePrinter table("Simulator throughput, batched vs scalar reporting (" +
                     std::to_string(rows) + " lineitems, best of " +
                     std::to_string(reps) + ")");
  table.SetHeader({"pipeline", "Mtuples/s batched", "Mtuples/s scalar",
                   "speedup", "sim msec", "counters"});

  std::vector<ConfigResult> results;
  for (const Config& config : configs) {
    ExecOptions options;
    options.vector_size = kVectorSize;
    ExecReport batched_report, scalar_report;
    engine.set_reporting_mode(ReportingMode::kBatched);
    const double batched_msec = WallMsec(
        [&] {
          auto r = engine.Execute(config.query, options);
          NIPO_CHECK(r.ok());
          batched_report = std::move(r.ValueOrDie());
        },
        reps);
    engine.set_reporting_mode(ReportingMode::kScalar);
    const double scalar_msec = WallMsec(
        [&] {
          auto r = engine.Execute(config.query, options);
          NIPO_CHECK(r.ok());
          scalar_report = std::move(r.ValueOrDie());
        },
        reps);
    engine.set_reporting_mode(ReportingMode::kBatched);

    // Correctness gate: the two reporting paths must agree bit-for-bit —
    // on the query result and on every PMU counter.
    NIPO_CHECK(batched_report.qualifying_tuples ==
               scalar_report.qualifying_tuples);
    NIPO_CHECK(batched_report.aggregate == scalar_report.aggregate);
    const bool identical =
        batched_report.counters == scalar_report.counters;
    NIPO_CHECK(identical);

    ConfigResult out;
    out.name = config.name;
    out.rows = rows;
    out.wall_msec_batched = batched_msec;
    out.wall_msec_scalar = scalar_msec;
    out.tuples_per_sec_batched =
        static_cast<double>(rows) / (batched_msec / 1e3);
    out.speedup = scalar_msec / batched_msec;
    out.simulated_msec = batched_report.simulated_msec;
    out.counters_identical = identical;
    results.push_back(out);

    table.AddRow({config.name,
                  FormatDouble(out.tuples_per_sec_batched / 1e6, 2),
                  FormatDouble(static_cast<double>(rows) /
                                   (scalar_msec / 1e3) / 1e6,
                               2),
                  FormatDouble(out.speedup, 2) + "x",
                  FormatDouble(out.simulated_msec, 3),
                  identical ? "bit-identical" : "MISMATCH"});
  }
  table.Print(std::cout);

  double geomean = 1.0;
  for (const ConfigResult& r : results) geomean *= r.speedup;
  geomean = std::pow(geomean, 1.0 / static_cast<double>(results.size()));
  std::cout << "geomean batching speedup: " << FormatDouble(geomean, 2)
            << "x\n";

  if (write_json) {
    JsonValue root = JsonValue::Object();
    root.Add("bench", "sim_throughput");
    root.Add("quick", quick);
    root.Add("rows", rows);
    root.Add("vector_size", kVectorSize);
    root.Add("geomean_speedup_vs_scalar_replay", geomean);
    JsonValue arr = JsonValue::Array();
    for (const ConfigResult& r : results) {
      JsonValue c = JsonValue::Object();
      c.Add("name", r.name);
      c.Add("wall_msec_batched", r.wall_msec_batched);
      c.Add("wall_msec_scalar", r.wall_msec_scalar);
      c.Add("tuples_per_sec_batched", r.tuples_per_sec_batched);
      // Batched vs the *current* scalar replay mode (which shares the
      // fused cache walks). The larger vs-pre-PR reference lives in
      // EXPERIMENTS.md "Perf trajectory".
      c.Add("speedup_vs_scalar_replay", r.speedup);
      c.Add("simulated_msec", r.simulated_msec);
      c.Add("counters_identical", r.counters_identical);
      arr.Push(c);
    }
    root.Add("configs", arr);
    WriteJsonArtifact(json_path, root);
  }
  return 0;
}
