/// \file simd_kernels.cc
/// SIMD kernel bench: host wall-clock throughput of the executor's hot
/// kernels (DESIGN.md Section 8) — compare-to-mask selection, splitmix64
/// key hashing, and hash-table probing — AVX2 versus the branch-free
/// scalar fallback (and batched+prefetched versus dependent per-key
/// probing), with bit-identity between the two kernel levels enforced on
/// every configuration.
///
/// This is the perf-trajectory anchor for the SIMD layer: run with
/// `--json` (ci/check.sh does) to write BENCH_simd_kernels.json. The
/// committed repo-root anchor records the AVX2 speedups this machine
/// achieves; the CI gate checks the smoke `tuples_per_sec_simd` against
/// it. `--quick` shrinks the workload to CI-smoke size.
///
/// The artifact also carries a "crossover" array: the SIMD-aware pricing
/// model's branching vs branch-free cycles per tuple across the
/// selectivity grid, and the priced crossover selectivity — the data
/// behind EXPERIMENTS.md "SIMD kernels".

#include <chrono>
#include <functional>
#include <iostream>

#include "bench_util.h"
#include "common/prng.h"
#include "cost/branch_model.h"
#include "exec/hash_table.h"
#include "exec/pipeline.h"
#include "exec/simd.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

double WallMsec(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

struct ConfigResult {
  std::string name;
  uint64_t rows = 0;
  double wall_msec_simd = 0;
  double wall_msec_scalar = 0;
  double tuples_per_sec_simd = 0;
  double speedup = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_simd_kernels.json", &json_path);

  const bool avx2 = simd::Avx2Available();
  // Best-of-2 even in quick mode: the first iteration absorbs process
  // warmup, which best-of-1 would hand to the perf gate as noise.
  const int reps = quick ? 2 : 3;
  // Selection/hash working set: 64k elements (0.5 MB of doubles) stays
  // resident in the host's caches across the `iters` sweeps, so the
  // measurement is of the kernel, not of DRAM bandwidth. kSimBlockRows-
  // sized calls would measure call overhead instead; 64k amortizes it the
  // way the executor's block loop does.
  const size_t n = 1u << 16;
  const size_t iters = quick ? 64 : 512;

  Prng prng(42);
  std::vector<double> doubles(n);
  std::vector<int32_t> int32s(n);
  std::vector<int64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    doubles[i] = prng.NextDouble();
    int32s[i] = static_cast<int32_t>(prng.NextBounded(1'000'000));
    keys[i] = static_cast<int64_t>(prng.Next() >> 1);
  }

  std::vector<ConfigResult> results;

  // Runs `kernel(level, simd_pass)` at both levels, times them, and
  // checks the two passes produced bit-identical outputs via
  // `identical()`. The kernels pick their output buffers by `simd_pass`,
  // not by level: on a host without AVX2 (or under NIPO_SIMD=OFF) the
  // "simd" pass runs the scalar fallback, and the identity gate then
  // degenerates to scalar-vs-scalar instead of comparing against buffers
  // that were never written.
  auto run_levels = [&](const std::string& name, uint64_t rows,
                        const std::function<void(simd::SimdLevel, bool)>& kernel,
                        const std::function<bool()>& identical) {
    ConfigResult out;
    out.name = name;
    out.rows = rows;
    out.wall_msec_scalar = WallMsec(
        [&] { kernel(simd::SimdLevel::kScalar, /*simd_pass=*/false); }, reps);
    out.wall_msec_simd = WallMsec(
        [&] {
          kernel(avx2 ? simd::SimdLevel::kAvx2 : simd::SimdLevel::kScalar,
                 /*simd_pass=*/true);
        },
        reps);
    out.identical = identical();
    NIPO_CHECK(out.identical);
    out.tuples_per_sec_simd =
        static_cast<double>(rows) / (out.wall_msec_simd / 1e3);
    out.speedup = out.wall_msec_scalar / out.wall_msec_simd;
    results.push_back(out);
  };

  // --- selection: compare-to-mask + selection-vector compaction, dense
  // input, selectivity 0.5 (the branchy executor's worst case). Entries
  // of the selection vector past the returned count are unspecified, so
  // identity compares the prefix (plus the full pass-flag array).
  std::vector<uint8_t> pass_a(n), pass_b(n);
  std::vector<uint32_t> sel_a(n), sel_b(n);
  size_t count_a = 0, count_b = 0;
  const auto select_identical = [&] {
    return count_a == count_b && pass_a == pass_b &&
           std::equal(sel_a.begin(),
                      sel_a.begin() + static_cast<ptrdiff_t>(count_a),
                      sel_b.begin());
  };
  const auto select_config = [&](const std::string& name, DataType type,
                                 const void* data, double value) {
    run_levels(
        name, n * iters,
        [&, type, data, value](simd::SimdLevel level, bool simd_pass) {
          for (size_t it = 0; it < iters; ++it) {
            (simd_pass ? count_b : count_a) = simd::CompareSelect(
                level, type, static_cast<const uint8_t*>(data), 0,
                CompareOp::kLt, value, nullptr, nullptr, n,
                (simd_pass ? pass_b : pass_a).data(),
                (simd_pass ? sel_b : sel_a).data());
          }
        },
        select_identical);
  };
  select_config("select_double", DataType::kDouble, doubles.data(), 0.5);
  select_config("select_int32", DataType::kInt32, int32s.data(), 500'000.0);

  // --- hashing: the splitmix64 finalizer over int64 keys.
  std::vector<uint64_t> hash_a(n), hash_b(n);
  run_levels(
      "hash_int64", n * iters,
      [&](simd::SimdLevel level, bool simd_pass) {
        for (size_t it = 0; it < iters; ++it) {
          simd::HashKeys(level, keys.data(), n,
                         (simd_pass ? hash_b : hash_a).data());
        }
      },
      [&] { return hash_a == hash_b; });

  // --- probing: raw chain walks (no simulated booking) over a table far
  // larger than the host caches; the batched path hides the slot misses
  // behind SIMD hashing + prefetch, the scalar path walks dependently.
  {
    const size_t build = quick ? (1u << 16) : (1u << 21);
    const size_t probes = quick ? (1u << 19) : (1u << 23);
    Pmu pmu;  // setup-only booking; ProbeKernel itself books nothing
    InstrumentedHashTable table(build, &pmu);
    for (size_t i = 0; i < build; ++i) {
      const Status st =
          table.Insert(static_cast<int64_t>(prng.NextBounded(2 * build)),
                       static_cast<int64_t>(i));
      // Random keys collide; duplicates keep the first value.
      NIPO_CHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
    }
    std::vector<int64_t> probe_keys(probes);
    for (size_t i = 0; i < probes; ++i) {
      probe_keys[i] = static_cast<int64_t>(prng.NextBounded(2 * build));
    }
    std::vector<uint8_t> hits_a(probes), hits_b(probes);
    std::vector<int64_t> vals_a(probes, 0), vals_b(probes, 0);
    size_t hits_scalar = 0, hits_batched = 0;
    ConfigResult out;
    out.name = "probe_hash_table";
    out.rows = probes;
    out.wall_msec_scalar = WallMsec(
        [&] {
          hits_scalar = table.ProbeKernel(probe_keys.data(), probes,
                                          vals_a.data(), hits_a.data(),
                                          /*batched=*/false);
        },
        reps);
    out.wall_msec_simd = WallMsec(
        [&] {
          hits_batched = table.ProbeKernel(probe_keys.data(), probes,
                                           vals_b.data(), hits_b.data(),
                                           /*batched=*/true);
        },
        reps);
    out.identical =
        hits_scalar == hits_batched && hits_a == hits_b && vals_a == vals_b;
    NIPO_CHECK(out.identical);
    out.tuples_per_sec_simd =
        static_cast<double>(probes) / (out.wall_msec_simd / 1e3);
    out.speedup = out.wall_msec_scalar / out.wall_msec_simd;
    results.push_back(out);
  }

  TablePrinter table("SIMD kernel throughput, " +
                     std::string(avx2 ? "AVX2" : "scalar-only host") +
                     " vs branch-free scalar (best of " +
                     std::to_string(reps) + ")");
  table.SetHeader(
      {"kernel", "Mtuples/s simd", "Mtuples/s scalar", "speedup", "identical"});
  for (const ConfigResult& r : results) {
    table.AddRow({r.name, FormatDouble(r.tuples_per_sec_simd / 1e6, 2),
                  FormatDouble(static_cast<double>(r.rows) /
                                   (r.wall_msec_scalar / 1e3) / 1e6,
                               2),
                  FormatDouble(r.speedup, 2) + "x",
                  r.identical ? "bit-identical" : "MISMATCH"});
  }
  table.Print(std::cout);

  // --- SIMD-aware pricing curve on the default simulated machine: the
  // crossover the progressive optimizer uses to pick predicate forms.
  const HwConfig hw;
  const double crossover = ComputeFormCrossover(
      hw.cycle_model, hw.predictor, LoopCostModel::kCompareInstructions,
      LoopCostModel::kBranchFreeInstructions, 0.0);
  std::cout << "priced branching/branch-free crossover selectivity: "
            << FormatDouble(crossover, 4) << "\n";

  if (write_json) {
    JsonValue root = JsonValue::Object();
    root.Add("bench", "simd_kernels");
    root.Add("quick", quick);
    root.Add("avx2_available", avx2);
    root.Add("rows", static_cast<uint64_t>(n));
    JsonValue arr = JsonValue::Array();
    for (const ConfigResult& r : results) {
      JsonValue c = JsonValue::Object();
      c.Add("name", r.name);
      c.Add("rows", r.rows);
      c.Add("wall_msec_simd", r.wall_msec_simd);
      c.Add("wall_msec_scalar", r.wall_msec_scalar);
      c.Add("tuples_per_sec_simd", r.tuples_per_sec_simd);
      c.Add("speedup_vs_scalar", r.speedup);
      c.Add("identical", r.identical);
      arr.Push(c);
    }
    root.Add("configs", arr);
    JsonValue cross = JsonValue::Array();
    for (const double s :
         {0.0, 0.001, 0.01, 0.05, 1.0 / 15.0, 0.1, 0.2, 0.3, 0.5}) {
      const PredicateFormCosts costs = PricePredicateForms(
          hw.cycle_model, hw.predictor, s, LoopCostModel::kCompareInstructions,
          LoopCostModel::kBranchFreeInstructions, 0.0);
      JsonValue p = JsonValue::Object();
      p.Add("selectivity", s);
      p.Add("branching_cycles_per_tuple", costs.branching);
      p.Add("branch_free_cycles_per_tuple", costs.branch_free);
      cross.Push(p);
    }
    root.Add("crossover", cross);
    root.Add("crossover_selectivity", crossover);
    WriteJsonArtifact(json_path, root);
  }
  return 0;
}
