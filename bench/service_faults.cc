/// \file service_faults.cc
/// Graceful degradation under injected faults (DESIGN.md Section 9
/// "Fault-tolerant service"): a homogeneous scan workload arrives as a
/// Poisson stream at 70% of the fault-free service capacity on a
/// 2-worker pool, every query carrying the same simulated deadline, and
/// the per-quantum transient-fault rate is swept from zero to a level
/// that pushes the *effective* load (retries re-run whole attempts, a
/// slice of quanta stall at 4x) past saturation. Three service
/// configurations face the same fault schedule (same FaultPlan seed —
/// draws are pure per-(query, attempt, quantum) functions, so the
/// configs see identical fault coordinates):
///
///   no_retry    max_attempts = 1 — every transient fault kills its
///               query (kFailed); capacity is never spent twice, but
///               goodput falls roughly with the per-attempt fault
///               probability;
///   retry       capped-exponential-backoff retry (4 attempts) —
///               failed attempts are re-run, recovering almost every
///               query. At moderate fault rates the recovery is nearly
///               free and retry clearly wins; at the top rate the
///               re-runs burn capacity exactly when faults are most
///               frequent (retry amplification), the backlog grows,
///               and the tail of the stream dies by deadline instead
///               (kDeadlineExceeded) — after burning worker time;
///   retry_shed  retry + deadline-aware admission shedding — queries
///               predicted to miss their deadline are rejected at
///               admission (kShed) before consuming a slot, so the
///               capacity a doomed query would have wasted serves
///               queries that can still finish in time. Shedding is
///               what keeps retry viable past saturation.
///
/// The headline is goodput (completed-OK queries per simulated second)
/// per (config, fault rate). Gates: at fault rate zero the three
/// configs are bit-identical and all-OK (the fault layer is inert when
/// nothing fires); goodput degrades gracefully — positive everywhere,
/// lower at the top rate than at zero; at the moderate rate retry
/// beats no_retry (recovery pays while capacity lasts); at the top
/// rate retry_shed beats plain retry (early rejection beats late
/// deadline kills — this is where unshedded retry amplification
/// actually loses to fail-fast); and the hardest point rerun is
/// bit-identical in every outcome, attempt count, backoff wait and
/// latency figure. All metrics are simulated time, bit-stable on any
/// host.
///
/// Run with `--json` (ci/check.sh does, in --quick smoke form) to write
/// BENCH_service_faults.json for the perf trajectory (EXPERIMENTS.md
/// "Graceful degradation"). The perf-gate metric is goodput at fault
/// rate zero — the fault-free service baseline tracks simulator health;
/// the faulty points measure *policy* quality, not speed.

#include <iostream>

#include "bench_util.h"
#include "common/prng.h"
#include "core/report.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed, size_t fk_domain) {
  Prng prng(seed);
  std::vector<int32_t> a(n), fk(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(fk_domain));
  }
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(t->AddColumn("fk", std::move(fk)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--verbose") verbose = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_service_faults.json", &json_path);

  const size_t scale = quick ? 2 : 1;
  Engine engine(HwConfig::ScaledXeon(quick ? 32 : 16));
  const size_t fact_rows = 48'000 / scale;
  const size_t dim_rows = 10'000 / scale;
  NIPO_CHECK(
      engine.RegisterTable(MakeFact("fact", fact_rows, 11, dim_rows)).ok());
  NIPO_CHECK(engine.RegisterTable(MakeDim("dim", dim_rows, 12)).ok());

  // A stream of identical scan+FK-probe queries: homogeneity keeps the
  // service-time distribution a single point, so every goodput movement
  // in the sweep is attributable to the fault axis, not workload mix.
  // burst_vectors = 4 puts ~6 quanta in each attempt — coarse enough
  // that per-quantum fault rates translate into meaningful per-attempt
  // failure probabilities, fine enough that deadline kills land mid-run.
  const size_t num_queries = quick ? 16 : 32;
  WorkloadSpec spec;
  const Table* dim_table = engine.GetTable("dim").ValueOrDie();
  for (size_t i = 0; i < num_queries; ++i) {
    WorkloadQuery q;
    q.name = "q" + std::to_string(i);
    q.query.table = "fact";
    q.query.ops = {
        OperatorSpec::Predicate({"a", CompareOp::kLt, 70.0}),
        OperatorSpec::FkProbe({"fk", dim_table, "attr", CompareOp::kLt, 60.0}),
    };
    q.progressive = false;
    q.config.vector_size = 2048 / scale;
    spec.queries.push_back(std::move(q));
  }
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  spec.options.burst_vectors = 4;

  // Calibrate the fault-free service capacity mu from a closed-queue run
  // (the calibration pins the arrival grid to the simulated machine, so
  // the same load fraction means the same thing in --quick and full
  // runs), then fix one open-loop operating point at 70% of it with a
  // 5x-solo deadline: enough headroom that the zero-fault point meets
  // every deadline, little enough that retry amplification at the top
  // fault rate pushes the effective load past 1 and deadlines start
  // deciding goodput.
  const WorkloadReport calib = ExecuteWorkloadBestOf2(engine, spec);
  const double mu_qps = calib.sim_queries_per_sec;
  const double solo_msec = calib.queries[0].drive.simulated_msec;
  const double rate_qps = 0.70 * mu_qps;
  const double deadline_msec = 5.0 * solo_msec;
  for (WorkloadQuery& q : spec.queries) q.sim_deadline_msec = deadline_msec;
  spec.options.arrival.kind = ArrivalKind::kPoisson;
  spec.options.arrival.rate_qps = rate_qps;
  spec.options.arrival.seed = 42;

  // The fault axis: per-quantum transient-fault probability, with a 5%
  // slice of quanta stalling at 4x throughout (a faulty fleet is also a
  // slow fleet). At ~6 quanta per attempt the top rate fails nearly
  // half the attempts — within what 4 attempts of retry can recover
  // query-wise, but not within the capacity the re-runs cost.
  const std::vector<double> fault_rates = {0.0, 0.02, 0.05, 0.10};
  FaultPlan faults;
  faults.seed = 1234;
  faults.stall_rate = 0.05;
  faults.stall_factor = 4.0;

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_base_msec = 0.25 * solo_msec;
  retry.backoff_cap_msec = 2.0 * solo_msec;

  struct Config {
    std::string name;
    bool retry = false;
    bool shed = false;
  };
  const std::vector<Config> configs = {
      {"no_retry", false, false},
      {"retry", true, false},
      {"retry_shed", true, true},
  };

  auto run_point = [&](const Config& config, double rate) {
    spec.options.faults = faults;
    spec.options.faults.transient_fault_rate = rate;
    spec.options.retry = config.retry ? retry : RetryPolicy{};
    spec.options.shed_deadline = config.shed;
    return ExecuteWorkloadBestOf2(engine, spec);
  };

  // reports[c][r]: config c at fault rate r.
  std::vector<std::vector<WorkloadReport>> reports(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    for (const double rate : fault_rates) {
      reports[c].push_back(run_point(configs[c], rate));
    }
  }

  TablePrinter table(
      "Service under faults, " + std::to_string(num_queries) +
      " queries, Poisson @ 0.7mu, deadline 5x solo, 2 workers "
      "(goodput qps by per-quantum transient-fault rate)");
  const size_t top = fault_rates.size() - 1;
  std::vector<std::string> header = {"config"};
  for (const double rate : fault_rates) {
    header.push_back("goodput @ " + FormatDouble(rate, 2));
  }
  header.push_back("ok/fail/ddl/shed @ top");
  table.SetHeader(header);
  for (size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> row = {configs[c].name};
    for (const WorkloadReport& r : reports[c]) {
      row.push_back(FormatDouble(r.sim_goodput_qps, 3));
    }
    const WorkloadReport& t = reports[c][top];
    row.push_back(std::to_string(t.queries_ok) + "/" +
                  std::to_string(t.queries_failed) + "/" +
                  std::to_string(t.queries_deadline_exceeded) + "/" +
                  std::to_string(t.queries_shed));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "service capacity mu (closed queue, fault-free): "
            << FormatDouble(mu_qps, 3) << " queries/sec simulated\n";
  std::cout << "goodput at top rate: no_retry "
            << FormatDouble(reports[0][top].sim_goodput_qps, 3) << ", retry "
            << FormatDouble(reports[1][top].sim_goodput_qps, 3)
            << ", retry_shed "
            << FormatDouble(reports[2][top].sim_goodput_qps, 3)
            << " queries/sec\n";
  if (verbose) {
    for (size_t c = 0; c < configs.size(); ++c) {
      for (size_t r = 0; r < fault_rates.size(); ++r) {
        PrintWorkloadReport(reports[c][r],
                            configs[c].name + " @ rate " +
                                FormatDouble(fault_rates[r], 2),
                            std::cout);
      }
    }
  }

  // Gate 1: at fault rate zero the three configs are bit-identical and
  // all-OK — retry policy and shedding are pure policy switches, inert
  // until a fault or a predicted miss actually occurs.
  for (size_t c = 0; c < configs.size(); ++c) {
    const WorkloadReport& r = reports[c][0];
    NIPO_CHECK(r.queries_ok == num_queries);
    NIPO_CHECK(r.sim_goodput_qps == reports[0][0].sim_goodput_qps);
    NIPO_CHECK(r.sim_makespan_msec == reports[0][0].sim_makespan_msec);
    NIPO_CHECK(r.total_retries == 0);
  }

  // Gate 2: graceful degradation — goodput stays positive at every
  // swept rate and is lower at the top rate than fault-free, for every
  // config.
  for (size_t c = 0; c < configs.size(); ++c) {
    for (const WorkloadReport& r : reports[c]) {
      NIPO_CHECK(r.sim_goodput_qps > 0);
    }
    NIPO_CHECK(reports[c].back().sim_goodput_qps <
               reports[c][0].sim_goodput_qps);
  }

  // Gate 3: at the moderate fault rate, retrying beats failing fast —
  // while capacity lasts, the recovered queries outweigh the re-runs
  // that recover them. (At the *top* rate this is no longer a given:
  // unshedded retry amplification can lose to fail-fast, which is
  // exactly the regime gate 4 measures.)
  const size_t mid = fault_rates.size() - 2;
  NIPO_CHECK(reports[1][mid].sim_goodput_qps >
             reports[0][mid].sim_goodput_qps);

  // Gate 4: at the top fault rate, shedding beats not shedding — early
  // rejection returns the capacity a doomed query would have burned
  // before its deadline kill. --quick (fewer, shorter queries, so a
  // handful of sheds at most) only requires shedding not to lose.
  const double shed_edge = quick ? 1.0 : 1.02;
  NIPO_CHECK(reports[2][top].sim_goodput_qps >=
             shed_edge * reports[1][top].sim_goodput_qps);

  // Gate 5: the hardest point — top fault rate, retry + shedding — is
  // bit-identical when rerun, in every outcome, attempt count, backoff
  // wait and latency figure.
  {
    const WorkloadReport& first = reports[2][top];
    const WorkloadReport rerun = run_point(configs[2], fault_rates[top]);
    NIPO_CHECK(rerun.sim_makespan_msec == first.sim_makespan_msec);
    NIPO_CHECK(rerun.sim_goodput_qps == first.sim_goodput_qps);
    NIPO_CHECK(rerun.total_retries == first.total_retries);
    NIPO_CHECK(rerun.total_backoff_msec == first.total_backoff_msec);
    for (size_t i = 0; i < num_queries; ++i) {
      NIPO_CHECK(rerun.queries[i].outcome == first.queries[i].outcome);
      NIPO_CHECK(rerun.queries[i].attempts == first.queries[i].attempts);
      NIPO_CHECK(rerun.queries[i].sim_backoff_msec ==
                 first.queries[i].sim_backoff_msec);
      NIPO_CHECK(rerun.queries[i].sim_latency_msec ==
                 first.queries[i].sim_latency_msec);
    }
  }

  if (write_json) {
    JsonValue out_configs = JsonValue::Array();
    for (size_t c = 0; c < configs.size(); ++c) {
      JsonValue points = JsonValue::Array();
      for (size_t r = 0; r < fault_rates.size(); ++r) {
        const WorkloadReport& rep = reports[c][r];
        points.Push(
            JsonValue::Object()
                .Add("fault_rate", fault_rates[r])
                .Add("goodput_qps", rep.sim_goodput_qps)
                .Add("queries_ok", static_cast<uint64_t>(rep.queries_ok))
                .Add("queries_failed",
                     static_cast<uint64_t>(rep.queries_failed))
                .Add("queries_deadline_exceeded",
                     static_cast<uint64_t>(rep.queries_deadline_exceeded))
                .Add("queries_shed", static_cast<uint64_t>(rep.queries_shed))
                .Add("total_retries", static_cast<uint64_t>(rep.total_retries))
                .Add("total_backoff_msec", rep.total_backoff_msec)
                .Add("p99_latency_msec", rep.latency.p99_msec));
      }
      out_configs.Push(
          JsonValue::Object()
              .Add("name", configs[c].name)
              .Add("retry", configs[c].retry)
              .Add("shed", configs[c].shed)
              .Add("wall_msec", reports[c][0].wall_msec)
              .Add("sim_goodput_qps", reports[c][0].sim_goodput_qps)
              .Add("goodput_at_top_rate_qps",
                   reports[c].back().sim_goodput_qps)
              .Add("points", points));
    }
    WriteJsonArtifact(
        json_path,
        JsonValue::Object()
            .Add("bench", "service_faults")
            .Add("quick", quick)
            .Add("num_queries", static_cast<uint64_t>(num_queries))
            .Add("num_threads",
                 static_cast<uint64_t>(spec.options.num_threads))
            .Add("service_capacity_mu_qps", mu_qps)
            .Add("arrival_rate_qps", rate_qps)
            .Add("deadline_msec", deadline_msec)
            .Add("zero_fault_bit_identical", true)
            .Add("rerun_bit_identical", true)
            .Add("shed_vs_retry_goodput_ratio",
                 reports[2][top].sim_goodput_qps /
                     reports[1][top].sim_goodput_qps)
            .Add("configs", out_configs));
  }
  return 0;
}
