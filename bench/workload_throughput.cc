/// \file workload_throughput.cc
/// Multi-query workload throughput (DESIGN.md "Workload execution"): a
/// mixed queue of Q6-shaped scans, FK-probe joins and SUM aggregates over
/// a shared TPC-H database, executed through Engine::Execute(WorkloadSpec)
/// while admission control widens from 1 (fully serial) to 8 in-flight
/// queries on a fixed 4-worker pool.
///
/// The headline is *simulated* queries/sec from the deterministic
/// schedule replay, so the numbers are bit-stable on any host; host
/// wall-clock of the pool region is reported alongside. Two gates make
/// the sweep trustworthy: every query's counters must be bit-identical
/// across all admission configurations (deterministic mode), and the
/// widest configuration must actually improve aggregate throughput over
/// the serial one.
///
/// Run with `--json` (ci/check.sh does, in --quick smoke form) to write
/// BENCH_workload_throughput.json for the perf trajectory
/// (EXPERIMENTS.md "Perf trajectory").

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/report.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

/// Median of an int64 column, as the probe filter threshold.
double Median64(const Table& table, const std::string& column) {
  const auto& c = *table.GetTypedColumn<int64_t>(column).ValueOrDie();
  std::vector<int64_t> sorted(c.values().begin(), c.values().end());
  std::sort(sorted.begin(), sorted.end());
  return static_cast<double>(sorted[sorted.size() / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_workload_throughput.json", &json_path);

  // ~120k lineitems (30k under --quick) + orders + part, shared by every
  // query of the workload.
  TpchConfig cfg;
  cfg.scale_factor = quick ? 0.005 : 0.02;
  Engine engine(HwConfig::ScaledXeon(16));
  auto db = GenerateTpch(cfg);
  NIPO_CHECK(db.ok());
  const Table* orders = db.ValueOrDie().orders.get();
  const Table* part = db.ValueOrDie().part.get();
  const double orders_median = Median64(*orders, "o_totalprice");
  const double part_median = Median64(*part, "p_retailprice");
  const uint64_t rows = db.ValueOrDie().lineitem->num_rows();
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().lineitem)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().orders)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().part)).ok());
  const Table& lineitem = *engine.GetTable("lineitem").ValueOrDie();

  // The mixed queue: full Q6, intro-Q6 scans across the selectivity
  // range, and joins probing the co-clustered (orders) and random (part)
  // dimensions — each as fixed-order baseline and, where reordering has
  // room to help, progressive. 12 queries total.
  WorkloadSpec spec;
  auto add = [&spec](std::string name, QuerySpec query, bool progressive) {
    WorkloadQuery q;
    q.name = std::move(name);
    q.query = std::move(query);
    q.progressive = progressive;
    q.config.vector_size = 4'096;
    q.config.reopt_interval = 5;
    spec.queries.push_back(std::move(q));
  };
  {
    QuerySpec q6;
    q6.table = "lineitem";
    q6.ops = MakeQ6FullPredicates();
    q6.payload_columns = Q6PayloadColumns();
    add("q6_full_base", q6, false);
    add("q6_full_prog", q6, true);
    for (const double sel : {1e-3, 1e-2, 0.5}) {
      QuerySpec intro;
      intro.table = "lineitem";
      intro.ops = MakeQ6IntroPredicates(
          ValueForSelectivity(lineitem, "l_shipdate", sel).ValueOrDie());
      intro.payload_columns = Q6PayloadColumns();
      add("q6_intro_" + PercentLabel(sel) + "_base", intro, false);
      add("q6_intro_" + PercentLabel(sel) + "_prog", intro, true);
    }
    QuerySpec join;
    join.table = "lineitem";
    join.ops = {
        OperatorSpec::Predicate({"l_quantity", CompareOp::kLe, 25.0}),
        OperatorSpec::FkProbe({"l_orderkey", orders, "o_totalprice",
                               CompareOp::kLe, orders_median}),
    };
    join.payload_columns = {"l_extendedprice"};
    add("join_orders_base", join, false);
    add("join_orders_prog", join, true);
    QuerySpec two_probe;
    two_probe.table = "lineitem";
    two_probe.ops = {
        OperatorSpec::FkProbe({"l_orderkey", orders, "o_totalprice",
                               CompareOp::kLe, orders_median}),
        OperatorSpec::FkProbe({"l_partkey", part, "p_retailprice",
                               CompareOp::kLe, part_median}),
    };
    two_probe.payload_columns = {"l_extendedprice"};
    add("join_two_probe_base", two_probe, false);
    add("join_two_probe_prog", two_probe, true);
  }
  const size_t num_queries = spec.queries.size();

  spec.options.num_threads = 4;
  const std::vector<size_t> concurrency = {1, 2, 4, 8};

  TablePrinter table("Workload throughput, " + std::to_string(num_queries) +
                     " mixed queries over " + std::to_string(rows) +
                     " lineitems, 4 workers");
  table.SetHeader({"max concurrent", "peak in flight", "sim makespan msec",
                   "sim queries/s", "speedup", "wall msec"});

  struct ConfigResult {
    size_t max_concurrent = 0;
    WorkloadReport report;
  };
  std::vector<ConfigResult> results;
  for (const size_t max_concurrent : concurrency) {
    spec.options.max_concurrent = max_concurrent;
    auto r = engine.Execute(spec);
    NIPO_CHECK(r.ok());
    results.push_back({max_concurrent, std::move(r.ValueOrDie())});
  }

  // Correctness gate: deterministic mode promises every query's counters
  // and results are independent of the admission schedule (and equal to a
  // solo single-threaded run; tests/workload_driver_test.cc proves that
  // equivalence, the sweep here proves the independence).
  const WorkloadReport& serial = results.front().report;
  for (const ConfigResult& config : results) {
    for (size_t i = 0; i < num_queries; ++i) {
      NIPO_CHECK(config.report.queries[i].drive.total ==
                 serial.queries[i].drive.total);
      NIPO_CHECK(config.report.queries[i].drive.aggregate ==
                 serial.queries[i].drive.aggregate);
      NIPO_CHECK(config.report.queries[i].drive.qualifying_tuples ==
                 serial.queries[i].drive.qualifying_tuples);
    }
  }

  for (const ConfigResult& config : results) {
    const WorkloadReport& r = config.report;
    table.AddRow({std::to_string(config.max_concurrent),
                  std::to_string(r.peak_in_flight),
                  FormatDouble(r.sim_makespan_msec, 3),
                  FormatDouble(r.sim_queries_per_sec, 1),
                  FormatDouble(serial.sim_makespan_msec / r.sim_makespan_msec,
                               2) +
                      "x",
                  FormatDouble(r.wall_msec, 1)});
  }
  table.Print(std::cout);
  std::cout << "counters: bit-identical across all admission configs\n";

  // Throughput gate: widening admission onto the 4-worker pool must beat
  // the serialized schedule on aggregate simulated queries/sec.
  const WorkloadReport& widest = results.back().report;
  NIPO_CHECK(widest.sim_queries_per_sec > 1.5 * serial.sim_queries_per_sec);

  if (write_json) {
    JsonValue configs = JsonValue::Array();
    for (const ConfigResult& config : results) {
      const WorkloadReport& r = config.report;
      configs.Push(JsonValue::Object()
                       .Add("max_concurrent",
                            static_cast<uint64_t>(config.max_concurrent))
                       .Add("peak_in_flight",
                            static_cast<uint64_t>(r.peak_in_flight))
                       .Add("sim_makespan_msec", r.sim_makespan_msec)
                       .Add("sim_queries_per_sec", r.sim_queries_per_sec)
                       .Add("sim_serial_msec", r.sim_serial_msec)
                       .Add("wall_msec", r.wall_msec));
    }
    WriteJsonArtifact(
        json_path,
        JsonValue::Object()
            .Add("bench", "workload_throughput")
            .Add("quick", quick)
            .Add("rows", rows)
            .Add("num_queries", static_cast<uint64_t>(num_queries))
            .Add("num_threads", static_cast<uint64_t>(spec.options.num_threads))
            .Add("counters_identical", true)
            .Add("configs", configs));
  }
  return 0;
}
