/// \file fig01_best_worst_plan.cc
/// Figure 1: cost of the worst vs the best physical plan for the
/// four-predicate intro variant of TPC-H Q6, as the shipdate selectivity
/// sweeps from 1e-4 % to 100 %. The paper reports ratios rising to ~4x at
/// low selectivities and shrinking toward ~1 at high ones.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  Engine engine = MakeQ6Engine(/*scale_factor=*/0.02, Layout::kClustered);
  const Table* li = engine.GetTable("lineitem").ValueOrDie();

  TablePrinter table(
      "Figure 1: Best v. Worst plan costs for TPC-H Query 6 (intro "
      "variant, 24 orders)");
  table.SetHeader({"shipdate sel", "best ms", "worst ms", "worst/best"});

  for (double target : ShipdateSelectivityGrid()) {
    const int32_t value =
        ValueForSelectivity(*li, "l_shipdate", target).ValueOrDie();
    QuerySpec query;
    query.table = "lineitem";
    query.ops = MakeQ6IntroPredicates(value);
    query.payload_columns = Q6PayloadColumns();
    const std::vector<double> ms =
        PermutationSweep(engine, query, /*vector_size=*/8192);
    const SeriesStats s = Stats(ms);
    table.AddRow({PercentLabel(target), FormatDouble(s.min, 2),
                  FormatDouble(s.max, 2), FormatDouble(s.max / s.min, 2)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: ratio ~4 at very low shipdate selectivity,\n"
               "falling toward ~1 as the selectivity grows.\n";
  return 0;
}
