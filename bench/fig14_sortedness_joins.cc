/// \file fig14_sortedness_joins.cc
/// Figure 14: exploitation of sortedness. A query combining an expensive
/// selection with a foreign-key join runs selection-first and join-first
/// on data sets of decreasing sortedness -- bounded Knuth shuffles whose
/// distance sweeps from one tuple (1T) through the cache-line / L1 / L2 /
/// L3 capacities to full memory randomness (Mem). Reported per distance:
/// run-time (a) and L3 cache misses (b) for both orders.

#include "bench_util.h"
#include "common/prng.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kFact = 300'000;
  const size_t kDim = 150'000;
  const uint64_t kCacheDivisor = 64;
  const HwConfig hw = HwConfig::ScaledXeon(kCacheDivisor);
  // Shuffle distances in tuples (4 B keys): 1T, one cache line, 100T,
  // 1KT, L1-, L2-, L3-sized windows, full table (Mem).
  struct Distance {
    std::string label;
    size_t tuples;
  };
  std::vector<Distance> distances = {
      {"1T", 1},
      {"CL", hw.l1.line_size / 4},
      {"100T", 100},
      {"1KT", 1'000},
      {"L1", hw.l1.capacity_bytes / 4},
      {"L2", hw.l2.capacity_bytes / 4},
      {"L3", hw.l3.capacity_bytes / 4},
      {"Mem", kFact},
  };
  // The scaled machine's cache capacities interleave with the fixed
  // tuple-count distances; present the sweep in increasing disorder.
  std::sort(distances.begin(), distances.end(),
            [](const Distance& a, const Distance& b) {
              return a.tuples < b.tuples;
            });

  TablePrinter table(
      "Figure 14: expensive selection + FK join under decreasing "
      "sortedness");
  table.SetHeader({"sortiness", "sel-first ms", "join-first ms",
                   "sel-first L3 miss", "join-first L3 miss",
                   "join-first wins"});

  for (const Distance& d : distances) {
    // Fact table co-clustered with the dimension, then shuffled within
    // the given window.
    Prng prng(71);
    std::vector<int32_t> fk(kFact), sel_col(kFact);
    for (size_t i = 0; i < kFact; ++i) {
      fk[i] = static_cast<int32_t>((i * kDim) / kFact);
      sel_col[i] = static_cast<int32_t>(prng.NextBounded(1000));
    }
    auto fact = std::make_unique<Table>("fact");
    NIPO_CHECK(fact->AddColumn("fk", std::move(fk)).ok());
    NIPO_CHECK(fact->AddColumn("sel_col", std::move(sel_col)).ok());
    const auto perm =
        BoundedKnuthShufflePermutation(kFact, d.tuples, &prng);
    NIPO_CHECK(ApplyRowPermutation(fact.get(), perm).ok());

    std::vector<int32_t> attr(kDim);
    Prng dim_prng(72);
    for (size_t i = 0; i < kDim; ++i) {
      attr[i] = static_cast<int32_t>(dim_prng.NextBounded(1000));
    }
    auto dim = std::make_unique<Table>("dim");
    NIPO_CHECK(dim->AddColumn("attr", std::move(attr)).ok());

    Engine engine(hw);
    NIPO_CHECK(engine.RegisterTable(std::move(fact)).ok());
    NIPO_CHECK(engine.RegisterTable(std::move(dim)).ok());

    QuerySpec query;
    query.table = "fact";
    PredicateSpec expensive{"sel_col", CompareOp::kLt, 500.0};
    expensive.extra_instructions = 24.0;
    query.ops = {
        OperatorSpec::Predicate(expensive),
        OperatorSpec::FkProbe({"fk", engine.GetTable("dim").ValueOrDie(),
                               "attr", CompareOp::kLt, 600.0}),
    };

    ExecOptions options;
    options.vector_size = 8'192;
    options.order = std::vector<size_t>{0, 1};
    auto sel_first = engine.Execute(query, options);
    options.order = std::vector<size_t>{1, 0};
    auto join_first = engine.Execute(query, options);
    NIPO_CHECK(sel_first.ok() && join_first.ok());
    const ExecReport& s = sel_first.ValueOrDie();
    const ExecReport& j = join_first.ValueOrDie();
    table.AddRow({d.label, FormatDouble(s.simulated_msec, 2),
                  FormatDouble(j.simulated_msec, 2),
                  std::to_string(s.counters.l3_misses),
                  std::to_string(j.counters.l3_misses),
                  j.simulated_msec < s.simulated_msec ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: join-first wins while the shuffle distance stays\n"
         "within ~2x the L1 capacity (local probes are nearly free); past\n"
         "the break-even the probe thrashes and selection-first wins. The\n"
         "run-time trend tracks the L3-miss trend -- the signal only a\n"
         "cache counter (not a tuple counter) can deliver.\n";
  return 0;
}
