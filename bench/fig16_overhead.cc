/// \file fig16_overhead.cc
/// Figure 16: monitoring overhead vs predicate count. The
/// enumerator-based approach (explicit counter variables after every
/// predicate evaluation) is compared with performance-counter sampling
/// (one counter read per vector) against an uninstrumented run; overheads
/// are reported in percent on a log-scale-worthy spread.

#include "bench_util.h"
#include "common/prng.h"
#include "exec/pipeline.h"
#include "exec/vector_driver.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kRows = 300'000;
  const size_t kMaxPredicates = 10;
  const size_t kVectorSize = 16'384;

  // High-selectivity columns so every predicate is evaluated for most
  // tuples (the paper's worst case for instrumentation overhead).
  Prng prng(17);
  Table t("t");
  for (size_t c = 0; c < kMaxPredicates; ++c) {
    std::vector<int32_t> col(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      col[i] = static_cast<int32_t>(prng.NextBounded(1000));
    }
    NIPO_CHECK(t.AddColumn("c" + std::to_string(c), std::move(col)).ok());
  }

  TablePrinter table("Figure 16: instrumentation overhead in % vs "
                     "uninstrumented execution");
  table.SetHeader({"#predicates", "enumerator %", "perf counters %"});

  for (size_t n = 1; n <= kMaxPredicates; ++n) {
    std::vector<OperatorSpec> ops;
    for (size_t c = 0; c < n; ++c) {
      ops.push_back(OperatorSpec::Predicate(
          {"c" + std::to_string(c), CompareOp::kLt, 950.0}));
    }
    auto run = [&](InstrumentationMode mode, bool sample) {
      Pmu pmu(HwConfig::XeonE5_2630v2());
      auto exec = PipelineExecutor::Compile(t, ops, {}, &pmu, mode);
      NIPO_CHECK(exec.ok());
      VectorDriver driver(exec.ValueOrDie().get(), kVectorSize);
      if (sample) {
        return driver.Run([](const VectorSample&) {}).total.cycles;
      }
      return driver.Run().total.cycles;
    };
    const double plain =
        static_cast<double>(run(InstrumentationMode::kPmu, false));
    const double papi =
        static_cast<double>(run(InstrumentationMode::kPmu, true));
    const double enumerator =
        static_cast<double>(run(InstrumentationMode::kEnumerator, false));
    table.AddRow({std::to_string(n),
                  FormatDouble(100.0 * (enumerator - plain) / plain, 3),
                  FormatDouble(100.0 * (papi - plain) / plain, 3)});
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: enumerator overhead grows with the predicate count\n"
         "toward ~100% (it nearly doubles the per-evaluation work), while\n"
         "performance-counter sampling stays orders of magnitude below\n"
         "(well under 1%).\n";
  return 0;
}
