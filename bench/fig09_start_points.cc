/// \file fig09_start_points.cc
/// Figure 9: the deterministic start-point sequence for a 2D search space
/// with an overall query selectivity of 25% -- four vertices, the
/// null-hypothesis point C1 = (0.5, 0.5) which splits the space into four
/// squares, then the centroids C2..C5 of those squares and C6 of the next
/// largest sub-space.

#include "bench_util.h"
#include "optimizer/start_points.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  // Overall selectivity 25%, two predicates: even split 0.5 per predicate;
  // in per-axis selectivity coordinates the initial point is (0.5, 0.5).
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5});

  TablePrinter table("Figure 9: start point selection (2D, overall "
                     "selectivity 25%)");
  table.SetHeader({"#", "kind", "x", "y"});
  for (int i = 0; i < 10; ++i) {
    const auto p = gen.Next();
    std::string kind;
    if (i < 4) {
      kind = "vertex";
    } else if (i == 4) {
      kind = "C1 (null hypothesis)";
    } else {
      kind = "C" + std::to_string(i - 3) + " (largest sub-space centroid)";
    }
    table.AddRow({std::to_string(i + 1), kind, FormatDouble(p[0], 3),
                  FormatDouble(p[1], 3)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: C1 splits the space into 4 squares; C2..C5\n"
               "are their centroids; each further point explores the\n"
               "largest unseen sub-space.\n";
  return 0;
}
