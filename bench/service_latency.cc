/// \file service_latency.cc
/// Open-loop service latency under shared-L3 contention (DESIGN.md
/// Section 7 "Open-loop service mode"): a phased workload — repeated
/// rounds of two L3-thrashing FK-probe joins arriving back-to-back
/// followed by a stretch of small scans and small joins — arrives as a
/// Poisson stream on a 2-worker pool with contention on, swept across
/// arrival rates from well below saturation to past it, under four
/// admission configurations:
///
///   fixed_mc1     one query in flight — no interference ever, but half
///                 the pool idles, so the saturation knee comes first;
///   fixed_mc2     two in flight — full worker utilization, but every
///                 back-to-back thrasher pair co-runs and mutually
///                 evicts, inflating service times exactly when the
///                 queue is deepest;
///   fixed_mc4     four in flight — time-slicing adds latency on top of
///                 the same thrasher collisions;
///   adaptive_mc4  cap 4, adaptive admission on — the controller rides
///                 high concurrency through scan stretches, and its
///                 occupancy guard pins the limit to one while a
///                 thrasher's working set owns the shared L3, so
///                 thrashers run back-to-back *serialized* instead of
///                 co-run. Mutual eviction costs each thrasher more
///                 than 2x solo speed here, so serializing the pair
///                 finishes it sooner than co-running it — capacity the
///                 fixed limits structurally cannot reach.
///
/// The report is the p99-latency-vs-arrival-rate curve per config. Gates:
/// query results are identical across every config and rate; rerunning
/// the hardest point (highest rate, adaptive) is bit-identical; every
/// fixed config shows a saturation knee (p99 at the highest rate is a
/// multiple of p99 at the lowest); and at the highest rate the adaptive
/// controller's p99 beats the best fixed configuration (by >= 10% in the
/// full run; --quick only requires it not to lose). All latency figures
/// are simulated time, bit-stable on any host.
///
/// Run with `--json` (ci/check.sh does, in --quick smoke form) to write
/// BENCH_service_latency.json for the perf trajectory (EXPERIMENTS.md
/// "Service latency"). The perf-gate metric is sim_queries_per_sec at
/// the *lowest* swept rate — in an open loop, throughput at high rate
/// saturates at the service capacity, but at low rate it tracks the
/// arrival process through the simulator end to end, so a simulator
/// slowdown shows up there without tail-noise coupling.

#include <iostream>

#include "bench_util.h"
#include "common/prng.h"
#include "core/report.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed, size_t fk_domain) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n);
  std::vector<std::vector<int32_t>> fk(4, std::vector<int32_t>(n));
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    for (auto& col : fk) {
      col[i] = static_cast<int32_t>(prng.NextBounded(fk_domain));
    }
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(t->AddColumn("b", std::move(b)).ok());
  for (size_t k = 0; k < fk.size(); ++k) {
    NIPO_CHECK(
        t->AddColumn("fk" + std::to_string(k), std::move(fk[k])).ok());
  }
  NIPO_CHECK(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--verbose") verbose = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_service_latency.json", &json_path);

  // Scaled machine in the style of bench/workload_contention.cc: thrasher
  // dimensions ~83% of the shared L3 each, so either fits solo but a
  // co-run pair cannot co-reside; everything else is small. One cycle-
  // model override: the default memory_cycles (90) is the bandwidth-
  // amortized *streaming* miss cost, but a thrasher here is a dependent
  // random FK probe — no memory-level parallelism to amortize, the full
  // DRAM round trip on every miss, and a working set spanning hundreds
  // of pages so most probes also pay a TLB walk. Loaded random-read
  // latency on the modelled Xeon class is ~80 ns, i.e. ~208 cycles at
  // 2.6 GHz. With the streaming figure the co-run penalty would be
  // understated (L3 hit 30 vs miss 90), hiding the very
  // serialize-vs-co-run tradeoff this bench measures.
  const size_t scale = quick ? 2 : 1;
  HwConfig hw = HwConfig::ScaledXeon(quick ? 32 : 16);
  hw.cycle_model.memory_cycles = 208;
  Engine engine(hw);
  const size_t thrash_rows = 140'000 / scale;
  const size_t thrash_dim_rows = 200'000 / scale;  // ~800 KB of int32, ~83% L3
  const size_t small_rows = 20'000 / scale;
  const size_t small_dim_rows = 16'000 / scale;
  NIPO_CHECK(engine
                 .RegisterTable(
                     MakeFact("thrash_a", thrash_rows, 1, thrash_dim_rows))
                 .ok());
  NIPO_CHECK(engine
                 .RegisterTable(
                     MakeFact("thrash_b", thrash_rows, 2, thrash_dim_rows))
                 .ok());
  NIPO_CHECK(engine.RegisterTable(MakeDim("dim_a", thrash_dim_rows, 3)).ok());
  NIPO_CHECK(engine.RegisterTable(MakeDim("dim_b", thrash_dim_rows, 4)).ok());
  NIPO_CHECK(
      engine.RegisterTable(MakeFact("small", small_rows, 6, small_dim_rows))
          .ok());
  NIPO_CHECK(
      engine.RegisterTable(MakeDim("dim_small", small_dim_rows, 7)).ok());

  // The phased arrival stream: each round is a thrasher pair arriving
  // back-to-back (so any max_concurrent >= 2 co-schedules them whenever
  // the queue is non-empty) followed by nine small scans and two small
  // FK joins. Rounds repeat, so scan stretches and thrasher collisions
  // alternate — the phase structure an adaptive limit can exploit and a
  // fixed one cannot.
  WorkloadSpec spec;
  auto add = [&spec, scale](std::string name, QuerySpec query) {
    WorkloadQuery q;
    q.name = std::move(name);
    q.query = std::move(query);
    q.progressive = false;
    // Small vectors keep the scheduling (and admission-feedback)
    // granularity fine: ~35 quanta per thrasher, so the controller can
    // react within a fraction of a thrasher collision.
    q.config.vector_size = 512 / scale;
    spec.queries.push_back(std::move(q));
  };
  const size_t rounds = quick ? 2 : 4;
  for (size_t r = 0; r < rounds; ++r) {
    const std::string tag = "_r" + std::to_string(r);
    for (const auto& [fact, dim] :
         {std::pair<std::string, std::string>{"thrash_a", "dim_a"},
          {"thrash_b", "dim_b"}}) {
      // Four independent random FK probes per row over the same
      // ~83%-of-L3 dimension, many more probes than the dimension has
      // lines. Solo, the dimension is resident after the compulsory
      // first touches and every probe hits L3; co-run with the partner
      // thrasher the two dimensions cannot co-reside, and because each
      // quantum's probes churn more lines than the partner's reuse
      // interval can protect, there is no stable low-miss equilibrium —
      // both queries fall to DRAM-latency probing for the whole overlap
      // (the bistability the adaptive controller exists to avoid). Four
      // probe streams, not one, so the fixed per-row scan cost
      // amortizes and the co-run/solo ratio is dominated by the
      // miss-vs-L3-hit gap: that pushes the mutual penalty well above
      // 2x, the break-even beyond which serializing the pair beats
      // co-running it.
      QuerySpec join;
      join.table = fact;
      const Table* dim_table = engine.GetTable(dim).ValueOrDie();
      join.ops = {};
      size_t k = 0;
      for (const double sel : {90.0, 85.0, 95.0, 80.0}) {
        join.ops.push_back(OperatorSpec::FkProbe({"fk" + std::to_string(k++),
                                                  dim_table, "attr",
                                                  CompareOp::kLt, sel}));
      }
      add(fact + tag, join);
    }
    for (int i = 0; i < 9; ++i) {
      // Cache-friendly but compute-heavy: thirty-two high-selectivity
      // predicate passes over a ~160 KB pair of columns. The small
      // stretch carries nearly a thrasher pair's worth of work per
      // round, so the fixed_mc1 policy pays visibly for idling a worker
      // through it.
      QuerySpec scan;
      scan.table = "small";
      scan.ops = {};
      for (int pass = 0; pass < 16; ++pass) {
        scan.ops.push_back(OperatorSpec::Predicate(
            {"a", CompareOp::kLt, 99.0 - static_cast<double>((i + pass) % 3)}));
        scan.ops.push_back(OperatorSpec::Predicate(
            {"b", CompareOp::kLt, 99.0 - static_cast<double>(pass % 3)}));
      }
      add("small_" + std::to_string(i) + tag, scan);
    }
    for (int i = 0; i < 2; ++i) {
      QuerySpec join;
      join.table = "small";
      const Table* dim_small = engine.GetTable("dim_small").ValueOrDie();
      join.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 60.0}),
                  OperatorSpec::FkProbe(
                      {"fk0", dim_small, "attr", CompareOp::kLt, 80.0}),
                  OperatorSpec::FkProbe(
                      {"fk1", dim_small, "attr", CompareOp::kLt, 55.0}),
                  OperatorSpec::FkProbe(
                      {"fk2", dim_small, "attr", CompareOp::kLt, 30.0})};
      add("small_join_" + std::to_string(i) + tag, join);
    }
  }
  const size_t num_queries = spec.queries.size();
  NIPO_CHECK(num_queries == rounds * 13);

  spec.options.num_threads = 2;
  spec.options.contention = true;
  // Controller tuning for this scale: decide every 12 quanta with no
  // hysteresis hold — a freshly admitted thrasher needs ~10 quanta to
  // build its resident footprint, so a shorter epoch would take its
  // first raise decision before the crowding is visible and co-admit
  // the partner thrasher (irrevocably: admission cannot preempt). Treat
  // a few-percent-of-L3 eviction epoch as pressure (a co-running
  // thrasher pair is far above this, a scan stretch far below); and —
  // the load-bearing signal — refuse to raise (and shed) while the
  // in-flight set owns more than 60% of the shared L3. A resident
  // thrasher dimension is ~83%, a stretch of smalls well under half, so
  // the guard exactly separates "thrasher in flight: keep it solo" from
  // "smalls in flight: co-run freely". start_limit=1 (slow-start)
  // extends that protection to the very first admission, before any
  // feedback exists.
  spec.options.admission.epoch_quanta = 12;
  spec.options.admission.hold_epochs = 0;
  spec.options.admission.high_eviction_frac = 0.01;
  spec.options.admission.low_eviction_frac = 0.003;
  spec.options.admission.high_slowdown = 1.5;
  spec.options.admission.high_occupancy_frac = 0.6;
  spec.options.admission.start_limit = 1;

  // Calibrate the service capacity mu from a closed-queue contended run
  // at max_concurrent = 2 (full pool, the workload's natural operating
  // point), then sweep the Poisson arrival rate relative to it. The
  // calibration run is part of the measurement contract: it pins the
  // rate grid to the simulated machine, so the same lambda/mu fractions
  // mean the same thing in --quick and full runs.
  spec.options.max_concurrent = 2;
  spec.options.adaptive_admission = false;
  spec.options.arrival = ArrivalSpec{};
  // Every measured execution goes through best-of-2 (the sim_throughput
  // warmup pattern): the simulated metrics are deterministic — the
  // helper asserts so — and the wall-clock figures keep the warmed run.
  const WorkloadReport calib = ExecuteWorkloadBestOf2(engine, spec);
  const double mu_qps = calib.sim_queries_per_sec;
  const std::vector<double> load_fractions = {0.25, 0.5, 1.0, 2.0};

  struct Config {
    std::string name;
    size_t max_concurrent = 0;
    bool adaptive = false;
  };
  const std::vector<Config> configs = {
      {"fixed_mc1", 1, false},
      {"fixed_mc2", 2, false},
      {"fixed_mc4", 4, false},
      {"adaptive_mc4", 4, true},
  };

  auto run_point = [&](const Config& config, double rate_qps) {
    spec.options.max_concurrent = config.max_concurrent;
    spec.options.adaptive_admission = config.adaptive;
    spec.options.arrival.kind = ArrivalKind::kPoisson;
    spec.options.arrival.rate_qps = rate_qps;
    spec.options.arrival.seed = 42;
    return ExecuteWorkloadBestOf2(engine, spec);
  };

  // reports[c][f]: config c at load fraction f.
  std::vector<std::vector<WorkloadReport>> reports(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    for (const double frac : load_fractions) {
      reports[c].push_back(run_point(configs[c], frac * mu_qps));
    }
  }

  // Gate 1: query results are identical across every config and every
  // arrival rate (and match the closed-queue calibration run).
  const WorkloadReport& reference = calib;
  for (const auto& per_config : reports) {
    for (const WorkloadReport& r : per_config) {
      for (size_t i = 0; i < num_queries; ++i) {
        NIPO_CHECK(r.queries[i].drive.qualifying_tuples ==
                   reference.queries[i].drive.qualifying_tuples);
        NIPO_CHECK(r.queries[i].drive.aggregate ==
                   reference.queries[i].drive.aggregate);
      }
    }
  }

  // Gate 2: the hardest point — highest rate, adaptive, contended — is
  // bit-identical when rerun, per query and in every tail statistic.
  {
    const WorkloadReport& first = reports.back().back();
    const WorkloadReport rerun =
        run_point(configs.back(), load_fractions.back() * mu_qps);
    NIPO_CHECK(rerun.latency == first.latency);
    NIPO_CHECK(rerun.queue_wait == first.queue_wait);
    NIPO_CHECK(rerun.sim_makespan_msec == first.sim_makespan_msec);
    for (size_t i = 0; i < num_queries; ++i) {
      NIPO_CHECK(rerun.queries[i].sim_latency_msec ==
                 first.queries[i].sim_latency_msec);
      NIPO_CHECK(rerun.queries[i].sim_queue_wait_msec ==
                 first.queries[i].sim_queue_wait_msec);
    }
  }

  TablePrinter table("Service latency, " + std::to_string(num_queries) +
                     " queries, Poisson arrivals, 2 workers, contention on "
                     "(p99 simulated msec by load fraction)");
  std::vector<std::string> header = {"config"};
  for (const double frac : load_fractions) {
    header.push_back("p99 @ " + FormatDouble(frac, 1) + "mu");
  }
  header.push_back("qps @ low rate");
  table.SetHeader(header);
  for (size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> row = {configs[c].name};
    for (const WorkloadReport& r : reports[c]) {
      row.push_back(FormatDouble(r.latency.p99_msec, 3));
    }
    row.push_back(FormatDouble(reports[c][0].sim_queries_per_sec, 3));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "service capacity mu (closed queue, mc=2): "
            << FormatDouble(mu_qps, 3) << " queries/sec simulated\n";
  {
    const WorkloadReport& hi = reports.back().back();
    std::cout << "adaptive @ highest rate: final limit "
              << hi.admission_final_limit << ", min seen "
              << hi.admission_min_limit << ", +" << hi.admission_increases
              << "/-" << hi.admission_decreases << " steps\n";
  }
  if (verbose) {
    for (size_t c = 0; c < configs.size(); ++c) {
      for (size_t f = 0; f < load_fractions.size(); ++f) {
        PrintWorkloadReport(reports[c][f],
                            configs[c].name + " @ " +
                                FormatDouble(load_fractions[f], 1) + "mu",
                            std::cout);
      }
    }
  }

  // Gate 3: every fixed configuration shows a saturation knee — p99 at
  // the highest swept rate is a multiple of p99 at the lowest. The 2x
  // knee is a full-run property: --quick has half the rounds, so the
  // queue barely builds before the stream ends and the smoke run only
  // checks that the tail clearly grows with the rate.
  const double knee_factor = quick ? 1.25 : 2.0;
  for (size_t c = 0; c < configs.size(); ++c) {
    if (configs[c].adaptive) continue;
    NIPO_CHECK(reports[c].back().latency.p99_msec >
               knee_factor * reports[c].front().latency.p99_msec);
  }

  // Gate 4: at the highest rate the adaptive controller beats the best
  // fixed limit — by >= 10% in the full run; --quick (smaller data on a
  // smaller machine, fewer rounds for phases to repeat) only requires it
  // not to lose.
  double best_fixed_p99 = 0;
  double adaptive_p99 = 0;
  for (size_t c = 0; c < configs.size(); ++c) {
    const double p99 = reports[c].back().latency.p99_msec;
    if (configs[c].adaptive) {
      adaptive_p99 = p99;
    } else if (best_fixed_p99 == 0 || p99 < best_fixed_p99) {
      best_fixed_p99 = p99;
    }
  }
  std::cout << "p99 at highest rate: best fixed "
            << FormatDouble(best_fixed_p99, 3) << " msec, adaptive "
            << FormatDouble(adaptive_p99, 3) << " msec ("
            << FormatDouble(100.0 * (1.0 - adaptive_p99 / best_fixed_p99), 1)
            << "% lower)\n";
  NIPO_CHECK(adaptive_p99 <= (quick ? 1.0 : 0.9) * best_fixed_p99);

  if (write_json) {
    JsonValue out_configs = JsonValue::Array();
    for (size_t c = 0; c < configs.size(); ++c) {
      JsonValue p99s = JsonValue::Array();
      for (const WorkloadReport& r : reports[c]) {
        p99s.Push(JsonValue::Object()
                      .Add("rate_qps", r.arrival_rate_qps)
                      .Add("p50_msec", r.latency.p50_msec)
                      .Add("p99_msec", r.latency.p99_msec)
                      .Add("max_msec", r.latency.max_msec)
                      .Add("queue_wait_p99_msec", r.queue_wait.p99_msec));
      }
      out_configs.Push(
          JsonValue::Object()
              .Add("name", configs[c].name)
              .Add("max_concurrent",
                   static_cast<uint64_t>(configs[c].max_concurrent))
              .Add("adaptive", configs[c].adaptive)
              .Add("wall_msec", reports[c][0].wall_msec)
              .Add("sim_queries_per_sec",
                   reports[c][0].sim_queries_per_sec)
              .Add("p99_at_highest_rate_msec",
                   reports[c].back().latency.p99_msec)
              .Add("points", p99s));
    }
    WriteJsonArtifact(
        json_path,
        JsonValue::Object()
            .Add("bench", "service_latency")
            .Add("quick", quick)
            .Add("num_queries", static_cast<uint64_t>(num_queries))
            .Add("num_threads", static_cast<uint64_t>(spec.options.num_threads))
            .Add("service_capacity_mu_qps", mu_qps)
            .Add("results_identical", true)
            .Add("rerun_bit_identical", true)
            .Add("adaptive_vs_best_fixed_p99_ratio",
                 adaptive_p99 / best_fixed_p99)
            .Add("configs", out_configs));
  }
  return 0;
}
