/// \file ablation_static_vs_progressive.cc
/// Quantifies the paper's Section 4.5 argument: how much run-time the
/// statistics-driven static plan loses to progressive optimization as
/// statistics staleness grows, on Q6 over lineitem with a shipdate
/// selectivity that the sampled prefix misjudges (the bulk-load weak
/// clustering means a prefix sample sees only early shipdates).

#include "bench_util.h"
#include "core/report.h"
#include "optimizer/static_optimizer.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  Engine engine = MakeQ6Engine(/*scale_factor=*/0.02, Layout::kClustered);
  const Table* li = engine.GetTable("lineitem").ValueOrDie();
  const size_t kVectorSize = 2'048;

  // Q6 intro variant with a mid-range shipdate bound: on date-clustered
  // data a prefix sample wildly misestimates its selectivity.
  const int32_t ship_value =
      ValueForSelectivity(*li, "l_shipdate", 0.3).ValueOrDie();
  QuerySpec query;
  query.table = "lineitem";
  query.ops = MakeQ6IntroPredicates(ship_value);
  query.payload_columns = Q6PayloadColumns();

  TablePrinter table(
      "Ablation: static plan quality vs statistics staleness (Q6, "
      "shipdate sel 30%)");
  table.SetHeader({"stats sample", "static order", "static ms",
                   "progressive ms", "gap %"});

  for (double sample_fraction : {0.01, 0.05, 0.25, 1.0}) {
    auto stats = TableStatistics::Build(
        *li, 64,
        static_cast<size_t>(sample_fraction *
                            static_cast<double>(li->num_rows())));
    NIPO_CHECK(stats.ok());
    const StaticPlan plan = PlanStatically(query.ops, stats.ValueOrDie());
    ExecOptions static_opt;
    static_opt.vector_size = kVectorSize;
    static_opt.order = plan.order;
    auto static_run = engine.Execute(query, static_opt);
    NIPO_CHECK(static_run.ok());

    ExecOptions prog_opt;
    prog_opt.mode = ExecMode::kProgressive;
    prog_opt.progressive.vector_size = kVectorSize;
    prog_opt.progressive.reopt_interval = 5;
    prog_opt.order = plan.order;
    auto prog = engine.Execute(query, prog_opt);
    NIPO_CHECK(prog.ok());

    const double static_ms = static_run.ValueOrDie().simulated_msec;
    const double prog_ms = prog.ValueOrDie().simulated_msec;
    table.AddRow({FormatDouble(sample_fraction * 100, 0) + "%",
                  FormatOrder(plan.order), FormatDouble(static_ms, 2),
                  FormatDouble(prog_ms, 2),
                  FormatDouble(100.0 * (static_ms - prog_ms) / static_ms,
                               1)});
  }
  table.Print(std::cout);
  std::cout
      << "Expected: with full statistics the static plan is competitive\n"
         "and progressive optimization adds little; with prefix samples\n"
         "the static order degrades while the progressive run, started\n"
         "from the same (bad) order, recovers most of the loss.\n";
  return 0;
}
