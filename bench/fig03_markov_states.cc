/// \file fig03_markov_states.cc
/// Figure 3: predictions of Markov chains with 2..8 states (including the
/// +1T / +1NT asymmetric variants) against a measured sample, for taken,
/// not-taken and total mispredictions as % of all branches. The "Ivy
/// sample" column is the simulated 6-state predictor driven by i.i.d.
/// branches -- the stand-in for the paper's Ivy Bridge measurements.

#include "bench_util.h"
#include "common/prng.h"
#include "cost/markov.h"

using namespace nipo;
using namespace nipo::bench;

namespace {

struct Variant {
  std::string name;
  PredictorConfig config;
};

std::vector<Variant> Variants() {
  return {
      {"2st", PredictorConfig::Symmetric(2)},
      {"4st", PredictorConfig::Symmetric(4)},
      {"5st+1NT", PredictorConfig::PlusOneNotTaken(5)},
      {"5st+1T", PredictorConfig::PlusOneTaken(5)},
      {"6st", PredictorConfig::Symmetric(6)},
      {"7st+1T", PredictorConfig::PlusOneTaken(7)},
      {"7st+1NT", PredictorConfig::PlusOneNotTaken(7)},
      {"8st", PredictorConfig::Symmetric(8)},
  };
}

/// Simulated long-run misprediction fractions of the 6-state hardware
/// predictor at selectivity p (the measured reference series).
BranchProbabilities MeasureIvy(double p) {
  BranchPredictor bp(PredictorConfig::Symmetric(6));
  bp.EnsureSites(1);
  Prng prng(99);
  const int kWarmup = 2000, kSamples = 200'000;
  for (int i = 0; i < kWarmup; ++i) bp.Observe(0, !prng.NextBool(p));
  BranchProbabilities out;
  for (int i = 0; i < kSamples; ++i) {
    const bool taken = !prng.NextBool(p);
    const BranchOutcome o = bp.Observe(0, taken);
    if (o.mispredicted) {
      if (taken) {
        out.taken_mp += 1.0;
      } else {
        out.not_taken_mp += 1.0;
      }
    }
  }
  out.taken_mp /= kSamples;
  out.not_taken_mp /= kSamples;
  out.mp = out.taken_mp + out.not_taken_mp;
  return out;
}

void Emit(const std::string& title,
          double BranchProbabilities::*field) {
  TablePrinter table(title);
  std::vector<std::string> header = {"sel%"};
  for (const Variant& v : Variants()) header.push_back(v.name);
  header.push_back("Ivy sample");
  table.SetHeader(header);
  for (int pct = 0; pct <= 100; pct += 10) {
    const double p = pct / 100.0;
    std::vector<double> row = {static_cast<double>(pct)};
    for (const Variant& v : Variants()) {
      row.push_back(100.0 *
                    (ComputeBranchProbabilities(v.config, p).*field));
    }
    row.push_back(100.0 * (MeasureIvy(p).*field));
    table.AddNumericRow(row, 2);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  Emit("Figure 3a: Taken mispredictions (% of all branches)",
       &BranchProbabilities::taken_mp);
  Emit("Figure 3b: Not-taken mispredictions (% of all branches)",
       &BranchProbabilities::not_taken_mp);
  Emit("Figure 3c: All mispredictions (% of all branches)",
       &BranchProbabilities::mp);
  std::cout << "Paper shape: the 6-state chain matches the measured sample\n"
               "almost exactly on all three panels; other state counts fit\n"
               "the total (3c) but misplace the taken/not-taken peaks by\n"
               "~10% of selectivity.\n";
  return 0;
}
