/// \file ablation_validation.cc
/// Ablation for DESIGN.md decision #6: the Section 4.4 validate-and-revert
/// step after each reorder. On a randomly laid-out data set the
/// per-vector samples are noisy, so estimates occasionally suggest bad
/// orders; validation catches them. The bench also measures the cost of
/// validation on a benign (clustered) data set.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

namespace {

struct Outcome {
  double avg_ms = 0;
  double worst_ms = 0;
  size_t changes = 0;
  size_t reverts = 0;
};

Outcome RunSweep(const Engine& engine, const QuerySpec& query,
                 bool validate) {
  ExecOptions options;
  options.mode = ExecMode::kProgressive;
  options.progressive.vector_size = 512;
  options.progressive.reopt_interval = 5;
  options.progressive.validate_and_revert = validate;
  Outcome out;
  const auto orders = AllOrders(query.ops.size());
  // Sample every 6th permutation to keep the sweep quick.
  size_t count = 0;
  for (size_t i = 0; i < orders.size(); i += 6) {
    options.order = orders[i];
    auto r = engine.Execute(query, options);
    NIPO_CHECK(r.ok());
    const double ms = r.ValueOrDie().simulated_msec;
    out.avg_ms += ms;
    out.worst_ms = std::max(out.worst_ms, ms);
    const ProgressiveReport& prog = *r.ValueOrDie().progressive;
    out.changes += prog.changes.size();
    for (const PeoChange& c : prog.changes) {
      if (c.reverted) ++out.reverts;
    }
    ++count;
  }
  out.avg_ms /= static_cast<double>(count);
  return out;
}

}  // namespace

int main() {
  TablePrinter table("Ablation: validate-and-revert after each reorder");
  table.SetHeader({"data set", "validation", "avg ms", "worst ms",
                   "order changes", "reverts"});
  for (Layout layout : {Layout::kClustered, Layout::kRandom}) {
    Engine engine = MakeQ6Engine(/*scale_factor=*/0.02, layout);
    QuerySpec query;
    query.table = "lineitem";
    query.ops = MakeQ6FullPredicates();
    query.payload_columns = Q6PayloadColumns();
    for (bool validate : {true, false}) {
      const Outcome o = RunSweep(engine, query, validate);
      table.AddRow({std::string(LayoutToString(layout)),
                    validate ? "on" : "off", FormatDouble(o.avg_ms, 2),
                    FormatDouble(o.worst_ms, 2),
                    std::to_string(o.changes), std::to_string(o.reverts)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "Expected: on clustered data validation is nearly free (few\n"
         "reverts); on random data it bounds the worst case by rolling\n"
         "back regressions that noisy samples caused.\n";
  return 0;
}
