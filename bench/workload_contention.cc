/// \file workload_contention.cc
/// Shared-L3 contention and contention-aware co-scheduling (DESIGN.md
/// Section 6 "Shared-cache contention"): a mixed 12-query workload — two
/// L3-thrashing FK-probe joins whose probed dimensions each claim ~70% of
/// the shared L3, two medium scans, six small scans, and two small joins
/// — executed three ways on a 2-worker pool with 2 admission slots:
///
///   off_fifo      interference-free PR-4 execution (the speedup anchor);
///   on_fifo       shared-L3 contention on, FIFO admission — spec order
///                 co-schedules the two thrashers, whose dimensions do
///                 not fit the L3 together, so both queries' probe misses
///                 (and the makespan) inflate;
///   on_footprint  contention on, footprint-aware admission — the
///                 cost-model footprints keep the thrashers apart (each
///                 pairs with a small/medium query instead) at identical
///                 concurrency, recovering most of the loss.
///
/// Three NIPO_CHECK gates make the comparison trustworthy: every query's
/// results are identical across all three configurations, contention
/// shrinks the interference-free speedup (on_fifo below off_fifo against
/// the same solo-serial anchor), and footprint-aware co-scheduling beats
/// FIFO under contention. All headline numbers are simulated; the gates
/// compare configurations within one process, where counts are exact
/// (across processes allocator placement moves them ~0.1% — see
/// docs/COUNTERS.md "Determinism").
///
/// Run with `--json` (ci/check.sh does, in --quick smoke form) to write
/// BENCH_workload_contention.json for the perf trajectory
/// (EXPERIMENTS.md "Contention").

#include <iostream>

#include "bench_util.h"
#include "common/prng.h"
#include "core/report.h"

namespace {

using namespace nipo;
using namespace nipo::bench;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed, size_t fk_domain) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(fk_domain));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("a", std::move(a)).ok());
  NIPO_CHECK(t->AddColumn("b", std::move(b)).ok());
  NIPO_CHECK(t->AddColumn("fk", std::move(fk)).ok());
  NIPO_CHECK(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  NIPO_CHECK(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--verbose") verbose = true;
  }
  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_workload_contention.json", &json_path);

  // Sizes are ratios of the shared L3 (960 KB full, 480 KB quick — the
  // data, the caches, and the vector size all shrink together, like every
  // experiment here). Thrasher dimensions: ~70% of L3 each, so either
  // fits solo but the pair cannot co-reside and mutually evicts in steady
  // state; each thrasher probes its dimension three times per row, so the
  // contention penalty is probe-dominated — every dimension line a
  // co-runner steals turns a ~L3-hit probe into a memory access. The
  // thrasher claim (fk stream + dimension reuse, ~79%) leaves a ~200 KB
  // budget that still fits every non-thrasher (~12-20% each) even after
  // live-occupancy feedback inflates the claim — the footprint policy can
  // always pair a thrasher with a non-thrasher. The non-thrashers add up
  // to more work than the two thrashers take back to back, so keeping the
  // thrashers apart costs no concurrency.
  const size_t scale = quick ? 2 : 1;
  Engine engine(HwConfig::ScaledXeon(quick ? 32 : 16));
  const size_t thrash_rows = 18'000 / scale;
  const size_t thrash_dim_rows = 168'000 / scale;  // ~672 KB of int32
  const size_t medium_rows = 24'000 / scale;
  const size_t small_rows = 14'000 / scale;
  const size_t small_dim_rows = 16'000 / scale;
  NIPO_CHECK(engine
                 .RegisterTable(
                     MakeFact("thrash_a", thrash_rows, 1, thrash_dim_rows))
                 .ok());
  NIPO_CHECK(engine
                 .RegisterTable(
                     MakeFact("thrash_b", thrash_rows, 2, thrash_dim_rows))
                 .ok());
  NIPO_CHECK(engine.RegisterTable(MakeDim("dim_a", thrash_dim_rows, 3)).ok());
  NIPO_CHECK(engine.RegisterTable(MakeDim("dim_b", thrash_dim_rows, 4)).ok());
  NIPO_CHECK(
      engine.RegisterTable(MakeFact("medium", medium_rows, 5, small_dim_rows))
          .ok());
  NIPO_CHECK(
      engine.RegisterTable(MakeFact("small", small_rows, 6, small_dim_rows))
          .ok());
  NIPO_CHECK(
      engine.RegisterTable(MakeDim("dim_small", small_dim_rows, 7)).ok());

  // The mixed 12-query queue. FIFO admits in spec order, so the two
  // thrashers — first in the queue — land in the same admission window.
  WorkloadSpec spec;
  auto add = [&spec, scale](std::string name, QuerySpec query,
                            bool progressive) {
    WorkloadQuery q;
    q.name = std::move(name);
    q.query = std::move(query);
    q.progressive = progressive;
    q.config.vector_size = 2'048 / scale;
    q.config.reopt_interval = 5;
    spec.queries.push_back(std::move(q));
  };
  for (const auto& [fact, dim] :
       {std::pair<std::string, std::string>{"thrash_a", "dim_a"},
        {"thrash_b", "dim_b"}}) {
    QuerySpec join;
    join.table = fact;
    const Table* dim_table = engine.GetTable(dim).ValueOrDie();
    join.ops = {
        OperatorSpec::FkProbe({"fk", dim_table, "attr", CompareOp::kLt, 95.0}),
        OperatorSpec::FkProbe({"fk", dim_table, "attr", CompareOp::kLt, 70.0}),
        OperatorSpec::FkProbe({"fk", dim_table, "attr", CompareOp::kLt, 45.0})};
    add(fact, join, false);
  }
  for (int i = 0; i < 2; ++i) {
    QuerySpec scan;
    scan.table = "medium";
    scan.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 95.0}),
                OperatorSpec::Predicate({"b", CompareOp::kLt, 90.0}),
                OperatorSpec::Predicate({"a", CompareOp::kLt, 85.0}),
                OperatorSpec::Predicate({"b", CompareOp::kLt, 80.0}),
                OperatorSpec::Predicate({"a", CompareOp::kLt, 70.0}),
                OperatorSpec::Predicate({"b", CompareOp::kLt, 60.0})};
    add("medium_" + std::to_string(i), scan, i == 1);
  }
  for (int i = 0; i < 6; ++i) {
    QuerySpec scan;
    scan.table = "small";
    scan.ops = {
        OperatorSpec::Predicate({"a", CompareOp::kLt, 95.0}),
        OperatorSpec::Predicate({"b", CompareOp::kLt, 90.0}),
        OperatorSpec::Predicate({"a", CompareOp::kLt, 90.0 - 10.0 * i}),
        OperatorSpec::Predicate({"b", CompareOp::kLt, 5.0 + 10.0 * i})};
    add("small_" + std::to_string(i), scan, i % 2 == 1);
  }
  for (int i = 0; i < 2; ++i) {
    QuerySpec join;
    join.table = "small";
    const Table* dim_small = engine.GetTable("dim_small").ValueOrDie();
    join.ops = {
        OperatorSpec::Predicate({"a", CompareOp::kLt, 60.0}),
        OperatorSpec::FkProbe({"fk", dim_small, "attr", CompareOp::kLt, 80.0}),
        OperatorSpec::FkProbe({"fk", dim_small, "attr", CompareOp::kLt, 55.0}),
        OperatorSpec::FkProbe({"fk", dim_small, "attr", CompareOp::kLt, 30.0})};
    add("small_join_" + std::to_string(i), join, false);
  }
  const size_t num_queries = spec.queries.size();
  NIPO_CHECK(num_queries == 12);

  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;

  struct Config {
    std::string name;
    bool contention = false;
    SchedulePolicy policy = SchedulePolicy::kFifo;
  };
  const std::vector<Config> configs = {
      {"off_fifo", false, SchedulePolicy::kFifo},
      {"on_fifo", true, SchedulePolicy::kFifo},
      {"on_footprint", true, SchedulePolicy::kFootprintAware},
  };
  std::vector<WorkloadReport> reports;
  for (const Config& config : configs) {
    spec.options.contention = config.contention;
    spec.options.policy = config.policy;
    // Best-of-2 (the sim_throughput warmup pattern): the simulated
    // headline numbers are deterministic — the helper asserts so — and
    // the wall-clock figures keep the warmed run.
    reports.push_back(ExecuteWorkloadBestOf2(engine, spec));
  }
  const WorkloadReport& off = reports[0];
  const WorkloadReport& on_fifo = reports[1];
  const WorkloadReport& on_fp = reports[2];

  // Gate 1: query results are machine-state independent — identical
  // across interference and policy.
  for (const WorkloadReport& r : reports) {
    for (size_t i = 0; i < num_queries; ++i) {
      NIPO_CHECK(r.queries[i].drive.qualifying_tuples ==
                 off.queries[i].drive.qualifying_tuples);
      NIPO_CHECK(r.queries[i].drive.aggregate ==
                 off.queries[i].drive.aggregate);
    }
  }

  const double serial_anchor = off.sim_serial_msec;
  auto speedup = [&](const WorkloadReport& r) {
    return serial_anchor / r.sim_makespan_msec;
  };

  TablePrinter table("Workload contention, " + std::to_string(num_queries) +
                     " mixed queries, 2 workers, 2 admission slots");
  table.SetHeader({"config", "sim makespan msec", "speedup vs solo serial",
                   "L3 evictions suffered", "L3 lines displaced"});
  std::vector<uint64_t> suffered(reports.size(), 0);
  for (size_t c = 0; c < reports.size(); ++c) {
    for (const WorkloadQueryReport& q : reports[c].queries) {
      suffered[c] += q.drive.total.l3_evictions_suffered;
    }
    table.AddRow({configs[c].name,
                  FormatDouble(reports[c].sim_makespan_msec, 3),
                  FormatDouble(speedup(reports[c]), 2) + "x",
                  std::to_string(suffered[c]),
                  std::to_string(reports[c].shared_l3_lines_displaced)});
  }
  table.Print(std::cout);
  if (verbose) {
    for (size_t c = 0; c < reports.size(); ++c) {
      TablePrinter per_query("per-query: " + configs[c].name);
      per_query.SetHeader({"query", "sim msec", "start", "finish", "l3 miss",
                           "evict suffered", "occ peak"});
      for (const WorkloadQueryReport& q : reports[c].queries) {
        per_query.AddRow(
            {q.name, FormatDouble(q.drive.simulated_msec, 3),
             FormatDouble(q.sim_start_msec, 3),
             FormatDouble(q.sim_finish_msec, 3),
             std::to_string(q.drive.total.l3_misses),
             std::to_string(q.drive.total.l3_evictions_suffered),
             std::to_string(q.shared_l3_peak_occupancy_lines)});
      }
      per_query.Print(std::cout);
    }
  }
  const double recovered =
      (on_fifo.sim_makespan_msec - on_fp.sim_makespan_msec) /
      (on_fifo.sim_makespan_msec - off.sim_makespan_msec);
  std::cout << "contention cost (fifo): "
            << FormatDouble(
                   on_fifo.sim_makespan_msec / off.sim_makespan_msec, 2)
            << "x makespan; footprint-aware recovers "
            << FormatDouble(100.0 * recovered, 1) << "% of the loss\n";

  // Gate 2: contention must shrink the interference-free speedup (the
  // PR-4 workload headline, measured against the same solo-serial
  // anchor).
  NIPO_CHECK(speedup(on_fifo) < speedup(off));
  // Gate 3: footprint-aware admission must beat FIFO under contention.
  NIPO_CHECK(on_fp.sim_makespan_msec < on_fifo.sim_makespan_msec);

  if (write_json) {
    JsonValue out_configs = JsonValue::Array();
    for (size_t c = 0; c < reports.size(); ++c) {
      const WorkloadReport& r = reports[c];
      out_configs.Push(
          JsonValue::Object()
              .Add("name", configs[c].name)
              .Add("wall_msec", r.wall_msec)
              .Add("sim_makespan_msec", r.sim_makespan_msec)
              .Add("sim_queries_per_sec", r.sim_queries_per_sec)
              .Add("speedup_vs_solo_serial", speedup(r))
              .Add("l3_evictions_suffered", suffered[c])
              .Add("l3_lines_displaced", r.shared_l3_lines_displaced));
    }
    WriteJsonArtifact(
        json_path,
        JsonValue::Object()
            .Add("bench", "workload_contention")
            .Add("quick", quick)
            .Add("num_queries", static_cast<uint64_t>(num_queries))
            .Add("num_threads", static_cast<uint64_t>(spec.options.num_threads))
            .Add("max_concurrent",
                 static_cast<uint64_t>(spec.options.max_concurrent))
            .Add("results_identical", true)
            .Add("fraction_recovered_by_footprint", recovered)
            .Add("configs", out_configs));
  }
  return 0;
}
