/// \file fig13_sortedness.cc
/// Figure 13: the full Q6 on three physical layouts of lineitem --
/// sorted on shipdate (a), clustered within months (b), fully random (c)
/// -- for all 120 permutations, base line vs progressive with
/// reoptimization intervals 10, 75 and 200.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kVectorSize = 512;
  const std::vector<size_t> reop_intervals = {10, 75, 200};

  for (Layout layout :
       {Layout::kSorted, Layout::kClustered, Layout::kRandom}) {
    Engine engine = MakeQ6Engine(/*scale_factor=*/0.02, layout);
    QuerySpec query;
    query.table = "lineitem";
    query.ops = MakeQ6FullPredicates();
    query.payload_columns = Q6PayloadColumns();

    const std::vector<double> base =
        PermutationSweep(engine, query, kVectorSize);

    // Progressive run per permutation per interval.
    std::vector<std::vector<double>> prog(reop_intervals.size());
    const auto orders = AllOrders(5);
    for (size_t k = 0; k < reop_intervals.size(); ++k) {
      ExecOptions options;
      options.mode = ExecMode::kProgressive;
      options.progressive.vector_size = kVectorSize;
      options.progressive.reopt_interval = reop_intervals[k];
      for (const auto& order : orders) {
        options.order = order;
        auto r = engine.Execute(query, options);
        NIPO_CHECK(r.ok());
        prog[k].push_back(r.ValueOrDie().simulated_msec);
      }
    }

    TablePrinter table("Figure 13 (" + std::string(LayoutToString(layout)) +
                       " data set): per-strategy stats over 120 "
                       "permutations");
    table.SetHeader(
        {"strategy", "min ms", "avg ms", "max ms", "beats base (of 120)"});
    const SeriesStats bs = Stats(base);
    table.AddRow({"base line", FormatDouble(bs.min, 2),
                  FormatDouble(bs.avg, 2), FormatDouble(bs.max, 2), "-"});
    for (size_t k = 0; k < reop_intervals.size(); ++k) {
      const SeriesStats ps = Stats(prog[k]);
      size_t wins = 0;
      for (size_t i = 0; i < base.size(); ++i) {
        if (prog[k][i] < base[i]) ++wins;
      }
      table.AddRow({"ReopInt " + std::to_string(reop_intervals[k]),
                    FormatDouble(ps.min, 2), FormatDouble(ps.avg, 2),
                    FormatDouble(ps.max, 2), std::to_string(wins)});
    }
    table.Print(std::cout);
  }
  std::cout
      << "Paper shape: on sorted data short intervals win (the optimal\n"
         "PEO changes between the three shipdate phases); on random data\n"
         "improvements shrink and large intervals approach or exceed the\n"
         "base line; clustered sits in between.\n";
  return 0;
}
