/// \file fig07_search_space.cc
/// Figure 7: the search-space restriction worked example of Section 4.1.
/// A query selects 10 of 100 tuples through four predicates with true
/// per-column accesses [80, 70, 50, 10] (branches-not-taken total 210);
/// the bench prints the cumulated access curves for the query, the tuple
/// bounds (Eq. 6-7) and the BNT bounds (Eq. 8-9).

#include "bench_util.h"
#include "optimizer/bounds.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const double tupsin = 100, tupsout = 10;
  const std::vector<double> truth = {80, 70, 50, 10};
  double bnt = 0;
  for (double a : truth) bnt += a;

  const SearchBounds tuple =
      ComputeTupleBounds(tupsin, tupsout, truth.size()).ValueOrDie();
  const SearchBounds bntb =
      ComputeBntBounds(tupsin, tupsout, bnt, truth.size()).ValueOrDie();

  TablePrinter per_col("Figure 7 (per-column accesses)");
  per_col.SetHeader({"col", "search query", "lower tuple", "upper tuple",
                     "lower BNT", "upper BNT"});
  for (size_t i = 0; i < truth.size(); ++i) {
    per_col.AddNumericRow({static_cast<double>(i + 1), truth[i],
                           tuple.lower[i], tuple.upper[i], bntb.lower[i],
                           bntb.upper[i]},
                          1);
  }
  per_col.Print(std::cout);

  TablePrinter cumulated("Figure 7 (cumulated accesses, as plotted)");
  cumulated.SetHeader({"prefix", "search query", "lower tuple",
                       "upper tuple", "lower BNT", "upper BNT"});
  double cq = 0, clt = 0, cut = 0, clb = 0, cub = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    cq += truth[i];
    clt += tuple.lower[i];
    cut += tuple.upper[i];
    clb += bntb.lower[i];
    cub += bntb.upper[i];
    cumulated.AddRow({"col1..col" + std::to_string(i + 1),
                      FormatDouble(cq, 1), FormatDouble(clt, 1),
                      FormatDouble(cut, 1), FormatDouble(clb, 1),
                      FormatDouble(cub, 1)});
  }
  cumulated.Print(std::cout);
  std::cout
      << "Paper values: BNT bounds restrict [col1..col4] to\n"
         "[67, 50, 10, 10] .. [100, 95, 66, 10] (integer-rounded), far\n"
         "tighter than the tuple bounds [10,10,10,10] .. [100,100,100,10].\n";
  return 0;
}
