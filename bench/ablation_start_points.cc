/// \file ablation_start_points.cc
/// Ablation for DESIGN.md decision #3: the Section 4.3 multi-start
/// strategy vs cheaper alternatives. Each strategy estimates the
/// selectivities of synthetic 3-predicate samples; reported are the mean
/// and worst absolute selectivity errors and the average number of
/// Nelder-Mead starts spent.

#include "bench_util.h"
#include "optimizer/estimator.h"

using namespace nipo;
using namespace nipo::bench;

namespace {

CounterSample PerfectSample(const ScanShape& shape,
                            const std::vector<double>& truth) {
  CounterSample s;
  s.tuples_in = shape.num_tuples;
  double out = shape.num_tuples;
  for (double p : truth) out *= p;
  s.tuples_out = out;
  s.counters = PredictCounters(shape, truth);
  return s;
}

}  // namespace

int main() {
  ScanShape shape;
  shape.num_tuples = 1e6;
  shape.predicate_widths = {4, 4, 4};
  shape.predictor = PredictorConfig::Symmetric(6);

  const std::vector<std::vector<double>> truths = {
      {0.9, 0.5, 0.1}, {0.1, 0.5, 0.9}, {0.5, 0.5, 0.5},
      {0.05, 0.95, 0.5}, {0.8, 0.75, 0.7}, {0.3, 0.2, 0.6},
      {0.99, 0.01, 0.5}, {0.45, 0.55, 0.5},
  };

  struct Strategy {
    std::string name;
    EstimatorConfig config;
  };
  std::vector<Strategy> strategies;
  {
    Strategy full{"multi-start + vertices (paper)", {}};
    strategies.push_back(full);
    Strategy no_vertices{"multi-start, no vertices", {}};
    no_vertices.config.include_vertex_starts = false;
    strategies.push_back(no_vertices);
    Strategy single{"single start (null hypothesis)", {}};
    single.config.include_vertex_starts = false;
    single.config.max_starts = 1;
    strategies.push_back(single);
  }

  TablePrinter table("Ablation: start-point strategies (3 predicates)");
  table.SetHeader(
      {"strategy", "mean |err|", "worst |err|", "avg starts"});
  for (const Strategy& strategy : strategies) {
    double total_err = 0, worst_err = 0, total_starts = 0;
    size_t terms = 0;
    for (const auto& truth : truths) {
      const CounterSample s = PerfectSample(shape, truth);
      auto est = EstimateSelectivities(shape, s, strategy.config);
      NIPO_CHECK(est.ok());
      total_starts += est.ValueOrDie().starts_used;
      for (size_t i = 0; i < truth.size(); ++i) {
        const double err =
            std::abs(est.ValueOrDie().selectivities[i] - truth[i]);
        total_err += err;
        worst_err = std::max(worst_err, err);
        ++terms;
      }
    }
    table.AddRow({strategy.name,
                  FormatDouble(total_err / static_cast<double>(terms), 4),
                  FormatDouble(worst_err, 4),
                  FormatDouble(total_starts /
                                   static_cast<double>(truths.size()),
                               1)});
  }
  table.Print(std::cout);
  std::cout
      << "Expected: the paper's strategy keeps the worst-case error low;\n"
         "a single start is cheaper but can land on a local optimum for\n"
         "skewed truths (larger worst-case error).\n";
  return 0;
}
