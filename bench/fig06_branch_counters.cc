/// \file fig06_branch_counters.cc
/// Figure 6: absolute branch-misprediction counts (total, taken,
/// not-taken) for a selection over 1M tuples: the Equation 5 estimates,
/// the Zeuch et al. [23] baseline, and "measured" values from simulated
/// predictors standing in for the micro-architectures (Nehalem with a
/// shallower counter, Sandy/Ivy/Broadwell with the 6-state counter).

#include "bench_util.h"
#include "common/prng.h"
#include "cost/markov.h"

using namespace nipo;
using namespace nipo::bench;

namespace {

struct Arch {
  std::string name;
  PredictorConfig config;
};

BranchProbabilities Measure(const PredictorConfig& config, double p,
                            uint64_t seed) {
  BranchPredictor bp(config);
  bp.EnsureSites(1);
  Prng prng(seed);
  const int kWarmup = 2000, kSamples = 200'000;
  for (int i = 0; i < kWarmup; ++i) bp.Observe(0, !prng.NextBool(p));
  BranchProbabilities out;
  for (int i = 0; i < kSamples; ++i) {
    const bool taken = !prng.NextBool(p);
    const BranchOutcome o = bp.Observe(0, taken);
    if (o.mispredicted) {
      if (taken) {
        out.taken_mp += 1.0;
      } else {
        out.not_taken_mp += 1.0;
      }
    }
  }
  out.taken_mp /= kSamples;
  out.not_taken_mp /= kSamples;
  out.mp = out.taken_mp + out.not_taken_mp;
  return out;
}

}  // namespace

int main() {
  const double kTuples = 1e6;
  const std::vector<Arch> archs = {
      {"Nehalem", PredictorConfig::Symmetric(4)},
      {"Sandy", PredictorConfig::Symmetric(6)},
      {"Ivy", PredictorConfig::Symmetric(6)},
      {"Broadwell", PredictorConfig::Symmetric(6)},
  };
  const PredictorConfig est_cfg = PredictorConfig::Symmetric(6);

  TablePrinter table(
      "Figure 6: Branch mispredictions on 1M tuples (counts x1000)");
  std::vector<std::string> header = {"sel%", "Est MP", "Est TakMP",
                                     "Est NTakMP", "Zeuch"};
  for (const Arch& a : archs) header.push_back(a.name + " MP");
  table.SetHeader(header);

  for (int pct = 0; pct <= 100; pct += 10) {
    const double p = pct / 100.0;
    const BranchProbabilities est = ComputeBranchProbabilities(est_cfg, p);
    std::vector<double> row = {static_cast<double>(pct),
                               est.mp * kTuples / 1000.0,
                               est.taken_mp * kTuples / 1000.0,
                               est.not_taken_mp * kTuples / 1000.0,
                               ZeuchMispredictionFraction(p) * kTuples /
                                   1000.0};
    uint64_t seed = 100;
    for (const Arch& a : archs) {
      row.push_back(Measure(a.config, p, seed++).mp * kTuples / 1000.0);
    }
    table.AddNumericRow(row, 1);
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: the estimate overlays Sandy/Ivy/Broadwell almost\n"
         "exactly; Nehalem (shallower counter) partially deviates; the\n"
         "Zeuch baseline under-estimates around 50% selectivity.\n";
  return 0;
}
