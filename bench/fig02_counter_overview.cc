/// \file fig02_counter_overview.cc
/// Figure 2: the six monitored events of a single-predicate selection as
/// the selectivity sweeps 0..100 %, each normalized to its own maximum
/// over the sweep (the paper's "% of max" y axis): L3 accesses, branches
/// taken / not taken, and the three misprediction counters.

#include "bench_util.h"
#include "common/prng.h"
#include "exec/pipeline.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kRows = 400'000;
  Prng prng(7);
  std::vector<int32_t> key(kRows);
  std::vector<int64_t> payload(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    key[i] = static_cast<int32_t>(prng.NextBounded(1000));
    payload[i] = 1;
  }
  Table t("t");
  NIPO_CHECK(t.AddColumn("key", std::move(key)).ok());
  NIPO_CHECK(t.AddColumn("payload", std::move(payload)).ok());

  struct Row {
    double sel;
    PmuCounters c;
  };
  std::vector<Row> rows;
  for (int pct = 0; pct <= 100; pct += 5) {
    Pmu pmu(HwConfig::ScaledXeon(16));
    auto exec = PipelineExecutor::Compile(
        t,
        {OperatorSpec::Predicate(
            {"key", CompareOp::kLt, static_cast<double>(pct * 10)})},
        {"payload"}, &pmu);
    NIPO_CHECK(exec.ok());
    exec.ValueOrDie()->ExecuteAll();
    rows.push_back({pct / 100.0, pmu.Read()});
  }

  auto series = [&](auto getter) {
    std::vector<double> xs;
    for (const Row& r : rows) xs.push_back(static_cast<double>(getter(r.c)));
    const double mx = *std::max_element(xs.begin(), xs.end());
    for (double& x : xs) x = mx > 0 ? 100.0 * x / mx : 0.0;
    return xs;
  };
  const auto l3 = series([](const PmuCounters& c) { return c.l3_accesses; });
  const auto bt =
      series([](const PmuCounters& c) { return c.branches_taken; });
  const auto bnt =
      series([](const PmuCounters& c) { return c.branches_not_taken; });
  const auto mp =
      series([](const PmuCounters& c) { return c.mispredictions; });
  const auto tmp =
      series([](const PmuCounters& c) { return c.taken_mispredictions; });
  const auto ntmp = series(
      [](const PmuCounters& c) { return c.not_taken_mispredictions; });

  TablePrinter table("Figure 2: Counter overview (single selection, % of "
                     "each counter's max)");
  table.SetHeader({"sel%", "L3 access", "B taken", "B not taken", "B MP",
                   "taken MP", "not-taken MP"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddNumericRow({rows[i].sel * 100, l3[i], bt[i], bnt[i], mp[i],
                         tmp[i], ntmp[i]},
                        1);
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: branches-taken falls and branches-not-taken rises\n"
         "linearly; mispredictions peak near 50% selectivity; L3 accesses\n"
         "climb over 0-20% selectivity and then saturate.\n";
  return 0;
}
