/// \file fig11_common_case.cc
/// Figure 11: the TPC-H common case. All 120 evaluation orders of the
/// full five-predicate Q6 run once as a fixed-order base line and once
/// under progressive optimization (reoptimizing every 10 vectors, as in
/// the paper). Rows are sorted by base-line run-time, the paper's x-axis.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  Engine engine = MakeQ6Engine(/*scale_factor=*/0.05, Layout::kClustered);
  QuerySpec query;
  query.table = "lineitem";
  query.ops = MakeQ6FullPredicates();
  query.payload_columns = Q6PayloadColumns();
  const size_t kVectorSize = 2'048;  // ~147 vectors at this scale

  ExecOptions base_opt;
  base_opt.vector_size = kVectorSize;
  ExecOptions prog_opt;
  prog_opt.mode = ExecMode::kProgressive;
  prog_opt.progressive.vector_size = kVectorSize;
  prog_opt.progressive.reopt_interval = 10;

  struct Row {
    double base, optimized;
  };
  std::vector<Row> rows;
  for (const auto& order : AllOrders(5)) {
    base_opt.order = order;
    prog_opt.order = order;
    auto base = engine.Execute(query, base_opt);
    auto prog = engine.Execute(query, prog_opt);
    NIPO_CHECK(base.ok() && prog.ok());
    rows.push_back({base.ValueOrDie().simulated_msec,
                    prog.ValueOrDie().simulated_msec});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.base < b.base; });

  TablePrinter table(
      "Figure 11: TPC-H common case (120 permutations, sorted by base "
      "line; every 8th shown)");
  table.SetHeader({"perm#", "base line ms", "optimized ms"});
  for (size_t i = 0; i < rows.size(); i += 8) {
    table.AddNumericRow({static_cast<double>(i), rows[i].base,
                         rows[i].optimized},
                        2);
  }
  table.AddNumericRow({static_cast<double>(rows.size() - 1),
                       rows.back().base, rows.back().optimized},
                      2);
  table.Print(std::cout);

  std::vector<double> base_ms, opt_ms;
  size_t improved = 0;
  for (const Row& r : rows) {
    base_ms.push_back(r.base);
    opt_ms.push_back(r.optimized);
    if (r.optimized < r.base) ++improved;
  }
  const SeriesStats bs = Stats(base_ms), os = Stats(opt_ms);
  TablePrinter summary("Figure 11 summary");
  summary.SetHeader({"series", "min ms", "avg ms", "max ms"});
  summary.AddRow({"base line", FormatDouble(bs.min, 2),
                  FormatDouble(bs.avg, 2), FormatDouble(bs.max, 2)});
  summary.AddRow({"optimized", FormatDouble(os.min, 2),
                  FormatDouble(os.avg, 2), FormatDouble(os.max, 2)});
  summary.Print(std::cout);
  std::cout << "orders improved by progressive optimization: " << improved
            << "/120\n"
            << "avg speedup " << FormatDouble(bs.avg / os.avg, 2)
            << "x, worst-case speedup " << FormatDouble(bs.max / os.max, 2)
            << "x\n"
            << "Paper shape: the optimized line is nearly flat across all\n"
               "120 permutations, at or below the base line everywhere but\n"
               "the few already-optimal orders.\n";
  return 0;
}
