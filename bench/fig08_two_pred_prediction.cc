/// \file fig08_two_pred_prediction.cc
/// Figure 8: the four analytic counter predictions for a two-predicate
/// selection over 10M tuples, as 2D selectivity grids -- the signal the
/// learning algorithm matches samples against. Two candidate queries are
/// distinguishable whenever they differ in at least one of the four grids.

#include "bench_util.h"
#include "cost/counter_model.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  ScanShape shape;
  shape.num_tuples = 1e7;
  shape.predicate_widths = {4, 4};
  shape.predictor = PredictorConfig::Symmetric(6);

  const std::vector<double> grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 1.0};
  struct Panel {
    std::string title;
    double CounterEstimate::*field;
    double scale;
  };
  const std::vector<Panel> panels = {
      {"Figure 8a: predicted branches not taken (x1e6)",
       &CounterEstimate::branches_not_taken, 1e-6},
      {"Figure 8b: predicted mispredicted branches NOT taken (x1e6)",
       &CounterEstimate::not_taken_mp, 1e-6},
      {"Figure 8c: predicted mispredicted branches TAKEN (x1e6)",
       &CounterEstimate::taken_mp, 1e-6},
      {"Figure 8d: predicted L3 accesses (x1e6)",
       &CounterEstimate::l3_accesses, 1e-6},
  };
  for (const Panel& panel : panels) {
    TablePrinter table(panel.title);
    std::vector<std::string> header = {"p1\\p2"};
    for (double s2 : grid) header.push_back(FormatDouble(s2, 1));
    table.SetHeader(header);
    for (double s1 : grid) {
      std::vector<std::string> row = {FormatDouble(s1, 1)};
      for (double s2 : grid) {
        const CounterEstimate e = PredictCounters(shape, {s1, s2});
        row.push_back(FormatDouble((e.*panel.field) * panel.scale, 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout
      << "Paper shape: 8a grows with p1 and p1*p2; 8b/8c peak along\n"
         "mid-selectivity bands; 8d saturates beyond ~20% densities.\n"
         "E.g. (0.4, 0.2) vs (0.2, 0.4) differ clearly in panel 8b.\n";
  return 0;
}
