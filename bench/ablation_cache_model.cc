/// \file ablation_cache_model.cc
/// Ablation for DESIGN.md decision #2: the paper's modification of the
/// Pirk et al. scan model -- counting random misses twice (wasted
/// next-line prefetch + demand fetch). Compares both model variants
/// against the simulated cache hierarchy across access densities.

#include "bench_util.h"
#include "common/prng.h"
#include "cost/cache_model.h"
#include "hw/cache.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  const size_t kTuples = 400'000;
  TablePrinter table(
      "Ablation: double-counted random misses vs original model "
      "(conditional int32 scan)");
  table.SetHeader({"density", "simulated L3 acc", "double-count est",
                   "err %", "single-count est", "err %"});

  for (double rho : {0.002, 0.01, 0.03, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    CacheHierarchy caches(CacheGeometry{8 * 1024, 8, 64},
                          CacheGeometry{64 * 1024, 8, 64},
                          CacheGeometry{1024 * 1024, 16, 64}, true);
    Prng prng(5);
    const uint64_t base = 1u << 30;
    for (size_t i = 0; i < kTuples; ++i) {
      if (prng.NextBool(rho)) caches.Access(base + i * 4, 4);
    }
    const double simulated =
        static_cast<double>(caches.stats().l3_accesses);

    ScanCacheModelConfig with{};
    ScanCacheModelConfig without{};
    without.double_count_random_misses = false;
    const ScanColumnSpec col{4, rho};
    const double est_double =
        EstimateColumnCache(with, static_cast<double>(kTuples), col)
            .l3_accesses;
    const double est_single =
        EstimateColumnCache(without, static_cast<double>(kTuples), col)
            .l3_accesses;
    auto err = [&](double est) {
      return simulated > 0 ? 100.0 * (est - simulated) / simulated : 0.0;
    };
    table.AddRow({FormatDouble(rho, 3), FormatDouble(simulated, 0),
                  FormatDouble(est_double, 0),
                  FormatDouble(err(est_double), 1),
                  FormatDouble(est_single, 0),
                  FormatDouble(err(est_single), 1)});
  }
  table.Print(std::cout);
  std::cout
      << "Expected: in the low-density regime the single-count model\n"
         "under-estimates by up to ~2x (it misses the wasted prefetches),\n"
         "while the double-count model stays within ~15%. Above ~20%\n"
         "density both coincide (every line is a sequential access).\n";
  return 0;
}
