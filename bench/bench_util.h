#pragma once

/// \file bench_util.h
/// Shared scaffolding for the figure-reproduction benchmarks.
///
/// Scale note: the paper runs TPC-H SF 100 (600M lineitems, 600 vectors of
/// 1M tuples) on a real Xeon E5-2630 v2. The benches run the same
/// experiments on a scaled pair of (data, machine): lineitem shrinks by
/// ~500-3000x and the simulated caches shrink by the factor given to
/// HwConfig::ScaledXeon, preserving the data:cache ratios the locality
/// effects depend on. Absolute "simulated ms" therefore differ from the
/// paper; the *shapes* (who wins, crossovers, robustness factors) are the
/// reproduction target (see EXPERIMENTS.md).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "tpch/distributions.h"
#include "tpch/q6.h"
#include "tpch/tpch_gen.h"

namespace nipo::bench {

/// Simple aggregate over a series.
struct SeriesStats {
  double min = 0, max = 0, avg = 0;
};

inline SeriesStats Stats(const std::vector<double>& xs) {
  NIPO_CHECK(!xs.empty());
  SeriesStats s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.avg = std::accumulate(xs.begin(), xs.end(), 0.0) /
          static_cast<double>(xs.size());
  return s;
}

/// Builds an Engine with a lineitem table of the given scale and layout.
inline Engine MakeQ6Engine(double scale_factor, Layout layout,
                           uint64_t cache_divisor = 16,
                           uint64_t seed = 42) {
  Engine engine(HwConfig::ScaledXeon(cache_divisor));
  TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  cfg.seed = seed;
  auto li = GenerateLineitem(cfg);
  NIPO_CHECK(li.ok());
  if (layout != Layout::kClustered) {
    // The generator's native layout is already weakly clustered; only
    // re-lay-out for sorted/random.
    Prng prng(seed + 1);
    NIPO_CHECK(
        ApplyLayout(li.ValueOrDie().get(), "l_shipdate", layout, &prng)
            .ok());
  }
  NIPO_CHECK(engine.RegisterTable(std::move(li.ValueOrDie())).ok());
  return engine;
}

/// Simulated msec of every evaluation order of `query` (fixed order, no
/// optimization), in AllOrders() enumeration order.
inline std::vector<double> PermutationSweep(const Engine& engine,
                                            const QuerySpec& query,
                                            size_t vector_size) {
  std::vector<double> ms;
  ExecOptions options;
  options.vector_size = vector_size;
  for (const auto& order : AllOrders(query.ops.size())) {
    options.order = order;
    auto r = engine.Execute(query, options);
    NIPO_CHECK(r.ok());
    ms.push_back(r.ValueOrDie().simulated_msec);
  }
  return ms;
}

/// Shipdate selectivity grid used by Figures 1 and 12 (fractions; the
/// paper's x axis is in percent, 1e-4 % .. 1e2 %).
inline std::vector<double> ShipdateSelectivityGrid() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0};
}

inline std::string PercentLabel(double fraction) {
  return FormatDouble(fraction * 100.0, 4) + "%";
}

/// Best-of-2 workload execution — the sim_throughput warmup pattern
/// applied to the workload bench smokes: the first run absorbs process
/// warmup (page faults, heap growth, cold branch predictors) that
/// best-of-1 would fold into the host wall-clock figures as
/// hosted-runner noise. The *simulated* headline metrics are
/// deterministic within a process, so the warmup rep doubles as a rerun
/// bit-identity gate on them; the returned report is the run with the
/// lower host wall time.
inline WorkloadReport ExecuteWorkloadBestOf2(const Engine& engine,
                                             const WorkloadSpec& spec) {
  auto first = engine.Execute(spec);
  NIPO_CHECK(first.ok());
  auto second = engine.Execute(spec);
  NIPO_CHECK(second.ok());
  WorkloadReport& a = first.ValueOrDie();
  WorkloadReport& b = second.ValueOrDie();
  NIPO_CHECK(a.sim_makespan_msec == b.sim_makespan_msec);
  NIPO_CHECK(a.sim_queries_per_sec == b.sim_queries_per_sec);
  NIPO_CHECK(a.latency == b.latency);
  return std::move(a.wall_msec <= b.wall_msec ? a : b);
}

// ---------------------------------------------------------------------------
// --json support: benches that track a perf trajectory write a
// BENCH_<name>.json artifact next to their table output, so CI can archive
// machine-readable results across PRs (see EXPERIMENTS.md "Perf
// trajectory").
// ---------------------------------------------------------------------------

/// \brief Minimal JSON value builder (objects, arrays, numbers, strings,
/// booleans) — just enough for flat bench artifacts, no external deps.
class JsonValue {
 public:
  static JsonValue Object() { return JsonValue("{", "}"); }
  static JsonValue Array() { return JsonValue("[", "]"); }

  JsonValue& Add(const std::string& key, double v) {
    return AddRaw(key, NumberToString(v));
  }
  JsonValue& Add(const std::string& key, uint64_t v) {
    return AddRaw(key, std::to_string(v));
  }
  JsonValue& Add(const std::string& key, int v) {
    return AddRaw(key, std::to_string(v));
  }
  JsonValue& Add(const std::string& key, bool v) {
    return AddRaw(key, v ? "true" : "false");
  }
  JsonValue& Add(const std::string& key, const std::string& v) {
    return AddRaw(key, Quote(v));
  }
  JsonValue& Add(const std::string& key, const char* v) {
    return AddRaw(key, Quote(v));
  }
  JsonValue& Add(const std::string& key, const JsonValue& v) {
    return AddRaw(key, v.ToString());
  }
  /// Array element (no key); valid only on Array() values.
  JsonValue& Push(const JsonValue& v) { return AddRaw("", v.ToString()); }

  std::string ToString() const {
    std::string out = open_;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ",";
      out += items_[i];
    }
    out += close_;
    return out;
  }

 private:
  JsonValue(std::string open, std::string close)
      : open_(std::move(open)), close_(std::move(close)) {}

  JsonValue& AddRaw(const std::string& key, const std::string& value) {
    items_.push_back(key.empty() ? value : Quote(key) + ":" + value);
    return *this;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  static std::string NumberToString(double v) {
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
  }

  std::string open_, close_;
  std::vector<std::string> items_;
};

/// Parses a `--json[=path]` flag. Returns true iff the flag is present;
/// `*path` receives the explicit path or `default_path`.
inline bool ParseJsonFlag(int argc, char** argv,
                          const std::string& default_path,
                          std::string* path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      *path = default_path;
      return true;
    }
    if (arg.rfind("--json=", 0) == 0) {
      *path = arg.substr(7);
      return true;
    }
  }
  return false;
}

/// Writes `value` to `path` (with a trailing newline) and reports where.
inline void WriteJsonArtifact(const std::string& path,
                              const JsonValue& value) {
  std::ofstream out(path);
  NIPO_CHECK(out.good());
  out << value.ToString() << "\n";
  NIPO_CHECK(out.good());
  std::cout << "wrote " << path << "\n";
}

}  // namespace nipo::bench
