#pragma once

/// \file bench_util.h
/// Shared scaffolding for the figure-reproduction benchmarks.
///
/// Scale note: the paper runs TPC-H SF 100 (600M lineitems, 600 vectors of
/// 1M tuples) on a real Xeon E5-2630 v2. The benches run the same
/// experiments on a scaled pair of (data, machine): lineitem shrinks by
/// ~500-3000x and the simulated caches shrink by the factor given to
/// HwConfig::ScaledXeon, preserving the data:cache ratios the locality
/// effects depend on. Absolute "simulated ms" therefore differ from the
/// paper; the *shapes* (who wins, crossovers, robustness factors) are the
/// reproduction target (see EXPERIMENTS.md).

#include <algorithm>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "tpch/distributions.h"
#include "tpch/q6.h"
#include "tpch/tpch_gen.h"

namespace nipo::bench {

/// Simple aggregate over a series.
struct SeriesStats {
  double min = 0, max = 0, avg = 0;
};

inline SeriesStats Stats(const std::vector<double>& xs) {
  NIPO_CHECK(!xs.empty());
  SeriesStats s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.avg = std::accumulate(xs.begin(), xs.end(), 0.0) /
          static_cast<double>(xs.size());
  return s;
}

/// Builds an Engine with a lineitem table of the given scale and layout.
inline Engine MakeQ6Engine(double scale_factor, Layout layout,
                           uint64_t cache_divisor = 16,
                           uint64_t seed = 42) {
  Engine engine(HwConfig::ScaledXeon(cache_divisor));
  TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  cfg.seed = seed;
  auto li = GenerateLineitem(cfg);
  NIPO_CHECK(li.ok());
  if (layout != Layout::kClustered) {
    // The generator's native layout is already weakly clustered; only
    // re-lay-out for sorted/random.
    Prng prng(seed + 1);
    NIPO_CHECK(
        ApplyLayout(li.ValueOrDie().get(), "l_shipdate", layout, &prng)
            .ok());
  }
  NIPO_CHECK(engine.RegisterTable(std::move(li.ValueOrDie())).ok());
  return engine;
}

/// Simulated msec of every evaluation order of `query` (fixed order, no
/// optimization), in AllOrders() enumeration order.
inline std::vector<double> PermutationSweep(const Engine& engine,
                                            const QuerySpec& query,
                                            size_t vector_size) {
  std::vector<double> ms;
  for (const auto& order : AllOrders(query.ops.size())) {
    auto r = engine.ExecuteBaseline(query, vector_size, order);
    NIPO_CHECK(r.ok());
    ms.push_back(r.ValueOrDie().drive.simulated_msec);
  }
  return ms;
}

/// Shipdate selectivity grid used by Figures 1 and 12 (fractions; the
/// paper's x axis is in percent, 1e-4 % .. 1e2 %).
inline std::vector<double> ShipdateSelectivityGrid() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0};
}

inline std::string PercentLabel(double fraction) {
  return FormatDouble(fraction * 100.0, 4) + "%";
}

}  // namespace nipo::bench
