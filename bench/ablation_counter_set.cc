/// \file ablation_counter_set.cc
/// Ablation for DESIGN.md decision #5: which counters the Equation 10
/// objective uses. All four (paper), branch counters only, or
/// branches-not-taken alone. BNT alone is under-determined for >= 2
/// predicates (many selectivity splits share one BNT total), which shows
/// up as large worst-case errors.

#include "bench_util.h"
#include "optimizer/estimator.h"

using namespace nipo;
using namespace nipo::bench;

namespace {

CounterSample PerfectSample(const ScanShape& shape,
                            const std::vector<double>& truth) {
  CounterSample s;
  s.tuples_in = shape.num_tuples;
  double out = shape.num_tuples;
  for (double p : truth) out *= p;
  s.tuples_out = out;
  s.counters = PredictCounters(shape, truth);
  return s;
}

}  // namespace

int main() {
  ScanShape shape;
  shape.num_tuples = 1e6;
  shape.predicate_widths = {4, 4, 4};
  shape.predictor = PredictorConfig::Symmetric(6);

  const std::vector<std::vector<double>> truths = {
      {0.9, 0.5, 0.1}, {0.1, 0.9, 0.5}, {0.7, 0.2, 0.4},
      {0.25, 0.75, 0.5}, {0.6, 0.6, 0.6}, {0.05, 0.5, 0.95},
  };
  struct Variant {
    std::string name;
    CounterSet set;
  };
  const std::vector<Variant> variants = {
      {"all four counters (paper)", CounterSet::kAll},
      {"branch counters only", CounterSet::kBranchesOnly},
      {"BNT only", CounterSet::kBntOnly},
  };

  TablePrinter table("Ablation: counter sets in the estimation objective");
  table.SetHeader({"counter set", "mean |err|", "worst |err|",
                   "rank correct (of 6)"});
  for (const Variant& variant : variants) {
    EstimatorConfig cfg;
    cfg.counter_set = variant.set;
    double total_err = 0, worst_err = 0;
    size_t terms = 0, rank_ok = 0;
    for (const auto& truth : truths) {
      const CounterSample s = PerfectSample(shape, truth);
      auto est = EstimateSelectivities(shape, s, cfg);
      NIPO_CHECK(est.ok());
      const auto& got = est.ValueOrDie().selectivities;
      bool order_ok = true;
      for (size_t i = 0; i < truth.size(); ++i) {
        const double err = std::abs(got[i] - truth[i]);
        total_err += err;
        worst_err = std::max(worst_err, err);
        ++terms;
        for (size_t j = i + 1; j < truth.size(); ++j) {
          if ((truth[i] < truth[j]) != (got[i] < got[j])) order_ok = false;
        }
      }
      if (order_ok) ++rank_ok;
    }
    table.AddRow({variant.name,
                  FormatDouble(total_err / static_cast<double>(terms), 4),
                  FormatDouble(worst_err, 4),
                  std::to_string(rank_ok)});
  }
  table.Print(std::cout);
  std::cout
      << "Expected: all four counters give the tightest estimates; the\n"
         "misprediction splits carry most of the identification power;\n"
         "BNT alone misranks some truths (the under-determined case the\n"
         "paper's Section 4.3 multi-start exists to mitigate).\n";
  return 0;
}
