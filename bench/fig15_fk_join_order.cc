/// \file fig15_fk_join_order.cc
/// Figure 15: lineitem joined with orders and part in both orders, with
/// the (dimension-side) filter selectivity sweeping 20..100%. A textbook
/// optimizer joins the ~8x smaller part table first; the measured
/// run-times and L3 misses show orders-first winning at every
/// selectivity because lineitem and orders are co-clustered while probes
/// into part are random.

#include "bench_util.h"

using namespace nipo;
using namespace nipo::bench;

int main() {
  TpchConfig cfg;
  cfg.scale_factor = 0.1;  // 150k orders, 20k parts, ~600k lineitems
  auto db = GenerateTpch(cfg);
  NIPO_CHECK(db.ok());
  // Machine scaled so that even the part payload column exceeds L3:
  // probes into *either* table thrash unless the access pattern is local.
  Engine engine(HwConfig::ScaledXeon(128));
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().lineitem)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().orders)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().part)).ok());
  const Table* orders = engine.GetTable("orders").ValueOrDie();
  const Table* part = engine.GetTable("part").ValueOrDie();

  TablePrinter table(
      "Figure 15: lineitem x orders x part in both join orders");
  table.SetHeader({"sel%", "orders-first ms", "part-first ms",
                   "orders-first L3 miss", "part-first L3 miss"});

  for (int pct : {20, 40, 60, 80, 100}) {
    // Dial both dimension filters to the same selectivity via quantiles
    // of the filtered columns (int64 price columns, uniform by
    // construction).
    const double frac = pct / 100.0;
    auto quantile64 = [&](const Table& t, const std::string& col) {
      const auto& c = *t.GetTypedColumn<int64_t>(col).ValueOrDie();
      std::vector<int64_t> sorted(c.values().begin(), c.values().end());
      std::sort(sorted.begin(), sorted.end());
      const size_t idx = std::min<size_t>(
          sorted.size() - 1,
          static_cast<size_t>(frac * static_cast<double>(sorted.size())));
      return static_cast<double>(sorted[idx]);
    };
    const double orders_value = quantile64(*orders, "o_totalprice");
    const double part_value = quantile64(*part, "p_retailprice");

    QuerySpec query;
    query.table = "lineitem";
    query.ops = {
        OperatorSpec::FkProbe({"l_orderkey", orders, "o_totalprice",
                               CompareOp::kLe, orders_value}),
        OperatorSpec::FkProbe({"l_partkey", part, "p_retailprice",
                               CompareOp::kLe, part_value}),
    };
    ExecOptions options;
    options.vector_size = 8'192;
    options.order = std::vector<size_t>{0, 1};
    auto orders_first = engine.Execute(query, options);
    options.order = std::vector<size_t>{1, 0};
    auto part_first = engine.Execute(query, options);
    NIPO_CHECK(orders_first.ok() && part_first.ok());
    const ExecReport& of = orders_first.ValueOrDie();
    const ExecReport& pf = part_first.ValueOrDie();
    NIPO_CHECK(of.qualifying_tuples == pf.qualifying_tuples);
    table.AddRow({std::to_string(pct), FormatDouble(of.simulated_msec, 2),
                  FormatDouble(pf.simulated_msec, 2),
                  std::to_string(of.counters.l3_misses),
                  std::to_string(pf.counters.l3_misses)});
  }
  table.Print(std::cout);
  std::cout
      << "Paper shape: orders-first is faster at every selectivity even\n"
         "though orders is ~8x larger than part, because the co-clustered\n"
         "probe pattern into orders induces far fewer cache misses.\n";
  return 0;
}
