/// \file scale_threads.cc
/// Thread-scaling sweep of the sharded parallel driver on TPC-H Q6
/// (DESIGN.md "Parallel execution"; methodology in EXPERIMENTS.md).
///
/// Runs full Q6 at 1, 2, 4, 8 and 16 worker threads and reports, per
/// thread count, the host wall-clock of the parallel region and the
/// simulated critical path (the slowest worker's machine time). The
/// simulated critical path scales deterministically with the shard sizes;
/// the wall clock additionally needs physical cores to drop (on a
/// single-core host it stays flat -- the simulation performs the same
/// total work). Results are verified bit-identical across all thread
/// counts before any timing is reported.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nipo;
  using namespace nipo::bench;

  std::string json_path;
  const bool write_json =
      ParseJsonFlag(argc, argv, "BENCH_scale_threads.json", &json_path);

  // SF 0.1 = 600k lineitems: large enough that per-morsel work dwarfs
  // scheduling overhead, small enough for a laptop-budget sweep.
  Engine engine = MakeQ6Engine(/*scale_factor=*/0.1, Layout::kClustered);
  QuerySpec query;
  query.table = "lineitem";
  query.ops = MakeQ6FullPredicates();
  query.payload_columns = Q6PayloadColumns();
  const size_t kMorselSize = 4'096;

  ExecOptions solo;
  solo.vector_size = kMorselSize;
  auto reference = engine.Execute(query, solo);
  NIPO_CHECK(reference.ok());
  const ExecReport& ref = reference.ValueOrDie();

  TablePrinter table("Q6 thread scaling (baseline, morsel " +
                     std::to_string(kMorselSize) + ")");
  table.SetHeader({"threads", "wall msec", "wall speedup", "critical msec",
                   "critical speedup", "max steals"});
  double wall_1 = 0, critical_1 = 0;
  JsonValue sweep = JsonValue::Array();
  for (size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    ExecOptions options;
    options.driver = ExecDriver::kSharded;
    options.num_threads = threads;
    options.vector_size = kMorselSize;
    auto run = engine.Execute(query, options);
    NIPO_CHECK(run.ok());
    const ParallelDriveResult& drive =
        run.ValueOrDie().sharded_baseline->drive;
    // Correctness first: the morsel-index-ordered merge must reproduce
    // the single-threaded result bit-identically at every thread count.
    NIPO_CHECK(drive.merged.qualifying_tuples == ref.qualifying_tuples);
    NIPO_CHECK(drive.merged.aggregate == ref.aggregate);
    if (threads == 1) {
      NIPO_CHECK(drive.merged.total.cycles == ref.counters.cycles);
      wall_1 = drive.wall_msec;
      critical_1 = drive.merged.simulated_msec;
    }
    uint64_t max_steals = 0;
    for (const WorkerStats& w : drive.workers) {
      max_steals = std::max(max_steals, w.steals);
    }
    sweep.Push(JsonValue::Object()
                   .Add("threads", threads)
                   .Add("wall_msec", drive.wall_msec)
                   .Add("critical_msec", drive.merged.simulated_msec)
                   .Add("max_steals", max_steals));
    table.AddRow({std::to_string(threads), FormatDouble(drive.wall_msec, 1),
                  FormatDouble(wall_1 / drive.wall_msec, 2) + "x",
                  FormatDouble(drive.merged.simulated_msec, 3),
                  FormatDouble(critical_1 / drive.merged.simulated_msec, 2) +
                      "x",
                  std::to_string(max_steals)});
  }
  table.Print(std::cout);

  // Progressive under parallelism: same sweep with the shared coordinator
  // re-optimizing on merged morsel windows (reopt every 10 morsels).
  TablePrinter prog_table("Q6 thread scaling (progressive, reopt 10)");
  prog_table.SetHeader(
      {"threads", "wall msec", "critical msec", "reorders", "stale morsels"});
  for (size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    ExecOptions options;
    options.mode = ExecMode::kProgressive;
    options.driver = ExecDriver::kSharded;
    options.num_threads = threads;
    options.progressive.vector_size = kMorselSize;
    options.progressive.reopt_interval = 10;
    auto run = engine.Execute(query, options);
    NIPO_CHECK(run.ok());
    const ParallelProgressiveReport& report =
        *run.ValueOrDie().sharded_progressive;
    NIPO_CHECK(report.drive.merged.qualifying_tuples ==
               ref.qualifying_tuples);
    NIPO_CHECK(report.drive.merged.aggregate == ref.aggregate);
    prog_table.AddRow(
        {std::to_string(threads), FormatDouble(report.drive.wall_msec, 1),
         FormatDouble(report.drive.merged.simulated_msec, 3),
         std::to_string(report.changes.size()),
         std::to_string(report.stale_morsels)});
  }
  prog_table.Print(std::cout);
  std::cout << "note: wall-clock speedup requires physical cores; the\n"
               "simulated critical path shows the sharding itself.\n";

  if (write_json) {
    JsonValue root = JsonValue::Object();
    root.Add("bench", "scale_threads");
    root.Add("morsel_size", kMorselSize);
    root.Add("baseline_sweep", sweep);
    WriteJsonArtifact(json_path, root);
  }
  return 0;
}
