#!/usr/bin/env bash
# The tier-1 verify recipe, executable: configure -> build -> ctest, run
# twice (1-thread and 8-thread parallel-driver configs via the
# NIPO_TEST_THREADS env var), then a perf-smoke run of the simulator
# throughput bench (its correctness gate asserts scalar/batched counter
# bit-identity; skip with NIPO_PERF_SMOKE=0), then the parallel tests
# again under a ThreadSanitizer build (skip with NIPO_TSAN=0).
# Usage: ci/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
for threads in 1 8; do
  echo "== ctest with NIPO_TEST_THREADS=$threads =="
  (cd "$BUILD_DIR" && NIPO_TEST_THREADS=$threads \
      ctest --output-on-failure -j "$(nproc)")
done

# Perf smoke: a quick sim_throughput run. The binary NIPO_CHECK-fails if
# any configuration's scalar and batched counters diverge, so this doubles
# as an end-to-end counter-invariance gate. The smoke artifact goes into
# the build dir — the *committed* repo-root BENCH_sim_throughput.json is
# the full-run trajectory anchor (EXPERIMENTS.md "Perf trajectory") and
# must only be refreshed by a deliberate non---quick run.
if [[ "${NIPO_PERF_SMOKE:-1}" == "1" ]]; then
  echo "== perf smoke: sim_throughput =="
  "$BUILD_DIR"/bench/sim_throughput --quick \
      --json="$BUILD_DIR"/BENCH_sim_throughput.json
fi

# ThreadSanitizer pass over the sharded-execution tests. Tests only (no
# benches/examples) keeps the second build tree small.
if [[ "${NIPO_TSAN:-1}" == "1" ]]; then
  echo "== ThreadSanitizer build: parallel driver tests =="
  cmake -B "$BUILD_DIR-tsan" -S . -DNIPO_TSAN=ON \
      -DNIPO_BUILD_BENCHES=OFF -DNIPO_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-tsan" -j "$(nproc)" --target parallel_driver_test
  (cd "$BUILD_DIR-tsan" && NIPO_TEST_THREADS=8 \
      ctest -R parallel_driver_test --output-on-failure)
fi
