#!/usr/bin/env bash
# The tier-1 verify recipe, executable (and what .github/workflows/ci.yml
# runs on every push/PR): lint -> configure -> build -> ctest twice
# (1-thread and 8-thread driver configs via the NIPO_TEST_THREADS env
# var), a perf-smoke run of the simulator-throughput, workload,
# SIMD-kernel, and compressed-storage-scan benches (their correctness
# gates assert counter, kernel, and plain-vs-encoded bit-identity), one
# multi-gate perf-regression check against the committed trajectory
# anchors, then the concurrency tests again under ThreadSanitizer and
# the full suite under ASan+UBSan.
#
# Opt-outs (all default on): NIPO_LINT=0, NIPO_PERF_SMOKE=0 (also skips
# the gate), NIPO_PERF_GATE=0, NIPO_TSAN=0, NIPO_ASAN=0.
# NIPO_SIMD=OFF builds without the AVX2 kernels (scalar fallback only;
# the CI matrix runs one such leg) and drops the SIMD-kernel perf gate,
# whose anchor records AVX2 throughput.
# Usage: ci/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
NIPO_SIMD="${NIPO_SIMD:-ON}"

# Lint: the repo ships .clang-format; every source tree file must be
# formatting-clean. Skipped with a notice where clang-format is not
# installed (the hosted CI installs it, so PRs cannot merge unformatted).
if [[ "${NIPO_LINT:-1}" == "1" ]]; then
  if command -v clang-format >/dev/null; then
    echo "== lint: clang-format --dry-run -Werror =="
    find src tests bench examples \( -name '*.cc' -o -name '*.h' \) -print0 \
      | xargs -0 clang-format --dry-run -Werror
  else
    echo "== lint: clang-format not installed, skipping =="
  fi

  # Storage-access lint: executors and query references must scan through
  # the ColumnView API (src/storage/column_view.h), never by downcasting
  # to Column<T> — raw access bypasses zone maps, encoded-byte PMU
  # booking, and the encodings-off bit-identity guarantee (DESIGN.md
  # Section 10). bench/ and tests/ may still use typed columns to build
  # fixtures; the executor tree and the Q1/Q6 reference oracles may not.
  echo "== lint: no raw column access outside storage =="
  if grep -RnE 'AsColumn<|->values\(\)|\.values\(\)|GetTypedColumn<|->data\(\)' \
      src/exec src/tpch/q1.cc src/tpch/q6.cc; then
    echo "lint: raw Column<T> access in the executor/reference tree" >&2
    echo "lint: scan through ColumnView instead (storage/column_view.h)" >&2
    exit 1
  fi
fi

cmake -B "$BUILD_DIR" -S . -DNIPO_SIMD="$NIPO_SIMD"
cmake --build "$BUILD_DIR" -j "$(nproc)"
for threads in 1 8; do
  echo "== ctest with NIPO_TEST_THREADS=$threads =="
  (cd "$BUILD_DIR" && NIPO_TEST_THREADS=$threads \
      ctest --output-on-failure -j "$(nproc)")
done

# Perf smoke: quick runs of the trajectory benches. Each binary
# NIPO_CHECK-fails if any configuration's counters or kernel outputs
# diverge (scalar-vs-batched reporting, solo-vs-concurrent, and
# AVX2-vs-scalar kernels respectively), so this doubles as an end-to-end
# bit-identity gate. Smoke artifacts go into the build dir — the
# *committed* repo-root BENCH_*.json files are the full-run trajectory
# anchors (EXPERIMENTS.md "Perf trajectory") and must only be refreshed
# by a deliberate non---quick run.
if [[ "${NIPO_PERF_SMOKE:-1}" == "1" ]]; then
  echo "== perf smoke: sim_throughput =="
  "$BUILD_DIR"/bench/sim_throughput --quick \
      --json="$BUILD_DIR"/BENCH_sim_throughput.json
  echo "== perf smoke: workload_throughput =="
  "$BUILD_DIR"/bench/workload_throughput --quick \
      --json="$BUILD_DIR"/BENCH_workload_throughput.json
  echo "== perf smoke: workload_contention =="
  "$BUILD_DIR"/bench/workload_contention --quick \
      --json="$BUILD_DIR"/BENCH_workload_contention.json
  echo "== perf smoke: service_latency =="
  "$BUILD_DIR"/bench/service_latency --quick \
      --json="$BUILD_DIR"/BENCH_service_latency.json
  echo "== perf smoke: service_faults =="
  "$BUILD_DIR"/bench/service_faults --quick \
      --json="$BUILD_DIR"/BENCH_service_faults.json
  echo "== perf smoke: simd_kernels =="
  "$BUILD_DIR"/bench/simd_kernels --quick \
      --json="$BUILD_DIR"/BENCH_simd_kernels.json
  echo "== perf smoke: storage_scan =="
  "$BUILD_DIR"/bench/storage_scan --quick \
      --json="$BUILD_DIR"/BENCH_storage_scan.json

  # Perf-regression gate, one invocation over every (anchor, metric)
  # pair: smoke throughput must stay within a generous factor of the
  # committed anchors (see ci/perf_gate.py). The service-latency gate
  # metric is open-loop throughput at the lowest swept rate — p99 tails
  # are load-shape measurements, not simulator-health ones. The
  # service-faults gate metric is goodput at fault rate zero — the
  # fault-free service baseline; the faulty points of that bench grade
  # retry/shedding policy, which its internal gates already pin. The
  # SIMD-kernel gate is dropped under NIPO_SIMD=OFF: its anchor records
  # AVX2 throughput the scalar-only build cannot reach.
  if [[ "${NIPO_PERF_GATE:-1}" == "1" ]]; then
    if command -v python3 >/dev/null; then
      echo "== perf gate: smoke vs committed anchors =="
      GATES=(
        --gate "BENCH_sim_throughput.json:$BUILD_DIR/BENCH_sim_throughput.json"
        --gate "BENCH_workload_contention.json:$BUILD_DIR/BENCH_workload_contention.json:sim_queries_per_sec"
        --gate "BENCH_service_latency.json:$BUILD_DIR/BENCH_service_latency.json:sim_queries_per_sec"
        --gate "BENCH_service_faults.json:$BUILD_DIR/BENCH_service_faults.json:sim_goodput_qps"
        --gate "BENCH_storage_scan.json:$BUILD_DIR/BENCH_storage_scan.json:sim_tuples_per_sec"
      )
      if [[ "$NIPO_SIMD" != "OFF" ]]; then
        GATES+=(--gate "BENCH_simd_kernels.json:$BUILD_DIR/BENCH_simd_kernels.json:tuples_per_sec_simd")
      fi
      python3 ci/perf_gate.py --min-ratio "${NIPO_PERF_GATE_MIN:-0.5}" \
          "${GATES[@]}"
    else
      echo "== perf gate: python3 not installed, skipping =="
    fi
  fi
fi

# ThreadSanitizer pass over the concurrency tests (the sharded parallel
# driver, the multi-query workload driver, the shared-L3 contention
# layer, the open-loop service mode, the fault-tolerance layer — whose
# cancellation token crosses worker threads — and the SIMD kernel
# layer, whose forced-level override is process-global state the
# executors read). Tests only (no benches/examples) keeps the second
# build tree small.
if [[ "${NIPO_TSAN:-1}" == "1" ]]; then
  echo "== ThreadSanitizer build: parallel + workload driver tests =="
  cmake -B "$BUILD_DIR-tsan" -S . -DNIPO_TSAN=ON -DNIPO_SIMD="$NIPO_SIMD" \
      -DNIPO_BUILD_BENCHES=OFF -DNIPO_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-tsan" -j "$(nproc)" \
      --target parallel_driver_test workload_driver_test \
      workload_contention_test service_mode_test service_faults_test \
      simd_kernels_test
  (cd "$BUILD_DIR-tsan" && NIPO_TEST_THREADS=8 \
      ctest -R 'parallel_driver_test|workload_driver_test|workload_contention_test|service_mode_test|service_faults_test|simd_kernels_test' \
      --output-on-failure)
fi

# AddressSanitizer+UBSan pass over the full test suite (fail-fast:
# -fno-sanitize-recover promotes every UBSan finding to an abort).
if [[ "${NIPO_ASAN:-1}" == "1" ]]; then
  echo "== ASan+UBSan build: full test suite =="
  cmake -B "$BUILD_DIR-asan" -S . -DNIPO_ASAN=ON -DNIPO_SIMD="$NIPO_SIMD" \
      -DNIPO_BUILD_BENCHES=OFF -DNIPO_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-asan" -j "$(nproc)"
  (cd "$BUILD_DIR-asan" && NIPO_TEST_THREADS=8 \
      ctest --output-on-failure -j "$(nproc)")
fi
