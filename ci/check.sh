#!/usr/bin/env bash
# The tier-1 verify recipe, executable: configure -> build -> ctest.
# Usage: ci/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)"
