#!/usr/bin/env bash
# The tier-1 verify recipe, executable (and what .github/workflows/ci.yml
# runs on every push/PR): lint -> configure -> build -> ctest twice
# (1-thread and 8-thread driver configs via the NIPO_TEST_THREADS env
# var), a perf-smoke run of the simulator-throughput and workload benches
# (their correctness gates assert counter bit-identity), the
# perf-regression gate against the committed trajectory anchor, then the
# concurrency tests again under ThreadSanitizer and the full suite under
# ASan+UBSan.
#
# Opt-outs (all default on): NIPO_LINT=0, NIPO_PERF_SMOKE=0 (also skips
# the gate), NIPO_PERF_GATE=0, NIPO_TSAN=0, NIPO_ASAN=0.
# Usage: ci/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Lint: the repo ships .clang-format; every source tree file must be
# formatting-clean. Skipped with a notice where clang-format is not
# installed (the hosted CI installs it, so PRs cannot merge unformatted).
if [[ "${NIPO_LINT:-1}" == "1" ]]; then
  if command -v clang-format >/dev/null; then
    echo "== lint: clang-format --dry-run -Werror =="
    find src tests bench examples \( -name '*.cc' -o -name '*.h' \) -print0 \
      | xargs -0 clang-format --dry-run -Werror
  else
    echo "== lint: clang-format not installed, skipping =="
  fi
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
for threads in 1 8; do
  echo "== ctest with NIPO_TEST_THREADS=$threads =="
  (cd "$BUILD_DIR" && NIPO_TEST_THREADS=$threads \
      ctest --output-on-failure -j "$(nproc)")
done

# Perf smoke: quick runs of sim_throughput and workload_throughput. Both
# binaries NIPO_CHECK-fail if any configuration's counters diverge
# (scalar-vs-batched, and solo-vs-concurrent respectively), so this
# doubles as an end-to-end counter-invariance gate. Smoke artifacts go
# into the build dir — the *committed* repo-root BENCH_*.json files are
# the full-run trajectory anchors (EXPERIMENTS.md "Perf trajectory") and
# must only be refreshed by a deliberate non---quick run.
if [[ "${NIPO_PERF_SMOKE:-1}" == "1" ]]; then
  echo "== perf smoke: sim_throughput =="
  "$BUILD_DIR"/bench/sim_throughput --quick \
      --json="$BUILD_DIR"/BENCH_sim_throughput.json
  echo "== perf smoke: workload_throughput =="
  "$BUILD_DIR"/bench/workload_throughput --quick \
      --json="$BUILD_DIR"/BENCH_workload_throughput.json
  echo "== perf smoke: workload_contention =="
  "$BUILD_DIR"/bench/workload_contention --quick \
      --json="$BUILD_DIR"/BENCH_workload_contention.json
  echo "== perf smoke: service_latency =="
  "$BUILD_DIR"/bench/service_latency --quick \
      --json="$BUILD_DIR"/BENCH_service_latency.json

  # Perf-regression gate: the smoke tuples/sec (queries/sec for the
  # contention and service benches) must stay within a generous factor of
  # the committed anchor (see ci/perf_gate.py). The service-latency gate
  # metric is open-loop throughput at the lowest swept rate — p99 tails
  # are load-shape measurements, not simulator-health ones.
  if [[ "${NIPO_PERF_GATE:-1}" == "1" ]]; then
    if command -v python3 >/dev/null; then
      echo "== perf gate: smoke vs committed anchor =="
      python3 ci/perf_gate.py --anchor BENCH_sim_throughput.json \
          --smoke "$BUILD_DIR"/BENCH_sim_throughput.json \
          --min-ratio "${NIPO_PERF_GATE_MIN:-0.5}"
      python3 ci/perf_gate.py --anchor BENCH_workload_contention.json \
          --smoke "$BUILD_DIR"/BENCH_workload_contention.json \
          --metric sim_queries_per_sec \
          --min-ratio "${NIPO_PERF_GATE_MIN:-0.5}"
      python3 ci/perf_gate.py --anchor BENCH_service_latency.json \
          --smoke "$BUILD_DIR"/BENCH_service_latency.json \
          --metric sim_queries_per_sec \
          --min-ratio "${NIPO_PERF_GATE_MIN:-0.5}"
    else
      echo "== perf gate: python3 not installed, skipping =="
    fi
  fi
fi

# ThreadSanitizer pass over the concurrency tests (the sharded parallel
# driver, the multi-query workload driver, the shared-L3 contention
# layer, and the open-loop service mode, whose contention=off path still
# runs the threaded pool). Tests only (no benches/examples) keeps the
# second build tree small.
if [[ "${NIPO_TSAN:-1}" == "1" ]]; then
  echo "== ThreadSanitizer build: parallel + workload driver tests =="
  cmake -B "$BUILD_DIR-tsan" -S . -DNIPO_TSAN=ON \
      -DNIPO_BUILD_BENCHES=OFF -DNIPO_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-tsan" -j "$(nproc)" \
      --target parallel_driver_test workload_driver_test \
      workload_contention_test service_mode_test
  (cd "$BUILD_DIR-tsan" && NIPO_TEST_THREADS=8 \
      ctest -R 'parallel_driver_test|workload_driver_test|workload_contention_test|service_mode_test' \
      --output-on-failure)
fi

# AddressSanitizer+UBSan pass over the full test suite (fail-fast:
# -fno-sanitize-recover promotes every UBSan finding to an abort).
if [[ "${NIPO_ASAN:-1}" == "1" ]]; then
  echo "== ASan+UBSan build: full test suite =="
  cmake -B "$BUILD_DIR-asan" -S . -DNIPO_ASAN=ON \
      -DNIPO_BUILD_BENCHES=OFF -DNIPO_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR-asan" -j "$(nproc)"
  (cd "$BUILD_DIR-asan" && NIPO_TEST_THREADS=8 \
      ctest --output-on-failure -j "$(nproc)")
fi
