#!/usr/bin/env python3
"""Perf-regression gate over the simulator-throughput trajectory.

Compares a fresh smoke run of a bench (--quick --json) against its
committed repo-root BENCH_*.json anchor: for every configuration present
in both, the smoke value of ``--metric`` (batched tuples/sec for
bench/sim_throughput, simulated queries/sec for the workload benches) must
stay above ``min_ratio`` times the anchor value. The tolerance is deliberately
generous (default 0.5x) because the smoke run is smaller than the anchor
run and CI machines differ from the machine that recorded the anchor; the
gate exists to catch order-of-magnitude simulator regressions (an
accidentally-scalar hot loop, a per-tuple hierarchy walk creeping back),
not single-digit-percent noise.

Exit status: 0 = pass, 1 = regression, 2 = usage/input error.
Wired as an opt-out step in ci/check.sh (NIPO_PERF_GATE=0 skips).
"""

import argparse
import json
import sys


def load_configs(path, metric):
    """Returns {config name: metric value} from a bench artifact."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    configs = {}
    for entry in doc.get("configs", []):
        name = entry.get("name")
        rate = entry.get(metric)
        # A config without a positive rate is an input error, not a skip:
        # silently narrowing coverage is how a gate rots.
        if name is None or not rate or float(rate) <= 0:
            print(f"perf_gate: config {name!r} in {path} has no positive "
                  f"{metric} ({rate!r})", file=sys.stderr)
            sys.exit(2)
        configs[name] = float(rate)
    if not configs:
        print(f"perf_gate: no configs in {path}", file=sys.stderr)
        sys.exit(2)
    return configs


def format_rate(value):
    """Human scaling: raw below 1M (queries/sec), Mega above (tuples/sec)."""
    if value >= 1e6:
        return f"{value / 1e6:8.1f}M"
    return f"{value:8.1f} "


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--anchor", required=True,
                        help="committed BENCH_sim_throughput.json")
    parser.add_argument("--smoke", required=True,
                        help="fresh smoke-run artifact to judge")
    parser.add_argument("--min-ratio", type=float, default=0.5,
                        help="fail below this smoke/anchor ratio "
                             "(default: %(default)s)")
    parser.add_argument("--metric", default="tuples_per_sec_batched",
                        help="per-config JSON field to compare "
                             "(default: %(default)s)")
    args = parser.parse_args()

    anchor = load_configs(args.anchor, args.metric)
    smoke = load_configs(args.smoke, args.metric)
    shared = sorted(set(anchor) & set(smoke))
    mismatched = sorted(set(anchor) ^ set(smoke))
    if mismatched:
        # Renaming/adding/removing a bench config must come with a
        # regenerated anchor; skipping the stragglers would let exactly
        # the config-went-missing regressions through.
        print(f"perf_gate: config sets differ ({', '.join(mismatched)}); "
              f"regenerate the committed anchor with a full --json run",
              file=sys.stderr)
        sys.exit(2)

    failures = 0
    width = max(len(name) for name in shared)
    for name in shared:
        ratio = smoke[name] / anchor[name]
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"perf_gate: {name:<{width}}  "
              f"anchor {format_rate(anchor[name])}  "
              f"smoke {format_rate(smoke[name])}  "
              f"ratio {ratio:5.2f}  {verdict}")
    if failures:
        print(f"perf_gate: FAIL — {failures}/{len(shared)} configs below "
              f"{args.min_ratio}x of the committed anchor", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: PASS — {len(shared)} configs at >= "
          f"{args.min_ratio}x of the committed anchor")


if __name__ == "__main__":
    main()
