#!/usr/bin/env python3
"""Perf-regression gate over the bench trajectory anchors.

Compares fresh smoke runs of the benches (--quick --json) against their
committed repo-root BENCH_*.json anchors: for every configuration present
in both, the smoke value of the gate's metric (batched tuples/sec for
bench/sim_throughput, simulated queries/sec for the workload benches,
SIMD-kernel tuples/sec for bench/simd_kernels) must stay above
``min_ratio`` times the anchor value. The tolerance is deliberately
generous (default 0.5x) because the smoke run is smaller than the anchor
run and CI machines differ from the machine that recorded the anchor; the
gate exists to catch order-of-magnitude regressions (an
accidentally-scalar hot loop, a per-tuple hierarchy walk creeping back),
not single-digit-percent noise.

Two invocation forms:

  Multiple gates in one run (what ci/check.sh uses)::

      perf_gate.py --min-ratio 0.5 \\
          --gate ANCHOR:SMOKE[:METRIC] [--gate ...]

  Single gate (backward compatible)::

      perf_gate.py --anchor A --smoke S [--metric M] [--min-ratio R]

METRIC defaults to tuples_per_sec_batched either way.

Exit status: 0 = all gates pass, 1 = regression, 2 = usage/input error.
Wired as an opt-out step in ci/check.sh (NIPO_PERF_GATE=0 skips).
"""

import argparse
import json
import sys

DEFAULT_METRIC = "tuples_per_sec_batched"


def load_configs(path, metric):
    """Returns {config name: metric value} from a bench artifact."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    configs = {}
    for entry in doc.get("configs", []):
        name = entry.get("name")
        rate = entry.get(metric)
        # A config without a positive rate is an input error, not a skip:
        # silently narrowing coverage is how a gate rots.
        if name is None or not rate or float(rate) <= 0:
            print(f"perf_gate: config {name!r} in {path} has no positive "
                  f"{metric} ({rate!r})", file=sys.stderr)
            sys.exit(2)
        configs[name] = float(rate)
    if not configs:
        print(f"perf_gate: no configs in {path}", file=sys.stderr)
        sys.exit(2)
    return configs


def format_rate(value):
    """Human scaling: raw below 1M (queries/sec), Mega above (tuples/sec)."""
    if value >= 1e6:
        return f"{value / 1e6:8.1f}M"
    return f"{value:8.1f} "


def run_gate(anchor_path, smoke_path, metric, min_ratio):
    """Runs one (anchor, smoke, metric) gate; returns the failure count."""
    anchor = load_configs(anchor_path, metric)
    smoke = load_configs(smoke_path, metric)
    shared = sorted(set(anchor) & set(smoke))
    mismatched = sorted(set(anchor) ^ set(smoke))
    if mismatched:
        # Renaming/adding/removing a bench config must come with a
        # regenerated anchor; skipping the stragglers would let exactly
        # the config-went-missing regressions through.
        print(f"perf_gate: config sets of {anchor_path} and {smoke_path} "
              f"differ ({', '.join(mismatched)}); regenerate the committed "
              f"anchor with a full --json run", file=sys.stderr)
        sys.exit(2)

    failures = 0
    width = max(len(name) for name in shared)
    for name in shared:
        ratio = smoke[name] / anchor[name]
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"perf_gate: {name:<{width}}  "
              f"anchor {format_rate(anchor[name])}  "
              f"smoke {format_rate(smoke[name])}  "
              f"ratio {ratio:5.2f}  {verdict}")
    return failures, len(shared)


def parse_gate_spec(spec):
    """Splits ANCHOR:SMOKE[:METRIC] into its parts."""
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], DEFAULT_METRIC
    if len(parts) == 3:
        return parts[0], parts[1], parts[2]
    print(f"perf_gate: bad --gate spec {spec!r} "
          f"(want ANCHOR:SMOKE[:METRIC])", file=sys.stderr)
    sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--gate", action="append", default=[],
                        metavar="ANCHOR:SMOKE[:METRIC]",
                        help="one (anchor, smoke, metric) comparison; "
                             "repeatable")
    parser.add_argument("--anchor", help="committed BENCH_*.json "
                        "(single-gate form)")
    parser.add_argument("--smoke", help="fresh smoke-run artifact to judge "
                        "(single-gate form)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help="per-config JSON field of the single-gate form "
                             "(default: %(default)s)")
    parser.add_argument("--min-ratio", type=float, default=0.5,
                        help="fail below this smoke/anchor ratio, applied to "
                             "every gate (default: %(default)s)")
    args = parser.parse_args()

    gates = [parse_gate_spec(spec) for spec in args.gate]
    if args.anchor or args.smoke:
        if not (args.anchor and args.smoke):
            print("perf_gate: --anchor and --smoke go together",
                  file=sys.stderr)
            sys.exit(2)
        gates.append((args.anchor, args.smoke, args.metric))
    if not gates:
        print("perf_gate: no gates given (use --gate or --anchor/--smoke)",
              file=sys.stderr)
        sys.exit(2)

    failures = 0
    total = 0
    for anchor_path, smoke_path, metric in gates:
        gate_failures, gate_total = run_gate(anchor_path, smoke_path, metric,
                                             args.min_ratio)
        failures += gate_failures
        total += gate_total
    if failures:
        print(f"perf_gate: FAIL — {failures}/{total} configs below "
              f"{args.min_ratio}x of their committed anchors",
              file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: PASS — {total} configs across {len(gates)} gate(s) "
          f"at >= {args.min_ratio}x of the committed anchors")


if __name__ == "__main__":
    main()
