/// \file pipeline_fuzz_test.cc
/// Randomized differential testing: for many seeded random (table,
/// predicate chain, order, vector size) combinations, the instrumented
/// pipeline, the progressive optimizer, and a naive reference evaluator
/// must agree exactly on the query result, and the PMU's structural
/// counter identities must hold.

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "exec/simd.h"
#include "hw/shared_cache.h"
#include "optimizer/progressive.h"
#include "storage/encoding.h"

namespace nipo {
namespace {

struct RandomCase {
  Table table{"t"};
  std::vector<OperatorSpec> ops;
  std::vector<std::string> payload;
  uint64_t ref_qualifying = 0;
  double ref_aggregate = 0;
};

RandomCase MakeCase(uint64_t seed) {
  Prng prng(seed);
  RandomCase c;
  const size_t rows = 1'000 + prng.NextBounded(30'000);
  const size_t num_cols = 2 + prng.NextBounded(5);  // 2..6 columns

  // Mixed-type columns with varied domains (some constant, some skewed).
  std::vector<std::vector<double>> values(num_cols,
                                          std::vector<double>(rows));
  for (size_t col = 0; col < num_cols; ++col) {
    const int kind = static_cast<int>(prng.NextBounded(4));
    for (size_t i = 0; i < rows; ++i) {
      switch (kind) {
        case 0:  // uniform wide
          values[col][i] = static_cast<double>(prng.NextBounded(1000));
          break;
        case 1:  // uniform narrow (many duplicates)
          values[col][i] = static_cast<double>(prng.NextBounded(4));
          break;
        case 2:  // constant
          values[col][i] = 7.0;
          break;
        default:  // drifting: distribution changes mid-table
          values[col][i] =
              i < rows / 2
                  ? static_cast<double>(prng.NextBounded(100))
                  : static_cast<double>(500 + prng.NextBounded(100));
      }
    }
    const std::string name = "c" + std::to_string(col);
    const int type = static_cast<int>(prng.NextBounded(3));
    if (type == 0) {
      std::vector<int32_t> v(rows);
      for (size_t i = 0; i < rows; ++i) {
        v[i] = static_cast<int32_t>(values[col][i]);
      }
      EXPECT_TRUE(c.table.AddColumn(name, std::move(v)).ok());
    } else if (type == 1) {
      std::vector<int64_t> v(rows);
      for (size_t i = 0; i < rows; ++i) {
        v[i] = static_cast<int64_t>(values[col][i]);
      }
      EXPECT_TRUE(c.table.AddColumn(name, std::move(v)).ok());
    } else {
      std::vector<double> v(rows);
      for (size_t i = 0; i < rows; ++i) v[i] = values[col][i];
      EXPECT_TRUE(c.table.AddColumn(name, std::move(v)).ok());
    }
  }

  // 1..5 predicates on random columns (repeats allowed -- the executor
  // must handle repeated-column predicates even though the analytic scan
  // model is specified for distinct ones).
  const size_t num_preds = 1 + prng.NextBounded(5);
  static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe,
                                       CompareOp::kEq, CompareOp::kNe};
  for (size_t p = 0; p < num_preds; ++p) {
    PredicateSpec pred;
    pred.column = "c" + std::to_string(prng.NextBounded(num_cols));
    pred.op = kOps[prng.NextBounded(6)];
    pred.value = static_cast<double>(prng.NextInRange(-10, 1010));
    if (prng.NextBool(0.2)) pred.extra_instructions = 10.0;
    c.ops.push_back(OperatorSpec::Predicate(pred));
  }
  // Payload: last column, as SUM input, half the time.
  if (prng.NextBool(0.5)) {
    c.payload.push_back("c" + std::to_string(num_cols - 1));
  }

  // Reference evaluation straight off the value matrix.
  for (size_t i = 0; i < rows; ++i) {
    bool pass = true;
    for (const OperatorSpec& op : c.ops) {
      const size_t col =
          static_cast<size_t>(op.predicate.column[1] - '0');
      // Column values were stored possibly truncated to int; recompute
      // what the table holds.
      double v = values[col][i];
      const ColumnBase* column =
          c.table.GetColumn(op.predicate.column).ValueOrDie();
      if (column->type() != DataType::kDouble) {
        v = std::floor(v);
      }
      if (!EvaluateCompare(v, op.predicate.op, op.predicate.value)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      ++c.ref_qualifying;
      if (!c.payload.empty()) {
        double v = values[num_cols - 1][i];
        const ColumnBase* column =
            c.table.GetColumn(c.payload[0]).ValueOrDie();
        if (column->type() != DataType::kDouble) v = std::floor(v);
        c.ref_aggregate += v;
      }
    }
  }
  return c;
}

class PipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzzTest, MatchesReferenceUnderAnyOrderAndVectorSize) {
  const uint64_t seed = GetParam();
  RandomCase c = MakeCase(seed);
  Prng prng(seed ^ 0xabcdef);

  // A few random orders and vector sizes per case.
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<size_t> order(c.ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[prng.NextBounded(i)]);
    }
    const size_t vector_size = 64 + prng.NextBounded(8192);

    Pmu pmu(HwConfig::ScaledXeon(32));
    auto exec =
        PipelineExecutor::Compile(c.table, c.ops, c.payload, &pmu);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(exec.ValueOrDie()->Reorder(order).ok());
    VectorDriver driver(exec.ValueOrDie().get(), vector_size);
    const DriveResult r = driver.Run();

    ASSERT_EQ(r.qualifying_tuples, c.ref_qualifying)
        << "seed=" << seed << " trial=" << trial;
    ASSERT_DOUBLE_EQ(r.aggregate, c.ref_aggregate);
    // Structural counter identity: qualifying = 2n - branches_taken.
    ASSERT_EQ(2 * r.input_tuples - r.total.branches_taken,
              r.qualifying_tuples);
    // Mispredictions partition.
    ASSERT_EQ(r.total.mispredictions,
              r.total.taken_mispredictions +
                  r.total.not_taken_mispredictions);
    // Branch direction counts partition the branch count.
    ASSERT_EQ(r.total.branches,
              r.total.branches_taken + r.total.branches_not_taken);
  }
}

TEST_P(PipelineFuzzTest, ScalarAndBatchedReportingBitIdentical) {
  // The batched reporting layer (DESIGN.md "Batched simulation") claims
  // PmuCounters are reporting-path invariant. Prove it differentially:
  // identical machines, identical pipelines, random orders, vector sizes
  // and cache configurations — scalar vs batched Read() must be
  // bit-equal, per sampled vector window and in total.
  const uint64_t seed = GetParam();
  RandomCase c = MakeCase(seed);
  Prng prng(seed ^ 0x5eed);

  for (const uint64_t cache_divisor : {8ull, 32ull, 1024ull}) {
    std::vector<size_t> order(c.ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[prng.NextBounded(i)]);
    }
    const size_t vector_size = 64 + prng.NextBounded(8192);

    const HwConfig hw = HwConfig::ScaledXeon(cache_divisor);
    Pmu scalar_pmu(hw), batched_pmu(hw);
    scalar_pmu.set_reporting_mode(ReportingMode::kScalar);
    batched_pmu.set_reporting_mode(ReportingMode::kBatched);

    std::vector<PmuCounters> scalar_samples, batched_samples;
    DriveResult results[2];
    int which = 0;
    for (Pmu* pmu : {&scalar_pmu, &batched_pmu}) {
      auto exec = PipelineExecutor::Compile(c.table, c.ops, c.payload, pmu);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(exec.ValueOrDie()->Reorder(order).ok());
      VectorDriver driver(exec.ValueOrDie().get(), vector_size);
      auto* samples = pmu == &scalar_pmu ? &scalar_samples : &batched_samples;
      results[which++] = driver.Run([samples](const VectorSample& s) {
        samples->push_back(s.counters);
      });
    }
    ASSERT_EQ(results[0].qualifying_tuples, results[1].qualifying_tuples);
    ASSERT_EQ(results[0].aggregate, results[1].aggregate);
    ASSERT_EQ(results[0].total, results[1].total)
        << "seed=" << seed << " divisor=" << cache_divisor << "\nscalar:  "
        << results[0].total.ToString() << "\nbatched: "
        << results[1].total.ToString();
    // Every per-vector counter window must agree too (the progressive
    // optimizer consumes these).
    ASSERT_EQ(scalar_samples.size(), batched_samples.size());
    for (size_t v = 0; v < scalar_samples.size(); ++v) {
      ASSERT_EQ(scalar_samples[v], batched_samples[v])
          << "seed=" << seed << " vector=" << v;
    }
  }
}

TEST_P(PipelineFuzzTest, Avx2AndScalarKernelsBitIdentical) {
  // The SIMD layer's contract (DESIGN.md Section 8): the AVX2 and
  // branch-free scalar kernels produce identical results, and because
  // executors book the logical event stream themselves, identical
  // simulated counters — on any cache geometry. Prove it differentially
  // over the same random pipelines as the reporting-mode test.
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "host lacks AVX2; only the scalar kernels can run";
  }
  const uint64_t seed = GetParam();
  RandomCase c = MakeCase(seed);
  Prng prng(seed ^ 0x51d);

  for (const uint64_t cache_divisor : {8ull, 32ull, 1024ull}) {
    std::vector<size_t> order(c.ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[prng.NextBounded(i)]);
    }
    const size_t vector_size = 64 + prng.NextBounded(8192);

    const HwConfig hw = HwConfig::ScaledXeon(cache_divisor);
    std::vector<std::vector<PmuCounters>> samples(2);
    DriveResult results[2];
    int which = 0;
    for (const simd::SimdLevel level :
         {simd::SimdLevel::kScalar, simd::SimdLevel::kAvx2}) {
      simd::ForceLevel(level);
      Pmu pmu(hw);
      auto exec = PipelineExecutor::Compile(c.table, c.ops, c.payload, &pmu);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(exec.ValueOrDie()->Reorder(order).ok());
      VectorDriver driver(exec.ValueOrDie().get(), vector_size);
      auto* out = &samples[which];
      results[which++] = driver.Run(
          [out](const VectorSample& s) { out->push_back(s.counters); });
    }
    simd::ResetForcedLevel();
    ASSERT_EQ(results[0].qualifying_tuples, results[1].qualifying_tuples)
        << "seed=" << seed << " divisor=" << cache_divisor;
    ASSERT_EQ(results[0].aggregate, results[1].aggregate);
    ASSERT_EQ(results[0].total, results[1].total)
        << "seed=" << seed << " divisor=" << cache_divisor << "\nscalar: "
        << results[0].total.ToString() << "\navx2:   "
        << results[1].total.ToString();
    ASSERT_EQ(samples[0].size(), samples[1].size());
    for (size_t v = 0; v < samples[0].size(); ++v) {
      ASSERT_EQ(samples[0][v], samples[1][v])
          << "seed=" << seed << " vector=" << v;
    }
  }
}

TEST_P(PipelineFuzzTest, EncodedStorageMatchesReference) {
  // Compressed storage differential (DESIGN.md Section 10): encode the
  // random table block by block -- the random column shapes cover the
  // dictionary/bit-pack edge cases (constant columns, narrow domains,
  // drifting distributions, doubles) -- and the pipeline over encoded
  // columns with zone-map skipping must still match the plain reference
  // exactly, for any order and vector size.
  const uint64_t seed = GetParam();
  RandomCase c = MakeCase(seed);
  Prng prng(seed ^ 0xe2c0de);

  EncodingOptions options;
  options.block_values = 128 << prng.NextBounded(4);  // 128..1024
  auto stats = EncodeTableColumns(&c.table, options);
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats.ValueOrDie().columns_encoded, 0u);

  for (int trial = 0; trial < 3; ++trial) {
    std::vector<size_t> order(c.ops.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[prng.NextBounded(i)]);
    }
    const size_t vector_size = 64 + prng.NextBounded(8192);

    Pmu pmu(HwConfig::ScaledXeon(32));
    auto exec = PipelineExecutor::Compile(c.table, c.ops, c.payload, &pmu);
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(exec.ValueOrDie()->Reorder(order).ok());
    VectorDriver driver(exec.ValueOrDie().get(), vector_size);
    const DriveResult r = driver.Run();

    ASSERT_EQ(r.qualifying_tuples, c.ref_qualifying)
        << "seed=" << seed << " trial=" << trial
        << " zone_skipped=" << r.zone_skipped_tuples;
    ASSERT_DOUBLE_EQ(r.aggregate, c.ref_aggregate);
    // Skipped tuples never reach the pipeline, so the branch identity
    // holds over the tuples actually evaluated.
    ASSERT_EQ(2 * (r.input_tuples - r.zone_skipped_tuples) - r.total.branches_taken,
              r.qualifying_tuples);
  }
}

TEST_P(PipelineFuzzTest, ProgressiveOptimizerPreservesResults) {
  const uint64_t seed = GetParam();
  RandomCase c = MakeCase(seed);
  Pmu pmu(HwConfig::ScaledXeon(32));
  auto exec = PipelineExecutor::Compile(c.table, c.ops, c.payload, &pmu);
  ASSERT_TRUE(exec.ok());
  ProgressiveConfig cfg;
  cfg.vector_size = 1024;
  cfg.reopt_interval = 2;
  cfg.explore_period = 3;
  ProgressiveOptimizer opt(exec.ValueOrDie().get(), cfg);
  const ProgressiveReport report = opt.Run();
  ASSERT_EQ(report.drive.qualifying_tuples, c.ref_qualifying)
      << "seed=" << seed;
  ASSERT_DOUBLE_EQ(report.drive.aggregate, c.ref_aggregate);
  // The final order is a valid permutation.
  std::vector<bool> seen(c.ops.size(), false);
  for (size_t idx : report.final_order) {
    ASSERT_LT(idx, c.ops.size());
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

/// Replays a seeded random multi-owner access trace against a fresh
/// SharedCacheDomain (hw/shared_cache.h) and returns the final per-owner
/// stats. Owners interleave streaming sweeps with reuse probes over a
/// working set larger than the cache, so every accounting path (hits,
/// misses, ownership transfers, self- and cross-owner evictions) is
/// exercised.
std::vector<SharedCacheDomain::OwnerStats> DriveSharedL3(
    uint64_t seed, SharedCacheDomain* domain, uint64_t* lines_displaced,
    uint64_t* occupied_lines) {
  Prng prng(seed);
  const size_t num_owners = 2 + prng.NextBounded(4);  // 2..5 owners
  for (size_t o = 0; o < num_owners; ++o) {
    domain->RegisterOwner("owner" + std::to_string(o));
  }
  const uint64_t working_set = domain->capacity_lines() * 4;
  std::vector<uint64_t> stream_pos(num_owners, 0);
  const size_t num_accesses = 20'000 + prng.NextBounded(20'000);
  for (size_t i = 0; i < num_accesses; ++i) {
    const auto owner = static_cast<uint32_t>(prng.NextBounded(num_owners));
    uint64_t line;
    if (prng.NextBool(0.5)) {
      line = stream_pos[owner]++ % working_set;  // streaming sweep
    } else {
      // Reuse probe into a small owner-private hot set.
      line = working_set + owner * 64 + prng.NextBounded(64);
    }
    domain->AccessFill(owner, line);
  }
  *lines_displaced = domain->lines_displaced();
  *occupied_lines = domain->level().occupied_lines();
  std::vector<SharedCacheDomain::OwnerStats> stats;
  for (uint32_t o = 0; o < num_owners; ++o) {
    stats.push_back(domain->stats(o));
  }
  return stats;
}

TEST_P(PipelineFuzzTest, SharedL3MultiOwnerRoundTripIsDeterministic) {
  const uint64_t seed = GetParam();
  const CacheGeometry geometry{16 * 1024, 4, 64};  // 256 lines, 64 sets
  SharedCacheDomain first(geometry), second(geometry);
  uint64_t displaced[2], occupied[2];
  const auto a = DriveSharedL3(seed, &first, &displaced[0], &occupied[0]);
  const auto b = DriveSharedL3(seed, &second, &displaced[1], &occupied[1]);
  // Same seed, fresh domain: bit-identical per-owner counters.
  ASSERT_EQ(a.size(), b.size());
  for (size_t o = 0; o < a.size(); ++o) {
    EXPECT_EQ(a[o].hits, b[o].hits) << "seed=" << seed << " owner=" << o;
    EXPECT_EQ(a[o].misses, b[o].misses);
    EXPECT_EQ(a[o].evictions_caused, b[o].evictions_caused);
    EXPECT_EQ(a[o].evictions_suffered, b[o].evictions_suffered);
    EXPECT_EQ(a[o].self_evictions, b[o].self_evictions);
    EXPECT_EQ(a[o].occupancy_lines, b[o].occupancy_lines);
    EXPECT_EQ(a[o].peak_occupancy_lines, b[o].peak_occupancy_lines);
  }
  EXPECT_EQ(displaced[0], displaced[1]);
  EXPECT_EQ(occupied[0], occupied[1]);
}

TEST_P(PipelineFuzzTest, SharedL3EvictionAccountingInvariants) {
  const uint64_t seed = GetParam();
  const CacheGeometry geometry{16 * 1024, 4, 64};
  SharedCacheDomain domain(geometry);
  uint64_t displaced, occupied;
  const auto stats = DriveSharedL3(seed, &domain, &displaced, &occupied);
  uint64_t occupancy_sum = 0, charged = 0, caused = 0;
  for (const SharedCacheDomain::OwnerStats& s : stats) {
    occupancy_sum += s.occupancy_lines;
    charged += s.evictions_suffered + s.self_evictions;
    caused += s.evictions_caused;
    EXPECT_LE(s.occupancy_lines, s.peak_occupancy_lines);
    EXPECT_LE(s.peak_occupancy_lines, domain.capacity_lines());
  }
  // Every resident line is owned by exactly one owner.
  EXPECT_EQ(occupancy_sum, domain.total_occupancy_lines());
  EXPECT_EQ(occupancy_sum, occupied) << "seed=" << seed;
  EXPECT_LE(occupancy_sum, domain.capacity_lines());
  // Every displaced line was charged to exactly one victim, and every
  // cross-owner eviction has an aggressor.
  EXPECT_EQ(charged, displaced) << "seed=" << seed;
  uint64_t suffered = 0;
  for (const auto& s : stats) suffered += s.evictions_suffered;
  EXPECT_EQ(caused, suffered);
  // The trace overflows the cache by construction.
  EXPECT_GT(displaced, 0u);
  EXPECT_EQ(occupied, domain.capacity_lines());

  // Clear() drops contents and statistics but keeps registrations.
  domain.Clear();
  EXPECT_EQ(domain.num_owners(), stats.size());
  EXPECT_EQ(domain.total_occupancy_lines(), 0u);
  EXPECT_EQ(domain.lines_displaced(), 0u);
  EXPECT_EQ(domain.level().occupied_lines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace nipo
