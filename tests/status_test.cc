#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace nipo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad knob");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
}

TEST(StatusTest, OkCodeWithMessageNormalizes) {
  Status st(StatusCode::kOk, "should vanish");
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    NIPO_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  auto succeeds = []() -> Status {
    NIPO_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing here");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, ConstructingFromOkStatusDegradesToInternal) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    NIPO_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).ValueOrDie(), 11);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace nipo
