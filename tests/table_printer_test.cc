#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nipo {
namespace {

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.14, 3), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(0.5, 1), "0.5");
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
}

TEST(FormatDoubleTest, NegativeZeroNormalizes) {
  EXPECT_EQ(FormatDouble(-0.0001, 2), "0");
}

TEST(FormatDoubleTest, RoundsAtPrecision) {
  EXPECT_EQ(FormatDouble(1.999, 2), "2");
  EXPECT_EQ(FormatDouble(0.126, 2), "0.13");
}

TEST(TablePrinterTest, AlignedOutputContainsAllCells) {
  TablePrinter t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t("demo");
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream out;
  t.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, NumericRowsFormatted) {
  TablePrinter t("demo");
  t.SetHeader({"x", "y"});
  t.AddNumericRow({1.5, 2.0}, 2);
  std::ostringstream out;
  t.PrintCsv(out);
  EXPECT_EQ(out.str(), "x,y\n1.5,2\n");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter t("demo");
  t.SetHeader({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only one"}), "NIPO_CHECK");
}

}  // namespace
}  // namespace nipo
