#include "exec/arrival.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

// Arrival-process unit tests (DESIGN.md "Open-loop service mode"):
//  - identical specs (same seed) generate bit-identical schedules;
//  - Poisson inter-arrival sample mean lands near 1/lambda under a
//    fixed seed;
//  - the bursty process alternates on/off phases deterministically and
//    keeps the configured long-run rate;
//  - deterministic-interval arrivals are exact multiples of the gap;
//  - the rate -> infinity limit collapses every open process to
//    simultaneous arrivals at t = 0.

namespace nipo {
namespace {

ArrivalSpec Spec(ArrivalKind kind, double rate_qps, uint64_t seed = 42) {
  ArrivalSpec spec;
  spec.kind = kind;
  spec.rate_qps = rate_qps;
  spec.seed = seed;
  return spec;
}

void ExpectNonDecreasing(const std::vector<double>& arrivals) {
  for (size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_LE(arrivals[i - 1], arrivals[i]) << "index " << i;
  }
}

TEST(ArrivalProcessTest, IdenticalSeedsYieldIdenticalSchedules) {
  for (const ArrivalKind kind :
       {ArrivalKind::kUniform, ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    const std::vector<double> a = GenerateArrivalTimes(Spec(kind, 50.0), 500);
    const std::vector<double> b = GenerateArrivalTimes(Spec(kind, 50.0), 500);
    EXPECT_EQ(a, b);  // bitwise, every instant
    ExpectNonDecreasing(a);
    EXPECT_EQ(a.front(), 0.0);
  }
  // Different seeds move the random processes (and only those).
  EXPECT_NE(GenerateArrivalTimes(Spec(ArrivalKind::kPoisson, 50.0, 1), 500),
            GenerateArrivalTimes(Spec(ArrivalKind::kPoisson, 50.0, 2), 500));
  EXPECT_NE(GenerateArrivalTimes(Spec(ArrivalKind::kBursty, 50.0, 1), 500),
            GenerateArrivalTimes(Spec(ArrivalKind::kBursty, 50.0, 2), 500));
  EXPECT_EQ(GenerateArrivalTimes(Spec(ArrivalKind::kUniform, 50.0, 1), 500),
            GenerateArrivalTimes(Spec(ArrivalKind::kUniform, 50.0, 2), 500));
}

TEST(ArrivalProcessTest, UniformIsExactMultiplesOfTheGap) {
  const double rate = 40.0;  // 25 msec gap
  const std::vector<double> arrivals =
      GenerateArrivalTimes(Spec(ArrivalKind::kUniform, rate), 100);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], static_cast<double>(i) * 25.0);
  }
}

TEST(ArrivalProcessTest, PoissonSampleMeanApproximatesOneOverLambda) {
  const double rate = 200.0;  // 5 msec mean gap
  const size_t n = 20'000;
  const std::vector<double> arrivals =
      GenerateArrivalTimes(Spec(ArrivalKind::kPoisson, rate), n);
  ExpectNonDecreasing(arrivals);
  const double mean_gap =
      arrivals.back() / static_cast<double>(n - 1);  // arrivals[0] == 0
  EXPECT_NEAR(mean_gap, 5.0, 0.15);  // 3% tolerance at 20k samples
  // Exponential gaps: about 1 - 1/e of them fall below the mean.
  size_t below = 0;
  for (size_t i = 1; i < n; ++i) {
    if (arrivals[i] - arrivals[i - 1] < 5.0) ++below;
  }
  const double frac_below = static_cast<double>(below) / (n - 1);
  EXPECT_NEAR(frac_below, 0.632, 0.02);
}

TEST(ArrivalProcessTest, BurstyAlternatesPhasesDeterministically) {
  ArrivalSpec spec = Spec(ArrivalKind::kBursty, 50.0);
  spec.burst_len = 8;  // default burst rate: 4x -> 200 qps inside bursts
  const size_t n = 4'000;
  const std::vector<double> arrivals = GenerateArrivalTimes(spec, n);
  ExpectNonDecreasing(arrivals);
  // Every burst boundary (i % burst_len == 0) inserts the exact same
  // deterministic off-phase gap: burst_len * mean_gap minus the
  // (burst_len - 1) intra-burst budgets = 8 * 20 - 7 * 5 = 125 msec.
  // (NEAR, not EQ: the gap is exact when generated, but reading it back
  // off the cumulative schedule costs an ulp at these magnitudes.)
  for (size_t i = spec.burst_len; i < n; i += spec.burst_len) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 125.0, 1e-9) << "index " << i;
  }
  // Intra-burst gaps are strictly smaller (exponential of mean 5 msec
  // never, at these sample sizes, reaches the 125 msec off gap).
  for (size_t i = 1; i < n; ++i) {
    if (i % spec.burst_len != 0) {
      EXPECT_LT(arrivals[i] - arrivals[i - 1], 125.0) << "index " << i;
    }
  }
  // The long-run rate stays the configured mean rate: the off gaps
  // deterministically repay the burst-rate budget, leaving only the
  // exponential jitter of the on-phases (~3% at this sample size).
  const double mean_gap = arrivals.back() / static_cast<double>(n - 1);
  EXPECT_NEAR(mean_gap, 20.0, 0.6);
}

TEST(ArrivalProcessTest, InfiniteRateCollapsesToSimultaneousArrivals) {
  const double inf = std::numeric_limits<double>::infinity();
  for (const ArrivalKind kind :
       {ArrivalKind::kUniform, ArrivalKind::kPoisson}) {
    const std::vector<double> arrivals =
        GenerateArrivalTimes(Spec(kind, inf), 64);
    for (const double t : arrivals) EXPECT_EQ(t, 0.0);
  }
}

TEST(ArrivalProcessTest, ClosedKindGeneratesAllZeros) {
  const std::vector<double> arrivals =
      GenerateArrivalTimes(ArrivalSpec{}, 16);
  for (const double t : arrivals) EXPECT_EQ(t, 0.0);
  EXPECT_TRUE(GenerateArrivalTimes(Spec(ArrivalKind::kPoisson, 10.0), 0)
                  .empty());
}

}  // namespace
}  // namespace nipo
