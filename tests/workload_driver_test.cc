#include "exec/workload_driver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/prng.h"
#include "core/engine.h"

// Coverage for multi-query workload execution (DESIGN.md "Workload
// execution"):
//  - deterministic mode: every query's results AND counters are
//    bit-identical to running it alone through ExecuteBaseline /
//    ExecuteProgressive, for any max_concurrent and worker count;
//  - the whole report (per-query counters, simulated schedule, makespan)
//    is stable across max_concurrent in {1, 2, 8} and across repeated
//    runs under racing worker schedules;
//  - admission control bounds in-flight queries and serializes the
//    simulated schedule at max_concurrent = 1;
//  - SimulateWorkloadSchedule replays the pool policy deterministically;
//  - warm (non-deterministic) mode keeps results schedule-independent.
// ci/check.sh runs this suite with NIPO_TEST_THREADS=1 and =8 and under
// ThreadSanitizer; the env var replaces the default worker-count sweep.

namespace nipo {
namespace {

std::vector<size_t> TestThreadCounts() {
  if (const char* env = std::getenv("NIPO_TEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return {static_cast<size_t>(parsed)};
  }
  return {1, 2, 4, 8};
}

constexpr size_t kDimRows = 10'001;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n), c(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    c[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(kDimRows));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t->AddColumn("c", std::move(c)).ok());
  EXPECT_TRUE(t->AddColumn("fk", std::move(fk)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

/// Two fact tables (40k / 60k rows) + one 10k-row dimension.
Engine MakeWorkloadEngine() {
  Engine engine(HwConfig::ScaledXeon(16));
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_a", 40'000, 1)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_b", 60'000, 2)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim", kDimRows, 3)).ok());
  return engine;
}

QuerySpec ScanQuery(const std::string& table, double a_lt, double b_lt,
                    double c_lt) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, a_lt}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, b_lt}),
           OperatorSpec::Predicate({"c", CompareOp::kLt, c_lt})};
  q.payload_columns = {"payload"};
  return q;
}

QuerySpec JoinQuery(const Engine& engine, const std::string& table) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 80.0}),
           OperatorSpec::FkProbe({"fk", engine.GetTable("dim").ValueOrDie(),
                                  "attr", CompareOp::kLt, 40.0})};
  q.payload_columns = {"payload"};
  return q;
}

/// Eight mixed queries: scans + FK-probe joins + SUM aggregates over two
/// shared tables, baseline and progressive, with one explicit initial
/// order — the heterogeneity the bit-equality claims must hold under.
WorkloadSpec MakeMixedWorkload(const Engine& engine) {
  WorkloadSpec spec;
  auto add = [&spec](std::string name, QuerySpec q, bool progressive,
                     size_t vector_size,
                     std::optional<std::vector<size_t>> order =
                         std::nullopt) {
    WorkloadQuery query;
    query.name = std::move(name);
    query.query = std::move(q);
    query.progressive = progressive;
    query.config.vector_size = vector_size;
    query.config.reopt_interval = 2;
    query.initial_order = std::move(order);
    spec.queries.push_back(std::move(query));
  };
  // Worst-first scans (the ~2% predicate evaluated last) in both modes.
  add("scan_a_base", ScanQuery("fact_a", 90, 50, 2), false, 2'048);
  add("scan_a_prog", ScanQuery("fact_a", 90, 50, 2), true, 2'048);
  add("scan_b_base", ScanQuery("fact_b", 90, 50, 2), false, 4'096);
  add("scan_b_prog", ScanQuery("fact_b", 90, 50, 2), true, 4'096);
  add("join_a_base", JoinQuery(engine, "fact_a"), false, 2'048);
  add("join_b_prog", JoinQuery(engine, "fact_b"), true, 2'048);
  add("scan_b_selective", ScanQuery("fact_b", 10, 90, 90), false, 1'024);
  add("scan_a_reordered", ScanQuery("fact_a", 90, 50, 2), false, 2'048,
      std::vector<size_t>{2, 0, 1});
  return spec;
}

/// Solo single-threaded reference for query `q`: ExecuteBaseline or
/// ExecuteProgressive, whichever the workload entry asks for.
DriveResult SoloDrive(const Engine& engine, const WorkloadQuery& q,
                      std::vector<size_t>* final_order = nullptr) {
  if (q.progressive) {
    auto r = engine.ExecuteProgressive(q.query, q.config, q.initial_order);
    EXPECT_TRUE(r.ok());
    if (final_order != nullptr) *final_order = r.ValueOrDie().final_order;
    return r.ValueOrDie().drive;
  }
  auto r =
      engine.ExecuteBaseline(q.query, q.config.vector_size, q.initial_order);
  EXPECT_TRUE(r.ok());
  if (final_order != nullptr) *final_order = r.ValueOrDie().order;
  return r.ValueOrDie().drive;
}

TEST(WorkloadDriverTest, DeterministicModeIsBitIdenticalToSoloRuns) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.max_concurrent = 8;
  for (size_t threads : TestThreadCounts()) {
    spec.options.num_threads = threads;
    auto result = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(result.ok());
    const WorkloadReport& report = result.ValueOrDie();
    ASSERT_EQ(report.queries.size(), spec.queries.size());
    for (size_t i = 0; i < spec.queries.size(); ++i) {
      std::vector<size_t> solo_order;
      const DriveResult solo = SoloDrive(engine, spec.queries[i], &solo_order);
      const WorkloadQueryReport& q = report.queries[i];
      EXPECT_EQ(q.name, spec.queries[i].name);
      EXPECT_EQ(q.drive.total, solo.total)  // every counter, exactly
          << q.name << ", " << threads << " threads";
      EXPECT_EQ(q.drive.qualifying_tuples, solo.qualifying_tuples) << q.name;
      EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;  // bitwise
      EXPECT_EQ(q.drive.simulated_msec, solo.simulated_msec) << q.name;
      EXPECT_EQ(q.drive.num_vectors, solo.num_vectors) << q.name;
      EXPECT_EQ(q.final_order, solo_order) << q.name;
    }
  }
}

TEST(WorkloadDriverTest, ReportIsStableAcrossMaxConcurrentAndRuns) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  // Reference: fully serial (one slot, one worker).
  spec.options.num_threads = 1;
  spec.options.max_concurrent = 1;
  auto serial = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(serial.ok());
  const WorkloadReport& ref = serial.ValueOrDie();
  EXPECT_EQ(ref.peak_in_flight, 1u);
  for (size_t max_concurrent : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t threads : TestThreadCounts()) {
      for (int run = 0; run < 2; ++run) {
        spec.options.num_threads = threads;
        spec.options.max_concurrent = max_concurrent;
        auto result = engine.ExecuteWorkload(spec);
        ASSERT_TRUE(result.ok());
        const WorkloadReport& report = result.ValueOrDie();
        EXPECT_LE(report.peak_in_flight, max_concurrent);
        double serial_sum = 0;
        for (size_t i = 0; i < report.queries.size(); ++i) {
          const WorkloadQueryReport& q = report.queries[i];
          EXPECT_EQ(q.drive.total, ref.queries[i].drive.total)
              << q.name << ", mc=" << max_concurrent << ", t=" << threads;
          EXPECT_EQ(q.drive.aggregate, ref.queries[i].drive.aggregate);
          EXPECT_EQ(q.changes.size(), ref.queries[i].changes.size());
          EXPECT_GT(q.quanta, 0u);
          EXPECT_LE(q.sim_start_msec, q.sim_finish_msec);
          EXPECT_LE(q.sim_finish_msec, report.sim_makespan_msec);
          serial_sum += q.drive.simulated_msec;
        }
        // The machine-time sum is schedule-independent, so the serial
        // baseline and the makespan bounds follow from it exactly.
        EXPECT_EQ(report.sim_serial_msec, serial_sum);
        EXPECT_GT(report.sim_makespan_msec, 0.0);
        EXPECT_LE(report.sim_makespan_msec, serial_sum * 1.000001);
        EXPECT_EQ(report.sim_queries_per_sec,
                  static_cast<double>(report.queries.size()) /
                      (report.sim_makespan_msec / 1e3));
      }
    }
  }
}

TEST(WorkloadDriverTest, SimulatedScheduleIsConcurrentOnlyWhenAdmitted) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 4;
  // max_concurrent = 1: admission serializes the simulated schedule FIFO
  // regardless of the pool width.
  spec.options.max_concurrent = 1;
  auto serialized = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(serialized.ok());
  const WorkloadReport& one = serialized.ValueOrDie();
  EXPECT_EQ(one.peak_in_flight, 1u);
  for (size_t i = 1; i < one.queries.size(); ++i) {
    EXPECT_GE(one.queries[i].sim_start_msec,
              one.queries[i - 1].sim_finish_msec);
  }
  EXPECT_EQ(one.sim_makespan_msec, one.queries.back().sim_finish_msec);
  // Widening admission (same pool) can only shrink the makespan, and with
  // every slot open all queries are dispatched at t = 0-plus-queueing on
  // the 4 simulated cores.
  spec.options.max_concurrent = 8;
  auto open = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(open.ok());
  const WorkloadReport& eight = open.ValueOrDie();
  EXPECT_EQ(eight.peak_in_flight, 8u);
  EXPECT_LE(eight.sim_makespan_msec, one.sim_makespan_msec);
  EXPECT_GT(eight.sim_queries_per_sec, one.sim_queries_per_sec);
}

TEST(WorkloadDriverTest, SimulateWorkloadScheduleReplaysPoolPolicy) {
  // Two single-quantum queries on two workers: concurrent with two
  // admission slots, serialized with one.
  const std::vector<std::vector<double>> quanta = {{10.0}, {10.0}};
  SimSchedule two = SimulateWorkloadSchedule(quanta, 2, 2);
  EXPECT_EQ(two.start_msec, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(two.finish_msec, (std::vector<double>{10.0, 10.0}));
  EXPECT_EQ(two.makespan_msec, 10.0);
  SimSchedule one = SimulateWorkloadSchedule(quanta, 2, 1);
  EXPECT_EQ(one.start_msec, (std::vector<double>{0.0, 10.0}));
  EXPECT_EQ(one.finish_msec, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(one.makespan_msec, 20.0);
  // Round-robin on one worker: quanta of the two admitted queries
  // interleave a-b-a-b.
  SimSchedule rr = SimulateWorkloadSchedule({{1.0, 1.0}, {1.0, 1.0}}, 1, 2);
  EXPECT_EQ(rr.finish_msec, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(rr.makespan_msec, 4.0);
  // A freed admission slot admits the next query FIFO.
  SimSchedule fifo = SimulateWorkloadSchedule({{5.0}, {1.0}, {1.0}}, 2, 2);
  EXPECT_EQ(fifo.start_msec, (std::vector<double>{0.0, 0.0, 1.0}));
  EXPECT_EQ(fifo.finish_msec, (std::vector<double>{5.0, 1.0, 2.0}));
  EXPECT_EQ(fifo.makespan_msec, 5.0);
}

TEST(WorkloadDriverTest, WarmModeKeepsResultsScheduleIndependent) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.deterministic = false;
  spec.options.num_threads = TestThreadCounts().back();
  spec.options.max_concurrent = 2;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const DriveResult solo = SoloDrive(engine, spec.queries[i]);
    // Query results are machine-state independent; counters may differ
    // (slot machines carry warm caches from earlier queries — the point
    // of the mode).
    EXPECT_EQ(report.queries[i].drive.qualifying_tuples,
              solo.qualifying_tuples)
        << report.queries[i].name;
    EXPECT_EQ(report.queries[i].drive.aggregate, solo.aggregate)
        << report.queries[i].name;
  }
}

TEST(WorkloadDriverTest, ProgressiveQueriesReoptimizeIndependently) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 8;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  // The worst-first progressive scans must each discover the selective
  // predicate (index 2) from their own private counter windows.
  for (const char* name : {"scan_a_prog", "scan_b_prog"}) {
    const auto it = std::find_if(
        report.queries.begin(), report.queries.end(),
        [&](const WorkloadQueryReport& q) { return q.name == name; });
    ASSERT_NE(it, report.queries.end());
    EXPECT_TRUE(it->progressive);
    ASSERT_FALSE(it->changes.empty()) << name;
    ASSERT_EQ(it->final_order.size(), 3u);
    EXPECT_EQ(it->final_order.front(), 2u) << name;
  }
  // Baseline queries carry no PEO trace.
  for (const WorkloadQueryReport& q : report.queries) {
    if (!q.progressive) {
      EXPECT_TRUE(q.changes.empty()) << q.name;
    }
  }
}

TEST(WorkloadDriverTest, ErrorsPropagate) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);  // empty workload
  spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 0;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 0;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.max_concurrent = 2;
  spec.options.burst_vectors = 0;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.burst_vectors = 1;
  // A bad query anywhere in the queue fails the whole workload up front.
  spec.queries[3].query.table = "missing";
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kNotFound);
  spec = MakeMixedWorkload(engine);
  spec.queries[5].initial_order = std::vector<size_t>{0, 0};
  EXPECT_FALSE(engine.ExecuteWorkload(spec).ok());
}

TEST(WorkloadDriverTest, BurstVectorsDoNotChangeCountersOrSchedulePolicy) {
  Engine engine = MakeWorkloadEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 4;
  auto fine = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(fine.ok());
  spec.options.burst_vectors = 8;  // coarser quanta, fewer yields
  auto coarse = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(coarse.ok());
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    EXPECT_EQ(fine.ValueOrDie().queries[i].drive.total,
              coarse.ValueOrDie().queries[i].drive.total);
    EXPECT_GE(fine.ValueOrDie().queries[i].quanta,
              coarse.ValueOrDie().queries[i].quanta);
  }
}

}  // namespace
}  // namespace nipo
