/// \file storage_scan_test.cc
/// End-to-end gates of the compressed storage layer (DESIGN.md Section
/// 10) and the unified Execute facade:
///
///  1. Encodings off, the legacy entry points and Engine::Execute are
///     bit-identical -- results AND simulated counters -- across solo
///     baseline, progressive, sharded (1 and 4 threads) and workload
///     paths (they are shims over the same code).
///  2. Scans over encoded columns return exactly the plain-storage
///     results, with zone maps skipping whole blocks on selective
///     predicates over clustered data.
///  3. FK probes, payload sums, the out-of-range FK latch and the Q1
///     hash aggregate all work over encoded storage.
///  4. A progressive run over encoded storage sees the zone-skip signal
///     (zone_skipped_tuples flows through its windows).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/hash_aggregate.h"
#include "tpch/q1.h"
#include "tpch/q6.h"
#include "tpch/tpch_gen.h"

namespace nipo {
namespace {

TpchConfig SmallTpch() {
  TpchConfig config;
  config.scale_factor = 0.02;  // ~120k lineitems
  return config;
}

QuerySpec Q6Query() {
  QuerySpec query;
  query.table = "lineitem";
  query.ops = MakeQ6FullPredicates();
  query.payload_columns = Q6PayloadColumns();
  return query;
}

/// Engine with the TPC-H tables registered; encodes every table first
/// when `encoded`.
Engine MakeEngine(const TpchConfig& config, bool encoded) {
  Engine engine(HwConfig::ScaledXeon(16));
  auto db = GenerateTpch(config);
  NIPO_CHECK(db.ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().lineitem)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().orders)).ok());
  NIPO_CHECK(engine.RegisterTable(std::move(db.ValueOrDie().part)).ok());
  if (encoded) {
    for (const char* table : {"lineitem", "orders", "part"}) {
      auto stats = engine.EncodeTable(table);
      NIPO_CHECK(stats.ok());
      NIPO_CHECK(stats.ValueOrDie().columns_encoded > 0);
    }
  }
  return engine;
}

TEST(StorageScanTest, ShimsAndUnifiedExecuteBitIdenticalPlain) {
  // Encodings off: the four legacy entry points must match Execute()
  // bit-for-bit on results and counters (same engine, same registered
  // arrays, so the address-based cache simulation sees identical
  // addresses).
  Engine engine = MakeEngine(SmallTpch(), /*encoded=*/false);
  const QuerySpec query = Q6Query();
  const size_t kVectorSize = 4'096;

  {  // solo baseline
    auto shim = engine.ExecuteBaseline(query, kVectorSize);
    ExecOptions options;
    options.vector_size = kVectorSize;
    auto unified = engine.Execute(query, options);
    ASSERT_TRUE(shim.ok() && unified.ok());
    const ExecReport& u = unified.ValueOrDie();
    EXPECT_EQ(u.mode, ExecMode::kBaseline);
    EXPECT_EQ(u.driver, ExecDriver::kSolo);
    EXPECT_EQ(shim.ValueOrDie().drive.total, u.counters);
    EXPECT_EQ(shim.ValueOrDie().drive.aggregate, u.aggregate);
    EXPECT_EQ(shim.ValueOrDie().drive.qualifying_tuples,
              u.qualifying_tuples);
    EXPECT_EQ(u.zone_skipped_tuples, 0u);  // plain storage never skips
  }
  {  // solo progressive
    ProgressiveConfig config;
    config.vector_size = kVectorSize;
    config.reopt_interval = 5;
    auto shim = engine.ExecuteProgressive(query, config);
    ExecOptions options;
    options.mode = ExecMode::kProgressive;
    options.progressive = config;
    auto unified = engine.Execute(query, options);
    ASSERT_TRUE(shim.ok() && unified.ok());
    const ExecReport& u = unified.ValueOrDie();
    EXPECT_EQ(shim.ValueOrDie().drive.total, u.counters);
    EXPECT_EQ(shim.ValueOrDie().drive.aggregate, u.aggregate);
    EXPECT_EQ(shim.ValueOrDie().final_order, u.final_order);
    ASSERT_TRUE(u.progressive.has_value());
    EXPECT_EQ(shim.ValueOrDie().changes.size(),
              u.progressive->changes.size());
  }
  for (const size_t threads : {size_t{1}, size_t{4}}) {  // sharded
    ParallelOptions par;
    par.num_threads = threads;
    par.morsel_size = kVectorSize;
    auto shim = engine.ExecuteBaselineParallel(query, par);
    ExecOptions options;
    options.driver = ExecDriver::kSharded;
    options.num_threads = threads;
    options.vector_size = kVectorSize;
    auto unified = engine.Execute(query, options);
    ASSERT_TRUE(shim.ok() && unified.ok());
    const ExecReport& u = unified.ValueOrDie();
    EXPECT_EQ(u.driver, ExecDriver::kSharded);
    if (threads == 1) {
      // Work stealing at >1 thread is timing-dependent, so per-worker
      // predictor state (hence merged mispredictions/cycles) is only
      // pinned for the single-worker shard.
      EXPECT_EQ(shim.ValueOrDie().drive.merged.total, u.counters);
    }
    EXPECT_EQ(shim.ValueOrDie().drive.merged.aggregate, u.aggregate);
    EXPECT_EQ(shim.ValueOrDie().drive.merged.qualifying_tuples,
              u.qualifying_tuples);
  }
  {  // workload
    WorkloadSpec spec;
    for (int i = 0; i < 3; ++i) {
      WorkloadQuery q;
      q.name = "q" + std::to_string(i);
      q.query = query;
      q.progressive = i == 2;
      q.config.vector_size = kVectorSize;
      spec.queries.push_back(std::move(q));
    }
    spec.options.num_threads = 2;
    spec.options.max_concurrent = 2;
    auto shim = engine.ExecuteWorkload(spec);
    auto unified = engine.Execute(spec);
    ASSERT_TRUE(shim.ok() && unified.ok());
    ASSERT_EQ(shim.ValueOrDie().queries.size(),
              unified.ValueOrDie().queries.size());
    for (size_t i = 0; i < spec.queries.size(); ++i) {
      EXPECT_EQ(shim.ValueOrDie().queries[i].drive.total,
                unified.ValueOrDie().queries[i].drive.total);
      EXPECT_EQ(shim.ValueOrDie().queries[i].drive.aggregate,
                unified.ValueOrDie().queries[i].drive.aggregate);
    }
  }
}

TEST(StorageScanTest, EncodedScanMatchesPlainWithZoneSkipping) {
  // Selective shipdate window over bulk-load-clustered lineitem: the
  // encoded engine must return the plain engine's exact result while
  // zone maps prune most blocks.
  Engine plain = MakeEngine(SmallTpch(), /*encoded=*/false);
  Engine encoded = MakeEngine(SmallTpch(), /*encoded=*/true);

  QuerySpec query = Q6Query();
  ExecOptions options;
  options.vector_size = 4'096;

  auto p = plain.Execute(query, options);
  auto e = encoded.Execute(query, options);
  ASSERT_TRUE(p.ok() && e.ok());
  EXPECT_EQ(p.ValueOrDie().qualifying_tuples,
            e.ValueOrDie().qualifying_tuples);
  EXPECT_EQ(p.ValueOrDie().aggregate, e.ValueOrDie().aggregate);
  EXPECT_EQ(p.ValueOrDie().zone_skipped_tuples, 0u);
  EXPECT_GT(e.ValueOrDie().zone_skipped_tuples, 0u);

  // Cross-check against the scalar reference (which itself reads the
  // encoded table through ColumnView).
  auto ref = ComputeQ6Reference(*encoded.GetTable("lineitem").ValueOrDie(),
                                query.ops);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.ValueOrDie().qualifying,
            e.ValueOrDie().qualifying_tuples);

  // The same equality must hold when nothing is prunable: an
  // all-passing predicate no zone map can refute.
  QuerySpec full;
  full.table = "lineitem";
  full.ops = {OperatorSpec::Predicate({"l_quantity", CompareOp::kLe, 50.0})};
  full.payload_columns = Q6PayloadColumns();
  auto pf = plain.Execute(full, options);
  auto ef = encoded.Execute(full, options);
  ASSERT_TRUE(pf.ok() && ef.ok());
  EXPECT_EQ(pf.ValueOrDie().aggregate, ef.ValueOrDie().aggregate);
  EXPECT_EQ(pf.ValueOrDie().qualifying_tuples,
            ef.ValueOrDie().qualifying_tuples);
}

TEST(StorageScanTest, ZoneSkippingConsistentAcrossDrivers) {
  // Solo, sharded x1 and sharded x4 partition rows into the same
  // fixed-size ranges, so the zone-skip totals -- not just the results
  // -- must agree.
  Engine engine = MakeEngine(SmallTpch(), /*encoded=*/true);
  const QuerySpec query = Q6Query();
  const size_t kSize = 4'096;

  ExecOptions solo;
  solo.vector_size = kSize;
  auto solo_run = engine.Execute(query, solo);
  ASSERT_TRUE(solo_run.ok());
  const ExecReport& s = solo_run.ValueOrDie();
  EXPECT_GT(s.zone_skipped_tuples, 0u);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    ExecOptions sharded;
    sharded.driver = ExecDriver::kSharded;
    sharded.num_threads = threads;
    sharded.vector_size = kSize;
    auto run = engine.Execute(query, sharded);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.ValueOrDie().qualifying_tuples, s.qualifying_tuples);
    EXPECT_EQ(run.ValueOrDie().aggregate, s.aggregate);
    EXPECT_EQ(run.ValueOrDie().zone_skipped_tuples, s.zone_skipped_tuples)
        << "threads=" << threads;
  }
}

TEST(StorageScanTest, FkProbeAndPayloadOverEncodedStorage) {
  Engine plain = MakeEngine(SmallTpch(), /*encoded=*/false);
  Engine encoded = MakeEngine(SmallTpch(), /*encoded=*/true);

  auto build_query = [](Engine& engine) {
    QuerySpec query;
    query.table = "lineitem";
    query.ops = {
        OperatorSpec::Predicate({"l_quantity", CompareOp::kLe, 25.0}),
        OperatorSpec::FkProbe({"l_orderkey",
                               engine.GetTable("orders").ValueOrDie(),
                               "o_totalprice", CompareOp::kLe, 2.5e6}),
    };
    query.payload_columns = {"l_extendedprice"};
    return query;
  };

  ExecOptions options;
  options.vector_size = 4'096;
  auto p = plain.Execute(build_query(plain), options);
  auto e = encoded.Execute(build_query(encoded), options);
  ASSERT_TRUE(p.ok() && e.ok());
  EXPECT_EQ(p.ValueOrDie().qualifying_tuples,
            e.ValueOrDie().qualifying_tuples);
  EXPECT_EQ(p.ValueOrDie().aggregate, e.ValueOrDie().aggregate);
}

TEST(StorageScanTest, OutOfRangeFkLatchesOverEncodedStorage) {
  // A fact table whose FK points past the dimension: the probe must
  // latch Status::OutOfRange, encoded or not (the decode path hands the
  // executor the same bad key the plain path would).
  for (const bool encode : {false, true}) {
    Engine engine;
    auto dim = std::make_unique<Table>("dim");
    NIPO_CHECK(dim->AddColumn("d_value",
                              std::vector<int32_t>{1, 2, 3}).ok());
    auto fact = std::make_unique<Table>("fact");
    NIPO_CHECK(fact->AddColumn(
        "fk", std::vector<int32_t>{0, 1, 2, 99, 1}).ok());
    NIPO_CHECK(engine.RegisterTable(std::move(dim)).ok());
    NIPO_CHECK(engine.RegisterTable(std::move(fact)).ok());
    if (encode) {
      NIPO_CHECK(engine.EncodeTable("fact").ok());
      NIPO_CHECK(engine.EncodeTable("dim").ok());
    }
    QuerySpec query;
    query.table = "fact";
    query.ops = {OperatorSpec::FkProbe(
        {"fk", engine.GetTable("dim").ValueOrDie(), "d_value",
         CompareOp::kLe, 10.0})};
    auto run = engine.Execute(query, {});
    ASSERT_FALSE(run.ok()) << "encode=" << encode;
    EXPECT_EQ(run.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(StorageScanTest, Q1HashAggregateOverEncodedStorage) {
  Engine engine = MakeEngine(SmallTpch(), /*encoded=*/false);
  Table* lineitem = engine.GetMutableTable("lineitem").ValueOrDie();
  ASSERT_TRUE(AddQ1GroupColumn(lineitem).ok());
  auto reference = ComputeQ1Reference(*lineitem, 90);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(engine.EncodeTable("lineitem").ok());
  Pmu pmu(engine.hw_config());
  auto result = ExecuteHashAggregate(MakeQ1Spec(*lineitem, 90), &pmu);
  ASSERT_TRUE(result.ok());

  const HashAggregateResult& ref = reference.ValueOrDie();
  const HashAggregateResult& got = result.ValueOrDie();
  EXPECT_EQ(got.passed_filter, ref.passed_filter);
  ASSERT_EQ(got.groups.size(), ref.groups.size());
  for (size_t g = 0; g < ref.groups.size(); ++g) {
    EXPECT_EQ(got.groups[g].group, ref.groups[g].group);
    EXPECT_EQ(got.groups[g].count, ref.groups[g].count);
    EXPECT_EQ(got.groups[g].sums, ref.groups[g].sums);
  }
}

TEST(StorageScanTest, ProgressiveSeesZoneSkipping) {
  // Progressive over encoded clustered lineitem: results must match the
  // baseline and the zone-skip signal must flow through the sampled
  // windows into the report.
  Engine engine = MakeEngine(SmallTpch(), /*encoded=*/true);
  const QuerySpec query = Q6Query();

  ExecOptions base;
  base.vector_size = 4'096;
  auto baseline = engine.Execute(query, base);
  ASSERT_TRUE(baseline.ok());

  ExecOptions prog;
  prog.mode = ExecMode::kProgressive;
  prog.progressive.vector_size = 4'096;
  prog.progressive.reopt_interval = 5;
  auto progressive = engine.Execute(query, prog);
  ASSERT_TRUE(progressive.ok());

  const ExecReport& p = progressive.ValueOrDie();
  EXPECT_EQ(p.qualifying_tuples, baseline.ValueOrDie().qualifying_tuples);
  EXPECT_EQ(p.aggregate, baseline.ValueOrDie().aggregate);
  EXPECT_GT(p.zone_skipped_tuples, 0u);
  ASSERT_TRUE(p.progressive.has_value());
}

}  // namespace
}  // namespace nipo
