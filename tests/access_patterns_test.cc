#include "cost/access_patterns.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "cost/join_model.h"

namespace nipo {
namespace {

const CacheGeometry kL1{8 * 1024, 8, 64};
const CacheGeometry kL2{64 * 1024, 8, 64};
const CacheGeometry kL3{1024 * 1024, 16, 64};  // 16384 lines

double Capacity(const CacheGeometry& g) {
  return static_cast<double>(g.num_lines());
}

TEST(AccessPatternsTest, SequentialTraversalMissesOncePerLine) {
  SequentialTraversal scan(16'384, 4);  // 1024 lines
  const PatternCost cost = scan.Misses(kL3, Capacity(kL3));
  EXPECT_DOUBLE_EQ(cost.total(), 1024.0);
  EXPECT_DOUBLE_EQ(cost.random_misses, 1.0);  // the initial jump
  EXPECT_DOUBLE_EQ(cost.sequential_misses, 1023.0);
}

TEST(AccessPatternsTest, ConditionalTraversalDegeneratesToSequential) {
  ConditionalTraversal dense(16'384, 4, 1.0);
  const PatternCost cost = dense.Misses(kL3, Capacity(kL3));
  EXPECT_NEAR(cost.total(), 1024.0, 1e-6);
  EXPECT_NEAR(cost.random_misses, 0.0, 1e-6);
}

TEST(AccessPatternsTest, ConditionalTraversalDoubleCountsSparseLines) {
  ConditionalTraversal sparse(1e7, 4, 1e-4);
  const PatternCost cost = sparse.Misses(kL3, Capacity(kL3));
  // Isolated touched lines: ~2 misses each, all random.
  EXPECT_GT(cost.random_misses, cost.sequential_misses * 50);
  const double touched = 1e7 / 16.0 * (1 - std::pow(1 - 1e-4, 16.0));
  EXPECT_NEAR(cost.total() / touched, 2.0, 0.02);
}

TEST(AccessPatternsTest, RepeatedRandomAccessFitsRegime) {
  RepeatedRandomAccess probes(16'000, 4, 5'000);  // 1000-line region
  const PatternCost cost = probes.Misses(kL3, Capacity(kL3));
  EXPECT_NEAR(cost.random_misses,
              ExpectedDistinctLines(1000.0, 5000.0), 1e-9);
}

TEST(AccessPatternsTest, RepeatedRandomAccessThrashRegime) {
  RepeatedRandomAccess probes(2'097'152, 4, 1e6);  // 131072-line region
  const PatternCost cost = probes.Misses(kL3, Capacity(kL3));
  EXPECT_NEAR(cost.random_misses / 1e6, 1.0 - 16384.0 / 131072.0, 1e-9);
}

TEST(AccessPatternsTest, RandomTraversalFitsVsThrash) {
  // Fits: one miss per line.
  RandomTraversal small(16'000, 4);
  EXPECT_NEAR(small.Misses(kL3, Capacity(kL3)).random_misses, 1000.0, 1e-9);
  // Thrashes: nearly one miss per item.
  RandomTraversal big(8'388'608, 4);  // 524288 lines = 32x L3
  const double misses = big.Misses(kL3, Capacity(kL3)).random_misses;
  EXPECT_GT(misses / 8'388'608.0, 0.9);
}

TEST(AccessPatternsTest, SequentialCompositionAdds) {
  auto pattern = Seq({STrav(16'384, 4), STrav(16'384, 4)});
  EXPECT_NEAR(pattern->Misses(kL3, Capacity(kL3)).total(), 2048.0, 1e-9);
}

TEST(AccessPatternsTest, InterleavedCompositionSplitsCapacity) {
  // Two thrash-prone probe patterns interleaved see half the capacity
  // each, so their total misses exceed the sum of isolated runs.
  auto isolated = RRAcc(2'097'152, 4, 1e6);
  const double alone =
      isolated->Misses(kL3, Capacity(kL3)).random_misses;
  auto interleaved = Inter({RRAcc(2'097'152, 4, 1e6),
                            RRAcc(2'097'152, 4, 1e6)});
  const double together =
      interleaved->Misses(kL3, Capacity(kL3)).random_misses;
  EXPECT_GT(together, 2.0 * alone);
}

TEST(AccessPatternsTest, InterleavedScanBarelyHurtsProbe) {
  // A scan's footprint is a couple of lines; interleaving it with a probe
  // pattern must not meaningfully change the probe's misses.
  auto probe_alone = RRAcc(2'097'152, 4, 1e6);
  const double alone =
      probe_alone->Misses(kL3, Capacity(kL3)).random_misses;
  auto with_scan = Inter({STrav(1e6, 4), RRAcc(2'097'152, 4, 1e6)});
  const double with_scan_misses =
      with_scan->Misses(kL3, Capacity(kL3)).total();
  // Scan misses add (~62.5k lines), probe misses stay put within 1%.
  const double scan_only =
      STrav(1e6, 4)->Misses(kL3, Capacity(kL3)).total();
  EXPECT_NEAR(with_scan_misses - scan_only, alone, alone * 0.01);
}

TEST(AccessPatternsTest, EvaluateAcrossHierarchy) {
  auto pattern = RRAcc(2'097'152, 4, 1e6);
  const HierarchyCost cost = EvaluatePattern(*pattern, kL1, kL2, kL3);
  // Smaller caches miss more.
  EXPECT_GE(cost.l1.total(), cost.l2.total());
  EXPECT_GE(cost.l2.total(), cost.l3.total());
}

TEST(AccessPatternsTest, ToStringIsDescriptive) {
  auto pattern = Seq({STrav(10, 4), Inter({RTrav(5, 8), RRAcc(7, 4, 3)})});
  const std::string s = pattern->ToString();
  EXPECT_NE(s.find("s_trav"), std::string::npos);
  EXPECT_NE(s.find("r_trav"), std::string::npos);
  EXPECT_NE(s.find("rr_acc"), std::string::npos);
  EXPECT_NE(s.find("seq("), std::string::npos);
  EXPECT_NE(s.find("inter("), std::string::npos);
}

TEST(AccessPatternsTest, ZeroWorkPatternsCostNothing) {
  EXPECT_DOUBLE_EQ(STrav(0, 4)->Misses(kL3, Capacity(kL3)).total(), 0.0);
  EXPECT_DOUBLE_EQ(RRAcc(100, 4, 0)->Misses(kL3, Capacity(kL3)).total(),
                   0.0);
  EXPECT_DOUBLE_EQ(STravCond(100, 4, 0.0)
                       ->Misses(kL3, Capacity(kL3))
                       .total(),
                   0.0);
}

TEST(AccessPatternsTest, ProbePatternMatchesSimulatedCaches) {
  // Cross-check rr_acc against the simulated hierarchy: 1e5 uniform
  // probes into a region 8x the L3.
  const uint64_t kRegionBytes = 8 * 1024 * 1024;
  const uint64_t kProbes = 100'000;
  CacheHierarchy caches(kL1, kL2, kL3, true);
  Prng prng(3);
  for (uint64_t i = 0; i < kProbes; ++i) {
    caches.Access((1ull << 33) + prng.NextBounded(kRegionBytes / 4) * 4, 4);
  }
  auto pattern = RRAcc(kRegionBytes / 4.0, 4, static_cast<double>(kProbes));
  const double predicted =
      pattern->Misses(kL3, Capacity(kL3)).random_misses;
  const double simulated = static_cast<double>(caches.stats().l3_misses);
  // Isolated random misses cost two line fetches in the simulator -- the
  // demand fetch plus the wasted next-line prefetch (the very effect the
  // paper double counts in its scan model) -- so the simulated misses sit
  // at ~2x the algebra's demand-only prediction.
  EXPECT_NEAR(simulated / predicted, 2.0, 0.25);
}

}  // namespace
}  // namespace nipo
