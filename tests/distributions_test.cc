#include "tpch/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace nipo {
namespace {

Table MakeTable(size_t n, uint64_t seed = 1) {
  Prng prng(seed);
  std::vector<int32_t> key(n), other(n);
  for (size_t i = 0; i < n; ++i) {
    key[i] = static_cast<int32_t>(prng.NextBounded(1000));
    other[i] = static_cast<int32_t>(i);
  }
  Table t("t");
  EXPECT_TRUE(t.AddColumn("key", std::move(key)).ok());
  EXPECT_TRUE(t.AddColumn("row_id", std::move(other)).ok());
  return t;
}

bool IsSortedBy(const Table& t, const std::string& col) {
  const auto& c = *t.GetTypedColumn<int32_t>(col).ValueOrDie();
  for (size_t i = 1; i < c.size(); ++i) {
    if (c[i - 1] > c[i]) return false;
  }
  return true;
}

/// Rows stay consistent: row_id r must still carry the key it was born
/// with (key was derived from seed; we recompute).
void ExpectRowsIntact(const Table& t, uint64_t seed = 1) {
  Prng prng(seed);
  std::vector<int32_t> original_key(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    original_key[i] = static_cast<int32_t>(prng.NextBounded(1000));
  }
  const auto& key = *t.GetTypedColumn<int32_t>("key").ValueOrDie();
  const auto& row_id = *t.GetTypedColumn<int32_t>("row_id").ValueOrDie();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_EQ(key[i], original_key[static_cast<size_t>(row_id[i])]);
  }
}

TEST(DistributionsTest, ApplyRowPermutationMovesWholeRows) {
  Table t = MakeTable(4);
  ASSERT_TRUE(ApplyRowPermutation(&t, {3, 2, 1, 0}).ok());
  const auto& row_id = *t.GetTypedColumn<int32_t>("row_id").ValueOrDie();
  EXPECT_EQ(row_id[0], 3);
  EXPECT_EQ(row_id[3], 0);
  ExpectRowsIntact(t);
}

TEST(DistributionsTest, RejectsBadPermutations) {
  Table t = MakeTable(3);
  EXPECT_FALSE(ApplyRowPermutation(&t, {0, 1}).ok());        // wrong size
  EXPECT_FALSE(ApplyRowPermutation(&t, {0, 1, 1}).ok());     // duplicate
  EXPECT_FALSE(ApplyRowPermutation(&t, {0, 1, 5}).ok());     // out of range
  EXPECT_FALSE(ApplyRowPermutation(nullptr, {0, 1, 2}).ok());
}

TEST(DistributionsTest, SortTableBy) {
  Table t = MakeTable(500);
  ASSERT_TRUE(SortTableBy(&t, "key").ok());
  EXPECT_TRUE(IsSortedBy(t, "key"));
  ExpectRowsIntact(t);
}

TEST(DistributionsTest, SortIsStable) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int32_t>("key", {1, 0, 1, 0}).ok());
  ASSERT_TRUE(t.AddColumn<int32_t>("row_id", {0, 1, 2, 3}).ok());
  ASSERT_TRUE(SortTableBy(&t, "key").ok());
  const auto& row_id = *t.GetTypedColumn<int32_t>("row_id").ValueOrDie();
  EXPECT_EQ(row_id[0], 1);
  EXPECT_EQ(row_id[1], 3);
  EXPECT_EQ(row_id[2], 0);
  EXPECT_EQ(row_id[3], 2);
}

TEST(DistributionsTest, RandomPermutationIsPermutation) {
  Prng prng(9);
  const auto perm = RandomPermutation(1000, &prng);
  std::vector<uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(sorted[i], i);
  // And it actually moved things.
  size_t moved = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    if (perm[i] != i) ++moved;
  }
  EXPECT_GT(moved, 900u);
}

TEST(DistributionsTest, BoundedShuffleZeroDistanceIsIdentity) {
  Prng prng(9);
  const auto perm = BoundedKnuthShufflePermutation(100, 0, &prng);
  for (uint32_t i = 0; i < 100; ++i) ASSERT_EQ(perm[i], i);
}

TEST(DistributionsTest, BoundedShuffleRespectsDistance) {
  Prng prng(9);
  const size_t kDistance = 8;
  const auto perm = BoundedKnuthShufflePermutation(2000, kDistance, &prng);
  std::vector<uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 2000; ++i) ASSERT_EQ(sorted[i], i);
  // A single bounded pass can chain swaps, so individual displacements
  // may exceed the window, but large multiples are exponentially rare and
  // the average displacement stays on the order of the window.
  double total_disp = 0;
  for (size_t i = 0; i < perm.size(); ++i) {
    const int64_t disp = std::abs(static_cast<int64_t>(perm[i]) -
                                  static_cast<int64_t>(i));
    ASSERT_LE(disp, static_cast<int64_t>(16 * kDistance)) << "i=" << i;
    total_disp += static_cast<double>(disp);
  }
  const double avg = total_disp / static_cast<double>(perm.size());
  EXPECT_GT(avg, static_cast<double>(kDistance) / 4.0);
  EXPECT_LT(avg, static_cast<double>(kDistance) * 2.0);
}

TEST(DistributionsTest, BoundedShuffleDisplacementGrowsWithDistance) {
  Prng prng(11);
  auto displacement = [&](size_t distance) {
    Prng local(11);
    const auto perm = BoundedKnuthShufflePermutation(5000, distance, &local);
    double total = 0;
    for (size_t i = 0; i < perm.size(); ++i) {
      total += std::abs(static_cast<double>(perm[i]) -
                        static_cast<double>(i));
    }
    return total / static_cast<double>(perm.size());
  };
  EXPECT_LT(displacement(2), displacement(32));
  EXPECT_LT(displacement(32), displacement(1024));
}

TEST(DistributionsTest, WindowShuffleKeepsValuesInWindows) {
  Table t = MakeTable(2000, 3);
  Prng prng(5);
  ASSERT_TRUE(SortAndShuffleWithinWindows(&t, "key", 100, &prng).ok());
  const auto& key = *t.GetTypedColumn<int32_t>("key").ValueOrDie();
  // Window ids must be non-decreasing even though rows inside each window
  // are shuffled.
  for (size_t i = 1; i < key.size(); ++i) {
    ASSERT_LE(key[i - 1] / 100, key[i] / 100);
  }
  ExpectRowsIntact(t, 3);
  // And within windows, order was actually disturbed somewhere.
  EXPECT_FALSE(IsSortedBy(t, "row_id"));
}

TEST(DistributionsTest, WindowShuffleRejectsBadWindow) {
  Table t = MakeTable(10);
  Prng prng(5);
  EXPECT_FALSE(SortAndShuffleWithinWindows(&t, "key", 0, &prng).ok());
  EXPECT_FALSE(SortAndShuffleWithinWindows(nullptr, "key", 10, &prng).ok());
}

TEST(DistributionsTest, ApplyLayoutSorted) {
  Table t = MakeTable(300);
  Prng prng(7);
  ASSERT_TRUE(ApplyLayout(&t, "key", Layout::kSorted, &prng).ok());
  EXPECT_TRUE(IsSortedBy(t, "key"));
}

TEST(DistributionsTest, ApplyLayoutRandomDestroysOrder) {
  Table t = MakeTable(300);
  Prng prng(7);
  ASSERT_TRUE(SortTableBy(&t, "key").ok());
  ASSERT_TRUE(ApplyLayout(&t, "key", Layout::kRandom, &prng).ok());
  EXPECT_FALSE(IsSortedBy(t, "key"));
  ExpectRowsIntact(t);
}

TEST(DistributionsTest, LayoutNames) {
  EXPECT_EQ(LayoutToString(Layout::kSorted), "sorted");
  EXPECT_EQ(LayoutToString(Layout::kClustered), "clustered");
  EXPECT_EQ(LayoutToString(Layout::kRandom), "random");
}

TEST(DistributionsTest, SortPermutationHandlesUnknownColumn) {
  Table t = MakeTable(10);
  EXPECT_EQ(SortPermutation(t, "nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace nipo
