#include "storage/table.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

Table MakeTwoColumnTable() {
  Table t("t");
  EXPECT_TRUE(t.AddColumn<int32_t>("a", {1, 2, 3}).ok());
  EXPECT_TRUE(t.AddColumn<double>("b", {0.1, 0.2, 0.3}).ok());
  return t;
}

TEST(TableTest, AddColumnsTracksRows) {
  Table t = MakeTwoColumnTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.name(), "t");
}

TEST(TableTest, RejectsMismatchedLength) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int32_t>("a", {1, 2, 3}).ok());
  Status st = t.AddColumn<int32_t>("b", {1, 2});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_columns(), 1u);
}

TEST(TableTest, RejectsDuplicateName) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int32_t>("a", {1}).ok());
  EXPECT_EQ(t.AddColumn<int32_t>("a", {2}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, RejectsNullColumn) {
  Table t("t");
  EXPECT_EQ(t.AddColumn(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, GetColumnByName) {
  Table t = MakeTwoColumnTable();
  auto col = t.GetColumn("b");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.ValueOrDie()->type(), DataType::kDouble);
  EXPECT_EQ(t.GetColumn("zzz").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, GetTypedColumn) {
  Table t = MakeTwoColumnTable();
  auto ok = t.GetTypedColumn<int32_t>("a");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok.ValueOrDie())[2], 3);
  EXPECT_EQ(t.GetTypedColumn<double>("a").status().code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(t.GetTypedColumn<int32_t>("zzz").status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, MutableColumnAllowsInPlaceEdits) {
  Table t = MakeTwoColumnTable();
  auto col = t.GetMutableColumn("a");
  ASSERT_TRUE(col.ok());
  auto* typed = static_cast<Column<int32_t>*>(col.ValueOrDie());
  (*typed)[0] = 99;
  EXPECT_EQ((*t.GetTypedColumn<int32_t>("a").ValueOrDie())[0], 99);
}

TEST(TableTest, SchemaReflectsColumns) {
  Table t = MakeTwoColumnTable();
  Schema schema = t.schema();
  ASSERT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.field(0).name, "a");
  EXPECT_EQ(schema.field(1).type, DataType::kDouble);
  EXPECT_EQ(schema.FieldIndex("b").ValueOrDie(), 1u);
  EXPECT_EQ(schema.FieldIndex("zzz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(schema.ToString(), "schema{a: int32, b: double}");
}

TEST(TableTest, ColumnByPosition) {
  Table t = MakeTwoColumnTable();
  EXPECT_EQ(t.column(0)->name(), "a");
  EXPECT_EQ(t.column(1)->name(), "b");
}

TEST(TableTest, EmptyColumnsAllowed) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int32_t>("a", {}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace nipo
