/// \file integration_test.cc
/// Cross-module scenarios: TPC-H Q6 end to end, counter identities on
/// real data, model-vs-simulator agreement on the full query, and the
/// paper's qualitative claims at test scale.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "cost/counter_model.h"
#include "optimizer/progressive.h"
#include "tpch/distributions.h"
#include "tpch/q6.h"
#include "tpch/tpch_gen.h"

namespace nipo {
namespace {

class Q6IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.scale_factor = 0.02;  // ~120k lineitems
    engine_ = new Engine(HwConfig::ScaledXeon(16));
    auto db = GenerateTpch(cfg);
    ASSERT_TRUE(db.ok());
    reference_table_ = db.ValueOrDie().lineitem.get();
    auto ref = ComputeQ6Reference(*db.ValueOrDie().lineitem,
                                  MakeQ6FullPredicates());
    ASSERT_TRUE(ref.ok());
    reference_ = ref.ValueOrDie();
    ASSERT_TRUE(engine_->RegisterTable(
        std::move(db.ValueOrDie().lineitem)).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static QuerySpec Query() {
    QuerySpec q;
    q.table = "lineitem";
    q.ops = MakeQ6FullPredicates();
    q.payload_columns = Q6PayloadColumns();
    return q;
  }

  static Engine* engine_;
  static Table* reference_table_;  // owned by engine_ after registration
  static Q6Reference reference_;
};

Engine* Q6IntegrationTest::engine_ = nullptr;
Table* Q6IntegrationTest::reference_table_ = nullptr;
Q6Reference Q6IntegrationTest::reference_;

TEST_F(Q6IntegrationTest, EveryOrderProducesTheReferenceResult) {
  for (const auto& order : AllOrders(5)) {
    auto r = engine_->ExecuteBaseline(Query(), 8'192, order);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.ValueOrDie().drive.qualifying_tuples, reference_.qualifying);
    ASSERT_DOUBLE_EQ(r.ValueOrDie().drive.aggregate, reference_.revenue);
  }
}

TEST_F(Q6IntegrationTest, BranchesTakenIdentityOnRealData) {
  auto r = engine_->ExecuteBaseline(Query(), 8'192);
  ASSERT_TRUE(r.ok());
  const DriveResult& d = r.ValueOrDie().drive;
  EXPECT_EQ(2 * d.input_tuples - d.total.branches_taken,
            d.qualifying_tuples);
}

TEST_F(Q6IntegrationTest, CounterModelMatchesSimulatedScan) {
  // Measure true per-position selectivities, predict counters, compare to
  // the PMU sample of the full run.
  //
  // The scan counter model assumes (a) distinct predicate columns (Q6's
  // repeated shipdate/discount bounds re-read a column that is already in
  // L1, which the model would double count) and (b) value positions
  // independent of selectivity (the generator's weak shipdate clustering
  // violates that). So this test uses one predicate per distinct column
  // on a randomly re-laid-out copy of lineitem -- the regime the model is
  // specified for; the estimator tests cover its use on rougher inputs.
  TpchConfig gen_cfg;
  gen_cfg.scale_factor = 0.02;
  auto li_owned = GenerateLineitem(gen_cfg);
  ASSERT_TRUE(li_owned.ok());
  Prng prng(33);
  ASSERT_TRUE(ApplyLayout(li_owned.ValueOrDie().get(), "l_shipdate",
                          Layout::kRandom, &prng)
                  .ok());
  Engine engine(HwConfig::ScaledXeon(16));
  const Table* li = li_owned.ValueOrDie().get();
  QuerySpec q;
  q.table = "lineitem";
  const double ship_median = static_cast<double>(
      ValueForSelectivity(*li, "l_shipdate", 0.5).ValueOrDie());
  q.ops = {
      OperatorSpec::Predicate({"l_shipdate", CompareOp::kLe, ship_median}),
      OperatorSpec::Predicate({"l_quantity", CompareOp::kLt, 24.0}),
      OperatorSpec::Predicate({"l_discount", CompareOp::kLe, 7.0}),
      OperatorSpec::Predicate({"l_tax", CompareOp::kLe, 4.0}),
  };
  // Payload distinct from every predicate column (the model does not
  // account for repeated-column L1 reuse).
  q.payload_columns = {"l_extendedprice"};
  ASSERT_TRUE(engine.RegisterTable(std::move(li_owned.ValueOrDie())).ok());
  auto r = engine.ExecuteBaseline(q, 8'192);
  ASSERT_TRUE(r.ok());

  // Conditional per-position selectivities by direct evaluation.
  std::vector<double> sel;
  {
    std::vector<const ColumnBase*> cols;
    std::vector<const OperatorSpec*> ops;
    for (const auto& op : q.ops) {
      cols.push_back(li->GetColumn(op.predicate.column).ValueOrDie());
      ops.push_back(&op);
    }
    std::vector<uint64_t> reached(q.ops.size() + 1, 0);
    for (size_t row = 0; row < li->num_rows(); ++row) {
      size_t pos = 0;
      for (; pos < ops.size(); ++pos) {
        ++reached[pos];
        const auto* col32 = static_cast<const Column<int32_t>*>(cols[pos]);
        if (!EvaluateCompare(static_cast<double>((*col32)[row]),
                             ops[pos]->predicate.op,
                             ops[pos]->predicate.value)) {
          break;
        }
      }
      if (pos == ops.size()) ++reached[ops.size()];
    }
    for (size_t i = 0; i < ops.size(); ++i) {
      sel.push_back(reached[i] == 0
                        ? 1.0
                        : static_cast<double>(reached[i + 1]) /
                              static_cast<double>(reached[i]));
    }
  }

  ScanShape shape;
  shape.num_tuples = static_cast<double>(li->num_rows());
  shape.predicate_widths.assign(q.ops.size(), 4);
  shape.payload_widths = {8};
  shape.predictor = engine.hw_config().predictor;
  const CounterEstimate predicted = PredictCounters(shape, sel);
  const PmuCounters& sampled = r.ValueOrDie().drive.total;

  EXPECT_NEAR(static_cast<double>(sampled.branches_not_taken) /
                  predicted.branches_not_taken,
              1.0, 0.02);
  EXPECT_NEAR(static_cast<double>(sampled.l3_accesses) /
                  predicted.l3_accesses,
              1.0, 0.15);
  EXPECT_NEAR(static_cast<double>(sampled.taken_mispredictions +
                                  sampled.not_taken_mispredictions) /
                  (predicted.taken_mp + predicted.not_taken_mp),
              1.0, 0.20);
}

TEST_F(Q6IntegrationTest, ProgressiveRobustAcrossAllStartOrders) {
  // The paper's Figure 11 claim, qualitatively: from *any* initial PEO,
  // the progressive run must come close to the best fixed order and far
  // from the worst one.
  double best = 1e300, worst = 0;
  for (const auto& order : AllOrders(5)) {
    auto r = engine_->ExecuteBaseline(Query(), 8'192, order);
    ASSERT_TRUE(r.ok());
    best = std::min(best, r.ValueOrDie().drive.simulated_msec);
    worst = std::max(worst, r.ValueOrDie().drive.simulated_msec);
  }
  ASSERT_GT(worst / best, 1.3);  // ordering must matter at this scale

  ProgressiveConfig cfg;
  cfg.vector_size = 2'048;
  cfg.reopt_interval = 2;
  // Sample a few representative start orders, including the worst shape.
  for (const auto& order :
       {std::vector<size_t>{0, 1, 2, 3, 4}, std::vector<size_t>{4, 3, 2, 1, 0},
        std::vector<size_t>{2, 4, 0, 1, 3}}) {
    auto prog = engine_->ExecuteProgressive(Query(), cfg, order);
    ASSERT_TRUE(prog.ok());
    // At this small scale convergence time is a visible fraction of the
    // run; the paper's 600-vector runs amortize it much further.
    const double ms = prog.ValueOrDie().drive.simulated_msec;
    EXPECT_LT(ms, worst * 0.95);
    EXPECT_LT(ms, best * 2.0);
  }
}

TEST(IntegrationTest, SortednessChangesOptimalJoinOrderEndToEnd) {
  // Fact co-clustered with dim A but random into dim B of equal filter
  // selectivity: join order A-first must beat B-first, and the simulated
  // counters must reveal it via L3 misses.
  const size_t kFact = 200'000, kDim = 100'000;
  Prng prng(3);
  std::vector<int32_t> fk_a(kFact), fk_b(kFact), filler(kFact);
  for (size_t i = 0; i < kFact; ++i) {
    fk_a[i] = static_cast<int32_t>((i * kDim) / kFact);  // co-clustered
    fk_b[i] = static_cast<int32_t>(prng.NextBounded(kDim));  // random
    filler[i] = 0;
  }
  auto fact = std::make_unique<Table>("fact");
  ASSERT_TRUE(fact->AddColumn("fk_a", std::move(fk_a)).ok());
  ASSERT_TRUE(fact->AddColumn("fk_b", std::move(fk_b)).ok());
  ASSERT_TRUE(fact->AddColumn("filler", std::move(filler)).ok());

  auto make_dim = [&](const std::string& name) {
    Prng local(7);
    std::vector<int32_t> attr(kDim);
    for (size_t i = 0; i < kDim; ++i) {
      attr[i] = static_cast<int32_t>(local.NextBounded(100));
    }
    auto t = std::make_unique<Table>(name);
    EXPECT_TRUE(t->AddColumn("attr", std::move(attr)).ok());
    return t;
  };

  Engine engine(HwConfig::ScaledXeon(64));
  ASSERT_TRUE(engine.RegisterTable(std::move(fact)).ok());
  ASSERT_TRUE(engine.RegisterTable(make_dim("dim_a")).ok());
  ASSERT_TRUE(engine.RegisterTable(make_dim("dim_b")).ok());

  QuerySpec q;
  q.table = "fact";
  q.ops = {OperatorSpec::FkProbe({"fk_a",
                                  engine.GetTable("dim_a").ValueOrDie(),
                                  "attr", CompareOp::kLt, 50.0}),
           OperatorSpec::FkProbe({"fk_b",
                                  engine.GetTable("dim_b").ValueOrDie(),
                                  "attr", CompareOp::kLt, 50.0})};

  auto a_first = engine.ExecuteBaseline(q, 8'192, std::vector<size_t>{0, 1});
  auto b_first = engine.ExecuteBaseline(q, 8'192, std::vector<size_t>{1, 0});
  ASSERT_TRUE(a_first.ok() && b_first.ok());
  EXPECT_LT(a_first.ValueOrDie().drive.simulated_msec,
            b_first.ValueOrDie().drive.simulated_msec);
  EXPECT_LT(a_first.ValueOrDie().drive.total.l3_misses,
            b_first.ValueOrDie().drive.total.l3_misses);
  EXPECT_EQ(a_first.ValueOrDie().drive.qualifying_tuples,
            b_first.ValueOrDie().drive.qualifying_tuples);
}

TEST(IntegrationTest, LayoutsChangeCountersNotResults) {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  Prng prng(21);
  uint64_t qualifying[3];
  uint64_t l3_misses[3];
  int idx = 0;
  for (Layout layout :
       {Layout::kSorted, Layout::kClustered, Layout::kRandom}) {
    auto li = GenerateLineitem(cfg);
    ASSERT_TRUE(li.ok());
    ASSERT_TRUE(
        ApplyLayout(li.ValueOrDie().get(), "l_shipdate", layout, &prng)
            .ok());
    Engine engine(HwConfig::ScaledXeon(16));
    ASSERT_TRUE(engine.RegisterTable(std::move(li.ValueOrDie())).ok());
    QuerySpec q;
    q.table = "lineitem";
    q.ops = MakeQ6FullPredicates();
    q.payload_columns = Q6PayloadColumns();
    auto r = engine.ExecuteBaseline(q, 4'096);
    ASSERT_TRUE(r.ok());
    qualifying[idx] = r.ValueOrDie().drive.qualifying_tuples;
    l3_misses[idx] = r.ValueOrDie().drive.total.l3_misses;
    ++idx;
  }
  // Same logical result regardless of physical layout...
  EXPECT_EQ(qualifying[0], qualifying[1]);
  EXPECT_EQ(qualifying[1], qualifying[2]);
  // ...but different memory behaviour (sorted layout skips whole regions
  // after the shipdate filter, random cannot).
  EXPECT_NE(l3_misses[0], l3_misses[2]);
}

}  // namespace
}  // namespace nipo
