#include "hw/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace nipo {
namespace {

CacheGeometry Tiny(uint64_t capacity, uint32_t assoc) {
  return CacheGeometry{capacity, assoc, 64};
}

TEST(CacheGeometryTest, DerivedQuantities) {
  CacheGeometry g{32 * 1024, 8, 64};
  EXPECT_EQ(g.num_lines(), 512u);
  EXPECT_EQ(g.num_sets(), 64u);
}

TEST(CacheLevelTest, MissThenHit) {
  CacheLevel level(Tiny(1024, 2));  // 16 lines, 8 sets
  EXPECT_FALSE(level.Lookup(5));
  level.Insert(5);
  EXPECT_TRUE(level.Lookup(5));
  EXPECT_EQ(level.hits(), 1u);
  EXPECT_EQ(level.misses(), 1u);
}

/// First `count` line addresses mapping to the same set as `seed_line`.
std::vector<uint64_t> CollidingLines(const CacheLevel& level,
                                     uint64_t seed_line, size_t count) {
  std::vector<uint64_t> lines = {seed_line};
  const size_t target = level.SetOf(seed_line);
  for (uint64_t line = seed_line + 1; lines.size() < count; ++line) {
    if (level.SetOf(line) == target) lines.push_back(line);
  }
  return lines;
}

TEST(CacheLevelTest, LruEvictionWithinSet) {
  CacheLevel level(Tiny(1024, 2));  // 8 sets, 2 ways
  const auto lines = CollidingLines(level, 0, 3);
  level.Insert(lines[0]);
  level.Insert(lines[1]);
  EXPECT_TRUE(level.Lookup(lines[0]));  // lines[0] becomes MRU
  level.Insert(lines[2]);               // evicts lines[1] (LRU)
  EXPECT_TRUE(level.Contains(lines[0]));
  EXPECT_FALSE(level.Contains(lines[1]));
  EXPECT_TRUE(level.Contains(lines[2]));
}

TEST(CacheLevelTest, InsertExistingRefreshesInsteadOfDuplicating) {
  CacheLevel level(Tiny(1024, 2));
  const auto lines = CollidingLines(level, 0, 3);
  level.Insert(lines[0]);
  level.Insert(lines[0]);
  level.Insert(lines[1]);
  level.Insert(lines[2]);  // one line evicted, none present twice
  int resident = level.Contains(lines[0]) + level.Contains(lines[1]) +
                 level.Contains(lines[2]);
  EXPECT_EQ(resident, 2);
}

TEST(CacheLevelTest, DifferentSetsDoNotInterfere) {
  CacheLevel level(Tiny(1024, 2));
  // Pick one resident line per distinct set; they must all coexist.
  std::vector<uint64_t> lines;
  std::vector<bool> set_used(8, false);
  for (uint64_t line = 0; lines.size() < 8; ++line) {
    const size_t set = level.SetOf(line);
    if (!set_used[set]) {
      set_used[set] = true;
      lines.push_back(line);
    }
  }
  for (uint64_t line : lines) level.Insert(line);
  for (uint64_t line : lines) {
    EXPECT_TRUE(level.Contains(line));
  }
}

TEST(CacheLevelTest, ClearDropsContents) {
  CacheLevel level(Tiny(1024, 2));
  level.Insert(3);
  level.Clear();
  EXPECT_FALSE(level.Contains(3));
}

CacheHierarchy SmallHierarchy(bool prefetch) {
  return CacheHierarchy(Tiny(1024, 2), Tiny(4096, 4), Tiny(16384, 4),
                        prefetch);
}

TEST(CacheHierarchyTest, ColdAccessMissesEverywhere) {
  CacheHierarchy h = SmallHierarchy(false);
  EXPECT_EQ(h.Access(0, 4), MemoryLevel::kMemory);
  EXPECT_EQ(h.stats().l1_misses, 1u);
  EXPECT_EQ(h.stats().l2_misses, 1u);
  EXPECT_EQ(h.stats().l3_misses, 1u);
  EXPECT_EQ(h.stats().l3_accesses, 1u);
}

TEST(CacheHierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy h = SmallHierarchy(false);
  h.Access(0, 4);
  EXPECT_EQ(h.Access(4, 4), MemoryLevel::kL1);  // same line
  EXPECT_EQ(h.stats().l1_accesses, 2u);
  EXPECT_EQ(h.stats().l1_misses, 1u);
}

TEST(CacheHierarchyTest, InclusiveFill) {
  CacheHierarchy h = SmallHierarchy(false);
  h.Access(0, 4);
  EXPECT_TRUE(h.l1().Contains(0));
  EXPECT_TRUE(h.l2().Contains(0));
  EXPECT_TRUE(h.l3().Contains(0));
}

TEST(CacheHierarchyTest, L1EvictionFallsBackToL2) {
  CacheHierarchy h = SmallHierarchy(false);
  // L1 has 16 lines in 8 sets x 2 ways. Touch three lines of one L1 set:
  // the first is evicted from L1 but survives in L2.
  const auto lines = CollidingLines(h.l1(), 0, 3);
  for (uint64_t line : lines) h.Access(line * 64, 4);
  EXPECT_EQ(h.Access(lines[0] * 64, 4), MemoryLevel::kL2);
}

TEST(CacheHierarchyTest, StraddlingAccessTouchesBothLines) {
  CacheHierarchy h = SmallHierarchy(false);
  h.Access(60, 8);  // bytes 60..67: lines 0 and 1
  EXPECT_TRUE(h.l1().Contains(0));
  EXPECT_TRUE(h.l1().Contains(1));
  EXPECT_EQ(h.stats().l1_accesses, 2u);
}

TEST(CacheHierarchyTest, PrefetcherCountsL3Access) {
  CacheHierarchy h = SmallHierarchy(true);
  h.Access(0, 4);  // demand miss line 0 + prefetch line 1
  EXPECT_EQ(h.stats().prefetch_requests, 1u);
  EXPECT_EQ(h.stats().l3_accesses, 2u);
  EXPECT_TRUE(h.l2().Contains(1));
  EXPECT_FALSE(h.l1().Contains(1));  // prefetch fills L2/L3, not L1
}

TEST(CacheHierarchyTest, SequentialScanCostsOneL3AccessPerLine) {
  CacheHierarchy h = SmallHierarchy(true);
  const int kLines = 64;
  for (int64_t byte = 0; byte < kLines * 64; byte += 4) {
    h.Access(static_cast<uint64_t>(byte), 4);
  }
  // One demand miss starts the stream; every further line arrives by
  // stream prefetch: one L3 access per line, plus the single prefetch
  // running one line past the end (the paper's sequential pattern).
  EXPECT_EQ(h.stats().l3_accesses, static_cast<uint64_t>(kLines) + 1);
  EXPECT_EQ(h.stats().l1_misses, static_cast<uint64_t>(kLines));
  // After the first line, demand accesses are served from L2 (latency
  // hidden by the stream), not memory.
  EXPECT_EQ(h.stats().l3_misses, static_cast<uint64_t>(kLines) + 1);
}

TEST(CacheHierarchyTest, SkippingScanDoubleCountsRandomMisses) {
  CacheHierarchy h = SmallHierarchy(true);
  const int kLines = 64;
  // Touch every third line: every touched line is a "random miss" whose
  // next-line prefetch is wasted -> 2 L3 accesses per touched line.
  int touched = 0;
  for (int line = 0; line < kLines; line += 3) {
    h.Access(static_cast<uint64_t>(line) * 64, 4);
    ++touched;
  }
  EXPECT_EQ(h.stats().l3_accesses, static_cast<uint64_t>(2 * touched));
}

TEST(CacheHierarchyTest, PrefetchSquashedWhenLineResident) {
  CacheHierarchy h = SmallHierarchy(true);
  h.Access(1 * 64, 4);  // brings line 1 (+ prefetch 2)
  h.Access(0 * 64, 4);  // demand miss line 0; prefetch of line 1 squashed
  EXPECT_EQ(h.stats().prefetch_requests, 1u);
}

TEST(CacheHierarchyTest, WorkingSetLargerThanL3Thrashes) {
  CacheHierarchy h = SmallHierarchy(false);
  const uint64_t l3_lines = 16384 / 64;  // 256
  const uint64_t working_lines = 4 * l3_lines;
  // Two passes over 4x the L3 capacity: second pass still misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < working_lines; ++line) {
      h.Access(line * 64, 4);
    }
  }
  EXPECT_EQ(h.stats().l3_misses, 2 * working_lines);
}

TEST(CacheHierarchyTest, WorkingSetWithinL3HitsOnSecondPass) {
  CacheHierarchy h = SmallHierarchy(false);
  const uint64_t lines = 32;  // well inside every level but L1
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < lines; ++line) {
      h.Access(line * 64, 4);
    }
  }
  EXPECT_EQ(h.stats().l3_misses, lines);  // only the cold pass missed
}

TEST(CacheStatsTest, SubtractionWindows) {
  CacheHierarchy h = SmallHierarchy(false);
  h.Access(0, 4);
  const CacheStats mid = h.stats();
  h.Access(64, 4);
  const CacheStats delta = h.stats() - mid;
  EXPECT_EQ(delta.l1_accesses, 1u);
  EXPECT_EQ(delta.l3_misses, 1u);
}

TEST(CacheHierarchyTest, ClearResetsEverything) {
  CacheHierarchy h = SmallHierarchy(true);
  h.Access(0, 4);
  h.Clear();
  EXPECT_EQ(h.stats().l1_accesses, 0u);
  EXPECT_EQ(h.Access(0, 4), MemoryLevel::kMemory);
}

TEST(MemoryLevelTest, Names) {
  EXPECT_EQ(MemoryLevelToString(MemoryLevel::kL1), "L1");
  EXPECT_EQ(MemoryLevelToString(MemoryLevel::kMemory), "memory");
}

}  // namespace
}  // namespace nipo
