#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nipo {
namespace {

PmuCounters SampleCounters() {
  PmuCounters c;
  c.instructions = 1000;
  c.branches = 200;
  c.branches_taken = 150;
  c.branches_not_taken = 50;
  c.mispredictions = 12;
  c.l3_accesses = 33;
  c.cycles = 5000;
  return c;
}

TEST(ReportTest, PrintCountersListsEveryCounter) {
  std::ostringstream out;
  PrintCounters(SampleCounters(), "counters", out);
  const std::string s = out.str();
  EXPECT_NE(s.find("instructions"), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("branches_not_taken"), std::string::npos);
  EXPECT_NE(s.find("prefetch_requests"), std::string::npos);
  EXPECT_NE(s.find("cycles"), std::string::npos);
}

TEST(ReportTest, CountersCsvRoundTrip) {
  std::ostringstream out;
  WriteCountersCsv(SampleCounters(), out);
  const std::string s = out.str();
  EXPECT_NE(s.find("counter,value\n"), std::string::npos);
  EXPECT_NE(s.find("mispredictions,12\n"), std::string::npos);
  EXPECT_NE(s.find("cycles,5000\n"), std::string::npos);
  EXPECT_NE(s.find("l3_evictions_suffered,"), std::string::npos);
  // 17 counters + header.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 18);
}

TEST(ReportTest, FormatOrder) {
  EXPECT_EQ(FormatOrder({3, 1, 0, 2}), "3,1,0,2");
  EXPECT_EQ(FormatOrder({}), "");
  EXPECT_EQ(FormatOrder({7}), "7");
}

TEST(ReportTest, PrintDriveResult) {
  DriveResult drive;
  drive.input_tuples = 100;
  drive.qualifying_tuples = 25;
  drive.aggregate = 123.5;
  drive.num_vectors = 4;
  drive.simulated_msec = 1.25;
  drive.total = SampleCounters();
  std::ostringstream out;
  PrintDriveResult(drive, "drive", out);
  const std::string s = out.str();
  EXPECT_NE(s.find("qualifying tuples"), std::string::npos);
  EXPECT_NE(s.find("25"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

TEST(ReportTest, PrintProgressiveReportIncludesTrace) {
  ProgressiveReport report;
  report.drive.input_tuples = 10;
  report.num_optimizations = 2;
  report.final_order = {1, 0};
  report.last_estimate = {0.25, 0.75};
  PeoChange change;
  change.vector_index = 5;
  change.old_order = {0, 1};
  change.new_order = {1, 0};
  change.reverted = true;
  report.changes.push_back(change);
  std::ostringstream out;
  PrintProgressiveReport(report, "prog", out);
  const std::string s = out.str();
  EXPECT_NE(s.find("PEO trace"), std::string::npos);
  EXPECT_NE(s.find("0,1"), std::string::npos);
  EXPECT_NE(s.find("1,0"), std::string::npos);
  EXPECT_NE(s.find("reverted"), std::string::npos);
  EXPECT_NE(s.find("final order: 1,0"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace nipo
