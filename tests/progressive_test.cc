#include "optimizer/progressive.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

/// Three-predicate fixture with known selectivities; values drawn i.i.d.
struct Fixture {
  Table table{"t"};
  Pmu pmu{HwConfig::ScaledXeon(8)};
  std::unique_ptr<PipelineExecutor> exec;
  uint64_t expected_qualifying = 0;

  Fixture(size_t n, double pa, double pb, double pc, uint64_t seed = 1) {
    Prng prng(seed);
    std::vector<int32_t> a(n), b(n), c(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(prng.NextBounded(1000));
      b[i] = static_cast<int32_t>(prng.NextBounded(1000));
      c[i] = static_cast<int32_t>(prng.NextBounded(1000));
      if (a[i] < pa * 1000 && b[i] < pb * 1000 && c[i] < pc * 1000) {
        ++expected_qualifying;
      }
    }
    EXPECT_TRUE(table.AddColumn("a", std::move(a)).ok());
    EXPECT_TRUE(table.AddColumn("b", std::move(b)).ok());
    EXPECT_TRUE(table.AddColumn("c", std::move(c)).ok());
    auto compiled = PipelineExecutor::Compile(
        table,
        {OperatorSpec::Predicate({"a", CompareOp::kLt, pa * 1000}),
         OperatorSpec::Predicate({"b", CompareOp::kLt, pb * 1000}),
         OperatorSpec::Predicate({"c", CompareOp::kLt, pc * 1000})},
        {}, &pmu);
    EXPECT_TRUE(compiled.ok());
    exec = std::move(compiled).ValueOrDie();
  }
};

ProgressiveConfig FastConfig() {
  ProgressiveConfig cfg;
  cfg.vector_size = 8'192;
  cfg.reopt_interval = 2;
  return cfg;
}

TEST(ProgressiveTest, ResultIsCorrect) {
  Fixture fx(100'000, 0.9, 0.5, 0.1);
  ProgressiveOptimizer opt(fx.exec.get(), FastConfig());
  const ProgressiveReport report = opt.Run();
  EXPECT_EQ(report.drive.qualifying_tuples, fx.expected_qualifying);
  EXPECT_EQ(report.drive.input_tuples, 100'000u);
}

TEST(ProgressiveTest, ConvergesToAscendingSelectivityOrder) {
  // Initial order a(0.9), b(0.5), c(0.1): worst-first. The optimizer must
  // end on c, b, a = original indices {2, 1, 0}.
  Fixture fx(200'000, 0.9, 0.5, 0.1);
  ProgressiveOptimizer opt(fx.exec.get(), FastConfig());
  const ProgressiveReport report = opt.Run();
  EXPECT_EQ(report.final_order, (std::vector<size_t>{2, 1, 0}));
  EXPECT_GE(report.num_optimizations, 1u);
  ASSERT_FALSE(report.changes.empty());
  EXPECT_FALSE(report.changes.front().reverted);
}

TEST(ProgressiveTest, BeatsBadBaselineOrder) {
  Fixture fx_prog(200'000, 0.95, 0.5, 0.05);
  ProgressiveOptimizer opt(fx_prog.exec.get(), FastConfig());
  const ProgressiveReport prog = opt.Run();

  Fixture fx_base(200'000, 0.95, 0.5, 0.05);
  const DriveResult base = RunBaseline(fx_base.exec.get(), 8'192);

  EXPECT_LT(prog.drive.simulated_msec, base.simulated_msec * 0.75);
}

TEST(ProgressiveTest, NearOptimalStartStaysPut) {
  // Initial order already ascending: no order change should stick.
  Fixture fx(100'000, 0.1, 0.5, 0.9);
  ProgressiveOptimizer opt(fx.exec.get(), FastConfig());
  const ProgressiveReport report = opt.Run();
  EXPECT_EQ(report.final_order, (std::vector<size_t>{0, 1, 2}));
}

TEST(ProgressiveTest, OverheadOnOptimalOrderIsBounded) {
  Fixture fx_prog(200'000, 0.1, 0.5, 0.9);
  ProgressiveOptimizer opt(fx_prog.exec.get(), FastConfig());
  const ProgressiveReport prog = opt.Run();

  Fixture fx_base(200'000, 0.1, 0.5, 0.9);
  const DriveResult base = RunBaseline(fx_base.exec.get(), 8'192);
  // Monitoring + estimation must cost < 5% on an already optimal plan.
  EXPECT_LT(prog.drive.simulated_msec, base.simulated_msec * 1.05);
}

TEST(ProgressiveTest, LastEstimateTracksTruth) {
  Fixture fx(200'000, 0.8, 0.4, 0.2);
  ProgressiveConfig cfg = FastConfig();
  ProgressiveOptimizer opt(fx.exec.get(), cfg);
  const ProgressiveReport report = opt.Run();
  ASSERT_EQ(report.last_estimate.size(), 3u);
  // The estimate is in final evaluation order {2,1,0} -> (0.2, 0.4, 0.8).
  ASSERT_EQ(report.final_order, (std::vector<size_t>{2, 1, 0}));
  EXPECT_NEAR(report.last_estimate[0], 0.2, 0.1);
  EXPECT_NEAR(report.last_estimate[1], 0.4, 0.12);
  EXPECT_NEAR(report.last_estimate[2], 0.8, 0.12);
}

TEST(ProgressiveTest, ReoptIntervalControlsOptimizationCount) {
  Fixture fx_a(100'000, 0.5, 0.5, 0.5);
  ProgressiveConfig cfg = FastConfig();
  cfg.reopt_interval = 2;
  ProgressiveOptimizer opt_a(fx_a.exec.get(), cfg);
  const size_t frequent = opt_a.Run().num_optimizations;

  Fixture fx_b(100'000, 0.5, 0.5, 0.5);
  cfg.reopt_interval = 6;
  ProgressiveOptimizer opt_b(fx_b.exec.get(), cfg);
  const size_t rare = opt_b.Run().num_optimizations;
  EXPECT_GT(frequent, rare);
  EXPECT_GE(rare, 1u);
}

TEST(ProgressiveTest, AdaptsToMidTableDistributionShift) {
  // First half favors a-first, second half favors b-first; expect at
  // least one order change after the shift point.
  const size_t n = 200'000;
  Prng prng(5);
  std::vector<int32_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < n / 2) {
      a[i] = static_cast<int32_t>(prng.NextBounded(1000));  // a<100: 10%
      b[i] = static_cast<int32_t>(prng.NextBounded(110));   // b<100: ~91%
    } else {
      a[i] = static_cast<int32_t>(prng.NextBounded(110));
      b[i] = static_cast<int32_t>(prng.NextBounded(1000));
    }
  }
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", std::move(a)).ok());
  ASSERT_TRUE(t.AddColumn("b", std::move(b)).ok());
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(
      t,
      {OperatorSpec::Predicate({"a", CompareOp::kLt, 100.0}),
       OperatorSpec::Predicate({"b", CompareOp::kLt, 100.0})},
      {}, &pmu);
  ASSERT_TRUE(exec.ok());
  ProgressiveOptimizer opt(exec.ValueOrDie().get(), FastConfig());
  const ProgressiveReport report = opt.Run();
  // The shift is at vector 100000/8192 ~ 12; a change must land after it.
  bool change_after_shift = false;
  for (const PeoChange& change : report.changes) {
    if (!change.reverted && change.vector_index >= 12) {
      change_after_shift = true;
    }
  }
  EXPECT_TRUE(change_after_shift);
  EXPECT_EQ(report.final_order, (std::vector<size_t>{1, 0}));
}

TEST(ProgressiveTest, ValidationRevertsHarmfulExploration) {
  // Force exploration every optimization on an already optimal order: the
  // explored (worse) order must be reverted by validation.
  Fixture fx(150'000, 0.05, 0.95, 0.95);
  ProgressiveConfig cfg = FastConfig();
  cfg.explore_period = 1;
  ProgressiveOptimizer opt(fx.exec.get(), cfg);
  const ProgressiveReport report = opt.Run();
  size_t explored = 0, reverted = 0;
  for (const PeoChange& change : report.changes) {
    if (change.exploration) {
      ++explored;
      if (change.reverted) ++reverted;
    }
  }
  EXPECT_GT(explored, 0u);
  EXPECT_GT(reverted, 0u);
  // And the run must still finish on the optimal order.
  EXPECT_EQ(report.final_order[0], 0u);
}

TEST(ProgressiveTest, ExpensivePredicateDeferredDespiteSelectivity) {
  // Predicate e is slightly more selective (0.4) than f (0.5) but 30x more
  // expensive; the cost-aware rank must put f first.
  const size_t n = 150'000;
  Prng prng(6);
  std::vector<int32_t> e(n), f(n);
  for (size_t i = 0; i < n; ++i) {
    e[i] = static_cast<int32_t>(prng.NextBounded(1000));
    f[i] = static_cast<int32_t>(prng.NextBounded(1000));
  }
  Table t("t");
  ASSERT_TRUE(t.AddColumn("e", std::move(e)).ok());
  ASSERT_TRUE(t.AddColumn("f", std::move(f)).ok());
  Pmu pmu(HwConfig::ScaledXeon(8));
  PredicateSpec expensive{"e", CompareOp::kLt, 400.0};
  expensive.extra_instructions = 90.0;
  auto exec = PipelineExecutor::Compile(
      t,
      {OperatorSpec::Predicate(expensive),
       OperatorSpec::Predicate({"f", CompareOp::kLt, 500.0})},
      {}, &pmu);
  ASSERT_TRUE(exec.ok());
  ProgressiveOptimizer opt(exec.ValueOrDie().get(), FastConfig());
  const ProgressiveReport report = opt.Run();
  EXPECT_EQ(report.final_order, (std::vector<size_t>{1, 0}));
}

TEST(ProgressiveTest, RunBaselineMatchesDriverOutput) {
  Fixture fx(50'000, 0.5, 0.5, 0.5);
  const DriveResult r = RunBaseline(fx.exec.get(), 4'096);
  EXPECT_EQ(r.input_tuples, 50'000u);
  EXPECT_EQ(r.qualifying_tuples, fx.expected_qualifying);
}

}  // namespace
}  // namespace nipo
