#include "optimizer/static_optimizer.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

Table MakeTable() {
  Prng prng(1);
  std::vector<int32_t> a(20'000), b(20'000), c(20'000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(1000));
    b[i] = static_cast<int32_t>(prng.NextBounded(1000));
    c[i] = static_cast<int32_t>(prng.NextBounded(1000));
  }
  Table t("t");
  EXPECT_TRUE(t.AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t.AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t.AddColumn("c", std::move(c)).ok());
  return t;
}

TEST(StaticOptimizerTest, OrdersByAscendingSelectivity) {
  Table t = MakeTable();
  auto stats = TableStatistics::Build(t);
  ASSERT_TRUE(stats.ok());
  const std::vector<OperatorSpec> ops = {
      OperatorSpec::Predicate({"a", CompareOp::kLt, 900.0}),  // ~0.9
      OperatorSpec::Predicate({"b", CompareOp::kLt, 500.0}),  // ~0.5
      OperatorSpec::Predicate({"c", CompareOp::kLt, 100.0}),  // ~0.1
  };
  const StaticPlan plan = PlanStatically(ops, stats.ValueOrDie());
  EXPECT_EQ(plan.order, (std::vector<size_t>{2, 1, 0}));
  ASSERT_EQ(plan.rankings.size(), 3u);
  EXPECT_NEAR(plan.rankings[0].estimated_selectivity, 0.1, 0.03);
  EXPECT_NEAR(plan.rankings[2].estimated_selectivity, 0.9, 0.03);
  EXPECT_LT(plan.rankings[0].rank, plan.rankings[1].rank);
}

TEST(StaticOptimizerTest, ExpensivePredicateDeferred) {
  Table t = MakeTable();
  auto stats = TableStatistics::Build(t);
  ASSERT_TRUE(stats.ok());
  PredicateSpec expensive{"a", CompareOp::kLt, 400.0};  // ~0.4 but costly
  expensive.extra_instructions = 90.0;
  const std::vector<OperatorSpec> ops = {
      OperatorSpec::Predicate(expensive),
      OperatorSpec::Predicate({"b", CompareOp::kLt, 500.0}),  // ~0.5 cheap
  };
  const StaticPlan plan = PlanStatically(ops, stats.ValueOrDie());
  // (0.5-1)/1 = -0.5 beats (0.4-1)/31 = -0.019: cheap one first.
  EXPECT_EQ(plan.order, (std::vector<size_t>{1, 0}));
}

TEST(StaticOptimizerTest, ProbeUsesFallbacks) {
  Table t = MakeTable();
  auto stats = TableStatistics::Build(t);
  ASSERT_TRUE(stats.ok());
  const std::vector<OperatorSpec> ops = {
      OperatorSpec::FkProbe({}),
      OperatorSpec::Predicate({"c", CompareOp::kLt, 100.0}),
  };
  // Probe fallback 0.5 at cost 2 -> rank -0.25; predicate 0.1 at cost 1
  // -> rank -0.9: predicate first.
  const StaticPlan plan = PlanStatically(ops, stats.ValueOrDie(), 0.5, 2.0);
  EXPECT_EQ(plan.order, (std::vector<size_t>{1, 0}));
  // A very cheap probe assumption flips it.
  const StaticPlan flipped =
      PlanStatically(ops, stats.ValueOrDie(), 0.05, 0.5);
  EXPECT_EQ(flipped.order, (std::vector<size_t>{0, 1}));
}

TEST(StaticOptimizerTest, StaleStatisticsProduceBadPlan) {
  // The motivating failure: statistics sampled from the table's prefix
  // misjudge a drifting column and the static order comes out wrong.
  const size_t n = 20'000;
  Prng prng(3);
  std::vector<int32_t> drift(n), steady(n);
  for (size_t i = 0; i < n; ++i) {
    // First 10%: drift ~ [0,100) (looks super selective for "< 50").
    // Rest: drift ~ [0,1000) (actual selectivity ~0.05 -> no wait, 0.05
    // of 1000 is 50 -> ~5%? The point: prefix says ~50%, truth ~9%).
    drift[i] = i < n / 10
                   ? static_cast<int32_t>(prng.NextBounded(100))
                   : static_cast<int32_t>(prng.NextBounded(1000));
    steady[i] = static_cast<int32_t>(prng.NextBounded(1000));
  }
  Table t("t");
  ASSERT_TRUE(t.AddColumn("drift", std::move(drift)).ok());
  ASSERT_TRUE(t.AddColumn("steady", std::move(steady)).ok());
  auto stale = TableStatistics::Build(t, 64, /*sample_size=*/n / 10);
  auto fresh = TableStatistics::Build(t);
  ASSERT_TRUE(stale.ok() && fresh.ok());
  const std::vector<OperatorSpec> ops = {
      OperatorSpec::Predicate({"drift", CompareOp::kLt, 50.0}),
      OperatorSpec::Predicate({"steady", CompareOp::kLt, 200.0}),  // 0.2
  };
  // Stale stats think "drift < 50" selects ~50%; fresh stats know ~9.5%.
  const StaticPlan stale_plan = PlanStatically(ops, stale.ValueOrDie());
  const StaticPlan fresh_plan = PlanStatically(ops, fresh.ValueOrDie());
  EXPECT_EQ(stale_plan.order, (std::vector<size_t>{1, 0}));
  EXPECT_EQ(fresh_plan.order, (std::vector<size_t>{0, 1}));
}

TEST(StaticOptimizerTest, EmptyOpsYieldEmptyPlan) {
  Table t = MakeTable();
  auto stats = TableStatistics::Build(t);
  ASSERT_TRUE(stats.ok());
  const StaticPlan plan = PlanStatically({}, stats.ValueOrDie());
  EXPECT_TRUE(plan.order.empty());
  EXPECT_TRUE(plan.rankings.empty());
}

}  // namespace
}  // namespace nipo
