#include "cost/branch_model.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

const PredictorConfig kCfg = PredictorConfig::Symmetric(6);

TEST(BranchModelTest, SinglePredicateDirectionSplit) {
  const BranchEstimate e = EstimatePredicateBranches(kCfg, 1000.0, 0.3);
  EXPECT_DOUBLE_EQ(e.branches, 1000.0);
  EXPECT_DOUBLE_EQ(e.branches_not_taken, 300.0);  // qualifying tuples
  EXPECT_DOUBLE_EQ(e.branches_taken, 700.0);
  EXPECT_NEAR(e.mp, e.taken_mp + e.not_taken_mp, 1e-9);
}

TEST(BranchModelTest, ChainingShrinksInput) {
  // Predicate 2 sees only the tuples predicate 1 passed.
  const BranchEstimate e =
      EstimateScanBranches(kCfg, 1000.0, {0.5, 0.4},
                           /*include_loop_branch=*/false);
  // BNT = 1000*0.5 + 500*0.4 = 700.
  EXPECT_DOUBLE_EQ(e.branches_not_taken, 700.0);
  // branches executed = 1000 + 500.
  EXPECT_DOUBLE_EQ(e.branches, 1500.0);
  EXPECT_DOUBLE_EQ(e.branches_taken, 1500.0 - 700.0);
}

TEST(BranchModelTest, LoopBranchAddsAlwaysTakenPerTuple) {
  const BranchEstimate without =
      EstimateScanBranches(kCfg, 1000.0, {0.5}, false);
  const BranchEstimate with = EstimateScanBranches(kCfg, 1000.0, {0.5}, true);
  EXPECT_DOUBLE_EQ(with.branches - without.branches, 1000.0);
  EXPECT_DOUBLE_EQ(with.branches_taken - without.branches_taken, 1000.0);
  EXPECT_DOUBLE_EQ(with.branches_not_taken, without.branches_not_taken);
  EXPECT_DOUBLE_EQ(with.mp, without.mp);  // back-edge predicted perfectly
}

TEST(BranchModelTest, BranchesTakenIdentity) {
  // For a full scan, branches_taken = 2n - qualifying (paper Section
  // 2.2.1): n back-edges plus one taken branch per failing tuple.
  const std::vector<double> sel = {0.5, 0.4, 0.9};
  const double n = 10'000.0;
  const BranchEstimate e = EstimateScanBranches(kCfg, n, sel, true);
  const double qualifying = n * 0.5 * 0.4 * 0.9;
  EXPECT_NEAR(e.branches_taken, 2 * n - qualifying, 1e-6);
  EXPECT_NEAR(QualifyingTuplesFromBranchesTaken(n, e.branches_taken),
              qualifying, 1e-6);
}

TEST(BranchModelTest, BntEqualsSumOfColumnAccesses) {
  // BNT of predicate k = tuples surviving k predicates = accesses to the
  // next column; the total is the Section 4.1 "definite integral".
  const std::vector<double> sel = {0.8, 0.7, 0.5};
  const double n = 1000.0;
  const BranchEstimate e = EstimateScanBranches(kCfg, n, sel, false);
  const double acc1 = n * 0.8, acc2 = acc1 * 0.7, acc3 = acc2 * 0.5;
  EXPECT_NEAR(e.branches_not_taken, acc1 + acc2 + acc3, 1e-9);
}

TEST(BranchModelTest, ZeroSelectivityOnlyFirstPredicateBranches) {
  const BranchEstimate e =
      EstimateScanBranches(kCfg, 1000.0, {0.0, 0.5, 0.5}, false);
  EXPECT_DOUBLE_EQ(e.branches, 1000.0);  // later predicates never run
  EXPECT_DOUBLE_EQ(e.branches_not_taken, 0.0);
}

TEST(BranchModelTest, AllPassSelectivityHasNoMispredictions) {
  const BranchEstimate e =
      EstimateScanBranches(kCfg, 1000.0, {1.0, 1.0}, true);
  EXPECT_NEAR(e.mp, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(e.branches_not_taken, 2000.0);
}

TEST(BranchModelTest, OrderInvarianceOfTotalsButNotMispredictions) {
  // Totals of branches-not-taken differ across orders (that is the whole
  // optimization lever); check a concrete pair.
  const double n = 1000.0;
  const BranchEstimate cheap_first =
      EstimateScanBranches(kCfg, n, {0.1, 0.9}, false);
  const BranchEstimate expensive_first =
      EstimateScanBranches(kCfg, n, {0.9, 0.1}, false);
  // Output cardinality identical...
  EXPECT_NEAR(n * 0.1 * 0.9, n * 0.9 * 0.1, 1e-12);
  // ...but the cheap order evaluates far fewer branches.
  EXPECT_LT(cheap_first.branches, expensive_first.branches);
  EXPECT_LT(cheap_first.branches_not_taken,
            expensive_first.branches_not_taken);
}

class BranchModelSweep : public ::testing::TestWithParam<double> {};

TEST_P(BranchModelSweep, MispredictionsBoundedByBranchCount) {
  const double p = GetParam();
  const BranchEstimate e = EstimateScanBranches(kCfg, 5000.0, {p, p}, true);
  EXPECT_GE(e.mp, 0.0);
  EXPECT_LE(e.taken_mp, e.branches_taken + 1e-9);
  EXPECT_LE(e.not_taken_mp, e.branches_not_taken + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BranchModelSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9, 1.0));

}  // namespace
}  // namespace nipo
