#include "optimizer/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nipo {
namespace {

NelderMeadOptions TightOptions() {
  NelderMeadOptions o;
  o.abs_tolerance = 1e-10;
  o.max_iterations = 5000;
  return o;
}

TEST(NelderMeadTest, MinimizesQuadratic1D) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  auto r = NelderMeadMinimize(f, {0.0}, {-10.0}, {10.0}, TightOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 3.0, 1e-4);
  EXPECT_TRUE(r.ValueOrDie().converged);
}

TEST(NelderMeadTest, MinimizesRosenbrock2D) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions o = TightOptions();
  o.max_iterations = 20'000;
  auto r = NelderMeadMinimize(f, {-1.2, 1.0}, {-5.0, -5.0}, {5.0, 5.0}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.ValueOrDie().x[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, RespectsBoxConstraints) {
  // Unconstrained optimum at 3; box caps at 2.
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  auto r = NelderMeadMinimize(f, {0.0}, {0.0}, {2.0}, TightOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 2.0, 1e-6);
  EXPECT_LE(r.ValueOrDie().x[0], 2.0 + 1e-12);
}

TEST(NelderMeadTest, StartOutsideBoxIsClamped) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  auto r = NelderMeadMinimize(f, {100.0}, {-1.0}, {1.0}, TightOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 0.0, 1e-5);
}

TEST(NelderMeadTest, HonorsIterationBudget) {
  auto f = [](const std::vector<double>& x) {
    return std::abs(x[0] - 0.77) + std::abs(x[1] + 0.3);
  };
  NelderMeadOptions o;
  o.max_iterations = 3;
  o.abs_tolerance = 0.0;  // never converge by tolerance
  auto r = NelderMeadMinimize(f, {0, 0}, {-1, -1}, {1, 1}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().iterations, 3);
  EXPECT_FALSE(r.ValueOrDie().converged);
}

TEST(NelderMeadTest, HigherDimensionalSphere) {
  const size_t d = 5;
  auto f = [](const std::vector<double>& x) {
    double s = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double c = static_cast<double>(i) * 0.1;
      s += (x[i] - c) * (x[i] - c);
    }
    return s;
  };
  NelderMeadOptions o = TightOptions();
  o.max_iterations = 50'000;
  std::vector<double> start(d, 0.9), lo(d, -1.0), hi(d, 1.0);
  auto r = NelderMeadMinimize(f, start, lo, hi, o);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(r.ValueOrDie().x[i], static_cast<double>(i) * 0.1, 1e-2);
  }
}

TEST(NelderMeadTest, PinnedDimensionDoesNotBreak) {
  // One dimension has lower == upper.
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 0.3) * (x[0] - 0.3) + x[1] * x[1];
  };
  auto r = NelderMeadMinimize(f, {0.0, 5.0}, {-1.0, 5.0}, {1.0, 5.0},
                              TightOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 0.3, 1e-4);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().x[1], 5.0);
}

TEST(NelderMeadTest, InputValidation) {
  auto f = [](const std::vector<double>& x) { return x[0]; };
  EXPECT_FALSE(NelderMeadMinimize(f, {}, {}, {}, {}).ok());
  EXPECT_FALSE(NelderMeadMinimize(f, {0.0}, {0.0, 1.0}, {1.0}, {}).ok());
  EXPECT_FALSE(NelderMeadMinimize(f, {0.0}, {1.0}, {0.0}, {}).ok());
  EXPECT_FALSE(NelderMeadMinimize(nullptr, {0.0}, {0.0}, {1.0}, {}).ok());
}

TEST(NelderMeadTest, ToleranceStopsEarlyOnFlatFunction) {
  int evals = 0;
  auto f = [&evals](const std::vector<double>&) {
    ++evals;
    return 1.0;
  };
  NelderMeadOptions o;
  o.abs_tolerance = 0.5;
  o.max_iterations = 10'000;
  auto r = NelderMeadMinimize(f, {0.0, 0.0}, {-1, -1}, {1, 1}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().converged);
  EXPECT_EQ(r.ValueOrDie().iterations, 0);
  EXPECT_LT(evals, 10);
}

TEST(NelderMeadTest, PiecewiseNonSmoothObjective) {
  // The estimation objective uses absolute values; check NM copes.
  auto f = [](const std::vector<double>& x) {
    return std::abs(x[0] - 0.25) + 2.0 * std::abs(x[1] - 0.75);
  };
  NelderMeadOptions o = TightOptions();
  o.max_iterations = 20'000;
  auto r = NelderMeadMinimize(f, {0.9, 0.1}, {0, 0}, {1, 1}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().x[0], 0.25, 1e-3);
  EXPECT_NEAR(r.ValueOrDie().x[1], 0.75, 1e-3);
}

}  // namespace
}  // namespace nipo
