/// \file simd_cost_test.cc
/// SIMD-aware predicate pricing (DESIGN.md Section 8): the priced
/// branching/branch-free crossover selectivity must match both a
/// brute-force sweep of the pricing model and — the load-bearing check —
/// a brute-force sweep of the *simulated machine* (executing one
/// predicate in each form and comparing booked cycles). Also pins the
/// order-flip behaviour: CostPricing::kSimdAware changes the progressive
/// optimizer's chosen predicate order versus kBranchCycles on a workload
/// built to straddle the two models' rankings.

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "cost/branch_model.h"
#include "optimizer/progressive.h"

namespace nipo {
namespace {

constexpr double kCmp = LoopCostModel::kCompareInstructions;
constexpr double kBf = LoopCostModel::kBranchFreeInstructions;

TEST(FormCrossoverTest, MatchesBruteForceSweepOfPricingModel) {
  const HwConfig hw;
  const double priced =
      ComputeFormCrossover(hw.cycle_model, hw.predictor, kCmp, kBf, 0.0);
  ASSERT_GT(priced, 0.0);
  ASSERT_LT(priced, 0.5);

  // Fine sweep of the model itself: the first grid point where the
  // branch-free form wins must bracket the bisected crossover.
  const double step = 1e-4;
  double first_branch_free = 1.0;
  for (double s = 0.0; s <= 0.5; s += step) {
    const PredicateFormCosts costs = PricePredicateForms(
        hw.cycle_model, hw.predictor, s, kCmp, kBf, 0.0);
    if (costs.branch_free_cheaper()) {
      first_branch_free = s;
      break;
    }
  }
  EXPECT_NEAR(priced, first_branch_free, step);

  // On either side of the crossover the cheaper form is the expected one.
  const PredicateFormCosts below = PricePredicateForms(
      hw.cycle_model, hw.predictor, priced - 0.01, kCmp, kBf, 0.0);
  EXPECT_FALSE(below.branch_free_cheaper());
  EXPECT_EQ(below.cheapest(), below.branching);
  const PredicateFormCosts above = PricePredicateForms(
      hw.cycle_model, hw.predictor, priced + 0.01, kCmp, kBf, 0.0);
  EXPECT_TRUE(above.branch_free_cheaper());
  EXPECT_EQ(above.cheapest(), above.branch_free);
}

TEST(FormCrossoverTest, ExtraInstructionsShiftBothFormsEqually) {
  // Extra per-tuple work (UDFs, wide compares) is paid by both forms, so
  // the crossover does not move with it.
  const HwConfig hw;
  const double plain =
      ComputeFormCrossover(hw.cycle_model, hw.predictor, kCmp, kBf, 0.0);
  const double heavy =
      ComputeFormCrossover(hw.cycle_model, hw.predictor, kCmp, kBf, 10.0);
  EXPECT_DOUBLE_EQ(plain, heavy);
}

TEST(FormCrossoverTest, DegenerateKernelCostsHitTheBounds) {
  const HwConfig hw;
  // A branch-free kernel no more expensive than the compare is cheaper
  // at every selectivity (it still saves the branch cycle).
  EXPECT_EQ(ComputeFormCrossover(hw.cycle_model, hw.predictor, 1.0, 1.0,
                                 0.0),
            0.0);
  // A wildly expensive kernel never wins on [0, 0.5].
  EXPECT_EQ(ComputeFormCrossover(hw.cycle_model, hw.predictor, 1.0, 100.0,
                                 0.0),
            1.0);
}

TEST(FormCrossoverTest, MatchesBruteForceSweepOfSimulatedMachine) {
  // Execute one predicate per selectivity in both forms on the default
  // simulated machine and find where the booked cycle totals cross. The
  // pricing model uses the Markov steady-state misprediction rate; the
  // machine runs the real finite predictor over one concrete i.i.d.
  // sequence, so the empirical crossover may land one grid step away.
  const HwConfig hw;
  const double priced =
      ComputeFormCrossover(hw.cycle_model, hw.predictor, kCmp, kBf, 0.0);

  const size_t n = 120'000;
  auto cycles_at = [&](double selectivity, PredicateForm form) {
    Prng prng(31);  // same column data for both forms
    std::vector<int32_t> col(n);
    for (size_t i = 0; i < n; ++i) {
      col[i] = static_cast<int32_t>(prng.NextBounded(100'000));
    }
    Table t("t");
    NIPO_CHECK(t.AddColumn("v", std::move(col)).ok());
    Pmu pmu(hw);
    auto exec = PipelineExecutor::Compile(
        t,
        {OperatorSpec::Predicate(
            {"v", CompareOp::kLt, selectivity * 100'000})},
        {}, &pmu);
    NIPO_CHECK(exec.ok());
    NIPO_CHECK(exec.ValueOrDie()->SetForms({form}).ok());
    return RunBaseline(exec.ValueOrDie().get(), 8'192).total.cycles;
  };

  const double grid_step = 0.01;
  double empirical = 1.0;
  for (double s = 0.02; s <= 0.14; s += grid_step) {
    if (cycles_at(s, PredicateForm::kBranchFree) <
        cycles_at(s, PredicateForm::kBranching)) {
      empirical = s;
      break;
    }
  }
  ASSERT_LT(empirical, 1.0) << "branch-free never won on the sweep";
  // Within one grid step of the priced crossover.
  EXPECT_NEAR(empirical, priced, grid_step + 1e-9);
}

/// Two-predicate workload built to straddle the rankings: A has worse
/// selectivity (0.5) but is plain; B is more selective (0.3) but pays 10
/// extra per-tuple instructions. Priced on the default machine,
/// kBranchCycles ranks B first (branching costs: A 8.5, B ~10.9 cycles
/// per tuple), while kSimdAware switches both to their cheaper form
/// (A branch-free 2.0, B branch-free 7.0) and ranks A first.
struct FlipFixture {
  Table table{"t"};
  Pmu pmu{HwConfig()};
  std::unique_ptr<PipelineExecutor> exec;
  uint64_t expected_qualifying = 0;

  explicit FlipFixture(uint64_t seed = 9) {
    const size_t n = 150'000;
    Prng prng(seed);
    std::vector<int32_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(prng.NextBounded(1000));
      b[i] = static_cast<int32_t>(prng.NextBounded(1000));
      if (a[i] < 500 && b[i] < 300) ++expected_qualifying;
    }
    EXPECT_TRUE(table.AddColumn("a", std::move(a)).ok());
    EXPECT_TRUE(table.AddColumn("b", std::move(b)).ok());
    PredicateSpec pb{"b", CompareOp::kLt, 300.0};
    pb.extra_instructions = 10.0;
    auto compiled = PipelineExecutor::Compile(
        table,
        {OperatorSpec::Predicate({"a", CompareOp::kLt, 500.0}),
         OperatorSpec::Predicate(pb)},
        {}, &pmu);
    EXPECT_TRUE(compiled.ok());
    exec = std::move(compiled).ValueOrDie();
  }
};

ProgressiveReport RunWithPricing(CostPricing pricing) {
  FlipFixture fx;
  ProgressiveConfig cfg;
  cfg.vector_size = 8'192;
  cfg.reopt_interval = 2;
  cfg.pricing = pricing;
  ProgressiveOptimizer opt(fx.exec.get(), cfg);
  ProgressiveReport report = opt.Run();
  EXPECT_EQ(report.drive.qualifying_tuples, fx.expected_qualifying);
  return report;
}

TEST(SimdAwarePricingTest, ChangesChosenPredicateOrder) {
  // Branch-cost-only pricing prefers the more selective B first; the
  // SIMD-aware model knows A's 0.5-selectivity branch is exactly the one
  // a branch-free kernel makes cheap, and keeps A first. The optimizer's
  // chosen order flips between the two pricings on identical data — the
  // EXPERIMENTS.md "SIMD kernels" demonstration.
  const ProgressiveReport branch_cycles =
      RunWithPricing(CostPricing::kBranchCycles);
  EXPECT_EQ(branch_cycles.final_order, (std::vector<size_t>{1, 0}));

  const ProgressiveReport simd_aware =
      RunWithPricing(CostPricing::kSimdAware);
  EXPECT_EQ(simd_aware.final_order, (std::vector<size_t>{0, 1}));
}

TEST(SimdAwarePricingTest, SimdAwareRunSwitchesFormsAndPreservesResults) {
  const ProgressiveReport report = RunWithPricing(CostPricing::kSimdAware);
  // Both predicates price cheaper branch-free (0.5 and 0.3 are above the
  // ~0.066 crossover); at least one applied change must carry a
  // branch-free form.
  bool saw_branch_free = false;
  for (const PeoChange& change : report.changes) {
    ASSERT_EQ(change.old_forms.size(), change.new_forms.size());
    if (change.reverted) continue;
    for (const PredicateForm form : change.new_forms) {
      if (form == PredicateForm::kBranchFree) saw_branch_free = true;
    }
  }
  EXPECT_TRUE(saw_branch_free);
}

TEST(SimdAwarePricingTest, BranchCyclesRunKeepsAllBranchingForms) {
  const ProgressiveReport report =
      RunWithPricing(CostPricing::kBranchCycles);
  for (const PeoChange& change : report.changes) {
    for (const PredicateForm form : change.new_forms) {
      EXPECT_EQ(form, PredicateForm::kBranching);
    }
  }
}

}  // namespace
}  // namespace nipo
