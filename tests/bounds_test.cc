#include "optimizer/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nipo {
namespace {

TEST(BoundsTest, TupleBoundsMatchEquations6And7) {
  auto b = ComputeTupleBounds(100, 10, 4);
  ASSERT_TRUE(b.ok());
  const SearchBounds& sb = b.ValueOrDie();
  // Lower: tupsout everywhere.
  for (double lo : sb.lower) EXPECT_DOUBLE_EQ(lo, 10.0);
  // Upper: tupsin except the last position.
  EXPECT_DOUBLE_EQ(sb.upper[0], 100.0);
  EXPECT_DOUBLE_EQ(sb.upper[1], 100.0);
  EXPECT_DOUBLE_EQ(sb.upper[2], 100.0);
  EXPECT_DOUBLE_EQ(sb.upper[3], 10.0);
  EXPECT_TRUE(sb.Feasible());
}

TEST(BoundsTest, PaperFigure7Example) {
  // The worked example of Section 4.1: 100 in, 10 out, accesses
  // [80, 70, 50, 10], BNT = 210. Expected restriction:
  // lower [67, 50, 10, 10], upper [100, 95, 66, 10] (paper's rounding).
  auto b = ComputeBntBounds(100, 10, 210, 4);
  ASSERT_TRUE(b.ok());
  const SearchBounds& sb = b.ValueOrDie();
  EXPECT_DOUBLE_EQ(sb.upper[0], 100.0);  // 180 clipped to tupsin
  EXPECT_DOUBLE_EQ(sb.upper[1], 95.0);
  EXPECT_NEAR(sb.upper[2], 200.0 / 3.0, 1e-9);  // 66.67, paper prints 66
  EXPECT_DOUBLE_EQ(sb.upper[3], 10.0);
  EXPECT_NEAR(sb.lower[0], 200.0 / 3.0, 1e-9);  // paper prints 67
  EXPECT_DOUBLE_EQ(sb.lower[1], 50.0);
  EXPECT_DOUBLE_EQ(sb.lower[2], 10.0);
  EXPECT_DOUBLE_EQ(sb.lower[3], 10.0);
}

TEST(BoundsTest, TrueAccessesAlwaysInsideBnTBounds) {
  // Property: for any monotone access vector, bounds computed from its own
  // BNT must contain it.
  const std::vector<std::vector<double>> cases = {
      {80, 70, 50, 10},
      {100, 100, 100, 10},
      {10, 10, 10, 10},
      {90, 20, 15, 10},
      {55, 54, 53, 10},
  };
  for (const auto& acc : cases) {
    double bnt = 0;
    for (double a : acc) bnt += a;
    auto b = ComputeBntBounds(100, 10, bnt, acc.size());
    ASSERT_TRUE(b.ok()) << "bnt=" << bnt;
    const SearchBounds& sb = b.ValueOrDie();
    for (size_t i = 0; i < acc.size(); ++i) {
      EXPECT_LE(sb.lower[i] - 1e-9, acc[i]) << "i=" << i;
      EXPECT_GE(sb.upper[i] + 1e-9, acc[i]) << "i=" << i;
    }
  }
}

TEST(BoundsTest, BntBoundsRejectInfeasibleSamples) {
  // BNT below n*tupsout or above (n-1)*tupsin + tupsout is impossible.
  EXPECT_FALSE(ComputeBntBounds(100, 10, 39, 4).ok());
  EXPECT_FALSE(ComputeBntBounds(100, 10, 311, 4).ok());
  EXPECT_TRUE(ComputeBntBounds(100, 10, 40, 4).ok());
  EXPECT_TRUE(ComputeBntBounds(100, 10, 310, 4).ok());
}

TEST(BoundsTest, ValidationErrors) {
  EXPECT_FALSE(ComputeTupleBounds(100, 10, 0).ok());
  EXPECT_FALSE(ComputeTupleBounds(10, 100, 2).ok());  // out > in
  EXPECT_FALSE(ComputeTupleBounds(-1, -2, 2).ok());
}

TEST(BoundsTest, IntersectTakesTighterSide) {
  SearchBounds a{{0, 0}, {10, 10}};
  SearchBounds b{{5, 2}, {20, 8}};
  auto i = IntersectBounds(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_DOUBLE_EQ(i.ValueOrDie().lower[0], 5.0);
  EXPECT_DOUBLE_EQ(i.ValueOrDie().upper[0], 10.0);
  EXPECT_DOUBLE_EQ(i.ValueOrDie().lower[1], 2.0);
  EXPECT_DOUBLE_EQ(i.ValueOrDie().upper[1], 8.0);
}

TEST(BoundsTest, IntersectDetectsEmpty) {
  SearchBounds a{{0}, {1}};
  SearchBounds b{{2}, {3}};
  EXPECT_FALSE(IntersectBounds(a, b).ok());
  SearchBounds c{{0}, {1, 2}};
  EXPECT_FALSE(IntersectBounds(a, c).ok());  // dimension mismatch
}

TEST(BoundsTest, RestrictSearchSpaceTightensTupleBounds) {
  auto restricted = RestrictSearchSpace(100, 10, 210, 4);
  auto tuple_only = ComputeTupleBounds(100, 10, 4);
  ASSERT_TRUE(restricted.ok() && tuple_only.ok());
  double restricted_volume = 1, tuple_volume = 1;
  for (size_t i = 0; i + 1 < 4; ++i) {
    restricted_volume *= restricted.ValueOrDie().upper[i] -
                         restricted.ValueOrDie().lower[i];
    tuple_volume *=
        tuple_only.ValueOrDie().upper[i] - tuple_only.ValueOrDie().lower[i];
  }
  EXPECT_LT(restricted_volume, tuple_volume * 0.2);
}

TEST(BoundsTest, ClampProjectsIntoBox) {
  SearchBounds b{{10, 10}, {50, 20}};
  std::vector<double> x{5, 100};
  b.Clamp(&x);
  EXPECT_DOUBLE_EQ(x[0], 10.0);
  EXPECT_DOUBLE_EQ(x[1], 20.0);
}

TEST(BoundsTest, AccessSelectivityRoundTrip) {
  const std::vector<double> sel{0.8, 0.5, 0.25};
  const auto acc = SelectivitiesToAccesses(1000.0, sel);
  EXPECT_DOUBLE_EQ(acc[0], 800.0);
  EXPECT_DOUBLE_EQ(acc[1], 400.0);
  EXPECT_DOUBLE_EQ(acc[2], 100.0);
  const auto back = AccessesToSelectivities(1000.0, acc);
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_NEAR(back[i], sel[i], 1e-12);
  }
}

TEST(BoundsTest, AccessesToSelectivitiesHandlesZeroPredecessor) {
  const auto sel = AccessesToSelectivities(100.0, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(sel[0], 0.0);
  EXPECT_DOUBLE_EQ(sel[1], 1.0);  // nothing reached it: no information
}

TEST(BoundsTest, SinglePredicateDegenerates) {
  auto b = ComputeBntBounds(100, 25, 25, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(b.ValueOrDie().lower[0], 25.0);
  EXPECT_DOUBLE_EQ(b.ValueOrDie().upper[0], 25.0);
}

}  // namespace
}  // namespace nipo
