#include "exec/vector_driver.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

struct Fixture {
  Table table{"t"};
  Pmu pmu{HwConfig::ScaledXeon(8)};
  std::unique_ptr<PipelineExecutor> exec;

  explicit Fixture(size_t n) {
    Prng prng(1);
    std::vector<int32_t> a(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(prng.NextBounded(100));
    }
    EXPECT_TRUE(table.AddColumn("a", std::move(a)).ok());
    auto compiled = PipelineExecutor::Compile(
        table, {OperatorSpec::Predicate({"a", CompareOp::kLt, 50.0})}, {},
        &pmu);
    EXPECT_TRUE(compiled.ok());
    exec = std::move(compiled).ValueOrDie();
  }
};

TEST(VectorDriverTest, VectorCountRoundsUp) {
  Fixture fx(10'000);
  VectorDriver d1(fx.exec.get(), 1000);
  EXPECT_EQ(d1.num_vectors(), 10u);
  VectorDriver d2(fx.exec.get(), 3000);
  EXPECT_EQ(d2.num_vectors(), 4u);  // 3+3+3+1
  EXPECT_EQ(d2.vector_size(), 3000u);
}

TEST(VectorDriverTest, RunWithoutHookAggregates) {
  Fixture fx(10'000);
  VectorDriver driver(fx.exec.get(), 1024);
  const DriveResult r = driver.Run();
  EXPECT_EQ(r.input_tuples, 10'000u);
  EXPECT_EQ(r.num_vectors, 10u);
  EXPECT_GT(r.qualifying_tuples, 0u);
  EXPECT_GT(r.simulated_msec, 0.0);
  EXPECT_GT(r.total.cycles, 0u);
}

TEST(VectorDriverTest, HookSeesEveryVectorInOrder) {
  Fixture fx(10'000);
  VectorDriver driver(fx.exec.get(), 1000);
  std::vector<size_t> indices;
  uint64_t hook_tuples = 0;
  driver.Run([&](const VectorSample& s) {
    indices.push_back(s.vector_index);
    hook_tuples += s.result.input_tuples;
    EXPECT_GT(s.counters.cycles, 0u);
    EXPECT_GT(s.counters.branches, 0u);
  });
  ASSERT_EQ(indices.size(), 10u);
  for (size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
  EXPECT_EQ(hook_tuples, 10'000u);
}

TEST(VectorDriverTest, PerVectorCountersSumToTotal) {
  Fixture fx(8'000);
  VectorDriver driver(fx.exec.get(), 1024);
  PmuCounters accumulated;
  const DriveResult r = driver.Run(
      [&](const VectorSample& s) { accumulated += s.counters; });
  // The total also contains the sampling charge itself; the counter sums
  // must match exactly for event counters.
  EXPECT_EQ(accumulated.branches, r.total.branches);
  EXPECT_EQ(accumulated.branches_not_taken, r.total.branches_not_taken);
  EXPECT_EQ(accumulated.l3_accesses, r.total.l3_accesses);
  // Cycles: the pre-vector read charge lands outside the per-vector
  // delta, the post-vector one inside -> the total exceeds the sum of
  // deltas by exactly one read charge per vector.
  const uint64_t sampling = static_cast<uint64_t>(
      kCounterReadCycles * static_cast<double>(r.num_vectors));
  EXPECT_NEAR(static_cast<double>(r.total.cycles),
              static_cast<double>(accumulated.cycles + sampling), 4.0);
}

TEST(VectorDriverTest, SamplingOverheadIsSmall) {
  Fixture fx_a(50'000);
  VectorDriver plain(fx_a.exec.get(), 4096);
  const DriveResult without = plain.Run();
  Fixture fx_b(50'000);
  VectorDriver sampled(fx_b.exec.get(), 4096);
  const DriveResult with = sampled.Run([](const VectorSample&) {});
  // Non-invasive monitoring: the whole point of the paper. Overhead of
  // reading counters every vector stays below 2%.
  EXPECT_LT(static_cast<double>(with.total.cycles) /
                static_cast<double>(without.total.cycles),
            1.02);
}

TEST(VectorDriverTest, LastShortVectorHandled) {
  Fixture fx(1000);
  VectorDriver driver(fx.exec.get(), 300);
  std::vector<uint64_t> sizes;
  driver.Run([&](const VectorSample& s) {
    sizes.push_back(s.result.input_tuples);
  });
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes.back(), 100u);
}

TEST(VectorDriverTest, HookMayReorderBetweenVectors) {
  // Reordering from inside the hook must not disturb the aggregate.
  Table t("t");
  Prng prng(2);
  std::vector<int32_t> a(5000), b(5000);
  uint64_t expected = 0;
  for (size_t i = 0; i < 5000; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    if (a[i] < 50 && b[i] < 50) ++expected;
  }
  ASSERT_TRUE(t.AddColumn("a", std::move(a)).ok());
  ASSERT_TRUE(t.AddColumn("b", std::move(b)).ok());
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(
      t,
      {OperatorSpec::Predicate({"a", CompareOp::kLt, 50.0}),
       OperatorSpec::Predicate({"b", CompareOp::kLt, 50.0})},
      {}, &pmu);
  ASSERT_TRUE(exec.ok());
  VectorDriver driver(exec.ValueOrDie().get(), 512);
  size_t flips = 0;
  const DriveResult r = driver.Run([&](const VectorSample& s) {
    // Flip the order after every vector.
    auto order = exec.ValueOrDie()->current_order();
    std::swap(order[0], order[1]);
    ASSERT_TRUE(exec.ValueOrDie()->Reorder(order).ok());
    ++flips;
    (void)s;
  });
  EXPECT_EQ(r.qualifying_tuples, expected);
  EXPECT_EQ(flips, r.num_vectors);
}

}  // namespace
}  // namespace nipo
