#include "common/date.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DateToDayNumber(Date{1970, 1, 1}), 0);
  EXPECT_EQ(DayNumberToDate(0), (Date{1970, 1, 1}));
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateToDayNumber(Date{1970, 1, 2}), 1);
  EXPECT_EQ(DateToDayNumber(Date{1969, 12, 31}), -1);
  EXPECT_EQ(DateToDayNumber(Date{2000, 1, 1}), 10957);
  EXPECT_EQ(DateToDayNumber(Date{1992, 1, 1}), 8035);
}

TEST(DateTest, RoundTripsOverTpchWindowAndBeyond) {
  // Every single day from 1960 to 2030 must round-trip.
  const DayNumber lo = DateToDayNumber(Date{1960, 1, 1});
  const DayNumber hi = DateToDayNumber(Date{2030, 12, 31});
  Date prev = DayNumberToDate(lo);
  for (DayNumber d = lo + 1; d <= hi; ++d) {
    const Date date = DayNumberToDate(d);
    EXPECT_EQ(DateToDayNumber(date), d);
    // Consecutive day numbers yield strictly advancing dates.
    EXPECT_TRUE(date.year > prev.year ||
                (date.year == prev.year &&
                 (date.month > prev.month ||
                  (date.month == prev.month && date.day == prev.day + 1))));
    prev = date;
  }
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(1992));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1995));
  EXPECT_EQ(DaysInMonth(1992, 2), 29);
  EXPECT_EQ(DaysInMonth(1995, 2), 28);
  EXPECT_EQ(DaysInMonth(1995, 12), 31);
  EXPECT_EQ(DaysInMonth(1995, 4), 30);
}

TEST(DateTest, ParseValid) {
  auto r = ParseDate("1994-02-28");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), (Date{1994, 2, 28}));
  EXPECT_TRUE(ParseDate("1992-02-29").ok());  // leap day
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("1994-13-01").ok());
  EXPECT_FALSE(ParseDate("1994-00-01").ok());
  EXPECT_FALSE(ParseDate("1994-02-30").ok());
  EXPECT_FALSE(ParseDate("1995-02-29").ok());  // not a leap year
  EXPECT_FALSE(ParseDate("1994-02").ok());
  EXPECT_FALSE(ParseDate("1994-02-28x").ok());
}

TEST(DateTest, FormatPadsFields) {
  EXPECT_EQ(FormatDate(Date{1994, 2, 3}), "1994-02-03");
  EXPECT_EQ(FormatDate(Date{1998, 12, 31}), "1998-12-31");
}

TEST(DateTest, ParseFormatRoundTrip) {
  for (const char* text : {"1992-01-01", "1994-06-17", "1998-12-31"}) {
    auto parsed = ParseDate(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(FormatDate(parsed.ValueOrDie()), text);
  }
}

TEST(DateTest, TpchWindow) {
  EXPECT_EQ(DayNumberToDate(TpchStartDay()), (Date{1992, 1, 1}));
  EXPECT_EQ(DayNumberToDate(TpchEndDay()), (Date{1998, 12, 31}));
  EXPECT_LT(TpchStartDay(), TpchEndDay());
  // The canonical 7-year window spans 2557 days.
  EXPECT_EQ(TpchEndDay() - TpchStartDay(), 2556);
}

}  // namespace
}  // namespace nipo
