#include "common/prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nipo {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(PrngTest, SeedZeroWorks) {
  Prng p(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(p.Next());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(PrngTest, BoundedStaysInRange) {
  Prng p(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(p.NextBounded(bound), bound);
    }
  }
}

TEST(PrngTest, BoundedOneAlwaysZero) {
  Prng p(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.NextBounded(1), 0u);
}

TEST(PrngTest, InRangeInclusive) {
  Prng p(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = p.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = p.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, BoundedIsRoughlyUniform) {
  Prng p(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[p.NextBounded(kBuckets)];
  }
  // Chi-squared with 9 dof; 99.9% critical value ~27.9.
  double chi2 = 0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(PrngTest, BernoulliMatchesProbability) {
  Prng p(19);
  for (double prob : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i) {
      if (p.NextBool(prob)) ++hits;
    }
    const double rate = static_cast<double>(hits) / kDraws;
    EXPECT_NEAR(rate, prob, 0.01);
  }
}

}  // namespace
}  // namespace nipo
