#include "cost/join_model.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

TEST(JoinModelTest, DistinctLinesBasics) {
  EXPECT_DOUBLE_EQ(ExpectedDistinctLines(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinctLines(0.0, 10.0), 0.0);
  // One access touches exactly one line.
  EXPECT_NEAR(ExpectedDistinctLines(100.0, 1.0), 1.0, 1e-9);
  // Far more accesses than lines: asymptotically all lines.
  EXPECT_NEAR(ExpectedDistinctLines(100.0, 1e6), 100.0, 1e-6);
}

TEST(JoinModelTest, DistinctLinesMonotoneInAccesses) {
  double prev = 0.0;
  for (double r : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const double d = ExpectedDistinctLines(500.0, r);
    EXPECT_GT(d, prev);
    EXPECT_LE(d, 500.0 + 1e-9);
    prev = d;
  }
}

TEST(JoinModelTest, DistinctLinesMatchesMonteCarlo) {
  const double kLines = 200.0, kAccesses = 300.0;
  Prng prng(3);
  double total = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<bool> seen(static_cast<size_t>(kLines), false);
    int distinct = 0;
    for (int r = 0; r < static_cast<int>(kAccesses); ++r) {
      const size_t line = static_cast<size_t>(prng.NextBounded(200));
      if (!seen[line]) {
        seen[line] = true;
        ++distinct;
      }
    }
    total += distinct;
  }
  EXPECT_NEAR(total / kTrials, ExpectedDistinctLines(kLines, kAccesses),
              2.0);
}

const CacheGeometry kL3{1024 * 1024, 16, 64};  // 16384 lines

TEST(JoinModelTest, FittingRelationMissesEachLineOnce) {
  // Relation spans 1000 lines < 16384 capacity: Equation 1's first case.
  JoinRelationSpec rel{16'000.0, 4.0};  // 64000 B = 1000 lines
  const double misses = ExpectedRandomMisses(rel, kL3, 5000.0);
  EXPECT_NEAR(misses, ExpectedDistinctLines(1000.0, 5000.0), 1e-9);
  EXPECT_LT(misses, 1000.0 + 1e-9);
}

TEST(JoinModelTest, ThrashingRelationMissesPerProbe) {
  // Relation 8x the cache: Equation 1's second case. Resident fraction
  // 1/8 -> 7/8 of probes miss.
  JoinRelationSpec rel{2'097'152.0, 4.0};  // 8 MiB = 131072 lines
  const double probes = 1e6;
  const double misses = ExpectedRandomMisses(rel, kL3, probes);
  EXPECT_NEAR(misses / probes, 1.0 - 1.0 / 8.0, 1e-9);
}

TEST(JoinModelTest, MissesNeverExceedProbesInThrashRegime) {
  JoinRelationSpec rel{1e8, 8.0};
  const double misses = ExpectedRandomMisses(rel, kL3, 1e5);
  EXPECT_LE(misses, 1e5);
  EXPECT_GT(misses, 0.97e5);  // nearly every probe misses
}

TEST(JoinModelTest, SequentialMissesOnePerLine) {
  JoinRelationSpec rel{16'000.0, 4.0};
  EXPECT_NEAR(ExpectedSequentialMisses(rel, kL3), 1000.0, 1e-9);
}

TEST(JoinModelTest, SequentialFarCheaperThanRandomWhenThrashing) {
  JoinRelationSpec rel{4'194'304.0, 4.0};  // 16 MiB
  const double probes = 4'194'304.0;       // one probe per tuple
  const double random = ExpectedRandomMisses(rel, kL3, probes);
  const double sequential = ExpectedSequentialMisses(rel, kL3);
  EXPECT_GT(random / sequential, 10.0);
}

TEST(JoinModelTest, CoClusterednessScore) {
  JoinRelationSpec rel{2'097'152.0, 4.0};
  const double probes = 1e6;
  const double predicted = ExpectedRandomMisses(rel, kL3, probes);
  // Sampled like random: score ~ 1.
  EXPECT_NEAR(CoClusterednessScore(rel, kL3, probes, predicted), 1.0, 1e-9);
  // Sampled like sequential: well below the 0.5 co-cluster threshold
  // (ratio = lines / thrash-misses ~ 0.15 at these parameters).
  EXPECT_LT(CoClusterednessScore(rel, kL3, probes,
                                 ExpectedSequentialMisses(rel, kL3)),
            0.2);
  // Clamped at 10 for pathological samples.
  EXPECT_DOUBLE_EQ(CoClusterednessScore(rel, kL3, probes, predicted * 100),
                   10.0);
}

TEST(JoinModelTest, ZeroProbesScoreZero) {
  JoinRelationSpec rel{1000.0, 4.0};
  EXPECT_DOUBLE_EQ(CoClusterednessScore(rel, kL3, 0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace nipo
