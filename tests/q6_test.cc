#include "tpch/q6.h"

#include <gtest/gtest.h>

#include "common/date.h"
#include "tpch/tpch_gen.h"

namespace nipo {
namespace {

class Q6Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.scale_factor = 0.01;
    auto li = GenerateLineitem(cfg);
    ASSERT_TRUE(li.ok());
    lineitem_ = li.ValueOrDie().release();
  }
  static void TearDownTestSuite() {
    delete lineitem_;
    lineitem_ = nullptr;
  }
  static Table* lineitem_;
};

Table* Q6Test::lineitem_ = nullptr;

TEST_F(Q6Test, FullVariantHasFivePredicates) {
  const auto ops = MakeQ6FullPredicates();
  EXPECT_EQ(ops.size(), 5u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.kind, OperatorSpec::Kind::kPredicate);
  }
  // Two shipdate bounds, two discount bounds, one quantity bound.
  int shipdate = 0, discount = 0, quantity = 0;
  for (const auto& op : ops) {
    if (op.predicate.column == "l_shipdate") ++shipdate;
    if (op.predicate.column == "l_discount") ++discount;
    if (op.predicate.column == "l_quantity") ++quantity;
  }
  EXPECT_EQ(shipdate, 2);
  EXPECT_EQ(discount, 2);
  EXPECT_EQ(quantity, 1);
}

TEST_F(Q6Test, IntroVariantHasFourPredicates) {
  const auto ops = MakeQ6IntroPredicates(9000);
  EXPECT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].predicate.column, "l_shipdate");
  EXPECT_EQ(ops[0].predicate.op, CompareOp::kLe);
  EXPECT_DOUBLE_EQ(ops[0].predicate.value, 9000.0);
}

TEST_F(Q6Test, ReferenceMatchesManualEvaluation) {
  const auto ops = MakeQ6FullPredicates();
  auto ref = ComputeQ6Reference(*lineitem_, ops);
  ASSERT_TRUE(ref.ok());
  // Manual recomputation.
  const auto& ship =
      *lineitem_->GetTypedColumn<int32_t>("l_shipdate").ValueOrDie();
  const auto& disc =
      *lineitem_->GetTypedColumn<int32_t>("l_discount").ValueOrDie();
  const auto& qty =
      *lineitem_->GetTypedColumn<int32_t>("l_quantity").ValueOrDie();
  const auto& price =
      *lineitem_->GetTypedColumn<int64_t>("l_extendedprice").ValueOrDie();
  const int32_t lo = DateToDayNumber(Date{1994, 1, 1});
  const int32_t hi = DateToDayNumber(Date{1995, 1, 1});
  uint64_t qualifying = 0;
  double revenue = 0;
  for (size_t i = 0; i < lineitem_->num_rows(); ++i) {
    if (ship[i] >= lo && ship[i] < hi && disc[i] >= 5 && disc[i] <= 7 &&
        qty[i] < 24) {
      ++qualifying;
      revenue += static_cast<double>(price[i]) * disc[i];
    }
  }
  EXPECT_EQ(ref.ValueOrDie().qualifying, qualifying);
  EXPECT_DOUBLE_EQ(ref.ValueOrDie().revenue, revenue);
  EXPECT_GT(qualifying, 0u);
}

TEST_F(Q6Test, ReferenceRejectsProbes) {
  std::vector<OperatorSpec> ops = {OperatorSpec::FkProbe({})};
  EXPECT_FALSE(ComputeQ6Reference(*lineitem_, ops).ok());
}

TEST_F(Q6Test, ValueForSelectivityHitsTargets) {
  for (double target : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    auto value = ValueForSelectivity(*lineitem_, "l_shipdate", target);
    ASSERT_TRUE(value.ok());
    auto measured = MeasureSelectivity(*lineitem_, "l_shipdate",
                                       CompareOp::kLe,
                                       value.ValueOrDie());
    ASSERT_TRUE(measured.ok());
    // Exact quantile: at most one tuple above target.
    EXPECT_GE(measured.ValueOrDie() + 1e-9, target);
    EXPECT_LE(measured.ValueOrDie(),
              target + 200.0 / static_cast<double>(lineitem_->num_rows()) +
                  0.02);
  }
}

TEST_F(Q6Test, ValueForSelectivityExtremes) {
  auto zero = ValueForSelectivity(*lineitem_, "l_shipdate", 0.0);
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(MeasureSelectivity(*lineitem_, "l_shipdate",
                                      CompareOp::kLe, zero.ValueOrDie())
                       .ValueOrDie(),
                   0.0);
  auto one = ValueForSelectivity(*lineitem_, "l_shipdate", 1.0);
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(MeasureSelectivity(*lineitem_, "l_shipdate",
                                      CompareOp::kLe, one.ValueOrDie())
                       .ValueOrDie(),
                   1.0);
}

TEST_F(Q6Test, ValueForSelectivityValidatesArgs) {
  EXPECT_FALSE(ValueForSelectivity(*lineitem_, "l_shipdate", -0.1).ok());
  EXPECT_FALSE(ValueForSelectivity(*lineitem_, "l_shipdate", 1.1).ok());
  EXPECT_FALSE(ValueForSelectivity(*lineitem_, "no_col", 0.5).ok());
  // int64 column: quantile helper is int32-only by contract.
  EXPECT_FALSE(ValueForSelectivity(*lineitem_, "l_extendedprice", 0.5).ok());
}

TEST_F(Q6Test, MeasureSelectivityAllOps) {
  // Sanity across comparison operators on the discount column (uniform
  // integers 0..10).
  auto sel = [&](CompareOp op, double v) {
    return MeasureSelectivity(*lineitem_, "l_discount", op, v).ValueOrDie();
  };
  EXPECT_NEAR(sel(CompareOp::kLe, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(sel(CompareOp::kLt, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(sel(CompareOp::kGe, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(sel(CompareOp::kLe, 4.0), 5.0 / 11.0, 0.02);
  EXPECT_NEAR(sel(CompareOp::kGt, 4.0), 6.0 / 11.0, 0.02);
  EXPECT_NEAR(sel(CompareOp::kEq, 5.0), 1.0 / 11.0, 0.02);
  EXPECT_NEAR(sel(CompareOp::kNe, 5.0), 10.0 / 11.0, 0.02);
}

TEST_F(Q6Test, PayloadColumns) {
  const auto payload = Q6PayloadColumns();
  ASSERT_EQ(payload.size(), 2u);
  EXPECT_EQ(payload[0], "l_extendedprice");
  EXPECT_EQ(payload[1], "l_discount");
}

}  // namespace
}  // namespace nipo
