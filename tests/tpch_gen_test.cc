#include "tpch/tpch_gen.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nipo {
namespace {

TpchConfig SmallConfig() {
  TpchConfig cfg;
  cfg.scale_factor = 0.01;  // 15k orders, ~60k lineitems
  cfg.seed = 42;
  return cfg;
}

TEST(TpchGenTest, TableShapes) {
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const TpchDatabase& d = db.ValueOrDie();
  EXPECT_EQ(d.orders->num_rows(), 15'000u);
  EXPECT_EQ(d.part->num_rows(), 2'000u);
  // 1..7 lineitems per order, expectation 4.
  EXPECT_GT(d.lineitem->num_rows(), 15'000u * 2);
  EXPECT_LT(d.lineitem->num_rows(), 15'000u * 7);
  EXPECT_EQ(d.lineitem->num_columns(), 9u);
}

TEST(TpchGenTest, DeterministicAcrossCalls) {
  auto a = GenerateTpch(SmallConfig());
  auto b = GenerateTpch(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  const auto qa = a.ValueOrDie().lineitem->GetTypedColumn<int32_t>(
      "l_quantity");
  const auto qb = b.ValueOrDie().lineitem->GetTypedColumn<int32_t>(
      "l_quantity");
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_EQ(qa.ValueOrDie()->size(), qb.ValueOrDie()->size());
  for (size_t i = 0; i < qa.ValueOrDie()->size(); ++i) {
    ASSERT_EQ((*qa.ValueOrDie())[i], (*qb.ValueOrDie())[i]);
  }
}

TEST(TpchGenTest, DifferentSeedsProduceDifferentData) {
  TpchConfig cfg = SmallConfig();
  auto a = GenerateTpch(cfg);
  cfg.seed = 43;
  auto b = GenerateTpch(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto& qa =
      *a.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_quantity")
           .ValueOrDie();
  const auto& qb =
      *b.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_quantity")
           .ValueOrDie();
  size_t differing = 0;
  const size_t n = std::min(qa.size(), qb.size());
  for (size_t i = 0; i < n; ++i) {
    if (qa[i] != qb[i]) ++differing;
  }
  EXPECT_GT(differing, n / 2);
}

TEST(TpchGenTest, ValueDomains) {
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const Table& li = *db.ValueOrDie().lineitem;
  const auto& quantity =
      *li.GetTypedColumn<int32_t>("l_quantity").ValueOrDie();
  const auto& discount =
      *li.GetTypedColumn<int32_t>("l_discount").ValueOrDie();
  const auto& tax = *li.GetTypedColumn<int32_t>("l_tax").ValueOrDie();
  const auto& shipdate =
      *li.GetTypedColumn<int32_t>("l_shipdate").ValueOrDie();
  const auto& price =
      *li.GetTypedColumn<int64_t>("l_extendedprice").ValueOrDie();
  for (size_t i = 0; i < li.num_rows(); ++i) {
    ASSERT_GE(quantity[i], 1);
    ASSERT_LE(quantity[i], 50);
    ASSERT_GE(discount[i], 0);
    ASSERT_LE(discount[i], 10);
    ASSERT_GE(tax[i], 0);
    ASSERT_LE(tax[i], 8);
    ASSERT_GE(shipdate[i], TpchStartDay());
    ASSERT_LE(shipdate[i], TpchEndDay());
    ASSERT_GT(price[i], 0);
  }
}

TEST(TpchGenTest, ForeignKeysAreValidPositionalIds) {
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const TpchDatabase& d = db.ValueOrDie();
  const auto& orderkey =
      *d.lineitem->GetTypedColumn<int32_t>("l_orderkey").ValueOrDie();
  const auto& partkey =
      *d.lineitem->GetTypedColumn<int32_t>("l_partkey").ValueOrDie();
  for (size_t i = 0; i < d.lineitem->num_rows(); ++i) {
    ASSERT_GE(orderkey[i], 0);
    ASSERT_LT(orderkey[i], static_cast<int32_t>(d.orders->num_rows()));
    ASSERT_GE(partkey[i], 0);
    ASSERT_LT(partkey[i], static_cast<int32_t>(d.part->num_rows()));
  }
}

TEST(TpchGenTest, LineitemCoClusteredWithOrders) {
  // l_orderkey must be non-decreasing: the bulk-load co-clustering the
  // join experiments rely on.
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const auto& orderkey =
      *db.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_orderkey")
           .ValueOrDie();
  for (size_t i = 1; i < orderkey.size(); ++i) {
    ASSERT_LE(orderkey[i - 1], orderkey[i]);
  }
}

TEST(TpchGenTest, ShipdateWeaklyClusteredWhenConfigured) {
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const auto& ship =
      *db.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_shipdate")
           .ValueOrDie();
  // Weak clustering: the column is far from sorted locally, but first and
  // last deciles must be widely separated in time.
  const size_t n = ship.size();
  double first_decile = 0, last_decile = 0;
  for (size_t i = 0; i < n / 10; ++i) first_decile += ship[i];
  for (size_t i = n - n / 10; i < n; ++i) last_decile += ship[i];
  first_decile /= static_cast<double>(n / 10);
  last_decile /= static_cast<double>(n / 10);
  EXPECT_GT(last_decile - first_decile, 1500.0);  // > ~4 years apart
}

TEST(TpchGenTest, UnclusteredDatesAreNotOrdered) {
  TpchConfig cfg = SmallConfig();
  cfg.clustered_dates = false;
  auto db = GenerateTpch(cfg);
  ASSERT_TRUE(db.ok());
  const auto& ship =
      *db.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_shipdate")
           .ValueOrDie();
  const size_t n = ship.size();
  double first_decile = 0, last_decile = 0;
  for (size_t i = 0; i < n / 10; ++i) first_decile += ship[i];
  for (size_t i = n - n / 10; i < n; ++i) last_decile += ship[i];
  first_decile /= static_cast<double>(n / 10);
  last_decile /= static_cast<double>(n / 10);
  EXPECT_LT(std::abs(last_decile - first_decile), 200.0);
}

TEST(TpchGenTest, QuantityRoughlyUniform) {
  auto db = GenerateTpch(SmallConfig());
  ASSERT_TRUE(db.ok());
  const auto& quantity =
      *db.ValueOrDie().lineitem->GetTypedColumn<int32_t>("l_quantity")
           .ValueOrDie();
  size_t below_24 = 0;
  for (size_t i = 0; i < quantity.size(); ++i) {
    if (quantity[i] < 24) ++below_24;
  }
  // P(quantity < 24) = 23/50 = 0.46 for uniform 1..50.
  const double frac =
      static_cast<double>(below_24) / static_cast<double>(quantity.size());
  EXPECT_NEAR(frac, 0.46, 0.02);
}

TEST(TpchGenTest, RejectsNonPositiveScale) {
  TpchConfig cfg;
  cfg.scale_factor = 0.0;
  EXPECT_FALSE(GenerateTpch(cfg).ok());
  cfg.scale_factor = -1.0;
  EXPECT_FALSE(GenerateTpch(cfg).ok());
  cfg.scale_factor = 1e-9;  // rounds to zero tables
  EXPECT_FALSE(GenerateTpch(cfg).ok());
}

TEST(TpchGenTest, GenerateLineitemOnly) {
  auto li = GenerateLineitem(SmallConfig());
  ASSERT_TRUE(li.ok());
  EXPECT_GT(li.ValueOrDie()->num_rows(), 0u);
  EXPECT_EQ(li.ValueOrDie()->name(), "lineitem");
}

}  // namespace
}  // namespace nipo
