#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/prng.h"
#include "core/engine.h"
#include "exec/admission.h"
#include "exec/faults.h"
#include "exec/parallel_driver.h"
#include "exec/workload_driver.h"

// Fault-tolerance layer tests (DESIGN.md Section 9 "Fault-tolerant
// service"):
//  (a) zero-fault back-compat: a default FaultPlan leaves every fault
//      field inert and — even when retry routing forces the event-driven
//      path — per-query results stay bit-identical to solo runs;
//  (b) determinism: a fixed fault seed draws the identical per-query
//      outcomes, attempt counts and backoff waits across reruns,
//      max_concurrent {1, 2, 8} and worker counts, because fault draws
//      are pure functions of (seed, query, attempt, quantum);
//  (c) the fault semantics themselves: transient faults retry from
//      scratch under capped exponential backoff, poison queries fail
//      hard without retry, stalls inflate the schedule but never the
//      machine counters, deadlines and cancellation kill cooperatively
//      at vector boundaries with partial progress kept, and
//      deadline-aware shedding rejects doomed queries at admission;
//  (d) replay exactness: SimulateWorkloadSchedule fed the recorded
//      QuantumTrace fates and a ServiceFaultSpec reproduces outcomes,
//      attempts, backoffs and timing bit-identically;
//  (e) the Status propagation paths: FK-out-of-range data errors latch
//      on the executor and surface as failed Status (solo), a latched
//      error + partial counts (parallel), or QueryOutcome::kFailed with
//      partial progress (workload), plus the driver-level validation
//      Statuses and the parallel cancellation token.
// ci/check.sh runs this suite with NIPO_TEST_THREADS=1 and =8 and under
// ThreadSanitizer.

namespace nipo {
namespace {

std::vector<size_t> TestThreadCounts() {
  if (const char* env = std::getenv("NIPO_TEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return {static_cast<size_t>(parsed)};
  }
  return {1, 2, 4, 8};
}

constexpr size_t kDimRows = 10'001;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed, size_t fk_range = kDimRows) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n), c(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    c[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(fk_range));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t->AddColumn("c", std::move(c)).ok());
  EXPECT_TRUE(t->AddColumn("fk", std::move(fk)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

Engine MakeFaultEngine() {
  Engine engine(HwConfig::ScaledXeon(16));
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_a", 40'000, 1)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_b", 60'000, 2)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim", kDimRows, 3)).ok());
  // A fact table whose FK column exceeds the dimension: probing it is a
  // runtime data error that must latch, not abort.
  EXPECT_TRUE(
      engine.RegisterTable(MakeFact("bad_fact", 20'000, 4, 3 * kDimRows))
          .ok());
  return engine;
}

QuerySpec ScanQuery(const std::string& table, double a_lt, double b_lt,
                    double c_lt) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, a_lt}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, b_lt}),
           OperatorSpec::Predicate({"c", CompareOp::kLt, c_lt})};
  q.payload_columns = {"payload"};
  return q;
}

QuerySpec JoinQuery(const Engine& engine, const std::string& table) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 80.0}),
           OperatorSpec::FkProbe({"fk", engine.GetTable("dim").ValueOrDie(),
                                  "attr", CompareOp::kLt, 40.0})};
  q.payload_columns = {"payload"};
  return q;
}

/// Six mixed queries (scans + joins, baseline + progressive) — the
/// heterogeneity the determinism claims must hold under.
WorkloadSpec MakeMixedWorkload(const Engine& engine) {
  WorkloadSpec spec;
  auto add = [&spec](std::string name, QuerySpec q, bool progressive,
                     size_t vector_size) {
    WorkloadQuery query;
    query.name = std::move(name);
    query.query = std::move(q);
    query.progressive = progressive;
    query.config.vector_size = vector_size;
    query.config.reopt_interval = 2;
    spec.queries.push_back(std::move(query));
  };
  add("scan_a_base", ScanQuery("fact_a", 90, 50, 2), false, 2'048);
  add("scan_a_prog", ScanQuery("fact_a", 90, 50, 2), true, 2'048);
  add("scan_b_prog", ScanQuery("fact_b", 90, 50, 2), true, 4'096);
  add("join_a_base", JoinQuery(engine, "fact_a"), false, 2'048);
  add("join_b_prog", JoinQuery(engine, "fact_b"), true, 2'048);
  add("scan_b_selective", ScanQuery("fact_b", 10, 90, 90), false, 1'024);
  return spec;
}

WorkloadSpec MakeHomogeneousWorkload(size_t n) {
  WorkloadSpec spec;
  for (size_t i = 0; i < n; ++i) {
    WorkloadQuery query;
    query.name = "scan" + std::to_string(i);
    query.query = ScanQuery("fact_a", 90, 50, 2);
    query.config.vector_size = 2'048;
    spec.queries.push_back(std::move(query));
  }
  return spec;
}

DriveResult SoloDrive(const Engine& engine, const WorkloadQuery& q) {
  if (q.progressive) {
    auto r = engine.ExecuteProgressive(q.query, q.config, q.initial_order);
    EXPECT_TRUE(r.ok());
    return r.ValueOrDie().drive;
  }
  auto r = engine.ExecuteBaseline(q.query, q.config.vector_size,
                                  q.initial_order);
  EXPECT_TRUE(r.ok());
  return r.ValueOrDie().drive;
}

/// The fault-mode QuantumTrace replay input recorded in a report.
std::vector<std::vector<QuantumTrace>> TracesOf(const WorkloadReport& report) {
  std::vector<std::vector<QuantumTrace>> traces(report.queries.size());
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(q.quantum_msec.size(), q.quantum_evictions.size());
    EXPECT_EQ(q.quantum_msec.size(), q.quantum_occupancy.size());
    EXPECT_EQ(q.quantum_msec.size(), q.quantum_fate.size());
    for (size_t k = 0; k < q.quantum_msec.size(); ++k) {
      traces[i].push_back({q.quantum_msec[k], q.quantum_evictions[k],
                           q.quantum_occupancy[k], q.quantum_fate[k]});
    }
  }
  return traces;
}

/// The per-query fault signature the determinism tests compare.
struct FaultSignature {
  QueryOutcome outcome;
  size_t attempts;
  double backoff_msec;
  bool operator==(const FaultSignature&) const = default;
};

std::vector<FaultSignature> SignaturesOf(const WorkloadReport& report) {
  std::vector<FaultSignature> sigs;
  for (const WorkloadQueryReport& q : report.queries) {
    sigs.push_back({q.outcome, q.attempts, q.sim_backoff_msec});
  }
  return sigs;
}

// ---------------------------------------------------------------------------
// (a) Zero-fault back-compat.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, FaultFreeRunKeepsFaultFieldsInert) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_ok, report.queries.size());
  EXPECT_EQ(report.queries_failed, 0u);
  EXPECT_EQ(report.queries_deadline_exceeded, 0u);
  EXPECT_EQ(report.queries_cancelled, 0u);
  EXPECT_EQ(report.queries_shed, 0u);
  EXPECT_EQ(report.total_retries, 0u);
  EXPECT_EQ(report.total_backoff_msec, 0.0);
  EXPECT_EQ(report.sim_goodput_qps, report.sim_queries_per_sec);
  for (const WorkloadQueryReport& q : report.queries) {
    EXPECT_EQ(q.outcome, QueryOutcome::kOk) << q.name;
    EXPECT_EQ(q.attempts, 1u) << q.name;
    EXPECT_EQ(q.sim_backoff_msec, 0.0) << q.name;
    EXPECT_TRUE(q.error.ok()) << q.name;
    ASSERT_EQ(q.quantum_fate.size(), q.quantum_msec.size()) << q.name;
    for (const QuantumFate fate : q.quantum_fate) {
      EXPECT_EQ(fate, QuantumFate::kNormal) << q.name;
    }
  }
}

TEST(ServiceFaultsTest, RetryRoutingWithoutFaultsMatchesSoloBitwise) {
  // A retry budget (or shedding switch) routes the run through the
  // event-driven path even when no fault ever fires; results must stay
  // bit-identical to solo runs regardless.
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  spec.options.retry.max_attempts = 4;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_ok, report.queries.size());
  EXPECT_EQ(report.total_retries, 0u);
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const DriveResult solo = SoloDrive(engine, spec.queries[i]);
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(q.outcome, QueryOutcome::kOk) << q.name;
    EXPECT_EQ(q.attempts, 1u) << q.name;
    EXPECT_EQ(q.drive.total, solo.total) << q.name;  // every counter
    EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;  // bitwise
    EXPECT_EQ(q.drive.qualifying_tuples, solo.qualifying_tuples) << q.name;
  }
}

// ---------------------------------------------------------------------------
// (b) Fault determinism across reruns x max_concurrent x worker counts.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, FaultScheduleIsIdenticalAcrossConcurrencyAndReruns) {
  Engine engine = MakeFaultEngine();
  std::vector<FaultSignature> reference;
  double reference_makespan = -1;
  for (size_t threads : TestThreadCounts()) {
    for (size_t max_concurrent : {size_t{1}, size_t{2}, size_t{8}}) {
      WorkloadSpec spec = MakeMixedWorkload(engine);
      spec.options.num_threads = threads;
      spec.options.max_concurrent = max_concurrent;
      spec.options.faults.seed = 99;
      spec.options.faults.transient_fault_rate = 0.05;
      spec.options.faults.stall_rate = 0.10;
      spec.options.faults.stall_factor = 3.0;
      spec.options.retry.max_attempts = 4;
      spec.options.retry.backoff_base_msec = 0.5;
      spec.options.retry.backoff_cap_msec = 8.0;
      auto first = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(first.ok());
      auto second = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(second.ok());
      const WorkloadReport& a = first.ValueOrDie();
      const WorkloadReport& b = second.ValueOrDie();
      // Reruns: the whole report repeats bit-identically.
      EXPECT_EQ(SignaturesOf(a), SignaturesOf(b));
      EXPECT_EQ(a.sim_makespan_msec, b.sim_makespan_msec);
      EXPECT_EQ(a.total_retries, b.total_retries);
      EXPECT_EQ(a.total_backoff_msec, b.total_backoff_msec);
      for (size_t i = 0; i < a.queries.size(); ++i) {
        EXPECT_EQ(a.queries[i].quantum_msec, b.queries[i].quantum_msec);
        EXPECT_EQ(a.queries[i].quantum_fate, b.queries[i].quantum_fate);
      }
      // Schedule independence: outcomes, attempts and backoffs are pure
      // functions of (seed, query, attempt, quantum), so every admission
      // limit and worker count draws the same per-query fault sequence.
      if (reference.empty()) {
        reference = SignaturesOf(a);
      } else {
        EXPECT_EQ(SignaturesOf(a), reference)
            << threads << " threads, max_concurrent " << max_concurrent;
      }
      // The makespan is schedule-dependent (it must be: concurrency
      // changes it) but bit-stable for a fixed configuration.
      if (threads == 1 && max_concurrent == 1) {
        if (reference_makespan < 0) {
          reference_makespan = a.sim_makespan_msec;
        } else {
          EXPECT_EQ(a.sim_makespan_msec, reference_makespan);
        }
      }
      // The fixture is tuned so faults actually fire.
      EXPECT_GT(a.total_retries, 0u);
      // A query that succeeded after retrying restarted from scratch on a
      // fresh machine, so its final-attempt counters are bit-identical to
      // a solo run.
      for (size_t i = 0; i < a.queries.size(); ++i) {
        const WorkloadQueryReport& q = a.queries[i];
        if (q.outcome != QueryOutcome::kOk) continue;
        const DriveResult solo = SoloDrive(engine, spec.queries[i]);
        EXPECT_EQ(q.drive.total, solo.total) << q.name;
        EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;
      }
    }
  }
}

TEST(ServiceFaultsTest, StallsInflateScheduleNotCounters) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  auto clean_result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(clean_result.ok());
  const WorkloadReport& clean = clean_result.ValueOrDie();

  // Every quantum stalls by exactly 4x: durations scale by a power of
  // two, so the whole simulated schedule scales exactly — while machine
  // counters are untouched (the work did not change; the worker was
  // slow).
  spec.options.faults.stall_rate = 1.0;
  spec.options.faults.stall_factor = 4.0;
  auto stalled_result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(stalled_result.ok());
  const WorkloadReport& stalled = stalled_result.ValueOrDie();
  ASSERT_EQ(stalled.queries.size(), clean.queries.size());
  for (size_t i = 0; i < clean.queries.size(); ++i) {
    const WorkloadQueryReport& s = stalled.queries[i];
    const WorkloadQueryReport& c = clean.queries[i];
    EXPECT_EQ(s.outcome, QueryOutcome::kOk) << s.name;
    EXPECT_EQ(s.drive.total, c.drive.total) << s.name;
    EXPECT_EQ(s.drive.aggregate, c.drive.aggregate) << s.name;
    EXPECT_EQ(s.drive.simulated_msec, c.drive.simulated_msec) << s.name;
    ASSERT_EQ(s.quantum_msec.size(), c.quantum_msec.size()) << s.name;
    for (size_t k = 0; k < s.quantum_msec.size(); ++k) {
      EXPECT_EQ(s.quantum_msec[k], 4.0 * c.quantum_msec[k]) << s.name;
    }
  }
  EXPECT_EQ(stalled.sim_makespan_msec, 4.0 * clean.sim_makespan_msec);
}

// ---------------------------------------------------------------------------
// (c) Fault semantics: retry exhaustion, poison, deadlines, cancellation,
//     shedding.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, TransientFaultsExhaustRetryBudgetWithCappedBackoff) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(2);
  spec.options.faults.transient_fault_rate = 1.0;  // every quantum faults
  spec.options.retry.max_attempts = 3;
  spec.options.retry.backoff_base_msec = 2.0;
  spec.options.retry.backoff_cap_msec = 64.0;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_failed, report.queries.size());
  EXPECT_EQ(report.queries_ok, 0u);
  EXPECT_EQ(report.sim_goodput_qps, 0.0);
  for (const WorkloadQueryReport& q : report.queries) {
    EXPECT_EQ(q.outcome, QueryOutcome::kFailed) << q.name;
    EXPECT_EQ(q.attempts, 3u) << q.name;
    // Backoff after attempt 1 = base, after attempt 2 = 2 * base.
    EXPECT_EQ(q.sim_backoff_msec, 2.0 + 4.0) << q.name;
    EXPECT_EQ(q.error.code(), StatusCode::kInternal) << q.name;
    // Each attempt died on its first quantum (rate 1.0).
    ASSERT_EQ(q.quantum_fate.size(), 3u) << q.name;
    for (const QuantumFate fate : q.quantum_fate) {
      EXPECT_EQ(fate, QuantumFate::kTransientFault) << q.name;
    }
    // Latency decomposition: the backoff waits are part of the span
    // between first dispatch and completion.
    EXPECT_GE(q.sim_finish_msec - q.sim_start_msec, q.sim_backoff_msec)
        << q.name;
  }
  EXPECT_EQ(report.total_retries, 2u * report.queries.size());
}

TEST(ServiceFaultsTest, PoisonQueryFailsHardWithoutRetry) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.faults.poison_queries = {1};
  spec.options.retry.max_attempts = 3;  // retry must NOT apply to poison
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_failed, 1u);
  EXPECT_EQ(report.queries_ok, report.queries.size() - 1);
  EXPECT_EQ(report.total_retries, 0u);
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const WorkloadQueryReport& q = report.queries[i];
    if (i == 1) {
      EXPECT_EQ(q.outcome, QueryOutcome::kFailed) << q.name;
      EXPECT_EQ(q.attempts, 1u) << q.name;
      EXPECT_EQ(q.error.code(), StatusCode::kInternal) << q.name;
      EXPECT_NE(q.error.message().find("poison"), std::string::npos) << q.name;
      ASSERT_FALSE(q.quantum_fate.empty()) << q.name;
      EXPECT_EQ(q.quantum_fate.back(), QuantumFate::kHardFault) << q.name;
    } else {
      EXPECT_EQ(q.outcome, QueryOutcome::kOk) << q.name;
      const DriveResult solo = SoloDrive(engine, spec.queries[i]);
      EXPECT_EQ(q.drive.total, solo.total) << q.name;
      EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;
    }
  }
}

TEST(ServiceFaultsTest, DeadlineKillsAtVectorBoundaryWithPartialProgress) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(1);
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  ASSERT_GT(solo.simulated_msec, 0.0);
  spec.queries[0].sim_deadline_msec = 0.3 * solo.simulated_msec;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_deadline_exceeded, 1u);
  const WorkloadQueryReport& q = report.queries[0];
  EXPECT_EQ(q.outcome, QueryOutcome::kDeadlineExceeded);
  // Cooperative kill: partial progress kept, no error behind a deadline.
  EXPECT_GT(q.drive.num_vectors, 0u);
  EXPECT_LT(q.drive.num_vectors, solo.num_vectors);
  EXPECT_TRUE(q.error.ok());
  EXPECT_EQ(q.quantum_fate.back(), QuantumFate::kDeadline);
  // Killed at the first vector boundary past the deadline: the finish
  // lands at or past the deadline but well before the full run.
  EXPECT_GE(q.sim_finish_msec, spec.queries[0].sim_deadline_msec);
  EXPECT_LT(q.sim_finish_msec, solo.simulated_msec);
}

TEST(ServiceFaultsTest, CancellationKillsAtAbsoluteSimInstant) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(2);
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  spec.queries[1].sim_cancel_msec = 0.2 * solo.simulated_msec;
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries_cancelled, 1u);
  EXPECT_EQ(report.queries_ok, 1u);
  const WorkloadQueryReport& q = report.queries[1];
  EXPECT_EQ(q.outcome, QueryOutcome::kCancelled);
  EXPECT_TRUE(q.error.ok());
  EXPECT_GT(q.drive.num_vectors, 0u);
  EXPECT_LT(q.drive.num_vectors, solo.num_vectors);
  EXPECT_GE(q.sim_finish_msec, spec.queries[1].sim_cancel_msec);
  // The untouched query still completes bit-identically to solo.
  EXPECT_EQ(report.queries[0].drive.total, solo.total);
}

TEST(ServiceFaultsTest, DeadlineSheddingPrefersEarlyRejection) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(8);
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  // One server, one slot: query i can only start at i * solo_msec, so
  // every query past the second is doomed by its deadline of 2.5x.
  for (WorkloadQuery& q : spec.queries) {
    q.sim_deadline_msec = 2.5 * solo.simulated_msec;
  }
  spec.options.num_threads = 1;
  spec.options.max_concurrent = 1;
  auto late_result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(late_result.ok());
  const WorkloadReport& late = late_result.ValueOrDie();
  EXPECT_GT(late.queries_deadline_exceeded, 0u);
  EXPECT_EQ(late.queries_shed, 0u);

  spec.options.shed_deadline = true;
  auto shed_result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(shed_result.ok());
  const WorkloadReport& shed = shed_result.ValueOrDie();
  // Shedding turns late deadline misses into admission-time rejections:
  // same OK count, doomed queries never burn a worker, so the makespan
  // shrinks.
  EXPECT_GT(shed.queries_shed, 0u);
  EXPECT_EQ(shed.queries_deadline_exceeded, 0u);
  EXPECT_EQ(shed.queries_ok, late.queries_ok);
  EXPECT_LT(shed.sim_makespan_msec, late.sim_makespan_msec);
  EXPECT_GT(shed.sim_goodput_qps, late.sim_goodput_qps);
  for (const WorkloadQueryReport& q : shed.queries) {
    if (q.outcome != QueryOutcome::kShed) continue;
    // A shed query never executed: zero attempts, zero progress, and an
    // instant zero-length schedule span at its shed instant.
    EXPECT_EQ(q.attempts, 0u) << q.name;
    EXPECT_EQ(q.drive.num_vectors, 0u) << q.name;
    EXPECT_TRUE(q.quantum_msec.empty()) << q.name;
    EXPECT_EQ(q.sim_finish_msec, q.sim_start_msec) << q.name;
    EXPECT_TRUE(q.error.ok()) << q.name;
  }
}

// ---------------------------------------------------------------------------
// (d) Replay exactness of the full fault stack.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, FaultyScheduleReplaysExactly) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 3;
  spec.options.faults.seed = 7;
  spec.options.faults.transient_fault_rate = 0.05;
  spec.options.faults.stall_rate = 0.10;
  spec.options.faults.stall_factor = 2.0;
  spec.options.faults.poison_queries = {3};
  spec.options.retry.max_attempts = 3;
  spec.options.retry.backoff_base_msec = 0.5;
  spec.options.retry.backoff_cap_msec = 8.0;
  spec.options.shed_deadline = true;
  spec.queries[2].sim_deadline_msec = 10.0 * solo.simulated_msec;
  spec.queries[5].sim_deadline_msec = 0.5 * solo.simulated_msec;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();

  ServiceFaultSpec faults;
  faults.retry = spec.options.retry;
  faults.shed_deadline = true;
  for (const WorkloadQuery& q : spec.queries) {
    faults.deadline_msec.push_back(q.sim_deadline_msec);
  }
  const SimSchedule replay = SimulateWorkloadSchedule(
      TracesOf(report), /*arrival_msec=*/{}, spec.options.num_threads,
      spec.options.max_concurrent, SchedulePolicyConfig{},
      /*adaptive=*/nullptr, &faults);
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(replay.outcome[i], q.outcome) << q.name;
    EXPECT_EQ(replay.attempts[i], q.attempts) << q.name;
    EXPECT_EQ(replay.backoff_msec[i], q.sim_backoff_msec) << q.name;
    EXPECT_EQ(replay.start_msec[i], q.sim_start_msec) << q.name;
    EXPECT_EQ(replay.finish_msec[i], q.sim_finish_msec) << q.name;
    EXPECT_EQ(replay.queue_wait_msec[i], q.sim_queue_wait_msec) << q.name;
    EXPECT_EQ(replay.latency_msec[i], q.sim_latency_msec) << q.name;
  }
  EXPECT_EQ(replay.makespan_msec, report.sim_makespan_msec);
}

// ---------------------------------------------------------------------------
// Unit behaviour: backoff arithmetic, fault draws, the shedder.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, RetryBackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.backoff_base_msec = 2.0;
  policy.backoff_cap_msec = 10.0;
  EXPECT_EQ(RetryBackoffMsec(policy, 0), 0.0);  // no retry, no wait
  EXPECT_EQ(RetryBackoffMsec(policy, 1), 2.0);
  EXPECT_EQ(RetryBackoffMsec(policy, 2), 4.0);
  EXPECT_EQ(RetryBackoffMsec(policy, 3), 8.0);
  EXPECT_EQ(RetryBackoffMsec(policy, 4), 10.0);  // capped
  EXPECT_EQ(RetryBackoffMsec(policy, 60), 10.0);  // stays capped, no overflow
  policy.backoff_base_msec = 0.0;  // zero base disables waiting entirely
  EXPECT_EQ(RetryBackoffMsec(policy, 3), 0.0);
}

TEST(ServiceFaultsTest, FaultDrawsArePureSeededFunctions) {
  FaultPlan plan;
  plan.seed = 11;
  plan.transient_fault_rate = 0.5;
  plan.stall_rate = 0.5;
  // Purity: the same coordinates always draw the same events.
  for (size_t q = 0; q < 4; ++q) {
    for (size_t a = 0; a < 3; ++a) {
      for (size_t k = 0; k < 8; ++k) {
        const FaultDraw first = DrawFault(plan, q, a, k);
        const FaultDraw second = DrawFault(plan, q, a, k);
        EXPECT_EQ(first.transient, second.transient);
        EXPECT_EQ(first.stall, second.stall);
        EXPECT_EQ(first.poison, second.poison);
      }
    }
  }
  // Rates 0 and 1 are degenerate coin flips.
  plan.transient_fault_rate = 0.0;
  plan.stall_rate = 1.0;
  for (size_t k = 0; k < 16; ++k) {
    const FaultDraw draw = DrawFault(plan, 0, 0, k);
    EXPECT_FALSE(draw.transient);
    EXPECT_TRUE(draw.stall);
  }
  // The seed matters: two seeds must disagree somewhere.
  plan.transient_fault_rate = 0.5;
  FaultPlan other = plan;
  other.seed = 12;
  bool differs = false;
  for (size_t k = 0; k < 64 && !differs; ++k) {
    differs = DrawFault(plan, 0, 0, k).transient !=
              DrawFault(other, 0, 0, k).transient;
  }
  EXPECT_TRUE(differs);
  // Poison is positional, not probabilistic.
  plan.poison_queries = {2};
  plan.poison_quantum = 3;
  EXPECT_FALSE(DrawFault(plan, 2, 0, 2).poison);
  EXPECT_TRUE(DrawFault(plan, 2, 0, 3).poison);
  EXPECT_TRUE(DrawFault(plan, 2, 1, 7).poison);  // every attempt
  EXPECT_FALSE(DrawFault(plan, 1, 0, 3).poison);
}

TEST(ServiceFaultsTest, DeadlineShedderCalibratesOnlineAndNeverShedsBlind) {
  DeadlineShedder shedder;
  EXPECT_FALSE(shedder.calibrated());
  EXPECT_EQ(shedder.EstimateServiceMsec(10.0), 0.0);
  // Uncalibrated: never sheds, however hopeless the deadline looks.
  EXPECT_FALSE(shedder.ShouldShed(1000.0, 0.0, 1.0, 10.0, 4, 1));
  shedder.OnQueryDone(/*service_msec=*/100.0, /*work=*/10.0);
  EXPECT_TRUE(shedder.calibrated());
  // Work-scaled estimate: 10 msec per unit of work.
  EXPECT_EQ(shedder.EstimateServiceMsec(10.0), 100.0);
  EXPECT_EQ(shedder.EstimateServiceMsec(20.0), 200.0);
  // Zero work falls back to the mean observed service time.
  EXPECT_EQ(shedder.EstimateServiceMsec(0.0), 100.0);
  // Fits: predicted finish 0 + 100 <= deadline 150.
  EXPECT_FALSE(shedder.ShouldShed(0.0, 0.0, 150.0, 10.0, 0, 1));
  // Doomed: the queue wait already spent the budget (now = 80).
  EXPECT_TRUE(shedder.ShouldShed(80.0, 0.0, 150.0, 10.0, 0, 1));
  // Crowding scales the prediction: 4 in flight on 2 workers -> 2.5x.
  EXPECT_TRUE(shedder.ShouldShed(0.0, 0.0, 150.0, 10.0, 4, 2));
  EXPECT_FALSE(shedder.ShouldShed(0.0, 0.0, 300.0, 10.0, 4, 2));
  // No deadline means never shed.
  EXPECT_FALSE(shedder.ShouldShed(1e9, 0.0, 0.0, 10.0, 4, 1));
}

// ---------------------------------------------------------------------------
// (e) Status propagation: FK-out-of-range latching in every entry point,
//     driver validation, parallel cancellation.
// ---------------------------------------------------------------------------

TEST(ServiceFaultsTest, FkOutOfRangeFailsSoloEntryPoints) {
  Engine engine = MakeFaultEngine();
  const QuerySpec bad = JoinQuery(engine, "bad_fact");
  auto baseline = engine.ExecuteBaseline(bad, 2'048);
  EXPECT_EQ(baseline.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(baseline.status().message().find("dimension"), std::string::npos);
  ProgressiveConfig config;
  config.vector_size = 2'048;
  auto progressive = engine.ExecuteProgressive(bad, config);
  EXPECT_EQ(progressive.status().code(), StatusCode::kOutOfRange);
}

TEST(ServiceFaultsTest, FkOutOfRangeFailsParallelEntryPoints) {
  Engine engine = MakeFaultEngine();
  const QuerySpec bad = JoinQuery(engine, "bad_fact");
  for (size_t threads : TestThreadCounts()) {
    ParallelOptions options;
    options.num_threads = threads;
    options.morsel_size = 2'048;
    auto report = engine.ExecuteBaselineParallel(bad, options);
    EXPECT_EQ(report.status().code(), StatusCode::kOutOfRange)
        << threads << " threads";
  }
}

TEST(ServiceFaultsTest, FkOutOfRangeFailsWorkloadQueryKeepsOthers) {
  Engine engine = MakeFaultEngine();
  WorkloadSpec spec;
  WorkloadQuery good;
  good.name = "good_scan";
  good.query = ScanQuery("fact_a", 90, 50, 2);
  good.config.vector_size = 2'048;
  WorkloadQuery bad;
  bad.name = "bad_join";
  bad.query = JoinQuery(engine, "bad_fact");
  bad.config.vector_size = 2'048;
  spec.queries = {good, bad, good};
  spec.queries[2].name = "good_scan_2";
  const DriveResult solo = SoloDrive(engine, good);
  // Both execution paths must latch identically: the threaded pool
  // (default options) and the event loop (forced by a retry budget —
  // which must NOT retry a hard data error).
  for (const size_t max_attempts : {size_t{1}, size_t{3}}) {
    spec.options.num_threads = 2;
    spec.options.max_concurrent = 2;
    spec.options.retry.max_attempts = max_attempts;
    auto result = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(result.ok());
    const WorkloadReport& report = result.ValueOrDie();
    EXPECT_EQ(report.queries_failed, 1u);
    EXPECT_EQ(report.queries_ok, 2u);
    EXPECT_EQ(report.total_retries, 0u);
    const WorkloadQueryReport& failed = report.queries[1];
    EXPECT_EQ(failed.outcome, QueryOutcome::kFailed);
    EXPECT_EQ(failed.attempts, 1u);
    EXPECT_EQ(failed.error.code(), StatusCode::kOutOfRange);
    EXPECT_NE(failed.error.message().find("dimension"), std::string::npos);
    // The healthy queries are untouched by their neighbour's failure.
    EXPECT_EQ(report.queries[0].drive.total, solo.total);
    EXPECT_EQ(report.queries[2].drive.total, solo.total);
  }
}

TEST(ServiceFaultsTest, ParallelDriverValidatesConfiguration) {
  Engine engine = MakeFaultEngine();
  const Table* table = engine.GetTable("fact_a").ValueOrDie();
  const QuerySpec q = ScanQuery("fact_a", 90, 50, 2);
  auto factory = [&](Pmu* pmu) {
    return PipelineExecutor::Compile(*table, q.ops, q.payload_columns, pmu,
                                     InstrumentationMode::kPmu);
  };
  {
    ParallelDriver driver(engine.NewMachine(), nullptr, ParallelConfig{});
    EXPECT_EQ(driver.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    ParallelConfig config;
    config.num_threads = 0;
    ParallelDriver driver(engine.NewMachine(), factory, config);
    EXPECT_EQ(driver.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    ParallelConfig config;
    config.morsel_size = 0;
    ParallelDriver driver(engine.NewMachine(), factory, config);
    EXPECT_EQ(driver.Run().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServiceFaultsTest, ParallelCancellationStopsAtMorselBoundary) {
  Engine engine = MakeFaultEngine();
  const QuerySpec q = ScanQuery("fact_a", 90, 50, 2);
  std::atomic<bool> cancel{true};  // pre-cancelled: nothing may run
  ParallelOptions options;
  options.num_threads = 4;
  options.morsel_size = 2'048;
  options.cancel = &cancel;
  auto result = engine.ExecuteBaselineParallel(q, options);
  ASSERT_TRUE(result.ok());
  const ParallelBaselineReport& report = result.ValueOrDie();
  EXPECT_TRUE(report.drive.cancelled);
  EXPECT_TRUE(report.drive.error.ok());
  EXPECT_EQ(report.drive.merged.num_vectors, 0u);
  EXPECT_EQ(report.drive.merged.qualifying_tuples, 0u);

  // Not cancelled: the identical call runs to completion.
  cancel.store(false);
  auto full = engine.ExecuteBaselineParallel(q, options);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.ValueOrDie().drive.cancelled);
  EXPECT_GT(full.ValueOrDie().drive.merged.num_vectors, 0u);
}

TEST(ServiceFaultsTest, FaultOptionsValidate) {
  Engine engine = MakeFaultEngine();
  const WorkloadSpec base = MakeMixedWorkload(engine);
  auto expect_invalid = [&](WorkloadSpec spec) {
    EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
              StatusCode::kInvalidArgument);
  };
  WorkloadSpec spec = base;
  spec.options.faults.transient_fault_rate = -0.1;
  expect_invalid(spec);
  spec = base;
  spec.options.faults.transient_fault_rate = 1.5;
  expect_invalid(spec);
  spec = base;
  spec.options.faults.stall_rate = 0.5;
  spec.options.faults.stall_factor = 0.5;  // a "stall" that speeds up
  expect_invalid(spec);
  spec = base;
  spec.options.retry.max_attempts = 0;
  expect_invalid(spec);
  spec = base;
  spec.options.retry.max_attempts = 3;
  spec.options.retry.backoff_base_msec = -1.0;
  expect_invalid(spec);
  spec = base;
  spec.options.retry.max_attempts = 3;
  spec.options.retry.backoff_base_msec = 8.0;
  spec.options.retry.backoff_cap_msec = 2.0;  // cap below base
  expect_invalid(spec);
  spec = base;
  spec.queries[0].sim_deadline_msec = -5.0;
  expect_invalid(spec);
  spec = base;
  spec.queries[0].sim_cancel_msec = -5.0;
  expect_invalid(spec);
}

}  // namespace
}  // namespace nipo
