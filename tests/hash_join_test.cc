#include "exec/hash_join.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

struct Fixture {
  Table build{"dim"};
  Table probe{"fact"};
  uint64_t expected_matches = 0;
  double expected_sum = 0;

  Fixture(size_t dim_rows, size_t fact_rows, double match_fraction) {
    Prng prng(1);
    std::vector<int64_t> keys(dim_rows);
    std::vector<int64_t> payload(dim_rows);
    for (size_t i = 0; i < dim_rows; ++i) {
      keys[i] = static_cast<int64_t>(i) * 3;  // sparse keys
      payload[i] = static_cast<int64_t>(i % 100);
    }
    EXPECT_TRUE(build.AddColumn("key", std::move(keys)).ok());
    EXPECT_TRUE(build.AddColumn("payload", std::move(payload)).ok());

    std::vector<int64_t> probe_keys(fact_rows);
    for (size_t i = 0; i < fact_rows; ++i) {
      if (prng.NextBool(match_fraction)) {
        const size_t dim_row = prng.NextBounded(dim_rows);
        probe_keys[i] = static_cast<int64_t>(dim_row) * 3;
        ++expected_matches;
        expected_sum += static_cast<double>(dim_row % 100);
      } else {
        probe_keys[i] = static_cast<int64_t>(dim_rows) * 3 + 1;  // no match
      }
    }
    EXPECT_TRUE(probe.AddColumn("fk", std::move(probe_keys)).ok());
  }

  HashJoinSpec Spec() const {
    HashJoinSpec spec;
    spec.build = &build;
    spec.build_key = "key";
    spec.build_payload = "payload";
    spec.probe = &probe;
    spec.probe_key = "fk";
    return spec;
  }
};

TEST(HashJoinTest, CountsAndSumsMatches) {
  Fixture fx(5'000, 50'000, 0.6);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashJoin(fx.Spec(), &pmu);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().matches, fx.expected_matches);
  EXPECT_DOUBLE_EQ(result.ValueOrDie().payload_sum, fx.expected_sum);
  EXPECT_EQ(result.ValueOrDie().build_rows, 5'000u);
  EXPECT_EQ(result.ValueOrDie().probe_rows, 50'000u);
}

TEST(HashJoinTest, NoPayloadCountsOnly) {
  Fixture fx(1'000, 10'000, 0.5);
  HashJoinSpec spec = fx.Spec();
  spec.build_payload.clear();
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashJoin(spec, &pmu);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().matches, fx.expected_matches);
  EXPECT_DOUBLE_EQ(result.ValueOrDie().payload_sum, 0.0);
}

TEST(HashJoinTest, Int32KeysSupported) {
  Table build("dim");
  ASSERT_TRUE(build.AddColumn<int32_t>("key", {1, 2, 3}).ok());
  Table probe("fact");
  ASSERT_TRUE(probe.AddColumn<int32_t>("fk", {2, 2, 3, 9}).ok());
  HashJoinSpec spec{&build, "key", "", &probe, "fk"};
  Pmu pmu;
  auto result = ExecuteHashJoin(spec, &pmu);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().matches, 3u);
}

TEST(HashJoinTest, DuplicateBuildKeysRejected) {
  Table build("dim");
  ASSERT_TRUE(build.AddColumn<int32_t>("key", {1, 1}).ok());
  Table probe("fact");
  ASSERT_TRUE(probe.AddColumn<int32_t>("fk", {1}).ok());
  HashJoinSpec spec{&build, "key", "", &probe, "fk"};
  Pmu pmu;
  EXPECT_FALSE(ExecuteHashJoin(spec, &pmu).ok());
}

TEST(HashJoinTest, ValidationErrors) {
  Table build("dim");
  ASSERT_TRUE(build.AddColumn<int32_t>("key", {1}).ok());
  ASSERT_TRUE(build.AddColumn<double>("dkey", {1.0}).ok());
  Table probe("fact");
  ASSERT_TRUE(probe.AddColumn<int32_t>("fk", {1}).ok());
  Pmu pmu;
  HashJoinSpec spec{&build, "key", "", &probe, "fk"};
  EXPECT_FALSE(ExecuteHashJoin(spec, nullptr).ok());
  HashJoinSpec no_build = spec;
  no_build.build = nullptr;
  EXPECT_FALSE(ExecuteHashJoin(no_build, &pmu).ok());
  HashJoinSpec bad_col = spec;
  bad_col.build_key = "zzz";
  EXPECT_FALSE(ExecuteHashJoin(bad_col, &pmu).ok());
  HashJoinSpec double_key = spec;
  double_key.build_key = "dkey";
  EXPECT_EQ(ExecuteHashJoin(double_key, &pmu).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(HashJoinTest, CacheCountersReflectTableSize) {
  // A build side much larger than L3 makes probes miss; a small one does
  // not. Same probe count in both runs.
  auto run = [](size_t dim_rows) {
    Fixture fx(dim_rows, 30'000, 1.0);
    Pmu pmu(HwConfig::ScaledXeon(64));  // L3 ~234 KB
    auto result = ExecuteHashJoin(fx.Spec(), &pmu);
    EXPECT_TRUE(result.ok());
    return pmu.Read().l3_misses;
  };
  const uint64_t small = run(1'000);    // table ~48 KB: fits
  const uint64_t large = run(100'000);  // table ~4.8 MB: thrashes
  EXPECT_GT(large, small * 3);
}

TEST(HashJoinTest, ProbeCostPredictionTracksSimulation) {
  Fixture fx(100'000, 50'000, 1.0);
  const HwConfig hw = HwConfig::ScaledXeon(64);
  // Isolate the probe phase: measure a build-only run (empty probe side)
  // and subtract it from the full run.
  Table empty_probe("empty");
  ASSERT_TRUE(empty_probe.AddColumn<int64_t>("fk", {}).ok());
  HashJoinSpec build_only = fx.Spec();
  build_only.probe = &empty_probe;
  Pmu pmu_build(hw), pmu_full(hw);
  ASSERT_TRUE(ExecuteHashJoin(build_only, &pmu_build).ok());
  ASSERT_TRUE(ExecuteHashJoin(fx.Spec(), &pmu_full).ok());
  const double probe_misses =
      static_cast<double>(pmu_full.Read().l3_misses) -
      static_cast<double>(pmu_build.Read().l3_misses);

  auto predicted = PredictHashJoinProbeCost(fx.Spec(), hw);
  ASSERT_TRUE(predicted.ok());
  // The algebra predicts demand misses; the simulated hierarchy adds the
  // wasted next-line prefetch per random miss (a ~2x factor the scan
  // model double-counts explicitly). Accept [1, 3].
  const double ratio = probe_misses / predicted.ValueOrDie().l3.total();
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace nipo
