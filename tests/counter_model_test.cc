#include "cost/counter_model.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

ScanShape MakeShape(double tuples, size_t preds) {
  ScanShape shape;
  shape.num_tuples = tuples;
  shape.predicate_widths.assign(preds, 4);
  shape.payload_widths = {};
  shape.predictor = PredictorConfig::Symmetric(6);
  return shape;
}

TEST(CounterModelTest, PredictsAllFourCounters) {
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterEstimate e = PredictCounters(shape, {0.5, 0.3});
  EXPECT_GT(e.branches_not_taken, 0.0);
  EXPECT_GT(e.taken_mp, 0.0);
  EXPECT_GT(e.not_taken_mp, 0.0);
  EXPECT_GT(e.l3_accesses, 0.0);
  // BNT = 1e6*0.5 + 5e5*0.3.
  EXPECT_NEAR(e.branches_not_taken, 650'000.0, 1e-6);
}

TEST(CounterModelTest, DistinguishesPermutedSelectivities) {
  // The paper's key requirement (Figure 8): (0.4, 0.2) and (0.2, 0.4)
  // must differ in at least one counter. Their BNT totals differ already
  // (0.4 + 0.08 vs 0.2 + 0.08 of n).
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterEstimate a = PredictCounters(shape, {0.4, 0.2});
  const CounterEstimate b = PredictCounters(shape, {0.2, 0.4});
  const bool differs =
      std::abs(a.branches_not_taken - b.branches_not_taken) > 1.0 ||
      std::abs(a.taken_mp - b.taken_mp) > 1.0 ||
      std::abs(a.not_taken_mp - b.not_taken_mp) > 1.0 ||
      std::abs(a.l3_accesses - b.l3_accesses) > 1.0;
  EXPECT_TRUE(differs);
}

TEST(CounterModelTest, PayloadContributesToL3Only) {
  ScanShape bare = MakeShape(1e6, 1);
  ScanShape with_payload = bare;
  with_payload.payload_widths = {8};
  const CounterEstimate a = PredictCounters(bare, {0.5});
  const CounterEstimate b = PredictCounters(with_payload, {0.5});
  EXPECT_DOUBLE_EQ(a.branches_not_taken, b.branches_not_taken);
  EXPECT_DOUBLE_EQ(a.taken_mp, b.taken_mp);
  EXPECT_LT(a.l3_accesses, b.l3_accesses);
}

TEST(CounterModelTest, DistanceZeroForIdenticalVectors) {
  const ScanShape shape = MakeShape(1e6, 3);
  const CounterEstimate e = PredictCounters(shape, {0.9, 0.5, 0.1});
  EXPECT_DOUBLE_EQ(CounterDistance(e, e), 0.0);
}

TEST(CounterModelTest, DistanceGrowsWithSelectivityGap) {
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterEstimate sampled = PredictCounters(shape, {0.5, 0.5});
  const double near_d =
      CounterDistance(sampled, PredictCounters(shape, {0.52, 0.5}));
  const double far_d =
      CounterDistance(sampled, PredictCounters(shape, {0.9, 0.5}));
  EXPECT_LT(near_d, far_d);
  EXPECT_GT(near_d, 0.0);
}

TEST(CounterModelTest, DistanceIsSymmetricEnough) {
  const ScanShape shape = MakeShape(1e5, 2);
  const CounterEstimate a = PredictCounters(shape, {0.3, 0.6});
  const CounterEstimate b = PredictCounters(shape, {0.6, 0.3});
  // Not exactly symmetric (normalization is by the first argument), but
  // both directions must be strictly positive.
  EXPECT_GT(CounterDistance(a, b), 0.0);
  EXPECT_GT(CounterDistance(b, a), 0.0);
}

class CounterModelSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CounterModelSweep, SelfDistanceIsGlobalMinimumOnGrid) {
  // For every "true" pair on a coarse grid, the objective evaluated at the
  // truth is no larger than at any other grid point -- identifiability of
  // the estimation problem on the grid.
  const double s1 = std::get<0>(GetParam());
  const double s2 = std::get<1>(GetParam());
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterEstimate sampled = PredictCounters(shape, {s1, s2});
  const double at_truth =
      CounterDistance(sampled, PredictCounters(shape, {s1, s2}));
  for (double c1 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (double c2 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double d =
          CounterDistance(sampled, PredictCounters(shape, {c1, c2}));
      EXPECT_GE(d + 1e-12, at_truth)
          << "truth=(" << s1 << "," << s2 << ") cand=(" << c1 << "," << c2
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CounterModelSweep,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

}  // namespace
}  // namespace nipo
