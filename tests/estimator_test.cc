#include "optimizer/estimator.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

ScanShape MakeShape(double tuples, size_t preds) {
  ScanShape shape;
  shape.num_tuples = tuples;
  shape.predicate_widths.assign(preds, 4);
  shape.predictor = PredictorConfig::Symmetric(6);
  return shape;
}

/// Builds a synthetic "perfect" sample by evaluating the counter model at
/// the true selectivities -- the estimator must recover them.
CounterSample PerfectSample(const ScanShape& shape,
                            const std::vector<double>& truth) {
  CounterSample s;
  s.tuples_in = shape.num_tuples;
  double out = shape.num_tuples;
  for (double p : truth) out *= p;
  s.tuples_out = out;
  s.counters = PredictCounters(shape, truth);
  return s;
}

TEST(EstimatorTest, SinglePredicateIsExact) {
  const ScanShape shape = MakeShape(1e6, 1);
  const CounterSample s = PerfectSample(shape, {0.37});
  auto est = EstimateSelectivities(shape, s, {});
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.ValueOrDie().selectivities[0], 0.37, 1e-12);
  EXPECT_EQ(est.ValueOrDie().starts_used, 0);
}

class EstimatorRecoveryTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(EstimatorRecoveryTest, RecoversTrueSelectivities) {
  const std::vector<double> truth = GetParam();
  const ScanShape shape = MakeShape(1e6, truth.size());
  const CounterSample s = PerfectSample(shape, truth);
  auto est = EstimateSelectivities(shape, s, {});
  ASSERT_TRUE(est.ok());
  const auto& got = est.ValueOrDie().selectivities;
  ASSERT_EQ(got.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(got[i], truth[i], 0.06)
        << "i=" << i << " objective=" << est.ValueOrDie().objective;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorRecoveryTest,
    ::testing::Values(std::vector<double>{0.2, 0.8},
                      std::vector<double>{0.8, 0.2},
                      std::vector<double>{0.5, 0.5},
                      std::vector<double>{0.05, 0.9},
                      std::vector<double>{0.9, 0.5, 0.1},
                      std::vector<double>{0.1, 0.5, 0.9},
                      std::vector<double>{0.33, 0.66, 0.5},
                      std::vector<double>{0.7, 0.6, 0.5, 0.4}));

TEST(EstimatorTest, OrderingIsRecoveredEvenWhenValuesAreOff) {
  // What the optimizer actually needs: the *ranking* of selectivities.
  const std::vector<double> truth = {0.9, 0.3, 0.6};
  const ScanShape shape = MakeShape(1e6, 3);
  const CounterSample s = PerfectSample(shape, truth);
  auto est = EstimateSelectivities(shape, s, {});
  ASSERT_TRUE(est.ok());
  const auto& got = est.ValueOrDie().selectivities;
  EXPECT_GT(got[0], got[2]);
  EXPECT_GT(got[2], got[1]);
}

TEST(EstimatorTest, AccessFractionsMonotone) {
  const ScanShape shape = MakeShape(1e6, 4);
  const CounterSample s = PerfectSample(shape, {0.9, 0.7, 0.5, 0.3});
  auto est = EstimateSelectivities(shape, s, {});
  ASSERT_TRUE(est.ok());
  const auto& pi = est.ValueOrDie().access_fractions;
  double prev = 1.0;
  for (double v : pi) {
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
  EXPECT_NEAR(pi.back(), s.tuples_out / s.tuples_in, 1e-9);
}

TEST(EstimatorTest, RespectsStartBudget) {
  const ScanShape shape = MakeShape(1e6, 3);
  const CounterSample s = PerfectSample(shape, {0.5, 0.5, 0.5});
  EstimatorConfig cfg;
  cfg.max_starts = 2;
  cfg.stall_limit = 100;
  auto est = EstimateSelectivities(shape, s, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(est.ValueOrDie().starts_used, 2);
}

TEST(EstimatorTest, StallLimitStopsEarly) {
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterSample s = PerfectSample(shape, {0.5, 0.5});
  EstimatorConfig cfg;
  cfg.max_starts = 100;
  cfg.stall_limit = 2;
  auto est = EstimateSelectivities(shape, s, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est.ValueOrDie().starts_used, 100);
}

TEST(EstimatorTest, BranchesOnlyCounterSetStillRecovers) {
  const std::vector<double> truth = {0.2, 0.7};
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterSample s = PerfectSample(shape, truth);
  EstimatorConfig cfg;
  cfg.counter_set = CounterSet::kBranchesOnly;
  auto est = EstimateSelectivities(shape, s, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.ValueOrDie().selectivities[0], 0.2, 0.08);
  EXPECT_NEAR(est.ValueOrDie().selectivities[1], 0.7, 0.12);
}

TEST(EstimatorTest, NoisySampleStillRanksCorrectly) {
  // 3% multiplicative noise on every counter.
  const std::vector<double> truth = {0.15, 0.85};
  const ScanShape shape = MakeShape(1e6, 2);
  CounterSample s = PerfectSample(shape, truth);
  s.counters.branches_not_taken *= 1.03;
  s.counters.taken_mp *= 0.97;
  s.counters.not_taken_mp *= 1.03;
  s.counters.l3_accesses *= 0.97;
  auto est = EstimateSelectivities(shape, s, {});
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est.ValueOrDie().selectivities[0],
            est.ValueOrDie().selectivities[1]);
}

TEST(EstimatorTest, InputValidation) {
  const ScanShape shape = MakeShape(1e6, 2);
  CounterSample s;
  s.tuples_in = 0;
  EXPECT_FALSE(EstimateSelectivities(shape, s, {}).ok());
  s.tuples_in = 100;
  s.tuples_out = 200;  // out > in
  EXPECT_FALSE(EstimateSelectivities(shape, s, {}).ok());
  ScanShape empty = MakeShape(1e6, 0);
  s.tuples_out = 10;
  EXPECT_FALSE(EstimateSelectivities(empty, s, {}).ok());
}

TEST(EstimatorTest, ObjectiveExposedForAblations) {
  const ScanShape shape = MakeShape(1e6, 2);
  const CounterEstimate sampled = PredictCounters(shape, {0.4, 0.6});
  const double at_truth =
      EstimationObjective(shape, sampled, {0.4, 0.6}, CounterSet::kAll);
  const double off =
      EstimationObjective(shape, sampled, {0.6, 0.4}, CounterSet::kAll);
  EXPECT_NEAR(at_truth, 0.0, 1e-9);
  EXPECT_GT(off, 0.0);
  // Dropping counters can only reduce the distance.
  EXPECT_LE(EstimationObjective(shape, sampled, {0.6, 0.4},
                                CounterSet::kBntOnly),
            off + 1e-12);
}

}  // namespace
}  // namespace nipo
