#include "cost/cache_model.h"

#include <gtest/gtest.h>

#include "common/prng.h"
#include "hw/cache.h"

namespace nipo {
namespace {

const ScanCacheModelConfig kCfg{};  // 64B lines, double counting on

TEST(CacheModelTest, FullScanAccessesEveryLineOnce) {
  // rho = 1: purely sequential, one L3 access per line.
  const ColumnCacheEstimate e =
      EstimateColumnCache(kCfg, 16'384.0, ScanColumnSpec{4, 1.0});
  EXPECT_NEAR(e.lines_total, 1024.0, 1e-9);
  EXPECT_NEAR(e.lines_accessed, 1024.0, 1e-9);
  EXPECT_NEAR(e.random_lines, 0.0, 1e-9);
  EXPECT_NEAR(e.l3_accesses, 1024.0, 1e-9);
}

TEST(CacheModelTest, ZeroDensityAccessesNothing) {
  const ColumnCacheEstimate e =
      EstimateColumnCache(kCfg, 16'384.0, ScanColumnSpec{4, 0.0});
  EXPECT_NEAR(e.lines_accessed, 0.0, 1e-9);
  EXPECT_NEAR(e.l3_accesses, 0.0, 1e-9);
}

TEST(CacheModelTest, TinyDensityDoubleCountsEveryTouchedLine) {
  // rho so small that touched lines are isolated: each costs ~2 accesses.
  const ColumnCacheEstimate e =
      EstimateColumnCache(kCfg, 1e7, ScanColumnSpec{4, 1e-4});
  EXPECT_GT(e.lines_accessed, 0.0);
  EXPECT_NEAR(e.l3_accesses / e.lines_accessed, 2.0, 0.01);
}

TEST(CacheModelTest, DoubleCountingToggle) {
  ScanCacheModelConfig no_double = kCfg;
  no_double.double_count_random_misses = false;
  const ScanColumnSpec col{4, 0.01};
  const double with =
      EstimateColumnCache(kCfg, 1e6, col).l3_accesses;
  const double without =
      EstimateColumnCache(no_double, 1e6, col).l3_accesses;
  EXPECT_GT(with, without);
  // Without double counting, accesses equal accessed lines exactly.
  EXPECT_NEAR(without, EstimateColumnCache(kCfg, 1e6, col).lines_accessed,
              1e-9);
}

TEST(CacheModelTest, SaturationAboveTwentyPercentFor16ValueLines) {
  // Paper Section 3.1: for int32 columns (16 values/line), beyond ~20%
  // selectivity every line is touched, so accesses stay flat.
  const double at_25 =
      EstimateColumnCache(kCfg, 1e6, ScanColumnSpec{4, 0.25}).l3_accesses;
  const double at_60 =
      EstimateColumnCache(kCfg, 1e6, ScanColumnSpec{4, 0.60}).l3_accesses;
  const double at_100 =
      EstimateColumnCache(kCfg, 1e6, ScanColumnSpec{4, 1.0}).l3_accesses;
  EXPECT_NEAR(at_25 / at_100, 1.0, 0.05);
  EXPECT_NEAR(at_60 / at_100, 1.0, 0.01);
}

TEST(CacheModelTest, WiderValuesTouchMoreLines) {
  const double narrow =
      EstimateColumnCache(kCfg, 1e6, ScanColumnSpec{4, 1.0}).l3_accesses;
  const double wide =
      EstimateColumnCache(kCfg, 1e6, ScanColumnSpec{8, 1.0}).l3_accesses;
  EXPECT_NEAR(wide / narrow, 2.0, 1e-9);
}

TEST(CacheModelTest, BuildScanColumnsChainsAccessFractions) {
  const auto cols = BuildScanColumns({0.5, 0.2}, {4, 4}, {8});
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_DOUBLE_EQ(cols[0].access_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cols[1].access_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cols[2].access_fraction, 0.1);  // payload: survivors
  EXPECT_EQ(cols[2].value_width, 8u);
}

TEST(CacheModelTest, ScanTotalIsSumOfColumns) {
  const auto cols = BuildScanColumns({0.5, 0.5}, {4, 4}, {});
  double manual = 0;
  for (const auto& c : cols) {
    manual += EstimateColumnCache(kCfg, 1e6, c).l3_accesses;
  }
  EXPECT_NEAR(EstimateScanL3Accesses(kCfg, 1e6, cols), manual, 1e-9);
}

// Cross-validation against the simulated hierarchy: the analytic scan
// model must predict the simulator's L3 access counter within a few
// percent across the selectivity sweep.
class CacheModelVsSimulatorTest : public ::testing::TestWithParam<double> {};

TEST_P(CacheModelVsSimulatorTest, PredictsSimulatedL3Accesses) {
  const double rho = GetParam();
  const size_t kTuples = 200'000;
  // Simulate: conditional scan of an int32 column; tuples chosen i.i.d.
  CacheHierarchy caches(CacheGeometry{8 * 1024, 8, 64},
                        CacheGeometry{64 * 1024, 8, 64},
                        CacheGeometry{1024 * 1024, 16, 64},
                        /*enable_prefetcher=*/true);
  Prng prng(5);
  const uint64_t base = 1u << 30;  // arbitrary aligned base address
  for (size_t i = 0; i < kTuples; ++i) {
    if (prng.NextBool(rho)) {
      caches.Access(base + i * 4, 4);
    }
  }
  const double simulated =
      static_cast<double>(caches.stats().l3_accesses);
  const double predicted =
      EstimateColumnCache(kCfg, static_cast<double>(kTuples),
                          ScanColumnSpec{4, rho})
          .l3_accesses;
  if (rho == 0.0) {
    EXPECT_EQ(simulated, 0.0);
    return;
  }
  // The model treats every accessed-line-after-a-gap as a full wasted
  // prefetch; short runs of adjacent accessed lines make that a slight
  // over-estimate in the low-density regime, so allow 15%.
  EXPECT_NEAR(simulated / predicted, 1.0, 0.15)
      << "rho=" << rho << " simulated=" << simulated
      << " predicted=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheModelVsSimulatorTest,
                         ::testing::Values(0.0, 0.005, 0.02, 0.05, 0.1, 0.2,
                                           0.35, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace nipo
