#include "exec/parallel_driver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/prng.h"
#include "core/engine.h"

// Determinism and equivalence coverage for sharded execution (DESIGN.md
// "Parallel execution"):
//  - num_threads = 1 reproduces VectorDriver / ExecuteBaseline
//    bit-identically (counters, aggregate, simulated_msec);
//  - num_threads in {2, 4, 8} agree with the single-threaded result on
//    qualifying_tuples and the (bitwise) aggregate, run after run, under
//    work-stealing schedules;
//  - the merge interleaves per-morsel samples deterministically by index.
// ci/check.sh runs this suite twice, with NIPO_TEST_THREADS=1 and =8; the
// env var *replaces* the default sweep below, so the two CI passes
// exercise genuinely different configurations (single-shard only, then
// 8-shard only).

namespace nipo {
namespace {

std::vector<size_t> TestThreadCounts() {
  if (const char* env = std::getenv("NIPO_TEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return {static_cast<size_t>(parsed)};
  }
  return {1, 2, 4, 8};
}

std::unique_ptr<Table> MakeTable(const std::string& name, size_t n,
                                 uint64_t seed = 1) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n), c(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    c[i] = static_cast<int32_t>(prng.NextBounded(100));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t->AddColumn("c", std::move(c)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

// Worst-first order: the most selective predicate (c < 2) runs last.
QuerySpec MakeQuery() {
  QuerySpec q;
  q.table = "t";
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 90.0}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, 50.0}),
           OperatorSpec::Predicate({"c", CompareOp::kLt, 2.0})};
  q.payload_columns = {"payload"};
  return q;
}

Engine MakeEngine(size_t rows) {
  Engine engine(HwConfig::ScaledXeon(8));
  EXPECT_TRUE(engine.RegisterTable(MakeTable("t", rows)).ok());
  return engine;
}

TEST(ParallelDriverTest, SingleThreadIsBitIdenticalToVectorDriver) {
  Table table("t");
  Prng prng(3);
  std::vector<int32_t> a(50'000);
  for (auto& v : a) v = static_cast<int32_t>(prng.NextBounded(100));
  ASSERT_TRUE(table.AddColumn("a", std::move(a)).ok());
  const std::vector<OperatorSpec> ops = {
      OperatorSpec::Predicate({"a", CompareOp::kLt, 30.0})};

  Pmu reference_pmu(HwConfig::ScaledXeon(8));
  auto reference =
      PipelineExecutor::Compile(table, ops, {}, &reference_pmu);
  ASSERT_TRUE(reference.ok());
  VectorDriver vector_driver(reference.ValueOrDie().get(), 4'096);
  const DriveResult expected = vector_driver.Run();

  ParallelConfig config;
  config.num_threads = 1;
  config.morsel_size = 4'096;
  ParallelDriver driver(
      Pmu(HwConfig::ScaledXeon(8)),
      [&](Pmu* pmu) { return PipelineExecutor::Compile(table, ops, {}, pmu); },
      config);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok());
  const ParallelDriveResult& par = result.ValueOrDie();

  EXPECT_EQ(par.merged.total, expected.total);  // every counter, exactly
  EXPECT_EQ(par.merged.input_tuples, expected.input_tuples);
  EXPECT_EQ(par.merged.qualifying_tuples, expected.qualifying_tuples);
  EXPECT_EQ(par.merged.aggregate, expected.aggregate);  // bitwise
  EXPECT_EQ(par.merged.simulated_msec, expected.simulated_msec);
  EXPECT_EQ(par.merged.num_vectors, expected.num_vectors);
  EXPECT_EQ(par.num_morsels, expected.num_vectors);
  ASSERT_EQ(par.workers.size(), 1u);
  EXPECT_EQ(par.workers[0].morsels, expected.num_vectors);
  EXPECT_EQ(par.workers[0].steals, 0u);
}

TEST(ParallelDriverTest, EngineSingleThreadMatchesExecuteBaseline) {
  Engine engine = MakeEngine(60'000);
  auto base = engine.ExecuteBaseline(MakeQuery(), 2'048);
  ASSERT_TRUE(base.ok());
  ParallelOptions options;
  options.num_threads = 1;
  options.morsel_size = 2'048;
  auto par = engine.ExecuteBaselineParallel(MakeQuery(), options);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par.ValueOrDie().drive.merged.total,
            base.ValueOrDie().drive.total);
  EXPECT_EQ(par.ValueOrDie().drive.merged.aggregate,
            base.ValueOrDie().drive.aggregate);
  EXPECT_EQ(par.ValueOrDie().drive.merged.simulated_msec,
            base.ValueOrDie().drive.simulated_msec);
  EXPECT_EQ(par.ValueOrDie().order, base.ValueOrDie().order);
}

TEST(ParallelDriverTest, ThreadCountsAgreeOnResultsAcrossRuns) {
  Engine engine = MakeEngine(60'000);
  auto base = engine.ExecuteBaseline(MakeQuery(), 2'048);
  ASSERT_TRUE(base.ok());
  const uint64_t expected_qualifying = base.ValueOrDie().drive.qualifying_tuples;
  const double expected_aggregate = base.ValueOrDie().drive.aggregate;
  for (size_t threads : TestThreadCounts()) {
    for (int run = 0; run < 2; ++run) {
      ParallelOptions options;
      options.num_threads = threads;
      options.morsel_size = 2'048;
      auto par = engine.ExecuteBaselineParallel(MakeQuery(), options);
      ASSERT_TRUE(par.ok());
      const ParallelDriveResult& drive = par.ValueOrDie().drive;
      EXPECT_EQ(drive.merged.qualifying_tuples, expected_qualifying)
          << threads << " threads, run " << run;
      // The morsel-index-ordered merge makes the floating-point sum
      // bit-stable across schedules and thread counts.
      EXPECT_EQ(drive.merged.aggregate, expected_aggregate)
          << threads << " threads, run " << run;
      EXPECT_EQ(drive.merged.input_tuples, 60'000u);
      // Work conservation: every morsel executed exactly once.
      uint64_t morsels = 0;
      for (const WorkerStats& w : drive.workers) morsels += w.morsels;
      EXPECT_EQ(morsels, drive.num_morsels);
    }
  }
}

TEST(ParallelDriverTest, SamplesInterleaveDeterministicallyByMorselIndex) {
  Engine engine = MakeEngine(30'000);
  auto table = engine.GetTable("t");
  ASSERT_TRUE(table.ok());
  const QuerySpec query = MakeQuery();
  ParallelConfig config;
  config.num_threads = 4;
  config.morsel_size = 1'024;
  config.sample_counters = true;
  ParallelDriver driver(
      engine.NewMachine(),
      [&](Pmu* pmu) {
        return PipelineExecutor::Compile(*table.ValueOrDie(), query.ops,
                                         query.payload_columns, pmu);
      },
      config);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok());
  const ParallelDriveResult& par = result.ValueOrDie();
  ASSERT_EQ(par.samples.size(), par.num_morsels);
  PmuCounters event_sum;
  uint64_t tuple_sum = 0;
  for (size_t m = 0; m < par.samples.size(); ++m) {
    EXPECT_EQ(par.samples[m].sample.vector_index, m);
    EXPECT_LT(par.samples[m].worker_id, config.num_threads);
    EXPECT_EQ(par.samples[m].order_version, 0u);  // no hook, no broadcasts
    event_sum += par.samples[m].sample.counters;
    tuple_sum += par.samples[m].sample.result.input_tuples;
  }
  EXPECT_EQ(tuple_sum, 30'000u);
  // Event counters (not cycles: the read-pair charges land partly outside
  // the per-morsel windows) sum exactly to the merged totals.
  EXPECT_EQ(event_sum.branches, par.merged.total.branches);
  EXPECT_EQ(event_sum.branches_not_taken,
            par.merged.total.branches_not_taken);
  EXPECT_EQ(event_sum.l3_accesses, par.merged.total.l3_accesses);
  EXPECT_EQ(event_sum.instructions, par.merged.total.instructions);
}

TEST(ParallelDriverTest, HookBroadcastReachesAllWorkers) {
  Engine engine = MakeEngine(40'000);
  auto table = engine.GetTable("t");
  ASSERT_TRUE(table.ok());
  const QuerySpec query = MakeQuery();
  ParallelConfig config;
  config.num_threads = 4;
  config.morsel_size = 1'024;
  bool broadcast_sent = false;
  ParallelDriver driver(
      engine.NewMachine(),
      [&](Pmu* pmu) {
        return PipelineExecutor::Compile(*table.ValueOrDie(), query.ops,
                                         query.payload_columns, pmu);
      },
      config);
  auto result =
      driver.Run(std::nullopt,
                 [&](const MorselRecord& record)
                     -> std::optional<std::vector<size_t>> {
                   if (!broadcast_sent && record.sample.vector_index >= 3) {
                     broadcast_sent = true;
                     return std::vector<size_t>{2, 1, 0};
                   }
                   return std::nullopt;
                 });
  ASSERT_TRUE(result.ok());
  const ParallelDriveResult& par = result.ValueOrDie();
  EXPECT_TRUE(broadcast_sent);
  // Late morsels ran under the broadcast order; results are unaffected.
  uint64_t new_order_morsels = 0;
  for (const MorselRecord& record : par.samples) {
    if (record.order_version == 1) ++new_order_morsels;
  }
  EXPECT_GT(new_order_morsels, 0u);
  auto base = engine.ExecuteBaseline(MakeQuery(), 1'024);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(par.merged.qualifying_tuples,
            base.ValueOrDie().drive.qualifying_tuples);
  EXPECT_EQ(par.merged.aggregate, base.ValueOrDie().drive.aggregate);
}

TEST(ParallelDriverTest, ProgressiveParallelMatchesBaselineResults) {
  Engine engine = MakeEngine(120'000);
  auto base = engine.ExecuteBaseline(MakeQuery(), 2'048);
  ASSERT_TRUE(base.ok());
  for (size_t threads : TestThreadCounts()) {
    ProgressiveConfig config;
    config.vector_size = 2'048;
    config.reopt_interval = 2;
    ParallelOptions options;
    options.num_threads = threads;
    auto prog = engine.ExecuteProgressiveParallel(MakeQuery(), config,
                                                  options);
    ASSERT_TRUE(prog.ok());
    EXPECT_EQ(prog.ValueOrDie().drive.merged.qualifying_tuples,
              base.ValueOrDie().drive.qualifying_tuples)
        << threads << " threads";
    EXPECT_EQ(prog.ValueOrDie().drive.merged.aggregate,
              base.ValueOrDie().drive.aggregate)
        << threads << " threads";
  }
}

TEST(ParallelDriverTest, ProgressiveParallelReordersWorstFirstOrder) {
  Engine engine = MakeEngine(120'000);
  ProgressiveConfig config;
  config.vector_size = 2'048;
  config.reopt_interval = 2;
  ParallelOptions options;
  options.num_threads = 1;  // deterministic coordinator schedule
  auto prog =
      engine.ExecuteProgressiveParallel(MakeQuery(), config, options);
  ASSERT_TRUE(prog.ok());
  const ParallelProgressiveReport& report = prog.ValueOrDie();
  // The query is worst-first (c, the ~2% predicate, evaluated last); the
  // merged-window coordinator must discover and broadcast a better order.
  ASSERT_FALSE(report.changes.empty());
  ASSERT_EQ(report.final_order.size(), 3u);
  EXPECT_EQ(report.final_order.front(), 2u);  // most selective first
  // Progressive beats the worst-first fixed order on machine time.
  auto base = engine.ExecuteBaseline(MakeQuery(), 2'048);
  ASSERT_TRUE(base.ok());
  EXPECT_LT(report.drive.merged.simulated_msec,
            base.ValueOrDie().drive.simulated_msec);
}

TEST(ParallelDriverTest, ProgressiveSingleThreadIsDeterministic) {
  Engine engine = MakeEngine(80'000);
  ProgressiveConfig config;
  config.vector_size = 2'048;
  config.reopt_interval = 2;
  ParallelOptions options;
  options.num_threads = 1;
  auto a = engine.ExecuteProgressiveParallel(MakeQuery(), config, options);
  auto b = engine.ExecuteProgressiveParallel(MakeQuery(), config, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().drive.merged.total,
            b.ValueOrDie().drive.merged.total);
  EXPECT_EQ(a.ValueOrDie().final_order, b.ValueOrDie().final_order);
  EXPECT_EQ(a.ValueOrDie().changes.size(), b.ValueOrDie().changes.size());
}

TEST(ParallelDriverTest, ErrorsPropagate) {
  Engine engine = MakeEngine(1'000);
  ParallelOptions options;
  options.num_threads = 0;
  EXPECT_EQ(
      engine.ExecuteBaselineParallel(MakeQuery(), options).status().code(),
      StatusCode::kInvalidArgument);
  options.num_threads = 2;
  options.morsel_size = 0;
  EXPECT_EQ(
      engine.ExecuteBaselineParallel(MakeQuery(), options).status().code(),
      StatusCode::kInvalidArgument);
  options.morsel_size = 1'024;
  QuerySpec bad = MakeQuery();
  bad.table = "missing";
  EXPECT_EQ(engine.ExecuteBaselineParallel(bad, options).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(engine
                   .ExecuteBaselineParallel(MakeQuery(), options,
                                            std::vector<size_t>{0, 0, 0})
                   .ok());
  ProgressiveConfig config;
  config.vector_size = 0;
  EXPECT_EQ(engine.ExecuteProgressiveParallel(MakeQuery(), config, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nipo
