#include "storage/column.h"

#include <gtest/gtest.h>

namespace nipo {
namespace {

TEST(ColumnTest, TypedConstructionAndAccess) {
  Column<int32_t> col("c", {1, 2, 3});
  EXPECT_EQ(col.name(), "c");
  EXPECT_EQ(col.type(), DataType::kInt32);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0], 1);
  EXPECT_EQ(col[2], 3);
  EXPECT_EQ(col.value_width(), 4u);
}

TEST(ColumnTest, AppendAndResize) {
  Column<int64_t> col("c");
  EXPECT_EQ(col.size(), 0u);
  col.Append(10);
  col.Append(20);
  EXPECT_EQ(col.size(), 2u);
  col.Resize(5);
  EXPECT_EQ(col.size(), 5u);
  EXPECT_EQ(col[4], 0);
}

TEST(ColumnTest, DataPointsAtFirstValue) {
  Column<double> col("c", {1.5, 2.5});
  const double* data = static_cast<const double*>(col.data());
  EXPECT_DOUBLE_EQ(data[0], 1.5);
  EXPECT_DOUBLE_EQ(data[1], 2.5);
}

TEST(ColumnTest, SpanViewReflectsValues) {
  Column<int32_t> col("c", {7, 8});
  auto span = col.values();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[1], 8);
}

TEST(DataTypeTest, WidthsAndNames) {
  EXPECT_EQ(DataTypeWidth(DataType::kInt32), 4u);
  EXPECT_EQ(DataTypeWidth(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeWidth(DataType::kDouble), 8u);
  EXPECT_EQ(DataTypeToString(DataType::kInt32), "int32");
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeToString(DataType::kDouble), "double");
}

TEST(AsColumnTest, CorrectTypeDowncasts) {
  Column<int32_t> col("c", {1});
  const ColumnBase* base = &col;
  auto typed = AsColumn<int32_t>(base);
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ((*typed.ValueOrDie())[0], 1);
}

TEST(AsColumnTest, WrongTypeFails) {
  Column<int32_t> col("c", {1});
  auto typed = AsColumn<double>(&col);
  EXPECT_FALSE(typed.ok());
  EXPECT_EQ(typed.status().code(), StatusCode::kTypeMismatch);
}

TEST(AsColumnTest, NullColumnFails) {
  auto typed = AsColumn<int32_t>(nullptr);
  EXPECT_FALSE(typed.ok());
  EXPECT_EQ(typed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nipo
