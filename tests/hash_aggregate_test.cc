#include "exec/hash_aggregate.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

struct Fixture {
  Table table{"t"};
  std::map<int64_t, std::pair<uint64_t, int64_t>> expected;  // count, sum
  uint64_t expected_pass = 0;

  Fixture(size_t n, int32_t num_groups, double filter_fraction) {
    Prng prng(1);
    std::vector<int32_t> group(n), filter(n);
    std::vector<int64_t> value(n);
    for (size_t i = 0; i < n; ++i) {
      group[i] = static_cast<int32_t>(prng.NextBounded(num_groups));
      filter[i] = static_cast<int32_t>(prng.NextBounded(1000));
      value[i] = static_cast<int64_t>(prng.NextBounded(100));
      if (filter[i] < filter_fraction * 1000) {
        ++expected_pass;
        auto& [count, sum] = expected[group[i]];
        ++count;
        sum += value[i];
      }
    }
    EXPECT_TRUE(table.AddColumn("g", std::move(group)).ok());
    EXPECT_TRUE(table.AddColumn("f", std::move(filter)).ok());
    EXPECT_TRUE(table.AddColumn("v", std::move(value)).ok());
  }

  HashAggregateSpec Spec(double filter_fraction) const {
    HashAggregateSpec spec;
    spec.table = &table;
    spec.group_column = "g";
    spec.filters = {
        PredicateSpec{"f", CompareOp::kLt, filter_fraction * 1000}};
    spec.aggregates = {AggregateSpec{"v"}};
    return spec;
  }
};

TEST(HashAggregateTest, GroupsCountsAndSums) {
  Fixture fx(50'000, 8, 0.5);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashAggregate(fx.Spec(0.5), &pmu);
  ASSERT_TRUE(result.ok());
  const HashAggregateResult& r = result.ValueOrDie();
  EXPECT_EQ(r.input_rows, 50'000u);
  EXPECT_EQ(r.passed_filter, fx.expected_pass);
  ASSERT_EQ(r.groups.size(), fx.expected.size());
  for (const GroupResult& g : r.groups) {
    auto it = fx.expected.find(g.group);
    ASSERT_NE(it, fx.expected.end());
    EXPECT_EQ(g.count, it->second.first);
    ASSERT_EQ(g.sums.size(), 1u);
    EXPECT_EQ(g.sums[0], it->second.second);
  }
}

TEST(HashAggregateTest, GroupsSortedByKey) {
  Fixture fx(10'000, 16, 1.0);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashAggregate(fx.Spec(1.0), &pmu);
  ASSERT_TRUE(result.ok());
  const auto& groups = result.ValueOrDie().groups;
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_LT(groups[i - 1].group, groups[i].group);
  }
}

TEST(HashAggregateTest, NoFiltersAggregateEverything) {
  Fixture fx(5'000, 4, 1.0);
  HashAggregateSpec spec = fx.Spec(1.0);
  spec.filters.clear();
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashAggregate(spec, &pmu);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().passed_filter, 5'000u);
  uint64_t total = 0;
  for (const GroupResult& g : result.ValueOrDie().groups) total += g.count;
  EXPECT_EQ(total, 5'000u);
}

TEST(HashAggregateTest, MultipleAggregates) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int32_t>("g", {0, 0, 1}).ok());
  ASSERT_TRUE(t.AddColumn<int64_t>("x", {10, 20, 30}).ok());
  ASSERT_TRUE(t.AddColumn<int32_t>("y", {1, 2, 3}).ok());
  HashAggregateSpec spec;
  spec.table = &t;
  spec.group_column = "g";
  spec.aggregates = {AggregateSpec{"x"}, AggregateSpec{"y"}};
  Pmu pmu;
  auto result = ExecuteHashAggregate(spec, &pmu);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.ValueOrDie().groups.size(), 2u);
  EXPECT_EQ(result.ValueOrDie().groups[0].sums,
            (std::vector<int64_t>{30, 3}));
  EXPECT_EQ(result.ValueOrDie().groups[1].sums,
            (std::vector<int64_t>{30, 3}));
}

TEST(HashAggregateTest, FilterShortCircuits) {
  // A zero-selectivity filter means no groups at all.
  Fixture fx(5'000, 4, 1.0);
  HashAggregateSpec spec = fx.Spec(1.0);
  spec.filters = {PredicateSpec{"f", CompareOp::kLt, -1.0}};
  Pmu pmu;
  auto result = ExecuteHashAggregate(spec, &pmu);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().passed_filter, 0u);
  EXPECT_TRUE(result.ValueOrDie().groups.empty());
}

TEST(HashAggregateTest, BranchCountersReflectFilter) {
  Fixture fx(20'000, 4, 0.3);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto result = ExecuteHashAggregate(fx.Spec(0.3), &pmu);
  ASSERT_TRUE(result.ok());
  const PmuCounters c = pmu.Read();
  // Filter BNT = passing rows; back-edge always taken.
  EXPECT_EQ(c.branches_not_taken, result.ValueOrDie().passed_filter);
  EXPECT_EQ(c.branches, 2u * 20'000u);
}

TEST(HashAggregateTest, ValidationErrors) {
  Fixture fx(10, 2, 1.0);
  Pmu pmu;
  EXPECT_FALSE(ExecuteHashAggregate(fx.Spec(1.0), nullptr).ok());
  HashAggregateSpec no_table = fx.Spec(1.0);
  no_table.table = nullptr;
  EXPECT_FALSE(ExecuteHashAggregate(no_table, &pmu).ok());
  HashAggregateSpec bad_group = fx.Spec(1.0);
  bad_group.group_column = "zzz";
  EXPECT_FALSE(ExecuteHashAggregate(bad_group, &pmu).ok());
  HashAggregateSpec bad_agg = fx.Spec(1.0);
  bad_agg.aggregates = {AggregateSpec{"zzz"}};
  EXPECT_FALSE(ExecuteHashAggregate(bad_agg, &pmu).ok());
}

TEST(HashAggregateTest, DoubleGroupColumnRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<double>("g", {0.5}).ok());
  HashAggregateSpec spec;
  spec.table = &t;
  spec.group_column = "g";
  Pmu pmu;
  EXPECT_EQ(ExecuteHashAggregate(spec, &pmu).status().code(),
            StatusCode::kTypeMismatch);
}

}  // namespace
}  // namespace nipo
