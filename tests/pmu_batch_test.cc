/// \file pmu_batch_test.cc
/// Differential tests of the batched event-reporting layer (DESIGN.md
/// "Batched simulation"): for every run-reporting API and for whole
/// executors, the kScalar and kBatched modes of otherwise identical
/// machines must produce bit-identical PmuCounters. Also covers the
/// closed-form BranchPredictor::ObserveRun, the power-of-two set-count
/// normalization, the MRU lookup fast path, and HashTableStats windows.

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/hash_table.h"
#include "hw/pmu.h"

namespace nipo {
namespace {

/// Two identically configured machines, one per reporting mode.
struct ModePair {
  Pmu scalar;
  Pmu batched;

  explicit ModePair(HwConfig cfg = HwConfig::ScaledXeon(32))
      : scalar(cfg), batched(cfg) {
    scalar.set_reporting_mode(ReportingMode::kScalar);
    batched.set_reporting_mode(ReportingMode::kBatched);
  }

  void ExpectIdentical(const char* what) {
    const PmuCounters a = scalar.Read();
    const PmuCounters b = batched.Read();
    EXPECT_EQ(a, b) << what << "\nscalar:  " << a.ToString()
                    << "\nbatched: " << b.ToString();
    // The full cache-level hit/miss books must agree too, not just the
    // PmuCounters projection: future traffic depends on them.
    EXPECT_EQ(scalar.caches().l1().hits(), batched.caches().l1().hits());
    EXPECT_EQ(scalar.caches().l1().misses(), batched.caches().l1().misses());
    EXPECT_EQ(scalar.caches().l2().hits(), batched.caches().l2().hits());
    EXPECT_EQ(scalar.caches().l3().hits(), batched.caches().l3().hits());
  }
};

TEST(ObserveRunTest, MatchesScalarObserveForAllConfigsStatesAndLengths) {
  for (const PredictorConfig cfg :
       {PredictorConfig::Symmetric(2), PredictorConfig::Symmetric(4),
        PredictorConfig::Symmetric(6), PredictorConfig::Symmetric(8),
        PredictorConfig::PlusOneTaken(5), PredictorConfig::PlusOneNotTaken(5),
        PredictorConfig::PlusOneTaken(7)}) {
    for (int start = 0; start < cfg.num_states; ++start) {
      for (const bool taken : {false, true}) {
        for (const uint64_t n : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull}) {
          BranchPredictor loop(cfg), closed(cfg);
          loop.EnsureSites(1);
          closed.EnsureSites(1);
          // Drive both to the same start state.
          while (loop.state(0) != start) {
            loop.Observe(0, loop.state(0) < start);
            closed.Observe(0, closed.state(0) < start);
          }
          uint64_t loop_mispredictions = 0;
          for (uint64_t i = 0; i < n; ++i) {
            if (loop.Observe(0, taken).mispredicted) ++loop_mispredictions;
          }
          EXPECT_EQ(closed.ObserveRun(0, taken, n), loop_mispredictions)
              << "states=" << cfg.num_states << " nts=" << cfg.not_taken_states
              << " start=" << start << " taken=" << taken << " n=" << n;
          EXPECT_EQ(closed.state(0), loop.state(0));
        }
      }
    }
  }
}

TEST(PmuBatchTest, BranchRunsIdenticalAcrossModes) {
  ModePair m;
  m.scalar.EnsureBranchSites(3);
  m.batched.EnsureBranchSites(3);
  Prng prng(7);
  for (int i = 0; i < 500; ++i) {
    const size_t site = prng.NextBounded(3);
    const bool taken = prng.NextBool(0.4);
    const uint64_t n = 1 + prng.NextBounded(20);
    m.scalar.OnBranchRun(site, taken, n);
    m.batched.OnBranchRun(site, taken, n);
  }
  m.ExpectIdentical("mixed branch runs");
}

TEST(PmuBatchTest, SequentialLoadsIdenticalAcrossModes) {
  // Aligned 4- and 8-byte elements (the column fast path) and 24-byte
  // line-straddling elements (the hash-slot path), cold and warm.
  std::vector<int64_t> data(1 << 16);
  for (const uint32_t width : {4u, 8u, 24u}) {
    ModePair m;
    for (int pass = 0; pass < 2; ++pass) {
      m.scalar.OnSequentialLoads(data.data(), width,
                                 data.size() * 8 / width - 1);
      m.batched.OnSequentialLoads(data.data(), width,
                                  data.size() * 8 / width - 1);
    }
    m.ExpectIdentical("sequential loads");
  }
}

TEST(PmuBatchTest, UnalignedBaseSequentialLoadsIdenticalAcrossModes) {
  std::vector<int64_t> data(1 << 12);
  ModePair m;
  const uint8_t* base = reinterpret_cast<const uint8_t*>(data.data()) + 2;
  m.scalar.OnSequentialLoads(base, 4, 2'000);
  m.batched.OnSequentialLoads(base, 4, 2'000);
  m.ExpectIdentical("unaligned-base sequential loads");
}

TEST(PmuBatchTest, GatherLoadsIdenticalAcrossModes) {
  std::vector<int32_t> data(1 << 16);
  Prng prng(13);
  for (const double density : {0.02, 0.3, 0.95}) {
    // Sorted selection vectors (selective scan survivors)...
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < data.size(); ++r) {
      if (prng.NextBool(density)) rows.push_back(r);
    }
    ModePair m;
    m.scalar.OnGatherLoads(data.data(), 4, rows.data(), rows.size());
    m.batched.OnGatherLoads(data.data(), 4, rows.data(), rows.size());
    // ...and random probe-key gathers with duplicates.
    std::vector<uint32_t> keys(4'096);
    for (uint32_t& k : keys) {
      k = static_cast<uint32_t>(prng.NextBounded(data.size()));
    }
    m.scalar.OnGatherLoads(data.data(), 4, keys.data(), keys.size());
    m.batched.OnGatherLoads(data.data(), 4, keys.data(), keys.size());
    m.ExpectIdentical("gather loads");
  }
}

TEST(PmuBatchTest, InterleavedTrafficIdenticalAcrossModes) {
  // Runs interrupted by scalar one-off events: coalescing state must not
  // leak across calls.
  std::vector<int32_t> a(1 << 14), b(1 << 14);
  ModePair m;
  m.scalar.EnsureBranchSites(2);
  m.batched.EnsureBranchSites(2);
  Prng prng(29);
  for (int i = 0; i < 200; ++i) {
    const uint64_t offset = prng.NextBounded(a.size() - 512);
    const uint64_t n = 1 + prng.NextBounded(512);
    const uint64_t stray = prng.NextBounded(b.size());
    for (Pmu* pmu : {&m.scalar, &m.batched}) {
      pmu->OnSequentialLoads(a.data() + offset, 4, n);
      pmu->OnLoad(b.data() + stray, 4);
      pmu->OnBranchRun(i % 2, i % 3 == 0, 1 + i % 5);
      pmu->OnInstructions(3);
    }
  }
  m.ExpectIdentical("interleaved traffic");
}

TEST(PmuBatchTest, CounterWindowsIdenticalAcrossModes) {
  std::vector<int32_t> data(1 << 14);
  ModePair m;
  for (Pmu* pmu : {&m.scalar, &m.batched}) {
    pmu->OnSequentialLoads(data.data(), 4, 10'000);
    pmu->ResetCounters();  // window boundary with warm caches
    pmu->OnSequentialLoads(data.data(), 4, 10'000);
  }
  m.ExpectIdentical("post-reset warm window");
  EXPECT_EQ(m.scalar.Read().l1_accesses, 10'000u);
}

TEST(PmuBatchTest, HashTableSlotRunsIdenticalAcrossModes) {
  // Probe-chain-shaped traffic over a shared buffer: short sequential
  // runs of 24-byte line-straddling elements at random offsets — exactly
  // what ReportChain emits — must coalesce without counter drift.
  struct FakeSlot {
    int64_t key, value;
    bool occupied;
  };
  static_assert(sizeof(FakeSlot) == 24);
  std::vector<FakeSlot> slots(4'096);
  ModePair m;
  Prng prng(5);
  for (int i = 0; i < 20'000; ++i) {
    const size_t index = prng.NextBounded(slots.size());
    const size_t length =
        std::min(1 + prng.NextBounded(6), slots.size() - index);
    m.scalar.OnSequentialLoads(&slots[index], sizeof(FakeSlot), length);
    m.batched.OnSequentialLoads(&slots[index], sizeof(FakeSlot), length);
  }
  m.ExpectIdentical("hash-slot chain runs");
}

TEST(PmuBatchTest, HashTableTrafficIdenticalAcrossModes) {
  // The simulated cache hashes real addresses, so the two tables must
  // occupy the same memory for their counter streams to be comparable:
  // run them scoped and sequentially (the allocator reuses the freed
  // block) and skip — rather than fail spuriously — if it does not.
  Prng op_prng(5);
  struct Op {
    int kind;
    int64_t key;
  };
  std::vector<Op> ops(3'000);
  for (size_t i = 0; i < ops.size(); ++i) {
    ops[i] = {static_cast<int>(op_prng.NextBounded(3)),
              static_cast<int64_t>(op_prng.NextBounded(4'000))};
  }
  ModePair m;
  auto run = [&ops](Pmu* pmu, const void** base) {
    InstrumentedHashTable table(2'000, pmu);
    *base = table.slots_base();
    int64_t i = 0, v = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          (void)table.Insert(op.key, i++);
          break;
        case 1:
          (void)table.Lookup(op.key, &v);
          break;
        default:
          (void)table.Accumulate(op.key, 1);
      }
    }
    return table.stats();
  };
  const void* scalar_base = nullptr;
  const void* batched_base = nullptr;
  const HashTableStats scalar_stats = run(&m.scalar, &scalar_base);
  const HashTableStats batched_stats = run(&m.batched, &batched_base);
  EXPECT_EQ(scalar_stats.slot_touches, batched_stats.slot_touches);
  EXPECT_EQ(scalar_stats.operations, batched_stats.operations);
  if (scalar_base != batched_base) {
    GTEST_SKIP() << "allocator did not reuse the slot array address; "
                    "cache counters are not comparable in this run";
  }
  m.ExpectIdentical("hash table probe chains");
}

TEST(PmuBatchTest, HashJoinIdenticalAcrossModes) {
  Table build("dim"), probe("fact");
  Prng prng(11);
  std::vector<int64_t> keys(3'000), payload(3'000), fks(40'000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i) * 5;
    payload[i] = static_cast<int64_t>(i % 97);
  }
  for (int64_t& fk : fks) {
    fk = static_cast<int64_t>(prng.NextBounded(2 * keys.size())) * 5 / 2;
  }
  ASSERT_TRUE(build.AddColumn("key", std::move(keys)).ok());
  ASSERT_TRUE(build.AddColumn("payload", std::move(payload)).ok());
  ASSERT_TRUE(probe.AddColumn("fk", std::move(fks)).ok());
  HashJoinSpec spec{&build, "key", "payload", &probe, "fk"};

  // The two executions run sequentially, so the join's internal hash
  // table reuses the same freed allocation and the simulated addresses —
  // hence the cache counters — line up.
  ModePair m;
  auto scalar_result = ExecuteHashJoin(spec, &m.scalar);
  auto batched_result = ExecuteHashJoin(spec, &m.batched);
  ASSERT_TRUE(scalar_result.ok() && batched_result.ok());
  EXPECT_EQ(scalar_result.ValueOrDie().matches,
            batched_result.ValueOrDie().matches);
  EXPECT_EQ(scalar_result.ValueOrDie().payload_sum,
            batched_result.ValueOrDie().payload_sum);
  EXPECT_EQ(scalar_result.ValueOrDie().average_probe_length,
            batched_result.ValueOrDie().average_probe_length);
  if (scalar_result.ValueOrDie().table_base !=
      batched_result.ValueOrDie().table_base) {
    GTEST_SKIP() << "allocator did not reuse the join table address; "
                    "cache counters are not comparable in this run";
  }
  m.ExpectIdentical("hash join");
}

TEST(PmuBatchTest, HashAggregateIdenticalAcrossModes) {
  Table t("t");
  Prng prng(17);
  std::vector<int32_t> g(30'000), f(30'000), v(30'000);
  for (size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<int32_t>(prng.NextBounded(24));
    f[i] = static_cast<int32_t>(prng.NextBounded(100));
    v[i] = static_cast<int32_t>(prng.NextBounded(1'000));
  }
  ASSERT_TRUE(t.AddColumn("g", std::move(g)).ok());
  ASSERT_TRUE(t.AddColumn("f", std::move(f)).ok());
  ASSERT_TRUE(t.AddColumn("v", std::move(v)).ok());
  HashAggregateSpec spec;
  spec.table = &t;
  spec.group_column = "g";
  spec.filters = {{"f", CompareOp::kLt, 60.0}};
  spec.aggregates = {{"v"}};

  ModePair m;
  auto scalar_result = ExecuteHashAggregate(spec, &m.scalar);
  auto batched_result = ExecuteHashAggregate(spec, &m.batched);
  ASSERT_TRUE(scalar_result.ok() && batched_result.ok());
  ASSERT_EQ(scalar_result.ValueOrDie().groups.size(),
            batched_result.ValueOrDie().groups.size());
  for (size_t i = 0; i < scalar_result.ValueOrDie().groups.size(); ++i) {
    EXPECT_EQ(scalar_result.ValueOrDie().groups[i].count,
              batched_result.ValueOrDie().groups[i].count);
    EXPECT_EQ(scalar_result.ValueOrDie().groups[i].sums,
              batched_result.ValueOrDie().groups[i].sums);
  }
  if (scalar_result.ValueOrDie().table_base !=
      batched_result.ValueOrDie().table_base) {
    GTEST_SKIP() << "allocator did not reuse the group table address; "
                    "cache counters are not comparable in this run";
  }
  m.ExpectIdentical("hash aggregate");
}

TEST(CacheNormalizationTest, NonPowerOfTwoSetCountKeepsCapacity) {
  // The Xeon L3: 15 MB / 64 B lines / 20 ways = 12288 sets (3 * 2^12).
  CacheLevel level(CacheGeometry{15 * 1024 * 1024, 20, 64});
  EXPECT_EQ(level.num_sets(), 16384u);  // rounded up to a power of two
  EXPECT_EQ(level.ways(), 15u);         // re-derived: capacity preserved
  EXPECT_EQ(level.num_sets() * level.ways() * 64, 15u * 1024 * 1024);
  // Set indices must stay in range and the level must behave.
  for (uint64_t line = 0; line < 1'000; ++line) {
    EXPECT_LT(level.SetOf(line), level.num_sets());
    level.Insert(line);
    EXPECT_TRUE(level.Contains(line));
  }
}

TEST(CacheNormalizationTest, PowerOfTwoGeometryUnchanged) {
  CacheLevel level(CacheGeometry{32 * 1024, 8, 64});
  EXPECT_EQ(level.num_sets(), 64u);
  EXPECT_EQ(level.ways(), 8u);
}

TEST(CacheNormalizationTest, IndivisibleLineCountKeepsMostRetentiveShape) {
  // 30 lines as 10 sets x 3 ways: neither 8 nor 16 sets divides 30, so
  // the normalization keeps the organization retaining the most lines
  // (8 x 3 = 24 beats 16 x 1 = 16) — bounded, documented flooring rather
  // than a silent arbitrary choice.
  CacheLevel level(CacheGeometry{1920, 3, 64});
  EXPECT_EQ(level.num_sets(), 8u);
  EXPECT_EQ(level.ways(), 3u);
  for (uint64_t line = 0; line < 100; ++line) {
    EXPECT_LT(level.SetOf(line), level.num_sets());
  }
}

TEST(CacheMruTest, RepeatedLookupsCountHitsExactly) {
  CacheLevel level(CacheGeometry{1024, 2, 64});
  level.Insert(3);
  level.Insert(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(level.Lookup(3));  // MRU fast path after the first
  }
  EXPECT_TRUE(level.Lookup(4));  // scan path refreshes the MRU way
  EXPECT_TRUE(level.Lookup(4));  // now the fast path again
  EXPECT_EQ(level.hits(), 12u);
  EXPECT_EQ(level.misses(), 0u);
  EXPECT_FALSE(level.Lookup(1'000'000));
  EXPECT_EQ(level.misses(), 1u);
}

TEST(HashTableStatsTest, WindowsSubtractLikePmuCounters) {
  Pmu pmu;
  InstrumentedHashTable table(1'000, &pmu);
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(table.Insert(k * 31, k).ok());
  }
  const HashTableStats build = table.stats();
  EXPECT_EQ(build.operations, 500u);
  EXPECT_GE(build.slot_touches, 500u);
  int64_t v = 0;
  for (int k = 0; k < 200; ++k) {
    (void)table.Lookup(k * 31, &v);
  }
  const HashTableStats probe_window = table.stats() - build;
  EXPECT_EQ(probe_window.operations, 200u);
  EXPECT_GE(probe_window.average_probe_length(), 1.0);
  // The lifetime average still covers everything.
  EXPECT_EQ(table.stats().operations, 700u);
}

}  // namespace
}  // namespace nipo
