#include "exec/latency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prng.h"

// Property tests for the LatencyDistribution accumulator (DESIGN.md
// "Open-loop service mode"):
//  - nearest-rank percentiles match an independent sort-based reference
//    on randomized inputs, for randomized p;
//  - merging accumulators is bit-identical to one accumulator over the
//    concatenated sample stream, in any merge order and split;
//  - empty / single-sample edge cases.

namespace nipo {
namespace {

/// Independent nearest-rank reference: sort a copy, take the
/// ceil(p/100 * N)-th smallest (1-based), clamped to [1, N].
double ReferencePercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
  rank = std::max<size_t>(1, std::min(rank, samples.size()));
  return samples[rank - 1];
}

std::vector<double> RandomSamples(Prng* prng, size_t n) {
  std::vector<double> samples(n);
  for (double& s : samples) {
    // Heavy-ish tail: squared uniform scaled, plus occasional spikes —
    // the shape latency populations actually have.
    const double u = prng->NextDouble();
    s = 100.0 * u * u + (prng->NextBounded(16) == 0 ? 1e4 * u : 0.0);
  }
  return samples;
}

TEST(LatencyDistributionTest, PercentilesMatchSortBasedReference) {
  Prng prng(7);
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{10},
                         size_t{99}, size_t{100}, size_t{1017}}) {
    const std::vector<double> samples = RandomSamples(&prng, n);
    LatencyDistribution dist;
    for (const double s : samples) dist.Add(s);
    ASSERT_EQ(dist.count(), n);
    for (const double p : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9,
                           100.0}) {
      EXPECT_EQ(dist.Percentile(p), ReferencePercentile(samples, p))
          << "n=" << n << " p=" << p;
    }
    // Randomized p, exact every time.
    for (int i = 0; i < 50; ++i) {
      const double p = 100.0 * prng.NextDouble();
      EXPECT_EQ(dist.Percentile(p), ReferencePercentile(samples, p))
          << "n=" << n << " p=" << p;
    }
    // Mean and max against direct computation over the sorted copy.
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (const double s : sorted) sum += s;
    EXPECT_EQ(dist.mean_msec(), sum / static_cast<double>(n));
    EXPECT_EQ(dist.max_msec(), sorted.back());
  }
}

TEST(LatencyDistributionTest, MergeEqualsConcatenation) {
  Prng prng(11);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + prng.NextBounded(300);
    const std::vector<double> samples = RandomSamples(&prng, n);
    const size_t split = prng.NextBounded(n + 1);

    LatencyDistribution whole;
    for (const double s : samples) whole.Add(s);

    LatencyDistribution left;
    LatencyDistribution right;
    for (size_t i = 0; i < n; ++i) {
      (i < split ? left : right).Add(samples[i]);
    }
    LatencyDistribution merged_lr = left;
    merged_lr.Merge(right);
    LatencyDistribution merged_rl = right;
    merged_rl.Merge(left);  // merge order must not matter either

    EXPECT_EQ(merged_lr.Summary(), whole.Summary()) << "round " << round;
    EXPECT_EQ(merged_rl.Summary(), whole.Summary()) << "round " << round;
    // Interleaving reads (forcing sorts) with merges must not change
    // anything.
    LatencyDistribution interleaved = left;
    (void)interleaved.Summary();
    interleaved.Merge(right);
    EXPECT_EQ(interleaved.Summary(), whole.Summary()) << "round " << round;
  }
}

TEST(LatencyDistributionTest, EmptyAccumulator) {
  LatencyDistribution dist;
  EXPECT_EQ(dist.count(), 0u);
  EXPECT_EQ(dist.mean_msec(), 0.0);
  EXPECT_EQ(dist.max_msec(), 0.0);
  EXPECT_EQ(dist.Percentile(0), 0.0);
  EXPECT_EQ(dist.Percentile(50), 0.0);
  EXPECT_EQ(dist.Percentile(100), 0.0);
  const LatencySummary s = dist.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_msec, 0.0);
  // Merging an empty accumulator is the identity.
  LatencyDistribution other;
  other.Add(3.5);
  LatencyDistribution merged = other;
  merged.Merge(dist);
  EXPECT_EQ(merged.Summary(), other.Summary());
  dist.Merge(other);
  EXPECT_EQ(dist.Summary(), other.Summary());
}

TEST(LatencyDistributionTest, SingleSample) {
  LatencyDistribution dist;
  dist.Add(42.25);
  EXPECT_EQ(dist.count(), 1u);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(dist.Percentile(p), 42.25);
  }
  const LatencySummary s = dist.Summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean_msec, 42.25);
  EXPECT_EQ(s.p50_msec, 42.25);
  EXPECT_EQ(s.p95_msec, 42.25);
  EXPECT_EQ(s.p99_msec, 42.25);
  EXPECT_EQ(s.max_msec, 42.25);
}

}  // namespace
}  // namespace nipo
