#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/prng.h"
#include "core/engine.h"
#include "exec/workload_driver.h"

// Coverage for the admission-control policies of the workload scheduler
// (SchedulePolicy in exec/workload_driver.h): SRWF honors the work
// estimates, priority orders admission without starving anyone,
// footprint-aware co-scheduling never pairs queries whose combined
// estimated footprint exceeds the L3 budget when an alternative pairing
// exists (and keeps a progress guarantee when nothing fits), and the
// engine plumbs policy + cost-model estimates end to end without
// touching any per-query counter.

namespace nipo {
namespace {

SchedulePolicyConfig Config(SchedulePolicy policy,
                            std::vector<ScheduleTaskInfo> tasks,
                            uint64_t l3_capacity_bytes = 0) {
  SchedulePolicyConfig cfg;
  cfg.policy = policy;
  cfg.l3_capacity_bytes = l3_capacity_bytes;
  cfg.tasks = std::move(tasks);
  return cfg;
}

/// True iff queries a and b ever run at the same simulated time.
bool Overlaps(const SimSchedule& s, size_t a, size_t b) {
  return s.start_msec[a] < s.finish_msec[b] &&
         s.start_msec[b] < s.finish_msec[a];
}

TEST(SchedulePolicyTest, SrwfAdmitsShortestRemainingWorkFirst) {
  // One worker, one admission slot: completion order == admission order.
  const std::vector<std::vector<double>> quanta = {{10.0}, {10.0}, {10.0}};
  const SimSchedule s = SimulateWorkloadSchedule(
      quanta, 1, 1,
      Config(SchedulePolicy::kSrwf, {{0, 3.0, 0}, {0, 1.0, 0}, {0, 2.0, 0}}));
  EXPECT_EQ(s.start_msec, (std::vector<double>{20.0, 0.0, 10.0}));
  EXPECT_EQ(s.finish_msec, (std::vector<double>{30.0, 10.0, 20.0}));
}

TEST(SchedulePolicyTest, SrwfTiesBreakInSpecOrder) {
  const std::vector<std::vector<double>> quanta = {{5.0}, {5.0}, {5.0}};
  const SimSchedule s = SimulateWorkloadSchedule(
      quanta, 1, 1,
      Config(SchedulePolicy::kSrwf, {{0, 2.0, 0}, {0, 2.0, 0}, {0, 2.0, 0}}));
  EXPECT_EQ(s.start_msec, (std::vector<double>{0.0, 5.0, 10.0}));
}

TEST(SchedulePolicyTest, PriorityAdmitsHighestFirstFifoAmongEqual) {
  const std::vector<std::vector<double>> quanta = {{4.0}, {4.0}, {4.0}, {4.0}};
  const SimSchedule s = SimulateWorkloadSchedule(
      quanta, 1, 1,
      Config(SchedulePolicy::kPriority,
             {{0, 0, 0}, {5, 0, 0}, {1, 0, 0}, {5, 0, 0}}));
  // q1 and q3 (priority 5, FIFO among them), then q2 (1), then q0 (0).
  EXPECT_EQ(s.start_msec, (std::vector<double>{12.0, 0.0, 8.0, 4.0}));
}

TEST(SchedulePolicyTest, PriorityDoesNotStarveLowPriority) {
  // The lowest-priority query is first in spec order but admitted last;
  // it still completes, and once admitted it time-shares round-robin
  // with whatever is in flight (no in-flight preemption).
  const std::vector<std::vector<double>> quanta = {
      {2.0, 2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}};
  const SimSchedule s = SimulateWorkloadSchedule(
      quanta, 1, 2,
      Config(SchedulePolicy::kPriority,
             {{-1, 0, 0}, {3, 0, 0}, {2, 0, 0}, {1, 0, 0}}));
  for (size_t q = 0; q < quanta.size(); ++q) {
    EXPECT_GT(s.finish_msec[q], s.start_msec[q]) << "query " << q;
    EXPECT_LE(s.finish_msec[q], s.makespan_msec);
  }
  // Everyone else started first...
  for (size_t q = 1; q < quanta.size(); ++q) {
    EXPECT_LT(s.start_msec[q], s.start_msec[0]);
  }
  // ...but the low-priority query still finishes the workload.
  EXPECT_EQ(s.makespan_msec, s.finish_msec[0]);
}

TEST(SchedulePolicyTest, FootprintAwareAvoidsOvercapacityPairing) {
  // Footprints {60, 60, 30} against a 100-byte budget, two admission
  // slots, two workers. FIFO co-schedules q0+q1 (120 > 100); the
  // footprint policy must skip q1 and pair q0 with q2 instead.
  const std::vector<std::vector<double>> quanta = {
      {10.0, 10.0}, {10.0, 10.0}, {10.0, 10.0}};
  const std::vector<ScheduleTaskInfo> tasks = {
      {0, 0, 60}, {0, 0, 60}, {0, 0, 30}};
  const SimSchedule fifo = SimulateWorkloadSchedule(
      quanta, 2, 2, Config(SchedulePolicy::kFifo, tasks, 100));
  EXPECT_TRUE(Overlaps(fifo, 0, 1));  // the pairing being avoided
  const SimSchedule fp = SimulateWorkloadSchedule(
      quanta, 2, 2, Config(SchedulePolicy::kFootprintAware, tasks, 100));
  EXPECT_TRUE(Overlaps(fp, 0, 2));    // the alternative pairing
  EXPECT_FALSE(Overlaps(fp, 0, 1));   // 60 + 60 never co-resident
  for (size_t q = 0; q < quanta.size(); ++q) {
    EXPECT_GT(fp.finish_msec[q], fp.start_msec[q]);
  }
}

TEST(SchedulePolicyTest, FootprintAwareProgressGuarantee) {
  // Every footprint exceeds capacity (estimates are capped at capacity,
  // which is what makes such queries admissible at all): the machine
  // never idles forever — queries run, one at a time.
  const std::vector<std::vector<double>> quanta = {{6.0}, {6.0}};
  const SimSchedule s = SimulateWorkloadSchedule(
      quanta, 2, 2,
      Config(SchedulePolicy::kFootprintAware, {{0, 0, 200}, {0, 0, 150}},
             100));
  EXPECT_FALSE(Overlaps(s, 0, 1));
  EXPECT_EQ(s.start_msec[1], s.finish_msec[0]);
  EXPECT_EQ(s.makespan_msec, 12.0);
}

TEST(SchedulePolicyTest, FootprintAwareWithoutBudgetDegeneratesToFifo) {
  const std::vector<std::vector<double>> quanta = {
      {3.0, 3.0}, {3.0}, {3.0, 3.0}, {3.0}};
  const std::vector<ScheduleTaskInfo> tasks = {
      {0, 0, 64}, {0, 0, 32}, {0, 0, 16}, {0, 0, 8}};
  const SimSchedule fifo = SimulateWorkloadSchedule(
      quanta, 2, 2, Config(SchedulePolicy::kFifo, tasks, 0));
  const SimSchedule fp = SimulateWorkloadSchedule(
      quanta, 2, 2, Config(SchedulePolicy::kFootprintAware, tasks, 0));
  EXPECT_EQ(fp.start_msec, fifo.start_msec);
  EXPECT_EQ(fp.finish_msec, fifo.finish_msec);
  EXPECT_EQ(fp.makespan_msec, fifo.makespan_msec);
}

// ---------------------------------------------------------------------
// Engine-level plumbing: policies reorder admission only; every query's
// results and counters stay bit-identical to FIFO (contention off).

constexpr size_t kDimRows = 10'001;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> a(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(kDimRows));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("fk", std::move(fk)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

Engine MakePolicyEngine() {
  Engine engine(HwConfig::ScaledXeon(16));
  EXPECT_TRUE(engine.RegisterTable(MakeFact("small", 10'000, 1)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeFact("large", 50'000, 2)).ok());
  Prng prng(3);
  std::vector<int32_t> attr(kDimRows);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto dim = std::make_unique<Table>("dim");
  EXPECT_TRUE(dim->AddColumn("attr", std::move(attr)).ok());
  EXPECT_TRUE(engine.RegisterTable(std::move(dim)).ok());
  return engine;
}

WorkloadSpec MakePolicyWorkload(const Engine& engine) {
  WorkloadSpec spec;
  auto add = [&](std::string name, const std::string& table, int priority) {
    WorkloadQuery q;
    q.name = std::move(name);
    q.query.table = table;
    q.query.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 60.0}),
                   OperatorSpec::FkProbe(
                       {"fk", engine.GetTable("dim").ValueOrDie(), "attr",
                        CompareOp::kLt, 40.0})};
    q.query.payload_columns = {"payload"};
    q.config.vector_size = 2'048;
    q.priority = priority;
    spec.queries.push_back(std::move(q));
  };
  add("large_0", "large", 0);
  add("small_0", "small", 0);
  add("large_1", "large", 0);
  add("small_1", "small", 7);
  spec.options.num_threads = 1;
  spec.options.max_concurrent = 1;
  return spec;
}

size_t IndexOf(const WorkloadReport& report, const std::string& name) {
  for (size_t i = 0; i < report.queries.size(); ++i) {
    if (report.queries[i].name == name) return i;
  }
  ADD_FAILURE() << "no query named " << name;
  return 0;
}

TEST(SchedulePolicyTest, EngineSrwfStartsSmallTablesFirst) {
  Engine engine = MakePolicyEngine();
  WorkloadSpec spec = MakePolicyWorkload(engine);
  spec.options.policy = SchedulePolicy::kSrwf;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.policy, SchedulePolicy::kSrwf);
  // The cost-model work estimates scale with row count, so both
  // small-table queries must be admitted (mc=1: fully ordered) before
  // either large-table query.
  const double small_last =
      std::max(report.queries[IndexOf(report, "small_0")].sim_start_msec,
               report.queries[IndexOf(report, "small_1")].sim_start_msec);
  const double large_first =
      std::min(report.queries[IndexOf(report, "large_0")].sim_start_msec,
               report.queries[IndexOf(report, "large_1")].sim_start_msec);
  EXPECT_LT(small_last, large_first);
}

TEST(SchedulePolicyTest, EnginePriorityAdmitsHighestFirst) {
  Engine engine = MakePolicyEngine();
  WorkloadSpec spec = MakePolicyWorkload(engine);
  spec.options.policy = SchedulePolicy::kPriority;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.queries[IndexOf(report, "small_1")].sim_start_msec, 0.0);
  for (const WorkloadQueryReport& q : report.queries) {
    EXPECT_GT(q.sim_finish_msec, q.sim_start_msec) << q.name;  // no one starves
  }
}

TEST(SchedulePolicyTest, PoliciesLeaveQueryCountersUntouched) {
  Engine engine = MakePolicyEngine();
  WorkloadSpec spec = MakePolicyWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  auto fifo = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(fifo.ok());
  for (const SchedulePolicy policy :
       {SchedulePolicy::kSrwf, SchedulePolicy::kPriority,
        SchedulePolicy::kFootprintAware}) {
    spec.options.policy = policy;
    auto result = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(result.ok());
    const WorkloadReport& report = result.ValueOrDie();
    for (size_t i = 0; i < report.queries.size(); ++i) {
      // Admission order is the only degree of freedom: per-query work is
      // bit-identical under every policy (deterministic mode, no shared
      // state).
      EXPECT_EQ(report.queries[i].drive.total,
                fifo.ValueOrDie().queries[i].drive.total)
          << report.queries[i].name << " under "
          << SchedulePolicyToString(policy);
      EXPECT_EQ(report.queries[i].drive.aggregate,
                fifo.ValueOrDie().queries[i].drive.aggregate);
    }
  }
}

TEST(SchedulePolicyTest, EngineFootprintAwareSerializesThrashingPair) {
  // Two queries that each claim most of the L3 (footprint estimates from
  // the cost model) must not be co-scheduled when slots would allow it.
  Engine engine(HwConfig::ScaledXeon(16));
  ASSERT_TRUE(engine.RegisterTable(MakeFact("big_a", 60'000, 10)).ok());
  ASSERT_TRUE(engine.RegisterTable(MakeFact("big_b", 60'000, 11)).ok());
  WorkloadSpec spec;
  for (const std::string table : {"big_a", "big_b"}) {
    WorkloadQuery q;
    q.name = table;
    q.query.table = table;
    q.query.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 60.0})};
    q.query.payload_columns = {"payload"};
    q.config.vector_size = 2'048;
    spec.queries.push_back(std::move(q));
  }
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  spec.options.policy = SchedulePolicy::kFootprintAware;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  // Each streams ~700 KB against a 960 KB L3: capped claims exhaust the
  // budget, so the second query waits for the first to complete.
  EXPECT_EQ(report.peak_in_flight, 1u);
  EXPECT_GE(report.queries[1].sim_start_msec,
            report.queries[0].sim_finish_msec);
}

}  // namespace
}  // namespace nipo
