/// \file simd_kernels_test.cc
/// Differential tests of the portable SIMD kernel layer (DESIGN.md
/// Section 8): the AVX2 and branch-free scalar paths of CompareSelect
/// and HashKeys must be bit-identical on every input — all comparators,
/// all element types, dense and gathered access, special floating-point
/// values, and full-range int64 (the exact-conversion sequence). Also
/// covers the ForceLevel override and the hash table's batched probe
/// paths: BatchLookup must book event-for-event like per-key Lookup, at
/// either kernel level (simulated counters are kernel-independent by
/// construction — docs/COUNTERS.md "Branch-free booking").

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/prng.h"
#include "exec/hash_table.h"
#include "exec/simd.h"
#include "hw/pmu.h"

namespace nipo {
namespace {

constexpr CompareOp kAllOps[] = {CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe,
                                 CompareOp::kEq, CompareOp::kNe};

/// Restores runtime level selection when a test body returns.
struct ForcedLevelGuard {
  ~ForcedLevelGuard() { simd::ResetForcedLevel(); }
};

/// Runs CompareSelect at both levels on identical inputs and checks the
/// outputs are bit-identical: the pass array, the count, and the
/// selection-vector prefix up to the count (entries past it are
/// unspecified — the AVX2 compaction writes different garbage there than
/// the scalar loop).
template <typename T>
void ExpectLevelsIdentical(const std::vector<T>& data, size_t base_row,
                           CompareOp op, double value,
                           const std::vector<uint32_t>* gather,
                           const std::vector<uint32_t>* ids, size_t n) {
  DataType type = DataType::kDouble;
  if constexpr (std::is_same_v<T, int32_t>) type = DataType::kInt32;
  if constexpr (std::is_same_v<T, int64_t>) type = DataType::kInt64;
  std::vector<uint8_t> pass_a(n, 0xcc), pass_b(n, 0xdd);
  std::vector<uint32_t> sel_a(n, 1), sel_b(n, 2);
  const size_t count_a = simd::CompareSelect(
      simd::SimdLevel::kScalar, type,
      reinterpret_cast<const uint8_t*>(data.data()), base_row, op, value,
      gather ? gather->data() : nullptr, ids ? ids->data() : nullptr, n,
      pass_a.data(), sel_a.data());
  const size_t count_b = simd::CompareSelect(
      simd::SimdLevel::kAvx2, type,
      reinterpret_cast<const uint8_t*>(data.data()), base_row, op, value,
      gather ? gather->data() : nullptr, ids ? ids->data() : nullptr, n,
      pass_b.data(), sel_b.data());
  ASSERT_EQ(count_a, count_b)
      << "op=" << static_cast<int>(op) << " value=" << value << " n=" << n;
  EXPECT_EQ(pass_a, pass_b);
  EXPECT_TRUE(std::equal(sel_a.begin(),
                         sel_a.begin() + static_cast<ptrdiff_t>(count_a),
                         sel_b.begin()))
      << "selection-vector prefix diverged, op=" << static_cast<int>(op);
  // The count is consistent with the pass flags either way.
  size_t popcount = 0;
  for (size_t j = 0; j < n; ++j) popcount += pass_a[j];
  EXPECT_EQ(popcount, count_a);
}

TEST(SimdLevelTest, ForceLevelOverridesAndResets) {
  ForcedLevelGuard guard;
  simd::ForceLevel(simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::SimdLevel::kScalar);
  simd::ForceLevel(simd::SimdLevel::kAvx2);
  // Forcing AVX2 on a host without it is ignored (the kernels would
  // fault); detection wins.
  EXPECT_EQ(simd::ActiveLevel(), simd::Avx2Available()
                                     ? simd::SimdLevel::kAvx2
                                     : simd::SimdLevel::kScalar);
  simd::ResetForcedLevel();
  EXPECT_EQ(simd::ActiveLevel(), simd::Avx2Available()
                                     ? simd::SimdLevel::kAvx2
                                     : simd::SimdLevel::kScalar);
  EXPECT_EQ(simd::SimdLevelName(simd::SimdLevel::kScalar), "scalar");
  EXPECT_EQ(simd::SimdLevelName(simd::SimdLevel::kAvx2), "avx2");
}

TEST(SimdCompareSelectTest, AllOpsAllTypesDense) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  Prng prng(7);
  // Odd n exercises the vector path's scalar tail.
  const size_t n = 1003;
  std::vector<double> doubles(n);
  std::vector<int32_t> int32s(n);
  std::vector<int64_t> int64s(n);
  for (size_t i = 0; i < n; ++i) {
    // Narrow domain: every comparator sees plenty of exact ties.
    doubles[i] = static_cast<double>(prng.NextBounded(32)) / 2.0;
    int32s[i] = static_cast<int32_t>(prng.NextInRange(-16, 16));
    int64s[i] = prng.NextInRange(-16, 16);
  }
  for (const CompareOp op : kAllOps) {
    for (const double value : {-3.0, 0.0, 4.5, 7.0, 40.0}) {
      ExpectLevelsIdentical(doubles, 0, op, value, nullptr, nullptr, n);
      ExpectLevelsIdentical(int32s, 0, op, value, nullptr, nullptr, n);
      ExpectLevelsIdentical(int64s, 0, op, value, nullptr, nullptr, n);
    }
  }
}

TEST(SimdCompareSelectTest, GatherIdsAndBaseRow) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  Prng prng(11);
  const size_t rows = 4096, n = 517;
  std::vector<double> doubles(rows);
  std::vector<int32_t> int32s(rows);
  for (size_t i = 0; i < rows; ++i) {
    doubles[i] = static_cast<double>(prng.NextBounded(100));
    int32s[i] = static_cast<int32_t>(prng.NextBounded(100));
  }
  std::vector<uint32_t> gather(n), ids(n);
  for (size_t j = 0; j < n; ++j) {
    gather[j] = static_cast<uint32_t>(prng.NextBounded(rows));
    ids[j] = static_cast<uint32_t>(prng.Next());
  }
  for (const CompareOp op : kAllOps) {
    ExpectLevelsIdentical(doubles, 0, op, 50.0, &gather, &ids, n);
    ExpectLevelsIdentical(int32s, 0, op, 50.0, &gather, &ids, n);
    // Dense with ids, gathered without ids, and a non-zero base row.
    ExpectLevelsIdentical(doubles, 0, op, 50.0, nullptr, &ids, n);
    ExpectLevelsIdentical(int32s, 0, op, 50.0, &gather, nullptr, n);
    ExpectLevelsIdentical(doubles, 1024, op, 50.0, nullptr, nullptr, n);
  }
}

TEST(SimdCompareSelectTest, SpecialDoublesIncludingNaN) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> data = {nan,  -nan, inf,    -inf, 0.0,
                              -0.0, 1.0,  -1.0,   5e-324,
                              std::numeric_limits<double>::denorm_min(),
                              std::numeric_limits<double>::max(),
                              std::numeric_limits<double>::lowest(), 2.5};
  for (const CompareOp op : kAllOps) {
    for (const double value : {0.0, -0.0, 1.0, inf, -inf, nan}) {
      ExpectLevelsIdentical(data, 0, op, value, nullptr, nullptr,
                            data.size());
    }
  }
}

TEST(SimdCompareSelectTest, Int64FullRangeExactConversion) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  // Values around the 2^53 exactness boundary and the int64 extremes:
  // the AVX2 path must round int64 -> double exactly like the scalar
  // static_cast (round-to-nearest-even above 2^53).
  const int64_t max = std::numeric_limits<int64_t>::max();
  const int64_t min = std::numeric_limits<int64_t>::min();
  std::vector<int64_t> data;
  for (const int64_t base :
       {int64_t{0}, int64_t{1} << 52, int64_t{1} << 53, int64_t{1} << 62,
        max - 1024, min + 1024}) {
    for (int64_t d = -3; d <= 3; ++d) data.push_back(base + d);
  }
  data.push_back(max);
  data.push_back(min);
  Prng prng(13);
  for (int i = 0; i < 200; ++i) {
    data.push_back(static_cast<int64_t>(prng.Next()));
  }
  for (const CompareOp op : kAllOps) {
    for (const double value :
         {0.0, 9007199254740993.0, 9.2233720368547758e18,
          -9.2233720368547758e18, 4.0e18}) {
      ExpectLevelsIdentical(data, 0, op, value, nullptr, nullptr,
                            data.size());
    }
  }
}

TEST(SimdHashKeysTest, LevelsBitIdenticalAndMatchSplitMix64) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  Prng prng(17);
  std::vector<int64_t> keys = {0, 1, -1, std::numeric_limits<int64_t>::max(),
                               std::numeric_limits<int64_t>::min()};
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(static_cast<int64_t>(prng.Next()));
  }
  std::vector<uint64_t> scalar(keys.size()), avx2(keys.size());
  simd::HashKeys(simd::SimdLevel::kScalar, keys.data(), keys.size(),
                 scalar.data());
  simd::HashKeys(simd::SimdLevel::kAvx2, keys.data(), keys.size(),
                 avx2.data());
  EXPECT_EQ(scalar, avx2);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(scalar[i],
              simd::SplitMix64(static_cast<uint64_t>(keys[i])))
        << "key=" << keys[i];
  }
}

/// Builds a table with `build` random keys and a probe stream mixing
/// hits and misses.
struct ProbeFixture {
  explicit ProbeFixture(Pmu* pmu) : table(4'096, pmu) {
    Prng prng(23);
    for (size_t i = 0; i < 4'096; ++i) {
      const Status st =
          table.Insert(static_cast<int64_t>(prng.NextBounded(8'192)),
                       static_cast<int64_t>(i));
      NIPO_CHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
    }
    probe_keys.resize(10'000);
    for (int64_t& k : probe_keys) {
      k = static_cast<int64_t>(prng.NextBounded(16'384));
    }
  }
  InstrumentedHashTable table;
  std::vector<int64_t> probe_keys;
};

TEST(SimdBatchLookupTest, BooksIdenticallyToPerKeyLookups) {
  // One table, one machine: a warm pass drives the caches to their
  // steady state for this probe sequence, then each probe mode runs from
  // that same state in its own counter window — the booked streams (and
  // so the windows) must be bit-equal, per docs/COUNTERS.md.
  Pmu pmu(HwConfig::ScaledXeon(32));
  ProbeFixture f(&pmu);
  const size_t n = f.probe_keys.size();
  std::vector<int64_t> vals_a(n, -1), vals_b(n, -1);
  std::vector<uint8_t> hits_a(n, 0xee), hits_b(n, 0xff);

  auto per_key = [&] {
    for (size_t i = 0; i < n; ++i) {
      hits_a[i] = static_cast<uint8_t>(
          f.table.Lookup(f.probe_keys[i], &vals_a[i]));
      if (!hits_a[i]) vals_a[i] = -1;
    }
  };
  per_key();  // warm pass: both measured windows start from this state

  pmu.ResetCounters();
  const HashTableStats stats_before_a = f.table.stats();
  per_key();
  const PmuCounters counters_a = pmu.Read();
  const HashTableStats stats_a = f.table.stats() - stats_before_a;

  pmu.ResetCounters();
  const HashTableStats stats_before_b = f.table.stats();
  f.table.BatchLookup(f.probe_keys.data(), n, vals_b.data(), hits_b.data());
  const PmuCounters counters_b = pmu.Read();
  const HashTableStats stats_b = f.table.stats() - stats_before_b;

  EXPECT_EQ(hits_a, hits_b);
  for (size_t i = 0; i < n; ++i) {
    if (hits_a[i]) {
      ASSERT_EQ(vals_a[i], vals_b[i]) << "i=" << i;
    }
  }
  EXPECT_EQ(counters_a, counters_b)
      << "per-key: " << counters_a.ToString()
      << "\nbatched: " << counters_b.ToString();
  EXPECT_EQ(stats_a.slot_touches, stats_b.slot_touches);
  EXPECT_EQ(stats_a.operations, stats_b.operations);
}

TEST(SimdBatchLookupTest, CountersIndependentOfKernelLevel) {
  // Simulated booking never happens inside the kernels, so forcing the
  // scalar fallback must leave BatchLookup's counter window bit-equal to
  // the best-level run (and the results too).
  ForcedLevelGuard guard;
  Pmu pmu(HwConfig::ScaledXeon(32));
  ProbeFixture f(&pmu);
  const size_t n = f.probe_keys.size();
  std::vector<uint8_t> hits[2];
  std::vector<int64_t> vals[2];
  PmuCounters counters[2];
  int which = 0;
  for (const simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kAvx2}) {
    simd::ForceLevel(level);
    hits[which].assign(n, 0);
    vals[which].assign(n, -1);
    f.table.BatchLookup(f.probe_keys.data(), n, vals[which].data(),
                        hits[which].data());  // warm pass
    pmu.ResetCounters();
    f.table.BatchLookup(f.probe_keys.data(), n, vals[which].data(),
                        hits[which].data());
    counters[which] = pmu.Read();
    ++which;
  }
  EXPECT_EQ(hits[0], hits[1]);
  EXPECT_EQ(vals[0], vals[1]);
  EXPECT_EQ(counters[0], counters[1])
      << "scalar: " << counters[0].ToString()
      << "\nbest:   " << counters[1].ToString();
}

TEST(SimdProbeKernelTest, BatchedAndScalarPathsAgreeWithBatchLookup) {
  Pmu pmu(HwConfig::ScaledXeon(32));
  ProbeFixture f(&pmu);
  const size_t n = f.probe_keys.size();
  std::vector<uint8_t> hits_ref(n), hits_a(n), hits_b(n);
  std::vector<int64_t> vals_ref(n, -1), vals_a(n, -1), vals_b(n, -1);
  f.table.BatchLookup(f.probe_keys.data(), n, vals_ref.data(),
                      hits_ref.data());
  const size_t count_a = f.table.ProbeKernel(
      f.probe_keys.data(), n, vals_a.data(), hits_a.data(), /*batched=*/false);
  const size_t count_b = f.table.ProbeKernel(
      f.probe_keys.data(), n, vals_b.data(), hits_b.data(), /*batched=*/true);
  EXPECT_EQ(count_a, count_b);
  EXPECT_EQ(hits_a, hits_ref);
  EXPECT_EQ(hits_b, hits_ref);
  size_t ref_count = 0;
  for (size_t i = 0; i < n; ++i) {
    ref_count += hits_ref[i];
    if (hits_ref[i]) {
      ASSERT_EQ(vals_a[i], vals_ref[i]);
      ASSERT_EQ(vals_b[i], vals_ref[i]);
    }
  }
  EXPECT_EQ(count_a, ref_count);
}

}  // namespace
}  // namespace nipo
