#include "hw/pmu.h"

#include <gtest/gtest.h>

#include <vector>

namespace nipo {
namespace {

TEST(HwConfigTest, XeonPreset) {
  const HwConfig cfg = HwConfig::XeonE5_2630v2();
  EXPECT_EQ(cfg.l1.capacity_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l2.capacity_bytes, 256u * 1024);
  EXPECT_EQ(cfg.l3.capacity_bytes, 15u * 1024 * 1024);
  EXPECT_EQ(cfg.predictor.num_states, 6);
  EXPECT_DOUBLE_EQ(cfg.cycle_model.frequency_ghz, 2.6);
}

TEST(HwConfigTest, ScaledXeonDividesCapacities) {
  const HwConfig cfg = HwConfig::ScaledXeon(4);
  EXPECT_EQ(cfg.l1.capacity_bytes, 8u * 1024);
  EXPECT_EQ(cfg.l3.capacity_bytes, 15u * 1024 * 1024 / 4);
  EXPECT_EQ(cfg.l1.line_size, 64u);
}

TEST(HwConfigTest, ScaledXeonFloorsAtOneWayGroup) {
  const HwConfig cfg = HwConfig::ScaledXeon(1'000'000);
  EXPECT_GE(cfg.l1.capacity_bytes,
            static_cast<uint64_t>(cfg.l1.associativity) * cfg.l1.line_size);
  EXPECT_GE(cfg.l1.num_sets(), 1u);
}

TEST(CycleModelTest, LoadCostsOrdered) {
  CycleModel m;
  EXPECT_LT(m.LoadCycles(MemoryLevel::kL1), m.LoadCycles(MemoryLevel::kL2));
  EXPECT_LT(m.LoadCycles(MemoryLevel::kL2), m.LoadCycles(MemoryLevel::kL3));
  EXPECT_LT(m.LoadCycles(MemoryLevel::kL3),
            m.LoadCycles(MemoryLevel::kMemory));
}

TEST(PmuTest, CountsInstructions) {
  Pmu pmu;
  pmu.OnInstructions(10);
  EXPECT_EQ(pmu.Read().instructions, 10u);
  EXPECT_GT(pmu.Read().cycles, 0u);
}

TEST(PmuTest, BranchCountersSplitByDirection) {
  Pmu pmu;
  pmu.EnsureBranchSites(1);
  pmu.OnBranch(0, true);
  pmu.OnBranch(0, true);
  pmu.OnBranch(0, false);
  const PmuCounters c = pmu.Read();
  EXPECT_EQ(c.branches, 3u);
  EXPECT_EQ(c.branches_taken, 2u);
  EXPECT_EQ(c.branches_not_taken, 1u);
  EXPECT_EQ(c.mispredictions,
            c.taken_mispredictions + c.not_taken_mispredictions);
}

TEST(PmuTest, MispredictionChargesPenalty) {
  Pmu pmu;
  pmu.EnsureBranchSites(2);
  // Saturate site 0 toward taken, then surprise it.
  for (int i = 0; i < 10; ++i) pmu.OnBranch(0, true);
  const uint64_t before = pmu.Read().cycles;
  pmu.OnBranch(0, true);  // predicted correctly
  const uint64_t correct_cost = pmu.Read().cycles - before;
  const uint64_t before2 = pmu.Read().cycles;
  pmu.OnBranch(0, false);  // mispredicted
  const uint64_t wrong_cost = pmu.Read().cycles - before2;
  EXPECT_GT(wrong_cost, correct_cost + 10);
}

TEST(PmuTest, LoadsRunThroughCaches) {
  Pmu pmu;
  std::vector<int32_t> data(1024, 0);
  EXPECT_EQ(pmu.OnLoad(data.data(), 4), MemoryLevel::kMemory);
  EXPECT_EQ(pmu.OnLoad(data.data(), 4), MemoryLevel::kL1);
  const PmuCounters c = pmu.Read();
  EXPECT_EQ(c.l1_accesses, 2u);
  EXPECT_EQ(c.l1_misses, 1u);
  EXPECT_GE(c.l3_accesses, 1u);
}

TEST(PmuTest, ResetCountersKeepsMachineState) {
  Pmu pmu;
  std::vector<int32_t> data(16, 0);
  pmu.OnLoad(data.data(), 4);
  pmu.ResetCounters();
  EXPECT_EQ(pmu.Read().l1_accesses, 0u);
  EXPECT_EQ(pmu.Read().cycles, 0u);
  // The line is still cached: the next access hits L1.
  EXPECT_EQ(pmu.OnLoad(data.data(), 4), MemoryLevel::kL1);
  EXPECT_EQ(pmu.Read().l1_misses, 0u);
}

TEST(PmuTest, ResetMachineColdensCaches) {
  Pmu pmu;
  std::vector<int32_t> data(16, 0);
  pmu.OnLoad(data.data(), 4);
  pmu.ResetMachine();
  EXPECT_EQ(pmu.OnLoad(data.data(), 4), MemoryLevel::kMemory);
}

TEST(PmuTest, SnapshotSubtraction) {
  Pmu pmu;
  pmu.EnsureBranchSites(1);
  pmu.OnBranch(0, true);
  const PmuCounters a = pmu.Read();
  pmu.OnBranch(0, true);
  pmu.OnInstructions(5);
  const PmuCounters delta = pmu.Read() - a;
  EXPECT_EQ(delta.branches, 1u);
  EXPECT_EQ(delta.instructions, 6u);  // 5 + the branch instruction
}

TEST(PmuTest, CountersAccumulateWithPlusEquals) {
  PmuCounters a, b;
  a.branches = 3;
  a.cycles = 10;
  b.branches = 4;
  b.cycles = 20;
  a += b;
  EXPECT_EQ(a.branches, 7u);
  EXPECT_EQ(a.cycles, 30u);
}

TEST(PmuTest, ToMillisecondsUsesFrequency) {
  Pmu pmu;  // 2.6 GHz -> 2.6e6 cycles per msec
  PmuCounters c;
  c.cycles = 2'600'000;
  EXPECT_NEAR(pmu.ToMilliseconds(c), 1.0, 1e-9);
}

TEST(PmuTest, ChargeCyclesAddsToClockOnly) {
  Pmu pmu;
  pmu.ChargeCycles(1000.0);
  const PmuCounters c = pmu.Read();
  EXPECT_EQ(c.cycles, 1000u);
  EXPECT_EQ(c.instructions, 0u);
}

TEST(PmuTest, ToStringMentionsKeyCounters) {
  Pmu pmu;
  pmu.OnInstructions(1);
  const std::string s = pmu.Read().ToString();
  EXPECT_NE(s.find("instructions=1"), std::string::npos);
  EXPECT_NE(s.find("L3_accesses"), std::string::npos);
}

}  // namespace
}  // namespace nipo
