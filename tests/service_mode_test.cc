#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/prng.h"
#include "core/engine.h"
#include "exec/workload_driver.h"

// Differential test layer for the open-loop service mode (DESIGN.md
// Section 7 "Open-loop service mode"):
//  (a) open-loop at vanishing arrival rate with max_concurrent = 1 is
//      bit-identical — results AND counters — to solo ExecuteBaseline /
//      ExecuteProgressive;
//  (b) the simultaneous-arrival limit (rate -> infinity) reproduces the
//      closed-queue run event-for-event;
//  (c) latency figures are bit-identical across reruns for every
//      max_concurrent {1, 2, 8} and worker count, and the latency
//      decomposition (queue wait + in-service span) is exact;
//  (d) overload keeps queue wait monotonically growing while the
//      adaptive controller holds its floor-of-one progress guarantee;
// plus the QuantumTrace replay exactness of the full stack (arrivals +
// contention + adaptive) and AdmissionController unit behaviour.
// ci/check.sh runs this suite with NIPO_TEST_THREADS=1 and =8 and under
// ThreadSanitizer.

namespace nipo {
namespace {

std::vector<size_t> TestThreadCounts() {
  if (const char* env = std::getenv("NIPO_TEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return {static_cast<size_t>(parsed)};
  }
  return {1, 2, 4, 8};
}

constexpr size_t kDimRows = 10'001;

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> a(n), b(n), c(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    c[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(kDimRows));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t->AddColumn("c", std::move(c)).ok());
  EXPECT_TRUE(t->AddColumn("fk", std::move(fk)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

Engine MakeServiceEngine() {
  Engine engine(HwConfig::ScaledXeon(16));
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_a", 40'000, 1)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeFact("fact_b", 60'000, 2)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim", kDimRows, 3)).ok());
  return engine;
}

QuerySpec ScanQuery(const std::string& table, double a_lt, double b_lt,
                    double c_lt) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, a_lt}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, b_lt}),
           OperatorSpec::Predicate({"c", CompareOp::kLt, c_lt})};
  q.payload_columns = {"payload"};
  return q;
}

QuerySpec JoinQuery(const Engine& engine, const std::string& table) {
  QuerySpec q;
  q.table = table;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 80.0}),
           OperatorSpec::FkProbe({"fk", engine.GetTable("dim").ValueOrDie(),
                                  "attr", CompareOp::kLt, 40.0})};
  q.payload_columns = {"payload"};
  return q;
}

/// Six mixed queries (scans + joins, baseline + progressive) — the
/// heterogeneity the bit-equality claims must hold under.
WorkloadSpec MakeMixedWorkload(const Engine& engine) {
  WorkloadSpec spec;
  auto add = [&spec](std::string name, QuerySpec q, bool progressive,
                     size_t vector_size) {
    WorkloadQuery query;
    query.name = std::move(name);
    query.query = std::move(q);
    query.progressive = progressive;
    query.config.vector_size = vector_size;
    query.config.reopt_interval = 2;
    spec.queries.push_back(std::move(query));
  };
  add("scan_a_base", ScanQuery("fact_a", 90, 50, 2), false, 2'048);
  add("scan_a_prog", ScanQuery("fact_a", 90, 50, 2), true, 2'048);
  add("scan_b_prog", ScanQuery("fact_b", 90, 50, 2), true, 4'096);
  add("join_a_base", JoinQuery(engine, "fact_a"), false, 2'048);
  add("join_b_prog", JoinQuery(engine, "fact_b"), true, 2'048);
  add("scan_b_selective", ScanQuery("fact_b", 10, 90, 90), false, 1'024);
  return spec;
}

/// Homogeneous workload: `n` copies of the same baseline scan, so every
/// in-service span is bit-identical — the analytic case of the overload
/// test.
WorkloadSpec MakeHomogeneousWorkload(size_t n) {
  WorkloadSpec spec;
  for (size_t i = 0; i < n; ++i) {
    WorkloadQuery query;
    query.name = "scan" + std::to_string(i);
    query.query = ScanQuery("fact_a", 90, 50, 2);
    query.config.vector_size = 2'048;
    spec.queries.push_back(std::move(query));
  }
  return spec;
}

DriveResult SoloDrive(const Engine& engine, const WorkloadQuery& q,
                      std::vector<size_t>* final_order = nullptr) {
  if (q.progressive) {
    auto r = engine.ExecuteProgressive(q.query, q.config, q.initial_order);
    EXPECT_TRUE(r.ok());
    if (final_order != nullptr) *final_order = r.ValueOrDie().final_order;
    return r.ValueOrDie().drive;
  }
  auto r =
      engine.ExecuteBaseline(q.query, q.config.vector_size, q.initial_order);
  EXPECT_TRUE(r.ok());
  if (final_order != nullptr) *final_order = r.ValueOrDie().order;
  return r.ValueOrDie().drive;
}

/// The QuantumTrace replay input recorded in a report.
std::vector<std::vector<QuantumTrace>> TracesOf(const WorkloadReport& report) {
  std::vector<std::vector<QuantumTrace>> traces(report.queries.size());
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(q.quantum_msec.size(), q.quantum_evictions.size());
    EXPECT_EQ(q.quantum_msec.size(), q.quantum_occupancy.size());
    for (size_t k = 0; k < q.quantum_msec.size(); ++k) {
      traces[i].push_back(
          {q.quantum_msec[k], q.quantum_evictions[k], q.quantum_occupancy[k]});
    }
  }
  return traces;
}

// ---------------------------------------------------------------------------
// (a) Open-loop at vanishing arrival rate == solo runs, bit for bit.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, VanishingArrivalRateMatchesSoloRunsBitwise) {
  Engine engine = MakeServiceEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.max_concurrent = 1;
  spec.options.arrival.kind = ArrivalKind::kUniform;
  spec.options.arrival.rate_qps = 1e-3;  // 1e6 msec between arrivals
  for (size_t threads : TestThreadCounts()) {
    spec.options.num_threads = threads;
    auto result = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(result.ok());
    const WorkloadReport& report = result.ValueOrDie();
    ASSERT_EQ(report.queries.size(), spec.queries.size());
    for (size_t i = 0; i < spec.queries.size(); ++i) {
      std::vector<size_t> solo_order;
      const DriveResult solo = SoloDrive(engine, spec.queries[i], &solo_order);
      const WorkloadQueryReport& q = report.queries[i];
      EXPECT_EQ(q.drive.total, solo.total)  // every counter, exactly
          << q.name << ", " << threads << " threads";
      EXPECT_EQ(q.drive.qualifying_tuples, solo.qualifying_tuples) << q.name;
      EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;  // bitwise
      EXPECT_EQ(q.drive.simulated_msec, solo.simulated_msec) << q.name;
      EXPECT_EQ(q.final_order, solo_order) << q.name;
      // Each query runs alone: dispatched the instant it arrives, zero
      // queue wait, latency == its own execution span.
      EXPECT_EQ(q.sim_arrival_msec,
                static_cast<double>(i) * 1e6);
      EXPECT_EQ(q.sim_start_msec, q.sim_arrival_msec) << q.name;
      EXPECT_EQ(q.sim_queue_wait_msec, 0.0) << q.name;
      EXPECT_EQ(q.sim_latency_msec, q.sim_finish_msec - q.sim_start_msec)
          << q.name;
      // The execution span is the query's own machine time (per-quantum
      // windows are side-effect-free, so the sum telescopes to the
      // full-run window up to floating-point association — the tolerance
      // covers accumulating at offsets of millions of msec).
      EXPECT_NEAR(q.sim_latency_msec, solo.simulated_msec,
                  1e-6 * solo.simulated_msec)
          << q.name;
    }
    EXPECT_EQ(report.queue_wait.max_msec, 0.0);
  }
}

// ---------------------------------------------------------------------------
// (b) Simultaneous arrivals == closed queue, event for event.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, SimultaneousArrivalsMatchClosedQueueEventForEvent) {
  Engine engine = MakeServiceEngine();
  for (size_t threads : TestThreadCounts()) {
    for (size_t max_concurrent : {size_t{1}, size_t{2}, size_t{8}}) {
      WorkloadSpec spec = MakeMixedWorkload(engine);
      spec.options.num_threads = threads;
      spec.options.max_concurrent = max_concurrent;
      auto closed_result = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(closed_result.ok());
      const WorkloadReport& closed = closed_result.ValueOrDie();

      spec.options.arrival.kind = ArrivalKind::kUniform;
      spec.options.arrival.rate_qps = std::numeric_limits<double>::infinity();
      auto open_result = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(open_result.ok());
      const WorkloadReport& open = open_result.ValueOrDie();

      ASSERT_EQ(open.queries.size(), closed.queries.size());
      for (size_t i = 0; i < open.queries.size(); ++i) {
        const WorkloadQueryReport& oq = open.queries[i];
        const WorkloadQueryReport& cq = closed.queries[i];
        EXPECT_EQ(oq.drive.total, cq.drive.total) << oq.name;
        EXPECT_EQ(oq.drive.aggregate, cq.drive.aggregate) << oq.name;
        EXPECT_EQ(oq.quanta, cq.quanta) << oq.name;
        EXPECT_EQ(oq.quantum_msec, cq.quantum_msec) << oq.name;
        EXPECT_EQ(oq.sim_arrival_msec, 0.0) << oq.name;
        EXPECT_EQ(oq.sim_start_msec, cq.sim_start_msec) << oq.name;
        EXPECT_EQ(oq.sim_finish_msec, cq.sim_finish_msec) << oq.name;
        EXPECT_EQ(oq.sim_queue_wait_msec, cq.sim_queue_wait_msec) << oq.name;
        EXPECT_EQ(oq.sim_latency_msec, cq.sim_latency_msec) << oq.name;
      }
      EXPECT_EQ(open.sim_makespan_msec, closed.sim_makespan_msec);
      EXPECT_EQ(open.sim_queries_per_sec, closed.sim_queries_per_sec);
      EXPECT_EQ(open.latency, closed.latency);
      EXPECT_EQ(open.queue_wait, closed.queue_wait);
      EXPECT_EQ(open.peak_in_flight, closed.peak_in_flight);
    }
  }
}

// ---------------------------------------------------------------------------
// (c) Latency determinism across reruns x max_concurrent x threads, and
//     the exact latency decomposition.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, LatencyIsDeterministicAndDecomposesExactly) {
  Engine engine = MakeServiceEngine();
  for (size_t threads : TestThreadCounts()) {
    for (size_t max_concurrent : {size_t{1}, size_t{2}, size_t{8}}) {
      WorkloadSpec spec = MakeMixedWorkload(engine);
      spec.options.num_threads = threads;
      spec.options.max_concurrent = max_concurrent;
      spec.options.arrival.kind = ArrivalKind::kPoisson;
      spec.options.arrival.rate_qps = 100.0;
      spec.options.arrival.seed = 7;
      auto first = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(first.ok());
      auto second = engine.ExecuteWorkload(spec);
      ASSERT_TRUE(second.ok());
      const WorkloadReport& a = first.ValueOrDie();
      const WorkloadReport& b = second.ValueOrDie();
      EXPECT_EQ(a.latency, b.latency);
      EXPECT_EQ(a.queue_wait, b.queue_wait);
      EXPECT_EQ(a.sim_makespan_msec, b.sim_makespan_msec);
      for (size_t i = 0; i < a.queries.size(); ++i) {
        const WorkloadQueryReport& qa = a.queries[i];
        const WorkloadQueryReport& qb = b.queries[i];
        EXPECT_EQ(qa.drive.total, qb.drive.total) << qa.name;
        EXPECT_EQ(qa.sim_arrival_msec, qb.sim_arrival_msec) << qa.name;
        EXPECT_EQ(qa.sim_latency_msec, qb.sim_latency_msec) << qa.name;
        EXPECT_EQ(qa.sim_queue_wait_msec, qb.sim_queue_wait_msec) << qa.name;
        EXPECT_EQ(qa.quantum_msec, qb.quantum_msec) << qa.name;
        // The decomposition is exact by construction, not approximate:
        EXPECT_EQ(qa.sim_queue_wait_msec,
                  qa.sim_start_msec - qa.sim_arrival_msec)
            << qa.name;
        EXPECT_EQ(qa.sim_latency_msec,
                  qa.sim_queue_wait_msec +
                      (qa.sim_finish_msec - qa.sim_start_msec))
            << qa.name;
        EXPECT_GE(qa.sim_start_msec, qa.sim_arrival_msec) << qa.name;
        // Side-effect-free quantum windows: the per-quantum durations
        // telescope to the query's full-run machine time (same counters,
        // only floating-point association differs).
        double quantum_sum = 0;
        for (const double d : qa.quantum_msec) quantum_sum += d;
        EXPECT_NEAR(quantum_sum, qa.drive.simulated_msec,
                    1e-9 * qa.drive.simulated_msec)
            << qa.name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// QuantumTrace replay exactness of the full stack: open-loop arrivals +
// shared-L3 contention + adaptive admission rebuild the live schedule
// bit-for-bit from the recorded traces.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, OpenLoopAdaptiveContendedScheduleReplaysExactly) {
  Engine engine = MakeServiceEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 4;
  spec.options.contention = true;
  spec.options.audit_contention = true;
  spec.options.adaptive_admission = true;
  spec.options.arrival.kind = ArrivalKind::kBursty;
  spec.options.arrival.rate_qps = 200.0;
  spec.options.arrival.seed = 13;
  spec.options.arrival.burst_len = 3;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.arrival_kind, ArrivalKind::kBursty);
  EXPECT_TRUE(report.adaptive_admission);
  EXPECT_GE(report.admission_min_limit, 1u);

  const std::vector<double> arrivals =
      GenerateArrivalTimes(spec.options.arrival, spec.queries.size());
  AdaptiveAdmissionSpec adaptive;
  adaptive.config = spec.options.admission;
  adaptive.l3_capacity_lines = report.shared_l3_capacity_lines;
  const SimSchedule replay = SimulateWorkloadSchedule(
      TracesOf(report), arrivals, spec.options.num_threads,
      spec.options.max_concurrent, SchedulePolicyConfig{}, &adaptive);
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(replay.arrival_msec[i], q.sim_arrival_msec) << q.name;
    EXPECT_EQ(replay.start_msec[i], q.sim_start_msec) << q.name;
    EXPECT_EQ(replay.finish_msec[i], q.sim_finish_msec) << q.name;
    EXPECT_EQ(replay.queue_wait_msec[i], q.sim_queue_wait_msec) << q.name;
    EXPECT_EQ(replay.latency_msec[i], q.sim_latency_msec) << q.name;
  }
  EXPECT_EQ(replay.makespan_msec, report.sim_makespan_msec);
}

// ---------------------------------------------------------------------------
// Schedule-level arrival semantics on hand-crafted quanta.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, SimulateWorkloadScheduleHonorsArrivals) {
  const std::vector<std::vector<QuantumTrace>> quanta = {{{10.0, 0}},
                                                         {{10.0, 0}}};
  // Second query arrives after the first finishes: the machine idles.
  SimSchedule gap = SimulateWorkloadSchedule(quanta, {0.0, 20.0}, 2, 2,
                                             SchedulePolicyConfig{});
  EXPECT_EQ(gap.start_msec, (std::vector<double>{0.0, 20.0}));
  EXPECT_EQ(gap.finish_msec, (std::vector<double>{10.0, 30.0}));
  EXPECT_EQ(gap.queue_wait_msec, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(gap.latency_msec, (std::vector<double>{10.0, 10.0}));
  EXPECT_EQ(gap.makespan_msec, 30.0);
  // Overlapping arrival with one admission slot: the second query queues
  // until the first completes.
  SimSchedule queued = SimulateWorkloadSchedule(quanta, {0.0, 5.0}, 2, 1,
                                                SchedulePolicyConfig{});
  EXPECT_EQ(queued.start_msec, (std::vector<double>{0.0, 10.0}));
  EXPECT_EQ(queued.finish_msec, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(queued.queue_wait_msec, (std::vector<double>{0.0, 5.0}));
  EXPECT_EQ(queued.latency_msec, (std::vector<double>{10.0, 15.0}));
  // Empty arrivals == the closed-queue overloads, field for field.
  const std::vector<std::vector<double>> plain = {{10.0}, {10.0}};
  const SimSchedule closed_new =
      SimulateWorkloadSchedule(quanta, {}, 2, 1, SchedulePolicyConfig{});
  const SimSchedule closed_old = SimulateWorkloadSchedule(plain, 2, 1);
  EXPECT_EQ(closed_new.start_msec, closed_old.start_msec);
  EXPECT_EQ(closed_new.finish_msec, closed_old.finish_msec);
  EXPECT_EQ(closed_new.makespan_msec, closed_old.makespan_msec);
  EXPECT_EQ(closed_old.latency_msec, closed_old.finish_msec);  // arrive at 0
}

// ---------------------------------------------------------------------------
// (d) Overload: queue wait grows monotonically; the adaptive controller
//     never starves the workload.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, OverloadGrowsQueueWaitMonotonically) {
  Engine engine = MakeServiceEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(12);
  // Service rate anchor: one query's solo machine time.
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  ASSERT_GT(solo.simulated_msec, 0.0);
  spec.options.num_threads = 1;
  spec.options.max_concurrent = 1;
  spec.options.arrival.kind = ArrivalKind::kUniform;
  // Arrivals 5x faster than the server drains: every gap adds another
  // (service - gap) of backlog.
  spec.options.arrival.rate_qps = 5e3 / solo.simulated_msec;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  for (size_t i = 1; i < report.queries.size(); ++i) {
    EXPECT_GT(report.queries[i].sim_queue_wait_msec,
              report.queries[i - 1].sim_queue_wait_msec)
        << "query " << i;
  }
  EXPECT_GT(report.queue_wait.max_msec,
            5.0 * solo.simulated_msec);  // deep backlog by the tail
  EXPECT_EQ(report.queue_wait.max_msec,
            report.queries.back().sim_queue_wait_msec);
}

TEST(ServiceModeTest, AdaptiveControllerNeverStarvesUnderOverload) {
  Engine engine = MakeServiceEngine();
  WorkloadSpec spec = MakeHomogeneousWorkload(12);
  const DriveResult solo = SoloDrive(engine, spec.queries[0]);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 4;
  spec.options.contention = true;
  spec.options.audit_contention = true;
  spec.options.adaptive_admission = true;
  // A hair-trigger slowdown threshold: any jitter reads as pressure, so
  // the controller marches straight to its floor — the worst case the
  // progress guarantee must survive.
  spec.options.admission.high_slowdown = 0.99;
  spec.options.admission.epoch_quanta = 2;
  spec.options.admission.hold_epochs = 0;
  spec.options.arrival.kind = ArrivalKind::kUniform;
  spec.options.arrival.rate_qps = 5e3 / solo.simulated_msec;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_GT(report.admission_decreases, 0u);
  EXPECT_EQ(report.admission_min_limit, 1u);  // floor reached, never 0
  EXPECT_EQ(report.admission_final_limit, 1u);
  for (const WorkloadQueryReport& q : report.queries) {
    // Every query still completes: the floor admits one at a time.
    EXPECT_GT(q.drive.num_vectors, 0u) << q.name;
    EXPECT_GT(q.sim_finish_msec, q.sim_start_msec) << q.name;
    EXPECT_GE(q.sim_start_msec, q.sim_arrival_msec) << q.name;
  }
  EXPECT_GT(report.sim_makespan_msec, 0.0);
  // Still overloaded: the backlog (and so the queue-wait tail) grows.
  EXPECT_GT(report.queries.back().sim_queue_wait_msec,
            report.queries.front().sim_queue_wait_msec);
}

// ---------------------------------------------------------------------------
// AdmissionController unit behaviour.
// ---------------------------------------------------------------------------

TEST(ServiceModeTest, AdmissionControllerStepsDownUnderPressureUpWhenClear) {
  AdmissionConfig config;
  config.epoch_quanta = 4;
  config.hold_epochs = 0;
  config.high_eviction_frac = 0.25;
  config.low_eviction_frac = 0.05;
  AdmissionController controller(/*num_queries=*/4, /*max_limit=*/4,
                                 /*l3_capacity_lines=*/1'000, config);
  EXPECT_EQ(controller.limit(), 4u);
  // Heavy eviction pressure: one step down per epoch until the floor.
  for (int epoch = 0; epoch < 8; ++epoch) {
    const size_t before = controller.limit();
    for (size_t k = 0; k < config.epoch_quanta; ++k) {
      controller.OnQuantum(k % 4, 10.0, /*evictions=*/500, /*occupancy=*/0,
                           /*in_flight=*/4, /*waiting=*/0);
    }
    EXPECT_EQ(controller.limit(),
              before > 1 ? before - 1 : size_t{1});
  }
  EXPECT_EQ(controller.limit(), 1u);  // the floor, never 0
  EXPECT_EQ(controller.min_limit_seen(), 1u);
  EXPECT_EQ(controller.decreases(), 3u);
  // All clear with demand: climbs back to the ceiling, one per epoch.
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (size_t k = 0; k < config.epoch_quanta; ++k) {
      controller.OnQuantum(k % 4, 10.0, /*evictions=*/0, /*occupancy=*/0,
                           /*in_flight=*/controller.limit(), /*waiting=*/2);
    }
  }
  EXPECT_EQ(controller.limit(), 4u);
  EXPECT_EQ(controller.increases(), 3u);
  // All clear but no demand: stays put.
  for (size_t k = 0; k < config.epoch_quanta; ++k) {
    controller.OnQuantum(k % 4, 10.0, 0, 0, 1, 0);
  }
  EXPECT_EQ(controller.limit(), 4u);
}

TEST(ServiceModeTest, AdmissionControllerOccupancyGuardBlocksRaisesAndSheds) {
  AdmissionConfig config;
  config.epoch_quanta = 2;
  config.hold_epochs = 0;
  config.high_occupancy_frac = 0.75;
  config.start_limit = 1;
  AdmissionController controller(/*num_queries=*/4, /*max_limit=*/4,
                                 /*l3_capacity_lines=*/1'000, config);
  EXPECT_EQ(controller.limit(), 1u);  // slow-start
  // All clear with demand, but the cache is crowded (0.8 >= 0.75): the
  // guard blocks every raise — admitting more would create the next
  // collision — and the floor keeps the limit from shedding below one.
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (size_t k = 0; k < config.epoch_quanta; ++k) {
      controller.OnQuantum(k % 4, 10.0, /*evictions=*/0, /*occupancy=*/800,
                           /*in_flight=*/controller.limit(), /*waiting=*/2);
    }
  }
  EXPECT_EQ(controller.limit(), 1u);
  EXPECT_EQ(controller.increases(), 0u);
  // Occupancy drains: the same clear-with-demand feedback now climbs one
  // step per epoch to the ceiling.
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (size_t k = 0; k < config.epoch_quanta; ++k) {
      controller.OnQuantum(k % 4, 10.0, /*evictions=*/0, /*occupancy=*/200,
                           /*in_flight=*/controller.limit(), /*waiting=*/2);
    }
  }
  EXPECT_EQ(controller.limit(), 4u);
  EXPECT_EQ(controller.increases(), 3u);
  // Crowding alone — zero evictions, zero slowdown — sheds one step per
  // epoch back to the floor.
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (size_t k = 0; k < config.epoch_quanta; ++k) {
      controller.OnQuantum(k % 4, 10.0, /*evictions=*/0, /*occupancy=*/900,
                           /*in_flight=*/controller.limit(), /*waiting=*/0);
    }
  }
  EXPECT_EQ(controller.limit(), 1u);
  EXPECT_EQ(controller.min_limit_seen(), 1u);
}

TEST(ServiceModeTest, ServiceOptionsValidate) {
  Engine engine = MakeServiceEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.arrival.kind = ArrivalKind::kPoisson;
  spec.options.arrival.rate_qps = 0;  // open kind needs a positive rate
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.arrival.rate_qps = 100.0;
  spec.options.arrival.kind = ArrivalKind::kBursty;
  spec.options.arrival.burst_rate_qps = 50.0;  // below the mean rate
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.arrival.burst_rate_qps = 0;
  spec.options.arrival.burst_len = 0;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.options.arrival = ArrivalSpec{};
  spec.options.adaptive_admission = true;
  spec.options.admission.epoch_quanta = 0;
  EXPECT_EQ(engine.ExecuteWorkload(spec).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nipo
