#include "exec/hash_table.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

TEST(HashTableTest, InsertAndLookup) {
  Pmu pmu;
  InstrumentedHashTable table(100, &pmu);
  ASSERT_TRUE(table.Insert(42, 7).ok());
  int64_t value = 0;
  EXPECT_TRUE(table.Lookup(42, &value));
  EXPECT_EQ(value, 7);
  EXPECT_FALSE(table.Lookup(43, &value));
  EXPECT_EQ(table.size(), 1u);
}

TEST(HashTableTest, CapacityIsPowerOfTwoAndRoomy) {
  Pmu pmu;
  InstrumentedHashTable table(100, &pmu);
  EXPECT_EQ(table.capacity(), 256u);  // next pow2 of 200
  EXPECT_EQ(table.size(), 0u);
}

TEST(HashTableTest, DuplicateInsertRejected) {
  Pmu pmu;
  InstrumentedHashTable table(10, &pmu);
  ASSERT_TRUE(table.Insert(1, 10).ok());
  const Status st = table.Insert(1, 20);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  int64_t value = 0;
  EXPECT_TRUE(table.Lookup(1, &value));
  EXPECT_EQ(value, 10);  // first value kept
}

TEST(HashTableTest, ManyKeysSurviveCollisions) {
  Pmu pmu;
  const int kKeys = 10'000;
  InstrumentedHashTable table(kKeys, &pmu);
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(table.Insert(k * 7919, k).ok()) << k;
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    int64_t value = -1;
    ASSERT_TRUE(table.Lookup(k * 7919, &value));
    ASSERT_EQ(value, k);
  }
}

TEST(HashTableTest, NegativeKeysWork) {
  Pmu pmu;
  InstrumentedHashTable table(10, &pmu);
  ASSERT_TRUE(table.Insert(-5, 50).ok());
  int64_t value = 0;
  EXPECT_TRUE(table.Lookup(-5, &value));
  EXPECT_EQ(value, 50);
}

TEST(HashTableTest, CapacityLimitEnforced) {
  Pmu pmu;
  InstrumentedHashTable table(1, &pmu);  // capacity 4, limit 4 - 0 = 4?
  // 7/8 of 4 floors to 3 usable entries (4 - 4/8 = 4 - 0 = 4; integer
  // division keeps at least one free slot only for capacity >= 8).
  size_t inserted = 0;
  for (int k = 0; k < 16; ++k) {
    if (table.Insert(k, k).ok()) ++inserted;
  }
  EXPECT_LT(inserted, 16u);
  EXPECT_LE(table.size(), table.capacity());
}

TEST(HashTableTest, AccumulateUpserts) {
  Pmu pmu;
  InstrumentedHashTable table(10, &pmu);
  ASSERT_TRUE(table.Accumulate(3, 5).ok());   // insert 0 + 5
  ASSERT_TRUE(table.Accumulate(3, 7).ok());   // 5 + 7
  ASSERT_TRUE(table.Accumulate(4, 1, 100).ok());  // insert 100 + 1
  int64_t value = 0;
  ASSERT_TRUE(table.Lookup(3, &value));
  EXPECT_EQ(value, 12);
  ASSERT_TRUE(table.Lookup(4, &value));
  EXPECT_EQ(value, 101);
}

TEST(HashTableTest, AccessesFlowThroughPmu) {
  Pmu pmu;
  const PmuCounters before = pmu.Read();
  InstrumentedHashTable table(1000, &pmu);
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(table.Insert(k, k).ok());
  }
  const PmuCounters after = pmu.Read();
  EXPECT_GE(after.l1_accesses - before.l1_accesses, 500u);
  EXPECT_GT(after.instructions, before.instructions);
}

TEST(HashTableTest, ProbeLengthGrowsWithLoad) {
  Pmu pmu_low, pmu_high;
  // Low load: ~6% full.
  InstrumentedHashTable low(10'000, &pmu_low);
  Prng prng(2);
  for (int k = 0; k < 1000; ++k) {
    ASSERT_TRUE(
        low.Insert(static_cast<int64_t>(prng.Next() >> 1), k).ok());
  }
  // High load: same capacity, ~80% full.
  InstrumentedHashTable high(10'000, &pmu_high);
  for (int k = 0; k < 16'000; ++k) {
    const Status st =
        high.Insert(static_cast<int64_t>(prng.Next() >> 1), k);
    if (st.code() == StatusCode::kCapacityExceeded) break;
  }
  EXPECT_GT(high.average_probe_length(), low.average_probe_length());
  EXPECT_LT(low.average_probe_length(), 1.2);
}

}  // namespace
}  // namespace nipo
