#include "exec/pipeline.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

/// Builds a table where predicate outcomes are fully controlled:
/// a < kA passes with ~pa, b < kB with ~pb.
struct Fixture {
  Table table{"t"};
  uint64_t expected_qualifying = 0;
  double expected_sum = 0;

  Fixture(size_t n, double pa, double pb, uint64_t seed = 1) {
    Prng prng(seed);
    std::vector<int32_t> a(n), b(n);
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(prng.NextBounded(1000));
      b[i] = static_cast<int32_t>(prng.NextBounded(1000));
      v[i] = static_cast<int64_t>(prng.NextBounded(100));
      if (a[i] < pa * 1000 && b[i] < pb * 1000) {
        ++expected_qualifying;
        expected_sum += static_cast<double>(v[i]);
      }
    }
    EXPECT_TRUE(table.AddColumn("a", std::move(a)).ok());
    EXPECT_TRUE(table.AddColumn("b", std::move(b)).ok());
    EXPECT_TRUE(table.AddColumn("v", std::move(v)).ok());
  }

  std::vector<OperatorSpec> Ops(double pa, double pb) const {
    return {OperatorSpec::Predicate({"a", CompareOp::kLt, pa * 1000}),
            OperatorSpec::Predicate({"b", CompareOp::kLt, pb * 1000})};
  }
};

TEST(PipelineTest, ComputesCorrectResult) {
  Fixture fx(20'000, 0.3, 0.6);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.3, 0.6), {"v"},
                                        &pmu);
  ASSERT_TRUE(exec.ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  EXPECT_EQ(r.input_tuples, 20'000u);
  EXPECT_EQ(r.qualifying_tuples, fx.expected_qualifying);
  EXPECT_DOUBLE_EQ(r.aggregate, fx.expected_sum);
}

TEST(PipelineTest, ResultInvariantUnderReorder) {
  Fixture fx(20'000, 0.3, 0.6);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.3, 0.6), {"v"},
                                        &pmu);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec.ValueOrDie()->Reorder({1, 0}).ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  EXPECT_EQ(r.qualifying_tuples, fx.expected_qualifying);
  EXPECT_DOUBLE_EQ(r.aggregate, fx.expected_sum);
}

TEST(PipelineTest, BranchesTakenIdentity) {
  // Paper Section 2.2.1: qualifying = 2n - branches_taken.
  Fixture fx(30'000, 0.5, 0.5);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5), {}, &pmu);
  ASSERT_TRUE(exec.ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  const PmuCounters c = pmu.Read();
  EXPECT_EQ(2 * r.input_tuples - c.branches_taken, r.qualifying_tuples);
}

TEST(PipelineTest, BranchesNotTakenEqualsColumnAccessSum) {
  // BNT = (tuples passing pred 1) + (tuples passing both).
  Fixture fx(30'000, 0.4, 0.7);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.4, 0.7), {}, &pmu);
  ASSERT_TRUE(exec.ok());

  // Count pass-1 tuples independently.
  const auto& a = *fx.table.GetTypedColumn<int32_t>("a").ValueOrDie();
  uint64_t pass1 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 400) ++pass1;
  }
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  const PmuCounters c = pmu.Read();
  EXPECT_EQ(c.branches_not_taken, pass1 + r.qualifying_tuples);
}

TEST(PipelineTest, EarlyExitSkipsLaterColumns) {
  // With a first predicate of selectivity 0, the second column is never
  // loaded: L1 accesses cover only column a.
  Fixture fx(10'000, 0.0, 1.0);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(
      fx.table,
      {OperatorSpec::Predicate({"a", CompareOp::kLt, -1.0}),
       OperatorSpec::Predicate({"b", CompareOp::kLt, 2000.0})},
      {}, &pmu);
  ASSERT_TRUE(exec.ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  EXPECT_EQ(r.qualifying_tuples, 0u);
  EXPECT_EQ(pmu.Read().l1_accesses, 10'000u);  // one load per tuple
}

TEST(PipelineTest, ExecuteRangeSplitsMatchFullRun) {
  Fixture fx(10'000, 0.5, 0.5);
  Pmu pmu1(HwConfig::ScaledXeon(8)), pmu2(HwConfig::ScaledXeon(8));
  auto full = PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5), {"v"},
                                        &pmu1);
  auto split = PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5), {"v"},
                                         &pmu2);
  ASSERT_TRUE(full.ok() && split.ok());
  const VectorResult whole = full.ValueOrDie()->ExecuteAll();
  VectorResult sum;
  for (size_t begin = 0; begin < 10'000; begin += 1024) {
    const VectorResult part = split.ValueOrDie()->ExecuteRange(
        begin, std::min<size_t>(begin + 1024, 10'000));
    sum.input_tuples += part.input_tuples;
    sum.qualifying_tuples += part.qualifying_tuples;
    sum.aggregate += part.aggregate;
  }
  EXPECT_EQ(whole.qualifying_tuples, sum.qualifying_tuples);
  EXPECT_DOUBLE_EQ(whole.aggregate, sum.aggregate);
}

TEST(PipelineTest, ReorderValidation) {
  Fixture fx(100, 0.5, 0.5);
  Pmu pmu;
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5), {}, &pmu);
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec.ValueOrDie()->Reorder({0}).ok());        // wrong size
  EXPECT_FALSE(exec.ValueOrDie()->Reorder({0, 0}).ok());     // duplicate
  EXPECT_FALSE(exec.ValueOrDie()->Reorder({0, 7}).ok());     // out of range
  EXPECT_TRUE(exec.ValueOrDie()->Reorder({1, 0}).ok());
  EXPECT_EQ(exec.ValueOrDie()->current_order(),
            (std::vector<size_t>{1, 0}));
  EXPECT_EQ(exec.ValueOrDie()->OperatorAt(0).predicate.column, "b");
}

TEST(PipelineTest, CompileErrors) {
  Fixture fx(100, 0.5, 0.5);
  Pmu pmu;
  // Unknown predicate column.
  EXPECT_FALSE(PipelineExecutor::Compile(
                   fx.table,
                   {OperatorSpec::Predicate({"zzz", CompareOp::kLt, 1.0})},
                   {}, &pmu)
                   .ok());
  // Unknown payload column.
  EXPECT_FALSE(PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5),
                                         {"zzz"}, &pmu)
                   .ok());
  // Null PMU.
  EXPECT_FALSE(
      PipelineExecutor::Compile(fx.table, fx.Ops(0.5, 0.5), {}, nullptr)
          .ok());
  // Empty pipeline.
  EXPECT_FALSE(PipelineExecutor::Compile(fx.table, {}, {}, &pmu).ok());
}

TEST(PipelineTest, EnumeratorCountsPerPosition) {
  Fixture fx(5'000, 0.4, 0.7);
  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(fx.table, fx.Ops(0.4, 0.7), {}, &pmu,
                                        InstrumentationMode::kEnumerator);
  ASSERT_TRUE(exec.ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  const auto& counts = exec.ValueOrDie()->enumerator_pass_counts();
  ASSERT_EQ(counts.size(), 2u);
  // Position 1 pass count equals the final qualifying count.
  EXPECT_EQ(counts[1], r.qualifying_tuples);
  EXPECT_GE(counts[0], counts[1]);
  exec.ValueOrDie()->ResetEnumeratorCounts();
  EXPECT_EQ(exec.ValueOrDie()->enumerator_pass_counts()[0], 0u);
}

TEST(PipelineTest, EnumeratorModeCostsMoreCycles) {
  Fixture fx(20'000, 0.9, 0.9);
  Pmu pmu_a(HwConfig::ScaledXeon(8)), pmu_b(HwConfig::ScaledXeon(8));
  auto plain = PipelineExecutor::Compile(fx.table, fx.Ops(0.9, 0.9), {},
                                         &pmu_a, InstrumentationMode::kPmu);
  auto enumer = PipelineExecutor::Compile(
      fx.table, fx.Ops(0.9, 0.9), {}, &pmu_b,
      InstrumentationMode::kEnumerator);
  ASSERT_TRUE(plain.ok() && enumer.ok());
  plain.ValueOrDie()->ExecuteAll();
  enumer.ValueOrDie()->ExecuteAll();
  EXPECT_GT(pmu_b.Read().cycles, pmu_a.Read().cycles);
}

TEST(PipelineTest, ExpensivePredicateChargesExtraInstructions) {
  Fixture fx(10'000, 0.5, 0.5);
  Pmu pmu_a(HwConfig::ScaledXeon(8)), pmu_b(HwConfig::ScaledXeon(8));
  auto cheap_ops = fx.Ops(0.5, 0.5);
  auto costly_ops = cheap_ops;
  costly_ops[0].predicate.extra_instructions = 50;
  auto cheap = PipelineExecutor::Compile(fx.table, cheap_ops, {}, &pmu_a);
  auto costly = PipelineExecutor::Compile(fx.table, costly_ops, {}, &pmu_b);
  ASSERT_TRUE(cheap.ok() && costly.ok());
  cheap.ValueOrDie()->ExecuteAll();
  costly.ValueOrDie()->ExecuteAll();
  EXPECT_GT(pmu_b.Read().instructions,
            pmu_a.Read().instructions + 10'000u * 49);
}

TEST(PipelineTest, FkProbeFiltersThroughDimension) {
  // Fact rows point at dimension rows; dimension filter keeps even ids.
  const size_t kFact = 8'000, kDim = 100;
  Prng prng(3);
  std::vector<int32_t> fk(kFact);
  uint64_t expected = 0;
  for (size_t i = 0; i < kFact; ++i) {
    fk[i] = static_cast<int32_t>(prng.NextBounded(kDim));
    if (fk[i] % 2 == 0) ++expected;
  }
  Table fact("fact");
  ASSERT_TRUE(fact.AddColumn("fk", std::move(fk)).ok());
  std::vector<int32_t> parity(kDim);
  for (size_t i = 0; i < kDim; ++i) parity[i] = static_cast<int32_t>(i % 2);
  Table dim("dim");
  ASSERT_TRUE(dim.AddColumn("parity", std::move(parity)).ok());

  Pmu pmu(HwConfig::ScaledXeon(8));
  auto exec = PipelineExecutor::Compile(
      fact,
      {OperatorSpec::FkProbe({"fk", &dim, "parity", CompareOp::kEq, 0.0})},
      {}, &pmu);
  ASSERT_TRUE(exec.ok());
  const VectorResult r = exec.ValueOrDie()->ExecuteAll();
  EXPECT_EQ(r.qualifying_tuples, expected);
}

TEST(PipelineTest, FkProbeRequiresInt32Key) {
  Table fact("fact");
  ASSERT_TRUE(fact.AddColumn<int64_t>("fk", {0, 1}).ok());
  Table dim("dim");
  ASSERT_TRUE(dim.AddColumn<int32_t>("x", {0, 1}).ok());
  Pmu pmu;
  auto exec = PipelineExecutor::Compile(
      fact, {OperatorSpec::FkProbe({"fk", &dim, "x", CompareOp::kLe, 1.0})},
      {}, &pmu);
  EXPECT_EQ(exec.status().code(), StatusCode::kTypeMismatch);
}

TEST(PipelineTest, FkProbeRequiresDimension) {
  Table fact("fact");
  ASSERT_TRUE(fact.AddColumn<int32_t>("fk", {0}).ok());
  Pmu pmu;
  auto exec = PipelineExecutor::Compile(
      fact,
      {OperatorSpec::FkProbe({"fk", nullptr, "x", CompareOp::kLe, 1.0})},
      {}, &pmu);
  EXPECT_FALSE(exec.ok());
}

TEST(PipelineTest, OperatorToString) {
  OperatorSpec p = OperatorSpec::Predicate({"a", CompareOp::kLt, 5.0});
  EXPECT_NE(p.ToString().find("a<"), std::string::npos);
  Table dim("orders");
  OperatorSpec probe = OperatorSpec::FkProbe(
      {"fk", &dim, "col", CompareOp::kGe, 1.0});
  EXPECT_NE(probe.ToString().find("probe(orders.col>="), std::string::npos);
}

TEST(PipelineTest, AllCompareOpsEvaluateCorrectly) {
  EXPECT_TRUE(EvaluateCompare(1.0, CompareOp::kLt, 2.0));
  EXPECT_FALSE(EvaluateCompare(2.0, CompareOp::kLt, 2.0));
  EXPECT_TRUE(EvaluateCompare(2.0, CompareOp::kLe, 2.0));
  EXPECT_TRUE(EvaluateCompare(3.0, CompareOp::kGt, 2.0));
  EXPECT_TRUE(EvaluateCompare(2.0, CompareOp::kGe, 2.0));
  EXPECT_TRUE(EvaluateCompare(2.0, CompareOp::kEq, 2.0));
  EXPECT_TRUE(EvaluateCompare(1.0, CompareOp::kNe, 2.0));
  EXPECT_FALSE(EvaluateCompare(2.0, CompareOp::kNe, 2.0));
}

TEST(PipelineTest, DoubleColumnPredicates) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<double>("x", {0.5, 1.5, 2.5, 3.5}).ok());
  Pmu pmu;
  auto exec = PipelineExecutor::Compile(
      t, {OperatorSpec::Predicate({"x", CompareOp::kGt, 1.0})}, {}, &pmu);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec.ValueOrDie()->ExecuteAll().qualifying_tuples, 3u);
}

TEST(PipelineTest, Int64ColumnPredicates) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn<int64_t>("x", {10, 20, 30}).ok());
  Pmu pmu;
  auto exec = PipelineExecutor::Compile(
      t, {OperatorSpec::Predicate({"x", CompareOp::kLe, 20.0})}, {}, &pmu);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec.ValueOrDie()->ExecuteAll().qualifying_tuples, 2u);
}

}  // namespace
}  // namespace nipo
