#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

std::unique_ptr<Table> MakeTable(const std::string& name, size_t n) {
  Prng prng(1);
  std::vector<int32_t> a(n), b(n);
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    b[i] = static_cast<int32_t>(prng.NextBounded(100));
    v[i] = 1;
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("b", std::move(b)).ok());
  EXPECT_TRUE(t->AddColumn("v", std::move(v)).ok());
  return t;
}

QuerySpec MakeQuery() {
  QuerySpec q;
  q.table = "t";
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 50.0}),
           OperatorSpec::Predicate({"b", CompareOp::kLt, 10.0})};
  q.payload_columns = {"v"};
  return q;
}

TEST(EngineTest, RegisterAndLookup) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 100)).ok());
  EXPECT_TRUE(engine.GetTable("t").ok());
  EXPECT_EQ(engine.GetTable("zzz").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.GetMutableTable("t").ok());
  EXPECT_EQ(engine.RegisterTable(MakeTable("t", 5)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.RegisterTable(nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, BaselineExecutesSpecOrder) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 50'000)).ok());
  auto r = engine.ExecuteBaseline(MakeQuery(), 4'096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().order, (std::vector<size_t>{0, 1}));
  EXPECT_GT(r.ValueOrDie().drive.qualifying_tuples, 0u);
  // aggregate counts qualifying rows since v == 1.
  EXPECT_DOUBLE_EQ(
      r.ValueOrDie().drive.aggregate,
      static_cast<double>(r.ValueOrDie().drive.qualifying_tuples));
}

TEST(EngineTest, BaselineHonorsExplicitOrder) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 50'000)).ok());
  auto r = engine.ExecuteBaseline(MakeQuery(), 4'096,
                                  std::vector<size_t>{1, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().order, (std::vector<size_t>{1, 0}));
}

TEST(EngineTest, BaselineIsDeterministic) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 50'000)).ok());
  auto a = engine.ExecuteBaseline(MakeQuery(), 4'096);
  auto b = engine.ExecuteBaseline(MakeQuery(), 4'096);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().drive.total.cycles,
            b.ValueOrDie().drive.total.cycles);
  EXPECT_EQ(a.ValueOrDie().drive.total.l3_accesses,
            b.ValueOrDie().drive.total.l3_accesses);
}

TEST(EngineTest, ProgressiveMatchesBaselineResult) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 80'000)).ok());
  auto base = engine.ExecuteBaseline(MakeQuery(), 4'096);
  ProgressiveConfig cfg;
  cfg.vector_size = 4'096;
  cfg.reopt_interval = 3;
  auto prog = engine.ExecuteProgressive(MakeQuery(), cfg);
  ASSERT_TRUE(base.ok() && prog.ok());
  EXPECT_EQ(base.ValueOrDie().drive.qualifying_tuples,
            prog.ValueOrDie().drive.qualifying_tuples);
  EXPECT_DOUBLE_EQ(base.ValueOrDie().drive.aggregate,
                   prog.ValueOrDie().drive.aggregate);
}

TEST(EngineTest, ProgressiveHonorsInitialOrder) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 20'000)).ok());
  ProgressiveConfig cfg;
  cfg.vector_size = 4'096;
  cfg.reopt_interval = 1000;  // effectively never reoptimize
  auto prog = engine.ExecuteProgressive(MakeQuery(), cfg,
                                        std::vector<size_t>{1, 0});
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.ValueOrDie().final_order, (std::vector<size_t>{1, 0}));
}

TEST(EngineTest, ErrorsPropagate) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterTable(MakeTable("t", 100)).ok());
  QuerySpec bad = MakeQuery();
  bad.table = "missing";
  EXPECT_EQ(engine.ExecuteBaseline(bad, 1024).status().code(),
            StatusCode::kNotFound);
  bad = MakeQuery();
  bad.ops[0].predicate.column = "zzz";
  EXPECT_FALSE(engine.ExecuteBaseline(bad, 1024).ok());
  EXPECT_FALSE(engine.ExecuteBaseline(MakeQuery(), 0).ok());
  ProgressiveConfig cfg;
  cfg.vector_size = 0;
  EXPECT_FALSE(engine.ExecuteProgressive(MakeQuery(), cfg).ok());
  // Bad explicit order.
  EXPECT_FALSE(
      engine.ExecuteBaseline(MakeQuery(), 1024, std::vector<size_t>{0, 0})
          .ok());
}

TEST(EngineTest, AllOrdersEnumerates) {
  EXPECT_EQ(AllOrders(1).size(), 1u);
  EXPECT_EQ(AllOrders(3).size(), 6u);
  EXPECT_EQ(AllOrders(5).size(), 120u);  // the paper's permutation count
  const auto orders = AllOrders(3);
  // Lexicographic, starting with identity.
  EXPECT_EQ(orders.front(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(orders.back(), (std::vector<size_t>{2, 1, 0}));
}

}  // namespace
}  // namespace nipo
