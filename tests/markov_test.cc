#include "cost/markov.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.h"

namespace nipo {
namespace {

TEST(MarkovTest, StationaryDistributionSumsToOne) {
  for (int states : {2, 4, 6, 8}) {
    for (double p : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const auto pi = MarkovStationaryDistribution(
          PredictorConfig::Symmetric(states), p);
      const double sum = std::accumulate(pi.begin(), pi.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "states=" << states << " p=" << p;
    }
  }
}

TEST(MarkovTest, DegenerateSelectivities) {
  const PredictorConfig cfg = PredictorConfig::Symmetric(6);
  // p = 1: every branch not taken -> all mass at the not-taken end.
  auto pi = MarkovStationaryDistribution(cfg, 1.0);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
  // p = 0: every branch taken -> all mass at the taken end.
  pi = MarkovStationaryDistribution(cfg, 0.0);
  EXPECT_DOUBLE_EQ(pi[5], 1.0);
}

TEST(MarkovTest, FiftyPercentIsUniform) {
  // At p = 0.5 the chain's ratio r = 1, so the stationary distribution is
  // uniform across states.
  const auto pi =
      MarkovStationaryDistribution(PredictorConfig::Symmetric(6), 0.5);
  for (double mass : pi) EXPECT_NEAR(mass, 1.0 / 6, 1e-12);
}

TEST(MarkovTest, ClosedFormMatchesPowerIteration) {
  for (int states : {2, 4, 5, 6, 7, 8}) {
    for (int nt = 1; nt < states; ++nt) {
      const PredictorConfig cfg{states, nt};
      for (double p : {0.05, 0.3, 0.5, 0.8, 0.95}) {
        const auto closed = MarkovStationaryDistribution(cfg, p);
        const auto iterated = MarkovStationaryByIteration(cfg, p);
        for (int i = 0; i < states; ++i) {
          EXPECT_NEAR(closed[static_cast<size_t>(i)],
                      iterated[static_cast<size_t>(i)], 1e-6)
              << "states=" << states << " nt=" << nt << " p=" << p;
        }
      }
    }
  }
}

TEST(MarkovTest, BranchProbabilitiesPartition) {
  const PredictorConfig cfg = PredictorConfig::Symmetric(6);
  for (double p : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const BranchProbabilities probs = ComputeBranchProbabilities(cfg, p);
    EXPECT_NEAR(probs.predict_taken + probs.predict_not_taken, 1.0, 1e-12);
    // mp + rp covers every branch.
    EXPECT_NEAR(probs.mp + probs.rp, 1.0, 1e-12);
    EXPECT_NEAR(probs.mp, probs.taken_mp + probs.not_taken_mp, 1e-12);
    EXPECT_GE(probs.mp, 0.0);
    EXPECT_LE(probs.mp, 0.5 + 1e-12);  // never worse than a coin flip
  }
}

TEST(MarkovTest, MispredictionPeaksAtFifty) {
  const PredictorConfig cfg = PredictorConfig::Symmetric(6);
  const double at_half = ComputeBranchProbabilities(cfg, 0.5).mp;
  for (double p : {0.1, 0.25, 0.4, 0.6, 0.75, 0.9}) {
    EXPECT_LE(ComputeBranchProbabilities(cfg, p).mp, at_half + 1e-12)
        << "p=" << p;
  }
}

TEST(MarkovTest, SymmetricChainIsSymmetricInP) {
  const PredictorConfig cfg = PredictorConfig::Symmetric(6);
  for (double p : {0.1, 0.3, 0.45}) {
    const BranchProbabilities low = ComputeBranchProbabilities(cfg, p);
    const BranchProbabilities high =
        ComputeBranchProbabilities(cfg, 1.0 - p);
    EXPECT_NEAR(low.mp, high.mp, 1e-12);
    // Taken mispredictions at p mirror not-taken mispredictions at 1-p.
    EXPECT_NEAR(low.taken_mp, high.not_taken_mp, 1e-12);
  }
}

TEST(MarkovTest, MoreStatesMispredictLessAtLowSelectivity) {
  // Deeper counters resist rare flips better: at p = 0.1 an 8-state chain
  // mispredicts no more than a 2-state chain.
  const double mp2 =
      ComputeBranchProbabilities(PredictorConfig::Symmetric(2), 0.1).mp;
  const double mp8 =
      ComputeBranchProbabilities(PredictorConfig::Symmetric(8), 0.1).mp;
  EXPECT_LE(mp8, mp2 + 1e-12);
}

TEST(MarkovTest, ZeuchBaselineShape) {
  EXPECT_DOUBLE_EQ(ZeuchMispredictionFraction(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ZeuchMispredictionFraction(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ZeuchMispredictionFraction(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ZeuchMispredictionFraction(0.3), 0.3);
  EXPECT_DOUBLE_EQ(ZeuchMispredictionFraction(0.7), 0.3);
}

TEST(MarkovTest, MarkovExceedsZeuchBaselineNearFifty) {
  // The paper's point (Section 3.2): the piecewise-linear baseline of
  // Zeuch et al. [23] "becomes inaccurate in the selectivity range around
  // 50%" -- a real saturating-counter predictor mispredicts *more* than
  // the Bayes-optimal min(p, 1-p) there, which the Markov chain captures.
  const PredictorConfig cfg = PredictorConfig::Symmetric(6);
  for (double p : {0.3, 0.4, 0.45, 0.55, 0.6, 0.7}) {
    EXPECT_GT(ComputeBranchProbabilities(cfg, p).mp,
              ZeuchMispredictionFraction(p))
        << "p=" << p;
  }
  // At the extremes the two agree.
  EXPECT_NEAR(ComputeBranchProbabilities(cfg, 0.0).mp,
              ZeuchMispredictionFraction(0.0), 1e-12);
  EXPECT_NEAR(ComputeBranchProbabilities(cfg, 1.0).mp,
              ZeuchMispredictionFraction(1.0), 1e-12);
}

class MarkovVsSimulationTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MarkovVsSimulationTest, StationaryModelMatchesSimulatedPredictor) {
  // The analytic chain must reproduce the simulated hardware unit's
  // long-run misprediction splits on i.i.d. branches.
  const int states = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  const PredictorConfig cfg = PredictorConfig::Symmetric(states);
  BranchPredictor bp(cfg);
  bp.EnsureSites(1);
  Prng prng(1234);
  const int kWarmup = 2000, kSamples = 400'000;
  for (int i = 0; i < kWarmup; ++i) bp.Observe(0, !prng.NextBool(p));
  int64_t taken_mp = 0, not_taken_mp = 0;
  for (int i = 0; i < kSamples; ++i) {
    const bool taken = !prng.NextBool(p);
    const BranchOutcome out = bp.Observe(0, taken);
    if (out.mispredicted) {
      if (taken) {
        ++taken_mp;
      } else {
        ++not_taken_mp;
      }
    }
  }
  const BranchProbabilities probs = ComputeBranchProbabilities(cfg, p);
  EXPECT_NEAR(static_cast<double>(taken_mp) / kSamples, probs.taken_mp,
              0.01);
  EXPECT_NEAR(static_cast<double>(not_taken_mp) / kSamples,
              probs.not_taken_mp, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MarkovVsSimulationTest,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.95)));

}  // namespace
}  // namespace nipo
