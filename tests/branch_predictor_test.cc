#include "hw/branch_predictor.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

TEST(PredictorConfigTest, Presets) {
  const PredictorConfig s6 = PredictorConfig::Symmetric(6);
  EXPECT_EQ(s6.num_states, 6);
  EXPECT_EQ(s6.not_taken_states, 3);
  const PredictorConfig p5t = PredictorConfig::PlusOneTaken(5);
  EXPECT_EQ(p5t.not_taken_states, 2);  // 2 NT + 3 T
  const PredictorConfig p5nt = PredictorConfig::PlusOneNotTaken(5);
  EXPECT_EQ(p5nt.not_taken_states, 3);  // 3 NT + 2 T
  EXPECT_TRUE(s6.Valid());
  EXPECT_FALSE((PredictorConfig{1, 0}.Valid()));
  EXPECT_FALSE((PredictorConfig{4, 4}.Valid()));
  EXPECT_FALSE((PredictorConfig{4, 0}.Valid()));
}

TEST(BranchPredictorTest, SaturatesTowardTaken) {
  BranchPredictor bp(PredictorConfig::Symmetric(4));
  bp.EnsureSites(1);
  for (int i = 0; i < 10; ++i) bp.Observe(0, true);
  EXPECT_EQ(bp.state(0), 3);  // strongly taken
  EXPECT_TRUE(bp.PredictsTaken(0));
  // After saturation, a taken branch is predicted correctly.
  EXPECT_FALSE(bp.Observe(0, true).mispredicted);
}

TEST(BranchPredictorTest, SaturatesTowardNotTaken) {
  BranchPredictor bp(PredictorConfig::Symmetric(4));
  bp.EnsureSites(1);
  for (int i = 0; i < 10; ++i) bp.Observe(0, false);
  EXPECT_EQ(bp.state(0), 0);
  EXPECT_FALSE(bp.PredictsTaken(0));
  EXPECT_FALSE(bp.Observe(0, false).mispredicted);
}

TEST(BranchPredictorTest, HysteresisSurvivesOneFlip) {
  // A 6-state predictor saturated taken should still predict taken after
  // one or two not-taken outcomes (that is the point of deep counters).
  BranchPredictor bp(PredictorConfig::Symmetric(6));
  bp.EnsureSites(1);
  for (int i = 0; i < 10; ++i) bp.Observe(0, true);
  bp.Observe(0, false);  // state 5 -> 4
  EXPECT_TRUE(bp.PredictsTaken(0));
  bp.Observe(0, false);  // 4 -> 3
  EXPECT_TRUE(bp.PredictsTaken(0));
  bp.Observe(0, false);  // 3 -> 2: crosses the boundary
  EXPECT_FALSE(bp.PredictsTaken(0));
}

TEST(BranchPredictorTest, MispredictionClassification) {
  BranchPredictor bp(PredictorConfig::Symmetric(2));
  bp.EnsureSites(1);
  // Drive to strongly-not-taken.
  bp.Observe(0, false);
  ASSERT_FALSE(bp.PredictsTaken(0));
  // Actual taken while predicting not-taken: a mispredicted taken branch.
  const BranchOutcome out = bp.Observe(0, true);
  EXPECT_TRUE(out.taken);
  EXPECT_TRUE(out.mispredicted);
}

TEST(BranchPredictorTest, SitesAreIndependent) {
  BranchPredictor bp(PredictorConfig::Symmetric(4));
  bp.EnsureSites(2);
  for (int i = 0; i < 10; ++i) {
    bp.Observe(0, true);
    bp.Observe(1, false);
  }
  EXPECT_TRUE(bp.PredictsTaken(0));
  EXPECT_FALSE(bp.PredictsTaken(1));
}

TEST(BranchPredictorTest, EnsureSitesGrowsWithoutClobbering) {
  BranchPredictor bp(PredictorConfig::Symmetric(4));
  bp.EnsureSites(1);
  for (int i = 0; i < 10; ++i) bp.Observe(0, true);
  bp.EnsureSites(3);
  EXPECT_EQ(bp.num_sites(), 3u);
  EXPECT_TRUE(bp.PredictsTaken(0));        // old state kept
  EXPECT_EQ(bp.state(1), 2);               // new sites start weakly taken
}

TEST(BranchPredictorTest, ResetRestoresInitialState) {
  BranchPredictor bp(PredictorConfig::Symmetric(6));
  bp.EnsureSites(1);
  for (int i = 0; i < 10; ++i) bp.Observe(0, false);
  bp.Reset();
  EXPECT_EQ(bp.state(0), 3);
}

TEST(BranchPredictorTest, AlternatingPatternOnTwoStatePredictor) {
  // Alternating T/NT on a 2-state predictor mispredicts every branch once
  // warmed up -- the classic worst case.
  BranchPredictor bp(PredictorConfig::Symmetric(2));
  bp.EnsureSites(1);
  bool taken = false;
  // Warm up.
  for (int i = 0; i < 4; ++i) {
    bp.Observe(0, taken);
    taken = !taken;
  }
  int mispredicted = 0;
  for (int i = 0; i < 100; ++i) {
    if (bp.Observe(0, taken).mispredicted) ++mispredicted;
    taken = !taken;
  }
  EXPECT_EQ(mispredicted, 100);
}

class PredictorSelectivityTest : public ::testing::TestWithParam<double> {};

TEST_P(PredictorSelectivityTest, MispredictionRateBoundedByMinPOneMinusP) {
  // For random i.i.d. outcomes, any sane predictor's long-run
  // misprediction rate lies between min(p, 1-p) (the Bayes rate) and 2 *
  // min(p, 1-p) (worst constant-prediction penalty); check the simulated
  // 6-state unit obeys this at every selectivity.
  const double p = GetParam();  // probability branch NOT taken
  BranchPredictor bp(PredictorConfig::Symmetric(6));
  bp.EnsureSites(1);
  Prng prng(42);
  const int kWarmup = 1000, kSamples = 200'000;
  for (int i = 0; i < kWarmup; ++i) bp.Observe(0, !prng.NextBool(p));
  int mispredicted = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (bp.Observe(0, !prng.NextBool(p)).mispredicted) ++mispredicted;
  }
  const double rate = static_cast<double>(mispredicted) / kSamples;
  const double bayes = std::min(p, 1.0 - p);
  EXPECT_GE(rate, bayes * 0.9 - 0.002);
  EXPECT_LE(rate, 2.0 * bayes + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredictorSelectivityTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.25, 0.4, 0.5,
                                           0.6, 0.75, 0.9, 0.95, 1.0));

}  // namespace
}  // namespace nipo
