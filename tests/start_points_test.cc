#include "optimizer/start_points.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nipo {
namespace {

TEST(StartPointsTest, VerticesComeFirst) {
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5});
  std::set<std::vector<double>> vertices;
  for (int i = 0; i < 4; ++i) vertices.insert(gen.Next());
  EXPECT_EQ(vertices.size(), 4u);
  EXPECT_TRUE(vertices.count({0.0, 0.0}));
  EXPECT_TRUE(vertices.count({0.0, 1.0}));
  EXPECT_TRUE(vertices.count({1.0, 0.0}));
  EXPECT_TRUE(vertices.count({1.0, 1.0}));
}

TEST(StartPointsTest, NullHypothesisFollowsVertices) {
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.25, 0.5});
  for (int i = 0; i < 4; ++i) gen.Next();
  const auto null_point = gen.Next();
  EXPECT_DOUBLE_EQ(null_point[0], 0.25);
  EXPECT_DOUBLE_EQ(null_point[1], 0.5);
}

TEST(StartPointsTest, FigureNineCentroids) {
  // Paper Figure 9: null hypothesis at the even split (25% overall in 2D
  // -> C1 = (0.5, 0.5) in per-axis coordinates); the four follow-up starts
  // are the centroids of the four equal sub-squares.
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5},
                          /*include_vertices=*/false);
  const auto c1 = gen.Next();
  EXPECT_EQ(c1, (std::vector<double>{0.5, 0.5}));
  std::set<std::vector<double>> next_four;
  for (int i = 0; i < 4; ++i) next_four.insert(gen.Next());
  EXPECT_TRUE(next_four.count({0.25, 0.25}));
  EXPECT_TRUE(next_four.count({0.25, 0.75}));
  EXPECT_TRUE(next_four.count({0.75, 0.25}));
  EXPECT_TRUE(next_four.count({0.75, 0.75}));
}

TEST(StartPointsTest, LargestSubspaceFirst) {
  // Off-center null hypothesis: the biggest sub-box's centroid comes next.
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.1, 0.1},
                          /*include_vertices=*/false);
  gen.Next();  // null hypothesis
  const auto c2 = gen.Next();
  // Largest sub-box is [0.1,1]x[0.1,1], centroid (0.55, 0.55).
  EXPECT_NEAR(c2[0], 0.55, 1e-12);
  EXPECT_NEAR(c2[1], 0.55, 1e-12);
}

TEST(StartPointsTest, AllPointsInsideBox) {
  StartPointGenerator gen({0.2, 0.3, 0.1}, {0.9, 0.7, 0.4},
                          {0.5, 0.5, 0.2});
  for (int i = 0; i < 100; ++i) {
    const auto p = gen.Next();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_GE(p[0], 0.2 - 1e-12);
    EXPECT_LE(p[0], 0.9 + 1e-12);
    EXPECT_GE(p[1], 0.3 - 1e-12);
    EXPECT_LE(p[1], 0.7 + 1e-12);
    EXPECT_GE(p[2], 0.1 - 1e-12);
    EXPECT_LE(p[2], 0.4 + 1e-12);
  }
  EXPECT_EQ(gen.emitted(), 100u);
}

TEST(StartPointsTest, NullHypothesisOutsideBoxIsClamped) {
  StartPointGenerator gen({0.4}, {0.6}, {0.9}, false);
  EXPECT_DOUBLE_EQ(gen.Next()[0], 0.6);
}

TEST(StartPointsTest, InteriorPointsEventuallyCoverSpace) {
  // After many emissions, the interior points must be spread out: every
  // quadrant of the unit square receives at least one.
  StartPointGenerator gen({0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}, false);
  int quadrant_hits[4] = {0, 0, 0, 0};
  for (int i = 0; i < 60; ++i) {
    const auto p = gen.Next();
    const int q = (p[0] >= 0.5 ? 1 : 0) + (p[1] >= 0.5 ? 2 : 0);
    ++quadrant_hits[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quadrant_hits[q], 3);
}

TEST(StartPointsTest, DegenerateBoxKeepsReturningPoint) {
  StartPointGenerator gen({0.5}, {0.5}, {0.5}, false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(gen.Next()[0], 0.5);
  }
}

TEST(StartPointsTest, HighDimensionSkipsVertexExplosion) {
  // 12 dimensions would mean 4096 vertices; the generator skips them.
  std::vector<double> lo(12, 0.0), hi(12, 1.0), null_point(12, 0.5);
  StartPointGenerator gen(lo, hi, null_point, /*include_vertices=*/true);
  const auto first = gen.Next();
  EXPECT_EQ(first, null_point);
}

TEST(EvenSplitTest, GeometricSplit) {
  // 4 predicates, overall 0.0625: per-predicate 0.5, cumulative fractions
  // 0.5, 0.25, 0.125 for the three free dimensions.
  const auto p = EvenSplitNullHypothesis(0.0625, 3, 4);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.125, 1e-12);
}

TEST(EvenSplitTest, OverallOneGivesAllOnes) {
  const auto p = EvenSplitNullHypothesis(1.0, 2, 3);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_NEAR(p[1], 1.0, 1e-9);
}

TEST(EvenSplitTest, ClampsPathologicalOverall) {
  const auto p = EvenSplitNullHypothesis(0.0, 2, 2);
  EXPECT_GT(p[0], 0.0);
  EXPECT_LT(p[0], 1e-3);
}

}  // namespace
}  // namespace nipo
