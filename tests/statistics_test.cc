#include "optimizer/statistics.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

Column<int32_t> UniformColumn(size_t n, int32_t lo, int32_t hi,
                              uint64_t seed = 1) {
  Prng prng(seed);
  std::vector<int32_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<int32_t>(prng.NextInRange(lo, hi));
  }
  return Column<int32_t>("c", std::move(values));
}

TEST(ColumnStatisticsTest, MinMaxCount) {
  Column<int32_t> col("c", {5, 1, 9, 3});
  auto stats = ColumnStatistics::Build(col, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().max(), 9.0);
  EXPECT_EQ(stats.ValueOrDie().row_count(), 4u);
  EXPECT_EQ(stats.ValueOrDie().num_buckets(), 4u);
}

TEST(ColumnStatisticsTest, RejectsEmptyOrZeroBuckets) {
  Column<int32_t> empty("c", {});
  EXPECT_FALSE(ColumnStatistics::Build(empty).ok());
  Column<int32_t> one("c", {1});
  EXPECT_FALSE(ColumnStatistics::Build(one, 0).ok());
}

TEST(ColumnStatisticsTest, UniformSelectivityEstimates) {
  Column<int32_t> col = UniformColumn(100'000, 0, 999);
  auto r = ColumnStatistics::Build(col, 64);
  ASSERT_TRUE(r.ok());
  const ColumnStatistics& stats = r.ValueOrDie();
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLt, 500.0), 0.5, 0.02);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLt, 100.0), 0.1, 0.02);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kGe, 900.0), 0.1, 0.02);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLe, 999.0), 1.0, 0.01);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kLt, -5.0), 0.0, 1e-12);
  EXPECT_NEAR(stats.EstimateSelectivity(CompareOp::kGt, 2000.0), 0.0,
              1e-12);
}

TEST(ColumnStatisticsTest, SkewedDistributionCaptured) {
  // 90% of values in [0, 100), 10% in [900, 1000).
  Prng prng(5);
  std::vector<int32_t> values(50'000);
  for (auto& v : values) {
    v = prng.NextBool(0.9)
            ? static_cast<int32_t>(prng.NextBounded(100))
            : static_cast<int32_t>(900 + prng.NextBounded(100));
  }
  Column<int32_t> col("c", std::move(values));
  auto stats = ColumnStatistics::Build(col, 64);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats.ValueOrDie().EstimateSelectivity(CompareOp::kLt, 500.0),
              0.9, 0.02);
  EXPECT_NEAR(stats.ValueOrDie().EstimateSelectivity(CompareOp::kGe, 900.0),
              0.1, 0.02);
}

TEST(ColumnStatisticsTest, EqualityGetsSliverNotZero) {
  Column<int32_t> col = UniformColumn(100'000, 0, 999);
  auto stats = ColumnStatistics::Build(col, 64);
  ASSERT_TRUE(stats.ok());
  const double eq = stats.ValueOrDie().EstimateSelectivity(CompareOp::kEq,
                                                           500.0);
  EXPECT_GT(eq, 0.0);
  EXPECT_LT(eq, 0.05);
  EXPECT_NEAR(stats.ValueOrDie().EstimateSelectivity(CompareOp::kNe, 500.0),
              1.0 - eq, 1e-9);
}

TEST(ColumnStatisticsTest, ConstantColumn) {
  Column<int32_t> col("c", std::vector<int32_t>(100, 7));
  auto stats = ColumnStatistics::Build(col, 8);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().EstimateSelectivity(CompareOp::kLt,
                                                          7.0),
                   0.0);
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().EstimateSelectivity(CompareOp::kLe,
                                                          7.0),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.ValueOrDie().EstimateSelectivity(CompareOp::kGt,
                                                          7.0),
                   0.0);
}

TEST(ColumnStatisticsTest, PrefixSamplingMissesLaterDistribution) {
  // First half uniform [0,100), second half uniform [900,1000): a prefix
  // sample sees only the first regime -- the stale-statistics failure
  // mode progressive optimization exists for.
  std::vector<int32_t> values(20'000);
  Prng prng(9);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = i < values.size() / 2
                    ? static_cast<int32_t>(prng.NextBounded(100))
                    : static_cast<int32_t>(900 + prng.NextBounded(100));
  }
  Column<int32_t> col("c", std::move(values));
  auto sampled = ColumnStatistics::BuildFromPrefix(col, 5'000, 16);
  ASSERT_TRUE(sampled.ok());
  // The sample believes everything is < 500...
  EXPECT_GT(sampled.ValueOrDie().EstimateSelectivity(CompareOp::kLt, 500.0),
            0.99);
  // ...while the truth is 50%.
  auto exact = ColumnStatistics::Build(col, 16);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact.ValueOrDie().EstimateSelectivity(CompareOp::kLt, 500.0),
              0.5, 0.02);
}

TEST(TableStatisticsTest, BuildsAllColumnsAndEstimates) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", UniformColumn(10'000, 0, 99).mutable_values())
                  .ok());
  ASSERT_TRUE(
      t.AddColumn("b", UniformColumn(10'000, 0, 999, 2).mutable_values())
          .ok());
  auto stats = TableStatistics::Build(t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().row_count(), 10'000u);
  EXPECT_TRUE(stats.ValueOrDie().ForColumn("a").ok());
  EXPECT_FALSE(stats.ValueOrDie().ForColumn("zzz").ok());

  OperatorSpec pred =
      OperatorSpec::Predicate({"a", CompareOp::kLt, 50.0});
  EXPECT_NEAR(stats.ValueOrDie().EstimateOperatorSelectivity(pred), 0.5,
              0.03);
  // Probes and unknown columns fall back.
  OperatorSpec probe = OperatorSpec::FkProbe({});
  EXPECT_DOUBLE_EQ(
      stats.ValueOrDie().EstimateOperatorSelectivity(probe, 0.7), 0.7);
  OperatorSpec unknown =
      OperatorSpec::Predicate({"zzz", CompareOp::kLt, 1.0});
  EXPECT_DOUBLE_EQ(
      stats.ValueOrDie().EstimateOperatorSelectivity(unknown, 0.3), 0.3);
}

TEST(SampleMergerTest, SumsResultsAndCounters) {
  SampleMerger merger;
  EXPECT_EQ(merger.count(), 0u);

  VectorSample first;
  first.vector_index = 4;
  first.result.input_tuples = 100;
  first.result.qualifying_tuples = 10;
  first.result.aggregate = 1.5;
  first.counters.branches_not_taken = 50;
  first.counters.taken_mispredictions = 3;
  first.counters.l3_accesses = 7;
  first.counters.cycles = 1'000;
  VectorSample second;
  second.vector_index = 2;  // out-of-order completion (stolen morsel)
  second.result.input_tuples = 60;
  second.result.qualifying_tuples = 5;
  second.result.aggregate = 0.25;
  second.counters.branches_not_taken = 30;
  second.counters.not_taken_mispredictions = 2;
  second.counters.cycles = 700;

  merger.Add(first);
  merger.Add(second);
  EXPECT_EQ(merger.count(), 2u);
  const VectorSample& merged = merger.merged();
  EXPECT_EQ(merged.vector_index, 4u);  // the window's end position
  EXPECT_EQ(merged.result.input_tuples, 160u);
  EXPECT_EQ(merged.result.qualifying_tuples, 15u);
  EXPECT_DOUBLE_EQ(merged.result.aggregate, 1.75);
  EXPECT_EQ(merged.counters.branches_not_taken, 80u);
  EXPECT_EQ(merged.counters.taken_mispredictions, 3u);
  EXPECT_EQ(merged.counters.not_taken_mispredictions, 2u);
  EXPECT_EQ(merged.counters.l3_accesses, 7u);
  EXPECT_EQ(merged.counters.cycles, 1'700u);

  merger.Reset();
  EXPECT_EQ(merger.count(), 0u);
  EXPECT_EQ(merger.merged().result.input_tuples, 0u);
}

}  // namespace
}  // namespace nipo
