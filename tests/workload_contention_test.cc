#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/prng.h"
#include "core/engine.h"
#include "hw/shared_cache.h"

// Differential coverage for shared-L3 contention modelling (DESIGN.md
// Section 6 "Shared-cache contention"):
//  - contention=off keeps every PR-4 bit-equality gate: each query's
//    results AND counters equal its solo single-threaded run, and the new
//    eviction counters stay zero;
//  - a single query under contention equals the same query without it
//    (one owner cannot interfere with itself);
//  - two L3-reuse (FK-probe) queries co-scheduled under one shared L3
//    each report strictly more L3 misses than solo, with cross-owner
//    evictions charged on both sides;
//  - the domain's occupancy/eviction accounting invariants hold after
//    every quantum (WorkloadOptions::audit_contention);
//  - contended runs are bit-deterministic across reruns and
//    max_concurrent in {1, 2, 8}, and the live contended schedule is
//    exactly reproduced by SimulateWorkloadSchedule from the recorded
//    per-quantum durations.
//
// The thrashing pair deliberately uses FK-probe queries with L3-resident
// dimension tables: the streaming prefetcher serves sequential scans from
// the private L2 after one shared-L3 fill per line, so pure streams do
// not suffer extra L3 misses under contention — only re-referenced
// working sets (the probed dimensions) do.

namespace nipo {
namespace {

std::unique_ptr<Table> MakeFact(const std::string& name, size_t n,
                                uint64_t seed, size_t fk_domain) {
  Prng prng(seed);
  std::vector<int32_t> a(n), fk(n);
  std::vector<int64_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(100));
    fk[i] = static_cast<int32_t>(prng.NextBounded(fk_domain));
    payload[i] = static_cast<int64_t>(prng.NextBounded(1000));
  }
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(t->AddColumn("fk", std::move(fk)).ok());
  EXPECT_TRUE(t->AddColumn("payload", std::move(payload)).ok());
  return t;
}

std::unique_ptr<Table> MakeDim(const std::string& name, size_t n,
                               uint64_t seed) {
  Prng prng(seed);
  std::vector<int32_t> attr(n);
  for (auto& v : attr) v = static_cast<int32_t>(prng.NextBounded(100));
  auto t = std::make_unique<Table>(name);
  EXPECT_TRUE(t->AddColumn("attr", std::move(attr)).ok());
  return t;
}

/// Engine whose per-query working sets fit the scaled 960 KB shared L3
/// alone (~800 KB: three streamed fact columns + one 160 KB probed
/// dimension) but overflow it in pairs — the contention regime the
/// differential claims need.
Engine MakeContentionEngine() {
  Engine engine(HwConfig::ScaledXeon(16));
  constexpr size_t kFactRows = 40'000;
  constexpr size_t kReuseDimRows = 40'000;  // 160 KB of int32 attr
  EXPECT_TRUE(
      engine.RegisterTable(MakeFact("fact_a", kFactRows, 1, kReuseDimRows))
          .ok());
  EXPECT_TRUE(
      engine.RegisterTable(MakeFact("fact_b", kFactRows, 2, kReuseDimRows))
          .ok());
  // Distinct dimensions per query: no constructive sharing, so contention
  // can only hurt.
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim_a", kReuseDimRows, 3)).ok());
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim_b", kReuseDimRows, 4)).ok());
  // Shared dimension for the mixed workload below (same fk domain).
  EXPECT_TRUE(engine.RegisterTable(MakeDim("dim", kReuseDimRows, 5)).ok());
  return engine;
}

QuerySpec JoinQuery(const Engine& engine, const std::string& fact,
                    const std::string& dim) {
  QuerySpec q;
  q.table = fact;
  q.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 80.0}),
           OperatorSpec::FkProbe({"fk", engine.GetTable(dim).ValueOrDie(),
                                  "attr", CompareOp::kLt, 40.0})};
  q.payload_columns = {"payload"};
  return q;
}

WorkloadQuery MakeEntry(std::string name, QuerySpec q, bool progressive,
                        size_t vector_size = 2'048) {
  WorkloadQuery query;
  query.name = std::move(name);
  query.query = std::move(q);
  query.progressive = progressive;
  query.config.vector_size = vector_size;
  query.config.reopt_interval = 2;
  return query;
}

/// Mixed six-query workload over the contention engine: joins in both
/// modes plus predicate-only scans, enough heterogeneity for the
/// determinism and audit sweeps.
WorkloadSpec MakeMixedWorkload(const Engine& engine) {
  WorkloadSpec spec;
  spec.queries.push_back(
      MakeEntry("join_a", JoinQuery(engine, "fact_a", "dim_a"), false));
  spec.queries.push_back(
      MakeEntry("join_b", JoinQuery(engine, "fact_b", "dim_b"), false));
  spec.queries.push_back(
      MakeEntry("join_a_prog", JoinQuery(engine, "fact_a", "dim"), true));
  QuerySpec scan;
  scan.table = "fact_b";
  scan.ops = {OperatorSpec::Predicate({"a", CompareOp::kLt, 50.0})};
  scan.payload_columns = {"payload"};
  spec.queries.push_back(MakeEntry("scan_b", scan, false, 4'096));
  spec.queries.push_back(MakeEntry("scan_b_prog", scan, true, 1'024));
  spec.queries.push_back(
      MakeEntry("join_b_prog", JoinQuery(engine, "fact_b", "dim"), true));
  return spec;
}

/// Solo single-threaded reference for one workload entry.
DriveResult SoloDrive(const Engine& engine, const WorkloadQuery& q) {
  if (q.progressive) {
    auto r = engine.ExecuteProgressive(q.query, q.config, q.initial_order);
    EXPECT_TRUE(r.ok());
    return r.ValueOrDie().drive;
  }
  auto r =
      engine.ExecuteBaseline(q.query, q.config.vector_size, q.initial_order);
  EXPECT_TRUE(r.ok());
  return r.ValueOrDie().drive;
}

TEST(WorkloadContentionTest, ContentionOffKeepsSoloBitEquality) {
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 4;
  spec.options.max_concurrent = 4;
  spec.options.contention = false;  // the PR-4 contract, explicitly
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_FALSE(report.contention);
  EXPECT_EQ(report.shared_l3_capacity_lines, 0u);
  EXPECT_EQ(report.shared_l3_lines_displaced, 0u);
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const DriveResult solo = SoloDrive(engine, spec.queries[i]);
    const WorkloadQueryReport& q = report.queries[i];
    EXPECT_EQ(q.drive.total, solo.total) << q.name;  // every counter
    EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;
    EXPECT_EQ(q.drive.simulated_msec, solo.simulated_msec) << q.name;
    EXPECT_EQ(q.drive.total.l3_evictions_caused, 0u) << q.name;
    EXPECT_EQ(q.drive.total.l3_evictions_suffered, 0u) << q.name;
    EXPECT_EQ(q.shared_l3_peak_occupancy_lines, 0u) << q.name;
    EXPECT_EQ(q.shared_l3_final_occupancy_lines, 0u) << q.name;
  }
}

TEST(WorkloadContentionTest, SingleQueryUnderContentionMatchesSolo) {
  Engine engine = MakeContentionEngine();
  // One owner cannot interfere with itself: the shared domain replays the
  // private L3 bit-exactly (baseline and progressive alike).
  for (const bool progressive : {false, true}) {
    WorkloadSpec spec;
    spec.queries.push_back(MakeEntry(
        "only", JoinQuery(engine, "fact_a", "dim_a"), progressive));
    spec.options.num_threads = 2;
    spec.options.max_concurrent = 8;
    spec.options.contention = true;
    spec.options.audit_contention = true;
    auto result = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(result.ok());
    const WorkloadReport& report = result.ValueOrDie();
    const DriveResult solo = SoloDrive(engine, spec.queries[0]);
    const WorkloadQueryReport& q = report.queries[0];
    EXPECT_EQ(q.drive.total, solo.total)
        << (progressive ? "progressive" : "baseline") << "\ncontended: "
        << q.drive.total.ToString() << "\nsolo:      " << solo.total.ToString();
    EXPECT_EQ(q.drive.aggregate, solo.aggregate);
    EXPECT_EQ(q.drive.simulated_msec, solo.simulated_msec);
    EXPECT_EQ(q.drive.total.l3_evictions_caused, 0u);
    EXPECT_EQ(q.drive.total.l3_evictions_suffered, 0u);
    // The query really ran through the shared domain.
    EXPECT_GT(q.shared_l3_peak_occupancy_lines, 0u);
    EXPECT_TRUE(report.contention);
    EXPECT_GT(report.shared_l3_capacity_lines, 0u);
  }
}

TEST(WorkloadContentionTest, CoScheduledReuseQueriesEachSufferMoreL3Misses) {
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec;
  spec.queries.push_back(
      MakeEntry("join_a", JoinQuery(engine, "fact_a", "dim_a"), false));
  spec.queries.push_back(
      MakeEntry("join_b", JoinQuery(engine, "fact_b", "dim_b"), false));
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 2;
  spec.options.contention = true;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_GT(report.shared_l3_lines_displaced, 0u);
  for (size_t i = 0; i < 2; ++i) {
    const DriveResult solo = SoloDrive(engine, spec.queries[i]);
    const WorkloadQueryReport& q = report.queries[i];
    // Results are machine-state independent; only the counters move.
    EXPECT_EQ(q.drive.qualifying_tuples, solo.qualifying_tuples) << q.name;
    EXPECT_EQ(q.drive.aggregate, solo.aggregate) << q.name;
    // The paper's contention effect: each query's monitored L3-miss
    // counter rises because the co-runner displaces its reused dimension
    // lines — interference, not extra work.
    EXPECT_GT(q.drive.total.l3_misses, solo.total.l3_misses) << q.name;
    EXPECT_EQ(q.drive.total.l3_accesses, solo.total.l3_accesses) << q.name;
    EXPECT_GT(q.drive.total.l3_evictions_suffered, 0u) << q.name;
    EXPECT_GT(q.drive.total.l3_evictions_caused, 0u) << q.name;
    // Interference costs simulated time too (misses price as memory).
    EXPECT_GT(q.drive.simulated_msec, solo.simulated_msec) << q.name;
  }
}

TEST(WorkloadContentionTest, OccupancyAndEvictionAccountingAuditsClean) {
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 4;
  spec.options.contention = true;
  // Per-quantum NIPO_CHECK inside the driver: per-owner occupancy sums to
  // the occupied line count, displaced lines equal charged evictions.
  spec.options.audit_contention = true;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  const uint64_t capacity =
      engine.hw_config().l3.capacity_bytes / engine.hw_config().l3.line_size;
  EXPECT_EQ(report.shared_l3_capacity_lines, capacity);
  uint64_t suffered = 0, caused = 0;
  for (const WorkloadQueryReport& q : report.queries) {
    EXPECT_LE(q.shared_l3_final_occupancy_lines,
              q.shared_l3_peak_occupancy_lines)
        << q.name;
    EXPECT_LE(q.shared_l3_peak_occupancy_lines, capacity) << q.name;
    suffered += q.drive.total.l3_evictions_suffered;
    caused += q.drive.total.l3_evictions_caused;
  }
  // Every windowed suffered eviction was caused by some other query. The
  // converse is an inequality, not an equality: a query's counters freeze
  // when it completes, so its dead lines displaced afterwards appear in
  // the (live) aggressor's caused counter but in no victim window. The
  // exact per-event symmetry is what audit_contention checks inside the
  // driver, at domain level, after every quantum.
  EXPECT_GT(suffered, 0u);
  EXPECT_LE(suffered, caused);
  EXPECT_LE(caused, report.shared_l3_lines_displaced);
}

TEST(WorkloadContentionTest, ContendedRunsAreDeterministic) {
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.contention = true;
  for (size_t max_concurrent : {size_t{1}, size_t{2}, size_t{8}}) {
    spec.options.max_concurrent = max_concurrent;
    spec.options.num_threads = max_concurrent;
    auto first = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(first.ok());
    auto second = engine.ExecuteWorkload(spec);
    ASSERT_TRUE(second.ok());
    const WorkloadReport& a = first.ValueOrDie();
    const WorkloadReport& b = second.ValueOrDie();
    EXPECT_EQ(a.sim_makespan_msec, b.sim_makespan_msec);  // bitwise
    EXPECT_EQ(a.shared_l3_lines_displaced, b.shared_l3_lines_displaced);
    for (size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].drive.total, b.queries[i].drive.total)
          << a.queries[i].name << ", mc=" << max_concurrent;
      EXPECT_EQ(a.queries[i].drive.aggregate, b.queries[i].drive.aggregate);
      EXPECT_EQ(a.queries[i].quantum_msec, b.queries[i].quantum_msec);
      EXPECT_EQ(a.queries[i].sim_start_msec, b.queries[i].sim_start_msec);
      EXPECT_EQ(a.queries[i].sim_finish_msec, b.queries[i].sim_finish_msec);
      EXPECT_EQ(a.queries[i].shared_l3_peak_occupancy_lines,
                b.queries[i].shared_l3_peak_occupancy_lines);
    }
  }
}

TEST(WorkloadContentionTest, LiveContendedScheduleMatchesReplay) {
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec = MakeMixedWorkload(engine);
  spec.options.num_threads = 3;
  spec.options.max_concurrent = 2;
  spec.options.contention = true;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  // The contended executor IS the event loop, so replaying the recorded
  // per-quantum durations through SimulateWorkloadSchedule must land on
  // the identical schedule.
  std::vector<std::vector<double>> quanta;
  for (const WorkloadQueryReport& q : report.queries) {
    quanta.push_back(q.quantum_msec);
  }
  const SimSchedule replay = SimulateWorkloadSchedule(
      quanta, spec.options.num_threads, spec.options.max_concurrent);
  ASSERT_EQ(replay.start_msec.size(), report.queries.size());
  for (size_t i = 0; i < report.queries.size(); ++i) {
    EXPECT_EQ(replay.start_msec[i], report.queries[i].sim_start_msec);
    EXPECT_EQ(replay.finish_msec[i], report.queries[i].sim_finish_msec);
  }
  EXPECT_EQ(replay.makespan_msec, report.sim_makespan_msec);
}

TEST(WorkloadContentionTest, SerializedContentionStillInterferes) {
  // max_concurrent = 1 serializes execution, but the shared L3 persists
  // across queries: later queries still displace earlier queries' dead
  // lines. Results stay solo-identical; the schedule is fully serial.
  Engine engine = MakeContentionEngine();
  WorkloadSpec spec;
  spec.queries.push_back(
      MakeEntry("join_a", JoinQuery(engine, "fact_a", "dim_a"), false));
  spec.queries.push_back(
      MakeEntry("join_b", JoinQuery(engine, "fact_b", "dim_b"), false));
  spec.options.num_threads = 2;
  spec.options.max_concurrent = 1;
  spec.options.contention = true;
  spec.options.audit_contention = true;
  auto result = engine.ExecuteWorkload(spec);
  ASSERT_TRUE(result.ok());
  const WorkloadReport& report = result.ValueOrDie();
  EXPECT_EQ(report.peak_in_flight, 1u);
  for (size_t i = 1; i < report.queries.size(); ++i) {
    EXPECT_GE(report.queries[i].sim_start_msec,
              report.queries[i - 1].sim_finish_msec);
  }
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const DriveResult solo = SoloDrive(engine, spec.queries[i]);
    EXPECT_EQ(report.queries[i].drive.qualifying_tuples,
              solo.qualifying_tuples);
    EXPECT_EQ(report.queries[i].drive.aggregate, solo.aggregate);
  }
}

}  // namespace
}  // namespace nipo
