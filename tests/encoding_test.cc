/// \file encoding_test.cc
/// Property tests of the compressed columnar layer (DESIGN.md Section
/// 10): encode/decode round trips over adversarial value shapes
/// (all-equal, single distinct, max bit width, negative int64 extremes,
/// NaN doubles), zone-map refutation checked against brute force, and
/// the ColumnView scan contract -- an encoded column must scan to the
/// same values as its plain source while touching fewer simulated bytes
/// when the data compresses.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/prng.h"
#include "storage/column_view.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace nipo {
namespace {

/// Small blocks so every test exercises multi-block columns.
EncodingOptions SmallBlocks() {
  EncodingOptions options;
  options.block_values = 64;
  return options;
}

template <typename T>
std::unique_ptr<Column<T>> MakeColumn(const std::string& name,
                                      std::vector<T> values) {
  return std::make_unique<Column<T>>(name, std::move(values));
}

/// Round-trips `values` through Encode and checks every row via both
/// DecodeRange and single-value access. Returns the encoded column for
/// further inspection.
template <typename T>
std::unique_ptr<EncodedColumn> RoundTrip(std::vector<T> values,
                                         const EncodingOptions& options) {
  auto plain = MakeColumn<T>("c", values);
  auto encoded = EncodedColumn::Encode(*plain, options);
  EXPECT_TRUE(encoded.ok());
  std::unique_ptr<EncodedColumn> col = std::move(encoded.ValueOrDie());
  EXPECT_EQ(col->size(), values.size());

  std::vector<T> decoded(values.size());
  col->DecodeRange(0, values.size(), decoded.data());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bit-pattern equality so NaN payloads round-trip too.
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], sizeof(T)), 0)
        << "row " << i;
  }
  // Unaligned partial ranges must agree with the full decode.
  if (values.size() > 5) {
    std::vector<T> partial(values.size() - 5);
    col->DecodeRange(3, values.size() - 5, partial.data());
    for (size_t i = 0; i < partial.size(); ++i) {
      EXPECT_EQ(std::memcmp(&partial[i], &values[i + 3], sizeof(T)), 0);
    }
  }
  return col;
}

TEST(EncodingTest, RoundTripRandomInt32) {
  Prng prng(1);
  std::vector<int32_t> values(1000);
  for (auto& v : values) {
    v = static_cast<int32_t>(prng.NextInRange(-500, 500));
  }
  auto col = RoundTrip(values, SmallBlocks());
  EXPECT_GT(col->num_blocks(), 1u);
  EXPECT_LT(col->total_encoded_bytes(), values.size() * sizeof(int32_t));
}

TEST(EncodingTest, RoundTripRandomInt64AndDouble) {
  Prng prng(2);
  std::vector<int64_t> i64(777);
  std::vector<double> f64(777);
  for (size_t i = 0; i < i64.size(); ++i) {
    i64[i] = prng.NextInRange(-1'000'000, 1'000'000);
    f64[i] = static_cast<double>(prng.NextInRange(0, 99)) * 0.25;
  }
  RoundTrip(i64, SmallBlocks());
  RoundTrip(f64, SmallBlocks());
}

TEST(EncodingTest, AllEqualColumnCollapses) {
  std::vector<int64_t> values(500, 42);
  auto col = RoundTrip(values, SmallBlocks());
  // Every block is either a 1-entry dictionary or bit_width-0 packing;
  // either way the payload is tiny.
  EXPECT_LT(col->total_encoded_bytes(), values.size());
  for (size_t b = 0; b < col->num_blocks(); ++b) {
    EXPECT_NE(col->block(b).encoding, BlockEncoding::kPlain);
    EXPECT_EQ(col->zone(b).min, 42.0);
    EXPECT_EQ(col->zone(b).max, 42.0);
  }
}

TEST(EncodingTest, SingleDistinctDoubleUsesDictionary) {
  std::vector<double> values(300, 3.25);
  auto col = RoundTrip(values, SmallBlocks());
  for (size_t b = 0; b < col->num_blocks(); ++b) {
    EXPECT_EQ(col->block(b).encoding, BlockEncoding::kDictionary);
    EXPECT_EQ(col->block(b).dict_size, 1u);
  }
}

TEST(EncodingTest, MaxBitWidthAndInt64Extremes) {
  // INT64_MIN..INT64_MAX in one block: the frame-of-reference range
  // wraps uint64, forcing the full 64-bit width -- values must still
  // round-trip exactly.
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max(),
                                 0,
                                 -1,
                                 1,
                                 std::numeric_limits<int64_t>::min() + 1,
                                 std::numeric_limits<int64_t>::max() - 1,
                                 -123456789012345678};
  EncodingOptions options = SmallBlocks();
  options.enable_dictionary = false;  // force the bit-packing path
  auto col = RoundTrip(values, options);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(col->ValueAsInt64(i), values[i]);
  }
}

TEST(EncodingTest, NanDoublesRoundTripAndZoneSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values = {1.0, nan, 2.0, nan, -7.5, 0.0};
  auto col = RoundTrip(values, SmallBlocks());
  ASSERT_EQ(col->num_blocks(), 1u);
  const ZoneMapEntry& zone = col->zone(0);
  EXPECT_TRUE(zone.has_nan);
  EXPECT_EQ(zone.min, -7.5);  // min/max over non-NaN values only
  EXPECT_EQ(zone.max, 2.0);
  // NaN passes kNe against any constant, so a NaN block never refutes
  // kNe -- even when min == max == value for the non-NaN rows.
  EXPECT_FALSE(ZoneRefutes(zone, CompareOp::kNe, 1.0));
  // But ordered comparisons outside [min, max] still refute: NaN fails
  // every ordered comparison, so skipping loses nothing.
  EXPECT_TRUE(ZoneRefutes(zone, CompareOp::kGt, 2.0));
  EXPECT_TRUE(ZoneRefutes(zone, CompareOp::kLt, -7.5));
  EXPECT_TRUE(ZoneRefutes(zone, CompareOp::kEq, 99.0));
  EXPECT_FALSE(ZoneRefutes(zone, CompareOp::kEq, 1.0));
}

TEST(EncodingTest, AllNanBlockRefutesEverythingButNe) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values(10, nan);
  auto col = RoundTrip(values, SmallBlocks());
  const ZoneMapEntry& zone = col->zone(0);
  EXPECT_TRUE(zone.has_nan);
  EXPECT_GT(zone.min, zone.max);  // empty sentinel
  EXPECT_TRUE(ZoneRefutes(zone, CompareOp::kLt, 1e300));
  EXPECT_TRUE(ZoneRefutes(zone, CompareOp::kEq, 0.0));
  EXPECT_FALSE(ZoneRefutes(zone, CompareOp::kNe, 0.0));
}

TEST(EncodingTest, ZoneRefutationNeverDisagreesWithBruteForce) {
  // Randomized soundness: whenever a zone refutes (op, value), no row of
  // that block may satisfy it under the executor's double-domain compare.
  Prng prng(7);
  static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe,
                                       CompareOp::kEq, CompareOp::kNe};
  for (int round = 0; round < 20; ++round) {
    std::vector<int32_t> values(256);
    for (auto& v : values) {
      v = static_cast<int32_t>(prng.NextInRange(-100, 100));
    }
    auto plain = MakeColumn<int32_t>("c", values);
    auto encoded = EncodedColumn::Encode(*plain, SmallBlocks());
    ASSERT_TRUE(encoded.ok());
    const EncodedColumn& col = *encoded.ValueOrDie();
    for (int trial = 0; trial < 50; ++trial) {
      const CompareOp op = kOps[prng.NextBounded(6)];
      const double value =
          static_cast<double>(prng.NextInRange(-120, 120));
      for (size_t b = 0; b < col.num_blocks(); ++b) {
        if (!ZoneRefutes(col.zone(b), op, value)) continue;
        const ZoneMapEntry& zone = col.zone(b);
        for (size_t r = zone.row_begin; r < zone.row_begin + zone.row_count;
             ++r) {
          EXPECT_FALSE(EvaluateCompare(
              static_cast<double>(values[r]), op, value))
              << "block " << b << " row " << r;
        }
      }
    }
  }
}

TEST(EncodingTest, ColumnViewScansEncodedAndPlainIdentically) {
  // The scan contract: for any (block_begin, sel, active), the run an
  // encoded column produces must read back the same values as the plain
  // source -- and a compressible column must book fewer L1 bytes.
  Prng prng(11);
  const size_t rows = 10'000;
  std::vector<int32_t> values(rows);
  for (auto& v : values) {
    v = static_cast<int32_t>(prng.NextBounded(16));  // 4-bit domain
  }
  auto plain = MakeColumn<int32_t>("c", values);
  auto encoded = EncodedColumn::Encode(*plain, {});
  ASSERT_TRUE(encoded.ok());

  auto plain_view = ColumnView::Bind(plain.get());
  auto enc_view = ColumnView::Bind(encoded.ValueOrDie().get());
  ASSERT_TRUE(plain_view.ok());
  ASSERT_TRUE(enc_view.ok());
  EXPECT_FALSE(plain_view.ValueOrDie().encoded());
  EXPECT_TRUE(enc_view.ValueOrDie().encoded());

  Pmu plain_pmu, enc_pmu;
  DecodeScratch scratch;
  // Dense scans at several offsets, plus a strided selection.
  for (const size_t begin : {size_t{0}, size_t{1000}, size_t{9000}}) {
    const size_t n = std::min<size_t>(1024, rows - begin);
    const ScanRun p =
        plain_view.ValueOrDie().ScanBlock(&plain_pmu, begin, nullptr, n,
                                          &scratch);
    DecodeScratch enc_scratch;
    const ScanRun e = enc_view.ValueOrDie().ScanBlock(&enc_pmu, begin,
                                                      nullptr, n,
                                                      &enc_scratch);
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(ScanRunValueAsInt64(p, j), ScanRunValueAsInt64(e, j))
          << "begin " << begin << " j " << j;
    }
  }
  std::vector<uint32_t> sel;
  for (uint32_t j = 0; j < 512; ++j) sel.push_back(j * 3);
  const ScanRun ps = plain_view.ValueOrDie().ScanBlock(
      &plain_pmu, 100, sel.data(), sel.size(), &scratch);
  DecodeScratch enc_scratch;
  const ScanRun es = enc_view.ValueOrDie().ScanBlock(
      &enc_pmu, 100, sel.data(), sel.size(), &enc_scratch);
  for (size_t j = 0; j < sel.size(); ++j) {
    ASSERT_EQ(ScanRunValueAsInt64(ps, j), ScanRunValueAsInt64(es, j));
  }
  // The 4-bit domain dictionary-encodes far below 4 bytes/value, so the
  // encoded scan touches fewer cache lines.
  EXPECT_LT(enc_pmu.Read().l1_accesses, plain_pmu.Read().l1_accesses);
}

TEST(EncodingTest, ColumnViewGatherRowsMatchesPlain) {
  Prng prng(13);
  const size_t rows = 5'000;
  std::vector<int64_t> values(rows);
  for (auto& v : values) v = prng.NextInRange(0, 1000);
  auto plain = MakeColumn<int64_t>("c", values);
  auto encoded = EncodedColumn::Encode(*plain, {});
  ASSERT_TRUE(encoded.ok());

  auto plain_view = ColumnView::Bind(plain.get());
  auto enc_view = ColumnView::Bind(encoded.ValueOrDie().get());
  ASSERT_TRUE(plain_view.ok() && enc_view.ok());

  std::vector<uint32_t> probe_rows;
  for (int i = 0; i < 700; ++i) {
    probe_rows.push_back(static_cast<uint32_t>(prng.NextBounded(rows)));
  }
  Pmu plain_pmu, enc_pmu;
  DecodeScratch a, b;
  const ScanRun p = plain_view.ValueOrDie().GatherRows(
      &plain_pmu, probe_rows.data(), probe_rows.size(), &a);
  const ScanRun e = enc_view.ValueOrDie().GatherRows(
      &enc_pmu, probe_rows.data(), probe_rows.size(), &b);
  for (size_t j = 0; j < probe_rows.size(); ++j) {
    ASSERT_EQ(ScanRunValueAsInt64(p, j), ScanRunValueAsInt64(e, j));
  }
}

TEST(EncodingTest, ZoneRangeQueriesOnColumnView) {
  // Block 0 holds 0..63, block 1 holds 1000..1063, block 2 holds
  // 2000..2063 (block_values = 64): range queries must refute exactly
  // the provably dead ranges.
  std::vector<int32_t> values;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 64; ++i) values.push_back(b * 1000 + i);
  }
  auto plain = MakeColumn<int32_t>("c", values);
  auto encoded = EncodedColumn::Encode(*plain, SmallBlocks());
  ASSERT_TRUE(encoded.ok());
  auto view = ColumnView::Bind(encoded.ValueOrDie().get());
  ASSERT_TRUE(view.ok());
  const ColumnView& v = view.ValueOrDie();

  EXPECT_TRUE(v.ZoneRefutesRange(0, 64, CompareOp::kGt, 100.0));
  EXPECT_FALSE(v.ZoneRefutesRange(64, 64, CompareOp::kGt, 100.0));
  // A range straddling blocks 0 and 1 refutes only if both do.
  EXPECT_FALSE(v.ZoneRefutesRange(32, 64, CompareOp::kGt, 100.0));
  EXPECT_TRUE(v.ZoneRefutesRange(32, 64, CompareOp::kGt, 2000.0));
  EXPECT_EQ(v.ZoneChecksForRange(32, 64), 2u);
  EXPECT_EQ(v.ZoneChecksForRange(0, 64), 1u);
  // kGt 1500 kills blocks 0 and 1 -- two thirds of the rows.
  EXPECT_NEAR(v.ZonePrunableFraction(CompareOp::kGt, 1500.0), 2.0 / 3.0,
              1e-12);
  // Plain columns have no zone maps and never refute.
  auto plain_view = ColumnView::Bind(plain.get());
  ASSERT_TRUE(plain_view.ok());
  EXPECT_FALSE(
      plain_view.ValueOrDie().ZoneRefutesRange(0, 64, CompareOp::kGt, 1e9));
  EXPECT_EQ(plain_view.ValueOrDie().ZonePrunableFraction(CompareOp::kGt, 0.0),
            0.0);
}

TEST(EncodingTest, EncodeTableColumnsReplacesInPlace) {
  Prng prng(17);
  const size_t rows = 2'000;
  std::vector<int32_t> a(rows);
  std::vector<int64_t> b(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = static_cast<int32_t>(prng.NextBounded(8));
    b[i] = prng.NextInRange(0, 100);
  }
  std::vector<int32_t> a_copy = a;
  std::vector<int64_t> b_copy = b;
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", std::move(a)).ok());
  ASSERT_TRUE(table.AddColumn("b", std::move(b)).ok());

  auto stats = EncodeTableColumns(&table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().columns_encoded, 2u);
  EXPECT_LT(stats.ValueOrDie().encoded_bytes,
            stats.ValueOrDie().plain_bytes);

  // Values survive, now served through the encoded columns.
  for (const char* name : {"a", "b"}) {
    auto col = table.GetColumn(name);
    ASSERT_TRUE(col.ok());
    auto view = ColumnView::Bind(col.ValueOrDie());
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(view.ValueOrDie().encoded());
  }
  auto va = ColumnView::Bind(table.GetColumn("a").ValueOrDie()).ValueOrDie();
  auto vb = ColumnView::Bind(table.GetColumn("b").ValueOrDie()).ValueOrDie();
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_EQ(va.ValueAsInt64(i), a_copy[i]);
    ASSERT_EQ(vb.ValueAsInt64(i), b_copy[i]);
  }
  // Encoding an already-encoded table is a no-op.
  auto again = EncodeTableColumns(&table);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie().columns_encoded, 0u);
}

}  // namespace
}  // namespace nipo
