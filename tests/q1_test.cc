#include "tpch/q1.h"

#include <gtest/gtest.h>

#include "tpch/tpch_gen.h"

namespace nipo {
namespace {

class Q1Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.scale_factor = 0.01;
    auto li = GenerateLineitem(cfg);
    ASSERT_TRUE(li.ok());
    lineitem_ = li.ValueOrDie().release();
    ASSERT_TRUE(AddQ1GroupColumn(lineitem_).ok());
  }
  static void TearDownTestSuite() {
    delete lineitem_;
    lineitem_ = nullptr;
  }
  static Table* lineitem_;
};

Table* Q1Test::lineitem_ = nullptr;

TEST_F(Q1Test, GroupKeyEncoding) {
  EXPECT_EQ(Q1GroupKey(0, 0), 0);
  EXPECT_EQ(Q1GroupKey(0, 1), 1);
  EXPECT_EQ(Q1GroupKey(2, 1), 5);
  EXPECT_EQ(Q1DecodeGroup(5), (std::pair<int32_t, int32_t>{2, 1}));
  EXPECT_EQ(Q1DecodeGroup(0), (std::pair<int32_t, int32_t>{0, 0}));
}

TEST_F(Q1Test, GroupColumnMaterializedOnce) {
  // The fixture added it; a second call is a no-op, not an error.
  EXPECT_TRUE(AddQ1GroupColumn(lineitem_).ok());
  EXPECT_TRUE(lineitem_->GetColumn("l_q1group").ok());
}

TEST_F(Q1Test, EngineMatchesReference) {
  const HashAggregateSpec spec = MakeQ1Spec(*lineitem_);
  Pmu pmu(HwConfig::ScaledXeon(16));
  auto engine_result = ExecuteHashAggregate(spec, &pmu);
  auto reference = ComputeQ1Reference(*lineitem_);
  ASSERT_TRUE(engine_result.ok());
  ASSERT_TRUE(reference.ok());
  const auto& got = engine_result.ValueOrDie();
  const auto& want = reference.ValueOrDie();
  EXPECT_EQ(got.passed_filter, want.passed_filter);
  ASSERT_EQ(got.groups.size(), want.groups.size());
  for (size_t i = 0; i < got.groups.size(); ++i) {
    EXPECT_EQ(got.groups[i].group, want.groups[i].group);
    EXPECT_EQ(got.groups[i].count, want.groups[i].count);
    EXPECT_EQ(got.groups[i].sums, want.groups[i].sums);
  }
}

TEST_F(Q1Test, CanonicalDeltaKeepsMostRows) {
  auto reference = ComputeQ1Reference(*lineitem_, 90);
  ASSERT_TRUE(reference.ok());
  const double kept =
      static_cast<double>(reference.ValueOrDie().passed_filter) /
      static_cast<double>(reference.ValueOrDie().input_rows);
  EXPECT_GT(kept, 0.9);
  EXPECT_LT(kept, 1.0);
}

TEST_F(Q1Test, AllSixGroupsAppear) {
  // returnflag in {A, N, R} x linestatus in {F, O}: depending on date
  // boundaries 4-6 groups carry rows; the canonical generator populates
  // at least the four large ones (A-F, N-O, R-F, N-F).
  auto reference = ComputeQ1Reference(*lineitem_);
  ASSERT_TRUE(reference.ok());
  EXPECT_GE(reference.ValueOrDie().groups.size(), 4u);
  EXPECT_LE(reference.ValueOrDie().groups.size(), 6u);
  for (const GroupResult& g : reference.ValueOrDie().groups) {
    EXPECT_GE(g.group, 0);
    EXPECT_LE(g.group, 5);
    EXPECT_GT(g.count, 0u);
    ASSERT_EQ(g.sums.size(), 2u);
    // sum(quantity) in [count*1, count*50].
    EXPECT_GE(g.sums[0], static_cast<int64_t>(g.count));
    EXPECT_LE(g.sums[0], static_cast<int64_t>(g.count) * 50);
  }
}

TEST_F(Q1Test, DeltaParameterShiftsSelectivity) {
  auto tight = ComputeQ1Reference(*lineitem_, 600);
  auto loose = ComputeQ1Reference(*lineitem_, 0);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_LT(tight.ValueOrDie().passed_filter,
            loose.ValueOrDie().passed_filter);
}

TEST(Q1StandaloneTest, AddGroupColumnValidation) {
  EXPECT_FALSE(AddQ1GroupColumn(nullptr).ok());
  Table empty("t");
  EXPECT_FALSE(AddQ1GroupColumn(&empty).ok());  // missing source columns
}

}  // namespace
}  // namespace nipo
