#include "optimizer/sortedness.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace nipo {
namespace {

const CacheGeometry kL3{1024 * 1024, 16, 64};

ProbeObservation ThrashingProbe() {
  ProbeObservation obs;
  obs.relation.num_tuples = 2'000'000;  // 8 MiB at 4 B: 8x the cache
  obs.relation.tuple_width = 4.0;
  obs.num_probes = 500'000;
  return obs;
}

TEST(SortednessTest, RandomPatternJudgedRandom) {
  ProbeObservation obs = ThrashingProbe();
  const double predicted =
      ExpectedRandomMisses(obs.relation, kL3, obs.num_probes);
  obs.sampled_l3_misses = predicted * 0.95;
  const SortednessVerdict v = JudgeSortedness(kL3, obs);
  EXPECT_FALSE(v.co_clustered);
  EXPECT_NEAR(v.score, 0.95, 1e-9);
  EXPECT_NEAR(v.predicted_random_misses, predicted, 1e-9);
}

TEST(SortednessTest, SequentialPatternJudgedCoClustered) {
  ProbeObservation obs = ThrashingProbe();
  obs.sampled_l3_misses =
      ExpectedSequentialMisses(obs.relation, kL3);
  const SortednessVerdict v = JudgeSortedness(kL3, obs);
  EXPECT_TRUE(v.co_clustered);
  EXPECT_LT(v.score, 0.3);
}

TEST(SortednessTest, ThresholdIsRespected) {
  ProbeObservation obs = ThrashingProbe();
  const double predicted =
      ExpectedRandomMisses(obs.relation, kL3, obs.num_probes);
  obs.sampled_l3_misses = predicted * 0.4;
  EXPECT_TRUE(JudgeSortedness(kL3, obs, 0.5).co_clustered);
  EXPECT_FALSE(JudgeSortedness(kL3, obs, 0.3).co_clustered);
}

TEST(SortednessTest, ZeroPredictionDefaultsToCoClustered) {
  ProbeObservation obs;
  obs.relation.num_tuples = 100;
  obs.relation.tuple_width = 4.0;
  obs.num_probes = 0;
  obs.sampled_l3_misses = 0;
  const SortednessVerdict v = JudgeSortedness(kL3, obs);
  EXPECT_TRUE(v.co_clustered);
}

TEST(SortednessTest, EndToEndAgainstSimulatedCaches) {
  // Drive the real cache simulator with a random and a sequential probe
  // stream into an 8x-L3 relation and check the verdicts disagree.
  const uint64_t kDimRows = 2'000'000;
  const uint64_t kProbes = 500'000;
  const uint64_t base = 1ull << 32;
  for (bool random : {true, false}) {
    CacheHierarchy caches(CacheGeometry{8 * 1024, 8, 64},
                          CacheGeometry{64 * 1024, 8, 64}, kL3, true);
    Prng prng(11);
    for (uint64_t i = 0; i < kProbes; ++i) {
      const uint64_t row =
          random ? prng.NextBounded(kDimRows) : (i * kDimRows) / kProbes;
      caches.Access(base + row * 4, 4);
    }
    ProbeObservation obs;
    obs.relation.num_tuples = static_cast<double>(kDimRows);
    obs.relation.tuple_width = 4.0;
    obs.num_probes = static_cast<double>(kProbes);
    obs.sampled_l3_misses = static_cast<double>(caches.stats().l3_misses);
    const SortednessVerdict v = JudgeSortedness(kL3, obs);
    EXPECT_EQ(v.co_clustered, !random) << "random=" << random;
  }
}

}  // namespace
}  // namespace nipo
