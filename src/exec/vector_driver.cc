#include "exec/vector_driver.h"

#include "common/logging.h"

/// \file vector_driver.cc
/// Vector-at-a-time driving of a PipelineExecutor: fixed-size vector
/// slicing, per-vector counter sampling around each slice, and the
/// between-vector hook the progressive optimizer attaches to.

namespace nipo {

VectorDriver::VectorDriver(PipelineExecutor* executor, size_t vector_size)
    : executor_(executor), vector_size_(vector_size) {
  NIPO_CHECK(executor_ != nullptr);
  NIPO_CHECK(vector_size_ > 0);
}

size_t VectorDriver::num_vectors() const {
  return (executor_->num_rows() + vector_size_ - 1) / vector_size_;
}

DriveResult VectorDriver::Run(const VectorHook& hook) {
  DriveResult out;
  Pmu* pmu = executor_->pmu();
  const PmuCounters start = pmu->Read();
  const size_t rows = executor_->num_rows();
  size_t vector_index = 0;
  for (size_t begin = 0; begin < rows; begin += vector_size_) {
    const size_t end = std::min(begin + vector_size_, rows);
    PmuCounters before;
    if (hook) {
      // Reading the counters around the vector costs a (tiny) fixed
      // amount, exactly like a PAPI_read pair on real hardware.
      pmu->ChargeCycles(kCounterReadCycles);
      before = pmu->Read();
    }
    const VectorResult r = executor_->ExecuteRange(begin, end);
    out.input_tuples += r.input_tuples;
    out.qualifying_tuples += r.qualifying_tuples;
    out.zone_skipped_tuples += r.zone_skipped;
    out.aggregate += r.aggregate;
    if (hook) {
      pmu->ChargeCycles(kCounterReadCycles);
      VectorSample sample;
      sample.vector_index = vector_index;
      sample.result = r;
      sample.counters = pmu->Read() - before;
      hook(sample);
    }
    ++vector_index;
  }
  out.num_vectors = vector_index;
  out.total = pmu->Read() - start;
  out.simulated_msec = pmu->ToMilliseconds(out.total);
  return out;
}

}  // namespace nipo
