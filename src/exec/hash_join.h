#pragma once

#include <memory>
#include <string>

#include "cost/access_patterns.h"
#include "exec/hash_table.h"
#include "storage/table.h"

/// \file hash_join.h
/// A PMU-instrumented in-memory hash equi-join.
///
/// The positional FK probe of the pipeline executor covers the paper's
/// surrogate-key joins; this operator covers the general case -- the
/// build side is hashed on an arbitrary key column, the probe side
/// streams through and looks each key up. Every build insert and probe
/// lookup flows through the simulated cache hierarchy, so join order
/// experiments can compare predicted (access-pattern algebra) against
/// sampled cache behaviour exactly as Sections 5.5-5.6 do for the
/// positional probes.

namespace nipo {

/// \brief Hash join description. Key columns may be int32 or int64;
/// values are widened to int64 keys.
struct HashJoinSpec {
  const Table* build = nullptr;
  std::string build_key;
  /// Build-side payload column summed over matches (optional; empty
  /// means count matches only).
  std::string build_payload;
  const Table* probe = nullptr;
  std::string probe_key;
};

/// \brief Join outcome.
struct HashJoinResult {
  uint64_t build_rows = 0;
  uint64_t probe_rows = 0;
  uint64_t matches = 0;
  double payload_sum = 0.0;
  /// Average probe chain length of the *probe phase* (windowed via
  /// HashTableStats subtraction, so build-phase touches don't dilute it).
  double average_probe_length = 0.0;
  /// Base address of the join's internal slot array. Simulated cache
  /// counters hash real addresses, so two runs are counter-comparable
  /// only if the allocator handed them the same block — differential
  /// tests use this to detect (and skip on) non-reuse, e.g. under ASan's
  /// quarantining allocator.
  const void* table_base = nullptr;
};

/// \brief Executes the join on `pmu`'s simulated machine.
///
/// Errors: unknown columns, duplicate build keys (this is a key-FK join),
/// non-integer key columns.
Result<HashJoinResult> ExecuteHashJoin(const HashJoinSpec& spec, Pmu* pmu);

/// \brief The access-pattern-algebra prediction for this join's probe
/// phase (Manegold composition: sequential probe-key scan interleaved
/// with repeated random accesses into the hash-table region), used by
/// tests and the join-order diagnostics.
Result<HierarchyCost> PredictHashJoinProbeCost(const HashJoinSpec& spec,
                                               const HwConfig& hw);

}  // namespace nipo
