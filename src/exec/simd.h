#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "exec/operators.h"
#include "storage/column.h"

/// \file simd.h
/// Portable SIMD kernel layer for the executor hot loops.
///
/// Two implementations stand behind every kernel: an AVX2 path (compiled
/// per-function with the `avx2` target attribute, so the rest of the
/// binary stays baseline-ISA) and a branch-free scalar fallback. The AVX2
/// path is selected at runtime iff the host CPU reports AVX2 *and* the
/// build enabled it (CMake option NIPO_SIMD, on by default); tests and
/// benches can pin either path with ForceLevel().
///
/// The contract that makes the executor's differential gates work: for
/// identical inputs, both paths produce bit-identical outputs -- the same
/// pass flags, the same compacted selection vector, the same hashes. The
/// comparison kernels evaluate `EvaluateCompare(double(element), op,
/// constant)` exactly (int32/int64 elements are converted with correctly
/// rounded casts; the AVX2 int64 conversion uses an exact full-range
/// sequence), and the hash kernel is the same splitmix64 finalizer the
/// instrumented hash table applies per key. Simulated PMU booking never
/// happens here -- executors report the *logical* event stream themselves,
/// so simulated counters are kernel-independent by construction
/// (docs/COUNTERS.md "Branch-free booking").

namespace nipo::simd {

/// \brief Kernel implementation level.
enum class SimdLevel : int {
  kScalar = 0,  ///< branch-free scalar fallback (always available)
  kAvx2 = 1,    ///< 4-lane AVX2 kernels
};

std::string_view SimdLevelName(SimdLevel level);

/// True iff AVX2 kernels were compiled in and the host CPU supports them.
bool Avx2Available();

/// The level CompareSelect/HashKeys run at: a ForceLevel() override if one
/// is active, else the best available level. Forcing kAvx2 on a host
/// without AVX2 is ignored (detection wins; kernels would fault).
SimdLevel ActiveLevel();

/// Pins the active level (tests / differential benches). Thread-safe;
/// affects every thread.
void ForceLevel(SimdLevel level);
void ResetForcedLevel();

/// \brief Branch-free compare-to-mask + selection-vector compaction over
/// `n` elements of a typed column.
///
/// Element j lives at row `base_row + (gather ? gather[j] : j)` of the
/// column; `pass[j]` receives the 0/1 outcome of
/// `EvaluateCompare(double(element), op, value)` and the id
/// `ids ? ids[j] : j` is appended to `out_sel` for passing elements
/// (dense-first semantics, identical to the executor's historical scalar
/// loop). Returns the number of passing elements. `out_sel` must hold `n`
/// entries; gather indices must be < 2^31 (AVX2 gathers sign-extend their
/// 32-bit indices).
size_t CompareSelect(SimdLevel level, DataType type, const uint8_t* data,
                     size_t base_row, CompareOp op, double value,
                     const uint32_t* gather, const uint32_t* ids, size_t n,
                     uint8_t* pass, uint32_t* out_sel);

/// ActiveLevel() convenience overload.
inline size_t CompareSelect(DataType type, const uint8_t* data,
                            size_t base_row, CompareOp op, double value,
                            const uint32_t* gather, const uint32_t* ids,
                            size_t n, uint8_t* pass, uint32_t* out_sel) {
  return CompareSelect(ActiveLevel(), type, data, base_row, op, value, gather,
                       ids, n, pass, out_sel);
}

/// \brief The splitmix64 finalizer -- the hash function of
/// InstrumentedHashTable (its IndexOf masks this to the capacity).
inline uint64_t SplitMix64(uint64_t key) {
  uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// \brief Hashes `n` int64 keys with SplitMix64 into `hashes` (pre-mask;
/// callers mask to their table capacity).
void HashKeys(SimdLevel level, const int64_t* keys, size_t n,
              uint64_t* hashes);

inline void HashKeys(const int64_t* keys, size_t n, uint64_t* hashes) {
  HashKeys(ActiveLevel(), keys, n, hashes);
}

}  // namespace nipo::simd
