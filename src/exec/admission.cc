#include "exec/admission.h"

#include <algorithm>

#include "common/logging.h"

/// \file admission.cc
/// Adaptive admission control: epoch-averaged AIMD over per-quantum
/// simulated feedback. Everything here is integer/double arithmetic on
/// the fed sequence — no clocks, no randomness — so identical quantum
/// traces reproduce identical decision sequences bit-for-bit.

namespace nipo {

AdmissionController::AdmissionController(size_t num_queries, size_t max_limit,
                                         uint64_t l3_capacity_lines,
                                         const AdmissionConfig& config)
    : config_(config),
      max_limit_(std::max<size_t>(1, max_limit)),
      capacity_lines_(l3_capacity_lines),
      best_quantum_msec_(num_queries, 0.0) {
  NIPO_CHECK(config_.min_limit >= 1);
  NIPO_CHECK(config_.epoch_quanta >= 1);
  config_.min_limit = std::min(config_.min_limit, max_limit_);
  limit_ = config_.start_limit == 0
               ? max_limit_
               : std::clamp(config_.start_limit, config_.min_limit, max_limit_);
  min_limit_seen_ = limit_;
}

void AdmissionController::OnQuantum(size_t query, double duration_msec,
                                    uint64_t evictions_suffered,
                                    uint64_t occupancy_lines, size_t in_flight,
                                    size_t waiting) {
  NIPO_CHECK(query < best_quantum_msec_.size());
  double& best = best_quantum_msec_[query];
  if (duration_msec > 0 && (best == 0 || duration_msec < best)) {
    best = duration_msec;
  }
  const double slowdown = best > 0 ? duration_msec / best : 1.0;

  epoch_evictions_ += static_cast<double>(evictions_suffered);
  epoch_slowdown_ += slowdown;
  epoch_peak_occupancy_ = std::max(epoch_peak_occupancy_, occupancy_lines);
  // Demand: raising the limit only helps when queries are waiting *and*
  // the limit is what holds them back (not a policy deferral below it).
  epoch_demand_ = epoch_demand_ || (waiting > 0 && in_flight >= limit_);
  if (++epoch_count_ >= config_.epoch_quanta) Decide();
}

void AdmissionController::Decide() {
  const double count = static_cast<double>(epoch_count_);
  const double mean_eviction_frac =
      capacity_lines_ > 0
          ? epoch_evictions_ / (count * static_cast<double>(capacity_lines_))
          : 0.0;
  const double mean_slowdown = epoch_slowdown_ / count;
  const double peak_occupancy_frac =
      capacity_lines_ > 0 ? static_cast<double>(epoch_peak_occupancy_) /
                                static_cast<double>(capacity_lines_)
                          : 0.0;
  const bool demand = epoch_demand_;
  epoch_count_ = 0;
  epoch_evictions_ = 0;
  epoch_slowdown_ = 0;
  epoch_peak_occupancy_ = 0;
  epoch_demand_ = false;

  if (hold_ > 0) {
    --hold_;
    return;
  }
  // Crowding: the in-flight set already claims most of the shared L3, so
  // admitting more queries is what would create the next collision. It
  // both blocks raises and (below) steps the limit down.
  const bool crowd = peak_occupancy_frac >= config_.high_occupancy_frac;
  const bool pressure = mean_eviction_frac > config_.high_eviction_frac ||
                        mean_slowdown > config_.high_slowdown;
  const bool clear = mean_eviction_frac < config_.low_eviction_frac &&
                     mean_slowdown <= config_.high_slowdown && !crowd;
  if ((pressure || crowd) && limit_ > config_.min_limit) {
    --limit_;  // multiplicative-ish decrease is overkill at these scales
    ++decreases_;
    hold_ = config_.hold_epochs;
  } else if (clear && demand && limit_ < max_limit_) {
    ++limit_;
    ++increases_;
    hold_ = config_.hold_epochs;
  }
  min_limit_seen_ = std::min(min_limit_seen_, limit_);
  NIPO_CHECK(limit_ >= 1);  // the progress guarantee, unconditionally
}

void DeadlineShedder::OnQueryDone(double service_msec, double work) {
  total_msec_ += service_msec;
  total_work_ += work;
  ++queries_done_;
}

double DeadlineShedder::EstimateServiceMsec(double work) const {
  if (queries_done_ == 0) return 0.0;
  if (work > 0 && total_work_ > 0) {
    return work * (total_msec_ / total_work_);
  }
  // No work scores to scale by: the mean observed service time.
  return total_msec_ / static_cast<double>(queries_done_);
}

bool DeadlineShedder::ShouldShed(double now, double arrival_msec,
                                 double deadline_msec, double work,
                                 size_t in_flight,
                                 size_t num_threads) const {
  if (!(deadline_msec > 0) || queries_done_ == 0) return false;
  const double crowding =
      num_threads > 0
          ? std::max(1.0, static_cast<double>(in_flight + 1) /
                              static_cast<double>(num_threads))
          : 1.0;
  const double predicted_finish =
      now + EstimateServiceMsec(work) * crowding;
  return predicted_finish > arrival_msec + deadline_msec;
}

}  // namespace nipo
