#include "exec/hash_join.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "exec/operators.h"
#include "exec/simd.h"

/// \file hash_join.cc
/// Instrumented hash equi-join: build-side insertion keyed on an
/// arbitrary column, batched probing (SIMD block hashing + home-slot
/// prefetch, per-key booked PMU traffic), and type dispatch over the
/// supported key column types.

namespace nipo {

namespace {

/// Widens one dense key-scan run into the int64 buffer the batched
/// hash/probe kernels consume (callers validate the column type).
void ExtractKeys(const ScanRun& run, size_t n, int64_t* out) {
  switch (run.type) {
    case DataType::kInt32: {
      const int32_t* base =
          reinterpret_cast<const int32_t*>(run.data) + run.base_row;
      for (size_t j = 0; j < n; ++j) out[j] = base[j];
      return;
    }
    case DataType::kInt64: {
      const int64_t* base =
          reinterpret_cast<const int64_t*>(run.data) + run.base_row;
      for (size_t j = 0; j < n; ++j) out[j] = base[j];
      return;
    }
    case DataType::kDouble:
      return;  // rejected before the block loops
  }
}

}  // namespace

Result<HashJoinResult> ExecuteHashJoin(const HashJoinSpec& spec, Pmu* pmu) {
  if (pmu == nullptr) return Status::InvalidArgument("null pmu");
  if (spec.build == nullptr || spec.probe == nullptr) {
    return Status::InvalidArgument("hash join needs both tables");
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* build_key_col,
                        spec.build->GetColumn(spec.build_key));
  NIPO_ASSIGN_OR_RETURN(ColumnView build_key, ColumnView::Bind(build_key_col));
  bool has_payload = false;
  ColumnView payload;
  if (!spec.build_payload.empty()) {
    NIPO_ASSIGN_OR_RETURN(const ColumnBase* payload_col,
                          spec.build->GetColumn(spec.build_payload));
    NIPO_ASSIGN_OR_RETURN(payload, ColumnView::Bind(payload_col));
    has_payload = true;
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* probe_key_col,
                        spec.probe->GetColumn(spec.probe_key));
  NIPO_ASSIGN_OR_RETURN(ColumnView probe_key, ColumnView::Bind(probe_key_col));
  if (build_key.type() == DataType::kDouble) {
    return Status::TypeMismatch("join key column '" + build_key.name() +
                                "' must be integer");
  }
  if (probe_key.type() == DataType::kDouble) {
    return Status::TypeMismatch("join key column '" + probe_key.name() +
                                "' must be integer");
  }

  HashJoinResult result;
  result.build_rows = spec.build->num_rows();
  result.probe_rows = spec.probe->num_rows();

  if (spec.build->num_rows() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "build side exceeds the 2^32-row payload-gather range");
  }

  // --- build phase: scan the key column blockwise (one stride-1 load run
  // per block), SIMD-hash each block, insert row ids through the
  // prehashed path (booked identically to per-key Insert).
  InstrumentedHashTable table(spec.build->num_rows(), pmu);
  result.table_base = table.slots_base();
  const size_t build_rows = spec.build->num_rows();
  std::vector<int64_t> block_keys(kSimBlockRows);
  std::vector<uint64_t> block_hashes(kSimBlockRows);
  DecodeScratch decode;
  Status build_error = Status::OK();
  ForEachSimBlock(0, build_rows, [&](size_t block, size_t n) {
    if (!build_error.ok()) return;
    const ScanRun key_run =
        build_key.ScanBlock(pmu, block, nullptr, n, &decode);
    ExtractKeys(key_run, n, block_keys.data());
    simd::HashKeys(block_keys.data(), n, block_hashes.data());
    for (size_t j = 0; j < n; ++j) {
      const int64_t key = block_keys[j];
      const Status st = table.InsertPrehashed(
          key, block_hashes[j], static_cast<int64_t>(block + j));
      if (st.code() == StatusCode::kAlreadyExists) {
        build_error = Status::InvalidArgument(
            "duplicate build key " + std::to_string(key) +
            ": ExecuteHashJoin implements key-FK joins");
        return;
      }
      if (!st.ok()) {
        build_error = st;
        return;
      }
    }
  });
  NIPO_RETURN_NOT_OK(build_error);
  const HashTableStats build_stats = table.stats();

  // --- probe phase: per block, one load run over the probe keys, one
  // batched (SIMD-hashed, prefetched) probe whose booked events equal the
  // per-key lookups, then one payload gather over the matches (in row
  // order, so the double-summation order is block-size independent).
  const size_t probe_rows = spec.probe->num_rows();
  std::vector<uint32_t> match_rows;
  match_rows.reserve(std::min(probe_rows, kSimBlockRows));
  std::vector<int64_t> probe_values(kSimBlockRows);
  std::vector<uint8_t> probe_hits(kSimBlockRows);
  ForEachSimBlock(0, probe_rows, [&](size_t block, size_t n) {
    const ScanRun probe_run =
        probe_key.ScanBlock(pmu, block, nullptr, n, &decode);
    ExtractKeys(probe_run, n, block_keys.data());
    table.BatchLookup(block_keys.data(), n, probe_values.data(),
                      probe_hits.data());
    match_rows.clear();
    for (size_t j = 0; j < n; ++j) {
      if (probe_hits[j]) {
        ++result.matches;
        match_rows.push_back(static_cast<uint32_t>(probe_values[j]));
      }
    }
    if (has_payload && !match_rows.empty()) {
      const ScanRun payload_run = payload.GatherRows(
          pmu, match_rows.data(), match_rows.size(), &decode);
      pmu->OnInstructions(match_rows.size());  // the accumulates
      for (size_t j = 0; j < match_rows.size(); ++j) {
        result.payload_sum += ScanRunValueAsDouble(payload_run, j);
      }
    }
  });
  // Probe-phase window (build touches subtracted), consistent with how
  // PMU counters are windowed around the probe.
  result.average_probe_length =
      (table.stats() - build_stats).average_probe_length();
  return result;
}

Result<HierarchyCost> PredictHashJoinProbeCost(const HashJoinSpec& spec,
                                               const HwConfig& hw) {
  if (spec.build == nullptr || spec.probe == nullptr) {
    return Status::InvalidArgument("hash join needs both tables");
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* probe_key,
                        spec.probe->GetColumn(spec.probe_key));
  const double probes = static_cast<double>(spec.probe->num_rows());
  // Hash-table region: InstrumentedHashTable sizes its slot array to the
  // next power of two of 2x the build rows, 24 bytes per slot.
  const double build_rows = static_cast<double>(spec.build->num_rows());
  double capacity = 2.0;
  while (capacity < 2.0 * build_rows) capacity *= 2.0;
  constexpr double kSlotBytes = 24.0;
  // Effective random accesses per lookup: the expected linear-probe chain
  // length at load factor alpha (Knuth: (1 + 1/(1-alpha)) / 2 for a
  // successful search), times the expected lines a 24-byte slot touches.
  const double alpha = std::min(0.875, build_rows / capacity);
  const double chain = 0.5 * (1.0 + 1.0 / (1.0 - alpha));
  const double line_factor =
      1.0 + (kSlotBytes - 1.0) / static_cast<double>(hw.l3.line_size);
  auto pattern = Inter({
      STrav(probes, static_cast<double>(probe_key->value_width())),
      RRAcc(capacity, kSlotBytes, probes * chain * line_factor),
  });
  return EvaluatePattern(*pattern, hw.l1, hw.l2, hw.l3);
}

}  // namespace nipo
