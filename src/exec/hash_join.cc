#include "exec/hash_join.h"

#include <algorithm>

/// \file hash_join.cc
/// Instrumented hash equi-join: build-side insertion keyed on an
/// arbitrary column, streaming probe with per-lookup PMU traffic, and
/// type dispatch over the supported key column types.

namespace nipo {

namespace {

Result<int64_t> KeyAt(const ColumnBase& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      return static_cast<int64_t>(
          (*static_cast<const Column<int32_t>*>(&column))[row]);
    case DataType::kInt64:
      return (*static_cast<const Column<int64_t>*>(&column))[row];
    case DataType::kDouble:
      return Status::TypeMismatch("join key column '" + column.name() +
                                  "' must be integer");
  }
  return Status::Internal("unknown column type");
}

double ValueAt(const ColumnBase& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      return static_cast<double>(
          (*static_cast<const Column<int32_t>*>(&column))[row]);
    case DataType::kInt64:
      return static_cast<double>(
          (*static_cast<const Column<int64_t>*>(&column))[row]);
    case DataType::kDouble:
      return (*static_cast<const Column<double>*>(&column))[row];
  }
  return 0.0;
}

}  // namespace

Result<HashJoinResult> ExecuteHashJoin(const HashJoinSpec& spec, Pmu* pmu) {
  if (pmu == nullptr) return Status::InvalidArgument("null pmu");
  if (spec.build == nullptr || spec.probe == nullptr) {
    return Status::InvalidArgument("hash join needs both tables");
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* build_key,
                        spec.build->GetColumn(spec.build_key));
  const ColumnBase* payload = nullptr;
  if (!spec.build_payload.empty()) {
    NIPO_ASSIGN_OR_RETURN(payload, spec.build->GetColumn(spec.build_payload));
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* probe_key,
                        spec.probe->GetColumn(spec.probe_key));
  if (probe_key->type() == DataType::kDouble) {
    return Status::TypeMismatch("join key column '" + probe_key->name() +
                                "' must be integer");
  }

  HashJoinResult result;
  result.build_rows = spec.build->num_rows();
  result.probe_rows = spec.probe->num_rows();

  // --- build phase: scan the key column, insert row ids.
  InstrumentedHashTable table(spec.build->num_rows(), pmu);
  const uint8_t* key_data =
      static_cast<const uint8_t*>(build_key->data());
  const uint32_t key_width = static_cast<uint32_t>(build_key->value_width());
  for (size_t row = 0; row < spec.build->num_rows(); ++row) {
    pmu->OnLoad(key_data + static_cast<uint64_t>(row) * key_width,
                key_width);
    NIPO_ASSIGN_OR_RETURN(const int64_t key, KeyAt(*build_key, row));
    const Status st = table.Insert(key, static_cast<int64_t>(row));
    if (st.code() == StatusCode::kAlreadyExists) {
      return Status::InvalidArgument(
          "duplicate build key " + std::to_string(key) +
          ": ExecuteHashJoin implements key-FK joins");
    }
    NIPO_RETURN_NOT_OK(st);
  }

  // --- probe phase: stream the probe keys, look up, fetch payload.
  const uint8_t* probe_data =
      static_cast<const uint8_t*>(probe_key->data());
  const uint32_t probe_width =
      static_cast<uint32_t>(probe_key->value_width());
  const uint8_t* payload_data =
      payload != nullptr ? static_cast<const uint8_t*>(payload->data())
                         : nullptr;
  const uint32_t payload_width =
      payload != nullptr ? static_cast<uint32_t>(payload->value_width()) : 0;
  for (size_t row = 0; row < spec.probe->num_rows(); ++row) {
    pmu->OnLoad(probe_data + static_cast<uint64_t>(row) * probe_width,
                probe_width);
    NIPO_ASSIGN_OR_RETURN(const int64_t key, KeyAt(*probe_key, row));
    int64_t build_row = 0;
    if (table.Lookup(key, &build_row)) {
      ++result.matches;
      if (payload != nullptr) {
        pmu->OnLoad(payload_data +
                        static_cast<uint64_t>(build_row) * payload_width,
                    payload_width);
        pmu->OnInstructions(1);  // accumulate
        result.payload_sum +=
            ValueAt(*payload, static_cast<size_t>(build_row));
      }
    }
  }
  result.average_probe_length = table.average_probe_length();
  return result;
}

Result<HierarchyCost> PredictHashJoinProbeCost(const HashJoinSpec& spec,
                                               const HwConfig& hw) {
  if (spec.build == nullptr || spec.probe == nullptr) {
    return Status::InvalidArgument("hash join needs both tables");
  }
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* probe_key,
                        spec.probe->GetColumn(spec.probe_key));
  const double probes = static_cast<double>(spec.probe->num_rows());
  // Hash-table region: InstrumentedHashTable sizes its slot array to the
  // next power of two of 2x the build rows, 24 bytes per slot.
  const double build_rows = static_cast<double>(spec.build->num_rows());
  double capacity = 2.0;
  while (capacity < 2.0 * build_rows) capacity *= 2.0;
  constexpr double kSlotBytes = 24.0;
  // Effective random accesses per lookup: the expected linear-probe chain
  // length at load factor alpha (Knuth: (1 + 1/(1-alpha)) / 2 for a
  // successful search), times the expected lines a 24-byte slot touches.
  const double alpha = std::min(0.875, build_rows / capacity);
  const double chain = 0.5 * (1.0 + 1.0 / (1.0 - alpha));
  const double line_factor =
      1.0 + (kSlotBytes - 1.0) / static_cast<double>(hw.l3.line_size);
  auto pattern = Inter({
      STrav(probes, static_cast<double>(probe_key->value_width())),
      RRAcc(capacity, kSlotBytes, probes * chain * line_factor),
  });
  return EvaluatePattern(*pattern, hw.l1, hw.l2, hw.l3);
}

}  // namespace nipo
