#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/hash_table.h"
#include "storage/table.h"

/// \file hash_aggregate.h
/// A PMU-instrumented hash GROUP BY with SUM/COUNT aggregates -- the
/// operator behind the TPC-H Q1 example and the "other relational
/// operators" direction of the paper's future work. Optional filter
/// predicates run in a configurable order before grouping, so the
/// aggregation integrates with the progressive PEO machinery.

namespace nipo {

/// \brief One SUM aggregate over a column (int32/int64; values summed as
/// int64 -- the TPC-H money/quantity domains are integral here).
struct AggregateSpec {
  std::string column;
};

/// \brief Group-by description.
struct HashAggregateSpec {
  const Table* table = nullptr;
  /// Integer column whose values identify the group.
  std::string group_column;
  /// Filter predicates evaluated (in order) before grouping.
  std::vector<PredicateSpec> filters;
  std::vector<AggregateSpec> aggregates;
};

/// \brief One output group.
struct GroupResult {
  int64_t group = 0;
  uint64_t count = 0;
  std::vector<int64_t> sums;  ///< parallel to HashAggregateSpec::aggregates
};

/// \brief Aggregation outcome; groups sorted by key for stable output.
struct HashAggregateResult {
  uint64_t input_rows = 0;
  uint64_t passed_filter = 0;
  std::vector<GroupResult> groups;
  /// Final base address of the internal group table (see
  /// HashJoinResult::table_base: the address-dependence guard of the
  /// cross-mode differential tests).
  const void* table_base = nullptr;
};

/// \brief Executes the aggregation on `pmu`'s simulated machine.
Result<HashAggregateResult> ExecuteHashAggregate(
    const HashAggregateSpec& spec, Pmu* pmu);

}  // namespace nipo
