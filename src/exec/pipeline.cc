#include "exec/pipeline.h"

#include <algorithm>

/// \file pipeline.cc
/// The instrumented tuple-at-a-time scan loop: operator-chain evaluation
/// in a configurable order with one conditional branch per operator, every
/// load/compare/branch reported to the Pmu, plus operator spec helpers and
/// order (re)wiring for the progressive driver.

namespace nipo {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

std::string OperatorSpec::ToString() const {
  std::string out;
  if (kind == Kind::kPredicate) {
    out = predicate.column;
    out += CompareOpToString(predicate.op);
    out += std::to_string(predicate.value);
  } else {
    out = "probe(";
    out += probe.dimension != nullptr ? probe.dimension->name() : "?";
    out += ".";
    out += probe.filter_column;
    out += CompareOpToString(probe.op);
    out += std::to_string(probe.value);
    out += ")";
  }
  return out;
}

namespace {

Status CheckColumn(const Table& table, const std::string& name,
                   const ColumnBase** out) {
  auto col = table.GetColumn(name);
  if (!col.ok()) return col.status();
  *out = col.ValueOrDie();
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PipelineExecutor>> PipelineExecutor::Compile(
    const Table& table, std::vector<OperatorSpec> ops,
    std::vector<std::string> payload_columns, Pmu* pmu,
    InstrumentationMode mode) {
  if (pmu == nullptr) {
    return Status::InvalidArgument("PipelineExecutor requires a Pmu");
  }
  if (ops.empty()) {
    return Status::InvalidArgument("pipeline needs at least one operator");
  }
  auto exec = std::unique_ptr<PipelineExecutor>(new PipelineExecutor());
  exec->specs_ = std::move(ops);
  exec->num_rows_ = table.num_rows();
  exec->pmu_ = pmu;
  exec->mode_ = mode;

  for (size_t i = 0; i < exec->specs_.size(); ++i) {
    const OperatorSpec& spec = exec->specs_[i];
    CompiledOp c;
    c.kind = spec.kind;
    c.original_index = i;
    if (spec.kind == OperatorSpec::Kind::kPredicate) {
      const ColumnBase* col = nullptr;
      NIPO_RETURN_NOT_OK(CheckColumn(table, spec.predicate.column, &col));
      c.data = static_cast<const uint8_t*>(col->data());
      c.width = static_cast<uint32_t>(col->value_width());
      c.type = col->type();
      c.op = spec.predicate.op;
      c.value = spec.predicate.value;
      c.extra_instructions = spec.predicate.extra_instructions;
    } else {
      if (spec.probe.dimension == nullptr) {
        return Status::InvalidArgument("FK probe without dimension table");
      }
      const ColumnBase* fk = nullptr;
      NIPO_RETURN_NOT_OK(CheckColumn(table, spec.probe.fk_column, &fk));
      if (fk->type() != DataType::kInt32) {
        return Status::TypeMismatch("FK column '" + spec.probe.fk_column +
                                    "' must be int32 (positional key)");
      }
      const ColumnBase* dim = nullptr;
      NIPO_RETURN_NOT_OK(
          CheckColumn(*spec.probe.dimension, spec.probe.filter_column, &dim));
      c.data = static_cast<const uint8_t*>(fk->data());
      c.width = static_cast<uint32_t>(fk->value_width());
      c.type = fk->type();
      c.op = spec.probe.op;
      c.value = spec.probe.value;
      c.dim_data = static_cast<const uint8_t*>(dim->data());
      c.dim_width = static_cast<uint32_t>(dim->value_width());
      c.dim_type = dim->type();
      c.dim_rows = dim->size();
    }
    exec->all_ops_.push_back(c);
  }

  for (const std::string& name : payload_columns) {
    const ColumnBase* col = nullptr;
    NIPO_RETURN_NOT_OK(CheckColumn(table, name, &col));
    CompiledPayload p;
    p.data = static_cast<const uint8_t*>(col->data());
    p.width = static_cast<uint32_t>(col->value_width());
    p.type = col->type();
    exec->payloads_.push_back(p);
  }

  exec->compiled_ = exec->all_ops_;
  exec->order_.resize(exec->all_ops_.size());
  for (size_t i = 0; i < exec->order_.size(); ++i) exec->order_[i] = i;
  exec->enum_pass_.assign(exec->all_ops_.size(), 0);
  // One branch site per evaluation position plus the loop back-edge.
  exec->loop_site_ = exec->all_ops_.size();
  pmu->EnsureBranchSites(exec->all_ops_.size() + 1);
  return exec;
}

double PipelineExecutor::LoadValue(const uint8_t* data, uint32_t width,
                                   DataType type, size_t row) {
  const uint8_t* addr = data + static_cast<uint64_t>(row) * width;
  switch (type) {
    case DataType::kInt32:
      return static_cast<double>(
          *reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(
          *reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

VectorResult PipelineExecutor::ExecuteRange(size_t begin, size_t end) {
  NIPO_CHECK(begin <= end && end <= num_rows_);
  VectorResult result;
  result.input_tuples = end - begin;
  const size_t num_ops = compiled_.size();
  const bool enumerator = mode_ == InstrumentationMode::kEnumerator;

  for (size_t row = begin; row < end; ++row) {
    pmu_->OnInstructions(
        static_cast<uint64_t>(LoopCostModel::kLoopInstructions));
    bool qualifies = true;
    for (size_t pos = 0; pos < num_ops; ++pos) {
      const CompiledOp& op = compiled_[pos];
      bool pass;
      if (op.kind == OperatorSpec::Kind::kPredicate) {
        pmu_->OnLoad(op.data + static_cast<uint64_t>(row) * op.width,
                     op.width);
        const double v = LoadValue(op.data, op.width, op.type, row);
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kCompareInstructions));
        if (op.extra_instructions > 0) {
          pmu_->OnInstructions(static_cast<uint64_t>(op.extra_instructions));
        }
        pass = EvaluateCompare(v, op.op, op.value);
      } else {
        // FK probe: load the key, then the dimension value it addresses.
        pmu_->OnLoad(op.data + static_cast<uint64_t>(row) * op.width,
                     op.width);
        const double key_value = LoadValue(op.data, op.width, op.type, row);
        const uint64_t key = static_cast<uint64_t>(key_value);
        NIPO_CHECK(key < op.dim_rows);
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kProbeAddressInstructions));
        pmu_->OnLoad(op.dim_data + key * op.dim_width, op.dim_width);
        const double dim_value =
            LoadValue(op.dim_data, op.dim_width, op.dim_type, key);
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kCompareInstructions));
        pass = EvaluateCompare(dim_value, op.op, op.value);
      }
      if (enumerator) {
        // Invasive instrumentation: increment an explicit pass counter
        // after the evaluation (Section 5.7's enumerator-based approach).
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kEnumeratorInstructions));
        if (pass) ++enum_pass_[pos];
      }
      // Predicate branch: NOT taken when the tuple qualifies.
      pmu_->OnBranch(pos, /*taken=*/!pass);
      if (!pass) {
        qualifies = false;
        break;
      }
    }
    if (qualifies) {
      ++result.qualifying_tuples;
      double product = 1.0;
      for (const CompiledPayload& payload : payloads_) {
        pmu_->OnLoad(payload.data + static_cast<uint64_t>(row) * payload.width,
                     payload.width);
        product *= LoadValue(payload.data, payload.width, payload.type, row);
      }
      if (!payloads_.empty()) {
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kAggregateInstructions));
        result.aggregate += product;
      }
    }
    // Loop back-edge, taken for every iteration.
    pmu_->OnBranch(loop_site_, /*taken=*/true);
  }
  return result;
}

Status PipelineExecutor::Reorder(const std::vector<size_t>& order) {
  if (order.size() != all_ops_.size()) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<bool> seen(all_ops_.size(), false);
  for (size_t idx : order) {
    if (idx >= all_ops_.size() || seen[idx]) {
      return Status::InvalidArgument("order is not a permutation");
    }
    seen[idx] = true;
  }
  std::vector<CompiledOp> next;
  next.reserve(all_ops_.size());
  for (size_t idx : order) next.push_back(all_ops_[idx]);
  compiled_ = std::move(next);
  order_ = order;
  // Positions changed meaning; per-position enumerator counts restart.
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
  return Status::OK();
}

const OperatorSpec& PipelineExecutor::OperatorAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return specs_[compiled_[pos].original_index];
}

void PipelineExecutor::ResetEnumeratorCounts() {
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
}

}  // namespace nipo
