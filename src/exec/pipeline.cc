#include "exec/pipeline.h"

#include <algorithm>
#include <limits>

#include "exec/simd.h"

/// \file pipeline.cc
/// The instrumented blocked operator-at-a-time scan loop: operator-chain
/// evaluation in a configurable order, every load/compare/branch reported
/// to the Pmu as per-block runs (coalesced by its batched reporting
/// layer). Predicate blocks run through the shared EvalPredicateBlock
/// primitive (exec/operators.cc), whose host-side evaluation is the
/// runtime-selected SIMD kernel of exec/simd.h; FK probes gather their
/// dimension values through the same kernel layer.

namespace nipo {

namespace {

Status BindColumn(const Table& table, const std::string& name,
                  ColumnView* out) {
  auto col = table.GetColumn(name);
  if (!col.ok()) return col.status();
  NIPO_ASSIGN_OR_RETURN(*out, ColumnView::Bind(col.ValueOrDie()));
  return Status::OK();
}

template <typename T>
void ProductLoop(const ScanRun& run, size_t active, double* prod) {
  const T* base = reinterpret_cast<const T*>(run.data) + run.base_row;
  for (size_t j = 0; j < active; ++j) {
    const size_t offset = run.gather ? run.gather[j] : j;
    prod[j] *= static_cast<double>(base[offset]);
  }
}

/// Multiplies the run's elements into prod[]: run.gather carries the
/// selection for plain columns; decoded runs are already dense in j.
void ProductDispatch(const ScanRun& run, size_t active, double* prod) {
  switch (run.type) {
    case DataType::kInt32:
      ProductLoop<int32_t>(run, active, prod);
      return;
    case DataType::kInt64:
      ProductLoop<int64_t>(run, active, prod);
      return;
    case DataType::kDouble:
      ProductLoop<double>(run, active, prod);
      return;
  }
}

}  // namespace

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

std::string OperatorSpec::ToString() const {
  std::string out;
  if (kind == Kind::kPredicate) {
    out = predicate.column;
    out += CompareOpToString(predicate.op);
    out += std::to_string(predicate.value);
  } else {
    out = "probe(";
    out += probe.dimension != nullptr ? probe.dimension->name() : "?";
    out += ".";
    out += probe.filter_column;
    out += CompareOpToString(probe.op);
    out += std::to_string(probe.value);
    out += ")";
  }
  return out;
}

Result<std::unique_ptr<PipelineExecutor>> PipelineExecutor::Compile(
    const Table& table, std::vector<OperatorSpec> ops,
    std::vector<std::string> payload_columns, Pmu* pmu,
    InstrumentationMode mode) {
  if (pmu == nullptr) {
    return Status::InvalidArgument("PipelineExecutor requires a Pmu");
  }
  if (ops.empty()) {
    return Status::InvalidArgument("pipeline needs at least one operator");
  }
  auto exec = std::unique_ptr<PipelineExecutor>(new PipelineExecutor());
  exec->specs_ = std::move(ops);
  exec->num_rows_ = table.num_rows();
  exec->pmu_ = pmu;
  exec->mode_ = mode;

  for (size_t i = 0; i < exec->specs_.size(); ++i) {
    const OperatorSpec& spec = exec->specs_[i];
    CompiledOp c;
    c.kind = spec.kind;
    c.original_index = i;
    if (spec.kind == OperatorSpec::Kind::kPredicate) {
      NIPO_RETURN_NOT_OK(BindColumn(table, spec.predicate.column, &c.column));
      c.op = spec.predicate.op;
      c.value = spec.predicate.value;
      c.extra_instructions = spec.predicate.extra_instructions;
      c.prunable_fraction = c.column.ZonePrunableFraction(c.op, c.value);
    } else {
      if (spec.probe.dimension == nullptr) {
        return Status::InvalidArgument("FK probe without dimension table");
      }
      NIPO_RETURN_NOT_OK(BindColumn(table, spec.probe.fk_column, &c.column));
      if (c.column.type() != DataType::kInt32) {
        return Status::TypeMismatch("FK column '" + spec.probe.fk_column +
                                    "' must be int32 (positional key)");
      }
      NIPO_RETURN_NOT_OK(BindColumn(*spec.probe.dimension,
                                    spec.probe.filter_column, &c.dim_column));
      c.op = spec.probe.op;
      c.value = spec.probe.value;
      c.dim_rows = c.dim_column.size();
      // 2^31 (not 2^32): AVX2 gathers sign-extend their 32-bit indices,
      // so probe keys must stay in the non-negative int32 range.
      if (c.dim_rows > (uint64_t{1} << 31)) {
        return Status::InvalidArgument(
            "dimension table exceeds the 2^31-row probe-key range");
      }
    }
    exec->all_ops_.push_back(c);
  }

  for (const std::string& name : payload_columns) {
    CompiledPayload p;
    NIPO_RETURN_NOT_OK(BindColumn(table, name, &p.column));
    exec->payloads_.push_back(p);
  }

  exec->compiled_ = exec->all_ops_;
  exec->order_.resize(exec->all_ops_.size());
  for (size_t i = 0; i < exec->order_.size(); ++i) exec->order_[i] = i;
  exec->enum_pass_.assign(exec->all_ops_.size(), 0);
  // One branch site per evaluation position plus the loop back-edge.
  exec->loop_site_ = exec->all_ops_.size();
  pmu->EnsureBranchSites(exec->all_ops_.size() + 1);
  return exec;
}

VectorResult PipelineExecutor::ExecuteRange(size_t begin, size_t end) {
  NIPO_CHECK(begin <= end && end <= num_rows_);
  if (!error_.ok()) return VectorResult{};  // latched: executor is dead
  VectorResult result;
  result.input_tuples = end - begin;
  ForEachSimBlock(begin, end, [&](size_t block, size_t n) {
    if (!error_.ok()) return;
    ExecuteBlock(block, n, &result);
  });
  return result;
}

bool PipelineExecutor::ZoneSkipBlock(size_t block_begin, size_t n) {
  // Zone-map prologue: a predicate whose per-storage-block min/max
  // refute every overlapped block proves the whole execution block dead
  // before any per-tuple work. Checks consult zone maps in evaluation
  // order and stop at the first refutation; each consulted map books
  // StorageCostModel::kZoneCheckInstructions. Plain columns have no
  // zone maps, so this books nothing and skips nothing -- the
  // encodings-off counter stream is untouched.
  for (const CompiledOp& op : compiled_) {
    if (op.kind != OperatorSpec::Kind::kPredicate) continue;
    if (!op.column.has_zone_maps()) continue;
    const size_t checks = op.column.ZoneChecksForRange(block_begin, n);
    pmu_->OnInstructions(
        static_cast<uint64_t>(StorageCostModel::kZoneCheckInstructions) *
        checks);
    if (op.column.ZoneRefutesRange(block_begin, n, op.op, op.value)) {
      return true;
    }
  }
  return false;
}

void PipelineExecutor::ExecuteBlock(size_t block_begin, size_t n,
                                    VectorResult* result) {
  const size_t num_ops = compiled_.size();
  const bool enumerator = mode_ == InstrumentationMode::kEnumerator;
  if (ZoneSkipBlock(block_begin, n)) {
    result->zone_skipped += n;
    return;
  }
  pmu_->OnInstructions(
      static_cast<uint64_t>(LoopCostModel::kLoopInstructions) * n);

  // The scratch holds block-relative offsets of still-active rows; the
  // first operator runs dense over the whole block without materializing
  // a selection vector.
  scratch_.BeginBlock(n);
  for (size_t pos = 0; pos < num_ops && scratch_.active() > 0; ++pos) {
    const CompiledOp& op = compiled_[pos];
    if (op.kind == OperatorSpec::Kind::kPredicate) {
      PredicateEvalArgs args;
      args.pmu = pmu_;
      args.branch_site = pos;
      args.column = &op.column;
      args.decode = &decode_fact_;
      args.block_begin = block_begin;
      args.op = op.op;
      args.value = op.value;
      args.extra_instructions = op.extra_instructions;
      args.form = op.form;
      args.compare_instructions = LoopCostModel::kCompareInstructions;
      args.branch_free_instructions = LoopCostModel::kBranchFreeInstructions;
      // Invasive instrumentation: increment an explicit pass counter
      // after each evaluation (Section 5.7's enumerator-based approach).
      args.post_eval_instructions =
          enumerator ? LoopCostModel::kEnumeratorInstructions : 0.0;
      const size_t passed = EvalPredicateBlock(args, &scratch_);
      if (enumerator) enum_pass_[pos] += passed;
    } else {
      // FK probe: the key gather feeds a dimension-side gather evaluated
      // through the same SIMD kernel. FK columns are validated int32 at
      // Compile time; probes are always branching (the qualify branch is
      // inherent to the probe loop).
      const size_t active = scratch_.active();
      const uint32_t* sel = scratch_.sel();
      const ScanRun fk_run =
          op.column.ScanBlock(pmu_, block_begin, sel, active, &decode_fact_);
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kProbeAddressInstructions) *
          active);
      keys_.resize(active);
      for (size_t j = 0; j < active; ++j) {
        const int64_t fk_value = ScanRunValueAsInt64(fk_run, j);
        const uint64_t key = static_cast<uint64_t>(fk_value);
        if (key >= op.dim_rows) {
          // Data-dependent and only discoverable here: latch instead of
          // aborting, before anything dereferences the dimension column
          // at the bad key. The drivers turn the latch into a failed
          // query; the block's partial work stays accounted.
          const uint32_t offset = sel ? sel[j] : static_cast<uint32_t>(j);
          error_ = Status::OutOfRange(
              "FK value " + std::to_string(fk_value) + " at row " +
              std::to_string(block_begin + offset) + " outside dimension (" +
              std::to_string(op.dim_rows) + " rows)");
          return;
        }
        keys_[j] = static_cast<uint32_t>(key);
      }
      const ScanRun dim_run =
          op.dim_column.GatherRows(pmu_, keys_.data(), active, &decode_dim_);
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kCompareInstructions) *
          active);
      uint8_t* pass = scratch_.pass();
      uint32_t* next_sel = scratch_.next_sel();
      const size_t passed = simd::CompareSelect(
          dim_run.type, dim_run.data, dim_run.base_row, op.op, op.value,
          dim_run.gather, sel, active, pass, next_sel);
      if (enumerator) {
        pmu_->OnInstructions(
            static_cast<uint64_t>(LoopCostModel::kEnumeratorInstructions) *
            active);
        enum_pass_[pos] += passed;
      }
      // Probe qualify branch per evaluated row, NOT taken when the tuple
      // qualifies, in row order as a tuple-at-a-time loop would emit it.
      pmu_->OnPredicateBranches(pos, pass, active);
      scratch_.Commit(passed);
    }
  }

  const size_t active = scratch_.active();
  result->qualifying_tuples += active;
  if (active > 0 && !payloads_.empty()) {
    scratch_.MaterializeDense();
    const uint32_t* sel = scratch_.sel();
    prod_.assign(active, 1.0);
    for (const CompiledPayload& payload : payloads_) {
      const ScanRun run =
          payload.column.ScanBlock(pmu_, block_begin, sel, active,
                                   &decode_fact_);
      ProductDispatch(run, active, prod_.data());
    }
    pmu_->OnInstructions(
        static_cast<uint64_t>(LoopCostModel::kAggregateInstructions) *
        active);
    for (size_t j = 0; j < active; ++j) result->aggregate += prod_[j];
  }
  // Loop back-edge, taken once per block row.
  pmu_->OnBranchRun(loop_site_, /*taken=*/true, n);
}

Status PipelineExecutor::Reorder(const std::vector<size_t>& order) {
  if (order.size() != all_ops_.size()) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<bool> seen(all_ops_.size(), false);
  for (size_t idx : order) {
    if (idx >= all_ops_.size() || seen[idx]) {
      return Status::InvalidArgument("order is not a permutation");
    }
    seen[idx] = true;
  }
  std::vector<CompiledOp> next;
  next.reserve(all_ops_.size());
  for (size_t idx : order) next.push_back(all_ops_[idx]);
  compiled_ = std::move(next);
  order_ = order;
  // Positions changed meaning; per-position enumerator counts restart.
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
  return Status::OK();
}

Status PipelineExecutor::SetForms(const std::vector<PredicateForm>& forms) {
  if (forms.size() != all_ops_.size()) {
    return Status::InvalidArgument("forms size mismatch");
  }
  for (size_t i = 0; i < forms.size(); ++i) {
    if (all_ops_[i].kind == OperatorSpec::Kind::kFkProbe &&
        forms[i] == PredicateForm::kBranchFree) {
      return Status::InvalidArgument(
          "FK probes have no branch-free form (operator " +
          std::to_string(i) + ")");
    }
  }
  for (size_t i = 0; i < forms.size(); ++i) all_ops_[i].form = forms[i];
  for (CompiledOp& op : compiled_) {
    op.form = all_ops_[op.original_index].form;
  }
  return Status::OK();
}

std::vector<PredicateForm> PipelineExecutor::forms() const {
  std::vector<PredicateForm> out;
  out.reserve(all_ops_.size());
  for (const CompiledOp& op : all_ops_) out.push_back(op.form);
  return out;
}

PredicateForm PipelineExecutor::FormAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return compiled_[pos].form;
}

const OperatorSpec& PipelineExecutor::OperatorAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return specs_[compiled_[pos].original_index];
}

double PipelineExecutor::ZonePrunableFractionAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return compiled_[pos].prunable_fraction;
}

namespace {

ColumnScanStats StatsOf(const ColumnView& view) {
  ColumnScanStats stats;
  stats.value_width = view.value_width();
  stats.scan_bytes_per_value = view.scan_bytes_per_value();
  stats.decode_instructions = view.decode_instructions_per_value();
  stats.encoded = view.encoded();
  return stats;
}

}  // namespace

ColumnScanStats PipelineExecutor::ColumnStatsAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return StatsOf(compiled_[pos].column);
}

ColumnScanStats PipelineExecutor::PayloadStatsAt(size_t i) const {
  NIPO_CHECK(i < payloads_.size());
  return StatsOf(payloads_[i].column);
}

bool PipelineExecutor::AnyEncodedColumn() const {
  for (const CompiledOp& op : all_ops_) {
    if (op.column.encoded()) return true;
    if (op.kind == OperatorSpec::Kind::kFkProbe && op.dim_column.encoded()) {
      return true;
    }
  }
  for (const CompiledPayload& payload : payloads_) {
    if (payload.column.encoded()) return true;
  }
  return false;
}

void PipelineExecutor::ResetEnumeratorCounts() {
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
}

}  // namespace nipo
