#include "exec/pipeline.h"

#include <algorithm>
#include <limits>

/// \file pipeline.cc
/// The instrumented blocked operator-at-a-time scan loop: operator-chain
/// evaluation in a configurable order with one conditional branch per
/// operator evaluation, every load/compare/branch reported to the Pmu as
/// per-block runs (coalesced by its batched reporting layer), plus
/// operator spec helpers and order (re)wiring for the progressive driver.

namespace nipo {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

std::string OperatorSpec::ToString() const {
  std::string out;
  if (kind == Kind::kPredicate) {
    out = predicate.column;
    out += CompareOpToString(predicate.op);
    out += std::to_string(predicate.value);
  } else {
    out = "probe(";
    out += probe.dimension != nullptr ? probe.dimension->name() : "?";
    out += ".";
    out += probe.filter_column;
    out += CompareOpToString(probe.op);
    out += std::to_string(probe.value);
    out += ")";
  }
  return out;
}

namespace {

Status CheckColumn(const Table& table, const std::string& name,
                   const ColumnBase** out) {
  auto col = table.GetColumn(name);
  if (!col.ok()) return col.status();
  *out = col.ValueOrDie();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Specialized evaluation loops. One instantiation per (column type,
// comparator) keeps the per-element work at a load, a compare, and a
// branch-free selection append — the host-side analogue of the compiled
// primitives the paper's engines dispatch to. Semantically each element
// still computes EvaluateCompare(double(value), op, constant).
// ---------------------------------------------------------------------------

/// Evaluates `cmp(base[index], value)` for `active` elements and appends
/// passing ids to `out_sel` (branch-free). The element index is
/// `gather[j]` if `gather` is non-null, else `j`; the id recorded for a
/// passing element is `ids[j]` if `ids` is non-null, else `j`.
template <typename T, typename Cmp>
size_t EvalLoop(const T* base, const uint32_t* gather, const uint32_t* ids,
                size_t active, double value, Cmp cmp, uint8_t* pass,
                uint32_t* out_sel) {
  size_t count = 0;
  for (size_t j = 0; j < active; ++j) {
    const uint32_t index = gather ? gather[j] : static_cast<uint32_t>(j);
    const bool p = cmp(static_cast<double>(base[index]), value);
    pass[j] = p;
    out_sel[count] = ids ? ids[j] : static_cast<uint32_t>(j);
    count += p;
  }
  return count;
}

template <typename T>
size_t EvalColumn(const uint8_t* data, size_t base_row, CompareOp op,
                  double value, const uint32_t* gather, const uint32_t* ids,
                  size_t active, uint8_t* pass, uint32_t* out_sel) {
  const T* base = reinterpret_cast<const T*>(data) + base_row;
  switch (op) {
    case CompareOp::kLt:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a < b; }, pass,
                      out_sel);
    case CompareOp::kLe:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a <= b; }, pass,
                      out_sel);
    case CompareOp::kGt:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a > b; }, pass,
                      out_sel);
    case CompareOp::kGe:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a >= b; }, pass,
                      out_sel);
    case CompareOp::kEq:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a == b; }, pass,
                      out_sel);
    case CompareOp::kNe:
      return EvalLoop(base, gather, ids, active, value,
                      [](double a, double b) { return a != b; }, pass,
                      out_sel);
  }
  return 0;
}

size_t EvalDispatch(DataType type, const uint8_t* data, size_t base_row,
                    CompareOp op, double value, const uint32_t* gather,
                    const uint32_t* ids, size_t active, uint8_t* pass,
                    uint32_t* out_sel) {
  switch (type) {
    case DataType::kInt32:
      return EvalColumn<int32_t>(data, base_row, op, value, gather, ids,
                                 active, pass, out_sel);
    case DataType::kInt64:
      return EvalColumn<int64_t>(data, base_row, op, value, gather, ids,
                                 active, pass, out_sel);
    case DataType::kDouble:
      return EvalColumn<double>(data, base_row, op, value, gather, ids,
                                active, pass, out_sel);
  }
  return 0;
}

template <typename T>
void ProductLoop(const uint8_t* data, size_t base_row, const uint32_t* sel,
                 size_t active, double* prod) {
  const T* base = reinterpret_cast<const T*>(data) + base_row;
  for (size_t j = 0; j < active; ++j) {
    prod[j] *= static_cast<double>(base[sel[j]]);
  }
}

void ProductDispatch(DataType type, const uint8_t* data, size_t base_row,
                     const uint32_t* sel, size_t active, double* prod) {
  switch (type) {
    case DataType::kInt32:
      ProductLoop<int32_t>(data, base_row, sel, active, prod);
      return;
    case DataType::kInt64:
      ProductLoop<int64_t>(data, base_row, sel, active, prod);
      return;
    case DataType::kDouble:
      ProductLoop<double>(data, base_row, sel, active, prod);
      return;
  }
}

}  // namespace

Result<std::unique_ptr<PipelineExecutor>> PipelineExecutor::Compile(
    const Table& table, std::vector<OperatorSpec> ops,
    std::vector<std::string> payload_columns, Pmu* pmu,
    InstrumentationMode mode) {
  if (pmu == nullptr) {
    return Status::InvalidArgument("PipelineExecutor requires a Pmu");
  }
  if (ops.empty()) {
    return Status::InvalidArgument("pipeline needs at least one operator");
  }
  auto exec = std::unique_ptr<PipelineExecutor>(new PipelineExecutor());
  exec->specs_ = std::move(ops);
  exec->num_rows_ = table.num_rows();
  exec->pmu_ = pmu;
  exec->mode_ = mode;

  for (size_t i = 0; i < exec->specs_.size(); ++i) {
    const OperatorSpec& spec = exec->specs_[i];
    CompiledOp c;
    c.kind = spec.kind;
    c.original_index = i;
    if (spec.kind == OperatorSpec::Kind::kPredicate) {
      const ColumnBase* col = nullptr;
      NIPO_RETURN_NOT_OK(CheckColumn(table, spec.predicate.column, &col));
      c.data = static_cast<const uint8_t*>(col->data());
      c.width = static_cast<uint32_t>(col->value_width());
      c.type = col->type();
      c.op = spec.predicate.op;
      c.value = spec.predicate.value;
      c.extra_instructions = spec.predicate.extra_instructions;
    } else {
      if (spec.probe.dimension == nullptr) {
        return Status::InvalidArgument("FK probe without dimension table");
      }
      const ColumnBase* fk = nullptr;
      NIPO_RETURN_NOT_OK(CheckColumn(table, spec.probe.fk_column, &fk));
      if (fk->type() != DataType::kInt32) {
        return Status::TypeMismatch("FK column '" + spec.probe.fk_column +
                                    "' must be int32 (positional key)");
      }
      const ColumnBase* dim = nullptr;
      NIPO_RETURN_NOT_OK(
          CheckColumn(*spec.probe.dimension, spec.probe.filter_column, &dim));
      c.data = static_cast<const uint8_t*>(fk->data());
      c.width = static_cast<uint32_t>(fk->value_width());
      c.type = fk->type();
      c.op = spec.probe.op;
      c.value = spec.probe.value;
      c.dim_data = static_cast<const uint8_t*>(dim->data());
      c.dim_width = static_cast<uint32_t>(dim->value_width());
      c.dim_type = dim->type();
      c.dim_rows = dim->size();
      if (c.dim_rows > std::numeric_limits<uint32_t>::max()) {
        return Status::InvalidArgument(
            "dimension table exceeds the 2^32-row probe-key range");
      }
    }
    exec->all_ops_.push_back(c);
  }

  for (const std::string& name : payload_columns) {
    const ColumnBase* col = nullptr;
    NIPO_RETURN_NOT_OK(CheckColumn(table, name, &col));
    CompiledPayload p;
    p.data = static_cast<const uint8_t*>(col->data());
    p.width = static_cast<uint32_t>(col->value_width());
    p.type = col->type();
    exec->payloads_.push_back(p);
  }

  exec->compiled_ = exec->all_ops_;
  exec->order_.resize(exec->all_ops_.size());
  for (size_t i = 0; i < exec->order_.size(); ++i) exec->order_[i] = i;
  exec->enum_pass_.assign(exec->all_ops_.size(), 0);
  // One branch site per evaluation position plus the loop back-edge.
  exec->loop_site_ = exec->all_ops_.size();
  pmu->EnsureBranchSites(exec->all_ops_.size() + 1);
  return exec;
}

double PipelineExecutor::LoadValue(const uint8_t* data, uint32_t width,
                                   DataType type, size_t row) {
  const uint8_t* addr = data + static_cast<uint64_t>(row) * width;
  switch (type) {
    case DataType::kInt32:
      return static_cast<double>(
          *reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(
          *reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

VectorResult PipelineExecutor::ExecuteRange(size_t begin, size_t end) {
  NIPO_CHECK(begin <= end && end <= num_rows_);
  VectorResult result;
  result.input_tuples = end - begin;
  for (size_t block = begin; block < end; block += kSimBlockRows) {
    ExecuteBlock(block, std::min(kSimBlockRows, end - block), &result);
  }
  return result;
}

void PipelineExecutor::ExecuteBlock(size_t block_begin, size_t n,
                                    VectorResult* result) {
  const size_t num_ops = compiled_.size();
  const bool enumerator = mode_ == InstrumentationMode::kEnumerator;
  pmu_->OnInstructions(
      static_cast<uint64_t>(LoopCostModel::kLoopInstructions) * n);

  // sel_ holds the block-relative offsets of still-active rows; the first
  // operator runs dense over the whole block without materializing it.
  bool dense = true;
  size_t active = n;
  for (size_t pos = 0; pos < num_ops && active > 0; ++pos) {
    const CompiledOp& op = compiled_[pos];
    const uint8_t* block_base =
        op.data + static_cast<uint64_t>(block_begin) * op.width;
    if (dense) {
      pmu_->OnSequentialLoads(block_base, op.width, active);
    } else {
      pmu_->OnGatherLoads(block_base, op.width, sel_.data(), active);
    }
    pass_.resize(active);
    next_sel_.resize(active);
    size_t passed = 0;
    if (op.kind == OperatorSpec::Kind::kPredicate) {
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kCompareInstructions) *
          active);
      if (op.extra_instructions > 0) {
        pmu_->OnInstructions(static_cast<uint64_t>(op.extra_instructions) *
                             active);
      }
      passed = EvalDispatch(op.type, op.data, block_begin, op.op, op.value,
                            dense ? nullptr : sel_.data(),
                            dense ? nullptr : sel_.data(), active,
                            pass_.data(), next_sel_.data());
    } else {
      // FK probe: the key gather above feeds a dimension-side gather. FK
      // columns are validated int32 at Compile time.
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kProbeAddressInstructions) *
          active);
      keys_.resize(active);
      const int32_t* fk =
          reinterpret_cast<const int32_t*>(op.data) + block_begin;
      for (size_t j = 0; j < active; ++j) {
        const uint32_t offset = dense ? static_cast<uint32_t>(j) : sel_[j];
        const uint64_t key =
            static_cast<uint64_t>(static_cast<int64_t>(fk[offset]));
        NIPO_CHECK(key < op.dim_rows);
        keys_[j] = static_cast<uint32_t>(key);
      }
      pmu_->OnGatherLoads(op.dim_data, op.dim_width, keys_.data(), active);
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kCompareInstructions) *
          active);
      passed = EvalDispatch(op.dim_type, op.dim_data, /*base_row=*/0, op.op,
                            op.value, keys_.data(),
                            dense ? nullptr : sel_.data(), active,
                            pass_.data(), next_sel_.data());
    }
    next_sel_.resize(passed);
    if (enumerator) {
      // Invasive instrumentation: increment an explicit pass counter
      // after each evaluation (Section 5.7's enumerator-based approach).
      pmu_->OnInstructions(
          static_cast<uint64_t>(LoopCostModel::kEnumeratorInstructions) *
          active);
      enum_pass_[pos] += next_sel_.size();
    }
    // Predicate branch per evaluated row, NOT taken when the tuple
    // qualifies. Outcomes are in row order, as a tuple-at-a-time loop
    // would emit them at this site.
    pmu_->OnPredicateBranches(pos, pass_.data(), active);
    sel_.swap(next_sel_);
    active = sel_.size();
    dense = false;
  }

  result->qualifying_tuples += active;
  if (active > 0 && !payloads_.empty()) {
    prod_.assign(active, 1.0);
    for (const CompiledPayload& payload : payloads_) {
      pmu_->OnGatherLoads(
          payload.data + static_cast<uint64_t>(block_begin) * payload.width,
          payload.width, sel_.data(), active);
      ProductDispatch(payload.type, payload.data, block_begin, sel_.data(),
                      active, prod_.data());
    }
    pmu_->OnInstructions(
        static_cast<uint64_t>(LoopCostModel::kAggregateInstructions) *
        active);
    for (size_t j = 0; j < active; ++j) result->aggregate += prod_[j];
  }
  // Loop back-edge, taken once per block row.
  pmu_->OnBranchRun(loop_site_, /*taken=*/true, n);
}

Status PipelineExecutor::Reorder(const std::vector<size_t>& order) {
  if (order.size() != all_ops_.size()) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<bool> seen(all_ops_.size(), false);
  for (size_t idx : order) {
    if (idx >= all_ops_.size() || seen[idx]) {
      return Status::InvalidArgument("order is not a permutation");
    }
    seen[idx] = true;
  }
  std::vector<CompiledOp> next;
  next.reserve(all_ops_.size());
  for (size_t idx : order) next.push_back(all_ops_[idx]);
  compiled_ = std::move(next);
  order_ = order;
  // Positions changed meaning; per-position enumerator counts restart.
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
  return Status::OK();
}

const OperatorSpec& PipelineExecutor::OperatorAt(size_t pos) const {
  NIPO_CHECK(pos < compiled_.size());
  return specs_[compiled_[pos].original_index];
}

void PipelineExecutor::ResetEnumeratorCounts() {
  std::fill(enum_pass_.begin(), enum_pass_.end(), 0);
}

}  // namespace nipo
