#include "exec/hash_table.h"

#include <bit>

#include "common/logging.h"

/// \file hash_table.cc
/// Open-addressing (linear probing, power-of-two capacity) hash table
/// whose slot touches are reported to the simulated cache hierarchy.

namespace nipo {

namespace {

size_t NextPowerOfTwo(size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

}  // namespace

InstrumentedHashTable::InstrumentedHashTable(size_t expected_entries,
                                             Pmu* pmu)
    : pmu_(pmu) {
  NIPO_CHECK(pmu_ != nullptr);
  const size_t capacity = NextPowerOfTwo(expected_entries * 2);
  slots_.resize(capacity);
  mask_ = capacity - 1;
  max_size_ = capacity - capacity / 8;  // 7/8 load limit
}

size_t InstrumentedHashTable::ChainLength(size_t index, int64_t key) const {
  size_t length = 1;  // the terminal slot (empty or matching) is touched too
  size_t i = index;
  while (slots_[i].occupied && slots_[i].key != key) {
    ++length;
    i = (i + 1) & mask_;
  }
  return length;
}

void InstrumentedHashTable::ReportChain(size_t index, size_t length) const {
  slot_touches_ += length;
  // One hash-or-compare instruction plus the slot load per touch.
  pmu_->OnInstructions(length);
  const size_t capacity = slots_.size();
  if (index + length <= capacity) {
    pmu_->OnSequentialLoads(&slots_[index], sizeof(Slot), length);
  } else {
    const size_t until_wrap = capacity - index;
    pmu_->OnSequentialLoads(&slots_[index], sizeof(Slot), until_wrap);
    pmu_->OnSequentialLoads(&slots_[0], sizeof(Slot), length - until_wrap);
  }
}

Status InstrumentedHashTable::Insert(int64_t key, int64_t value) {
  if (size_ >= max_size_) {
    return Status::CapacityExceeded("hash table past its load limit");
  }
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  Slot& slot = slots_[(index + length - 1) & mask_];
  if (slot.occupied) {
    return Status::AlreadyExists("duplicate key " + std::to_string(key));
  }
  slot.key = key;
  slot.value = value;
  slot.occupied = true;
  ++size_;
  return Status::OK();
}

bool InstrumentedHashTable::Lookup(int64_t key, int64_t* value) const {
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  const Slot& slot = slots_[(index + length - 1) & mask_];
  if (!slot.occupied) return false;
  if (value != nullptr) *value = slot.value;
  return true;
}

Status InstrumentedHashTable::Accumulate(int64_t key, int64_t delta,
                                         int64_t initial) {
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  Slot& slot = slots_[(index + length - 1) & mask_];
  if (!slot.occupied) {
    if (size_ >= max_size_) {
      return Status::CapacityExceeded("hash table past its load limit");
    }
    slot.key = key;
    slot.value = initial + delta;
    slot.occupied = true;
    ++size_;
    return Status::OK();
  }
  pmu_->OnInstructions(1);  // the add
  slot.value += delta;
  return Status::OK();
}

}  // namespace nipo
