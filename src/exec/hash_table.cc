#include "exec/hash_table.h"

#include <bit>

#include "common/logging.h"

/// \file hash_table.cc
/// Open-addressing (linear probing, power-of-two capacity) hash table
/// whose slot touches are reported to the simulated cache hierarchy.

namespace nipo {

namespace {

size_t NextPowerOfTwo(size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

}  // namespace

InstrumentedHashTable::InstrumentedHashTable(size_t expected_entries,
                                             Pmu* pmu)
    : pmu_(pmu) {
  NIPO_CHECK(pmu_ != nullptr);
  const size_t capacity = NextPowerOfTwo(expected_entries * 2);
  slots_.resize(capacity);
  mask_ = capacity - 1;
  max_size_ = capacity - capacity / 8;  // 7/8 load limit
}

void InstrumentedHashTable::TouchSlot(size_t index) const {
  ++slot_touches_;
  // One hash-or-compare instruction plus the slot load.
  pmu_->OnInstructions(1);
  pmu_->OnLoad(&slots_[index], sizeof(Slot));
}

Status InstrumentedHashTable::Insert(int64_t key, int64_t value) {
  if (size_ >= max_size_) {
    return Status::CapacityExceeded("hash table past its load limit");
  }
  ++operations_;
  size_t index = IndexOf(key);
  while (true) {
    TouchSlot(index);
    Slot& slot = slots_[index];
    if (!slot.occupied) {
      slot.key = key;
      slot.value = value;
      slot.occupied = true;
      ++size_;
      return Status::OK();
    }
    if (slot.key == key) {
      return Status::AlreadyExists("duplicate key " + std::to_string(key));
    }
    index = (index + 1) & mask_;
  }
}

bool InstrumentedHashTable::Lookup(int64_t key, int64_t* value) const {
  ++operations_;
  size_t index = IndexOf(key);
  while (true) {
    TouchSlot(index);
    const Slot& slot = slots_[index];
    if (!slot.occupied) return false;
    if (slot.key == key) {
      if (value != nullptr) *value = slot.value;
      return true;
    }
    index = (index + 1) & mask_;
  }
}

Status InstrumentedHashTable::Accumulate(int64_t key, int64_t delta,
                                         int64_t initial) {
  ++operations_;
  size_t index = IndexOf(key);
  while (true) {
    TouchSlot(index);
    Slot& slot = slots_[index];
    if (!slot.occupied) {
      if (size_ >= max_size_) {
        return Status::CapacityExceeded("hash table past its load limit");
      }
      slot.key = key;
      slot.value = initial + delta;
      slot.occupied = true;
      ++size_;
      return Status::OK();
    }
    if (slot.key == key) {
      pmu_->OnInstructions(1);  // the add
      slot.value += delta;
      return Status::OK();
    }
    index = (index + 1) & mask_;
  }
}

}  // namespace nipo
