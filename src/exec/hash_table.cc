#include "exec/hash_table.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

/// \file hash_table.cc
/// Open-addressing (linear probing, power-of-two capacity) hash table
/// whose slot touches are reported to the simulated cache hierarchy.

namespace nipo {

namespace {

size_t NextPowerOfTwo(size_t n) {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

}  // namespace

InstrumentedHashTable::InstrumentedHashTable(size_t expected_entries,
                                             Pmu* pmu)
    : pmu_(pmu) {
  NIPO_CHECK(pmu_ != nullptr);
  const size_t capacity = NextPowerOfTwo(expected_entries * 2);
  slots_.resize(capacity);
  mask_ = capacity - 1;
  max_size_ = capacity - capacity / 8;  // 7/8 load limit
}

size_t InstrumentedHashTable::ChainLength(size_t index, int64_t key) const {
  size_t length = 1;  // the terminal slot (empty or matching) is touched too
  size_t i = index;
  while (slots_[i].occupied && slots_[i].key != key) {
    ++length;
    i = (i + 1) & mask_;
  }
  return length;
}

void InstrumentedHashTable::ReportChain(size_t index, size_t length) const {
  slot_touches_ += length;
  // One hash-or-compare instruction plus the slot load per touch.
  pmu_->OnInstructions(length);
  const size_t capacity = slots_.size();
  if (index + length <= capacity) {
    pmu_->OnSequentialLoads(&slots_[index], sizeof(Slot), length);
  } else {
    const size_t until_wrap = capacity - index;
    pmu_->OnSequentialLoads(&slots_[index], sizeof(Slot), until_wrap);
    pmu_->OnSequentialLoads(&slots_[0], sizeof(Slot), length - until_wrap);
  }
}

Status InstrumentedHashTable::Insert(int64_t key, int64_t value) {
  if (size_ >= max_size_) {
    return Status::CapacityExceeded("hash table past its load limit");
  }
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  Slot& slot = slots_[(index + length - 1) & mask_];
  if (slot.occupied) {
    return Status::AlreadyExists("duplicate key " + std::to_string(key));
  }
  slot.key = key;
  slot.value = value;
  slot.occupied = true;
  ++size_;
  return Status::OK();
}

bool InstrumentedHashTable::Lookup(int64_t key, int64_t* value) const {
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  const Slot& slot = slots_[(index + length - 1) & mask_];
  if (!slot.occupied) return false;
  if (value != nullptr) *value = slot.value;
  return true;
}

bool InstrumentedHashTable::LookupPrehashed(int64_t key, uint64_t hash,
                                            int64_t* value) const {
  ++operations_;
  const size_t index = static_cast<size_t>(hash & mask_);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  const Slot& slot = slots_[(index + length - 1) & mask_];
  if (!slot.occupied) return false;
  if (value != nullptr) *value = slot.value;
  return true;
}

Status InstrumentedHashTable::InsertPrehashed(int64_t key, uint64_t hash,
                                              int64_t value) {
  if (size_ >= max_size_) {
    return Status::CapacityExceeded("hash table past its load limit");
  }
  ++operations_;
  const size_t index = static_cast<size_t>(hash & mask_);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  Slot& slot = slots_[(index + length - 1) & mask_];
  if (slot.occupied) {
    return Status::AlreadyExists("duplicate key " + std::to_string(key));
  }
  slot.key = key;
  slot.value = value;
  slot.occupied = true;
  ++size_;
  return Status::OK();
}

void InstrumentedHashTable::BatchLookup(const int64_t* keys, size_t count,
                                        int64_t* values,
                                        uint8_t* hits) const {
  uint64_t hashes[kProbeBatch];
  for (size_t base = 0; base < count; base += kProbeBatch) {
    const size_t n = std::min(kProbeBatch, count - base);
    simd::HashKeys(keys + base, n, hashes);
    for (size_t j = 0; j < n; ++j) PrefetchSlot(hashes[j]);
    for (size_t j = 0; j < n; ++j) {
      ++operations_;
      const size_t index = static_cast<size_t>(hashes[j] & mask_);
      const size_t length = ChainLength(index, keys[base + j]);
      ReportChain(index, length);
      const Slot& slot = slots_[(index + length - 1) & mask_];
      const bool hit = slot.occupied;
      if (hits != nullptr) hits[base + j] = static_cast<uint8_t>(hit);
      if (hit && values != nullptr) values[base + j] = slot.value;
    }
  }
}

size_t InstrumentedHashTable::ProbeKernel(const int64_t* keys, size_t count,
                                          int64_t* values, uint8_t* hits,
                                          bool batched) const {
  size_t hit_count = 0;
  auto walk = [&](size_t i, size_t index) {
    const int64_t key = keys[i];
    while (slots_[index].occupied && slots_[index].key != key) {
      index = (index + 1) & mask_;
    }
    const bool hit = slots_[index].occupied;
    if (hits != nullptr) hits[i] = static_cast<uint8_t>(hit);
    if (hit && values != nullptr) values[i] = slots_[index].value;
    hit_count += hit;
  };
  if (batched) {
    // Rolling-window prefetch: keys are SIMD-hashed a block at a time
    // (with kPrefetchDistance of overlap into the next block), and the
    // walk of key j runs kPrefetchDistance behind its slot prefetch --
    // far enough for the line to arrive, close enough to stay within the
    // host's outstanding-miss budget. Chunk-at-once prefetching (fill a
    // batch, prefetch it, walk it) measures consistently worse: the
    // first walks of each chunk start before their lines land.
    constexpr size_t kBlock = 1024;
    uint64_t hashes[kBlock + kPrefetchDistance];
    for (size_t base = 0; base < count; base += kBlock) {
      const size_t n = std::min(kBlock, count - base);
      const size_t pre = std::min(n + kPrefetchDistance, count - base);
      simd::HashKeys(keys + base, pre, hashes);
      for (size_t j = 0; j < std::min(kPrefetchDistance, n); ++j) {
        PrefetchSlot(hashes[j]);
      }
      for (size_t j = 0; j < n; ++j) {
        if (j + kPrefetchDistance < pre) {
          PrefetchSlot(hashes[j + kPrefetchDistance]);
        }
        walk(base + j, static_cast<size_t>(hashes[j] & mask_));
      }
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      walk(i, IndexOf(keys[i]));
    }
  }
  return hit_count;
}

Status InstrumentedHashTable::Accumulate(int64_t key, int64_t delta,
                                         int64_t initial) {
  ++operations_;
  const size_t index = IndexOf(key);
  const size_t length = ChainLength(index, key);
  ReportChain(index, length);
  Slot& slot = slots_[(index + length - 1) & mask_];
  if (!slot.occupied) {
    if (size_ >= max_size_) {
      return Status::CapacityExceeded("hash table past its load limit");
    }
    slot.key = key;
    slot.value = initial + delta;
    slot.occupied = true;
    ++size_;
    return Status::OK();
  }
  pmu_->OnInstructions(1);  // the add
  slot.value += delta;
  return Status::OK();
}

}  // namespace nipo
