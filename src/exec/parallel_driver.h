#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "exec/pipeline.h"
#include "exec/vector_driver.h"
#include "hw/pmu.h"

/// \file parallel_driver.h
/// Sharded multi-threaded execution of a pipeline (DESIGN.md "Parallel
/// execution").
///
/// The fact table is split into fixed-size *morsels* (the parallel analogue
/// of vector_driver.h's vectors); N worker threads claim morsels from
/// contiguous per-worker ranges with work-stealing, and every worker owns a
/// complete private simulated machine (Pmu::CloneFresh: its own caches,
/// branch predictor and cycle accounting) plus a thread-local
/// PipelineExecutor. This mirrors real morsel-driven engines, where each
/// core samples its own PMU around each morsel (the same PAPI-per-morsel
/// pattern vector_driver.h cites) and cores do not share L1/L2 state.
///
/// The merge step is deterministic in the *result* domain: per-morsel
/// VectorResults are recorded by morsel index and summed in index order, so
/// qualifying_tuples and the floating-point aggregate are bit-identical
/// across thread counts and runs. Counter totals are exact for what each
/// worker executed, but at num_threads > 1 the split of warm-up effects
/// across workers depends on the dynamic schedule — exactly as on real
/// multi-core silicon. With num_threads = 1 the driver degenerates to
/// VectorDriver's loop and reproduces it bit-identically.

namespace nipo {

/// \brief Parallel execution configuration.
struct ParallelConfig {
  /// Worker thread count (>= 1). 1 reproduces VectorDriver bit-identically.
  size_t num_threads = 1;
  /// Tuples per morsel; plays the role of VectorDriver's vector_size and
  /// is the counter-sampling unit under progressive optimization.
  size_t morsel_size = 65'536;
  /// Collect per-morsel counter samples even without a hook (charging the
  /// kCounterReadCycles read pair per morsel, like the sampled VectorDriver
  /// path). Implied when a hook is passed to Run().
  bool sample_counters = false;
  /// Optional per-worker machine hook, invoked once per worker machine
  /// (worker id, machine) after construction and before any execution.
  /// This is the attachment point for shared machine components — e.g.
  /// Pmu::AttachSharedL3 to give the shard workers one shared L3 domain
  /// (hw/shared_cache.h). Note a shared domain is unsynchronized: at
  /// num_threads > 1 the hook's owner must serialize execution or accept
  /// host-dependent interleavings (the workload driver's contention mode
  /// therefore runs single-threaded; see DESIGN.md Section 6).
  std::function<void(size_t, Pmu*)> machine_hook;
  /// Optional cooperative cancellation token (DESIGN.md Section 9): when
  /// non-null, every worker checks it before claiming each morsel and
  /// stops once it reads true. The run then returns with
  /// ParallelDriveResult::cancelled set and the partial merge of the
  /// morsels that completed. The pointee must outlive Run().
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief One morsel's execution record: the per-morsel sample (with
/// VectorSample::vector_index holding the *global morsel index*), plus
/// which worker ran it and under which evaluation-order version.
struct MorselRecord {
  VectorSample sample;
  size_t worker_id = 0;
  /// Broadcast generation of the evaluation order this morsel ran under
  /// (0 = the initial order). The progressive coordinator uses this to
  /// exclude stale-order morsels from its merged decision windows.
  uint64_t order_version = 0;
};

/// \brief Per-worker outcome: totals on that worker's private machine.
struct WorkerStats {
  PmuCounters counters;       ///< full-run totals on the worker's Pmu
  double simulated_msec = 0;  ///< the worker's private machine time
  uint64_t morsels = 0;       ///< morsels this worker executed
  uint64_t steals = 0;        ///< range-steal operations it performed
};

/// \brief Merged outcome of a sharded execution.
struct ParallelDriveResult {
  /// Deterministic merge: tuple counts and the aggregate summed in morsel-
  /// index order, counters summed over workers, num_vectors = num_morsels.
  /// simulated_msec is the *critical path* — the slowest worker's machine
  /// time — not the counter sum (cores run concurrently).
  DriveResult merged;
  std::vector<WorkerStats> workers;
  /// Per-morsel records interleaved deterministically by morsel index
  /// (empty unless sampling was on).
  std::vector<MorselRecord> samples;
  size_t num_morsels = 0;
  /// Real host wall-clock of the parallel region, for the thread-scaling
  /// bench (bench/scale_threads.cc). Not simulated and not deterministic.
  double wall_msec = 0;
  /// True iff the run stopped early because ParallelConfig::cancel read
  /// true; `merged` then holds the partial counts of completed morsels.
  bool cancelled = false;
  /// First runtime data error latched by any worker's executor
  /// (PipelineExecutor::error(); OK when none). All workers stop at the
  /// next morsel boundary once one latches; `merged` holds the partial
  /// counts accumulated before the stop.
  Status error;
};

/// \brief Drives N thread-local PipelineExecutors over morsel shards.
class ParallelDriver {
 public:
  /// Compiles one pipeline per worker, bound to that worker's private Pmu.
  /// Called once per worker before the threads start.
  using ExecutorFactory =
      std::function<Result<std::unique_ptr<PipelineExecutor>>(Pmu*)>;

  /// Decision hook, invoked serially (under the coordinator lock) with
  /// each completed morsel record, in completion order. Returning an order
  /// broadcasts it: every worker applies it to its own executor at its
  /// next morsel boundary (Reorder between morsels, never mid-morsel).
  using MorselHook =
      std::function<std::optional<std::vector<size_t>>(const MorselRecord&)>;

  /// \param prototype machine configuration donor; every worker machine is
  ///        prototype.CloneFresh() (cold caches, neutral predictor).
  ParallelDriver(const Pmu& prototype, ExecutorFactory factory,
                 ParallelConfig config);

  /// Executes the whole table across the configured worker count.
  /// `initial_order`, if given, is applied to every worker's executor
  /// before execution starts.
  Result<ParallelDriveResult> Run(
      std::optional<std::vector<size_t>> initial_order = std::nullopt,
      const MorselHook& hook = nullptr);

  const ParallelConfig& config() const { return config_; }

 private:
  Pmu prototype_;
  ExecutorFactory factory_;
  ParallelConfig config_;
};

}  // namespace nipo
