#pragma once

#include <cstddef>
#include <vector>

/// \file latency.h
/// Latency accumulation and tail reporting for open-loop workload
/// execution (DESIGN.md "Open-loop service mode").
///
/// All samples live in *simulated* milliseconds, so every percentile is
/// bit-stable across hosts and reruns. The accumulator keeps the exact
/// sample set (workload sizes are thousands of queries, not billions)
/// and computes exact nearest-rank percentiles — no sketch error term to
/// reason about in the differential tests.

namespace nipo {

/// \brief Headline tail statistics of one latency population.
struct LatencySummary {
  size_t count = 0;
  double mean_msec = 0;
  double p50_msec = 0;
  double p95_msec = 0;
  double p99_msec = 0;
  double max_msec = 0;

  bool operator==(const LatencySummary& other) const = default;
};

/// \brief Exact latency accumulator: add samples (or merge accumulators,
/// e.g. per-worker or per-sweep-cell partials), then read nearest-rank
/// percentiles.
///
/// Merge is exactly concatenation: Percentile() over a merge of two
/// accumulators equals Percentile() over one accumulator fed both sample
/// streams, bit-for-bit (the property tests in tests/latency_test.cc
/// pin this down).
class LatencyDistribution {
 public:
  void Add(double msec);
  void Merge(const LatencyDistribution& other);

  size_t count() const { return samples_.size(); }
  double max_msec() const;
  double mean_msec() const;

  /// Nearest-rank percentile, p in [0, 100]: the smallest sample such
  /// that at least p% of all samples are <= it (p = 0 gives the
  /// minimum, p = 100 the maximum). Returns 0 on an empty accumulator.
  double Percentile(double p) const;

  /// {count, mean, p50, p95, p99, max} in one call.
  LatencySummary Summary() const;

 private:
  void EnsureSorted() const;

  /// Sorted lazily by the statistic reads; Add/Merge just append. Every
  /// statistic is computed over the sorted samples so it is a pure
  /// function of the multiset (merge order cannot perturb a ulp).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace nipo
