#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file admission.h
/// Adaptive admission control for workload execution (DESIGN.md
/// "Open-loop service mode").
///
/// Fixed admission (`max_concurrent`) trades throughput against
/// interference blindly: too low wastes workers on friendly phases, too
/// high lets cache-thrashing queries co-run and blow up the latency
/// tail. The AdmissionController closes the loop: it watches per-quantum
/// *simulated* feedback — shared-L3 evictions suffered (interference
/// pressure), quantum slowdown relative to the query's own best (latency
/// inflation), and the in-flight queries' live shared-L3 occupancy
/// (crowding) — and nudges the effective concurrency limit up or down,
/// AIMD-style one step per decision, between 1 and the configured
/// `max_concurrent`. The floor of one is the progress guarantee:
/// whatever the feedback says, one query is always admitted.
///
/// The occupancy signal is the *predictive* half of the loop. Admission
/// cannot preempt: once two cache-thrashing queries are co-admitted, the
/// interference damage runs to completion whatever the limit does next.
/// Eviction and slowdown feedback therefore arrive too late to save the
/// queries that triggered them; what they buy is stepping the limit
/// down for the future. The occupancy guard closes the remaining gap:
/// while the in-flight set already claims most of the shared L3, raising
/// the limit is what *creates* the next collision, so raises are blocked
/// (and crowding steps the limit down) before a second large-footprint
/// query can slip in. Benches pair this with `start_limit = 1`
/// (slow-start) so the very first admission window cannot co-schedule
/// two thrashers either.
///
/// The controller is a pure function of the quantum sequence fed to it
/// (no wall clock, no randomness), so a live contended run and its
/// SimulateWorkloadSchedule replay — fed the same recorded quantum
/// traces — take bit-identical decisions and produce bit-identical
/// schedules. The differential tests in tests/service_mode_test.cc pin
/// this down.

namespace nipo {

/// \brief Thresholds and cadence of the adaptive admission loop. The
/// defaults are sized for the simulated prototype machine; benches sweep
/// them only through `max_concurrent`.
struct AdmissionConfig {
  /// Quanta per decision epoch: feedback is averaged over this many
  /// quanta before the limit may move (smooths single-quantum noise).
  size_t epoch_quanta = 8;
  /// Epochs to hold the limit after a change before the next decision
  /// (hysteresis; lets the new concurrency level show up in feedback).
  size_t hold_epochs = 1;
  /// Raise-pressure threshold: epoch-mean shared-L3 evictions suffered
  /// per quantum, as a fraction of L3 capacity lines. Above it the
  /// limit steps down.
  double high_eviction_frac = 0.25;
  /// All-clear threshold: below it (and with queries waiting) the limit
  /// steps back up.
  double low_eviction_frac = 0.05;
  /// Latency-inflation threshold: epoch-mean quantum duration relative
  /// to the same query's best-observed quantum. Above it the limit
  /// steps down even without eviction pressure (covers contention-free
  /// slowdown sources).
  double high_slowdown = 1.6;
  /// Crowding threshold: epoch-max live shared-L3 occupancy (lines owned
  /// by in-flight queries) as a fraction of capacity. At or above it,
  /// raises are blocked and the limit steps down — the cache is already
  /// claimed, so added concurrency would only create the next collision.
  /// >= 1 (the default) disables the signal; so does a zero capacity.
  double high_occupancy_frac = 1.0;
  /// Initial effective limit, clamped to [min_limit, max_limit]; 0 (the
  /// default) starts at max_limit. Benches use 1 (slow-start) so the
  /// first admission window is as protected as steady state.
  size_t start_limit = 0;
  /// Hard floor of the effective limit (progress guarantee; >= 1).
  size_t min_limit = 1;
};

/// \brief AIMD-style concurrency-limit controller over per-quantum
/// simulated feedback. One instance per workload run; OnQuantum is fed
/// every quantum completion in simulated-event order.
class AdmissionController {
 public:
  /// \param num_queries    workload size (per-query best-quantum state)
  /// \param max_limit      ceiling of the effective limit (the workload's
  ///                       `max_concurrent`); the initial limit
  /// \param l3_capacity_lines  shared-L3 geometry behind the eviction
  ///                       fraction; 0 (contention off) disables the
  ///                       eviction signal, leaving slowdown only
  AdmissionController(size_t num_queries, size_t max_limit,
                      uint64_t l3_capacity_lines,
                      const AdmissionConfig& config = AdmissionConfig{});

  /// Current effective concurrency limit, in [min_limit, max_limit].
  size_t limit() const { return limit_; }

  /// Feeds one completed quantum: query index, simulated duration,
  /// shared-L3 evictions suffered inside the quantum window, the live
  /// shared-L3 occupancy (lines owned by still-in-flight queries) after
  /// the quantum, and the scheduler occupancy at the completion event
  /// (queries in flight, queries waiting for admission or
  /// arrival-released and queued).
  void OnQuantum(size_t query, double duration_msec,
                 uint64_t evictions_suffered, uint64_t occupancy_lines,
                 size_t in_flight, size_t waiting);

  size_t decreases() const { return decreases_; }
  size_t increases() const { return increases_; }
  /// Smallest limit the controller ever reached (>= min_limit: the
  /// progress guarantee, asserted by the overload tests).
  size_t min_limit_seen() const { return min_limit_seen_; }

 private:
  void Decide();

  AdmissionConfig config_;
  size_t max_limit_ = 1;
  size_t limit_ = 1;
  uint64_t capacity_lines_ = 0;

  /// Per-query best (smallest positive) quantum duration seen so far;
  /// the slowdown baseline.
  std::vector<double> best_quantum_msec_;

  // Decision-epoch accumulators.
  size_t epoch_count_ = 0;
  double epoch_evictions_ = 0;
  double epoch_slowdown_ = 0;
  uint64_t epoch_peak_occupancy_ = 0;
  bool epoch_demand_ = false;
  size_t hold_ = 0;

  size_t decreases_ = 0;
  size_t increases_ = 0;
  size_t min_limit_seen_ = 1;
};

/// \brief Deadline-aware admission shedding (DESIGN.md Section 9): the
/// failure-aware half of the admission layer. A query that has already
/// waited so long in the queue that it cannot finish before its deadline
/// even if admitted *now* will only burn worker time and die at a vector
/// boundary anyway; shedding rejects it at admission instead
/// (QueryOutcome::kShed), preferring early rejection over a late
/// deadline miss and leaving the capacity to queries that can still make
/// their deadlines.
///
/// The service-time estimate calibrates online: every query that
/// completes OK contributes its scheduled machine time against its cost-
/// model work score (WorkloadTask::estimated_work, priced by
/// FillScheduleEstimates), giving a live msec-per-work rate; queries
/// without work scores fall back to the mean observed service time. The
/// predicted completion also scales with the pool crowding
/// ((in_flight + 1) / num_threads) since admitted queries time-share the
/// workers. No completions yet means no estimate — the shedder never
/// sheds blind. Like the AdmissionController, it is a pure function of
/// the sequence fed to it, so live runs and trace replays shed
/// identically.
class DeadlineShedder {
 public:
  /// Feeds one OK completion: its total scheduled quantum time and its
  /// work score (0 when the workload carries no estimates).
  void OnQueryDone(double service_msec, double work);

  /// True once at least one completion calibrated the estimate.
  bool calibrated() const { return queries_done_ > 0; }

  /// Predicted solo service time of a query with work score `work`.
  double EstimateServiceMsec(double work) const;

  /// True iff a query picked for admission at `now` should be shed:
  /// its predicted completion, crowding-scaled, lands past
  /// arrival + deadline. `deadline_msec <= 0` means no deadline (never
  /// shed); an uncalibrated shedder never sheds.
  bool ShouldShed(double now, double arrival_msec, double deadline_msec,
                  double work, size_t in_flight, size_t num_threads) const;

 private:
  double total_msec_ = 0;
  double total_work_ = 0;
  size_t queries_done_ = 0;
};

}  // namespace nipo
