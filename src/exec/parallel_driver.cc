#include "exec/parallel_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"

/// \file parallel_driver.cc
/// Morsel-sharded multi-threaded driving of per-worker PipelineExecutors
/// (DESIGN.md "Parallel execution"): contiguous per-worker morsel ranges
/// with half-range work-stealing, per-worker private simulated machines,
/// order-version broadcasting at morsel boundaries, and the deterministic
/// morsel-index-ordered merge.

namespace nipo {

namespace {

/// Morsel scheduling state. One mutex guards all ranges: morsel counts are
/// small (hundreds to thousands) and each acquisition hands out a whole
/// morsel of work, so contention is negligible next to morsel execution.
class MorselQueue {
 public:
  MorselQueue(size_t num_morsels, size_t num_workers) {
    ranges_.resize(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      ranges_[w].begin = num_morsels * w / num_workers;
      ranges_[w].end = num_morsels * (w + 1) / num_workers;
    }
  }

  /// Claims the next morsel for `worker`: the front of its own range, or —
  /// once that is drained — the upper half of the largest remaining victim
  /// range (classic half-stealing keeps stolen work contiguous, preserving
  /// the sequential-scan locality each private machine depends on).
  /// Increments *steals when a steal occurred.
  std::optional<size_t> Next(size_t worker, uint64_t* steals) {
    std::lock_guard<std::mutex> lock(mu_);
    Range& own = ranges_[worker];
    if (own.begin == own.end) {
      size_t victim = worker;
      size_t victim_size = 0;
      for (size_t w = 0; w < ranges_.size(); ++w) {
        const size_t size = ranges_[w].end - ranges_[w].begin;
        if (w != worker && size > victim_size) {
          victim = w;
          victim_size = size;
        }
      }
      if (victim_size == 0) return std::nullopt;  // everything is claimed
      Range& other = ranges_[victim];
      const size_t take = (victim_size + 1) / 2;
      own.begin = other.end - take;
      own.end = other.end;
      other.end -= take;
      ++*steals;
    }
    return own.begin++;
  }

 private:
  struct Range {
    size_t begin = 0;
    size_t end = 0;
  };
  std::mutex mu_;
  std::vector<Range> ranges_;
};

/// Published evaluation order, bumped by each broadcast. Workers check the
/// atomic version before every morsel and only take the lock (to copy the
/// order) when it moved.
struct OrderBroadcast {
  std::atomic<uint64_t> version{0};
  std::mutex mu;
  std::vector<size_t> order;  // guarded by mu, valid when version > 0
};

}  // namespace

ParallelDriver::ParallelDriver(const Pmu& prototype, ExecutorFactory factory,
                               ParallelConfig config)
    : prototype_(prototype.CloneFresh()),
      factory_(std::move(factory)),
      config_(config) {}

Result<ParallelDriveResult> ParallelDriver::Run(
    std::optional<std::vector<size_t>> initial_order, const MorselHook& hook) {
  // Configuration is user input: propagate instead of aborting.
  if (factory_ == nullptr) {
    return Status::InvalidArgument("executor factory must not be null");
  }
  if (config_.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (config_.morsel_size == 0) {
    return Status::InvalidArgument("morsel_size must be positive");
  }
  const size_t num_workers = config_.num_threads;
  const bool sampling = config_.sample_counters || hook != nullptr;

  // Build every worker's private machine and thread-local executor up
  // front, so factory errors surface before any thread starts.
  std::vector<std::unique_ptr<Pmu>> pmus;
  std::vector<std::unique_ptr<PipelineExecutor>> executors;
  pmus.reserve(num_workers);
  executors.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    pmus.push_back(std::make_unique<Pmu>(prototype_.CloneFresh()));
    if (config_.machine_hook != nullptr) {
      config_.machine_hook(w, pmus.back().get());
    }
    NIPO_ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                          factory_(pmus.back().get()));
    if (initial_order.has_value()) {
      NIPO_RETURN_NOT_OK(exec->Reorder(*initial_order));
    }
    executors.push_back(std::move(exec));
  }

  const size_t num_rows = executors.front()->num_rows();
  const size_t num_morsels =
      (num_rows + config_.morsel_size - 1) / config_.morsel_size;

  ParallelDriveResult out;
  out.num_morsels = num_morsels;
  out.workers.resize(num_workers);

  // Per-morsel slots: each is written by exactly one worker (the one that
  // claimed the morsel) and read only after join.
  std::vector<VectorResult> results(num_morsels);
  std::vector<MorselRecord> records(sampling ? num_morsels : 0);

  MorselQueue queue(num_morsels, num_workers);
  OrderBroadcast broadcast;
  std::mutex coordinator_mu;  // serializes hook invocations
  // Stop signals checked at morsel boundaries: the caller's cooperative
  // cancellation token, and the internal abort raised when any worker's
  // executor latches a runtime data error (no point finishing the scan
  // once the query has failed).
  std::atomic<bool> saw_cancel{false};
  std::atomic<bool> abort{false};

  auto worker_main = [&](size_t worker_id) {
    PipelineExecutor* exec = executors[worker_id].get();
    Pmu* pmu = pmus[worker_id].get();
    WorkerStats& stats = out.workers[worker_id];
    const PmuCounters start = pmu->Read();
    uint64_t local_version = 0;
    std::optional<size_t> morsel;
    for (;;) {
      if (config_.cancel != nullptr &&
          config_.cancel->load(std::memory_order_acquire)) {
        saw_cancel.store(true, std::memory_order_relaxed);
        break;
      }
      if (abort.load(std::memory_order_acquire)) break;
      if (!(morsel = queue.Next(worker_id, &stats.steals)).has_value()) {
        break;
      }
      // Apply any broadcast order change at the morsel boundary.
      if (broadcast.version.load(std::memory_order_acquire) !=
          local_version) {
        std::lock_guard<std::mutex> lock(broadcast.mu);
        local_version = broadcast.version.load(std::memory_order_relaxed);
        NIPO_CHECK(exec->Reorder(broadcast.order).ok());
      }
      const size_t begin = *morsel * config_.morsel_size;
      const size_t end = std::min(begin + config_.morsel_size, num_rows);
      if (!sampling) {
        results[*morsel] = exec->ExecuteRange(begin, end);
      } else {
        // Counter read pair around the morsel, exactly like the sampled
        // VectorDriver path (and PAPI_read around a morsel).
        pmu->ChargeCycles(kCounterReadCycles);
        const PmuCounters before = pmu->Read();
        const VectorResult r = exec->ExecuteRange(begin, end);
        pmu->ChargeCycles(kCounterReadCycles);
        MorselRecord record;
        record.sample.vector_index = *morsel;
        record.sample.result = r;
        record.sample.counters = pmu->Read() - before;
        record.worker_id = worker_id;
        record.order_version = local_version;
        results[*morsel] = r;
        records[*morsel] = record;
        if (hook) {
          std::lock_guard<std::mutex> lock(coordinator_mu);
          std::optional<std::vector<size_t>> new_order = hook(record);
          if (new_order.has_value()) {
            std::lock_guard<std::mutex> order_lock(broadcast.mu);
            broadcast.order = std::move(*new_order);
            broadcast.version.fetch_add(1, std::memory_order_release);
          }
        }
      }
      ++stats.morsels;
      if (!exec->error().ok()) {
        abort.store(true, std::memory_order_release);
        break;
      }
    }
    stats.counters = pmu->Read() - start;
    stats.simulated_msec = pmu->ToMilliseconds(stats.counters);
  };

  const auto wall_start = std::chrono::steady_clock::now();
  if (num_workers == 1) {
    // Run inline: keeps the single-shard path trivially bit-identical to
    // VectorDriver and free of thread-spawn noise in the wall clock.
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (std::thread& t : threads) t.join();
  }
  out.wall_msec = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  // Deterministic merge: results in morsel-index order (fixing the
  // floating-point summation order), counters over workers, simulated time
  // as the critical path.
  for (size_t m = 0; m < num_morsels; ++m) {
    out.merged.input_tuples += results[m].input_tuples;
    out.merged.qualifying_tuples += results[m].qualifying_tuples;
    out.merged.zone_skipped_tuples += results[m].zone_skipped;
    out.merged.aggregate += results[m].aggregate;
  }
  // Executed morsels, not the table's morsel count: a cancelled or
  // aborted run merges only what actually ran (equal on a full run).
  out.merged.num_vectors = 0;
  for (const WorkerStats& w : out.workers) {
    out.merged.num_vectors += w.morsels;
    out.merged.total += w.counters;
    out.merged.simulated_msec =
        std::max(out.merged.simulated_msec, w.simulated_msec);
  }
  out.samples = std::move(records);
  out.cancelled = saw_cancel.load(std::memory_order_relaxed);
  // Surface the first latched data error by worker index (only the shard
  // holding the bad row latches, so the pick is deterministic in
  // practice).
  for (const std::unique_ptr<PipelineExecutor>& exec : executors) {
    if (!exec->error().ok()) {
      out.error = exec->error();
      break;
    }
  }
  return out;
}

}  // namespace nipo
