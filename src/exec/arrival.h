#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

/// \file arrival.h
/// Arrival processes for open-loop workload execution (DESIGN.md
/// "Open-loop service mode").
///
/// A closed workload hands the driver every query at t = 0 and measures
/// makespan; an *open* workload is an arrival stream, and the metrics
/// that matter are per-query latency and its tail. The arrival process
/// is described by an ArrivalSpec and expanded by GenerateArrivalTimes
/// into a concrete schedule of simulated arrival instants — a pure
/// function of (spec, n) driven by the repo's seeded Prng, so identical
/// seeds yield bit-identical arrival schedules and every open-loop
/// experiment replays exactly.

namespace nipo {

/// \brief Shape of the arrival process.
enum class ArrivalKind : int {
  /// Closed queue: every query available at t = 0 (the PR-4 behaviour
  /// and the default; no arrival schedule is generated).
  kClosed = 0,
  /// Deterministic intervals: query i arrives at i / rate (no
  /// randomness; the D/…/k baseline of the sweep benches).
  kUniform,
  /// Poisson process: exponential inter-arrival times of mean 1 / rate,
  /// sampled from Prng(seed).
  kPoisson,
  /// Bursty on/off process: bursts of `burst_len` queries arrive as a
  /// Poisson stream at `burst_rate_qps`, separated by off-phase gaps
  /// sized so the long-run mean rate is `rate_qps`. Phases alternate
  /// deterministically every `burst_len` queries; the intra-burst
  /// jitter comes from Prng(seed).
  kBursty,
};

std::string_view ArrivalKindToString(ArrivalKind kind);

/// \brief Description of one arrival process.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kClosed;
  /// Mean arrival rate in queries per simulated second. Must be positive
  /// for every open kind; +infinity collapses every arrival to t = 0
  /// exactly (the "simultaneous arrival" limit the differential tests
  /// compare against the closed queue).
  double rate_qps = 0;
  /// Seed of the Prng behind kPoisson / kBursty draws.
  uint64_t seed = 42;
  /// kBursty: queries per on-phase burst (>= 1).
  size_t burst_len = 8;
  /// kBursty: arrival rate inside a burst; 0 means 4 * rate_qps. Must
  /// exceed rate_qps, otherwise the off-phase gap would be negative.
  double burst_rate_qps = 0;
};

/// \brief Expands `spec` into `n` non-decreasing arrival instants in
/// simulated milliseconds. kClosed yields all zeros. Pure function of
/// its arguments: rerunning with the same spec reproduces the schedule
/// bit-for-bit (the open-loop determinism anchor).
std::vector<double> GenerateArrivalTimes(const ArrivalSpec& spec, size_t n);

}  // namespace nipo
