#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "hw/pmu.h"
#include "storage/table.h"

/// \file pipeline.h
/// The vectorized, PMU-instrumented pipeline executor.
///
/// This is the "machine code" half of the paper's Section 2.1: operator
/// chains evaluated in a configurable order over the fact table, with one
/// conditional branch per operator evaluation (not taken = tuple
/// qualifies) plus the loop back-edge. Every dynamic event -- load,
/// compare, branch -- is reported to the simulated Pmu, which is how the
/// non-invasive counters of the paper arise here.
///
/// Execution is blocked operator-at-a-time (Vectorwise-style primitives):
/// each kSimBlockRows block runs one operator over all still-active rows
/// before the next, so every column touch is a stride-1 run or a gather
/// that the Pmu's batched reporting layer coalesces per cache line
/// (DESIGN.md "Batched simulation"). Per branch site the outcome sequence
/// is in row order, exactly as a tuple-at-a-time loop would produce it,
/// so the predictor-derived counters are loop-shape independent.
///
/// Reorder() switches to a different evaluation order between vectors,
/// playing the role of Hyper-style JIT recompilation / Vectorwise-style
/// primitive rechaining in Section 4.4.

namespace nipo {

/// \brief Result of executing one vector (or any row range).
struct VectorResult {
  uint64_t input_tuples = 0;
  uint64_t qualifying_tuples = 0;
  /// Sum over qualifying tuples of the product of the payload columns
  /// (e.g. Q6's sum(l_extendedprice * l_discount)).
  double aggregate = 0.0;
  /// Input tuples proven dead by a zone map before any per-tuple work
  /// (whole execution blocks skipped; subset of input_tuples). Always 0
  /// over plain columns.
  uint64_t zone_skipped = 0;
};

/// \brief Per-column storage costs as the executor sees them, consumed
/// by the progressive optimizer's scan shapes (cost/counter_model).
struct ColumnScanStats {
  uint32_t value_width = 0;            ///< native (decoded) width
  double scan_bytes_per_value = 0.0;   ///< encoded bytes a scan touches
  double decode_instructions = 0.0;    ///< per decoded value
  bool encoded = false;
};

/// \brief Compiled pipeline over one fact table.
class PipelineExecutor {
 public:
  /// Compiles `ops` (in initial evaluation order) against `table`.
  /// `payload_columns` are read only for fully qualifying tuples and
  /// multiplied into the aggregate. Validation errors (unknown columns,
  /// non-int32 FK columns, null dimension tables, FK values out of range
  /// are checked at run time) surface as Status.
  static Result<std::unique_ptr<PipelineExecutor>> Compile(
      const Table& table, std::vector<OperatorSpec> ops,
      std::vector<std::string> payload_columns, Pmu* pmu,
      InstrumentationMode mode = InstrumentationMode::kPmu);

  /// Executes rows [begin, end). If a runtime data error latches (see
  /// error()) the range stops early and returns the rows processed so
  /// far; further calls are no-ops until the latch is inspected.
  VectorResult ExecuteRange(size_t begin, size_t end);

  /// Runtime data-error latch. Data that can only be validated while
  /// executing — an FK value outside its dimension table, for instance —
  /// latches a Status here instead of aborting the process; execution
  /// stops at the current block and the drivers surface the Status as a
  /// failed query (QueryOutcome::kFailed) with partial progress kept.
  const Status& error() const { return error_; }

  /// Executes the whole table.
  VectorResult ExecuteAll() { return ExecuteRange(0, num_rows_); }

  /// Switches the evaluation order. `order` is a permutation of
  /// [0, num_operators) expressed in *original* operator indices.
  Status Reorder(const std::vector<size_t>& order);

  /// Current evaluation order as original operator indices.
  const std::vector<size_t>& current_order() const { return order_; }

  /// Sets the simulated evaluation form per operator, indexed by
  /// *original* operator index (forms survive Reorder, like the specs).
  /// FK probes only support kBranching (their qualify branch is inherent
  /// to the probe loop); InvalidArgument otherwise. The progressive
  /// optimizer under CostPricing::kSimdAware drives this.
  Status SetForms(const std::vector<PredicateForm>& forms);

  /// Current forms, indexed by original operator index.
  std::vector<PredicateForm> forms() const;

  /// The form of the operator currently evaluated at position `pos`.
  PredicateForm FormAt(size_t pos) const;

  size_t num_operators() const { return compiled_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// The operator currently evaluated at position `pos`.
  const OperatorSpec& OperatorAt(size_t pos) const;

  /// Enumerator mode only: tuples that passed the operator currently at
  /// each position, cumulatively since ResetEnumeratorCounts().
  const std::vector<uint64_t>& enumerator_pass_counts() const {
    return enum_pass_;
  }
  void ResetEnumeratorCounts();

  Pmu* pmu() const { return pmu_; }

  /// Fraction of the table's rows that the zone maps of the operator
  /// currently at `pos` prove dead against its predicate (0 for plain
  /// columns and FK probes) -- the optimizer's skip-potential signal.
  double ZonePrunableFractionAt(size_t pos) const;

  /// Storage scan stats of the fact-side column of the operator
  /// currently at `pos`.
  ColumnScanStats ColumnStatsAt(size_t pos) const;

  /// Storage scan stats of payload column `i`.
  ColumnScanStats PayloadStatsAt(size_t i) const;
  size_t num_payloads() const { return payloads_.size(); }

  /// True iff any scanned column (operator or payload) is encoded; the
  /// optimizer only switches to storage-aware scan shapes when so,
  /// keeping plain-column decision traces bit-identical to the
  /// pre-storage-layer ones.
  bool AnyEncodedColumn() const;

 private:
  struct CompiledOp {
    OperatorSpec::Kind kind;
    // Fact-side column, scanned through the storage view API.
    ColumnView column;
    CompareOp op = CompareOp::kLe;
    double value = 0.0;
    double extra_instructions = 0.0;
    PredicateForm form = PredicateForm::kBranching;
    // Predicates: fraction of rows in zone-refuted blocks (0 without
    // zone maps), computed once at Compile.
    double prunable_fraction = 0.0;
    // FK probe: dimension-side column.
    ColumnView dim_column;
    uint64_t dim_rows = 0;
    // Original index in the spec list (identifies the operator across
    // reorders).
    size_t original_index = 0;
  };
  struct CompiledPayload {
    ColumnView column;
  };

  PipelineExecutor() = default;

  /// Runs one block [block_begin, block_begin + n) and accumulates into
  /// `result`.
  void ExecuteBlock(size_t block_begin, size_t n, VectorResult* result);

  /// Zone-map prologue of a block: true if some predicate's zone maps
  /// refute it entirely (the caller then skips all per-tuple work).
  bool ZoneSkipBlock(size_t block_begin, size_t n);

  std::vector<OperatorSpec> specs_;       // original order
  std::vector<CompiledOp> all_ops_;       // original order
  std::vector<CompiledOp> compiled_;      // current evaluation order
  std::vector<size_t> order_;             // current order (original indices)
  std::vector<CompiledPayload> payloads_;
  std::vector<uint64_t> enum_pass_;
  Status error_;  ///< runtime data-error latch (see error())
  size_t num_rows_ = 0;
  Pmu* pmu_ = nullptr;
  InstrumentationMode mode_ = InstrumentationMode::kPmu;
  // Branch sites: position i -> site i, loop back-edge -> site
  // num_operators().
  size_t loop_site_ = 0;
  // Per-block scratch (selection-vector scaffolding / probe keys /
  // payload products), reused across blocks. An executor is
  // single-threaded by contract; the parallel driver builds one executor
  // per worker.
  SelectionScratch scratch_;
  std::vector<uint32_t> keys_;
  std::vector<double> prod_;
  // Decode buffers for encoded columns: fact-side scans and payloads use
  // decode_fact_, the probe's dimension gather uses decode_dim_ (both
  // live at once inside a probe).
  DecodeScratch decode_fact_;
  DecodeScratch decode_dim_;
};

/// \brief Instruction-cost constants of the generated loop; shared by the
/// executor and by documentation/tests that reason about the cycle model.
struct LoopCostModel {
  static constexpr double kLoopInstructions = 1.0;   ///< i++ / bounds calc
  static constexpr double kCompareInstructions = 1.0;
  /// Per-tuple instructions of the branch-free (compare-to-mask +
  /// selection compaction) predicate form: load-compare plus mask
  /// extraction, conditional-move append and count update replace the
  /// single compare+branch of the branching form (DESIGN.md Section 8).
  static constexpr double kBranchFreeInstructions = 4.0;
  static constexpr double kProbeAddressInstructions = 1.0;
  static constexpr double kAggregateInstructions = 2.0;  ///< mul + add
  /// Enumerator-based instrumentation: increment + store of the explicit
  /// counter after every operator evaluation (Section 5.7).
  static constexpr double kEnumeratorInstructions = 3.0;
};

}  // namespace nipo
