#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/admission.h"
#include "exec/arrival.h"
#include "exec/faults.h"
#include "exec/latency.h"
#include "exec/pipeline.h"
#include "exec/vector_driver.h"
#include "hw/pmu.h"
#include "optimizer/progressive.h"

/// \file workload_driver.h
/// Multi-query workload execution (DESIGN.md "Workload execution").
///
/// A workload is a queue of queries over the shared table registry. The
/// driver admits up to `max_concurrent` of them at a time (admission
/// control, FIFO), and a pool of `num_threads` workers executes the
/// admitted queries one *vector* at a time, round-robin: a worker claims
/// the query at the front of the ready queue, runs one scheduling quantum
/// (`burst_vectors` vectors) on that query's private simulated machine,
/// and yields it back. Queries therefore time-share the pool at vector
/// granularity — the workload analogue of the parallel driver's morsel
/// scheduling (exec/parallel_driver.h) with queries in place of shards.
///
/// Every query owns a complete private simulated machine (Pmu::CloneFresh:
/// cold caches, neutral predictor) and, when progressive, its own
/// optimizer, so each query re-optimizes independently from its own
/// counter windows while running concurrently with the others. Because a
/// query's vectors execute strictly in order on that private state — no
/// matter which worker runs which quantum — its results and counters are
/// **bit-identical to running it alone single-threaded** through
/// Engine::ExecuteBaseline / ExecuteProgressive. That is the driver's
/// deterministic mode (the default; see WorkloadOptions::deterministic
/// for the warm machine-reuse alternative).
///
/// Concurrency metrics live in *simulated* time, like everything else in
/// this repository: per-quantum simulated durations are replayed through a
/// deterministic event-driven model of the worker pool, yielding a
/// bit-stable makespan, per-query latencies and queries/sec on any host.
/// Host wall-clock of the pool region is reported alongside, wall-only
/// and non-deterministic, as in ParallelDriveResult.
///
/// Besides the closed queue (every query available at t = 0), the driver
/// runs *open-loop* service-mode workloads (DESIGN.md "Open-loop service
/// mode"): WorkloadOptions::arrival describes an arrival process
/// (exec/arrival.h), queries become admissible only once their simulated
/// arrival instant is reached, and each query's latency decomposes into
/// queue wait (arrival -> first dispatch) plus in-service span (first
/// dispatch -> completion), summarized as p50/p95/p99/max tails in the
/// report. Optionally an adaptive admission controller (exec/admission.h)
/// tunes the effective concurrency limit below `max_concurrent` from
/// per-quantum interference feedback, with a floor-of-one progress
/// guarantee. Open-loop, adaptive, and contended runs all execute inside
/// the same deterministic event loop, so every latency figure is
/// bit-stable and exactly replayable via SimulateWorkloadSchedule.

namespace nipo {

/// \brief Driver-level description of one workload query: how to run it,
/// not what it computes. The facade-level WorkloadQuery (core/engine.h)
/// adds the QuerySpec; the driver reaches the compiled pipeline through
/// its ExecutorFactory instead, mirroring the ParallelOptions /
/// ParallelConfig split.
struct WorkloadTask {
  /// Display name for reports (empty -> "q<index>").
  std::string name;
  /// Run under progressive optimization (otherwise fixed-order baseline).
  bool progressive = false;
  /// Progressive settings; `config.vector_size` is also the vector size
  /// of baseline tasks.
  ProgressiveConfig config;
  /// Optional initial evaluation order (permutation of the operators).
  std::optional<std::vector<size_t>> initial_order;
  /// Static priority (SchedulePolicy::kPriority): higher admits earlier;
  /// ties break in spec order.
  int priority = 0;
  /// Relative work estimate (SchedulePolicy::kSrwf): admission prefers
  /// the smallest. Only the ordering matters, not the unit. The facade
  /// (core/engine.cc) fills it from the cost model.
  double estimated_work = 0;
  /// Estimated L3-resident working set (SchedulePolicy::kFootprintAware):
  /// the bytes this query re-references and would like to keep in L3.
  /// The facade fills it from the cache cost model.
  uint64_t footprint_bytes = 0;
  /// Simulated deadline relative to arrival (0 = none). A query past its
  /// deadline is killed cooperatively at the next vector boundary
  /// (QueryOutcome::kDeadlineExceeded) with its partial-progress counters
  /// kept; with WorkloadOptions::shed_deadline it may instead be shed at
  /// admission. Deadlines route the run through the event-driven path.
  double sim_deadline_msec = 0;
  /// Absolute simulated cancellation instant (0 = none): the query is
  /// killed cooperatively at the first vector boundary at or past this
  /// time (QueryOutcome::kCancelled) — a user abort in simulated time.
  double sim_cancel_msec = 0;
};

/// \brief Admission-control policy of the workload scheduler. Policies
/// act at *admission* time (which pending query takes a freed slot); the
/// ready queue of admitted queries stays round-robin in every policy, so
/// in-flight queries always time-share the pool fairly.
enum class SchedulePolicy : int {
  /// Spec order (the PR-4 behaviour and the default).
  kFifo = 0,
  /// Shortest-remaining-work-first: admit the pending query with the
  /// smallest WorkloadTask::estimated_work. Remaining == total at
  /// admission time, since queries are never preempted back to pending.
  kSrwf,
  /// Highest WorkloadTask::priority first; FIFO among equal priorities.
  kPriority,
  /// Cache-footprint-aware co-scheduling: admit the earliest pending
  /// query whose estimated footprint fits in the shared-L3 budget left
  /// by the in-flight queries (estimates capped at L3 capacity; under
  /// contention the in-flight side uses live occupancy feedback when it
  /// exceeds the estimate). If nothing fits, the slot stays idle until a
  /// completion frees budget — except when *nothing* is in flight, where
  /// the front query is admitted regardless so the workload always makes
  /// progress.
  kFootprintAware,
};

std::string_view SchedulePolicyToString(SchedulePolicy policy);

/// \brief Scheduling options of a workload execution.
struct WorkloadOptions {
  /// Worker pool size (>= 1). Also the core count of the simulated
  /// schedule replay.
  size_t num_threads = 1;
  /// Admission control: maximum queries in flight (>= 1). Queries are
  /// admitted in spec order as slots free up.
  size_t max_concurrent = 1;
  /// Vectors a worker executes on a claimed query before yielding it back
  /// to the ready queue (the scheduling quantum).
  size_t burst_vectors = 1;
  /// Deterministic mode (default): every query runs on a fresh private
  /// machine, so its results and counters are bit-identical to a solo
  /// single-threaded run, and all simulated aggregates are bit-stable.
  /// When false, the `max_concurrent` admission slots own long-lived
  /// machines that carry cache and predictor state from one query to the
  /// next (Pmu::ResetCounters keeps warm state, like a real core between
  /// queries of a server); counters then depend on the admission schedule
  /// exactly as on real silicon. Query *results* (tuple counts,
  /// aggregates) are schedule-independent in both modes.
  bool deterministic = true;
  /// Admission-control policy (see SchedulePolicy).
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// Shared-L3 contention modelling (DESIGN.md Section 6). When true,
  /// every query machine keeps its private L1/L2 but routes L3 fills
  /// through one SharedCacheDomain sized like the prototype's L3, so
  /// concurrent queries evict each other's lines and the per-query
  /// counters show the interference. Execution is serialized into the
  /// event-driven schedule itself (quanta run at their simulated dispatch
  /// points, in event order), which makes the L3 interleaving — and every
  /// counter — a pure function of the schedule: bit-stable across reruns
  /// and hosts, like everything else here. When false (default), queries
  /// run interference-free on the PR-4 threaded pool, bit-identical to
  /// solo runs in deterministic mode.
  bool contention = false;
  /// Contention-mode self-audit: after every quantum, NIPO_CHECK the
  /// domain's accounting invariants (per-owner occupancy sums to the
  /// occupied line count; displaced lines equal charged evictions).
  /// Costs a full L3 scan per quantum; tests enable it, benches do not.
  bool audit_contention = false;
  /// Arrival process of the workload (exec/arrival.h). kClosed (default)
  /// is the PR-4/5 closed queue; any open kind enqueues query i only at
  /// its generated simulated arrival instant and reports per-query
  /// latency = queue wait + in-service span. Open-loop runs execute
  /// inside the deterministic event loop (like contention mode), so all
  /// latency figures are bit-stable.
  ArrivalSpec arrival;
  /// Adaptive admission (exec/admission.h): tune the effective
  /// concurrency limit within [1, max_concurrent] from per-quantum
  /// interference feedback instead of pinning it at max_concurrent.
  /// Composes with `contention` (eviction feedback) and any arrival
  /// kind; runs inside the event loop.
  bool adaptive_admission = false;
  /// Thresholds and cadence of the adaptive controller.
  AdmissionConfig admission;
  /// Seeded fault injection (exec/faults.h; DESIGN.md Section 9). The
  /// default plan injects nothing and leaves every execution path —
  /// threaded pool and event loop — byte-identical to a fault-free
  /// build. Any enabled plan routes the run through the event-driven
  /// path, where fault timing is part of the deterministic schedule.
  FaultPlan faults;
  /// Retry policy for transient (retryable) faults: capped exponential
  /// backoff in simulated time. max_attempts = 1 (default) disables
  /// retry.
  RetryPolicy retry;
  /// Deadline-aware admission shedding (DeadlineShedder, exec/
  /// admission.h): once calibrated by completed queries, admission picks
  /// predicted to miss their deadline are rejected as
  /// QueryOutcome::kShed instead of burning worker time and dying at a
  /// vector boundary.
  bool shed_deadline = false;
};

/// \brief How one scheduling quantum ended (recorded per quantum in the
/// replay trace). kNormal quanta either complete the query or yield it
/// back to the ready queue; every other fate ends the current *attempt*
/// at the quantum's completion event.
enum class QuantumFate : uint8_t {
  kNormal = 0,          ///< ran its burst (or finished the query)
  kTransientFault = 1,  ///< retryable failure at the quantum's end
  kHardFault = 2,       ///< non-retryable failure (poison / runtime error)
  kDeadline = 3,        ///< killed at a vector boundary past the deadline
  kCancel = 4,          ///< killed at a vector boundary past the cancel point
};

/// \brief Per-query outcome of a workload execution.
struct WorkloadQueryReport {
  std::string name;
  bool progressive = false;
  /// Results and full-run counters on the query's machine. In
  /// deterministic mode, bit-identical to the solo single-threaded run.
  DriveResult drive;
  /// Progressive-only: the PEO trace of this query's private optimizer
  /// (empty for baseline queries).
  std::vector<PeoChange> changes;
  size_t num_optimizations = 0;
  std::vector<double> last_estimate;
  std::vector<size_t> final_order;
  /// Simulated schedule (deterministic replay): arrival instant, first
  /// dispatch and completion on the simulated worker pool. In the closed
  /// queue every arrival is 0 and latency equals sim_finish_msec; in
  /// open-loop modes the latency decomposition is
  ///   sim_latency_msec = sim_queue_wait_msec + (finish - start)
  /// with sim_queue_wait_msec = sim_start_msec - sim_arrival_msec, exact
  /// in floating point by construction.
  double sim_arrival_msec = 0;
  double sim_start_msec = 0;
  double sim_finish_msec = 0;
  double sim_queue_wait_msec = 0;
  double sim_latency_msec = 0;
  /// Scheduling quanta this query was dispatched in.
  size_t quanta = 0;
  /// Distinct host workers that executed at least one quantum of it.
  size_t workers_touched = 0;
  /// Per-quantum simulated durations (the schedule-replay input; exposed
  /// so tests can cross-check live contended schedules against
  /// SimulateWorkloadSchedule).
  std::vector<double> quantum_msec;
  /// Per-quantum shared-L3 evictions suffered inside the quantum's
  /// counter window (parallel to quantum_msec; all zero when
  /// contention=off). Together with quantum_msec and quantum_occupancy
  /// this is the complete QuantumTrace replay input of adaptive runs.
  std::vector<uint64_t> quantum_evictions;
  /// Per-quantum live shared-L3 occupancy after the quantum: lines owned
  /// by queries still in flight (finished owners' residue excluded), the
  /// adaptive controller's crowding signal. Parallel to quantum_msec;
  /// all zero when contention=off.
  std::vector<uint64_t> quantum_occupancy;
  /// Contention-mode occupancy gauges (lines owned in the shared L3),
  /// sampled when the query's last quantum finished; zero when
  /// contention=off.
  uint64_t shared_l3_peak_occupancy_lines = 0;
  uint64_t shared_l3_final_occupancy_lines = 0;
  /// Terminal state of the query (exec/faults.h). Anything but kOk means
  /// `drive` holds the partial progress of the final attempt (counters
  /// and tuples accrued before the kill/failure; zero for kShed).
  QueryOutcome outcome = QueryOutcome::kOk;
  /// Execution attempts started (1 without faults; 0 for shed queries).
  size_t attempts = 1;
  /// Total simulated backoff wait between failed attempts; part of the
  /// latency decomposition:
  ///   sim_latency = sim_queue_wait + sim_backoff + in-service time.
  double sim_backoff_msec = 0;
  /// The error behind a kFailed outcome (OK otherwise).
  Status error;
  /// Per-quantum fates (parallel to quantum_msec): with it, the recorded
  /// quanta form the complete fault-mode QuantumTrace replay input —
  /// fates mark where attempts ended, and the replay reconstructs retry
  /// backoffs from the RetryPolicy alone.
  std::vector<QuantumFate> quantum_fate;
};

/// \brief Aggregate outcome of a workload execution.
struct WorkloadReport {
  std::vector<WorkloadQueryReport> queries;
  /// Completion time of the last query in the deterministic simulated
  /// schedule (num_threads simulated cores, the configured admission and
  /// round-robin policy).
  double sim_makespan_msec = 0;
  /// queries.size() / sim_makespan; the workload throughput headline.
  double sim_queries_per_sec = 0;
  /// Sum of per-query machine times: the simulated cost of running the
  /// workload one query at a time on one core (the serial baseline the
  /// makespan is compared against; speedup = sim_serial / sim_makespan).
  double sim_serial_msec = 0;
  /// Host wall-clock of the pool region (not simulated, not
  /// deterministic).
  double wall_msec = 0;
  double wall_queries_per_sec = 0;
  /// Peak number of queries simultaneously admitted (<= max_concurrent).
  size_t peak_in_flight = 0;
  /// Echo of the options the workload ran under.
  size_t num_threads = 0;
  size_t max_concurrent = 0;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  bool contention = false;
  /// Contention-mode shared-L3 geometry (lines) and total lines ever
  /// displaced from it; zero when contention=off.
  uint64_t shared_l3_capacity_lines = 0;
  uint64_t shared_l3_lines_displaced = 0;
  /// Arrival-process echo (kClosed / rate 0 for the closed queue).
  ArrivalKind arrival_kind = ArrivalKind::kClosed;
  double arrival_rate_qps = 0;
  /// Tail summaries over the per-query simulated latencies and queue
  /// waits (simulated-time gauges, bit-stable; docs/COUNTERS.md). In the
  /// closed queue latency == completion time, so these summarize
  /// sim_finish_msec.
  LatencySummary latency;
  LatencySummary queue_wait;
  /// Adaptive-admission echoes (exec/admission.h); limit fields are 0
  /// when adaptive_admission=off.
  bool adaptive_admission = false;
  size_t admission_final_limit = 0;
  size_t admission_min_limit = 0;
  size_t admission_increases = 0;
  size_t admission_decreases = 0;
  /// Outcome census (sums to queries.size()) and the goodput headline:
  /// completed-OK queries per simulated second. Fault-free runs have
  /// queries_ok == queries.size() and goodput == sim_queries_per_sec.
  size_t queries_ok = 0;
  size_t queries_failed = 0;
  size_t queries_deadline_exceeded = 0;
  size_t queries_cancelled = 0;
  size_t queries_shed = 0;
  double sim_goodput_qps = 0;
  /// Retry totals: attempts beyond each query's first, and the summed
  /// simulated backoff waits.
  size_t total_retries = 0;
  double total_backoff_msec = 0;
};

/// \brief The deterministic simulated schedule of a workload, replayed
/// from per-quantum durations (exposed separately for tests).
struct SimSchedule {
  std::vector<double> arrival_msec;  ///< arrival instant per query (0 if
                                     ///< closed)
  std::vector<double> start_msec;    ///< first dispatch per query
  std::vector<double> finish_msec;   ///< completion per query
  /// Admission queue wait: start - arrival, per query.
  std::vector<double> queue_wait_msec;
  /// End-to-end latency: queue_wait + (finish - start), per query —
  /// exact in floating point by construction.
  std::vector<double> latency_msec;
  double makespan_msec = 0;
  /// Fault-mode outputs (all-kOk / all-1 / all-0 without faults): the
  /// terminal outcome, attempts started, and total simulated backoff per
  /// query. A live run and its trace replay must agree on these exactly
  /// (tests/service_faults_test.cc).
  std::vector<QueryOutcome> outcome;
  std::vector<size_t> attempts;
  std::vector<double> backoff_msec;
};

/// \brief Static per-query inputs of a policy-aware schedule replay
/// (mirrors the WorkloadTask scheduling fields).
struct ScheduleTaskInfo {
  int priority = 0;
  double work = 0;
  uint64_t footprint_bytes = 0;
};

/// \brief Admission-policy configuration of a schedule replay.
struct SchedulePolicyConfig {
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// Footprint budget of kFootprintAware (0 = unlimited, which
  /// degenerates to FIFO).
  uint64_t l3_capacity_bytes = 0;
  /// Per-query info; empty means all-default (every query identical).
  std::vector<ScheduleTaskInfo> tasks;
};

/// \brief Replays the pool's scheduling policy (FIFO admission of at most
/// `max_concurrent` queries, round-robin ready queue, `num_threads`
/// workers, earliest-free-worker dispatch) in simulated time.
/// `quantum_msec[q]` holds query q's per-quantum simulated durations.
SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent);

/// \brief Policy-aware overload: same event-driven replay with admission
/// picked by `config.policy` instead of FIFO. With a default-constructed
/// config this is exactly the overload above (same event loop).
SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent, const SchedulePolicyConfig& config);

/// \brief One recorded scheduling quantum: its simulated duration, the
/// shared-L3 evictions the query suffered inside the quantum's counter
/// window, and the live shared-L3 occupancy (lines owned by in-flight
/// queries) after the quantum (both 0 when contention=off). The complete
/// replay input of a quantum: durations rebuild the schedule, evictions
/// and occupancy rebuild the adaptive controller's decision sequence.
struct QuantumTrace {
  double duration_msec = 0;
  uint64_t evictions_suffered = 0;
  uint64_t occupancy_lines = 0;
  /// How the quantum ended (QuantumFate::kNormal outside fault mode).
  /// Fates mark where attempts ended, making retries replayable without
  /// redrawing faults.
  QuantumFate fate = QuantumFate::kNormal;
};

/// \brief Adaptive-admission inputs of a schedule replay: the controller
/// thresholds plus the shared-L3 geometry behind its eviction-fraction
/// signal (0 when contention=off).
struct AdaptiveAdmissionSpec {
  AdmissionConfig config;
  uint64_t l3_capacity_lines = 0;
};

/// \brief Fault-mode inputs of a schedule replay (DESIGN.md Section 9):
/// the retry policy behind recorded kTransientFault fates, the per-query
/// deadlines (relative to arrival; 0 = none) and the shedding switch —
/// everything the event loop needs to reconstruct retry backoffs and
/// admission-shedding decisions exactly as the live run took them. The
/// fault *events* themselves are not re-drawn: the recorded QuantumTrace
/// fates already encode them.
struct ServiceFaultSpec {
  RetryPolicy retry;
  /// Per-query deadline relative to arrival (empty = none anywhere).
  std::vector<double> deadline_msec;
  bool shed_deadline = false;
};

/// \brief Full service-mode overload: event-driven replay with arrivals
/// (`arrival_msec[q]`, non-decreasing in q; empty means closed queue)
/// and, when `adaptive` is non-null, an AdmissionController rebuilt from
/// the recorded quantum traces, evolving the effective concurrency limit
/// exactly as the live run did. With empty arrivals and null `adaptive`
/// this is exactly the policy-aware overload above.
///
/// Fault mode: a non-null `faults` interprets the recorded QuantumTrace
/// fates — kTransientFault quanta re-enter the ready queue after their
/// reconstructed backoff (until the retry budget is spent), kill fates
/// complete the query — and re-derives shedding, reproducing the live
/// run's outcomes, attempts, backoff waits and timing bit-identically
/// (shed queries carry empty traces and are never dispatched).
SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<QuantumTrace>>& quanta,
    const std::vector<double>& arrival_msec, size_t num_threads,
    size_t max_concurrent, const SchedulePolicyConfig& config,
    const AdaptiveAdmissionSpec* adaptive = nullptr,
    const ServiceFaultSpec* faults = nullptr);

/// \brief Drives a multi-query workload over a shared worker pool.
class WorkloadDriver {
 public:
  /// Compiles task `index`'s pipeline against the machine it was admitted
  /// on. Called under the scheduler lock, once per admission (plus once
  /// per task, against a scratch machine, for the up-front validation
  /// pass).
  using ExecutorFactory =
      std::function<Result<std::unique_ptr<PipelineExecutor>>(size_t index,
                                                              Pmu* pmu)>;

  /// \param prototype machine-configuration donor; every query machine
  ///        (deterministic mode) or slot machine (warm mode) is
  ///        prototype.CloneFresh().
  WorkloadDriver(const Pmu& prototype, ExecutorFactory factory,
                 WorkloadOptions options);

  /// Executes every task to completion. Compile and validation errors of
  /// *any* task surface before execution starts.
  Result<WorkloadReport> Run(const std::vector<WorkloadTask>& tasks);

  const WorkloadOptions& options() const { return options_; }

 private:
  /// Event-driven execution: quanta run serially inside the event loop
  /// itself, at their simulated dispatch points. Used whenever the
  /// schedule shapes execution or feedback — contention mode (shared L3
  /// domain), open-loop arrivals, adaptive admission — in any
  /// combination.
  Result<WorkloadReport> RunEventDriven(const std::vector<WorkloadTask>& tasks);

  /// The scheduling-field view of `tasks` plus this driver's policy and
  /// L3 budget (prototype L3 capacity).
  SchedulePolicyConfig PolicyConfig(
      const std::vector<WorkloadTask>& tasks) const;

  Pmu prototype_;
  ExecutorFactory factory_;
  WorkloadOptions options_;
};

}  // namespace nipo
