#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/pipeline.h"
#include "exec/vector_driver.h"
#include "hw/pmu.h"
#include "optimizer/progressive.h"

/// \file workload_driver.h
/// Multi-query workload execution (DESIGN.md "Workload execution").
///
/// A workload is a queue of queries over the shared table registry. The
/// driver admits up to `max_concurrent` of them at a time (admission
/// control, FIFO), and a pool of `num_threads` workers executes the
/// admitted queries one *vector* at a time, round-robin: a worker claims
/// the query at the front of the ready queue, runs one scheduling quantum
/// (`burst_vectors` vectors) on that query's private simulated machine,
/// and yields it back. Queries therefore time-share the pool at vector
/// granularity — the workload analogue of the parallel driver's morsel
/// scheduling (exec/parallel_driver.h) with queries in place of shards.
///
/// Every query owns a complete private simulated machine (Pmu::CloneFresh:
/// cold caches, neutral predictor) and, when progressive, its own
/// optimizer, so each query re-optimizes independently from its own
/// counter windows while running concurrently with the others. Because a
/// query's vectors execute strictly in order on that private state — no
/// matter which worker runs which quantum — its results and counters are
/// **bit-identical to running it alone single-threaded** through
/// Engine::ExecuteBaseline / ExecuteProgressive. That is the driver's
/// deterministic mode (the default; see WorkloadOptions::deterministic
/// for the warm machine-reuse alternative).
///
/// Concurrency metrics live in *simulated* time, like everything else in
/// this repository: per-quantum simulated durations are replayed through a
/// deterministic event-driven model of the worker pool, yielding a
/// bit-stable makespan, per-query latencies and queries/sec on any host.
/// Host wall-clock of the pool region is reported alongside, wall-only
/// and non-deterministic, as in ParallelDriveResult.

namespace nipo {

/// \brief Driver-level description of one workload query: how to run it,
/// not what it computes. The facade-level WorkloadQuery (core/engine.h)
/// adds the QuerySpec; the driver reaches the compiled pipeline through
/// its ExecutorFactory instead, mirroring the ParallelOptions /
/// ParallelConfig split.
struct WorkloadTask {
  /// Display name for reports (empty -> "q<index>").
  std::string name;
  /// Run under progressive optimization (otherwise fixed-order baseline).
  bool progressive = false;
  /// Progressive settings; `config.vector_size` is also the vector size
  /// of baseline tasks.
  ProgressiveConfig config;
  /// Optional initial evaluation order (permutation of the operators).
  std::optional<std::vector<size_t>> initial_order;
};

/// \brief Scheduling options of a workload execution.
struct WorkloadOptions {
  /// Worker pool size (>= 1). Also the core count of the simulated
  /// schedule replay.
  size_t num_threads = 1;
  /// Admission control: maximum queries in flight (>= 1). Queries are
  /// admitted in spec order as slots free up.
  size_t max_concurrent = 1;
  /// Vectors a worker executes on a claimed query before yielding it back
  /// to the ready queue (the scheduling quantum).
  size_t burst_vectors = 1;
  /// Deterministic mode (default): every query runs on a fresh private
  /// machine, so its results and counters are bit-identical to a solo
  /// single-threaded run, and all simulated aggregates are bit-stable.
  /// When false, the `max_concurrent` admission slots own long-lived
  /// machines that carry cache and predictor state from one query to the
  /// next (Pmu::ResetCounters keeps warm state, like a real core between
  /// queries of a server); counters then depend on the admission schedule
  /// exactly as on real silicon. Query *results* (tuple counts,
  /// aggregates) are schedule-independent in both modes.
  bool deterministic = true;
};

/// \brief Per-query outcome of a workload execution.
struct WorkloadQueryReport {
  std::string name;
  bool progressive = false;
  /// Results and full-run counters on the query's machine. In
  /// deterministic mode, bit-identical to the solo single-threaded run.
  DriveResult drive;
  /// Progressive-only: the PEO trace of this query's private optimizer
  /// (empty for baseline queries).
  std::vector<PeoChange> changes;
  size_t num_optimizations = 0;
  std::vector<double> last_estimate;
  std::vector<size_t> final_order;
  /// Simulated schedule (deterministic replay): first dispatch and
  /// completion on the simulated worker pool. Latency = sim_finish_msec
  /// (all queries arrive at t = 0), of which sim_start_msec was spent
  /// queued behind admission control.
  double sim_start_msec = 0;
  double sim_finish_msec = 0;
  /// Scheduling quanta this query was dispatched in.
  size_t quanta = 0;
  /// Distinct host workers that executed at least one quantum of it.
  size_t workers_touched = 0;
};

/// \brief Aggregate outcome of a workload execution.
struct WorkloadReport {
  std::vector<WorkloadQueryReport> queries;
  /// Completion time of the last query in the deterministic simulated
  /// schedule (num_threads simulated cores, the configured admission and
  /// round-robin policy).
  double sim_makespan_msec = 0;
  /// queries.size() / sim_makespan; the workload throughput headline.
  double sim_queries_per_sec = 0;
  /// Sum of per-query machine times: the simulated cost of running the
  /// workload one query at a time on one core (the serial baseline the
  /// makespan is compared against; speedup = sim_serial / sim_makespan).
  double sim_serial_msec = 0;
  /// Host wall-clock of the pool region (not simulated, not
  /// deterministic).
  double wall_msec = 0;
  double wall_queries_per_sec = 0;
  /// Peak number of queries simultaneously admitted (<= max_concurrent).
  size_t peak_in_flight = 0;
  /// Echo of the options the workload ran under.
  size_t num_threads = 0;
  size_t max_concurrent = 0;
};

/// \brief The deterministic simulated schedule of a workload, replayed
/// from per-quantum durations (exposed separately for tests).
struct SimSchedule {
  std::vector<double> start_msec;   ///< first dispatch per query
  std::vector<double> finish_msec;  ///< completion per query
  double makespan_msec = 0;
};

/// \brief Replays the pool's scheduling policy (FIFO admission of at most
/// `max_concurrent` queries, round-robin ready queue, `num_threads`
/// workers, earliest-free-worker dispatch) in simulated time.
/// `quantum_msec[q]` holds query q's per-quantum simulated durations.
SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent);

/// \brief Drives a multi-query workload over a shared worker pool.
class WorkloadDriver {
 public:
  /// Compiles task `index`'s pipeline against the machine it was admitted
  /// on. Called under the scheduler lock, once per admission (plus once
  /// per task, against a scratch machine, for the up-front validation
  /// pass).
  using ExecutorFactory =
      std::function<Result<std::unique_ptr<PipelineExecutor>>(size_t index,
                                                              Pmu* pmu)>;

  /// \param prototype machine-configuration donor; every query machine
  ///        (deterministic mode) or slot machine (warm mode) is
  ///        prototype.CloneFresh().
  WorkloadDriver(const Pmu& prototype, ExecutorFactory factory,
                 WorkloadOptions options);

  /// Executes every task to completion. Compile and validation errors of
  /// *any* task surface before execution starts.
  Result<WorkloadReport> Run(const std::vector<WorkloadTask>& tasks);

  const WorkloadOptions& options() const { return options_; }

 private:
  Pmu prototype_;
  ExecutorFactory factory_;
  WorkloadOptions options_;
};

}  // namespace nipo
