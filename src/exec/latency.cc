#include "exec/latency.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file latency.cc
/// Exact nearest-rank latency percentiles over the full sample set.
/// Every statistic is computed over the *sorted* samples, making each a
/// pure function of the sample multiset: merging two accumulators is
/// bit-identical to feeding one accumulator the concatenated stream, in
/// any order (the property tests pin this down).

namespace nipo {

void LatencyDistribution::Add(double msec) {
  samples_.push_back(msec);
  sorted_ = false;
}

void LatencyDistribution::Merge(const LatencyDistribution& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = samples_.empty();
}

void LatencyDistribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyDistribution::max_msec() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double LatencyDistribution::mean_msec() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  // Summed in sorted order so the floating-point result depends only on
  // the multiset, not on insertion or merge order.
  double sum = 0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyDistribution::Percentile(double p) const {
  NIPO_CHECK(p >= 0 && p <= 100);
  if (samples_.empty()) return 0;
  EnsureSorted();
  // Nearest rank: the ceil(p/100 * N)-th smallest sample, 1-based; p = 0
  // floors to rank 1 (the minimum).
  const double n = static_cast<double>(samples_.size());
  const size_t rank =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(p / 100.0 * n)));
  return samples_[std::min(rank, samples_.size()) - 1];
}

LatencySummary LatencyDistribution::Summary() const {
  LatencySummary s;
  s.count = samples_.size();
  s.mean_msec = mean_msec();
  s.p50_msec = Percentile(50);
  s.p95_msec = Percentile(95);
  s.p99_msec = Percentile(99);
  s.max_msec = max_msec();
  return s;
}

}  // namespace nipo
