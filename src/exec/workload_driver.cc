#include "exec/workload_driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <numeric>
#include <queue>
#include <thread>

#include "common/logging.h"
#include "hw/shared_cache.h"

/// \file workload_driver.cc
/// Multi-query workload scheduling (DESIGN.md "Workload execution",
/// Section 6 "Shared-cache contention", Section 7 "Open-loop service
/// mode"): policy-driven admission control over a slot table, a
/// vector-granular round-robin ready queue, per-query private machines
/// and optimizers stepping the exact single-query driver sequence, and
/// one event-driven schedule core that serves every schedule-shaped
/// role — the deterministic simulated-schedule replay, the policy-aware
/// variant of it, open-loop arrival release, the adaptive admission
/// limit, and the contention-mode executor that runs quanta *inside*
/// the event loop against a shared L3 domain.

namespace nipo {

std::string_view SchedulePolicyToString(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "fifo";
    case SchedulePolicy::kSrwf:
      return "srwf";
    case SchedulePolicy::kPriority:
      return "priority";
    case SchedulePolicy::kFootprintAware:
      return "footprint";
  }
  return "unknown";
}

namespace {

/// Mutable execution state of one admitted query. A QueryRun is touched
/// by exactly one worker at a time: ownership passes through the
/// scheduler's ready queue (mutex-protected), which is also what makes
/// the hand-off race-free. (In contention mode everything runs on one
/// host thread and the question does not arise.)
struct QueryRun {
  const WorkloadTask* task = nullptr;
  size_t slot = 0;  ///< admission slot (machine owner in warm mode)

  /// The query's machine: privately owned in deterministic mode, the
  /// admission slot's long-lived machine in warm mode.
  std::unique_ptr<Pmu> owned_pmu;
  Pmu* pmu = nullptr;
  std::unique_ptr<PipelineExecutor> exec;
  std::unique_ptr<ProgressiveOptimizer> optimizer;

  /// Full-run counter window, opened at admission (the solo drivers read
  /// their machine once at Run() entry; admission is that point here).
  PmuCounters run_begin;
  size_t next_row = 0;
  size_t vector_index = 0;
  DriveResult drive;

  /// Per-quantum simulated durations, input of the schedule replay.
  std::vector<double> quantum_msec;
  /// Per-quantum shared-L3 evictions suffered (parallel to quantum_msec;
  /// zero when contention=off) — with quantum_msec and
  /// quantum_occupancy, the QuantumTrace replay input of adaptive runs.
  std::vector<uint64_t> quantum_evictions;
  /// Per-quantum live shared-L3 occupancy after the quantum (lines owned
  /// by in-flight queries; zero when contention=off).
  std::vector<uint64_t> quantum_occupancy;
  /// touched_workers[w] != 0 iff host worker w ran a quantum of this
  /// query (sized num_threads at admission).
  std::vector<uint8_t> touched_workers;
  size_t quanta = 0;
  /// Contention mode: occupancy gauges sampled at the last quantum.
  uint64_t peak_occupancy_lines = 0;
  uint64_t final_occupancy_lines = 0;

  /// Fault-mode state (DESIGN.md Section 9). Defaults describe the
  /// fault-free run: one attempt, no backoff, outcome kOk.
  QueryOutcome outcome = QueryOutcome::kOk;
  size_t attempts = 1;
  double backoff_msec = 0;
  Status error;
  /// Per-quantum fates, parallel to quantum_msec.
  std::vector<QuantumFate> quantum_fate;
};

/// Executes one vector of `run`, replaying VectorDriver::Run exactly:
/// baseline tasks execute the range bare; progressive tasks take the
/// charged counter-read pair around it and feed the sample to the query's
/// private optimizer, which may Reorder() for subsequent vectors.
void ExecuteOneVector(QueryRun* run) {
  const size_t rows = run->exec->num_rows();
  const size_t begin = run->next_row;
  const size_t end = std::min(begin + run->task->config.vector_size, rows);
  if (run->optimizer != nullptr) {
    run->pmu->ChargeCycles(kCounterReadCycles);
    CounterWindow window(run->pmu);
    const VectorResult r = run->exec->ExecuteRange(begin, end);
    run->drive.input_tuples += r.input_tuples;
    run->drive.qualifying_tuples += r.qualifying_tuples;
    run->drive.zone_skipped_tuples += r.zone_skipped;
    run->drive.aggregate += r.aggregate;
    run->pmu->ChargeCycles(kCounterReadCycles);
    VectorSample sample;
    sample.vector_index = run->vector_index;
    sample.result = r;
    sample.counters = window.Delta();
    run->optimizer->OnVector(sample);
  } else {
    const VectorResult r = run->exec->ExecuteRange(begin, end);
    run->drive.input_tuples += r.input_tuples;
    run->drive.qualifying_tuples += r.qualifying_tuples;
    run->drive.zone_skipped_tuples += r.zone_skipped;
    run->drive.aggregate += r.aggregate;
  }
  ++run->vector_index;
  run->next_row = end;
}

constexpr size_t kNoPick = static_cast<size_t>(-1);

double TaskWork(const SchedulePolicyConfig& cfg, size_t q) {
  return cfg.tasks.empty() ? 0.0 : cfg.tasks[q].work;
}

int TaskPriority(const SchedulePolicyConfig& cfg, size_t q) {
  return cfg.tasks.empty() ? 0 : cfg.tasks[q].priority;
}

/// A query's footprint claim against the L3 budget, capped at capacity:
/// a query streaming more than the whole L3 can at most occupy the whole
/// L3, and capping is what lets such a query ever be admitted at all.
uint64_t CappedFootprint(const SchedulePolicyConfig& cfg, size_t q) {
  if (cfg.tasks.empty()) return 0;
  return std::min(cfg.tasks[q].footprint_bytes, cfg.l3_capacity_bytes);
}

/// Picks the next query to admit: a position into `pending` (spec-order
/// subsequence of not-yet-admitted queries), or kNoPick to leave the
/// admission slot empty until the next completion. Pure function of the
/// pending/in-flight sets and the policy inputs — which is what makes
/// admission order identical between a live run and its replay.
size_t PickNextAdmission(
    const std::vector<size_t>& pending, const SchedulePolicyConfig& cfg,
    const std::vector<size_t>& in_flight,
    const std::function<uint64_t(size_t)>& live_footprint) {
  if (pending.empty()) return kNoPick;
  switch (cfg.policy) {
    case SchedulePolicy::kFifo:
      return 0;
    case SchedulePolicy::kSrwf: {
      size_t best = 0;
      for (size_t i = 1; i < pending.size(); ++i) {
        if (TaskWork(cfg, pending[i]) < TaskWork(cfg, pending[best])) {
          best = i;
        }
      }
      return best;
    }
    case SchedulePolicy::kPriority: {
      size_t best = 0;
      for (size_t i = 1; i < pending.size(); ++i) {
        if (TaskPriority(cfg, pending[i]) > TaskPriority(cfg, pending[best])) {
          best = i;
        }
      }
      return best;
    }
    case SchedulePolicy::kFootprintAware: {
      if (cfg.l3_capacity_bytes == 0) return 0;
      uint64_t used = 0;
      for (const size_t q : in_flight) {
        uint64_t f = CappedFootprint(cfg, q);
        if (live_footprint != nullptr) {
          // Live occupancy feedback: a query that grew past its estimate
          // claims what it actually holds.
          f = std::max(f,
                       std::min(live_footprint(q), cfg.l3_capacity_bytes));
        }
        used += f;
      }
      const uint64_t budget =
          cfg.l3_capacity_bytes > used ? cfg.l3_capacity_bytes - used : 0;
      for (size_t i = 0; i < pending.size(); ++i) {
        if (CappedFootprint(cfg, pending[i]) <= budget) return i;
      }
      // Nothing fits. Defer if someone is running (a completion will free
      // budget); admit the front regardless if the machine is idle, so
      // the workload always makes progress.
      return in_flight.empty() ? 0 : kNoPick;
    }
  }
  return 0;
}

/// What one dispatched quantum produced: its simulated duration, the
/// shared-L3 evictions suffered inside it and the live shared-L3
/// occupancy after it (adaptive-controller feedback; zero without
/// contention), and whether it completed the query.
struct QuantumOutcome {
  double duration_msec = 0;
  uint64_t evictions_suffered = 0;
  uint64_t occupancy_lines = 0;
  bool done = false;
  /// How the quantum ended; anything but kNormal ends the attempt (the
  /// loop decides whether a retry follows). `done` is only meaningful
  /// for kNormal fates.
  QuantumFate fate = QuantumFate::kNormal;
};

/// Optional side-effect hooks of the event loop (used by the contention
/// executor; the pure replay passes none).
struct EventLoopHooks {
  std::function<void(size_t)> on_admit;
  std::function<void(size_t)> on_complete;
  /// A transient fault is being retried: reset the query's execution
  /// state (fresh machine, recompiled pipeline, fresh optimizer) so the
  /// next dispatch restarts the query from row zero.
  std::function<void(size_t)> on_retry;
  std::function<uint64_t(size_t)> live_footprint;
};

/// The event-driven schedule core shared by the replay and the
/// event-driven executor: admission picked by `cfg.policy` into at most
/// `max_concurrent` slots (lowered live by `controller` when adaptive),
/// a round-robin ready queue, dispatch of the front query to the
/// earliest-free of `num_threads` simulated workers. `run_quantum(q)` is
/// called at q's dispatch points *in dispatch order* — for a replay it
/// returns recorded durations; for contended execution it actually runs
/// the quantum, which is exactly what serializes the shared-L3
/// interleaving into event order.
///
/// Open-loop mode: `arrival_msec` (empty = closed queue; otherwise
/// non-decreasing, one instant per query) gates when each query joins
/// the pending set. The loop advances the clock to the next arrival when
/// idle, and at equal times releases arrivals *before* processing the
/// completion event — so the rate -> infinity limit (all arrivals at
/// t = 0) reproduces the closed queue exactly.
///
/// Adaptive mode: a non-null `controller` is fed every quantum
/// completion in event order (duration, evictions, occupancy) and its
/// limit() caps admissions from then on. Both the live run and the
/// trace replay feed it the same sequence, so the decisions — and hence
/// the schedule — are bit-identical.
///
/// Ties in completion time break by dispatch sequence, making the loop
/// fully deterministic.
///
/// Fault mode (non-null `faults`): run_quantum reports each quantum's
/// fate. kTransientFault attempts retry after a reconstructed capped-
/// exponential backoff (re-entering the ready queue at fail time +
/// backoff, keeping the admission slot) until the retry budget is spent;
/// kill fates and exhausted retries complete the query with the matching
/// outcome. With shedding on, admission picks whose predicted completion
/// misses their deadline are rejected (kShed) without ever dispatching —
/// the DeadlineShedder calibrates from completed-OK queries' scheduled
/// time, so live runs and trace replays shed identically.
SimSchedule RunEventSchedule(
    size_t n, size_t num_threads, size_t max_concurrent,
    const SchedulePolicyConfig& cfg, const std::vector<double>& arrival_msec,
    AdmissionController* controller, const ServiceFaultSpec* faults,
    const std::function<QuantumOutcome(size_t, double)>& run_quantum,
    const EventLoopHooks& hooks, size_t* peak_in_flight_out) {
  SimSchedule schedule;
  schedule.arrival_msec.assign(n, 0.0);
  schedule.start_msec.assign(n, 0.0);
  schedule.finish_msec.assign(n, 0.0);
  schedule.queue_wait_msec.assign(n, 0.0);
  schedule.latency_msec.assign(n, 0.0);
  schedule.outcome.assign(n, QueryOutcome::kOk);
  schedule.attempts.assign(n, 1);
  schedule.backoff_msec.assign(n, 0.0);
  if (n == 0) return schedule;
  NIPO_CHECK(num_threads > 0);
  NIPO_CHECK(max_concurrent > 0);
  if (!arrival_msec.empty()) {
    NIPO_CHECK(arrival_msec.size() == n);
    for (size_t i = 0; i + 1 < n; ++i) {
      NIPO_CHECK(arrival_msec[i] <= arrival_msec[i + 1]);
    }
    schedule.arrival_msec = arrival_msec;
  }

  struct Event {
    double time = 0;
    uint64_t seq = 0;
    size_t query = 0;
    bool done = false;
    QuantumFate fate = QuantumFate::kNormal;
    /// The completed quantum, for the controller's feedback.
    double duration_msec = 0;
    uint64_t evictions_suffered = 0;
    uint64_t occupancy_lines = 0;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> running;
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      free_workers;
  for (size_t w = 0; w < num_threads; ++w) free_workers.push(0.0);

  struct ReadyEntry {
    size_t query = 0;
    double since = 0;  ///< when the query (re-)entered the ready queue
  };
  std::deque<ReadyEntry> ready;
  std::vector<size_t> pending;
  pending.reserve(n);
  size_t next_arrival = 0;  ///< queries [next_arrival, n) not yet arrived
  std::vector<size_t> in_flight;
  std::vector<bool> started(n, false);
  size_t peak_in_flight = 0;
  uint64_t seq = 0;

  // Fault-mode state: retry budget, per-query scheduled service time
  // (the shedder's calibration basis — identical between a live run and
  // its replay, unlike machine time, which stalls inflate away from the
  // schedule), and the admission shedder.
  const size_t max_attempts =
      faults != nullptr ? std::max<size_t>(1, faults->retry.max_attempts) : 1;
  auto deadline_of = [&](size_t q) {
    return faults != nullptr && q < faults->deadline_msec.size()
               ? faults->deadline_msec[q]
               : 0.0;
  };
  std::vector<double> service_msec(n, 0.0);
  DeadlineShedder shedder;
  const bool shedding = faults != nullptr && faults->shed_deadline;

  // Arrival schedules are non-decreasing in query index, so releasing in
  // index order keeps `pending` in spec order — the same order the
  // closed queue starts from.
  auto release = [&](double now) {
    while (next_arrival < n && schedule.arrival_msec[next_arrival] <= now) {
      pending.push_back(next_arrival++);
    }
  };
  auto effective_limit = [&] {
    return controller != nullptr ? std::min(max_concurrent, controller->limit())
                                 : max_concurrent;
  };
  auto admit = [&](double now) {
    while (in_flight.size() < effective_limit()) {
      const size_t pos =
          PickNextAdmission(pending, cfg, in_flight, hooks.live_footprint);
      if (pos == kNoPick) break;
      const size_t query = pending[pos];
      // Deadline-aware shedding: a pick predicted to miss its deadline
      // is rejected here — early, before it claims a machine — instead
      // of being admitted only to die at a vector boundary later.
      if (shedding &&
          shedder.ShouldShed(now, schedule.arrival_msec[query],
                             deadline_of(query), TaskWork(cfg, query),
                             in_flight.size(), num_threads)) {
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pos));
        started[query] = true;
        schedule.start_msec[query] = now;
        schedule.finish_msec[query] = now;
        schedule.queue_wait_msec[query] =
            now - schedule.arrival_msec[query];
        schedule.latency_msec[query] = schedule.queue_wait_msec[query];
        schedule.makespan_msec = std::max(schedule.makespan_msec, now);
        schedule.outcome[query] = QueryOutcome::kShed;
        schedule.attempts[query] = 0;
        continue;
      }
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pos));
      if (hooks.on_admit != nullptr) hooks.on_admit(query);
      in_flight.push_back(query);
      peak_in_flight = std::max(peak_in_flight, in_flight.size());
      ready.push_back({query, now});
    }
  };
  auto dispatch = [&] {
    while (!ready.empty() && !free_workers.empty()) {
      const ReadyEntry entry = ready.front();
      ready.pop_front();
      const double worker_free = free_workers.top();
      free_workers.pop();
      const double start = std::max(entry.since, worker_free);
      if (!started[entry.query]) {
        started[entry.query] = true;
        schedule.start_msec[entry.query] = start;
      }
      const QuantumOutcome out = run_quantum(entry.query, start);
      running.push({start + out.duration_msec, seq++, entry.query, out.done,
                    out.fate, out.duration_msec, out.evictions_suffered,
                    out.occupancy_lines});
    }
  };

  release(0.0);
  admit(0.0);
  dispatch();
  while (!running.empty() || next_arrival < n) {
    if (running.empty() ||
        (next_arrival < n &&
         schedule.arrival_msec[next_arrival] <= running.top().time)) {
      // Next happening is an arrival (or the machine is idle waiting for
      // one): advance the clock to it and release/admit/dispatch there.
      const double now = schedule.arrival_msec[next_arrival];
      release(now);
      admit(now);
      dispatch();
      continue;
    }
    const Event event = running.top();
    running.pop();
    free_workers.push(event.time);
    service_msec[event.query] += event.duration_msec;
    // Resolve the quantum's fate: completion (with which outcome), a
    // retry after backoff, or a plain yield back to the ready queue.
    bool complete = false;
    QueryOutcome outcome = QueryOutcome::kOk;
    switch (event.fate) {
      case QuantumFate::kNormal:
        complete = event.done;
        break;
      case QuantumFate::kTransientFault:
        if (schedule.attempts[event.query] < max_attempts) {
          // Capped exponential backoff in simulated time: the query
          // keeps its admission slot but re-enters the ready queue only
          // at fail time + backoff, restarting from scratch.
          const double backoff = RetryBackoffMsec(
              faults->retry, schedule.attempts[event.query]);
          ++schedule.attempts[event.query];
          schedule.backoff_msec[event.query] += backoff;
          if (hooks.on_retry != nullptr) hooks.on_retry(event.query);
          ready.push_back({event.query, event.time + backoff});
        } else {
          complete = true;
          outcome = QueryOutcome::kFailed;
        }
        break;
      case QuantumFate::kHardFault:
        complete = true;
        outcome = QueryOutcome::kFailed;
        break;
      case QuantumFate::kDeadline:
        complete = true;
        outcome = QueryOutcome::kDeadlineExceeded;
        break;
      case QuantumFate::kCancel:
        complete = true;
        outcome = QueryOutcome::kCancelled;
        break;
    }
    if (complete) {
      schedule.finish_msec[event.query] = event.time;
      // The latency decomposition, exact by construction: queue wait
      // (arrival -> first dispatch) plus in-service span (which in turn
      // splits into backoff_msec of waiting and execution).
      schedule.queue_wait_msec[event.query] =
          schedule.start_msec[event.query] -
          schedule.arrival_msec[event.query];
      schedule.latency_msec[event.query] =
          schedule.queue_wait_msec[event.query] +
          (event.time - schedule.start_msec[event.query]);
      schedule.makespan_msec = std::max(schedule.makespan_msec, event.time);
      schedule.outcome[event.query] = outcome;
      in_flight.erase(
          std::find(in_flight.begin(), in_flight.end(), event.query));
      if (shedding && outcome == QueryOutcome::kOk) {
        shedder.OnQueryDone(service_msec[event.query],
                            TaskWork(cfg, event.query));
      }
      if (hooks.on_complete != nullptr) hooks.on_complete(event.query);
    } else if (event.fate == QuantumFate::kNormal) {
      ready.push_back({event.query, event.time});
    }
    if (controller != nullptr) {
      controller->OnQuantum(event.query, event.duration_msec,
                            event.evictions_suffered, event.occupancy_lines,
                            in_flight.size(), pending.size());
    }
    // Completions always free an admission slot — including kills and
    // failures, whose final quantum has done == false; with a
    // controller, a non-done quantum can also raise the limit, so
    // re-check admission after every event.
    if (complete || event.done || controller != nullptr) admit(event.time);
    dispatch();
  }
  if (peak_in_flight_out != nullptr) *peak_in_flight_out = peak_in_flight;
  return schedule;
}

/// Assembles the per-query reports and serial baseline out of finished
/// runs (shared by the threaded and contended paths); the caller fills
/// the schedule-derived fields afterwards.
WorkloadReport AssembleReport(const std::vector<WorkloadTask>& tasks,
                              std::vector<QueryRun>* runs,
                              const WorkloadOptions& options, double wall_msec,
                              size_t peak_in_flight) {
  const size_t n = tasks.size();
  WorkloadReport report;
  report.num_threads = options.num_threads;
  report.max_concurrent = options.max_concurrent;
  report.policy = options.policy;
  report.contention = options.contention;
  report.arrival_kind = options.arrival.kind;
  report.arrival_rate_qps = options.arrival.kind == ArrivalKind::kClosed
                                ? 0.0
                                : options.arrival.rate_qps;
  report.adaptive_admission = options.adaptive_admission;
  report.peak_in_flight = peak_in_flight;
  report.wall_msec = wall_msec;
  report.wall_queries_per_sec =
      wall_msec > 0 ? static_cast<double>(n) / (wall_msec / 1e3) : 0.0;
  report.queries.resize(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRun& run = (*runs)[i];
    WorkloadQueryReport& q = report.queries[i];
    q.name = tasks[i].name.empty() ? "q" + std::to_string(i) : tasks[i].name;
    q.progressive = tasks[i].progressive;
    q.quanta = run.quanta;
    for (const uint8_t touched : run.touched_workers) {
      q.workers_touched += touched;
    }
    q.shared_l3_peak_occupancy_lines = run.peak_occupancy_lines;
    q.shared_l3_final_occupancy_lines = run.final_occupancy_lines;
    q.outcome = run.outcome;
    q.attempts = run.attempts;
    q.sim_backoff_msec = run.backoff_msec;
    q.error = run.error;
    q.quantum_fate = std::move(run.quantum_fate);
    if (run.exec == nullptr) {
      // Shed at admission: never dispatched, no machine, no execution
      // state — the row carries the outcome and nothing else.
      continue;
    }
    if (run.optimizer != nullptr) {
      ProgressiveReport prog = run.optimizer->Finish(std::move(run.drive));
      q.drive = std::move(prog.drive);
      q.changes = std::move(prog.changes);
      q.num_optimizations = prog.num_optimizations;
      q.last_estimate = std::move(prog.last_estimate);
      q.final_order = std::move(prog.final_order);
    } else {
      q.drive = std::move(run.drive);
      q.final_order = run.exec->current_order();
    }
    report.sim_serial_msec += q.drive.simulated_msec;
    q.quantum_msec = std::move(run.quantum_msec);
    q.quantum_evictions = std::move(run.quantum_evictions);
    q.quantum_occupancy = std::move(run.quantum_occupancy);
  }
  return report;
}

/// Copies the schedule into the report's per-query and headline fields,
/// including the latency/queue-wait tail summaries.
void ApplySchedule(const SimSchedule& schedule, WorkloadReport* report) {
  const size_t n = report->queries.size();
  LatencyDistribution latency;
  LatencyDistribution queue_wait;
  for (size_t i = 0; i < n; ++i) {
    WorkloadQueryReport& q = report->queries[i];
    q.sim_arrival_msec = schedule.arrival_msec[i];
    q.sim_start_msec = schedule.start_msec[i];
    q.sim_finish_msec = schedule.finish_msec[i];
    q.sim_queue_wait_msec = schedule.queue_wait_msec[i];
    q.sim_latency_msec = schedule.latency_msec[i];
    latency.Add(q.sim_latency_msec);
    queue_wait.Add(q.sim_queue_wait_msec);
  }
  report->sim_makespan_msec = schedule.makespan_msec;
  report->sim_queries_per_sec =
      schedule.makespan_msec > 0
          ? static_cast<double>(n) / (schedule.makespan_msec / 1e3)
          : 0.0;
  report->latency = latency.Summary();
  report->queue_wait = queue_wait.Summary();
  // Outcome census and the goodput headline (completed-OK queries per
  // simulated second). Fault-free runs count everything as kOk, making
  // goodput == sim_queries_per_sec.
  for (const WorkloadQueryReport& q : report->queries) {
    switch (q.outcome) {
      case QueryOutcome::kOk:
        ++report->queries_ok;
        break;
      case QueryOutcome::kDeadlineExceeded:
        ++report->queries_deadline_exceeded;
        break;
      case QueryOutcome::kCancelled:
        ++report->queries_cancelled;
        break;
      case QueryOutcome::kFailed:
        ++report->queries_failed;
        break;
      case QueryOutcome::kShed:
        ++report->queries_shed;
        break;
    }
    if (q.attempts > 1) report->total_retries += q.attempts - 1;
    report->total_backoff_msec += q.sim_backoff_msec;
  }
  report->sim_goodput_qps =
      report->sim_makespan_msec > 0
          ? static_cast<double>(report->queries_ok) /
                (report->sim_makespan_msec / 1e3)
          : 0.0;
}

/// True iff the run needs the fault-tolerant event-driven path: any
/// enabled fault plan, retry budget, shedding, or per-task deadline /
/// cancellation point. False keeps fault-free runs on their existing
/// paths, byte-for-byte.
bool FaultModeRequested(const WorkloadOptions& options,
                        const std::vector<WorkloadTask>& tasks) {
  if (options.faults.enabled() || options.retry.max_attempts > 1 ||
      options.shed_deadline) {
    return true;
  }
  for (const WorkloadTask& task : tasks) {
    if (task.sim_deadline_msec > 0 || task.sim_cancel_msec > 0) return true;
  }
  return false;
}

}  // namespace

SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent) {
  return SimulateWorkloadSchedule(quantum_msec, num_threads, max_concurrent,
                                  SchedulePolicyConfig{});
}

SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent, const SchedulePolicyConfig& config) {
  const size_t n = quantum_msec.size();
  if (n == 0) return SimSchedule{};
  NIPO_CHECK(config.tasks.empty() || config.tasks.size() == n);
  std::vector<size_t> next_quantum(n, 0);
  auto run_quantum = [&](size_t q, double /*start_msec*/) {
    QuantumOutcome out;
    out.duration_msec = next_quantum[q] < quantum_msec[q].size()
                            ? quantum_msec[q][next_quantum[q]]
                            : 0.0;
    ++next_quantum[q];
    out.done = next_quantum[q] >= quantum_msec[q].size();
    return out;
  };
  return RunEventSchedule(n, num_threads, max_concurrent, config,
                          /*arrival_msec=*/{}, /*controller=*/nullptr,
                          /*faults=*/nullptr, run_quantum, EventLoopHooks{},
                          nullptr);
}

SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<QuantumTrace>>& quanta,
    const std::vector<double>& arrival_msec, size_t num_threads,
    size_t max_concurrent, const SchedulePolicyConfig& config,
    const AdaptiveAdmissionSpec* adaptive, const ServiceFaultSpec* faults) {
  const size_t n = quanta.size();
  if (n == 0) return SimSchedule{};
  NIPO_CHECK(config.tasks.empty() || config.tasks.size() == n);
  std::unique_ptr<AdmissionController> controller;
  if (adaptive != nullptr) {
    controller = std::make_unique<AdmissionController>(
        n, max_concurrent, adaptive->l3_capacity_lines, adaptive->config);
  }
  std::vector<size_t> next_quantum(n, 0);
  auto run_quantum = [&](size_t q, double /*start_msec*/) {
    QuantumOutcome out;
    if (next_quantum[q] < quanta[q].size()) {
      out.duration_msec = quanta[q][next_quantum[q]].duration_msec;
      out.evictions_suffered = quanta[q][next_quantum[q]].evictions_suffered;
      out.occupancy_lines = quanta[q][next_quantum[q]].occupancy_lines;
      // The recorded fate replays where the attempt ended; the event loop
      // reconstructs the backoff from the RetryPolicy alone.
      out.fate = quanta[q][next_quantum[q]].fate;
    }
    ++next_quantum[q];
    out.done = next_quantum[q] >= quanta[q].size();
    return out;
  };
  return RunEventSchedule(n, num_threads, max_concurrent, config, arrival_msec,
                          controller.get(), faults, run_quantum,
                          EventLoopHooks{}, nullptr);
}

WorkloadDriver::WorkloadDriver(const Pmu& prototype, ExecutorFactory factory,
                               WorkloadOptions options)
    : prototype_(prototype.CloneFresh()),
      factory_(std::move(factory)),
      options_(options) {
  NIPO_CHECK(factory_ != nullptr);
}

SchedulePolicyConfig WorkloadDriver::PolicyConfig(
    const std::vector<WorkloadTask>& tasks) const {
  SchedulePolicyConfig cfg;
  cfg.policy = options_.policy;
  cfg.l3_capacity_bytes = prototype_.config().l3.capacity_bytes;
  cfg.tasks.reserve(tasks.size());
  for (const WorkloadTask& task : tasks) {
    cfg.tasks.push_back(
        {task.priority, task.estimated_work, task.footprint_bytes});
  }
  return cfg;
}

Result<WorkloadReport> WorkloadDriver::Run(
    const std::vector<WorkloadTask>& tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (options_.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options_.max_concurrent == 0) {
    return Status::InvalidArgument("max_concurrent must be positive");
  }
  if (options_.burst_vectors == 0) {
    return Status::InvalidArgument("burst_vectors must be positive");
  }
  for (const WorkloadTask& task : tasks) {
    if (task.config.vector_size == 0) {
      return Status::InvalidArgument("vector_size must be positive");
    }
    if (task.config.reopt_interval == 0) {
      return Status::InvalidArgument("reopt_interval must be positive");
    }
  }
  if (options_.arrival.kind != ArrivalKind::kClosed) {
    if (!(options_.arrival.rate_qps > 0)) {
      return Status::InvalidArgument("arrival rate_qps must be positive");
    }
    if (options_.arrival.kind == ArrivalKind::kBursty) {
      if (options_.arrival.burst_len == 0) {
        return Status::InvalidArgument("burst_len must be positive");
      }
      const double burst_rate = options_.arrival.burst_rate_qps > 0
                                    ? options_.arrival.burst_rate_qps
                                    : 4.0 * options_.arrival.rate_qps;
      if (!(burst_rate > options_.arrival.rate_qps)) {
        return Status::InvalidArgument(
            "burst_rate_qps must exceed rate_qps");
      }
    }
  }
  if (options_.adaptive_admission) {
    if (options_.admission.min_limit == 0) {
      return Status::InvalidArgument("admission min_limit must be positive");
    }
    if (options_.admission.epoch_quanta == 0) {
      return Status::InvalidArgument("admission epoch_quanta must be positive");
    }
  }
  if (options_.faults.transient_fault_rate < 0 ||
      options_.faults.transient_fault_rate > 1) {
    return Status::InvalidArgument("transient_fault_rate must be in [0, 1]");
  }
  if (options_.faults.stall_rate < 0 || options_.faults.stall_rate > 1) {
    return Status::InvalidArgument("stall_rate must be in [0, 1]");
  }
  if (options_.faults.stall_rate > 0 && !(options_.faults.stall_factor >= 1)) {
    return Status::InvalidArgument("stall_factor must be >= 1");
  }
  if (options_.retry.max_attempts == 0) {
    return Status::InvalidArgument("retry max_attempts must be positive");
  }
  if (options_.retry.max_attempts > 1) {
    if (options_.retry.backoff_base_msec < 0) {
      return Status::InvalidArgument("backoff_base_msec must be >= 0");
    }
    if (options_.retry.backoff_cap_msec < options_.retry.backoff_base_msec) {
      return Status::InvalidArgument(
          "backoff_cap_msec must be >= backoff_base_msec");
    }
  }
  for (const WorkloadTask& task : tasks) {
    if (task.sim_deadline_msec < 0) {
      return Status::InvalidArgument("sim_deadline_msec must be >= 0");
    }
    if (task.sim_cancel_msec < 0) {
      return Status::InvalidArgument("sim_cancel_msec must be >= 0");
    }
  }

  const size_t n = tasks.size();
  // Validation pass: compile every task against a scratch machine and
  // apply its initial order, so unknown tables / bad orders surface
  // before any thread starts. Admission-time compiles repeat the same
  // inputs and therefore cannot fail.
  {
    Pmu scratch = prototype_.CloneFresh();
    for (size_t i = 0; i < n; ++i) {
      NIPO_ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                            factory_(i, &scratch));
      if (tasks[i].initial_order.has_value()) {
        NIPO_RETURN_NOT_OK(exec->Reorder(*tasks[i].initial_order));
      }
    }
  }

  // Anything that shapes execution or feedback through the schedule —
  // shared-L3 contention, open-loop arrivals, the adaptive limit, fault
  // injection / deadlines / retry — runs inside the deterministic event
  // loop. The plain closed queue keeps the PR-4 threaded pool below,
  // byte-for-byte.
  if (options_.contention || options_.adaptive_admission ||
      options_.arrival.kind != ArrivalKind::kClosed ||
      FaultModeRequested(options_, tasks)) {
    return RunEventDriven(tasks);
  }

  const size_t num_slots = options_.max_concurrent;
  std::vector<QueryRun> runs(n);
  // Warm mode: one long-lived machine per admission slot, created fresh
  // on first use and carrying cache/predictor state to later queries.
  std::vector<std::unique_ptr<Pmu>> slot_machines(num_slots);
  const SchedulePolicyConfig policy_cfg = PolicyConfig(tasks);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<QueryRun*> ready;
  std::vector<size_t> free_slots;
  for (size_t s = 0; s < num_slots; ++s) free_slots.push_back(s);
  std::vector<size_t> pending(n);
  std::iota(pending.begin(), pending.end(), size_t{0});
  std::vector<size_t> in_flight_set;
  size_t finished = 0;
  size_t peak_in_flight = 0;

  // Admission (lock held): pick the next query per policy, bind it to a
  // machine, compile its executor, open its full-run counter window, and
  // enqueue it. Policy picks use static estimates only (there is no
  // shared cache here), so the admission sequence is a pure function of
  // the policy inputs — identical to the replay's, whatever the host
  // timing of completions.
  auto admit_locked = [&] {
    while (!free_slots.empty()) {
      const size_t pos =
          PickNextAdmission(pending, policy_cfg, in_flight_set, nullptr);
      if (pos == kNoPick) break;
      const size_t index = pending[pos];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pos));
      QueryRun& run = runs[index];
      run.task = &tasks[index];
      run.slot = free_slots.back();
      free_slots.pop_back();
      if (options_.deterministic) {
        run.owned_pmu = std::make_unique<Pmu>(prototype_.CloneFresh());
        run.pmu = run.owned_pmu.get();
      } else {
        std::unique_ptr<Pmu>& slot = slot_machines[run.slot];
        if (slot == nullptr) {
          slot = std::make_unique<Pmu>(prototype_.CloneFresh());
        } else {
          slot->ResetCounters();  // keep warm caches and predictor state
        }
        run.pmu = slot.get();
      }
      auto exec = factory_(index, run.pmu);
      NIPO_CHECK(exec.ok());  // the validation pass proved this compiles
      run.exec = std::move(exec.ValueOrDie());
      if (run.task->initial_order.has_value()) {
        NIPO_CHECK(run.exec->Reorder(*run.task->initial_order).ok());
      }
      if (run.task->progressive) {
        run.optimizer = std::make_unique<ProgressiveOptimizer>(
            run.exec.get(), run.task->config);
        run.optimizer->Begin();
      }
      run.run_begin = run.pmu->Read();
      run.touched_workers.assign(options_.num_threads, 0);
      ready.push_back(&run);
      in_flight_set.push_back(index);
      peak_in_flight = std::max(peak_in_flight, in_flight_set.size());
    }
  };

  auto worker_main = [&](size_t worker_id) {
    for (;;) {
      QueryRun* run = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !ready.empty() || finished == n; });
        if (ready.empty()) return;  // all queries finished
        run = ready.front();
        ready.pop_front();
      }
      // One scheduling quantum, outside the lock: this worker is the
      // sole owner of `run` (and its machine) until the yield below.
      const CounterWindow quantum(run->pmu);
      const size_t rows = run->exec->num_rows();
      for (size_t b = 0; b < options_.burst_vectors && run->next_row < rows;
           ++b) {
        ExecuteOneVector(run);
      }
      run->quantum_msec.push_back(run->pmu->ToMilliseconds(quantum.Delta()));
      run->touched_workers[worker_id] = 1;
      ++run->quanta;
      // Runtime data errors latch on the executor (exec/pipeline.h)
      // instead of aborting; a latched query stops here and reports
      // kFailed with its partial progress.
      const bool failed = !run->exec->error().ok();
      if (failed) {
        run->outcome = QueryOutcome::kFailed;
        run->error = run->exec->error();
      }
      run->quantum_fate.push_back(failed ? QuantumFate::kHardFault
                                         : QuantumFate::kNormal);
      const bool done = failed || run->next_row >= rows;
      if (done) {
        // Close the full-run window, exactly like the solo drivers.
        run->drive.num_vectors = run->vector_index;
        run->drive.total = run->pmu->Read() - run->run_begin;
        run->drive.simulated_msec = run->pmu->ToMilliseconds(run->drive.total);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (done) {
          ++finished;
          const size_t index = static_cast<size_t>(run - runs.data());
          in_flight_set.erase(std::find(in_flight_set.begin(),
                                        in_flight_set.end(), index));
          free_slots.push_back(run->slot);
          admit_locked();
          cv.notify_all();
        } else {
          ready.push_back(run);
          cv.notify_one();
        }
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu);
    admit_locked();
  }
  const auto wall_start = std::chrono::steady_clock::now();
  if (options_.num_threads == 1) {
    // Run inline, like ParallelDriver: no thread-spawn noise in the wall
    // clock, and the single-worker path stays trivially serial.
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options_.num_threads);
    for (size_t w = 0; w < options_.num_threads; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_msec = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();

  std::vector<std::vector<double>> quanta(n);
  for (size_t i = 0; i < n; ++i) quanta[i] = runs[i].quantum_msec;
  WorkloadReport report =
      AssembleReport(tasks, &runs, options_, wall_msec, peak_in_flight);
  const SimSchedule schedule = SimulateWorkloadSchedule(
      quanta, options_.num_threads, options_.max_concurrent, policy_cfg);
  ApplySchedule(schedule, &report);
  return report;
}

Result<WorkloadReport> WorkloadDriver::RunEventDriven(
    const std::vector<WorkloadTask>& tasks) {
  const size_t n = tasks.size();
  // Contention mode: one shared L3, sized like the prototype's, with one
  // owner id per query (the query index). Machines keep their private
  // L1/L2. Null when contention=off — queries then run interference-free
  // (the event loop only shapes *when* quanta run, not what they cost).
  std::unique_ptr<SharedCacheDomain> domain;
  if (options_.contention) {
    domain = std::make_unique<SharedCacheDomain>(prototype_.config().l3);
    for (size_t i = 0; i < n; ++i) {
      domain->RegisterOwner(tasks[i].name.empty() ? "q" + std::to_string(i)
                                                  : tasks[i].name);
    }
  }
  // Open-loop arrival schedule (empty = closed queue: everything
  // admissible at t = 0, exactly the PR-4/5 event-loop behaviour).
  std::vector<double> arrivals;
  if (options_.arrival.kind != ArrivalKind::kClosed) {
    arrivals = GenerateArrivalTimes(options_.arrival, n);
  }
  // Adaptive admission: the live controller, fed by the event loop at
  // every quantum completion. Its replay twin is rebuilt from the
  // recorded QuantumTraces in SimulateWorkloadSchedule.
  std::unique_ptr<AdmissionController> controller;
  if (options_.adaptive_admission) {
    controller = std::make_unique<AdmissionController>(
        n, options_.max_concurrent,
        domain != nullptr ? domain->capacity_lines() : 0, options_.admission);
  }
  // Fault mode (DESIGN.md Section 9): the spec handed to the event loop
  // (retry budget, deadlines, shedding switch) plus the live fault-draw
  // coordinates. Null/absent when no fault feature is requested, keeping
  // the fault-free event paths byte-identical to PR 5-7.
  const bool fault_mode = FaultModeRequested(options_, tasks);
  ServiceFaultSpec fault_spec;
  if (fault_mode) {
    fault_spec.retry = options_.retry;
    fault_spec.shed_deadline = options_.shed_deadline;
    fault_spec.deadline_msec.resize(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      fault_spec.deadline_msec[i] = tasks[i].sim_deadline_msec;
    }
  }
  const size_t max_attempts =
      fault_mode ? std::max<size_t>(1, options_.retry.max_attempts) : 1;
  std::vector<size_t> attempt_no(n, 0);
  std::vector<size_t> quantum_in_attempt(n, 0);
  constexpr double kNoKill = std::numeric_limits<double>::infinity();

  const size_t num_slots = options_.max_concurrent;
  std::vector<QueryRun> runs(n);
  std::vector<std::unique_ptr<Pmu>> slot_machines(num_slots);
  std::vector<size_t> free_slots;
  for (size_t s = 0; s < num_slots; ++s) free_slots.push_back(s);
  const SchedulePolicyConfig policy_cfg = PolicyConfig(tasks);

  EventLoopHooks hooks;
  hooks.on_admit = [&](size_t index) {
    QueryRun& run = runs[index];
    run.task = &tasks[index];
    run.slot = free_slots.back();
    free_slots.pop_back();
    if (options_.deterministic) {
      run.owned_pmu = std::make_unique<Pmu>(prototype_.CloneFresh());
      run.pmu = run.owned_pmu.get();
    } else {
      std::unique_ptr<Pmu>& slot = slot_machines[run.slot];
      if (slot == nullptr) {
        slot = std::make_unique<Pmu>(prototype_.CloneFresh());
      } else {
        slot->ResetCounters();  // keep warm private caches and predictor
      }
      run.pmu = slot.get();
    }
    if (domain != nullptr) {
      run.pmu->AttachSharedL3(domain.get(), static_cast<uint32_t>(index));
    }
    auto exec = factory_(index, run.pmu);
    NIPO_CHECK(exec.ok());  // the validation pass proved this compiles
    run.exec = std::move(exec.ValueOrDie());
    if (run.task->initial_order.has_value()) {
      NIPO_CHECK(run.exec->Reorder(*run.task->initial_order).ok());
    }
    if (run.task->progressive) {
      run.optimizer = std::make_unique<ProgressiveOptimizer>(run.exec.get(),
                                                             run.task->config);
      run.optimizer->Begin();
    }
    run.run_begin = run.pmu->Read();
    run.touched_workers.assign(1, 0);  // one host thread runs everything
  };
  hooks.on_complete = [&](size_t index) {
    free_slots.push_back(runs[index].slot);
  };
  hooks.on_retry = [&](size_t index) {
    // A transient fault is being retried: the query restarts from
    // scratch. The failed attempt's machine state is discarded (fresh
    // clone in deterministic mode; counter reset on the warm slot
    // machine), the pipeline recompiles, and a progressive query gets a
    // fresh optimizer — exactly the admission sequence, minus the slot
    // bookkeeping (the query keeps its slot through the backoff).
    QueryRun& run = runs[index];
    ++attempt_no[index];
    quantum_in_attempt[index] = 0;
    run.error = Status::OK();
    if (domain != nullptr) run.pmu->AttachSharedL3(nullptr, 0);
    if (options_.deterministic) {
      run.owned_pmu = std::make_unique<Pmu>(prototype_.CloneFresh());
      run.pmu = run.owned_pmu.get();
    } else {
      run.pmu->ResetCounters();
    }
    if (domain != nullptr) {
      run.pmu->AttachSharedL3(domain.get(), static_cast<uint32_t>(index));
    }
    auto exec = factory_(index, run.pmu);
    NIPO_CHECK(exec.ok());  // the validation pass proved this compiles
    run.exec = std::move(exec.ValueOrDie());
    if (run.task->initial_order.has_value()) {
      NIPO_CHECK(run.exec->Reorder(*run.task->initial_order).ok());
    }
    if (run.task->progressive) {
      run.optimizer = std::make_unique<ProgressiveOptimizer>(run.exec.get(),
                                                             run.task->config);
      run.optimizer->Begin();
    } else {
      run.optimizer.reset();
    }
    run.run_begin = run.pmu->Read();
    run.next_row = 0;
    run.vector_index = 0;
    run.drive = DriveResult{};
  };
  if (domain != nullptr) {
    hooks.live_footprint = [&domain](size_t index) -> uint64_t {
      return domain->stats(static_cast<uint32_t>(index)).occupancy_lines *
             domain->line_size();
    };
  }

  // Completed queries whose shared-L3 residue must be excluded from the
  // live occupancy fed to the adaptive controller: a dead owner's lines
  // are reusable capacity, not a crowding signal.
  std::vector<uint32_t> finished_owners;

  auto run_quantum = [&](size_t index, double start) -> QuantumOutcome {
    QueryRun& run = runs[index];
    QuantumOutcome out;
    const size_t rows = run.exec->num_rows();
    // Fault draws are pure functions of (seed, query, attempt, quantum)
    // — schedule-independent, so every admission limit, worker count and
    // rerun sees the identical per-query fault sequence.
    FaultDraw draw;
    if (fault_mode && options_.faults.enabled()) {
      draw = DrawFault(options_.faults, index, attempt_no[index],
                       quantum_in_attempt[index]);
    }
    const double arrival = arrivals.empty() ? 0.0 : arrivals[index];
    const double deadline_at = tasks[index].sim_deadline_msec > 0
                                   ? arrival + tasks[index].sim_deadline_msec
                                   : kNoKill;
    const double cancel_at =
        tasks[index].sim_cancel_msec > 0 ? tasks[index].sim_cancel_msec
                                         : kNoKill;
    const CounterWindow quantum(run.pmu);
    if (deadline_at < kNoKill || cancel_at < kNoKill) {
      // Cooperative kill checks at every vector boundary, against
      // *scheduled* time: the quantum's dispatch instant plus the
      // (stall-scaled) simulated time of the vectors run so far. The
      // per-vector windows only read counters, so the whole-quantum
      // window below still yields the exact duration it always did.
      double elapsed = 0;
      for (size_t b = 0; b < options_.burst_vectors && run.next_row < rows;
           ++b) {
        const double now = start + elapsed;
        if (now >= cancel_at) {
          out.fate = QuantumFate::kCancel;
          break;
        }
        if (now >= deadline_at) {
          out.fate = QuantumFate::kDeadline;
          break;
        }
        const CounterWindow vec(run.pmu);
        ExecuteOneVector(&run);
        if (!run.exec->error().ok()) break;  // latched; resolved below
        double vec_msec = run.pmu->ToMilliseconds(vec.Delta());
        if (draw.stall) vec_msec *= options_.faults.stall_factor;
        elapsed += vec_msec;
      }
    } else {
      for (size_t b = 0; b < options_.burst_vectors && run.next_row < rows;
           ++b) {
        ExecuteOneVector(&run);
        if (!run.exec->error().ok()) break;  // latched; resolved below
      }
    }
    // Resolve the quantum's fate, in precedence order: a kill check
    // above, else a latched runtime error, else the injected faults
    // (poison over transient).
    if (out.fate == QuantumFate::kNormal) {
      if (!run.exec->error().ok()) {
        out.fate = QuantumFate::kHardFault;
        run.error = run.exec->error();
      } else if (draw.poison) {
        out.fate = QuantumFate::kHardFault;
        run.error = Status::Internal("fault injection: poison query");
      } else if (draw.transient) {
        out.fate = QuantumFate::kTransientFault;
        if (attempt_no[index] + 1 >= max_attempts) {
          run.error =
              Status::Internal("fault injection: retry budget exhausted");
        }
      }
    }
    // One side-effect-free window per quantum (CounterWindow reads, never
    // resets): the duration feeds the schedule, the evictions feed the
    // adaptive controller, and both are recorded as the quantum's replay
    // trace. The full-run window (run_begin -> done) spans exactly the
    // union of the quantum windows — nothing executes between quanta —
    // so per-query counters cannot double-count across admission or
    // quantum boundaries (asserted in tests/service_mode_test.cc).
    const PmuCounters delta = quantum.Delta();
    out.duration_msec = run.pmu->ToMilliseconds(delta);
    // A stalled quantum occupies its worker stall_factor times longer in
    // the schedule; the machine counters are untouched (the work did not
    // change — the worker was slow), so the inflation lives purely in
    // the recorded duration, which is also what the replay consumes.
    if (draw.stall) out.duration_msec *= options_.faults.stall_factor;
    out.evictions_suffered = delta.l3_evictions_suffered;
    run.quantum_msec.push_back(out.duration_msec);
    run.quantum_evictions.push_back(out.evictions_suffered);
    run.quantum_fate.push_back(out.fate);
    run.touched_workers[0] = 1;
    ++run.quanta;
    ++quantum_in_attempt[index];
    out.done = run.next_row >= rows;
    // The full-run counter window closes when the query leaves the
    // machine for good: normal completion, any kill or hard fault, or a
    // transient fault with no retry budget left. (A retried attempt
    // instead resets the whole execution state in hooks.on_retry.)
    const bool terminal =
        (out.fate == QuantumFate::kNormal && out.done) ||
        out.fate == QuantumFate::kHardFault ||
        out.fate == QuantumFate::kDeadline ||
        out.fate == QuantumFate::kCancel ||
        (out.fate == QuantumFate::kTransientFault &&
         attempt_no[index] + 1 >= max_attempts);
    if (terminal) {
      run.drive.num_vectors = run.vector_index;
      run.drive.total = run.pmu->Read() - run.run_begin;
      run.drive.simulated_msec = run.pmu->ToMilliseconds(run.drive.total);
      if (domain != nullptr) {
        run.peak_occupancy_lines = run.pmu->SharedL3PeakOccupancyLines();
        run.final_occupancy_lines = run.pmu->SharedL3OccupancyLines();
        // Detach so the machine outlives the (function-local) domain
        // safely; all shared-L3 reads happened above.
        run.pmu->AttachSharedL3(nullptr, 0);
        finished_owners.push_back(static_cast<uint32_t>(index));
      }
    }
    if (domain != nullptr) {
      // Live occupancy: resident lines minus finished owners' residue
      // (summed at current value — live queries may displace residue
      // later, so a snapshot at completion time would drift).
      uint64_t dead_lines = 0;
      for (const uint32_t o : finished_owners) {
        dead_lines += domain->stats(o).occupancy_lines;
      }
      out.occupancy_lines = domain->total_occupancy_lines() - dead_lines;
    }
    run.quantum_occupancy.push_back(out.occupancy_lines);
    if (domain != nullptr && options_.audit_contention) {
      // Accounting invariants: every resident line is owned by exactly
      // one query, and every displaced line was charged to exactly one.
      NIPO_CHECK(domain->total_occupancy_lines() ==
                 domain->level().occupied_lines());
      uint64_t charged = 0;
      for (uint32_t o = 0; o < domain->num_owners(); ++o) {
        charged += domain->stats(o).evictions_suffered +
                   domain->stats(o).self_evictions;
      }
      NIPO_CHECK(charged == domain->lines_displaced());
    }
    return out;
  };

  size_t peak_in_flight = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  const SimSchedule schedule = RunEventSchedule(
      n, options_.num_threads, options_.max_concurrent, policy_cfg, arrivals,
      controller.get(), fault_mode ? &fault_spec : nullptr, run_quantum, hooks,
      &peak_in_flight);
  const double wall_msec = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();

  // The loop owns the terminal outcomes (it decides retries, kills and
  // shedding); fold them into the runs before report assembly.
  for (size_t i = 0; i < n; ++i) {
    runs[i].outcome = schedule.outcome[i];
    runs[i].attempts = schedule.attempts[i];
    runs[i].backoff_msec = schedule.backoff_msec[i];
  }
  WorkloadReport report =
      AssembleReport(tasks, &runs, options_, wall_msec, peak_in_flight);
  ApplySchedule(schedule, &report);
  if (domain != nullptr) {
    report.shared_l3_capacity_lines = domain->capacity_lines();
    report.shared_l3_lines_displaced = domain->lines_displaced();
  }
  if (controller != nullptr) {
    report.admission_final_limit = controller->limit();
    report.admission_min_limit = controller->min_limit_seen();
    report.admission_increases = controller->increases();
    report.admission_decreases = controller->decreases();
  }
  return report;
}

}  // namespace nipo
