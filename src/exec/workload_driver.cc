#include "exec/workload_driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>

#include "common/logging.h"

/// \file workload_driver.cc
/// Multi-query workload scheduling (DESIGN.md "Workload execution"):
/// FIFO admission control over a slot table, a vector-granular
/// round-robin ready queue served by a shared worker pool, per-query
/// private machines and optimizers stepping the exact single-query
/// driver sequence, and the deterministic simulated-schedule replay that
/// turns per-quantum machine times into a bit-stable makespan.

namespace nipo {

namespace {

/// Mutable execution state of one admitted query. A QueryRun is touched
/// by exactly one worker at a time: ownership passes through the
/// scheduler's ready queue (mutex-protected), which is also what makes
/// the hand-off race-free.
struct QueryRun {
  const WorkloadTask* task = nullptr;
  size_t slot = 0;  ///< admission slot (machine owner in warm mode)

  /// The query's machine: privately owned in deterministic mode, the
  /// admission slot's long-lived machine in warm mode.
  std::unique_ptr<Pmu> owned_pmu;
  Pmu* pmu = nullptr;
  std::unique_ptr<PipelineExecutor> exec;
  std::unique_ptr<ProgressiveOptimizer> optimizer;

  /// Full-run counter window, opened at admission (the solo drivers read
  /// their machine once at Run() entry; admission is that point here).
  PmuCounters run_begin;
  size_t next_row = 0;
  size_t vector_index = 0;
  DriveResult drive;

  /// Per-quantum simulated durations, input of the schedule replay.
  std::vector<double> quantum_msec;
  /// touched_workers[w] != 0 iff host worker w ran a quantum of this
  /// query (sized num_threads at admission).
  std::vector<uint8_t> touched_workers;
  size_t quanta = 0;
};

/// Executes one vector of `run`, replaying VectorDriver::Run exactly:
/// baseline tasks execute the range bare; progressive tasks take the
/// charged counter-read pair around it and feed the sample to the query's
/// private optimizer, which may Reorder() for subsequent vectors.
void ExecuteOneVector(QueryRun* run) {
  const size_t rows = run->exec->num_rows();
  const size_t begin = run->next_row;
  const size_t end = std::min(begin + run->task->config.vector_size, rows);
  if (run->optimizer != nullptr) {
    run->pmu->ChargeCycles(kCounterReadCycles);
    CounterWindow window(run->pmu);
    const VectorResult r = run->exec->ExecuteRange(begin, end);
    run->drive.input_tuples += r.input_tuples;
    run->drive.qualifying_tuples += r.qualifying_tuples;
    run->drive.aggregate += r.aggregate;
    run->pmu->ChargeCycles(kCounterReadCycles);
    VectorSample sample;
    sample.vector_index = run->vector_index;
    sample.result = r;
    sample.counters = window.Delta();
    run->optimizer->OnVector(sample);
  } else {
    const VectorResult r = run->exec->ExecuteRange(begin, end);
    run->drive.input_tuples += r.input_tuples;
    run->drive.qualifying_tuples += r.qualifying_tuples;
    run->drive.aggregate += r.aggregate;
  }
  ++run->vector_index;
  run->next_row = end;
}

}  // namespace

SimSchedule SimulateWorkloadSchedule(
    const std::vector<std::vector<double>>& quantum_msec, size_t num_threads,
    size_t max_concurrent) {
  const size_t n = quantum_msec.size();
  SimSchedule schedule;
  schedule.start_msec.assign(n, 0.0);
  schedule.finish_msec.assign(n, 0.0);
  if (n == 0) return schedule;
  NIPO_CHECK(num_threads > 0);
  NIPO_CHECK(max_concurrent > 0);

  // Event-driven replay of the host policy: FIFO admission into at most
  // `max_concurrent` slots, a round-robin ready queue, and dispatch of
  // the front query to the earliest-free worker. Ties in completion time
  // break by dispatch sequence, making the replay fully deterministic.
  struct Event {
    double time = 0;
    uint64_t seq = 0;
    size_t query = 0;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> running;
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      free_workers;
  for (size_t w = 0; w < num_threads; ++w) free_workers.push(0.0);

  struct ReadyEntry {
    size_t query = 0;
    double since = 0;  ///< when the query (re-)entered the ready queue
  };
  std::deque<ReadyEntry> ready;
  std::vector<size_t> next_quantum(n, 0);
  std::vector<bool> started(n, false);
  size_t next_admission = 0;
  size_t in_flight = 0;
  uint64_t seq = 0;

  auto admit = [&](double now) {
    while (next_admission < n && in_flight < max_concurrent) {
      ready.push_back({next_admission++, now});
      ++in_flight;
    }
  };
  auto dispatch = [&] {
    while (!ready.empty() && !free_workers.empty()) {
      const ReadyEntry entry = ready.front();
      ready.pop_front();
      const double worker_free = free_workers.top();
      free_workers.pop();
      const double start = std::max(entry.since, worker_free);
      if (!started[entry.query]) {
        started[entry.query] = true;
        schedule.start_msec[entry.query] = start;
      }
      const double duration =
          next_quantum[entry.query] < quantum_msec[entry.query].size()
              ? quantum_msec[entry.query][next_quantum[entry.query]]
              : 0.0;
      ++next_quantum[entry.query];
      running.push({start + duration, seq++, entry.query});
    }
  };

  admit(0.0);
  dispatch();
  while (!running.empty()) {
    const Event event = running.top();
    running.pop();
    free_workers.push(event.time);
    if (next_quantum[event.query] >= quantum_msec[event.query].size()) {
      schedule.finish_msec[event.query] = event.time;
      schedule.makespan_msec = std::max(schedule.makespan_msec, event.time);
      --in_flight;
      admit(event.time);
    } else {
      ready.push_back({event.query, event.time});
    }
    dispatch();
  }
  return schedule;
}

WorkloadDriver::WorkloadDriver(const Pmu& prototype, ExecutorFactory factory,
                               WorkloadOptions options)
    : prototype_(prototype.CloneFresh()),
      factory_(std::move(factory)),
      options_(options) {
  NIPO_CHECK(factory_ != nullptr);
}

Result<WorkloadReport> WorkloadDriver::Run(
    const std::vector<WorkloadTask>& tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (options_.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options_.max_concurrent == 0) {
    return Status::InvalidArgument("max_concurrent must be positive");
  }
  if (options_.burst_vectors == 0) {
    return Status::InvalidArgument("burst_vectors must be positive");
  }
  for (const WorkloadTask& task : tasks) {
    if (task.config.vector_size == 0) {
      return Status::InvalidArgument("vector_size must be positive");
    }
    if (task.config.reopt_interval == 0) {
      return Status::InvalidArgument("reopt_interval must be positive");
    }
  }

  const size_t n = tasks.size();
  // Validation pass: compile every task against a scratch machine and
  // apply its initial order, so unknown tables / bad orders surface
  // before any thread starts. Admission-time compiles repeat the same
  // inputs and therefore cannot fail.
  {
    Pmu scratch = prototype_.CloneFresh();
    for (size_t i = 0; i < n; ++i) {
      NIPO_ASSIGN_OR_RETURN(std::unique_ptr<PipelineExecutor> exec,
                            factory_(i, &scratch));
      if (tasks[i].initial_order.has_value()) {
        NIPO_RETURN_NOT_OK(exec->Reorder(*tasks[i].initial_order));
      }
    }
  }

  const size_t num_slots = options_.max_concurrent;
  std::vector<QueryRun> runs(n);
  // Warm mode: one long-lived machine per admission slot, created fresh
  // on first use and carrying cache/predictor state to later queries.
  std::vector<std::unique_ptr<Pmu>> slot_machines(num_slots);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<QueryRun*> ready;
  std::vector<size_t> free_slots;
  for (size_t s = 0; s < num_slots; ++s) free_slots.push_back(s);
  size_t next_admission = 0;
  size_t finished = 0;
  size_t in_flight = 0;
  size_t peak_in_flight = 0;

  // Admission (lock held): bind the query to a machine, compile its
  // executor, open its full-run counter window, and enqueue it.
  auto admit_locked = [&] {
    while (next_admission < n && !free_slots.empty()) {
      const size_t index = next_admission++;
      QueryRun& run = runs[index];
      run.task = &tasks[index];
      run.slot = free_slots.back();
      free_slots.pop_back();
      if (options_.deterministic) {
        run.owned_pmu = std::make_unique<Pmu>(prototype_.CloneFresh());
        run.pmu = run.owned_pmu.get();
      } else {
        std::unique_ptr<Pmu>& slot = slot_machines[run.slot];
        if (slot == nullptr) {
          slot = std::make_unique<Pmu>(prototype_.CloneFresh());
        } else {
          slot->ResetCounters();  // keep warm caches and predictor state
        }
        run.pmu = slot.get();
      }
      auto exec = factory_(index, run.pmu);
      NIPO_CHECK(exec.ok());  // the validation pass proved this compiles
      run.exec = std::move(exec.ValueOrDie());
      if (run.task->initial_order.has_value()) {
        NIPO_CHECK(run.exec->Reorder(*run.task->initial_order).ok());
      }
      if (run.task->progressive) {
        run.optimizer = std::make_unique<ProgressiveOptimizer>(
            run.exec.get(), run.task->config);
        run.optimizer->Begin();
      }
      run.run_begin = run.pmu->Read();
      run.touched_workers.assign(options_.num_threads, 0);
      ready.push_back(&run);
      ++in_flight;
      peak_in_flight = std::max(peak_in_flight, in_flight);
    }
  };

  auto worker_main = [&](size_t worker_id) {
    for (;;) {
      QueryRun* run = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !ready.empty() || finished == n; });
        if (ready.empty()) return;  // all queries finished
        run = ready.front();
        ready.pop_front();
      }
      // One scheduling quantum, outside the lock: this worker is the
      // sole owner of `run` (and its machine) until the yield below.
      const CounterWindow quantum(run->pmu);
      const size_t rows = run->exec->num_rows();
      for (size_t b = 0; b < options_.burst_vectors && run->next_row < rows;
           ++b) {
        ExecuteOneVector(run);
      }
      run->quantum_msec.push_back(
          run->pmu->ToMilliseconds(quantum.Delta()));
      run->touched_workers[worker_id] = 1;
      ++run->quanta;
      const bool done = run->next_row >= rows;
      if (done) {
        // Close the full-run window, exactly like the solo drivers.
        run->drive.num_vectors = run->vector_index;
        run->drive.total = run->pmu->Read() - run->run_begin;
        run->drive.simulated_msec = run->pmu->ToMilliseconds(run->drive.total);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (done) {
          ++finished;
          --in_flight;
          free_slots.push_back(run->slot);
          admit_locked();
          cv.notify_all();
        } else {
          ready.push_back(run);
          cv.notify_one();
        }
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu);
    admit_locked();
  }
  const auto wall_start = std::chrono::steady_clock::now();
  if (options_.num_threads == 1) {
    // Run inline, like ParallelDriver: no thread-spawn noise in the wall
    // clock, and the single-worker path stays trivially serial.
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options_.num_threads);
    for (size_t w = 0; w < options_.num_threads; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_msec = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();

  WorkloadReport report;
  report.num_threads = options_.num_threads;
  report.max_concurrent = options_.max_concurrent;
  report.peak_in_flight = peak_in_flight;
  report.wall_msec = wall_msec;
  report.wall_queries_per_sec =
      wall_msec > 0 ? static_cast<double>(n) / (wall_msec / 1e3) : 0.0;

  std::vector<std::vector<double>> quanta(n);
  report.queries.resize(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRun& run = runs[i];
    WorkloadQueryReport& q = report.queries[i];
    q.name = tasks[i].name.empty() ? "q" + std::to_string(i) : tasks[i].name;
    q.progressive = tasks[i].progressive;
    q.quanta = run.quanta;
    for (const uint8_t touched : run.touched_workers) {
      q.workers_touched += touched;
    }
    if (run.optimizer != nullptr) {
      ProgressiveReport prog = run.optimizer->Finish(std::move(run.drive));
      q.drive = std::move(prog.drive);
      q.changes = std::move(prog.changes);
      q.num_optimizations = prog.num_optimizations;
      q.last_estimate = std::move(prog.last_estimate);
      q.final_order = std::move(prog.final_order);
    } else {
      q.drive = std::move(run.drive);
      q.final_order = run.exec->current_order();
    }
    report.sim_serial_msec += q.drive.simulated_msec;
    quanta[i] = std::move(run.quantum_msec);
  }

  const SimSchedule schedule = SimulateWorkloadSchedule(
      quanta, options_.num_threads, options_.max_concurrent);
  for (size_t i = 0; i < n; ++i) {
    report.queries[i].sim_start_msec = schedule.start_msec[i];
    report.queries[i].sim_finish_msec = schedule.finish_msec[i];
  }
  report.sim_makespan_msec = schedule.makespan_msec;
  report.sim_queries_per_sec =
      schedule.makespan_msec > 0
          ? static_cast<double>(n) / (schedule.makespan_msec / 1e3)
          : 0.0;
  return report;
}

}  // namespace nipo
