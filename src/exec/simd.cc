#include "exec/simd.h"

#include <atomic>
#include <cstring>
#include <type_traits>

#if defined(NIPO_SIMD_AVX2)
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC's unmasked gather intrinsics expand through a masked form whose
// pass-through operand is intentionally undefined; -Wmaybe-uninitialized
// flags it from the intrinsic header (GCC bug 105593).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

/// \file simd.cc
/// AVX2 kernels and their bit-identical branch-free scalar fallbacks.
///
/// Every AVX2 function is compiled with a per-function `target("avx2")`
/// attribute, so the translation unit itself builds for the baseline ISA
/// and the vector paths are only ever entered after a runtime
/// __builtin_cpu_supports check. Comparisons run in the double domain on
/// all paths (integer lanes are converted with correctly rounded casts --
/// the AVX2 int64 path uses the exact full-range bit-twiddling sequence),
/// which is what makes the two implementations bit-identical rather than
/// merely close.

namespace nipo::simd {

namespace {

std::atomic<int> g_forced_level{-1};

// ---------------------------------------------------------------------------
// Scalar fallback: the executor's historical branch-free loop.
// ---------------------------------------------------------------------------

template <int kImm>
bool CompareImm(double a, double b);

// The imm8 values mirror AVX2 _CMP_* predicates so the scalar tail of the
// vector path and the full scalar fallback share one comparator set. The
// chosen predicates (ordered-quiet, and unordered-quiet for !=) have
// exactly the semantics of the C++ operators, including NaN behaviour.
enum : int {
  kCmpLt = 0x11,  // _CMP_LT_OQ
  kCmpLe = 0x12,  // _CMP_LE_OQ
  kCmpGt = 0x1E,  // _CMP_GT_OQ
  kCmpGe = 0x1D,  // _CMP_GE_OQ
  kCmpEq = 0x10,  // _CMP_EQ_OQ
  kCmpNe = 0x04,  // _CMP_NEQ_UQ
};

template <>
bool CompareImm<kCmpLt>(double a, double b) {
  return a < b;
}
template <>
bool CompareImm<kCmpLe>(double a, double b) {
  return a <= b;
}
template <>
bool CompareImm<kCmpGt>(double a, double b) {
  return a > b;
}
template <>
bool CompareImm<kCmpGe>(double a, double b) {
  return a >= b;
}
template <>
bool CompareImm<kCmpEq>(double a, double b) {
  return a == b;
}
template <>
bool CompareImm<kCmpNe>(double a, double b) {
  return a != b;
}

template <typename T, int kImm>
size_t ScalarCompareSelect(const T* base, const uint32_t* gather,
                           const uint32_t* ids, size_t n, double value,
                           uint8_t* pass, uint32_t* out_sel) {
  size_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t index = gather ? gather[j] : static_cast<uint32_t>(j);
    const bool p = CompareImm<kImm>(static_cast<double>(base[index]), value);
    pass[j] = static_cast<uint8_t>(p);
    out_sel[count] = ids ? ids[j] : static_cast<uint32_t>(j);
    count += p;
  }
  return count;
}

#if defined(NIPO_SIMD_AVX2)

// ---------------------------------------------------------------------------
// AVX2 kernels (4 x 64-bit lanes).
// ---------------------------------------------------------------------------

/// Exact full-range signed int64 -> double conversion (correctly rounded,
/// bit-identical to a scalar static_cast): the low 32 bits are composed
/// into a 2^52-biased double, the (sign-flipped) high 32 bits into a
/// 2^84-biased one, and the bias is removed with one subtraction whose
/// rounding is the conversion's only rounding step.
__attribute__((target("avx2"))) inline __m256d Int64ToDouble(__m256i v) {
  const __m256i magic_lo =
      _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256i magic_hi =
      _mm256_set1_epi64x(0x4530000080000000LL);  // 2^84 + 2^63
  const __m256i magic_all =
      _mm256_set1_epi64x(0x4530000080100000LL);  // 2^84 + 2^63 + 2^52
  const __m256i v_lo = _mm256_blend_epi32(magic_lo, v, 0x55);
  __m256i v_hi = _mm256_srli_epi64(v, 32);
  v_hi = _mm256_xor_si256(v_hi, magic_hi);
  const __m256d hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi),
                                       _mm256_castsi256_pd(magic_all));
  return _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo));
}

template <typename T>
__attribute__((target("avx2"))) inline __m256d LoadLanes(
    const T* base, const uint32_t* gather, size_t j) {
  if constexpr (std::is_same_v<T, double>) {
    if (gather != nullptr) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(gather + j));
      return _mm256_i32gather_pd(base, idx, 8);
    }
    return _mm256_loadu_pd(base + j);
  } else if constexpr (std::is_same_v<T, int32_t>) {
    __m128i lanes;
    if (gather != nullptr) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(gather + j));
      lanes = _mm_i32gather_epi32(reinterpret_cast<const int*>(base), idx, 4);
    } else {
      lanes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + j));
    }
    return _mm256_cvtepi32_pd(lanes);
  } else {
    static_assert(std::is_same_v<T, int64_t>);
    __m256i lanes;
    if (gather != nullptr) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(gather + j));
      lanes = _mm256_i32gather_epi64(reinterpret_cast<const long long*>(base),
                                     idx, 8);
    } else {
      lanes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + j));
    }
    return Int64ToDouble(lanes);
  }
}

/// 16-byte pshufb patterns that compact the set lanes of a 4-bit
/// compare mask (as four 32-bit ids) to the front of the register;
/// unused output dwords are zeroed (0x80 bytes) and never consumed --
/// the append count advances by popcount(mask) only.
alignas(16) constexpr uint8_t kCompactShuffle[16][16] = {
    {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80, 0x80, 0x80},  // 0000
    {0, 1, 2, 3, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80},  // 0001
    {4, 5, 6, 7, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80},  // 0010
    {0, 1, 2, 3, 4, 5, 6, 7, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 0011
    {8, 9, 10, 11, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80},  // 0100
    {0, 1, 2, 3, 8, 9, 10, 11, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 0101
    {4, 5, 6, 7, 8, 9, 10, 11, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 0110
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x80, 0x80, 0x80, 0x80},  // 0111
    {12, 13, 14, 15, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80, 0x80, 0x80},  // 1000
    {0, 1, 2, 3, 12, 13, 14, 15, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 1001
    {4, 5, 6, 7, 12, 13, 14, 15, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 1010
    {0, 1, 2, 3, 4, 5, 6, 7, 12, 13, 14, 15, 0x80, 0x80, 0x80, 0x80},  // 1011
    {8, 9, 10, 11, 12, 13, 14, 15, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
     0x80},  // 1100
    {0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15, 0x80, 0x80, 0x80,
     0x80},  // 1101
    {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0x80, 0x80, 0x80,
     0x80},  // 1110
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},  // 1111
};

/// pass-flag bytes of a 4-bit mask, as one little-endian 32-bit store.
constexpr uint32_t kPassWords[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

template <typename T, int kImm>
__attribute__((target("avx2"))) size_t Avx2CompareSelect(
    const T* base, const uint32_t* gather, const uint32_t* ids, size_t n,
    double value, uint8_t* pass, uint32_t* out_sel) {
  const __m256d vval = _mm256_set1_pd(value);
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  size_t count = 0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d lanes = LoadLanes<T>(base, gather, j);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(lanes, vval, kImm));
    // Table-driven compaction, identical append semantics to the scalar
    // loop: pass flags stored for every lane, the set lanes' ids packed
    // to the append cursor in lane order. The 16-byte store reaches at
    // most out_sel[count + 3] <= out_sel[j + 3] < out_sel[n], inside the
    // caller's n-entry buffer; bytes past popcount(mask) are overwritten
    // by later appends or lie beyond the returned count.
    std::memcpy(pass + j, &kPassWords[mask], sizeof(uint32_t));
    const __m128i lane_ids =
        ids ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + j))
            : _mm_add_epi32(iota, _mm_set1_epi32(static_cast<int>(j)));
    const __m128i packed = _mm_shuffle_epi8(
        lane_ids,
        _mm_load_si128(reinterpret_cast<const __m128i*>(kCompactShuffle[mask])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_sel + count), packed);
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; j < n; ++j) {
    const uint32_t index = gather ? gather[j] : static_cast<uint32_t>(j);
    const bool p = CompareImm<kImm>(static_cast<double>(base[index]), value);
    pass[j] = static_cast<uint8_t>(p);
    out_sel[count] = ids ? ids[j] : static_cast<uint32_t>(j);
    count += p;
  }
  return count;
}

/// Low 64 bits of a 64x64 multiply from 32-bit pieces
/// (a*b = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)).
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);
  const __m256i prodlh = _mm256_mullo_epi32(a, bswap);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i prodlh2 = _mm256_hadd_epi32(prodlh, zero);
  const __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);
  const __m256i prodll = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(prodll, prodlh3);
}

__attribute__((target("avx2"))) void HashKeysAvx2(const int64_t* keys,
                                                  size_t n,
                                                  uint64_t* hashes) {
  const __m256i c0 =
      _mm256_set1_epi64x(static_cast<long long>(0x9E3779B97F4A7C15ull));
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0xBF58476D1CE4E5B9ull));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0x94D049BB133111EBull));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i z =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    z = _mm256_add_epi64(z, c0);
    z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), m1);
    z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), m2);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + j), z);
  }
  for (; j < n; ++j) {
    hashes[j] = SplitMix64(static_cast<uint64_t>(keys[j]));
  }
}

#endif  // NIPO_SIMD_AVX2

template <typename T>
size_t CompareSelectTyped(SimdLevel level, const T* base,
                          const uint32_t* gather, const uint32_t* ids,
                          size_t n, CompareOp op, double value, uint8_t* pass,
                          uint32_t* out_sel) {
#if defined(NIPO_SIMD_AVX2)
  if (level == SimdLevel::kAvx2) {
    switch (op) {
      case CompareOp::kLt:
        return Avx2CompareSelect<T, kCmpLt>(base, gather, ids, n, value, pass,
                                            out_sel);
      case CompareOp::kLe:
        return Avx2CompareSelect<T, kCmpLe>(base, gather, ids, n, value, pass,
                                            out_sel);
      case CompareOp::kGt:
        return Avx2CompareSelect<T, kCmpGt>(base, gather, ids, n, value, pass,
                                            out_sel);
      case CompareOp::kGe:
        return Avx2CompareSelect<T, kCmpGe>(base, gather, ids, n, value, pass,
                                            out_sel);
      case CompareOp::kEq:
        return Avx2CompareSelect<T, kCmpEq>(base, gather, ids, n, value, pass,
                                            out_sel);
      case CompareOp::kNe:
        return Avx2CompareSelect<T, kCmpNe>(base, gather, ids, n, value, pass,
                                            out_sel);
    }
    return 0;
  }
#else
  (void)level;
#endif
  switch (op) {
    case CompareOp::kLt:
      return ScalarCompareSelect<T, kCmpLt>(base, gather, ids, n, value, pass,
                                            out_sel);
    case CompareOp::kLe:
      return ScalarCompareSelect<T, kCmpLe>(base, gather, ids, n, value, pass,
                                            out_sel);
    case CompareOp::kGt:
      return ScalarCompareSelect<T, kCmpGt>(base, gather, ids, n, value, pass,
                                            out_sel);
    case CompareOp::kGe:
      return ScalarCompareSelect<T, kCmpGe>(base, gather, ids, n, value, pass,
                                            out_sel);
    case CompareOp::kEq:
      return ScalarCompareSelect<T, kCmpEq>(base, gather, ids, n, value, pass,
                                            out_sel);
    case CompareOp::kNe:
      return ScalarCompareSelect<T, kCmpNe>(base, gather, ids, n, value, pass,
                                            out_sel);
  }
  return 0;
}

}  // namespace

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool Avx2Available() {
#if defined(NIPO_SIMD_AVX2)
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

SimdLevel ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const SimdLevel level = static_cast<SimdLevel>(forced);
    if (level == SimdLevel::kAvx2 && !Avx2Available()) {
      return SimdLevel::kScalar;
    }
    return level;
  }
  return Avx2Available() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

void ForceLevel(SimdLevel level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetForcedLevel() {
  g_forced_level.store(-1, std::memory_order_relaxed);
}

size_t CompareSelect(SimdLevel level, DataType type, const uint8_t* data,
                     size_t base_row, CompareOp op, double value,
                     const uint32_t* gather, const uint32_t* ids, size_t n,
                     uint8_t* pass, uint32_t* out_sel) {
  if (level == SimdLevel::kAvx2 && !Avx2Available()) {
    level = SimdLevel::kScalar;
  }
  switch (type) {
    case DataType::kInt32:
      return CompareSelectTyped<int32_t>(
          level, reinterpret_cast<const int32_t*>(data) + base_row, gather,
          ids, n, op, value, pass, out_sel);
    case DataType::kInt64:
      return CompareSelectTyped<int64_t>(
          level, reinterpret_cast<const int64_t*>(data) + base_row, gather,
          ids, n, op, value, pass, out_sel);
    case DataType::kDouble:
      return CompareSelectTyped<double>(
          level, reinterpret_cast<const double*>(data) + base_row, gather,
          ids, n, op, value, pass, out_sel);
  }
  return 0;
}

void HashKeys(SimdLevel level, const int64_t* keys, size_t n,
              uint64_t* hashes) {
#if defined(NIPO_SIMD_AVX2)
  if (level == SimdLevel::kAvx2 && Avx2Available()) {
    HashKeysAvx2(keys, n, hashes);
    return;
  }
#else
  (void)level;
#endif
  for (size_t j = 0; j < n; ++j) {
    hashes[j] = SplitMix64(static_cast<uint64_t>(keys[j]));
  }
}

}  // namespace nipo::simd
