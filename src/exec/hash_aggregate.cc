#include "exec/hash_aggregate.h"

#include <algorithm>

/// \file hash_aggregate.cc
/// Instrumented hash GROUP BY: binds group/payload columns, runs the
/// optional predicate chain in its configured order, and accumulates
/// SUM/COUNT per group through the PMU-visible hash table.

namespace nipo {

namespace {

struct BoundColumn {
  const uint8_t* data = nullptr;
  uint32_t width = 0;
  DataType type = DataType::kInt32;
};

Result<BoundColumn> Bind(const Table& table, const std::string& name) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* column, table.GetColumn(name));
  BoundColumn bound;
  bound.data = static_cast<const uint8_t*>(column->data());
  bound.width = static_cast<uint32_t>(column->value_width());
  bound.type = column->type();
  return bound;
}

double LoadAsDouble(const BoundColumn& column, size_t row) {
  const uint8_t* addr = column.data + static_cast<uint64_t>(row) * column.width;
  switch (column.type) {
    case DataType::kInt32:
      return static_cast<double>(*reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

int64_t LoadAsInt64(const BoundColumn& column, size_t row) {
  const uint8_t* addr = column.data + static_cast<uint64_t>(row) * column.width;
  switch (column.type) {
    case DataType::kInt32:
      return *reinterpret_cast<const int32_t*>(addr);
    case DataType::kInt64:
      return *reinterpret_cast<const int64_t*>(addr);
    case DataType::kDouble:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(addr));
  }
  return 0;
}

}  // namespace

Result<HashAggregateResult> ExecuteHashAggregate(
    const HashAggregateSpec& spec, Pmu* pmu) {
  if (pmu == nullptr) return Status::InvalidArgument("null pmu");
  if (spec.table == nullptr) return Status::InvalidArgument("null table");
  NIPO_ASSIGN_OR_RETURN(BoundColumn group_col,
                        Bind(*spec.table, spec.group_column));
  if (group_col.type == DataType::kDouble) {
    return Status::TypeMismatch("group column must be integer");
  }
  std::vector<BoundColumn> filter_cols;
  for (const PredicateSpec& filter : spec.filters) {
    NIPO_ASSIGN_OR_RETURN(BoundColumn c, Bind(*spec.table, filter.column));
    filter_cols.push_back(c);
  }
  std::vector<BoundColumn> agg_cols;
  for (const AggregateSpec& agg : spec.aggregates) {
    NIPO_ASSIGN_OR_RETURN(BoundColumn c, Bind(*spec.table, agg.column));
    agg_cols.push_back(c);
  }

  HashAggregateResult result;
  result.input_rows = spec.table->num_rows();

  // Aggregation state: group key -> dense state index; sums held in
  // per-aggregate arrays plus a count array. Sized generously; grows on
  // demand.
  InstrumentedHashTable groups(64, pmu);
  std::vector<int64_t> group_keys;  // state index -> group key
  std::vector<uint64_t> counts;
  std::vector<std::vector<int64_t>> sums(spec.aggregates.size());
  // Track branch sites: one per filter position + loop back-edge.
  const size_t loop_site = spec.filters.size();
  pmu->EnsureBranchSites(spec.filters.size() + 1);

  for (size_t row = 0; row < spec.table->num_rows(); ++row) {
    pmu->OnInstructions(1);
    bool pass = true;
    for (size_t f = 0; f < spec.filters.size(); ++f) {
      const BoundColumn& col = filter_cols[f];
      pmu->OnLoad(col.data + static_cast<uint64_t>(row) * col.width,
                  col.width);
      pmu->OnInstructions(1);
      const bool ok = EvaluateCompare(LoadAsDouble(col, row),
                                      spec.filters[f].op,
                                      spec.filters[f].value);
      pmu->OnBranch(f, !ok);
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) {
      ++result.passed_filter;
      pmu->OnLoad(group_col.data + static_cast<uint64_t>(row) *
                                       group_col.width,
                  group_col.width);
      const int64_t group = LoadAsInt64(group_col, row);
      int64_t state_index = 0;
      if (!groups.Lookup(group, &state_index)) {
        state_index = static_cast<int64_t>(counts.size());
        // A growing group table would rehash; with the small group
        // domains of the workloads here the initial size suffices.
        NIPO_RETURN_NOT_OK(groups.Insert(group, state_index));
        group_keys.push_back(group);
        counts.push_back(0);
        for (auto& s : sums) s.push_back(0);
      }
      ++counts[static_cast<size_t>(state_index)];
      for (size_t a = 0; a < agg_cols.size(); ++a) {
        const BoundColumn& col = agg_cols[a];
        pmu->OnLoad(col.data + static_cast<uint64_t>(row) * col.width,
                    col.width);
        pmu->OnInstructions(1);
        sums[a][static_cast<size_t>(state_index)] += LoadAsInt64(col, row);
      }
    }
    pmu->OnBranch(loop_site, true);
  }

  // Emit groups sorted by key (result formatting is not measured work).
  std::map<int64_t, size_t> key_to_state;
  for (size_t state = 0; state < group_keys.size(); ++state) {
    key_to_state.emplace(group_keys[state], state);
  }
  for (const auto& [group, state_index] : key_to_state) {
    GroupResult g;
    g.group = group;
    g.count = counts[state_index];
    for (const auto& s : sums) {
      g.sums.push_back(s[state_index]);
    }
    result.groups.push_back(std::move(g));
  }
  return result;
}

}  // namespace nipo
