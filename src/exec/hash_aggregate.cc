#include "exec/hash_aggregate.h"

#include <algorithm>
#include <limits>

#include "exec/simd.h"

/// \file hash_aggregate.cc
/// Instrumented hash GROUP BY: binds group/payload columns, runs the
/// optional predicate chain in its configured order through the shared
/// blocked-selection primitive (exec/operators.cc, SIMD-kernel-backed),
/// and accumulates SUM/COUNT per group through the PMU-visible hash
/// table, probing it with block-level SIMD hashing + home-slot prefetch.

namespace nipo {

namespace {

Result<ColumnView> Bind(const Table& table, const std::string& name) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* column, table.GetColumn(name));
  return ColumnView::Bind(column);
}

}  // namespace

Result<HashAggregateResult> ExecuteHashAggregate(
    const HashAggregateSpec& spec, Pmu* pmu) {
  if (pmu == nullptr) return Status::InvalidArgument("null pmu");
  if (spec.table == nullptr) return Status::InvalidArgument("null table");
  NIPO_ASSIGN_OR_RETURN(ColumnView group_col,
                        Bind(*spec.table, spec.group_column));
  if (group_col.type() == DataType::kDouble) {
    return Status::TypeMismatch("group column must be integer");
  }
  std::vector<ColumnView> filter_cols;
  for (const PredicateSpec& filter : spec.filters) {
    NIPO_ASSIGN_OR_RETURN(ColumnView c, Bind(*spec.table, filter.column));
    filter_cols.push_back(c);
  }
  std::vector<ColumnView> agg_cols;
  for (const AggregateSpec& agg : spec.aggregates) {
    NIPO_ASSIGN_OR_RETURN(ColumnView c, Bind(*spec.table, agg.column));
    agg_cols.push_back(c);
  }

  HashAggregateResult result;
  result.input_rows = spec.table->num_rows();
  if (result.input_rows > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "input exceeds the 2^32-row block-gather range");
  }

  // Aggregation state: group key -> dense state index; sums held in
  // per-aggregate arrays plus a count array. Sized generously; grows on
  // demand.
  InstrumentedHashTable groups(64, pmu);
  std::vector<int64_t> group_keys;  // state index -> group key
  std::vector<uint64_t> counts;
  std::vector<std::vector<int64_t>> sums(spec.aggregates.size());
  // Track branch sites: one per filter position + loop back-edge.
  const size_t loop_site = spec.filters.size();
  pmu->EnsureBranchSites(spec.filters.size() + 1);

  // Blocked operator-at-a-time loop, mirroring PipelineExecutor: per
  // block, the filter chain runs through the shared blocked-selection
  // primitive, survivors feed one group-key gather, a batched (SIMD
  // block hashing + prefetch, per-row booked) group-table probe, and one
  // gather per aggregate column.
  const size_t num_rows = spec.table->num_rows();
  SelectionScratch scratch;
  DecodeScratch decode;
  std::vector<uint32_t> state_idx;
  std::vector<int64_t> block_groups(kSimBlockRows);
  std::vector<uint64_t> block_hashes(kSimBlockRows);
  Status block_error = Status::OK();
  ForEachSimBlock(0, num_rows, [&](size_t block, size_t n) {
    if (!block_error.ok()) return;
    pmu->OnInstructions(n);  // loop bookkeeping
    scratch.BeginBlock(n);
    for (size_t f = 0; f < spec.filters.size() && scratch.active() > 0;
         ++f) {
      PredicateEvalArgs args;
      args.pmu = pmu;
      args.branch_site = f;
      args.column = &filter_cols[f];
      args.decode = &decode;
      args.block_begin = block;
      args.op = spec.filters[f].op;
      args.value = spec.filters[f].value;
      // The aggregate's filter chain has always booked plain compares
      // only (no extra_instructions), and its filters stay branching --
      // the progressive optimizer drives forms on the pipeline executor.
      args.extra_instructions = 0.0;
      args.form = PredicateForm::kBranching;
      EvalPredicateBlock(args, &scratch);
    }
    // No filters: every block row survives (identity selection).
    scratch.MaterializeDense();
    const size_t active = scratch.active();
    const uint32_t* sel = scratch.sel();
    result.passed_filter += active;

    if (active > 0) {
      const ScanRun group_run =
          group_col.ScanBlock(pmu, block, sel, active, &decode);
      state_idx.resize(active);
      for (size_t j = 0; j < active; ++j) {
        block_groups[j] = ScanRunValueAsInt64(group_run, j);
      }
      simd::HashKeys(block_groups.data(), active, block_hashes.data());
      for (size_t j = 0; j < active; ++j) {
        groups.PrefetchSlot(block_hashes[j]);
      }
      for (size_t j = 0; j < active; ++j) {
        const int64_t group = block_groups[j];
        int64_t state_index = 0;
        if (!groups.LookupPrehashed(group, block_hashes[j], &state_index)) {
          state_index = static_cast<int64_t>(counts.size());
          // A growing group table would rehash; with the small group
          // domains of the workloads here the initial size suffices.
          const Status st =
              groups.InsertPrehashed(group, block_hashes[j], state_index);
          if (!st.ok()) {
            block_error = st;
            return;
          }
          group_keys.push_back(group);
          counts.push_back(0);
          for (auto& s : sums) s.push_back(0);
        }
        ++counts[static_cast<size_t>(state_index)];
        state_idx[j] = static_cast<uint32_t>(state_index);
      }
      for (size_t a = 0; a < agg_cols.size(); ++a) {
        const ScanRun agg_run =
            agg_cols[a].ScanBlock(pmu, block, sel, active, &decode);
        pmu->OnInstructions(active);  // the adds
        for (size_t j = 0; j < active; ++j) {
          sums[a][state_idx[j]] += ScanRunValueAsInt64(agg_run, j);
        }
      }
    }
    pmu->OnBranchRun(loop_site, /*taken=*/true, n);
  });
  NIPO_RETURN_NOT_OK(block_error);

  // Emit groups sorted by key (result formatting is not measured work).
  std::map<int64_t, size_t> key_to_state;
  for (size_t state = 0; state < group_keys.size(); ++state) {
    key_to_state.emplace(group_keys[state], state);
  }
  for (const auto& [group, state_index] : key_to_state) {
    GroupResult g;
    g.group = group;
    g.count = counts[state_index];
    for (const auto& s : sums) {
      g.sums.push_back(s[state_index]);
    }
    result.groups.push_back(std::move(g));
  }
  result.table_base = groups.slots_base();
  return result;
}

}  // namespace nipo
