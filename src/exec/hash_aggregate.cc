#include "exec/hash_aggregate.h"

#include <algorithm>
#include <limits>

/// \file hash_aggregate.cc
/// Instrumented hash GROUP BY: binds group/payload columns, runs the
/// optional predicate chain in its configured order over kSimBlockRows
/// blocks (per-block load runs and branch runs for the PMU's batched
/// reporting layer), and accumulates SUM/COUNT per group through the
/// PMU-visible hash table.

namespace nipo {

namespace {

struct BoundColumn {
  const uint8_t* data = nullptr;
  uint32_t width = 0;
  DataType type = DataType::kInt32;
};

Result<BoundColumn> Bind(const Table& table, const std::string& name) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* column, table.GetColumn(name));
  BoundColumn bound;
  bound.data = static_cast<const uint8_t*>(column->data());
  bound.width = static_cast<uint32_t>(column->value_width());
  bound.type = column->type();
  return bound;
}

double LoadAsDouble(const BoundColumn& column, size_t row) {
  const uint8_t* addr = column.data + static_cast<uint64_t>(row) * column.width;
  switch (column.type) {
    case DataType::kInt32:
      return static_cast<double>(*reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

int64_t LoadAsInt64(const BoundColumn& column, size_t row) {
  const uint8_t* addr = column.data + static_cast<uint64_t>(row) * column.width;
  switch (column.type) {
    case DataType::kInt32:
      return *reinterpret_cast<const int32_t*>(addr);
    case DataType::kInt64:
      return *reinterpret_cast<const int64_t*>(addr);
    case DataType::kDouble:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(addr));
  }
  return 0;
}

}  // namespace

Result<HashAggregateResult> ExecuteHashAggregate(
    const HashAggregateSpec& spec, Pmu* pmu) {
  if (pmu == nullptr) return Status::InvalidArgument("null pmu");
  if (spec.table == nullptr) return Status::InvalidArgument("null table");
  NIPO_ASSIGN_OR_RETURN(BoundColumn group_col,
                        Bind(*spec.table, spec.group_column));
  if (group_col.type == DataType::kDouble) {
    return Status::TypeMismatch("group column must be integer");
  }
  std::vector<BoundColumn> filter_cols;
  for (const PredicateSpec& filter : spec.filters) {
    NIPO_ASSIGN_OR_RETURN(BoundColumn c, Bind(*spec.table, filter.column));
    filter_cols.push_back(c);
  }
  std::vector<BoundColumn> agg_cols;
  for (const AggregateSpec& agg : spec.aggregates) {
    NIPO_ASSIGN_OR_RETURN(BoundColumn c, Bind(*spec.table, agg.column));
    agg_cols.push_back(c);
  }

  HashAggregateResult result;
  result.input_rows = spec.table->num_rows();
  if (result.input_rows > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "input exceeds the 2^32-row block-gather range");
  }

  // Aggregation state: group key -> dense state index; sums held in
  // per-aggregate arrays plus a count array. Sized generously; grows on
  // demand.
  InstrumentedHashTable groups(64, pmu);
  std::vector<int64_t> group_keys;  // state index -> group key
  std::vector<uint64_t> counts;
  std::vector<std::vector<int64_t>> sums(spec.aggregates.size());
  // Track branch sites: one per filter position + loop back-edge.
  const size_t loop_site = spec.filters.size();
  pmu->EnsureBranchSites(spec.filters.size() + 1);

  // Blocked operator-at-a-time loop, mirroring PipelineExecutor: per
  // block, each filter runs over all its still-active rows (stride-1 run
  // or gather for the PMU), survivors feed one group-key gather, the
  // per-row hash-table upkeep, and one gather per aggregate column.
  const size_t num_rows = spec.table->num_rows();
  std::vector<uint32_t> sel, next_sel, state_idx;
  std::vector<uint8_t> pass;
  for (size_t block = 0; block < num_rows; block += kSimBlockRows) {
    const size_t n = std::min(kSimBlockRows, num_rows - block);
    pmu->OnInstructions(n);  // loop bookkeeping
    bool dense = true;
    size_t active = n;
    for (size_t f = 0; f < spec.filters.size() && active > 0; ++f) {
      const BoundColumn& col = filter_cols[f];
      const uint8_t* block_base =
          col.data + static_cast<uint64_t>(block) * col.width;
      if (dense) {
        pmu->OnSequentialLoads(block_base, col.width, active);
      } else {
        pmu->OnGatherLoads(block_base, col.width, sel.data(), active);
      }
      pmu->OnInstructions(active);  // the compares
      pass.resize(active);
      next_sel.clear();
      for (size_t j = 0; j < active; ++j) {
        const uint32_t offset = dense ? static_cast<uint32_t>(j) : sel[j];
        const bool ok =
            EvaluateCompare(LoadAsDouble(col, block + offset),
                            spec.filters[f].op, spec.filters[f].value);
        pass[j] = ok;
        if (ok) next_sel.push_back(offset);
      }
      pmu->OnPredicateBranches(f, pass.data(), active);
      sel.swap(next_sel);
      active = sel.size();
      dense = false;
    }
    if (dense) {
      // No filters: every block row survives.
      sel.resize(n);
      for (size_t j = 0; j < n; ++j) sel[j] = static_cast<uint32_t>(j);
      active = n;
    }
    result.passed_filter += active;

    if (active > 0) {
      pmu->OnGatherLoads(
          group_col.data + static_cast<uint64_t>(block) * group_col.width,
          group_col.width, sel.data(), active);
      state_idx.resize(active);
      for (size_t j = 0; j < active; ++j) {
        const int64_t group = LoadAsInt64(group_col, block + sel[j]);
        int64_t state_index = 0;
        if (!groups.Lookup(group, &state_index)) {
          state_index = static_cast<int64_t>(counts.size());
          // A growing group table would rehash; with the small group
          // domains of the workloads here the initial size suffices.
          NIPO_RETURN_NOT_OK(groups.Insert(group, state_index));
          group_keys.push_back(group);
          counts.push_back(0);
          for (auto& s : sums) s.push_back(0);
        }
        ++counts[static_cast<size_t>(state_index)];
        state_idx[j] = static_cast<uint32_t>(state_index);
      }
      for (size_t a = 0; a < agg_cols.size(); ++a) {
        const BoundColumn& col = agg_cols[a];
        pmu->OnGatherLoads(
            col.data + static_cast<uint64_t>(block) * col.width, col.width,
            sel.data(), active);
        pmu->OnInstructions(active);  // the adds
        for (size_t j = 0; j < active; ++j) {
          sums[a][state_idx[j]] += LoadAsInt64(col, block + sel[j]);
        }
      }
    }
    pmu->OnBranchRun(loop_site, /*taken=*/true, n);
  }

  // Emit groups sorted by key (result formatting is not measured work).
  std::map<int64_t, size_t> key_to_state;
  for (size_t state = 0; state < group_keys.size(); ++state) {
    key_to_state.emplace(group_keys[state], state);
  }
  for (const auto& [group, state_index] : key_to_state) {
    GroupResult g;
    g.group = group;
    g.count = counts[state_index];
    for (const auto& s : sums) {
      g.sums.push_back(s[state_index]);
    }
    result.groups.push_back(std::move(g));
  }
  result.table_base = groups.slots_base();
  return result;
}

}  // namespace nipo
