#include "exec/faults.h"

#include <algorithm>

/// \file faults.cc
/// Stateless fault drawing. Each event hashes (seed, query, attempt,
/// quantum, stream) through splitmix64 finalization rounds and converts
/// the top 53 bits to a uniform double in [0, 1) — the same conversion
/// Prng::NextDouble uses — so transient and stall draws are independent
/// streams of schedule-invariant coin flips.

namespace nipo {

namespace {

constexpr uint64_t kTransientStream = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kStallStream = 0xbf58476d1ce4e5b9ull;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t seed, uint64_t stream, size_t query,
                  size_t attempt, size_t quantum) {
  uint64_t h = Mix64(seed ^ stream);
  h = Mix64(h ^ static_cast<uint64_t>(query));
  h = Mix64(h ^ static_cast<uint64_t>(attempt));
  h = Mix64(h ^ static_cast<uint64_t>(quantum));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view QueryOutcomeToString(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kDeadlineExceeded:
      return "deadline";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
    case QueryOutcome::kShed:
      return "shed";
  }
  return "unknown";
}

bool FaultPlan::IsPoisoned(size_t query) const {
  return std::find(poison_queries.begin(), poison_queries.end(), query) !=
         poison_queries.end();
}

FaultDraw DrawFault(const FaultPlan& plan, size_t query, size_t attempt,
                    size_t quantum) {
  FaultDraw draw;
  if (plan.IsPoisoned(query) && quantum >= plan.poison_quantum) {
    draw.poison = true;
  }
  if (plan.transient_fault_rate > 0 &&
      HashToUnit(plan.seed, kTransientStream, query, attempt, quantum) <
          plan.transient_fault_rate) {
    draw.transient = true;
  }
  if (plan.stall_rate > 0 &&
      HashToUnit(plan.seed, kStallStream, query, attempt, quantum) <
          plan.stall_rate) {
    draw.stall = true;
  }
  return draw;
}

double RetryBackoffMsec(const RetryPolicy& policy, size_t retry_index) {
  if (retry_index == 0 || !(policy.backoff_base_msec > 0)) return 0.0;
  double backoff = policy.backoff_base_msec;
  for (size_t i = 1; i < retry_index; ++i) {
    backoff *= 2.0;
    if (backoff >= policy.backoff_cap_msec) break;
  }
  return std::min(backoff, policy.backoff_cap_msec);
}

}  // namespace nipo
