#include "exec/arrival.h"

#include <cmath>

#include "common/logging.h"
#include "common/prng.h"

/// \file arrival.cc
/// Arrival-schedule generation (DESIGN.md "Open-loop service mode"):
/// deterministic-interval, Poisson, and bursty on/off processes, all
/// expanded from a seeded Prng so reruns are bit-identical.

namespace nipo {

std::string_view ArrivalKindToString(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kClosed:
      return "closed";
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "unknown";
}

namespace {

/// Exponential inter-arrival draw of mean `mean_msec`. 1 - NextDouble()
/// is in (0, 1], so the log argument never hits zero; a mean of exactly
/// 0 (the rate -> infinity limit) yields 0 regardless of the draw, which
/// is what collapses every open process to simultaneous arrivals.
double NextExponential(Prng* prng, double mean_msec) {
  return -std::log(1.0 - prng->NextDouble()) * mean_msec;
}

}  // namespace

std::vector<double> GenerateArrivalTimes(const ArrivalSpec& spec, size_t n) {
  std::vector<double> arrivals(n, 0.0);
  if (spec.kind == ArrivalKind::kClosed || n == 0) return arrivals;
  NIPO_CHECK(spec.rate_qps > 0);
  const double mean_gap_msec = 1e3 / spec.rate_qps;
  switch (spec.kind) {
    case ArrivalKind::kClosed:
      break;
    case ArrivalKind::kUniform:
      for (size_t i = 1; i < n; ++i) {
        arrivals[i] = static_cast<double>(i) * mean_gap_msec;
      }
      break;
    case ArrivalKind::kPoisson: {
      Prng prng(spec.seed);
      double t = 0;
      for (size_t i = 1; i < n; ++i) {
        t += NextExponential(&prng, mean_gap_msec);
        arrivals[i] = t;
      }
      break;
    }
    case ArrivalKind::kBursty: {
      NIPO_CHECK(spec.burst_len > 0);
      const double burst_rate =
          spec.burst_rate_qps > 0 ? spec.burst_rate_qps : 4.0 * spec.rate_qps;
      NIPO_CHECK(burst_rate > spec.rate_qps);
      const double burst_gap_msec = 1e3 / burst_rate;
      // Off-phase gap per completed burst: each period of burst_len
      // queries spans burst_len gaps, of which burst_len - 1 are
      // intra-burst draws (mean burst_gap) and one is this off gap — so
      // the off gap repays the full mean-rate budget and the long-run
      // rate stays rate_qps whatever the burst shape.
      const double off_gap_msec =
          static_cast<double>(spec.burst_len) * mean_gap_msec -
          static_cast<double>(spec.burst_len - 1) * burst_gap_msec;
      Prng prng(spec.seed);
      double t = 0;
      for (size_t i = 1; i < n; ++i) {
        if (i % spec.burst_len == 0) {
          t += off_gap_msec;  // phase boundary: deterministic off gap
        } else {
          t += NextExponential(&prng, burst_gap_msec);
        }
        arrivals[i] = t;
      }
      break;
    }
  }
  return arrivals;
}

}  // namespace nipo
