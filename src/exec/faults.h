#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

/// \file faults.h
/// Deterministic fault injection for workload execution (DESIGN.md
/// Section 9 "Fault-tolerant service").
///
/// A production service sees slow workers, transient failures and poison
/// queries; the FaultPlan injects all three into the workload driver's
/// simulated schedule, reproducibly. Every fault event is a *pure
/// function* of (plan seed, query index, attempt, quantum index) — a
/// stateless splitmix64 hash rather than a shared PRNG stream — so the
/// injected schedule does not depend on how quanta interleave across
/// queries. Two consequences the tests pin down
/// (tests/service_faults_test.cc):
///
///  - Reruns, simulated worker counts and `max_concurrent` settings all
///    draw the identical per-query fault sequence: outcomes, retry
///    counts and backoff waits are schedule-independent.
///  - The SimulateWorkloadSchedule replay does not need to redraw
///    anything: the recorded QuantumTrace fates already encode where
///    each attempt ended, and the event loop reconstructs retry timing
///    from them bit-identically.
///
/// Fault semantics at quantum granularity:
///  - *Transient fault*: the quantum executes (its simulated time is
///    spent), then the attempt fails with a retryable error. The driver
///    restarts the query from scratch on a fresh machine after a capped
///    exponential backoff in simulated time (RetryPolicy), up to
///    `max_attempts` total attempts; exhaustion yields
///    QueryOutcome::kFailed.
///  - *Stall*: a slow worker — the quantum's simulated duration is
///    multiplied by `stall_factor` in the schedule. Machine counters are
///    untouched (the work itself did not change; the worker was slow),
///    so stalls inflate latency without perturbing per-query counters.
///  - *Poison*: a deterministic hard failure: the listed queries fail
///    non-retryably at quantum index `poison_quantum` of every attempt.

namespace nipo {

/// \brief Terminal state of one workload query (docs/COUNTERS.md).
enum class QueryOutcome : int {
  kOk = 0,                ///< ran to completion
  kDeadlineExceeded = 1,  ///< killed at a vector boundary past its deadline
  kCancelled = 2,         ///< killed at a vector boundary past its cancel point
  kFailed = 3,            ///< hard fault, or retryable faults exhausted retry
  kShed = 4,              ///< rejected at admission (deadline-aware shedding)
};

std::string_view QueryOutcomeToString(QueryOutcome outcome);

/// \brief Seeded fault-injection plan of a workload run. Default: no
/// faults (enabled() == false), in which case the driver's behaviour and
/// schedule are byte-identical to a plan-free build.
struct FaultPlan {
  /// Seed of the per-event hash; same seed, same faults — on any host,
  /// any thread count, any admission limit.
  uint64_t seed = 42;
  /// Per-quantum probability of a transient (retryable) failure.
  double transient_fault_rate = 0;
  /// Per-quantum probability of a worker stall.
  double stall_rate = 0;
  /// Duration multiplier of a stalled quantum (> 1).
  double stall_factor = 4.0;
  /// Queries that fail hard (non-retryably), by index.
  std::vector<size_t> poison_queries;
  /// Quantum index (within an attempt) at which a poison query fails.
  size_t poison_quantum = 0;

  bool enabled() const {
    return transient_fault_rate > 0 || stall_rate > 0 ||
           !poison_queries.empty();
  }
  bool IsPoisoned(size_t query) const;
};

/// \brief Retry policy for transient (retryable) failures, in simulated
/// time. The default (max_attempts = 1) disables retry: the first
/// transient fault fails the query.
struct RetryPolicy {
  /// Total attempts per query (>= 1); 1 = no retry.
  size_t max_attempts = 1;
  /// Backoff before retry r (r = 1 after the first failure) is
  /// min(backoff_base_msec * 2^(r-1), backoff_cap_msec) simulated msec.
  double backoff_base_msec = 1.0;
  double backoff_cap_msec = 64.0;
};

/// \brief The fault events drawn for one (query, attempt, quantum).
struct FaultDraw {
  bool transient = false;  ///< retryable failure at the quantum's end
  bool stall = false;      ///< duration multiplied by plan.stall_factor
  bool poison = false;     ///< hard failure at the quantum's end
};

/// \brief Draws the fault events of one quantum: a pure, stateless
/// function of the plan seed and the (query, attempt, quantum)
/// coordinates, independent of scheduling order.
FaultDraw DrawFault(const FaultPlan& plan, size_t query, size_t attempt,
                    size_t quantum);

/// \brief Simulated backoff wait before retry `retry_index` (1-based:
/// the wait after the first failed attempt is index 1). Capped
/// exponential: min(base * 2^(retry_index-1), cap), never negative.
double RetryBackoffMsec(const RetryPolicy& policy, size_t retry_index);

}  // namespace nipo
