#include "exec/operators.h"

#include "common/logging.h"
#include "exec/pipeline.h"
#include "exec/simd.h"

/// \file operators.cc
/// The shared blocked-selection primitive: one predicate evaluation over a
/// block with the full PMU booking sequence (load run, per-tuple
/// instructions of the simulated form, evaluation through the active SIMD
/// kernel, branch events for the branching form), used by the pipeline
/// executor and the hash aggregate's filter chain so the two cannot drift.

namespace nipo {

// The header defaults are documentation; the executors pass LoopCostModel
// explicitly. Keep both in sync.
static_assert(PredicateEvalArgs{}.compare_instructions ==
              LoopCostModel::kCompareInstructions);
static_assert(PredicateEvalArgs{}.branch_free_instructions ==
              LoopCostModel::kBranchFreeInstructions);

std::string_view PredicateFormToString(PredicateForm form) {
  switch (form) {
    case PredicateForm::kBranching:
      return "branching";
    case PredicateForm::kBranchFree:
      return "branch-free";
  }
  return "?";
}

size_t EvalPredicateBlock(const PredicateEvalArgs& args,
                          SelectionScratch* scratch) {
  NIPO_CHECK(args.pmu != nullptr && scratch != nullptr &&
             args.column != nullptr);
  Pmu* pmu = args.pmu;
  const size_t active = scratch->active();
  if (active == 0) return 0;
  const uint32_t* sel = scratch->sel();
  // The view books the column loads: the same sequential/gather runs as
  // the historical raw path for plain columns, the encoded bytes
  // actually touched (plus decode instructions) for compressed ones.
  const ScanRun run =
      args.column->ScanBlock(pmu, args.block_begin, sel, active, args.decode);
  if (args.form == PredicateForm::kBranching) {
    pmu->OnInstructions(static_cast<uint64_t>(args.compare_instructions) *
                        active);
  } else {
    // Branch-free form: the compare-to-mask + compaction kernel costs more
    // instructions per tuple and books no branch events at this site.
    pmu->OnInstructions(static_cast<uint64_t>(args.branch_free_instructions) *
                        active);
  }
  if (args.extra_instructions > 0) {
    pmu->OnInstructions(static_cast<uint64_t>(args.extra_instructions) *
                        active);
  }
  uint8_t* pass = scratch->pass();
  uint32_t* next_sel = scratch->next_sel();
  // The kernel reads element j at run.base_row + (run.gather ?
  // run.gather[j] : j); survivor ids stay `sel` so committed offsets
  // remain block-relative rows even when the run is a decoded buffer.
  const size_t passed =
      simd::CompareSelect(run.type, run.data, run.base_row, args.op,
                          args.value, run.gather, sel, active, pass, next_sel);
  if (args.post_eval_instructions > 0) {
    pmu->OnInstructions(static_cast<uint64_t>(args.post_eval_instructions) *
                        active);
  }
  if (args.form == PredicateForm::kBranching) {
    pmu->OnPredicateBranches(args.branch_site, pass, active);
  }
  scratch->Commit(passed);
  return passed;
}

}  // namespace nipo
