#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/pipeline.h"

/// \file vector_driver.h
/// Vector-at-a-time execution (paper Section 4.4): the table is processed
/// in fixed-size vectors; counter samples are taken around each vector
/// like PAPI_read around a morsel, and a hook between vectors is where the
/// progressive optimizer lives.

namespace nipo {

/// \brief Per-vector execution record.
struct VectorSample {
  size_t vector_index = 0;
  VectorResult result;
  PmuCounters counters;  ///< delta for this vector only
};

/// \brief Aggregated outcome of a driven execution.
struct DriveResult {
  uint64_t input_tuples = 0;
  uint64_t qualifying_tuples = 0;
  /// Tuples skipped by zone maps before per-tuple work (subset of
  /// input_tuples; 0 without encoded columns).
  uint64_t zone_skipped_tuples = 0;
  double aggregate = 0.0;
  PmuCounters total;          ///< sum over all vectors
  double simulated_msec = 0;  ///< total simulated run-time
  size_t num_vectors = 0;
};

/// \brief Cost of one counter-sampling call, charged per vector when
/// sampling is enabled. ~200 cycles matches a rdpmc-based PAPI fast-path
/// read; Figure 16 shows this to be negligible relative to vector work.
inline constexpr double kCounterReadCycles = 200.0;

/// \brief Drives a PipelineExecutor vector by vector.
class VectorDriver {
 public:
  /// \param executor compiled pipeline (not owned)
  /// \param vector_size tuples per vector (the paper uses 1M at SF 100;
  ///        scaled-down runs use proportionally smaller vectors)
  VectorDriver(PipelineExecutor* executor, size_t vector_size);

  /// Hook invoked after each vector with its sample. May call
  /// executor->Reorder() to change the evaluation order for subsequent
  /// vectors. Return value ignored for now (reserved).
  using VectorHook = std::function<void(const VectorSample&)>;

  /// Executes the whole table. If `hook` is set, counters are sampled
  /// around every vector (charging kCounterReadCycles each) and the hook
  /// runs between vectors; otherwise the table is executed without
  /// per-vector sampling (the non-instrumented baseline).
  DriveResult Run(const VectorHook& hook = nullptr);

  size_t vector_size() const { return vector_size_; }
  size_t num_vectors() const;

 private:
  PipelineExecutor* executor_;
  size_t vector_size_;
};

}  // namespace nipo
