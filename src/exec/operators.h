#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

/// \file operators.h
/// Logical operator descriptions for the vectorized pipeline.
///
/// The paper's optimization unit is the *evaluation order* of a chain of
/// filtering operators over a scan: selection predicates (the predicate
/// evaluation order, PEO) and foreign-key probe/filter stages (the join
/// order of Sections 5.5-5.6). Both are described here and compiled by
/// PipelineExecutor.

namespace nipo {

/// Comparison operator of a predicate.
enum class CompareOp : int { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CompareOpToString(CompareOp op);

/// \brief Evaluates `lhs op rhs` on doubles (columns are converted; all
/// column domains in this repository are exactly representable).
inline bool EvaluateCompare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

/// \brief A selection predicate `column op value` on the fact table.
struct PredicateSpec {
  std::string column;
  CompareOp op = CompareOp::kLe;
  double value = 0.0;
  /// Additional per-evaluation instruction cost, modelling expensive
  /// predicates / UDFs (Section 5.5 pairs an "expensive selection" with a
  /// join). 0 for plain comparisons.
  double extra_instructions = 0.0;
};

/// \brief A foreign-key probe stage: reads the FK column of the fact
/// table, loads `filter_column` of the row it points to in `dimension`,
/// and keeps the tuple iff the dimension value passes `op value`.
///
/// The FK values are positional row ids into the dimension table (the
/// repository's generators emit dense surrogate keys), so the probe is a
/// direct array access whose locality is exactly the co-clusteredness the
/// paper's join-order experiments study.
struct FkProbeSpec {
  std::string fk_column;           ///< int32 column in the fact table
  const Table* dimension = nullptr;
  std::string filter_column;       ///< column probed in the dimension
  CompareOp op = CompareOp::kLe;
  double value = 0.0;
};

/// \brief One stage of the pipeline: either a predicate or an FK probe.
struct OperatorSpec {
  enum class Kind { kPredicate, kFkProbe };
  Kind kind = Kind::kPredicate;
  PredicateSpec predicate;
  FkProbeSpec probe;

  static OperatorSpec Predicate(PredicateSpec p) {
    OperatorSpec op;
    op.kind = Kind::kPredicate;
    op.predicate = std::move(p);
    return op;
  }
  static OperatorSpec FkProbe(FkProbeSpec p) {
    OperatorSpec op;
    op.kind = Kind::kFkProbe;
    op.probe = std::move(p);
    return op;
  }

  /// Short display name ("l_shipdate<=8400", "probe(orders.o_flag<5)").
  std::string ToString() const;
};

/// \brief Rows per execution block of every blocked operator-at-a-time
/// loop (PipelineExecutor, hash join, hash aggregate). Chosen like
/// Vectorwise's vector size: small enough that a block's working set (a
/// few KB per touched column) stays cache-resident on the *simulated*
/// machine, large enough to amortize per-block bookkeeping on the host.
/// Simulated counters depend on this constant (it fixes the interleaving
/// of column touches), so it is a fixed compile-time property of the
/// execution layer, not a tuning knob.
inline constexpr size_t kSimBlockRows = 1024;

/// \brief How the executor exposes per-operator statistics.
enum class InstrumentationMode : int {
  /// Non-invasive: only the simulated PMU observes execution (the paper's
  /// approach).
  kPmu,
  /// Invasive: explicit counter variables incremented after every operator
  /// evaluation (the "enumerator-based" comparison point of Section 5.7).
  /// Costs extra instructions per evaluation.
  kEnumerator,
};

}  // namespace nipo
