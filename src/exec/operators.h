#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/compare.h"
#include "hw/pmu.h"
#include "storage/column_view.h"
#include "storage/table.h"

/// \file operators.h
/// Logical operator descriptions for the vectorized pipeline.
///
/// The paper's optimization unit is the *evaluation order* of a chain of
/// filtering operators over a scan: selection predicates (the predicate
/// evaluation order, PEO) and foreign-key probe/filter stages (the join
/// order of Sections 5.5-5.6). Both are described here and compiled by
/// PipelineExecutor.

namespace nipo {

// CompareOp / EvaluateCompare live in common/compare.h (shared with the
// storage layer's zone maps); re-exported here through the include.

/// \brief A selection predicate `column op value` on the fact table.
struct PredicateSpec {
  std::string column;
  CompareOp op = CompareOp::kLe;
  double value = 0.0;
  /// Additional per-evaluation instruction cost, modelling expensive
  /// predicates / UDFs (Section 5.5 pairs an "expensive selection" with a
  /// join). 0 for plain comparisons.
  double extra_instructions = 0.0;
};

/// \brief A foreign-key probe stage: reads the FK column of the fact
/// table, loads `filter_column` of the row it points to in `dimension`,
/// and keeps the tuple iff the dimension value passes `op value`.
///
/// The FK values are positional row ids into the dimension table (the
/// repository's generators emit dense surrogate keys), so the probe is a
/// direct array access whose locality is exactly the co-clusteredness the
/// paper's join-order experiments study.
struct FkProbeSpec {
  std::string fk_column;           ///< int32 column in the fact table
  const Table* dimension = nullptr;
  std::string filter_column;       ///< column probed in the dimension
  CompareOp op = CompareOp::kLe;
  double value = 0.0;
};

/// \brief One stage of the pipeline: either a predicate or an FK probe.
struct OperatorSpec {
  enum class Kind { kPredicate, kFkProbe };
  Kind kind = Kind::kPredicate;
  PredicateSpec predicate;
  FkProbeSpec probe;

  static OperatorSpec Predicate(PredicateSpec p) {
    OperatorSpec op;
    op.kind = Kind::kPredicate;
    op.predicate = std::move(p);
    return op;
  }
  static OperatorSpec FkProbe(FkProbeSpec p) {
    OperatorSpec op;
    op.kind = Kind::kFkProbe;
    op.probe = std::move(p);
    return op;
  }

  /// Short display name ("l_shipdate<=8400", "probe(orders.o_flag<5)").
  std::string ToString() const;
};

/// \brief Rows per execution block of every blocked operator-at-a-time
/// loop (PipelineExecutor, hash join, hash aggregate). Chosen like
/// Vectorwise's vector size: small enough that a block's working set (a
/// few KB per touched column) stays cache-resident on the *simulated*
/// machine, large enough to amortize per-block bookkeeping on the host.
/// Simulated counters depend on this constant (it fixes the interleaving
/// of column touches), so it is a fixed compile-time property of the
/// execution layer, not a tuning knob.
inline constexpr size_t kSimBlockRows = 1024;

/// \brief Simulated evaluation form of a predicate (DESIGN.md Section 8).
///
/// The form decides what the executor *books* on the simulated machine,
/// not how the host computes -- the host always runs the branch-free
/// SIMD/scalar kernel of exec/simd.h. A kBranching predicate is simulated
/// as the paper's one-conditional-branch-per-evaluation loop (compare
/// instructions + a branch event per tuple at the predicate's site); a
/// kBranchFree predicate is simulated as a compare-to-mask +
/// selection-vector compaction kernel: more instructions per tuple
/// (LoopCostModel::kBranchFreeInstructions) and *no* branch events, hence
/// no selectivity-dependent misprediction cost -- and no branch-counter
/// observability at that site (docs/COUNTERS.md "Branch-free booking").
enum class PredicateForm : int {
  kBranching = 0,
  kBranchFree = 1,
};

std::string_view PredicateFormToString(PredicateForm form);

/// \brief Runs `fn(block_begin, n)` over [begin, end) in kSimBlockRows
/// blocks -- the outer skeleton shared by every blocked executor.
template <typename Fn>
void ForEachSimBlock(size_t begin, size_t end, Fn&& fn) {
  for (size_t block = begin; block < end; block += kSimBlockRows) {
    fn(block, std::min(kSimBlockRows, end - block));
  }
}

/// \brief The blocked selection-vector scaffolding shared by
/// PipelineExecutor, the hash aggregate's filter chain, and any future
/// filtering operator: dense-first semantics (the first operator of a
/// block runs without a materialized selection vector), a pass-flag
/// buffer for branch booking, and double-buffered survivor compaction.
///
/// Per block: BeginBlock(n); then per operator obtain pass()/next_sel(),
/// evaluate, and Commit(passed); MaterializeDense() converts a
/// still-dense block into an identity selection when downstream work
/// needs explicit row offsets. Buffers are reused across blocks
/// (single-threaded by contract, like the executors that embed it).
class SelectionScratch {
 public:
  void BeginBlock(size_t n) {
    dense_ = true;
    active_ = n;
  }

  size_t active() const { return active_; }
  bool dense() const { return dense_; }

  /// Block-relative offsets of still-active rows; nullptr while dense.
  const uint32_t* sel() const { return dense_ ? nullptr : sel_.data(); }

  /// Pass-flag buffer for the next evaluation (sized to active()).
  uint8_t* pass() {
    pass_.resize(active_);
    return pass_.data();
  }

  /// Survivor buffer for the next evaluation (sized to active()).
  uint32_t* next_sel() {
    next_sel_.resize(active_);
    return next_sel_.data();
  }

  /// Installs the `passed`-prefix of next_sel() as the new selection.
  void Commit(size_t passed) {
    next_sel_.resize(passed);
    sel_.swap(next_sel_);
    active_ = passed;
    dense_ = false;
  }

  /// If still dense, materializes the identity selection 0..active-1 so
  /// sel() becomes a real array (no-op otherwise).
  void MaterializeDense() {
    if (!dense_) return;
    sel_.resize(active_);
    for (size_t j = 0; j < active_; ++j) sel_[j] = static_cast<uint32_t>(j);
    dense_ = false;
  }

 private:
  std::vector<uint32_t> sel_;
  std::vector<uint32_t> next_sel_;
  std::vector<uint8_t> pass_;
  bool dense_ = true;
  size_t active_ = 0;
};

/// \brief One predicate evaluation over a block, PMU booking included.
///
/// The defaults of compare_instructions / branch_free_instructions mirror
/// LoopCostModel (enforced by a static_assert in operators.cc); the
/// executor layers pass their constants explicitly.
struct PredicateEvalArgs {
  Pmu* pmu = nullptr;
  size_t branch_site = 0;  ///< PMU site of this predicate position
  /// The column scanned, through the storage view API; the view books
  /// the loads (encoded bytes for compressed columns) and hands back the
  /// run the SIMD kernel evaluates.
  const ColumnView* column = nullptr;
  /// Decode buffers for encoded columns (untouched for plain ones).
  DecodeScratch* decode = nullptr;
  size_t block_begin = 0;  ///< first row of the block
  CompareOp op = CompareOp::kLe;
  double value = 0.0;
  double extra_instructions = 0.0;
  PredicateForm form = PredicateForm::kBranching;
  double compare_instructions = 1.0;      ///< LoopCostModel value
  double branch_free_instructions = 4.0;  ///< LoopCostModel value
  /// Booked after evaluation, before branch events (the enumerator-based
  /// instrumentation of pipeline.cc); 0 to skip.
  double post_eval_instructions = 0.0;
};

/// \brief Evaluates one predicate over the scratch's active rows:
/// books the column load run (stride-1 while dense, gather otherwise),
/// the per-tuple instructions of the chosen form, evaluates via the
/// active SIMD kernel, books the predicate-site branch run (branching
/// form only), and commits survivors. Returns the number of passing rows
/// (== scratch->active() afterwards).
size_t EvalPredicateBlock(const PredicateEvalArgs& args,
                          SelectionScratch* scratch);

/// \brief How the executor exposes per-operator statistics.
enum class InstrumentationMode : int {
  /// Non-invasive: only the simulated PMU observes execution (the paper's
  /// approach).
  kPmu,
  /// Invasive: explicit counter variables incremented after every operator
  /// evaluation (the "enumerator-based" comparison point of Section 5.7).
  /// Costs extra instructions per evaluation.
  kEnumerator,
};

}  // namespace nipo
