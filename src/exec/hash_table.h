#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "hw/pmu.h"

/// \file hash_table.h
/// An open-addressing hash table whose every memory touch is reported to
/// the simulated PMU.
///
/// This is the substrate for the hash join and hash aggregation
/// operators: the paper's Section 3.1 argues the relative cost of joins
/// is dominated by the number and locality of their accesses, and its
/// Section 4.5 notes that "the probability of collisions when building
/// hashes" is among the quantities a static optimizer cannot know --
/// monitoring the actual cache behaviour of this table is what the
/// progressive optimizer gets instead. Linear probing makes the access
/// pattern cache-line friendly on low load factors and visibly degrades
/// as collisions chain, which the PMU counters expose.

namespace nipo {

/// \brief Fixed-capacity open-addressing (linear probing) map from
/// int64 keys to int64 values. Capacity is sized at construction; the
/// table rejects inserts beyond a 7/8 load factor rather than rehashing
/// (operators size it from the build-side cardinality).
class InstrumentedHashTable {
 public:
  /// \param expected_entries build-side cardinality; capacity becomes the
  ///        next power of two of 2x this value.
  /// \param pmu the PMU that observes slot accesses (not owned).
  InstrumentedHashTable(size_t expected_entries, Pmu* pmu);

  /// Inserts key -> value. Duplicate keys keep the first value and
  /// return AlreadyExists; CapacityExceeded past the load limit.
  Status Insert(int64_t key, int64_t value);

  /// Looks up `key`; on hit stores the value and returns true.
  bool Lookup(int64_t key, int64_t* value) const;

  /// Adds `delta` to the value of `key`, inserting `initial + delta` if
  /// absent (the upsert used by hash aggregation). Fails only on
  /// capacity exhaustion.
  Status Accumulate(int64_t key, int64_t delta, int64_t initial = 0);

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  /// Probe-length statistics (total slot touches / operations), a direct
  /// collision measure for tests and diagnostics.
  double average_probe_length() const {
    return operations_ == 0
               ? 0.0
               : static_cast<double>(slot_touches_) /
                     static_cast<double>(operations_);
  }

 private:
  struct Slot {
    int64_t key = 0;
    int64_t value = 0;
    bool occupied = false;
  };

  size_t IndexOf(int64_t key) const {
    // splitmix64 finalizer as the hash.
    uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<size_t>(z & mask_);
  }

  /// Reports the cache access for slot `index` and charges the hash/probe
  /// instructions.
  void TouchSlot(size_t index) const;

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
  size_t max_size_ = 0;
  Pmu* pmu_;
  mutable uint64_t slot_touches_ = 0;
  mutable uint64_t operations_ = 0;
};

}  // namespace nipo
