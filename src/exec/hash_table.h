#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/simd.h"
#include "hw/pmu.h"

/// \file hash_table.h
/// An open-addressing hash table whose every memory touch is reported to
/// the simulated PMU.
///
/// This is the substrate for the hash join and hash aggregation
/// operators: the paper's Section 3.1 argues the relative cost of joins
/// is dominated by the number and locality of their accesses, and its
/// Section 4.5 notes that "the probability of collisions when building
/// hashes" is among the quantities a static optimizer cannot know --
/// monitoring the actual cache behaviour of this table is what the
/// progressive optimizer gets instead. Linear probing makes the access
/// pattern cache-line friendly on low load factors and visibly degrades
/// as collisions chain, which the PMU counters expose.

namespace nipo {

/// \brief Cumulative probe statistics of an InstrumentedHashTable.
/// Windowed exactly like PmuCounters: snapshot stats() before and after a
/// region and subtract, so probe-length measurements stay consistent with
/// PMU counter windows instead of silently spanning the table's whole
/// lifetime.
struct HashTableStats {
  uint64_t slot_touches = 0;  ///< slots inspected across all operations
  uint64_t operations = 0;    ///< Insert/Lookup/Accumulate calls

  HashTableStats operator-(const HashTableStats& other) const {
    return HashTableStats{slot_touches - other.slot_touches,
                          operations - other.operations};
  }

  /// Average linear-probe chain length over this window (a direct
  /// collision measure).
  double average_probe_length() const {
    return operations == 0 ? 0.0
                           : static_cast<double>(slot_touches) /
                                 static_cast<double>(operations);
  }
};

/// \brief Fixed-capacity open-addressing (linear probing) map from
/// int64 keys to int64 values. Capacity is sized at construction; the
/// table rejects inserts beyond a 7/8 load factor rather than rehashing
/// (operators size it from the build-side cardinality).
class InstrumentedHashTable {
 public:
  /// \param expected_entries build-side cardinality; capacity becomes the
  ///        next power of two of 2x this value.
  /// \param pmu the PMU that observes slot accesses (not owned).
  InstrumentedHashTable(size_t expected_entries, Pmu* pmu);

  /// Inserts key -> value. Duplicate keys keep the first value and
  /// return AlreadyExists; CapacityExceeded past the load limit.
  Status Insert(int64_t key, int64_t value);

  /// Looks up `key`; on hit stores the value and returns true.
  bool Lookup(int64_t key, int64_t* value) const;

  /// \name Batched probing (DESIGN.md Section 8)
  /// The batched entry points hash key blocks with the SIMD kernel
  /// (simd::HashKeys) and prefetch the home slots before walking the
  /// chains, hiding host-side cache misses behind the group. The *booked*
  /// event stream is per-key and identical to the per-call API -- the
  /// simulated machine sees the same logical probe sequence either way,
  /// which is what the counter bit-equality gates assert.
  /// @{

  /// Per-chunk batch size of the batched probe paths: large enough that
  /// the prefetches have time to land, small enough to stay in registers
  /// and L1.
  static constexpr size_t kProbeBatch = 64;

  /// Prefetch distance of ProbeKernel's rolling window: the slot of key
  /// j + kPrefetchDistance is prefetched just before key j is walked.
  /// Tuned on out-of-cache tables (bench/simd_kernels.cc); 8 leaves
  /// latency on the table, 32 overruns the outstanding-miss budget.
  static constexpr size_t kPrefetchDistance = 16;

  /// Prefetches the home slot of a (pre-mask) hash into the host caches.
  /// Host-only: no simulated effect.
  void PrefetchSlot(uint64_t hash) const {
    __builtin_prefetch(&slots_[static_cast<size_t>(hash & mask_)]);
  }

  /// Lookup with a caller-supplied hash (simd::SplitMix64 of the key,
  /// pre-mask). Books exactly like Lookup.
  bool LookupPrehashed(int64_t key, uint64_t hash, int64_t* value) const;

  /// Insert with a caller-supplied hash. Books exactly like Insert.
  Status InsertPrehashed(int64_t key, uint64_t hash, int64_t value);

  /// Probes `count` keys: SIMD-hashes and prefetches kProbeBatch-sized
  /// chunks, then walks each chain in key order. `hits[i]` receives the
  /// 0/1 outcome; `values[i]` is set on hit (both may be null). The
  /// booked stream equals `count` Lookup calls in order.
  void BatchLookup(const int64_t* keys, size_t count, int64_t* values,
                   uint8_t* hits) const;

  /// Benchmark-only raw probe: the same chain walks with *no* simulated
  /// booking and no stats upkeep, so wall-clock measures the host kernel
  /// alone. `batched` selects the hashed+prefetched group path versus the
  /// dependent per-key scalar path. Returns the hit count.
  size_t ProbeKernel(const int64_t* keys, size_t count, int64_t* values,
                     uint8_t* hits, bool batched) const;

  /// @}

  /// Adds `delta` to the value of `key`, inserting `initial + delta` if
  /// absent (the upsert used by hash aggregation). Fails only on
  /// capacity exhaustion.
  Status Accumulate(int64_t key, int64_t delta, int64_t initial = 0);

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

  /// Base address of the slot array. The simulated cache hashes real
  /// addresses, so differential tests use this to verify two tables
  /// occupy the same memory (allocator reuse) before expecting
  /// bit-identical cache counters.
  const void* slots_base() const { return slots_.data(); }

  /// Cumulative probe statistics since construction. Window with
  /// subtraction (snapshot before / after, like Pmu::Read) to measure a
  /// region — e.g. the probe phase of a join without its build phase.
  HashTableStats stats() const {
    return HashTableStats{slot_touches_, operations_};
  }

  /// Lifetime average probe chain length (stats().average_probe_length()).
  double average_probe_length() const {
    return stats().average_probe_length();
  }

 private:
  struct Slot {
    int64_t key = 0;
    int64_t value = 0;
    bool occupied = false;
  };

  size_t IndexOf(int64_t key) const {
    // splitmix64 finalizer as the hash -- the same function the SIMD
    // batch kernel applies four keys at a time.
    return static_cast<size_t>(simd::SplitMix64(static_cast<uint64_t>(key)) &
                               mask_);
  }

  /// Walks the linear-probe chain starting at `index` without reporting:
  /// returns the number of slots a probe for `key` inspects, including
  /// the terminal slot (empty or matching). Bounded because the table
  /// never fills completely (7/8 load limit).
  size_t ChainLength(size_t index, int64_t key) const;

  /// Reports `length` slot touches starting at `index` (wrapping at
  /// capacity) to the PMU as sequential-load runs, plus one hash/compare
  /// instruction per touch — event-for-event what a per-slot touch loop
  /// would report, expressed as runs the batched reporting layer can
  /// coalesce per cache line.
  void ReportChain(size_t index, size_t length) const;

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
  size_t max_size_ = 0;
  Pmu* pmu_;
  mutable uint64_t slot_touches_ = 0;
  mutable uint64_t operations_ = 0;
};

}  // namespace nipo
