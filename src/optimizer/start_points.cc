#include "optimizer/start_points.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file start_points.cc
/// Deterministic start-point sequence for the multi-start search:
/// well-spread points inside the bounded box (Section 4.3, Figure 9),
/// volume-aware so degenerate boxes fall back gracefully.

namespace nipo {

double StartPointGenerator::Volume(const std::vector<double>& lo,
                                   const std::vector<double>& hi) {
  double v = 1.0;
  for (size_t i = 0; i < lo.size(); ++i) {
    v *= std::max(0.0, hi[i] - lo[i]);
  }
  return v;
}

StartPointGenerator::StartPointGenerator(std::vector<double> lower,
                                         std::vector<double> upper,
                                         std::vector<double> null_hypothesis,
                                         bool include_vertices)
    : lower_(std::move(lower)),
      upper_(std::move(upper)),
      null_hypothesis_(std::move(null_hypothesis)) {
  NIPO_CHECK(lower_.size() == upper_.size());
  NIPO_CHECK(null_hypothesis_.size() == lower_.size());
  NIPO_CHECK(!lower_.empty());
  for (size_t i = 0; i < lower_.size(); ++i) {
    null_hypothesis_[i] =
        std::clamp(null_hypothesis_[i], lower_[i], upper_[i]);
  }
  const size_t d = lower_.size();
  if (include_vertices && d <= 10) {
    const size_t count = size_t{1} << d;
    for (size_t mask = 0; mask < count; ++mask) {
      std::vector<double> v(d);
      for (size_t i = 0; i < d; ++i) {
        v[i] = (mask >> i) & 1 ? upper_[i] : lower_[i];
      }
      vertex_queue_.push_back(std::move(v));
    }
    // Emit in natural order (front first).
    std::reverse(vertex_queue_.begin(), vertex_queue_.end());
  }
}

void StartPointGenerator::SplitAt(const Box& box,
                                  const std::vector<double>& point) {
  const size_t d = lower_.size();
  const size_t count = size_t{1} << std::min<size_t>(d, 10);
  for (size_t mask = 0; mask < count; ++mask) {
    Box child;
    child.lower.resize(d);
    child.upper.resize(d);
    bool degenerate = false;
    for (size_t i = 0; i < d; ++i) {
      if ((mask >> i) & 1) {
        child.lower[i] = point[i];
        child.upper[i] = box.upper[i];
      } else {
        child.lower[i] = box.lower[i];
        child.upper[i] = point[i];
      }
      if (child.upper[i] - child.lower[i] < 1e-12) {
        degenerate = true;
        break;
      }
    }
    if (degenerate) continue;
    child.volume = Volume(child.lower, child.upper);
    boxes_.push(std::move(child));
  }
}

std::vector<double> StartPointGenerator::Next() {
  ++emitted_;
  if (!vertex_queue_.empty()) {
    std::vector<double> v = std::move(vertex_queue_.back());
    vertex_queue_.pop_back();
    return v;
  }
  if (!null_emitted_) {
    null_emitted_ = true;
    Box whole;
    whole.lower = lower_;
    whole.upper = upper_;
    whole.volume = Volume(lower_, upper_);
    SplitAt(whole, null_hypothesis_);
    return null_hypothesis_;
  }
  if (boxes_.empty()) {
    // Degenerate box (all dimensions pinned): keep returning the only
    // feasible point.
    return null_hypothesis_;
  }
  Box biggest = boxes_.top();
  boxes_.pop();
  std::vector<double> centroid(lower_.size());
  for (size_t i = 0; i < centroid.size(); ++i) {
    centroid[i] = 0.5 * (biggest.lower[i] + biggest.upper[i]);
  }
  SplitAt(biggest, centroid);
  return centroid;
}

std::vector<double> EvenSplitNullHypothesis(double overall, size_t dims,
                                            size_t dims_total) {
  NIPO_CHECK(dims_total >= 1);
  NIPO_CHECK(dims <= dims_total);
  overall = std::clamp(overall, 1e-12, 1.0);
  const double per_predicate =
      std::pow(overall, 1.0 / static_cast<double>(dims_total));
  std::vector<double> point(dims);
  double running = 1.0;
  for (size_t i = 0; i < dims; ++i) {
    running *= per_predicate;
    point[i] = running;
  }
  return point;
}

}  // namespace nipo
