#pragma once

#include <cstdint>
#include <vector>

#include "cost/counter_model.h"
#include "optimizer/bounds.h"
#include "optimizer/nelder_mead.h"

/// \file estimator.h
/// The learning algorithm (paper Section 4.2): infer the individual
/// selectivities of a predicate chain from one vector's performance
/// counter sample.
///
/// The sampled counters -- branches not taken, mispredicted-taken,
/// mispredicted-not-taken, L3 accesses -- are compared against the
/// analytic predictions of cost/counter_model.h; the candidate selectivity
/// vector minimizing the difference (the Equation 10 objective) is found
/// by multi-start Nelder-Mead over the Section 4.1-restricted search
/// space, with start points from Section 4.3.
///
/// Parameterization: the search runs in *cumulative access fraction*
/// space pi_1..pi_{n-1} (pi_k = fraction of input tuples reaching
/// predicate k+1), with pi_n pinned to tupsout/tupsin -- the output
/// cardinality is known exactly from the branches-taken identity, so the
/// problem has n-1 free dimensions and the monotonicity constraint
/// pi_{k+1} <= pi_k is enforced with a penalty.

namespace nipo {

/// Which counters participate in the objective (ablation knob;
/// kBranchesOnly is also used for pipelines containing probes whose cache
/// behaviour the scan model does not cover).
enum class CounterSet : int {
  kAll,           ///< BNT + both misprediction splits + L3 accesses
  kBranchesOnly,  ///< BNT + both misprediction splits
  kBntOnly,       ///< branches-not-taken alone (under-determined for n>2)
};

/// \brief Estimator tuning. Defaults follow the paper: Nelder-Mead with
/// 10k max iterations, multi-start until 5 stalls or 2p starts.
struct EstimatorConfig {
  NelderMeadOptions nelder_mead{
      .max_iterations = 10'000,
      .abs_tolerance = 1e-6,  // objective is normalized (relative errors)
      .initial_step = 0.15,
  };
  /// Maximum start points m; 0 means the paper's m = 2p rule.
  int max_starts = 0;
  /// Stop after this many consecutive starts without improvement
  /// (paper: n < 5).
  int stall_limit = 5;
  CounterSet counter_set = CounterSet::kAll;
  /// Weight of the monotonicity-violation penalty.
  double monotonicity_penalty = 100.0;
  bool include_vertex_starts = true;
};

/// \brief One vector's sample, as gathered by the driver.
struct CounterSample {
  double tuples_in = 0;
  double tuples_out = 0;  ///< qualifying tuples (exact, from 2n - bT)
  CounterEstimate counters;
};

/// \brief Estimation result.
struct SelectivityEstimate {
  /// Per-predicate selectivities in the sampled evaluation order.
  std::vector<double> selectivities;
  /// Cumulative access fractions (selectivity products).
  std::vector<double> access_fractions;
  double objective = 0.0;  ///< final Equation 10 value
  int starts_used = 0;
  int total_nm_iterations = 0;
};

/// \brief Runs the Section 4.2 learning algorithm.
///
/// `shape` describes the sampled evaluation order (widths, tuple count,
/// predictor, cache line). Returns InvalidArgument for inconsistent
/// samples (tuples_out > tuples_in, counter/shape size mismatch).
Result<SelectivityEstimate> EstimateSelectivities(
    const ScanShape& shape, const CounterSample& sample,
    const EstimatorConfig& config);

/// \brief The Equation 10 objective restricted to the chosen counter set;
/// exposed for tests and for the ablation benches.
double EstimationObjective(const ScanShape& shape,
                           const CounterEstimate& sampled,
                           const std::vector<double>& selectivities,
                           CounterSet counter_set);

}  // namespace nipo
