#include "optimizer/bounds.h"

#include <algorithm>
#include <cmath>

/// \file bounds.cc
/// Derivation of the per-position access-count bounds (Equations 6-9)
/// from a counter sample, and clamping of candidate points into the
/// resulting feasible box.

namespace nipo {

bool SearchBounds::Feasible() const {
  if (lower.size() != upper.size()) return false;
  for (size_t i = 0; i < lower.size(); ++i) {
    if (lower[i] > upper[i] + 1e-9) return false;
  }
  return true;
}

void SearchBounds::Clamp(std::vector<double>* accesses) const {
  const size_t n = std::min(accesses->size(), lower.size());
  for (size_t i = 0; i < n; ++i) {
    (*accesses)[i] = std::clamp((*accesses)[i], lower[i], upper[i]);
  }
}

namespace {

Status ValidateCardinalities(double tupsin, double tupsout, size_t n) {
  if (n == 0) return Status::InvalidArgument("need at least one predicate");
  if (tupsin < 0 || tupsout < 0) {
    return Status::InvalidArgument("negative cardinality");
  }
  if (tupsout > tupsin) {
    return Status::InvalidArgument("tupsout exceeds tupsin");
  }
  return Status::OK();
}

}  // namespace

Result<SearchBounds> ComputeTupleBounds(double tupsin, double tupsout,
                                        size_t num_predicates) {
  NIPO_RETURN_NOT_OK(ValidateCardinalities(tupsin, tupsout, num_predicates));
  SearchBounds b;
  b.lower.assign(num_predicates, tupsout);
  b.upper.assign(num_predicates, tupsin);
  b.upper.back() = tupsout;  // Eq. 6: the last position emits the output
  return b;
}

Result<SearchBounds> ComputeBntBounds(double tupsin, double tupsout,
                                      double bnt_sample,
                                      size_t num_predicates) {
  NIPO_RETURN_NOT_OK(ValidateCardinalities(tupsin, tupsout, num_predicates));
  const double n = static_cast<double>(num_predicates);
  if (bnt_sample < tupsout * n - 1e-9 || bnt_sample > tupsin * (n - 1) +
                                                          tupsout + 1e-9) {
    return Status::OutOfRange(
        "BNT sample " + std::to_string(bnt_sample) +
        " outside the feasible range for these cardinalities");
  }
  SearchBounds b;
  b.lower.assign(num_predicates, tupsout);
  b.upper.assign(num_predicates, tupsin);
  for (size_t i = 0; i < num_predicates; ++i) {
    const double k = static_cast<double>(i + 1);
    if (i + 1 == num_predicates) {
      b.lower[i] = tupsout;
      b.upper[i] = tupsout;
      continue;
    }
    // Upper: positions 1..k all at the same maximum, the rest at tupsout.
    double upper = (bnt_sample - (n - k) * tupsout) / k;
    upper = std::min(upper, tupsin);
    upper = std::max(upper, tupsout);
    b.upper[i] = upper;
    // Lower: predecessors at tupsin, successors squeezed below acc_k.
    double lower = (bnt_sample - tupsout - (k - 1) * tupsin) / (n - k);
    lower = std::max(lower, tupsout);
    lower = std::min(lower, tupsin);
    b.lower[i] = lower;
  }
  return b;
}

Result<SearchBounds> IntersectBounds(const SearchBounds& a,
                                     const SearchBounds& b) {
  if (a.lower.size() != a.upper.size() || b.lower.size() != b.upper.size()) {
    return Status::InvalidArgument("malformed bounds (lower/upper differ)");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument("bound dimensionality mismatch");
  }
  SearchBounds out;
  out.lower.resize(a.size());
  out.upper.resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out.lower[i] = std::max(a.lower[i], b.lower[i]);
    out.upper[i] = std::min(a.upper[i], b.upper[i]);
  }
  if (!out.Feasible()) {
    return Status::OutOfRange("bound intersection is empty");
  }
  return out;
}

Result<SearchBounds> RestrictSearchSpace(double tupsin, double tupsout,
                                         double bnt_sample,
                                         size_t num_predicates) {
  NIPO_ASSIGN_OR_RETURN(SearchBounds tuple,
                        ComputeTupleBounds(tupsin, tupsout, num_predicates));
  NIPO_ASSIGN_OR_RETURN(
      SearchBounds bnt,
      ComputeBntBounds(tupsin, tupsout, bnt_sample, num_predicates));
  return IntersectBounds(tuple, bnt);
}

std::vector<double> AccessesToSelectivities(double tupsin,
                                            const std::vector<double>& acc) {
  std::vector<double> s(acc.size(), 1.0);
  double prev = tupsin;
  for (size_t i = 0; i < acc.size(); ++i) {
    if (prev > 1e-12) {
      s[i] = std::clamp(acc[i] / prev, 0.0, 1.0);
    } else {
      s[i] = 1.0;  // no tuples reached this predicate: no information
    }
    prev = acc[i];
  }
  return s;
}

std::vector<double> SelectivitiesToAccesses(
    double tupsin, const std::vector<double>& selectivities) {
  std::vector<double> acc(selectivities.size());
  double running = tupsin;
  for (size_t i = 0; i < selectivities.size(); ++i) {
    running *= std::clamp(selectivities[i], 0.0, 1.0);
    acc[i] = running;
  }
  return acc;
}

}  // namespace nipo
