#include "optimizer/static_optimizer.h"

#include <algorithm>

#include "exec/pipeline.h"

/// \file static_optimizer.cc
/// The compile-time baseline: rank-orders an operator chain once from
/// histogram selectivity estimates using the classic
/// (selectivity - 1) / cost criterion.

namespace nipo {

StaticPlan PlanStatically(const std::vector<OperatorSpec>& ops,
                          const TableStatistics& stats,
                          double probe_selectivity_fallback,
                          double probe_cost) {
  StaticPlan plan;
  plan.rankings.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    StaticRanking r;
    r.original_index = i;
    r.estimated_selectivity = stats.EstimateOperatorSelectivity(
        ops[i], probe_selectivity_fallback);
    if (ops[i].kind == OperatorSpec::Kind::kPredicate) {
      r.cost = 1.0 + ops[i].predicate.extra_instructions /
                         LoopCostModel::kCompareInstructions / 3.0;
    } else {
      r.cost = probe_cost;
    }
    r.rank = (r.estimated_selectivity - 1.0) / std::max(r.cost, 1e-9);
    plan.rankings.push_back(r);
  }
  std::stable_sort(plan.rankings.begin(), plan.rankings.end(),
                   [](const StaticRanking& a, const StaticRanking& b) {
                     return a.rank < b.rank;
                   });
  plan.order.reserve(ops.size());
  for (const StaticRanking& r : plan.rankings) {
    plan.order.push_back(r.original_index);
  }
  return plan;
}

}  // namespace nipo
