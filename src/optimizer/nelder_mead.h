#pragma once

#include <functional>
#include <vector>

#include "common/result.h"

/// \file nelder_mead.h
/// Nelder-Mead simplex minimization with box constraints (paper Section
/// 4.2: the paper uses NLopt's Nelder-Mead [15] as the local optimizer of
/// its selectivity-estimation objective; this is a from-scratch
/// implementation with the same termination knobs -- absolute tolerance
/// and maximum iteration count).

namespace nipo {

/// Objective: maps a point to a finite cost.
using ObjectiveFn = std::function<double(const std::vector<double>&)>;

/// \brief Termination and behaviour knobs. The defaults mirror the
/// paper's tuning: "a maximum iteration count of 10k and an absolute
/// tolerance of one result in the best estimations". (The tolerance is in
/// objective units; callers with normalized objectives pass their own.)
struct NelderMeadOptions {
  int max_iterations = 10'000;
  double abs_tolerance = 1.0;  ///< stop when f(worst) - f(best) < this
  /// Initial simplex spread as a fraction of the box extent per dimension.
  double initial_step = 0.10;
  // Standard coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

/// \brief Outcome of one minimization run.
struct NelderMeadResult {
  std::vector<double> x;       ///< best point found
  double value = 0.0;          ///< objective at x
  int iterations = 0;          ///< simplex iterations performed
  bool converged = false;      ///< tolerance met before iteration limit
};

/// \brief Minimizes `objective` starting from `start`, constraining every
/// coordinate i to [lower[i], upper[i]] (candidate points are clamped to
/// the box, the conventional bound handling for Nelder-Mead).
///
/// Errors: dimension mismatches or an empty box return InvalidArgument.
Result<NelderMeadResult> NelderMeadMinimize(const ObjectiveFn& objective,
                                            std::vector<double> start,
                                            const std::vector<double>& lower,
                                            const std::vector<double>& upper,
                                            const NelderMeadOptions& options);

}  // namespace nipo
