#include "optimizer/sortedness.h"

namespace nipo {

SortednessVerdict JudgeSortedness(const CacheGeometry& l3_geometry,
                                  const ProbeObservation& observation,
                                  double threshold) {
  SortednessVerdict verdict;
  verdict.predicted_random_misses = ExpectedRandomMisses(
      observation.relation, l3_geometry, observation.num_probes);
  if (verdict.predicted_random_misses <= 0) {
    verdict.score = 0;
    verdict.co_clustered = true;
    return verdict;
  }
  verdict.score =
      observation.sampled_l3_misses / verdict.predicted_random_misses;
  verdict.co_clustered = verdict.score < threshold;
  return verdict;
}

}  // namespace nipo
