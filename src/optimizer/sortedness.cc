#include "optimizer/sortedness.h"

/// \file sortedness.cc
/// The Sections 5.5-5.6 sortedness judge: compares observed probe misses
/// against the Equation 1 random-access prediction to score how
/// co-clustered a probed relation is with the scan order.

namespace nipo {

SortednessVerdict JudgeSortedness(const CacheGeometry& l3_geometry,
                                  const ProbeObservation& observation,
                                  double threshold) {
  SortednessVerdict verdict;
  verdict.predicted_random_misses = ExpectedRandomMisses(
      observation.relation, l3_geometry, observation.num_probes);
  if (verdict.predicted_random_misses <= 0) {
    verdict.score = 0;
    verdict.co_clustered = true;
    return verdict;
  }
  verdict.score =
      observation.sampled_l3_misses / verdict.predicted_random_misses;
  verdict.co_clustered = verdict.score < threshold;
  return verdict;
}

}  // namespace nipo
