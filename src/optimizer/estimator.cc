#include "optimizer/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimizer/start_points.h"

/// \file estimator.cc
/// The Section 4.2 learning algorithm: the relative-distance objective
/// between sampled and predicted counters (Equation 10), minimized by
/// multi-start Nelder-Mead inside the Section 4.1 bounds, yielding
/// per-predicate selectivity estimates.

namespace nipo {

namespace {

double RelativeTerm(double sampled, double predicted) {
  return std::abs(sampled - predicted) / std::max(std::abs(sampled), 1.0);
}

}  // namespace

double EstimationObjective(const ScanShape& shape,
                           const CounterEstimate& sampled,
                           const std::vector<double>& selectivities,
                           CounterSet counter_set) {
  const CounterEstimate predicted = PredictCounters(shape, selectivities);
  // Branches-not-taken is the one *exact* counter (paper Section 4.1:
  // "independent of runtime or CPU characteristics and thus exact"), so
  // it carries extra weight against the statistical misprediction and
  // cache counters.
  constexpr double kBntWeight = 4.0;
  double cost =
      kBntWeight *
      RelativeTerm(sampled.branches_not_taken, predicted.branches_not_taken);
  if (counter_set == CounterSet::kAll ||
      counter_set == CounterSet::kBranchesOnly) {
    cost += RelativeTerm(sampled.taken_mp, predicted.taken_mp);
    cost += RelativeTerm(sampled.not_taken_mp, predicted.not_taken_mp);
  }
  if (counter_set == CounterSet::kAll) {
    cost += RelativeTerm(sampled.l3_accesses, predicted.l3_accesses);
  }
  return cost;
}

Result<SelectivityEstimate> EstimateSelectivities(
    const ScanShape& shape, const CounterSample& sample,
    const EstimatorConfig& config) {
  const size_t n = shape.predicate_widths.size();
  if (n == 0) {
    return Status::InvalidArgument("no predicates to estimate");
  }
  if (sample.tuples_in <= 0) {
    return Status::InvalidArgument("sample has no input tuples");
  }
  if (sample.tuples_out < 0 || sample.tuples_out > sample.tuples_in) {
    return Status::InvalidArgument("inconsistent output cardinality");
  }
  const double overall = sample.tuples_out / sample.tuples_in;

  SelectivityEstimate best;
  if (n == 1) {
    // One predicate: the output cardinality determines it exactly.
    best.selectivities = {overall};
    best.access_fractions = {overall};
    best.objective = 0.0;
    best.starts_used = 0;
    return best;
  }

  // Restrict the search space (Section 4.1). BNT bounds need the sampled
  // BNT restricted to predicate branches; the shape's loop branch does not
  // contribute (the back-edge is always taken).
  NIPO_ASSIGN_OR_RETURN(
      SearchBounds bounds,
      RestrictSearchSpace(sample.tuples_in, sample.tuples_out,
                          sample.counters.branches_not_taken, n));

  // Free dimensions: cumulative access fractions pi_1..pi_{n-1}.
  const size_t dims = n - 1;
  std::vector<double> lower(dims), upper(dims);
  for (size_t i = 0; i < dims; ++i) {
    lower[i] = bounds.lower[i] / sample.tuples_in;
    upper[i] = bounds.upper[i] / sample.tuples_in;
  }

  // Candidate point -> full selectivity vector.
  auto to_selectivities = [&](const std::vector<double>& pi) {
    std::vector<double> acc(n);
    for (size_t i = 0; i < dims; ++i) acc[i] = pi[i] * sample.tuples_in;
    acc[n - 1] = sample.tuples_out;
    return AccessesToSelectivities(sample.tuples_in, acc);
  };

  auto objective = [&](const std::vector<double>& pi) {
    // Monotonicity penalty: pi must be non-increasing and >= overall.
    double penalty = 0.0;
    double prev = 1.0;
    for (size_t i = 0; i < dims; ++i) {
      penalty += std::max(0.0, pi[i] - prev);
      penalty += std::max(0.0, overall - pi[i]);
      prev = pi[i];
    }
    const std::vector<double> sel = to_selectivities(pi);
    return EstimationObjective(shape, sample.counters, sel,
                               config.counter_set) +
           config.monotonicity_penalty * penalty;
  };

  const int max_starts =
      config.max_starts > 0 ? config.max_starts : static_cast<int>(2 * n);

  StartPointGenerator starts(lower, upper,
                             EvenSplitNullHypothesis(overall, dims, n),
                             config.include_vertex_starts);

  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_pi;
  int stall = 0;
  int starts_used = 0;
  int total_iters = 0;
  while (starts_used < max_starts && stall < config.stall_limit) {
    const std::vector<double> start = starts.Next();
    NIPO_ASSIGN_OR_RETURN(
        NelderMeadResult run,
        NelderMeadMinimize(objective, start, lower, upper,
                           config.nelder_mead));
    ++starts_used;
    total_iters += run.iterations;
    if (run.value + 1e-12 < best_value) {
      best_value = run.value;
      best_pi = run.x;
      stall = 0;
    } else {
      ++stall;
    }
  }
  NIPO_CHECK(!best_pi.empty());

  // Repair any residual monotonicity violation before reporting.
  double prev = 1.0;
  for (double& v : best_pi) {
    v = std::clamp(v, overall, prev);
    prev = v;
  }

  best.selectivities = to_selectivities(best_pi);
  best.access_fractions.resize(n);
  for (size_t i = 0; i < dims; ++i) best.access_fractions[i] = best_pi[i];
  best.access_fractions[n - 1] = overall;
  best.objective = best_value;
  best.starts_used = starts_used;
  best.total_nm_iterations = total_iters;
  return best;
}

}  // namespace nipo
