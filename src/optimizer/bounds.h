#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

/// \file bounds.h
/// Search-space restriction (paper Section 4.1, Equations 6-9).
///
/// For a query with n predicates over tupsin input tuples producing
/// tupsout output tuples, the unknowns are the per-position *access
/// counts* acc_1..acc_n: acc_k is the number of tuples that survive the
/// first k predicates of the evaluation order, which equals both the
/// branches-not-taken of predicate k and the number of accesses to the
/// (k+1)-th column in the chain. The known facts
///
///   tupsin >= acc_1 >= acc_2 >= ... >= acc_n = tupsout
///   sum_k acc_k = BNT_sample        (exact, CPU-independent)
///
/// bound each acc_k from both sides:
///
///   Tuple bounds (Eq. 6-7):  tupsout <= acc_k <= tupsin (acc_n = tupsout)
///   Upper BNT bound:  acc_k <= (BNT - (n-k) * tupsout) / k
///     (push acc_1..acc_k all up to the same maximum, floor the rest)
///   Lower BNT bound:  acc_k >= (BNT - tupsout - (k-1) * tupsin) / (n-k)
///     (push the predecessors to tupsin, successors down to acc_k)
///
/// Note: the paper's printed Equation 9 divides by (n-1) for every
/// position; that reproduces its Figure 7 example only for k = 1. The
/// derivation above -- maximize the other positions subject to
/// monotonicity -- requires (n-k), which also matches the example's
/// remaining values ([67, 50, 10, 10]); we implement the corrected form.

namespace nipo {

/// \brief Elementwise lower/upper bounds on acc_1..acc_n.
struct SearchBounds {
  std::vector<double> lower;
  std::vector<double> upper;

  size_t size() const { return lower.size(); }

  /// True iff every interval is non-empty (lower <= upper).
  bool Feasible() const;

  /// Clamps `accesses` into the bounds, in place.
  void Clamp(std::vector<double>* accesses) const;
};

/// \brief Equations 6-7: bounds from input/output cardinalities alone.
Result<SearchBounds> ComputeTupleBounds(double tupsin, double tupsout,
                                        size_t num_predicates);

/// \brief Equations 8-9 (corrected): bounds from the sampled
/// branches-not-taken total. `bnt_sample` must include the tupsout
/// accesses of the final position.
Result<SearchBounds> ComputeBntBounds(double tupsin, double tupsout,
                                      double bnt_sample,
                                      size_t num_predicates);

/// \brief Intersection of two bound sets (max of lowers, min of uppers).
Result<SearchBounds> IntersectBounds(const SearchBounds& a,
                                     const SearchBounds& b);

/// \brief Combined restriction: tuple bounds intersected with BNT bounds,
/// the full Section 4.1 pruning.
Result<SearchBounds> RestrictSearchSpace(double tupsin, double tupsout,
                                         double bnt_sample,
                                         size_t num_predicates);

/// \brief Converts access counts to per-predicate selectivities:
/// s_k = acc_k / acc_{k-1} with acc_0 = tupsin. Zero predecessors yield
/// selectivity 1 (no information).
std::vector<double> AccessesToSelectivities(double tupsin,
                                            const std::vector<double>& acc);

/// \brief Converts per-predicate selectivities to access counts.
std::vector<double> SelectivitiesToAccesses(
    double tupsin, const std::vector<double>& selectivities);

}  // namespace nipo
