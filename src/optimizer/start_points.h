#pragma once

#include <queue>
#include <vector>

#include "common/result.h"

/// \file start_points.h
/// Start-point generation for the multi-start non-linear optimization
/// (paper Section 4.3, Figure 9).
///
/// The estimation objective can have local optima (two different
/// selectivity assignments may induce near-identical counter values), so
/// the Nelder-Mead search is restarted from a deterministic sequence of
/// well-spread points:
///
///   1. the vertices of the (restricted) search box,
///   2. the *null-hypothesis* point -- overall selectivity distributed
///      evenly across the predicates -- which also splits the box into
///      2^d sub-boxes,
///   3. then repeatedly the centroid of the largest unexplored sub-box,
///      each emission splitting that sub-box further.
///
/// Every emitted point therefore probes the largest unseen region first.

namespace nipo {

/// \brief Deterministic start-point stream over an axis-aligned box.
class StartPointGenerator {
 public:
  /// \param lower/upper the (restricted) search box
  /// \param null_hypothesis the first interior point; Section 4.3 uses the
  ///        even split of the observed overall selectivity. Clamped into
  ///        the box.
  /// \param include_vertices whether to emit the 2^d box vertices first
  ///        (capped at 2^10 for sanity; higher-dimensional boxes skip
  ///        straight to interior points).
  StartPointGenerator(std::vector<double> lower, std::vector<double> upper,
                      std::vector<double> null_hypothesis,
                      bool include_vertices = true);

  /// Next start point. The stream is infinite (boxes subdivide forever);
  /// callers stop via their own iteration budget.
  std::vector<double> Next();

  /// Points emitted so far.
  size_t emitted() const { return emitted_; }

  size_t dimensions() const { return lower_.size(); }

 private:
  struct Box {
    std::vector<double> lower;
    std::vector<double> upper;
    double volume = 0.0;
  };
  struct VolumeLess {
    bool operator()(const Box& a, const Box& b) const {
      return a.volume < b.volume;
    }
  };

  static double Volume(const std::vector<double>& lo,
                       const std::vector<double>& hi);
  /// Splits `box` at `point` into up to 2^d children (degenerate slabs are
  /// dropped) and pushes them on the heap.
  void SplitAt(const Box& box, const std::vector<double>& point);

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> null_hypothesis_;
  std::vector<std::vector<double>> vertex_queue_;  // emitted back to front
  bool null_emitted_ = false;
  std::priority_queue<Box, std::vector<Box>, VolumeLess> boxes_;
  size_t emitted_ = 0;
};

/// \brief The Section 4.3 null hypothesis: the overall selectivity
/// `overall` (output/input) distributed evenly across `dims` predicates,
/// expressed in *cumulative access-fraction* coordinates: coordinate k is
/// overall^((k+1)/dims_total) for a chain of dims_total predicates. The
/// generator itself is coordinate-agnostic; this helper just builds the
/// customary point for access-fraction boxes.
std::vector<double> EvenSplitNullHypothesis(double overall, size_t dims,
                                            size_t dims_total);

}  // namespace nipo
