#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/vector_driver.h"
#include "storage/table.h"

/// \file statistics.h
/// Compile-time column statistics: equi-width histograms, min/max, and a
/// sampled distinct-count estimate -- plus the run-time SampleMerger that
/// folds per-morsel counter samples into one merged window statistic for
/// the parallel progressive coordinator (DESIGN.md "Parallel execution").
///
/// The compile-time statistics power the *static* optimizer baseline
/// (optimizer/static_optimizer.h) -- the component whose failure modes
/// (stale statistics, skew, correlation, parameters unknown at compile
/// time) motivate the paper's progressive approach. The statistics are
/// honest single-column summaries: selectivity estimates for conjunctions
/// multiply per-column selectivities under the independence assumption,
/// exactly the assumption correlated data breaks (paper Section 4.5).

namespace nipo {

/// \brief Equi-width histogram plus min/max/count for one column.
class ColumnStatistics {
 public:
  /// Builds statistics from every value of `column` (values read as
  /// doubles). `num_buckets` >= 1.
  static Result<ColumnStatistics> Build(const ColumnBase& column,
                                        size_t num_buckets = 64);

  /// Builds from a sampled prefix of `sample_size` values, emulating the
  /// stale / partial statistics real optimizers operate with.
  static Result<ColumnStatistics> BuildFromPrefix(const ColumnBase& column,
                                                  size_t sample_size,
                                                  size_t num_buckets = 64);

  double min() const { return min_; }
  double max() const { return max_; }
  uint64_t row_count() const { return row_count_; }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t i) const { return buckets_[i]; }

  /// Estimated selectivity of `value_column op constant` under the
  /// histogram, with linear interpolation inside the boundary bucket.
  double EstimateSelectivity(CompareOp op, double constant) const;

  /// Fraction of rows in [lo, hi] (inclusive), interpolated.
  double EstimateRangeFraction(double lo, double hi) const;

 private:
  double BucketWidth() const;
  /// Fraction of rows strictly below `constant`.
  double FractionBelow(double constant) const;

  double min_ = 0;
  double max_ = 0;
  uint64_t row_count_ = 0;
  std::vector<uint64_t> buckets_;
};

/// \brief Statistics for every column of a table.
class TableStatistics {
 public:
  /// Builds statistics for all columns. `sample_size` 0 means exact
  /// (full-column) statistics; otherwise only a prefix is summarized.
  static Result<TableStatistics> Build(const Table& table,
                                       size_t num_buckets = 64,
                                       size_t sample_size = 0);

  Result<const ColumnStatistics*> ForColumn(const std::string& name) const;

  /// Estimated selectivity of a predicate under the histograms;
  /// probes / unknown columns fall back to `fallback`.
  double EstimateOperatorSelectivity(const OperatorSpec& op,
                                     double fallback = 0.5) const;

  uint64_t row_count() const { return row_count_; }

 private:
  uint64_t row_count_ = 0;
  std::vector<std::pair<std::string, ColumnStatistics>> columns_;
};

/// \brief Merges per-morsel (or per-vector) execution samples into one
/// window sample that is statistically equivalent for the Section 4.2
/// estimators.
///
/// The learning algorithm consumes only event *totals* over a window
/// executed under one evaluation order (tuples in/out, branches not taken,
/// misprediction splits, L3 accesses), and every one of those totals is
/// additive across disjoint row ranges. Summing the samples of morsels
/// that ran under the same order -- regardless of which worker thread ran
/// them -- therefore yields exactly the sample a single machine would have
/// produced for the union of those rows, which is why merged per-morsel
/// statistics keep the paper's estimators valid under sharded execution
/// (the determinism argument in DESIGN.md "Parallel execution").
class SampleMerger {
 public:
  /// Folds `sample` into the window. The caller is responsible for only
  /// adding samples taken under one evaluation order.
  void Add(const VectorSample& sample);

  /// Number of samples folded in since the last Reset().
  size_t count() const { return count_; }

  /// The merged window: summed results and counters; vector_index is the
  /// largest added index (the window's end position in the scan).
  const VectorSample& merged() const { return merged_; }

  void Reset();

 private:
  VectorSample merged_;
  size_t count_ = 0;
};

}  // namespace nipo
