#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/parallel_driver.h"
#include "exec/vector_driver.h"
#include "optimizer/estimator.h"
#include "optimizer/sortedness.h"
#include "optimizer/statistics.h"

/// \file progressive.h
/// The progressive optimization driver (paper Section 4.4, Figure 10),
/// in a single-threaded and a sharded-parallel form (DESIGN.md "Parallel
/// execution").
///
/// Execution proceeds vector by vector. Every `reopt_interval` vectors the
/// driver takes the latest counter sample, runs the Section 4.2 learning
/// algorithm to estimate the selectivity of every operator in the current
/// evaluation order, ranks the operators (ascending selectivity for plain
/// predicates; cost-weighted rank when expensive predicates or join
/// probes participate, with probe cost informed by the Section 5.5-5.6
/// sortedness detector), and -- if the ranking disagrees with the current
/// order -- switches the order for subsequent vectors (the JIT-recompile /
/// primitive-rechain step). The next vector *validates* the switch: if
/// its cycles-per-tuple deteriorate, the old order is re-established
/// (Section 4.4's "if they deteriorate, the old order is reestablished").
///
/// Under sharded execution the same estimate->rank->validate cycle runs in
/// ParallelProgressiveCoordinator: worker morsel samples are merged into
/// windows of `reopt_interval` morsels (SampleMerger; counter sums over
/// same-order morsels are sufficient statistics for the estimators), and
/// each decision is broadcast to all workers at morsel boundaries.

namespace nipo {

/// \brief How RankOrderOperators prices an operator when ranking
/// (DESIGN.md Section 8, "SIMD-aware pricing").
enum class CostPricing : int {
  /// The original unit-cost rule: plain predicates cost 1, expensive
  /// predicates add their extra instructions, probes their miss-informed
  /// term. Exactly the pre-SIMD behaviour.
  kUnit = 0,
  /// Predicates priced in simulated cycles of their *branching* form
  /// (compare + branch + Markov misprediction penalty); probes keep the
  /// unit-rule term, converted to the same cycle scale.
  kBranchCycles = 1,
  /// min(branching, branch-free) cycles per predicate; the optimizer also
  /// switches each predicate to its cheaper form (PipelineExecutor::
  /// SetForms), so low-selectivity predicates run branch-free.
  kSimdAware = 2,
};

/// \brief Driver configuration.
struct ProgressiveConfig {
  size_t vector_size = 65'536;
  /// Vectors between optimization attempts (the paper's ReopInt; its
  /// evaluation uses 10, 75 and 200).
  size_t reopt_interval = 10;
  EstimatorConfig estimator;
  /// Validate the vector after a reorder and revert on regression.
  bool validate_and_revert = true;
  /// Regression factor on cycles-per-input-tuple that triggers a revert.
  /// Per-vector costs drift naturally as the scan moves through the data
  /// (especially on clustered layouts), so the threshold leaves room for
  /// that drift; genuinely bad orders regress far beyond it.
  double revert_threshold = 1.15;
  /// Probe co-clusteredness threshold (Section 5.6).
  double co_cluster_threshold = 0.5;
  /// Relative instruction cost assumed per probe evaluation when ranking
  /// (base; the miss-informed component is added from samples).
  double probe_base_cost = 2.0;
  /// Every k-th optimization additionally explores a perturbed order to
  /// surface correlation effects (Section 4.5); 0 disables exploration.
  size_t explore_period = 0;
  /// Operator pricing rule (kUnit reproduces the pre-SIMD behaviour).
  /// The parallel coordinator degrades kSimdAware to kBranchCycles: form
  /// switches are not broadcast to workers yet (see ROADMAP.md).
  CostPricing pricing = CostPricing::kUnit;
};

/// \brief One evaluation-order (and/or predicate-form) change performed
/// during execution.
struct PeoChange {
  size_t vector_index = 0;
  std::vector<size_t> old_order;
  std::vector<size_t> new_order;
  /// Predicate forms by original operator index before/after the change
  /// (equal to each other unless pricing is kSimdAware; a change may be
  /// forms-only, with old_order == new_order).
  std::vector<PredicateForm> old_forms;
  std::vector<PredicateForm> new_forms;
  bool reverted = false;      ///< validation rolled it back
  bool exploration = false;   ///< came from the correlation explorer
};

/// \brief Outcome of a progressively optimized execution.
struct ProgressiveReport {
  DriveResult drive;
  std::vector<PeoChange> changes;
  size_t num_optimizations = 0;
  /// Last selectivity estimate, in the operator order current at that
  /// time (empty if never optimized).
  std::vector<double> last_estimate;
  std::vector<size_t> final_order;
};

// ---------------------------------------------------------------------------
// Shared decision core
// ---------------------------------------------------------------------------
// Used by both the single-threaded ProgressiveOptimizer and the parallel
// ParallelProgressiveCoordinator, so the two drivers cannot drift apart;
// exposed for tests.

/// \brief Runs the Section 4.2 learning algorithm on `sample` (one vector,
/// or a SampleMerger-merged window of same-order morsels) against the
/// current evaluation order of `exec`. Errors for inconsistent samples.
Result<SelectivityEstimate> EstimateOrderSelectivities(
    const PipelineExecutor& exec, const ProgressiveConfig& config,
    const VectorSample& sample);

/// \brief Ranks the operators of `exec`'s current order by cost-weighted
/// selectivity (ascending (s-1)/c; for unit costs this is the paper's
/// ascending-selectivity PEO rule; probe cost is informed by the Section
/// 5.5-5.6 sortedness detector on the sampled L3 misses). Under
/// kBranchCycles / kSimdAware pricing, predicate costs come from
/// PricePredicateForms on the simulated machine's CycleModel. Returns the
/// proposed order in original operator indices; when `forms_out` is
/// non-null it receives the per-operator form choice *by original
/// operator index* (cheapest form under kSimdAware, branching otherwise),
/// ready for PipelineExecutor::SetForms.
std::vector<size_t> RankOrderOperators(
    const PipelineExecutor& exec, const ProgressiveConfig& config,
    const VectorSample& sample, const std::vector<double>& selectivities,
    std::vector<PredicateForm>* forms_out = nullptr);

/// \brief Runs a pipeline to completion under progressive optimization.
class ProgressiveOptimizer {
 public:
  ProgressiveOptimizer(PipelineExecutor* executor, ProgressiveConfig config);

  /// Executes the whole table, re-optimizing on the configured cadence.
  ProgressiveReport Run();

  // Stepping interface, used by the workload driver (exec/workload_driver.h)
  // to interleave this query with others on a shared worker pool while
  // replaying exactly the Run() decision sequence: Begin() resets the
  // optimizer state, OnVector() consumes one per-vector sample (identical
  // to the hook Run() installs), and Finish() returns the report with the
  // caller-accumulated drive result filled in. Run() itself is implemented
  // on top of these three calls, so the paths cannot drift apart.

  /// Resets all optimizer state for a new execution.
  void Begin();

  /// Consumes the sample of the vector that just executed; may Reorder()
  /// the executor for subsequent vectors.
  void OnVector(const VectorSample& sample) { HandleVector(sample); }

  /// Finalizes the report. `drive` is the caller's accumulated result of
  /// the driven execution (VectorDriver::Run or the workload driver's
  /// per-vector stepping).
  ProgressiveReport Finish(DriveResult drive);

 private:
  struct PendingValidation {
    std::vector<size_t> old_order;
    std::vector<PredicateForm> old_forms;
    double old_cycles_per_tuple = 0;
    bool exploration = false;
  };

  void HandleVector(const VectorSample& sample);
  void Optimize(const VectorSample& sample);

  PipelineExecutor* executor_;
  ProgressiveConfig config_;
  ProgressiveReport report_;
  std::optional<PendingValidation> pending_;
  double last_cycles_per_tuple_ = 0;
  size_t optimization_count_ = 0;
  /// Hysteresis: an order (+ forms, under kSimdAware) that validation
  /// just rolled back is not re-proposed for `hysteresis_ttl_`
  /// optimization cycles, preventing estimate-noise oscillation
  /// (propose -> revert -> propose -> ...) while still allowing the
  /// order back in once conditions change.
  std::vector<size_t> recently_reverted_;
  std::vector<PredicateForm> recently_reverted_forms_;
  int hysteresis_ttl_ = 0;
};

/// \brief Outcome of a sharded progressively optimized execution.
struct ParallelProgressiveReport {
  ParallelDriveResult drive;
  /// PEO trace; vector_index holds the morsel index ending the decision
  /// window that triggered the change.
  std::vector<PeoChange> changes;
  size_t num_optimizations = 0;
  std::vector<double> last_estimate;
  std::vector<size_t> final_order;
  /// Morsels excluded from decision windows because they were already in
  /// flight (under the previous order) when a reorder was broadcast.
  size_t stale_morsels = 0;
};

/// \brief The shared optimizer of a sharded execution: one coordinator
/// receives every worker's morsel samples (serialized by ParallelDriver's
/// hook lock), merges them into windows of `reopt_interval` same-order
/// morsels, and runs the estimate->rank->validate cycle on each window.
///
/// Decisions are expressed against a *control* executor -- a non-executing
/// pipeline compiled over the same query that provides operator metadata
/// and carries the authoritative current order -- and returned to the
/// driver for broadcast; workers apply them at morsel boundaries.
/// The coordinator's broadcast count mirrors ParallelDriver's order
/// version (both start at 0 and advance once per returned order), which is
/// how MorselRecord::order_version identifies stale-order morsels.
///
/// Validation mirrors the single-threaded driver at window granularity:
/// the first complete window executed under a new order is compared, in
/// cycles per tuple, against the window that preceded the change, and the
/// old order is re-established on regression (Section 4.4).
class ParallelProgressiveCoordinator {
 public:
  ParallelProgressiveCoordinator(PipelineExecutor* control,
                                 ProgressiveConfig config);

  /// ParallelDriver::MorselHook entry point. Returns an order to broadcast
  /// when a window triggers a reorder (or a validation revert).
  std::optional<std::vector<size_t>> OnMorsel(const MorselRecord& record);

  /// Exports the PEO trace into `report` (call after the drive completes;
  /// `drive` is filled by the caller).
  void FillReport(ParallelProgressiveReport* report) const;

 private:
  std::optional<std::vector<size_t>> DecideOnWindow(
      const VectorSample& merged);

  PipelineExecutor* control_;
  ProgressiveConfig config_;
  SampleMerger window_;
  uint64_t version_ = 0;  ///< broadcasts issued; mirrors the driver's version
  std::vector<PeoChange> changes_;
  size_t num_optimizations_ = 0;
  std::vector<double> last_estimate_;
  size_t stale_morsels_ = 0;
  // Validation + hysteresis state, mirroring ProgressiveOptimizer.
  struct PendingValidation {
    std::vector<size_t> old_order;
    double old_cycles_per_tuple = 0;
    bool exploration = false;
  };
  std::optional<PendingValidation> pending_;
  double last_cycles_per_tuple_ = 0;
  size_t optimization_count_ = 0;
  std::vector<size_t> recently_reverted_;
  int hysteresis_ttl_ = 0;
};

/// \brief Convenience: run `executor` without any optimization (the
/// paper's "common execution pattern" base line), with the same vector
/// size so run-times are comparable.
DriveResult RunBaseline(PipelineExecutor* executor, size_t vector_size);

}  // namespace nipo
