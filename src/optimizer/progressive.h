#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/vector_driver.h"
#include "optimizer/estimator.h"
#include "optimizer/sortedness.h"

/// \file progressive.h
/// The progressive optimization driver (paper Section 4.4, Figure 10).
///
/// Execution proceeds vector by vector. Every `reopt_interval` vectors the
/// driver takes the latest counter sample, runs the Section 4.2 learning
/// algorithm to estimate the selectivity of every operator in the current
/// evaluation order, ranks the operators (ascending selectivity for plain
/// predicates; cost-weighted rank when expensive predicates or join
/// probes participate, with probe cost informed by the Section 5.5-5.6
/// sortedness detector), and -- if the ranking disagrees with the current
/// order -- switches the order for subsequent vectors (the JIT-recompile /
/// primitive-rechain step). The next vector *validates* the switch: if
/// its cycles-per-tuple deteriorate, the old order is re-established
/// (Section 4.4's "if they deteriorate, the old order is reestablished").

namespace nipo {

/// \brief Driver configuration.
struct ProgressiveConfig {
  size_t vector_size = 65'536;
  /// Vectors between optimization attempts (the paper's ReopInt; its
  /// evaluation uses 10, 75 and 200).
  size_t reopt_interval = 10;
  EstimatorConfig estimator;
  /// Validate the vector after a reorder and revert on regression.
  bool validate_and_revert = true;
  /// Regression factor on cycles-per-input-tuple that triggers a revert.
  /// Per-vector costs drift naturally as the scan moves through the data
  /// (especially on clustered layouts), so the threshold leaves room for
  /// that drift; genuinely bad orders regress far beyond it.
  double revert_threshold = 1.15;
  /// Probe co-clusteredness threshold (Section 5.6).
  double co_cluster_threshold = 0.5;
  /// Relative instruction cost assumed per probe evaluation when ranking
  /// (base; the miss-informed component is added from samples).
  double probe_base_cost = 2.0;
  /// Every k-th optimization additionally explores a perturbed order to
  /// surface correlation effects (Section 4.5); 0 disables exploration.
  size_t explore_period = 0;
};

/// \brief One evaluation-order change performed during execution.
struct PeoChange {
  size_t vector_index = 0;
  std::vector<size_t> old_order;
  std::vector<size_t> new_order;
  bool reverted = false;      ///< validation rolled it back
  bool exploration = false;   ///< came from the correlation explorer
};

/// \brief Outcome of a progressively optimized execution.
struct ProgressiveReport {
  DriveResult drive;
  std::vector<PeoChange> changes;
  size_t num_optimizations = 0;
  /// Last selectivity estimate, in the operator order current at that
  /// time (empty if never optimized).
  std::vector<double> last_estimate;
  std::vector<size_t> final_order;
};

/// \brief Runs a pipeline to completion under progressive optimization.
class ProgressiveOptimizer {
 public:
  ProgressiveOptimizer(PipelineExecutor* executor, ProgressiveConfig config);

  /// Executes the whole table, re-optimizing on the configured cadence.
  ProgressiveReport Run();

 private:
  struct PendingValidation {
    std::vector<size_t> old_order;
    double old_cycles_per_tuple = 0;
    bool exploration = false;
  };

  void HandleVector(const VectorSample& sample);
  void Optimize(const VectorSample& sample);
  /// Ranks operators of the current order given estimated selectivities;
  /// returns the proposed new order in original indices.
  std::vector<size_t> RankOperators(const VectorSample& sample,
                                    const std::vector<double>& selectivities);
  ScanShape CurrentShape(double num_tuples) const;

  PipelineExecutor* executor_;
  ProgressiveConfig config_;
  ProgressiveReport report_;
  std::optional<PendingValidation> pending_;
  double last_cycles_per_tuple_ = 0;
  size_t optimization_count_ = 0;
  bool has_probe_ = false;
  /// Hysteresis: an order that validation just rolled back is not
  /// re-proposed for `hysteresis_ttl_` optimization cycles, preventing
  /// estimate-noise oscillation (propose -> revert -> propose -> ...)
  /// while still allowing the order back in once conditions change.
  std::vector<size_t> recently_reverted_;
  int hysteresis_ttl_ = 0;
};

/// \brief Convenience: run `executor` without any optimization (the
/// paper's "common execution pattern" base line), with the same vector
/// size so run-times are comparable.
DriveResult RunBaseline(PipelineExecutor* executor, size_t vector_size);

}  // namespace nipo
