#include "optimizer/statistics.h"

#include <algorithm>
#include <cmath>

/// \file statistics.cc
/// Column statistics collection (min/max, equi-width histograms, sampled
/// distinct counts) and histogram-based selectivity estimation for the
/// static optimizer, with typed access dispatch over column types; plus
/// the SampleMerger window accumulator used by the parallel progressive
/// coordinator (DESIGN.md "Parallel execution").

namespace nipo {

namespace {

double ValueAt(const ColumnBase& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      return static_cast<double>(
          (*static_cast<const Column<int32_t>*>(&column))[row]);
    case DataType::kInt64:
      return static_cast<double>(
          (*static_cast<const Column<int64_t>*>(&column))[row]);
    case DataType::kDouble:
      return (*static_cast<const Column<double>*>(&column))[row];
  }
  return 0.0;
}

}  // namespace

Result<ColumnStatistics> ColumnStatistics::Build(const ColumnBase& column,
                                                 size_t num_buckets) {
  return BuildFromPrefix(column, column.size(), num_buckets);
}

Result<ColumnStatistics> ColumnStatistics::BuildFromPrefix(
    const ColumnBase& column, size_t sample_size, size_t num_buckets) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  const size_t n = std::min(sample_size, column.size());
  if (n == 0) {
    return Status::InvalidArgument("cannot summarize an empty column");
  }
  ColumnStatistics stats;
  stats.min_ = ValueAt(column, 0);
  stats.max_ = stats.min_;
  for (size_t i = 1; i < n; ++i) {
    const double v = ValueAt(column, i);
    stats.min_ = std::min(stats.min_, v);
    stats.max_ = std::max(stats.max_, v);
  }
  stats.buckets_.assign(num_buckets, 0);
  const double width =
      (stats.max_ - stats.min_) / static_cast<double>(num_buckets);
  for (size_t i = 0; i < n; ++i) {
    const double v = ValueAt(column, i);
    size_t bucket =
        width > 0
            ? static_cast<size_t>((v - stats.min_) / width)
            : 0;
    bucket = std::min(bucket, num_buckets - 1);
    ++stats.buckets_[bucket];
  }
  stats.row_count_ = n;
  return stats;
}

double ColumnStatistics::BucketWidth() const {
  return (max_ - min_) / static_cast<double>(buckets_.size());
}

double ColumnStatistics::FractionBelow(double constant) const {
  if (row_count_ == 0) return 0.0;
  if (constant <= min_) return 0.0;
  if (constant > max_) return 1.0;
  const double width = BucketWidth();
  if (width <= 0) {
    // Constant column: everything sits at min_ == max_.
    return constant > min_ ? 1.0 : 0.0;
  }
  const double position = (constant - min_) / width;
  const size_t full_buckets = std::min(
      buckets_.size(), static_cast<size_t>(std::floor(position)));
  uint64_t below = 0;
  for (size_t i = 0; i < full_buckets; ++i) below += buckets_[i];
  double fraction = static_cast<double>(below);
  if (full_buckets < buckets_.size()) {
    // Linear interpolation inside the boundary bucket.
    const double inside = position - static_cast<double>(full_buckets);
    fraction += inside * static_cast<double>(buckets_[full_buckets]);
  }
  return fraction / static_cast<double>(row_count_);
}

double ColumnStatistics::EstimateSelectivity(CompareOp op,
                                             double constant) const {
  // Treat the domain as effectively continuous; equality gets one
  // bucket-resolution sliver. All results clamped to [0, 1].
  double sel = 0.0;
  switch (op) {
    case CompareOp::kLt:
      sel = FractionBelow(constant);
      break;
    case CompareOp::kLe:
      // Le = Lt plus the mass of the boundary value itself, approximated
      // at bucket resolution.
      sel = FractionBelow(constant) +
            EstimateRangeFraction(constant, constant);
      break;
    case CompareOp::kGt:
      sel = 1.0 - FractionBelow(constant) -
            EstimateRangeFraction(constant, constant);
      break;
    case CompareOp::kGe:
      sel = 1.0 - FractionBelow(constant);
      break;
    case CompareOp::kEq:
      sel = EstimateRangeFraction(constant, constant);
      break;
    case CompareOp::kNe:
      sel = 1.0 - EstimateRangeFraction(constant, constant);
      break;
  }
  return std::clamp(sel, 0.0, 1.0);
}

double ColumnStatistics::EstimateRangeFraction(double lo, double hi) const {
  if (hi < lo || row_count_ == 0) return 0.0;
  const double width = BucketWidth();
  if (width <= 0) {
    return (lo <= min_ && min_ <= hi) ? 1.0 : 0.0;
  }
  // A point (or sub-bucket) range gets the local bucket density over one
  // value-sliver of one bucket-width resolution.
  const double span = std::max(hi - lo, width / 64.0);
  const double from = FractionBelow(lo);
  const double to = FractionBelow(lo + span);
  return std::clamp(to - from, 0.0, 1.0);
}

Result<TableStatistics> TableStatistics::Build(const Table& table,
                                               size_t num_buckets,
                                               size_t sample_size) {
  TableStatistics stats;
  stats.row_count_ = table.num_rows();
  const size_t effective_sample =
      sample_size == 0 ? table.num_rows() : sample_size;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnBase* column = table.column(c);
    NIPO_ASSIGN_OR_RETURN(
        ColumnStatistics col_stats,
        ColumnStatistics::BuildFromPrefix(*column, effective_sample,
                                          num_buckets));
    stats.columns_.emplace_back(column->name(), std::move(col_stats));
  }
  return stats;
}

Result<const ColumnStatistics*> TableStatistics::ForColumn(
    const std::string& name) const {
  for (const auto& [col_name, col_stats] : columns_) {
    if (col_name == name) return &col_stats;
  }
  return Status::NotFound("no statistics for column '" + name + "'");
}

double TableStatistics::EstimateOperatorSelectivity(const OperatorSpec& op,
                                                    double fallback) const {
  if (op.kind != OperatorSpec::Kind::kPredicate) {
    return fallback;  // probe selectivity lives in the dimension table
  }
  auto stats = ForColumn(op.predicate.column);
  if (!stats.ok()) return fallback;
  return stats.ValueOrDie()->EstimateSelectivity(op.predicate.op,
                                                 op.predicate.value);
}

void SampleMerger::Add(const VectorSample& sample) {
  merged_.vector_index = std::max(merged_.vector_index, sample.vector_index);
  merged_.result.input_tuples += sample.result.input_tuples;
  merged_.result.qualifying_tuples += sample.result.qualifying_tuples;
  merged_.result.zone_skipped += sample.result.zone_skipped;
  merged_.result.aggregate += sample.result.aggregate;
  merged_.counters += sample.counters;
  ++count_;
}

void SampleMerger::Reset() {
  merged_ = VectorSample{};
  count_ = 0;
}

}  // namespace nipo
