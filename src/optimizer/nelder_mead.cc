#include "optimizer/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

/// \file nelder_mead.cc
/// Box-constrained Nelder-Mead downhill simplex: reflection, expansion,
/// contraction and shrink steps with every candidate clamped to the
/// feasible box, terminating on absolute tolerance or iteration budget.

namespace nipo {

namespace {

void ClampToBox(std::vector<double>* x, const std::vector<double>& lo,
                const std::vector<double>& hi) {
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], lo[i], hi[i]);
  }
}

}  // namespace

Result<NelderMeadResult> NelderMeadMinimize(const ObjectiveFn& objective,
                                            std::vector<double> start,
                                            const std::vector<double>& lower,
                                            const std::vector<double>& upper,
                                            const NelderMeadOptions& options) {
  const size_t dim = start.size();
  if (dim == 0) {
    return Status::InvalidArgument("empty start point");
  }
  if (lower.size() != dim || upper.size() != dim) {
    return Status::InvalidArgument("bound dimensionality mismatch");
  }
  for (size_t i = 0; i < dim; ++i) {
    if (lower[i] > upper[i]) {
      return Status::InvalidArgument("empty box: lower > upper");
    }
  }
  if (!objective) {
    return Status::InvalidArgument("null objective");
  }

  ClampToBox(&start, lower, upper);

  // Build the initial simplex: start plus one displaced vertex per axis.
  std::vector<std::vector<double>> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back(start);
  for (size_t i = 0; i < dim; ++i) {
    std::vector<double> v = start;
    const double extent = upper[i] - lower[i];
    double step = options.initial_step * extent;
    if (step == 0.0) step = 1e-9;  // degenerate (pinned) dimension
    // Step away from the nearer bound so the vertex stays distinct.
    if (v[i] + step > upper[i]) {
      v[i] -= step;
    } else {
      v[i] += step;
    }
    ClampToBox(&v, lower, upper);
    simplex.push_back(std::move(v));
  }

  std::vector<double> values(simplex.size());
  for (size_t i = 0; i < simplex.size(); ++i) {
    values[i] = objective(simplex[i]);
  }

  NelderMeadResult result;
  std::vector<size_t> rank(simplex.size());
  std::vector<double> centroid(dim), candidate(dim);

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    std::iota(rank.begin(), rank.end(), size_t{0});
    std::sort(rank.begin(), rank.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = rank.front();
    const size_t worst = rank.back();
    const size_t second_worst = rank[rank.size() - 2];

    if (values[worst] - values[best] < options.abs_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all vertices but the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (size_t r = 0; r + 1 < rank.size(); ++r) {
      const std::vector<double>& v = simplex[rank[r]];
      for (size_t i = 0; i < dim; ++i) centroid[i] += v[i];
    }
    for (size_t i = 0; i < dim; ++i) {
      centroid[i] /= static_cast<double>(dim);
    }

    auto blend = [&](double coeff, const std::vector<double>& away) {
      for (size_t i = 0; i < dim; ++i) {
        candidate[i] = centroid[i] + coeff * (centroid[i] - away[i]);
      }
      ClampToBox(&candidate, lower, upper);
    };

    // Reflect.
    blend(options.reflection, simplex[worst]);
    const double reflected = objective(candidate);
    if (reflected < values[best]) {
      // Expand.
      std::vector<double> reflected_point = candidate;
      blend(options.expansion, simplex[worst]);
      const double expanded = objective(candidate);
      if (expanded < reflected) {
        simplex[worst] = candidate;
        values[worst] = expanded;
      } else {
        simplex[worst] = std::move(reflected_point);
        values[worst] = reflected;
      }
      continue;
    }
    if (reflected < values[second_worst]) {
      simplex[worst] = candidate;
      values[worst] = reflected;
      continue;
    }
    // Contract (toward the worst vertex).
    blend(-options.contraction, simplex[worst]);
    const double contracted = objective(candidate);
    if (contracted < values[worst]) {
      simplex[worst] = candidate;
      values[worst] = contracted;
      continue;
    }
    // Shrink everything toward the best vertex.
    for (size_t r = 1; r < rank.size(); ++r) {
      std::vector<double>& v = simplex[rank[r]];
      for (size_t i = 0; i < dim; ++i) {
        v[i] = simplex[best][i] +
               options.shrink * (v[i] - simplex[best][i]);
      }
      ClampToBox(&v, lower, upper);
      values[rank[r]] = objective(v);
    }
  }

  const size_t best_index = static_cast<size_t>(std::distance(
      values.begin(), std::min_element(values.begin(), values.end())));
  result.x = simplex[best_index];
  result.value = values[best_index];
  result.iterations = iter;
  return result;
}

}  // namespace nipo
