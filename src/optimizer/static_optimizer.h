#pragma once

#include <vector>

#include "exec/operators.h"
#include "optimizer/statistics.h"

/// \file static_optimizer.h
/// The compile-time optimizer baseline: orders a predicate chain once,
/// before execution, from histogram-based selectivity estimates (the
/// "high quality decisions at query compilation time" the paper argues
/// progressive optimization renders unnecessary, Section 4.5).
///
/// It is intentionally a faithful, competent classic optimizer -- rank
/// ordering by (selectivity - 1) / cost -- so that experiments comparing
/// it with progressive optimization measure the *information* gap
/// (stale/sampled statistics, skew, correlation, mid-data distribution
/// changes), not an implementation handicap.

namespace nipo {

/// \brief One ranked operator with its static estimate.
struct StaticRanking {
  size_t original_index = 0;
  double estimated_selectivity = 1.0;
  double cost = 1.0;
  double rank = 0.0;  ///< (selectivity - 1) / cost; ascending = earlier
};

/// \brief The chosen order plus per-operator detail for inspection.
struct StaticPlan {
  std::vector<size_t> order;  ///< original indices, evaluation order
  std::vector<StaticRanking> rankings;  ///< sorted by rank
};

/// \brief Orders `ops` by the classic rank rule using `stats` for
/// selectivities. Probes use `probe_selectivity_fallback` and
/// `probe_cost` (the static optimizer cannot see probe locality -- that
/// is exactly the paper's Section 5.5-5.6 point).
StaticPlan PlanStatically(const std::vector<OperatorSpec>& ops,
                          const TableStatistics& stats,
                          double probe_selectivity_fallback = 0.5,
                          double probe_cost = 2.0);

}  // namespace nipo
