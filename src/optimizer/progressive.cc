#include "optimizer/progressive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

/// \file progressive.cc
/// The progressive optimization driver loop: per-interval counter
/// sampling, selectivity learning, operator re-ranking (cost-weighted
/// when probes or expensive predicates participate) and in-flight
/// evaluation-order changes, recorded as a PEO trace. The decision core
/// (estimate + rank) is shared between the single-threaded driver and the
/// parallel coordinator, which runs the same cycle on merged morsel
/// windows and broadcasts its decisions to all workers (DESIGN.md
/// "Parallel execution").

namespace nipo {

namespace {

bool PipelineHasProbe(const PipelineExecutor& exec) {
  for (size_t i = 0; i < exec.num_operators(); ++i) {
    if (exec.OperatorAt(i).kind == OperatorSpec::Kind::kFkProbe) {
      return true;
    }
  }
  return false;
}

ScanShape ShapeForOrder(const PipelineExecutor& exec, double num_tuples) {
  ScanShape shape;
  shape.num_tuples = num_tuples;
  shape.predictor = exec.pmu()->config().predictor;
  shape.cache.line_size = exec.pmu()->config().l1.line_size;
  // Over plain storage the historical fixed widths (4-byte predicates,
  // 8+4-byte Q6-style payloads) are kept bit-for-bit: the estimator only
  // needs the same shape for sampling and prediction. Once any column is
  // encoded the real per-column scan widths matter -- a packed column
  // streams fewer bytes per value -- so the shape switches to the
  // executor's actual storage stats.
  const bool encoded = exec.AnyEncodedColumn();
  for (size_t pos = 0; pos < exec.num_operators(); ++pos) {
    // A probe behaves like a predicate on its (int32) FK column for branch
    // purposes; its dimension-side cache traffic is handled separately.
    if (encoded) {
      const ColumnScanStats stats = exec.ColumnStatsAt(pos);
      shape.predicate_widths.push_back(stats.value_width);
      shape.predicate_packed_bytes.push_back(
          stats.encoded ? stats.scan_bytes_per_value : 0.0);
    } else {
      shape.predicate_widths.push_back(4);
    }
    // Predicates currently running branch-free book no branch events; the
    // counter prediction must mirror that or the estimator would chase
    // branches the executor never produces.
    shape.branch_free.push_back(exec.FormAt(pos) ==
                                PredicateForm::kBranchFree);
  }
  if (encoded) {
    for (size_t i = 0; i < exec.num_payloads(); ++i) {
      const ColumnScanStats stats = exec.PayloadStatsAt(i);
      shape.payload_widths.push_back(stats.value_width);
      shape.payload_packed_bytes.push_back(
          stats.encoded ? stats.scan_bytes_per_value : 0.0);
    }
  } else {
    shape.payload_widths = {8, 4};
  }
  return shape;
}

}  // namespace

Result<SelectivityEstimate> EstimateOrderSelectivities(
    const PipelineExecutor& exec, const ProgressiveConfig& config,
    const VectorSample& sample) {
  CounterSample cs;
  // Tuples pruned by zone maps never reached per-tuple work, so the
  // sampled branch/cache counters describe only the surviving tuples --
  // feed the estimator that population or it would infer selectivities
  // against work that never happened.
  cs.tuples_in = static_cast<double>(sample.result.input_tuples -
                                     sample.result.zone_skipped);
  cs.tuples_out = static_cast<double>(sample.result.qualifying_tuples);
  cs.counters.branches_not_taken =
      static_cast<double>(sample.counters.branches_not_taken);
  cs.counters.taken_mp =
      static_cast<double>(sample.counters.taken_mispredictions);
  cs.counters.not_taken_mp =
      static_cast<double>(sample.counters.not_taken_mispredictions);
  cs.counters.l3_accesses = static_cast<double>(sample.counters.l3_accesses);

  EstimatorConfig est = config.estimator;
  if (PipelineHasProbe(exec)) {
    // The scan cache model does not cover dimension-side traffic; rely on
    // the (cache-independent) branch counters for selectivities.
    est.counter_set = CounterSet::kBranchesOnly;
  }
  const ScanShape shape = ShapeForOrder(exec, cs.tuples_in);
  return EstimateSelectivities(shape, cs, est);
}

std::vector<size_t> RankOrderOperators(
    const PipelineExecutor& exec, const ProgressiveConfig& config,
    const VectorSample& sample, const std::vector<double>& selectivities,
    std::vector<PredicateForm>* forms_out) {
  const size_t n = exec.num_operators();
  NIPO_CHECK(selectivities.size() == n);
  const HwConfig& hw = exec.pmu()->config();
  // Cycle price of a plain, perfectly predicted branching predicate: the
  // unit the probe term is expressed in, so kBranchCycles/kSimdAware keep
  // the probe-vs-plain-predicate ratios of the unit rule.
  const double unit_cycles =
      LoopCostModel::kCompareInstructions *
          hw.cycle_model.cycles_per_instruction +
      hw.cycle_model.branch_cycles;

  // Attribute sampled L3 misses to probes for cost weighting. With the
  // (common) single-probe pipelines of the evaluation this is exact
  // enough; multiple probes share the attribution equally.
  size_t probe_count = 0;
  for (size_t pos = 0; pos < n; ++pos) {
    if (exec.OperatorAt(pos).kind == OperatorSpec::Kind::kFkProbe) {
      ++probe_count;
    }
  }

  // Misses attributable to probes: the sampled total minus what the fact-
  // side scan is predicted to cost (cold columns miss once per fetched
  // line, so scan misses ~ scan accesses). Zone-skipped tuples did no
  // per-tuple work, so they are excluded from the scanned population.
  const double surviving_tuples = static_cast<double>(
      sample.result.input_tuples - sample.result.zone_skipped);
  const ScanShape shape = ShapeForOrder(exec, surviving_tuples);
  const double scan_accesses =
      PredictCounters(shape, selectivities).l3_accesses;
  const double probe_misses = std::max(
      0.0, static_cast<double>(sample.counters.l3_misses) - scan_accesses);

  std::vector<double> cost(n, 1.0);
  std::vector<PredicateForm> form_at(n, PredicateForm::kBranching);
  double reach = 1.0;  // fraction of tuples reaching this position
  for (size_t pos = 0; pos < n; ++pos) {
    const OperatorSpec& op = exec.OperatorAt(pos);
    if (op.kind == OperatorSpec::Kind::kPredicate) {
      if (config.pricing == CostPricing::kUnit) {
        cost[pos] = 1.0 + op.predicate.extra_instructions /
                              LoopCostModel::kCompareInstructions / 3.0;
      } else {
        const PredicateFormCosts prices = PricePredicateForms(
            hw.cycle_model, hw.predictor,
            std::clamp(selectivities[pos], 0.0, 1.0),
            LoopCostModel::kCompareInstructions,
            LoopCostModel::kBranchFreeInstructions,
            op.predicate.extra_instructions);
        if (config.pricing == CostPricing::kSimdAware &&
            prices.branch_free_cheaper()) {
          cost[pos] = prices.branch_free;
          form_at[pos] = PredicateForm::kBranchFree;
        } else {
          // Ties stay branching: the branching form feeds the branch
          // counters the estimator learns from.
          cost[pos] = prices.branching;
        }
      }
      // Zone-map-prunable predicates are cheaper than their per-tuple
      // price suggests when evaluated first: every block they refute is
      // skipped wholesale before any operator runs. Discount their cost
      // by the prunable fraction (floored so a fully prunable predicate
      // still carries a nonzero price); plain columns have no zone maps
      // and keep their exact legacy cost.
      const double prunable = exec.ZonePrunableFractionAt(pos);
      if (prunable > 0.0) {
        cost[pos] *= std::max(0.05, 1.0 - prunable);
      }
    } else {
      // Probe cost: base plus a miss-informed component (Section 5.5-5.6).
      ProbeObservation obs;
      obs.relation.num_tuples =
          static_cast<double>(op.probe.dimension->num_rows());
      obs.relation.tuple_width = 8.0;
      obs.num_probes = reach * surviving_tuples;
      obs.sampled_l3_misses =
          probe_misses / static_cast<double>(std::max<size_t>(1, probe_count));
      const SortednessVerdict verdict =
          JudgeSortedness(hw.l3, obs, config.co_cluster_threshold);
      cost[pos] = config.probe_base_cost + 20.0 * verdict.score;
      if (config.pricing != CostPricing::kUnit) cost[pos] *= unit_cycles;
    }
    reach *= std::clamp(selectivities[pos], 0.0, 1.0);
  }

  // Classic cost-aware filter ordering: ascending rank (s - 1) / c; for
  // unit costs this degenerates to ascending selectivity, the paper's
  // PEO rule.
  std::vector<size_t> positions(n);
  std::iota(positions.begin(), positions.end(), size_t{0});
  std::vector<double> rank(n);
  for (size_t pos = 0; pos < n; ++pos) {
    rank[pos] = (selectivities[pos] - 1.0) / std::max(cost[pos], 1e-9);
  }
  std::stable_sort(positions.begin(), positions.end(),
                   [&](size_t a, size_t b) { return rank[a] < rank[b]; });

  // Express as original operator indices.
  const std::vector<size_t>& current = exec.current_order();
  std::vector<size_t> proposed;
  proposed.reserve(n);
  for (size_t pos : positions) proposed.push_back(current[pos]);
  if (forms_out != nullptr) {
    forms_out->assign(n, PredicateForm::kBranching);
    for (size_t pos = 0; pos < n; ++pos) {
      (*forms_out)[current[pos]] = form_at[pos];
    }
  }
  return proposed;
}

ProgressiveOptimizer::ProgressiveOptimizer(PipelineExecutor* executor,
                                           ProgressiveConfig config)
    : executor_(executor), config_(config) {
  NIPO_CHECK(executor_ != nullptr);
  NIPO_CHECK(config_.reopt_interval > 0);
}

void ProgressiveOptimizer::Optimize(const VectorSample& sample) {
  ++optimization_count_;
  ++report_.num_optimizations;
  if (sample.result.input_tuples == 0) return;

  auto estimate = EstimateOrderSelectivities(*executor_, config_, sample);
  if (!estimate.ok()) {
    return;  // inconsistent sample (e.g. empty vector); skip this cycle
  }
  report_.last_estimate = estimate.ValueOrDie().selectivities;

  const bool simd_aware = config_.pricing == CostPricing::kSimdAware;
  std::vector<PredicateForm> proposed_forms;
  std::vector<size_t> proposed = RankOrderOperators(
      *executor_, config_, sample, estimate.ValueOrDie().selectivities,
      simd_aware ? &proposed_forms : nullptr);
  const bool explore =
      config_.explore_period > 0 &&
      optimization_count_ % config_.explore_period == 0 && proposed.size() > 1;
  if (explore && proposed == executor_->current_order()) {
    // Correlation probe (Section 4.5): try the nearest alternative order
    // to look at data the current order never touches.
    std::swap(proposed[0], proposed[1]);
  }
  const std::vector<PredicateForm> current_forms = executor_->forms();
  const bool order_changed = proposed != executor_->current_order();
  const bool forms_changed = simd_aware && proposed_forms != current_forms;
  if (!order_changed && !forms_changed) {
    return;
  }
  if (hysteresis_ttl_ > 0) {
    --hysteresis_ttl_;
    const bool same_as_reverted =
        proposed == recently_reverted_ &&
        (!simd_aware || proposed_forms == recently_reverted_forms_);
    if (same_as_reverted) {
      return;  // hysteresis: validation just rejected this configuration
    }
  }
  PendingValidation pending;
  pending.old_order = executor_->current_order();
  pending.old_forms = current_forms;
  pending.old_cycles_per_tuple = last_cycles_per_tuple_;
  pending.exploration = explore;
  if (order_changed) NIPO_CHECK(executor_->Reorder(proposed).ok());
  if (forms_changed) NIPO_CHECK(executor_->SetForms(proposed_forms).ok());
  PeoChange change;
  change.vector_index = sample.vector_index;
  change.old_order = pending.old_order;
  change.new_order = proposed;
  change.old_forms = current_forms;
  change.new_forms = forms_changed ? proposed_forms : current_forms;
  change.exploration = explore;
  report_.changes.push_back(change);
  if (config_.validate_and_revert) {
    pending_ = std::move(pending);
  }
}

void ProgressiveOptimizer::HandleVector(const VectorSample& sample) {
  const double tuples = std::max<double>(
      1.0, static_cast<double>(sample.result.input_tuples));
  const double cycles_per_tuple =
      static_cast<double>(sample.counters.cycles) / tuples;

  if (pending_.has_value()) {
    // This vector ran under the new order: validate it.
    if (pending_->old_cycles_per_tuple > 0 &&
        cycles_per_tuple >
            pending_->old_cycles_per_tuple * config_.revert_threshold) {
      recently_reverted_ = executor_->current_order();
      recently_reverted_forms_ = executor_->forms();
      hysteresis_ttl_ = 1;  // skip this order for one optimization cycle
      NIPO_CHECK(executor_->Reorder(pending_->old_order).ok());
      if (!pending_->old_forms.empty()) {
        NIPO_CHECK(executor_->SetForms(pending_->old_forms).ok());
      }
      report_.changes.back().reverted = true;
    } else {
      hysteresis_ttl_ = 0;  // a change survived; reopen the space
    }
    pending_.reset();
  } else if ((sample.vector_index + 1) % config_.reopt_interval == 0) {
    Optimize(sample);
  }
  last_cycles_per_tuple_ = cycles_per_tuple;
}

void ProgressiveOptimizer::Begin() {
  report_ = ProgressiveReport{};
  pending_.reset();
  last_cycles_per_tuple_ = 0;
  optimization_count_ = 0;
  recently_reverted_.clear();
  recently_reverted_forms_.clear();
  hysteresis_ttl_ = 0;
}

ProgressiveReport ProgressiveOptimizer::Finish(DriveResult drive) {
  report_.drive = std::move(drive);
  report_.final_order = executor_->current_order();
  return std::move(report_);
}

ProgressiveReport ProgressiveOptimizer::Run() {
  Begin();
  VectorDriver driver(executor_, config_.vector_size);
  return Finish(
      driver.Run([this](const VectorSample& sample) { HandleVector(sample); }));
}

ParallelProgressiveCoordinator::ParallelProgressiveCoordinator(
    PipelineExecutor* control, ProgressiveConfig config)
    : control_(control), config_(config) {
  NIPO_CHECK(control_ != nullptr);
  NIPO_CHECK(config_.reopt_interval > 0);
  if (config_.pricing == CostPricing::kSimdAware) {
    // Form switches are not broadcast to workers yet (the morsel protocol
    // carries orders only; see ROADMAP.md): keep cycle-accurate pricing
    // but leave every predicate in its branching form.
    config_.pricing = CostPricing::kBranchCycles;
  }
}

std::optional<std::vector<size_t>> ParallelProgressiveCoordinator::OnMorsel(
    const MorselRecord& record) {
  if (record.order_version != version_) {
    // The morsel was in flight (under the previous order) when a broadcast
    // happened; mixing its counters into the window would hand the
    // estimator a sample spanning two orders. Its result still counts in
    // the driver's merge -- only the decision window excludes it.
    ++stale_morsels_;
    return std::nullopt;
  }
  window_.Add(record.sample);
  if (window_.count() < config_.reopt_interval) return std::nullopt;
  const VectorSample merged = window_.merged();
  window_.Reset();
  return DecideOnWindow(merged);
}

std::optional<std::vector<size_t>>
ParallelProgressiveCoordinator::DecideOnWindow(const VectorSample& merged) {
  const double tuples = std::max<double>(
      1.0, static_cast<double>(merged.result.input_tuples));
  const double cycles_per_tuple =
      static_cast<double>(merged.counters.cycles) / tuples;

  if (pending_.has_value()) {
    // This window ran entirely under the new order: validate it.
    std::optional<std::vector<size_t>> broadcast;
    if (pending_->old_cycles_per_tuple > 0 &&
        cycles_per_tuple >
            pending_->old_cycles_per_tuple * config_.revert_threshold) {
      recently_reverted_ = control_->current_order();
      hysteresis_ttl_ = 1;  // skip this order for one optimization cycle
      NIPO_CHECK(control_->Reorder(pending_->old_order).ok());
      ++version_;
      changes_.back().reverted = true;
      broadcast = control_->current_order();  // the revert is a broadcast too
    } else {
      hysteresis_ttl_ = 0;  // a change survived; reopen the space
    }
    pending_.reset();
    last_cycles_per_tuple_ = cycles_per_tuple;
    return broadcast;
  }

  ++optimization_count_;
  ++num_optimizations_;
  std::optional<std::vector<size_t>> broadcast;
  if (merged.result.input_tuples > 0) {
    auto estimate = EstimateOrderSelectivities(*control_, config_, merged);
    if (estimate.ok()) {
      last_estimate_ = estimate.ValueOrDie().selectivities;
      std::vector<size_t> proposed = RankOrderOperators(
          *control_, config_, merged, estimate.ValueOrDie().selectivities);
      const bool explore = config_.explore_period > 0 &&
                           optimization_count_ % config_.explore_period == 0 &&
                           proposed.size() > 1;
      if (explore && proposed == control_->current_order()) {
        std::swap(proposed[0], proposed[1]);
      }
      bool blocked = proposed == control_->current_order();
      if (!blocked && hysteresis_ttl_ > 0) {
        --hysteresis_ttl_;
        if (proposed == recently_reverted_) blocked = true;
      }
      if (!blocked) {
        PendingValidation pending;
        pending.old_order = control_->current_order();
        pending.old_cycles_per_tuple = last_cycles_per_tuple_;
        pending.exploration = explore;
        NIPO_CHECK(control_->Reorder(proposed).ok());
        ++version_;
        PeoChange change;
        change.vector_index = merged.vector_index;
        change.old_order = pending.old_order;
        change.new_order = proposed;
        change.exploration = explore;
        changes_.push_back(change);
        if (config_.validate_and_revert) pending_ = std::move(pending);
        broadcast = control_->current_order();
      }
    }
  }
  last_cycles_per_tuple_ = cycles_per_tuple;
  return broadcast;
}

void ParallelProgressiveCoordinator::FillReport(
    ParallelProgressiveReport* report) const {
  report->changes = changes_;
  report->num_optimizations = num_optimizations_;
  report->last_estimate = last_estimate_;
  report->final_order = control_->current_order();
  report->stale_morsels = stale_morsels_;
}

DriveResult RunBaseline(PipelineExecutor* executor, size_t vector_size) {
  VectorDriver driver(executor, vector_size);
  return driver.Run();
}

}  // namespace nipo
