#pragma once

#include "cost/join_model.h"
#include "hw/pmu.h"

/// \file sortedness.h
/// Sortedness / co-clusteredness detection from performance counters
/// (paper Sections 5.5-5.6).
///
/// The paper's insight: the *number of qualifying tuples per vector* is
/// identical for every join order, so tuple counting cannot reveal which
/// order is cheap -- but the cache-miss counter can. Equation 1 predicts
/// the misses a join probe would incur if its access pattern were random;
/// a sampled value far below that prediction reveals that the probed
/// table is co-clustered with the fact table (or the data is sorted), so
/// the probe is cheap and should run early.

namespace nipo {

/// \brief One probe stage's sampled behaviour.
struct ProbeObservation {
  JoinRelationSpec relation;     ///< probed dimension
  double num_probes = 0;         ///< accesses issued into it
  double sampled_l3_misses = 0;  ///< misses attributed to the probe
};

/// \brief Verdict about a probe's locality.
struct SortednessVerdict {
  double predicted_random_misses = 0;  ///< Equation 1
  double score = 0;  ///< sampled/predicted; ~1 random, ~0 co-clustered
  bool co_clustered = false;
};

/// \brief Co-clustered iff sampled misses fall below
/// `threshold` * (Equation 1 prediction). The default 0.5 leaves a wide
/// margin on both sides of the bimodal distribution the experiments show.
SortednessVerdict JudgeSortedness(const CacheGeometry& l3_geometry,
                                  const ProbeObservation& observation,
                                  double threshold = 0.5);

}  // namespace nipo
