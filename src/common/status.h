#pragma once

#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Error handling for fallible operations, following the Arrow/RocksDB
/// Status idiom: functions that can fail return a Status (or Result<T>,
/// see result.h) instead of throwing exceptions.

namespace nipo {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kTypeMismatch = 7,
  kCapacityExceeded = 8,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus, for errors, a
/// message describing what went wrong.
///
/// The OK state carries no allocation; error states own their message.
/// Status is cheap to move and to test (`if (!st.ok()) return st;`).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A kOk code with
  /// a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string msg);

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  /// @}

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace nipo

/// Propagates an error Status from the current function.
#define NIPO_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::nipo::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)
