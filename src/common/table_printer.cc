#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.h"

/// \file table_printer.cc
/// Column-width measurement, alignment and border drawing for the aligned
/// text tables, plus CSV escaping and FormatDouble's trailing-zero trim.

namespace nipo {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  NIPO_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : "  ");
      out << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  std::string rule;
  for (size_t i = 0; i < widths.size(); ++i) {
    if (i) rule += "  ";
    rule.append(widths[i], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  out << '\n';
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace nipo
