#pragma once

#include <cstdint>

/// \file prng.h
/// Deterministic pseudo-random number generation. Everything in this
/// repository that needs randomness (data generation, shuffles, start-point
/// jitter) goes through Prng so that every experiment is reproducible
/// bit-for-bit from a seed.

namespace nipo {

/// \brief xoshiro256** generator (Blackman & Vigna), seeded via splitmix64.
///
/// Small, fast, and of far higher quality than std::minstd; chosen over
/// std::mt19937 for speed in the data generators, which produce hundreds of
/// millions of values.
class Prng {
 public:
  /// Seeds the four 64-bit state words from `seed` using splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed including 0.
  explicit Prng(uint64_t seed = 42) {
    uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(&x);
    }
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply-high; rejection keeps the result unbiased.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97f4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t state_[4];
};

}  // namespace nipo
