#pragma once

#include <cstdio>
#include <cstdlib>

/// \file logging.h
/// Invariant checking. NIPO_CHECK aborts on violated internal invariants;
/// it is for programming errors, never for data-dependent conditions
/// (those return Status).

#define NIPO_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "NIPO_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define NIPO_DCHECK(cond) NIPO_CHECK(cond)
